#!/usr/bin/env python3
"""Diff two HyperSIO bench JSON reports and gate on drift.

Usage:
    scripts/bench_compare.py BASELINE.json CURRENT.json
        [--tol-throughput FRAC] [--tol-rate ABS] [--verbose]
        [--only-label LABEL]

Both files come from a bench binary's `--json <file>` flag
(schema "hypersio-bench-1") or from `hypersio_sim --json`
(schema "hypersio-sim-1"). Points are matched by their
(label, benchmark, tenants, interleave) key; for every matched point
the gate compares

  * achieved_gbps (throughput) by relative drift, tolerance
    --tol-throughput (default 0.02, i.e. 2%), and
  * devtlb/pb/iotlb hit rates by absolute drift in rate points,
    tolerance --tol-rate (default 0.02)

plus every entry of the report's "scalars" block (relative drift,
throughput tolerance). Missing or extra points, and config
mismatches in scale/seed/max_tenants, fail the comparison outright —
the two runs measured different experiments.

--only-label LABEL restricts the comparison to one config key of a
multi-config report: only points whose label matches (and scalars
whose name embeds the label, e.g. "area_kbits_LABEL") are checked.
Use it to localize a mechanism-tournament drift to one competitor
without the other configs' deviations drowning the diff. A label
that matches nothing in either report is a usage error (exit 2).

Exit status: 0 when everything is within tolerance, 1 on drift or a
shape mismatch, 2 on usage/file errors. The simulator is
deterministic, so comparing a freshly generated report against a
committed baseline (see scripts/check_repo.sh) must show zero drift;
any difference is a behavior change that needs the baseline updated
deliberately.
"""

import argparse
import json
import sys

THROUGHPUT_KEY = "achieved_gbps"
RATE_KEYS = ("devtlb_hit_rate", "pb_hit_rate", "iotlb_hit_rate")
# Config fields that define the experiment; "jobs" and wall clock are
# intentionally excluded (they change the machine, not the model).
CONFIG_KEYS = ("scale", "seed", "max_tenants")


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"bench_compare: cannot read {path}: {exc}",
              file=sys.stderr)
        sys.exit(2)


def point_key(point):
    return (point.get("label"), point.get("benchmark"),
            point.get("tenants"), point.get("interleave"))


def rel_drift(base, cur):
    if base == cur:
        return 0.0
    if base == 0:
        return float("inf")
    return abs(cur - base) / abs(base)


def normalize(doc):
    """Returns (config, {key: results}, {name: scalar})."""
    schema = doc.get("schema", "")
    if schema == "hypersio-sim-1":
        key = ("sim", doc.get("config", {}).get("benchmark"),
               doc.get("config", {}).get("tenants"),
               doc.get("config", {}).get("interleave"))
        return doc.get("config", {}), {key: doc.get("results", {})}, {}
    if schema != "hypersio-bench-1":
        print(f"bench_compare: unknown schema '{schema}'",
              file=sys.stderr)
        sys.exit(2)
    points = {}
    for point in doc.get("points", []):
        points[point_key(point)] = point.get("results", {})
    return doc.get("config", {}), points, doc.get("scalars", {})


def scalar_matches_label(name, label):
    """True when a scalar is named for one config label.

    Bench scalars embed the label with '_' separators (e.g.
    "area_kbits_part"); requiring the separator keeps a label that
    is a prefix of another ("part" vs "part+sub") from matching its
    longer sibling's scalars.
    """
    return (name == label or name.startswith(label + "_")
            or name.endswith("_" + label)
            or ("_" + label + "_") in name)


def filter_label(points, scalars, label):
    """Restricts a normalized report to one config label."""
    points = {key: results for key, results in points.items()
              if key[0] == label}
    scalars = {name: value for name, value in scalars.items()
               if scalar_matches_label(name, label)}
    return points, scalars


def main():
    parser = argparse.ArgumentParser(
        description="gate on drift between two bench JSON reports")
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--tol-throughput", type=float, default=0.02,
                        help="relative throughput tolerance "
                             "(default 0.02 = 2%%)")
    parser.add_argument("--tol-rate", type=float, default=0.02,
                        help="absolute hit-rate tolerance in rate "
                             "points (default 0.02)")
    parser.add_argument("--verbose", action="store_true",
                        help="print every comparison, not just "
                             "failures")
    parser.add_argument("--only-label", metavar="LABEL",
                        help="compare only points with this config "
                             "label (and scalars named for it)")
    args = parser.parse_args()

    base_cfg, base_points, base_scalars = normalize(
        load(args.baseline))
    cur_cfg, cur_points, cur_scalars = normalize(load(args.current))

    if args.only_label is not None:
        base_points, base_scalars = filter_label(
            base_points, base_scalars, args.only_label)
        cur_points, cur_scalars = filter_label(
            cur_points, cur_scalars, args.only_label)
        if not (base_points or cur_points or base_scalars
                or cur_scalars):
            print(f"bench_compare: --only-label "
                  f"{args.only_label!r} matches nothing in either "
                  f"report", file=sys.stderr)
            sys.exit(2)

    failures = []
    checked = 0

    for key in CONFIG_KEYS:
        if base_cfg.get(key) != cur_cfg.get(key):
            failures.append(
                f"config mismatch: {key} "
                f"{base_cfg.get(key)!r} vs {cur_cfg.get(key)!r}")

    missing = sorted(set(base_points) - set(cur_points))
    extra = sorted(set(cur_points) - set(base_points))
    for key in missing:
        failures.append(f"point missing from current: {key}")
    for key in extra:
        failures.append(f"unexpected point in current: {key}")

    for key in sorted(set(base_points) & set(cur_points)):
        base_r, cur_r = base_points[key], cur_points[key]
        if THROUGHPUT_KEY in base_r:
            drift = rel_drift(base_r[THROUGHPUT_KEY],
                              cur_r.get(THROUGHPUT_KEY, 0.0))
            checked += 1
            line = (f"{key}: {THROUGHPUT_KEY} "
                    f"{base_r[THROUGHPUT_KEY]:.4f} -> "
                    f"{cur_r.get(THROUGHPUT_KEY, 0.0):.4f} "
                    f"({drift * 100.0:.2f}% drift)")
            if drift > args.tol_throughput:
                failures.append(line)
            elif args.verbose:
                print(f"  ok {line}")
        for rate in RATE_KEYS:
            if rate not in base_r:
                continue
            delta = abs(base_r[rate] - cur_r.get(rate, 0.0))
            checked += 1
            line = (f"{key}: {rate} {base_r[rate]:.4f} -> "
                    f"{cur_r.get(rate, 0.0):.4f} "
                    f"(|delta| {delta:.4f})")
            if delta > args.tol_rate:
                failures.append(line)
            elif args.verbose:
                print(f"  ok {line}")

    for name in sorted(set(base_scalars) | set(cur_scalars)):
        if name not in base_scalars or name not in cur_scalars:
            failures.append(f"scalar '{name}' present in only one "
                            f"report")
            continue
        drift = rel_drift(base_scalars[name], cur_scalars[name])
        checked += 1
        line = (f"scalar {name}: {base_scalars[name]:.6g} -> "
                f"{cur_scalars[name]:.6g} "
                f"({drift * 100.0:.2f}% drift)")
        if drift > args.tol_throughput:
            failures.append(line)
        elif args.verbose:
            print(f"  ok {line}")

    if failures:
        print(f"bench_compare: FAIL — {len(failures)} deviation(s) "
              f"across {checked} checked value(s):")
        for failure in failures:
            print(f"  {failure}")
        sys.exit(1)
    print(f"bench_compare: OK — {checked} value(s) within tolerance "
          f"(throughput {args.tol_throughput * 100.0:.1f}%, rate "
          f"{args.tol_rate:.3f})")
    sys.exit(0)


if __name__ == "__main__":
    main()
