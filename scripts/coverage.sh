#!/bin/sh
# Line-coverage report for src/ using plain gcov (no lcov/gcovr).
#
# Builds an instrumented tree (-DHYPERSIO_COVERAGE=ON), runs the
# full ctest suite, then walks every .gcda the run produced, invokes
# gcov in JSON-intermediate mode, and aggregates per-file and total
# line coverage. HYPERSIO_COVERAGE_PATHS selects which top-level
# trees count (space-separated prefixes, default "src"; e.g.
# "src bench tests" also scores the soak/bench harnesses and the
# test sources themselves). Exit status is 1 when total line
# coverage falls below HYPERSIO_COVERAGE_MIN (percent, default
# 0 = report only).
#
# Usage: scripts/coverage.sh [build-dir]   (default: build-coverage)
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-coverage}"
MIN_PCT="${HYPERSIO_COVERAGE_MIN:-0}"
COVER_PATHS="${HYPERSIO_COVERAGE_PATHS:-src}"

echo "== coverage: instrumented build ($BUILD_DIR)"
cmake -B "$BUILD_DIR" -S . -DHYPERSIO_COVERAGE=ON > /dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)"

echo "== coverage: ctest run"
# Stale counters from a previous run would skew the totals.
find "$BUILD_DIR" -name '*.gcda' -delete
(cd "$BUILD_DIR" && ctest --output-on-failure -j "$(nproc)")

echo "== coverage: gcov aggregation"
GCOV_DIR="$BUILD_DIR/gcov-report"
rm -rf "$GCOV_DIR"
mkdir -p "$GCOV_DIR"
# gcov drops .gcov.json.gz files into the cwd, so run it in the
# report dir — which means the counter files must be fed as
# absolute paths.
ABS_BUILD="$(cd "$BUILD_DIR" && pwd)"
find "$ABS_BUILD" -name '*.gcda' \
    | (cd "$GCOV_DIR" && xargs gcov --json-format --preserve-paths \
           > /dev/null 2>&1 || true)

BUILD_DIR="$BUILD_DIR" MIN_PCT="$MIN_PCT" \
    COVER_PATHS="$COVER_PATHS" python3 - "$GCOV_DIR" <<'EOF'
import glob
import gzip
import json
import os
import sys

gcov_dir = sys.argv[1]
repo = os.getcwd()
min_pct = float(os.environ.get("MIN_PCT", "0"))
prefixes = tuple(p + os.sep
                 for p in os.environ.get("COVER_PATHS",
                                         "src").split())

# line -> hit, unioned across every translation unit that compiled
# the file (headers appear in many TUs).
files = {}
for path in glob.glob(os.path.join(gcov_dir, "*.gcov.json.gz")):
    with gzip.open(path, "rt") as f:
        doc = json.load(f)
    for entry in doc.get("files", []):
        name = os.path.realpath(
            os.path.join(repo, entry.get("file", "")))
        rel = os.path.relpath(name, repo)
        if not rel.startswith(prefixes):
            continue
        lines = files.setdefault(rel, {})
        for line in entry.get("lines", []):
            no = line.get("line_number")
            lines[no] = lines.get(no, 0) + line.get("count", 0)

if not files:
    print("coverage: no gcov data for "
          + " ".join(p.rstrip(os.sep) for p in prefixes)
          + " — did the build use -DHYPERSIO_COVERAGE=ON?",
          file=sys.stderr)
    sys.exit(1)

total_lines = total_hit = 0
rows = []
for rel in sorted(files):
    lines = files[rel]
    if not lines:  # declaration-only headers record no lines
        continue
    hit = sum(1 for count in lines.values() if count > 0)
    rows.append((rel, hit, len(lines)))
    total_lines += len(lines)
    total_hit += hit

width = max(len(rel) for rel, _, _ in rows)
for rel, hit, n in rows:
    print(f"  {rel:<{width}}  {hit:>5}/{n:<5} "
          f"{100.0 * hit / n:6.1f}%")
pct = 100.0 * total_hit / total_lines
scope = " ".join(p.rstrip(os.sep) for p in prefixes)
print(f"coverage: TOTAL {scope} line coverage "
      f"{total_hit}/{total_lines} = {pct:.1f}%")
if pct < min_pct:
    print(f"coverage: FAIL — below HYPERSIO_COVERAGE_MIN="
          f"{min_pct:.1f}%", file=sys.stderr)
    sys.exit(1)
EOF
