#!/usr/bin/env python3
"""Unit tests for scripts/bench_compare.py.

Runs the comparator as a subprocess against synthetic
"hypersio-bench-1" reports and asserts on its exit status and
output: 0 within tolerance, 1 on drift or shape mismatch, 2 on
usage/file errors. Registered with ctest as `bench_compare_unittest`
(tests/CMakeLists.txt); also runnable directly:

    python3 -m unittest discover -s scripts -p test_bench_compare.py
"""

import copy
import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "bench_compare.py")


def make_report(**overrides):
    """A small two-point bench report; overrides patch the dict."""
    report = {
        "schema": "hypersio-bench-1",
        "config": {"scale": 0.05, "seed": 42, "max_tenants": 256,
                   "jobs": 4},
        "points": [
            {
                "label": "base", "benchmark": "iperf3",
                "tenants": 8, "interleave": "RR1",
                "results": {"achieved_gbps": 80.0,
                            "devtlb_hit_rate": 0.90,
                            "pb_hit_rate": 0.05,
                            "iotlb_hit_rate": 0.50},
            },
            {
                "label": "hypertrio", "benchmark": "iperf3",
                "tenants": 8, "interleave": "RR1",
                "results": {"achieved_gbps": 99.0,
                            "devtlb_hit_rate": 0.95,
                            "pb_hit_rate": 0.40,
                            "iotlb_hit_rate": 0.60},
            },
        ],
        "scalars": {"speedup": 1.24},
    }
    report.update(overrides)
    return report


class BenchCompareTest(unittest.TestCase):
    def setUp(self):
        self._dir = tempfile.TemporaryDirectory()
        self.addCleanup(self._dir.cleanup)

    def write(self, name, doc):
        path = os.path.join(self._dir.name, name)
        with open(path, "w") as f:
            if isinstance(doc, str):
                f.write(doc)
            else:
                json.dump(doc, f)
        return path

    def run_compare(self, baseline, current, *extra):
        return subprocess.run(
            [sys.executable, SCRIPT, baseline, current, *extra],
            capture_output=True, text=True)

    def compare(self, base_doc, cur_doc, *extra):
        return self.run_compare(self.write("base.json", base_doc),
                                self.write("cur.json", cur_doc),
                                *extra)

    # ---- exit 0: within tolerance --------------------------------

    def test_identical_reports_pass(self):
        proc = self.compare(make_report(), make_report())
        self.assertEqual(proc.returncode, 0, proc.stdout)
        self.assertIn("OK", proc.stdout)

    def test_drift_within_tolerance_passes(self):
        cur = make_report()
        # 1% throughput drift and 0.01 rate drift, both under the
        # default 2%/0.02 gates.
        cur["points"][0]["results"]["achieved_gbps"] = 80.8
        cur["points"][0]["results"]["iotlb_hit_rate"] = 0.51
        self.assertEqual(self.compare(make_report(), cur).returncode,
                         0)

    def test_jobs_and_extra_config_keys_are_ignored(self):
        cur = make_report()
        cur["config"]["jobs"] = 64
        cur["config"]["hostname"] = "elsewhere"
        self.assertEqual(self.compare(make_report(), cur).returncode,
                         0)

    def test_verbose_prints_each_comparison(self):
        proc = self.compare(make_report(), make_report(),
                            "--verbose")
        self.assertEqual(proc.returncode, 0)
        self.assertIn("ok", proc.stdout)
        self.assertIn("achieved_gbps", proc.stdout)

    # ---- exit 1: drift -------------------------------------------

    def test_throughput_drift_beyond_tolerance_fails(self):
        cur = make_report()
        cur["points"][1]["results"]["achieved_gbps"] = 95.0  # -4%
        proc = self.compare(make_report(), cur)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("achieved_gbps", proc.stdout)
        self.assertIn("FAIL", proc.stdout)

    def test_rate_drift_beyond_tolerance_fails(self):
        cur = make_report()
        cur["points"][1]["results"]["pb_hit_rate"] = 0.35  # -0.05
        proc = self.compare(make_report(), cur)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("pb_hit_rate", proc.stdout)

    def test_tolerance_flags_widen_the_gate(self):
        cur = make_report()
        cur["points"][1]["results"]["achieved_gbps"] = 95.0
        cur["points"][1]["results"]["pb_hit_rate"] = 0.35
        proc = self.compare(make_report(), cur,
                            "--tol-throughput", "0.10",
                            "--tol-rate", "0.10")
        self.assertEqual(proc.returncode, 0, proc.stdout)

    def test_missing_point_fails(self):
        cur = make_report()
        del cur["points"][1]
        proc = self.compare(make_report(), cur)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("missing from current", proc.stdout)

    def test_extra_point_fails(self):
        cur = make_report()
        extra = copy.deepcopy(cur["points"][0])
        extra["tenants"] = 16
        cur["points"].append(extra)
        proc = self.compare(make_report(), cur)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("unexpected point", proc.stdout)

    def test_config_mismatch_fails(self):
        for key, value in (("scale", 1.0), ("seed", 7),
                           ("max_tenants", 1024)):
            cur = make_report()
            cur["config"][key] = value
            proc = self.compare(make_report(), cur)
            self.assertEqual(proc.returncode, 1, key)
            self.assertIn(f"config mismatch: {key}", proc.stdout)

    def test_scalar_drift_and_scalar_missing_fail(self):
        drifted = make_report()
        drifted["scalars"]["speedup"] = 1.30
        self.assertEqual(
            self.compare(make_report(), drifted).returncode, 1)

        dropped = make_report()
        dropped["scalars"] = {}
        proc = self.compare(make_report(), dropped)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("present in only one", proc.stdout)

    def test_zero_baseline_with_nonzero_current_fails(self):
        base = make_report()
        base["points"][0]["results"]["achieved_gbps"] = 0.0
        cur = make_report()
        cur["points"][0]["results"]["achieved_gbps"] = 0.1
        self.assertEqual(self.compare(base, cur).returncode, 1)

    # ---- --only-label: per-config-key comparison -----------------

    def test_only_label_ignores_other_configs_drift(self):
        # "hypertrio" drifted badly, but a comparison scoped to
        # "base" must not see it. The shared scalar ("speedup") is
        # not named for the label, so it is excluded too.
        cur = make_report()
        cur["points"][1]["results"]["achieved_gbps"] = 10.0
        cur["scalars"]["speedup"] = 9.99
        proc = self.compare(make_report(), cur,
                            "--only-label", "base")
        self.assertEqual(proc.returncode, 0, proc.stdout)

    def test_only_label_still_catches_that_configs_drift(self):
        cur = make_report()
        cur["points"][0]["results"]["achieved_gbps"] = 10.0
        proc = self.compare(make_report(), cur,
                            "--only-label", "base")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("achieved_gbps", proc.stdout)

    def test_only_label_scopes_labeled_scalars(self):
        # "area_kbits_<label>" scalars follow their label; a label
        # that is a prefix of another ("part" vs "part+sub") must
        # not pick up the longer sibling's scalar.
        base = make_report(scalars={"area_kbits_part": 129.8,
                                    "area_kbits_part+sub": 467.3})
        drifted = make_report(scalars={"area_kbits_part": 129.8,
                                       "area_kbits_part+sub": 1.0})
        base["points"][0]["label"] = "part"
        drifted["points"][0]["label"] = "part"
        del base["points"][1], drifted["points"][1]
        proc = self.compare(base, drifted, "--only-label", "part")
        self.assertEqual(proc.returncode, 0, proc.stdout)
        proc = self.compare(base, drifted,
                            "--only-label", "part+sub")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("area_kbits_part+sub", proc.stdout)

    def test_only_label_matching_nothing_is_a_usage_error(self):
        proc = self.compare(make_report(), make_report(),
                            "--only-label", "no-such-config")
        self.assertEqual(proc.returncode, 2)
        self.assertIn("matches nothing", proc.stderr)

    # ---- exit 2: usage/file errors -------------------------------

    def test_unknown_schema_is_a_usage_error(self):
        bad = make_report(schema="hypersio-bench-999")
        proc = self.compare(make_report(), bad)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("unknown schema", proc.stderr)

    def test_unreadable_file_is_a_usage_error(self):
        missing = os.path.join(self._dir.name, "nope.json")
        proc = self.run_compare(self.write("base.json",
                                           make_report()), missing)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("cannot read", proc.stderr)

    def test_malformed_json_is_a_usage_error(self):
        proc = self.compare(make_report(), "{not json")
        self.assertEqual(proc.returncode, 2)
        self.assertIn("cannot read", proc.stderr)


if __name__ == "__main__":
    unittest.main()
