#!/bin/sh
# Repository gate: hygiene + tier-1 tests + bench regression check.
#
#   1. No build tree may be tracked in git (they are generated; see
#      .gitignore's build*/ rule).
#   2. The tier-1 build + ctest suite must pass.
#   3. fig10_scalability at quick scale must emit a valid JSON
#      report (BENCH_fig10.json) that self-compares with zero drift
#      and, when a committed baseline exists, matches it exactly —
#      the simulator is deterministic, so any drift is a behavior
#      change that needs the baseline regenerated on purpose.
#
# Usage: scripts/check_repo.sh [build-dir]   (default: build)
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

echo "== 1/3 repo hygiene: no tracked build artifacts"
if git ls-files | grep -q '^build'; then
    echo "FAIL: build trees are tracked in git:" >&2
    git ls-files | grep '^build' | head >&2
    echo "(fix: git rm -r --cached <dir>; .gitignore covers" \
         "build*/)" >&2
    exit 1
fi
echo "   ok"

echo "== 2/3 tier-1 build + ctest"
cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$(nproc)"
(cd "$BUILD_DIR" && ctest --output-on-failure -j "$(nproc)")

echo "== 3/3 bench JSON regression gate (fig10, quick scale)"
# Deterministic settings: quick scale, 8-tenant sweep, fixed seed.
# --jobs only changes scheduling, never results, but pin it anyway
# so the config block is stable too.
FRESH="$BUILD_DIR/BENCH_fig10.json"
"$BUILD_DIR"/bench/fig10_scalability --quick --tenants 8 --jobs 1 \
    --json "$FRESH" > /dev/null
python3 scripts/bench_compare.py "$FRESH" "$FRESH"
if [ -f BENCH_fig10.json ]; then
    echo "   comparing against committed BENCH_fig10.json baseline"
    python3 scripts/bench_compare.py BENCH_fig10.json "$FRESH"
else
    echo "   no committed baseline; installing $FRESH as" \
         "BENCH_fig10.json"
    cp "$FRESH" BENCH_fig10.json
fi

echo "check_repo: all gates passed"
