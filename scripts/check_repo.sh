#!/bin/sh
# Repository gate: hygiene + tier-1 tests + differential checks +
# bench regression check.
#
#   1. No build tree may be tracked in git (they are generated; see
#      .gitignore's build*/ rule).
#   2. The tier-1 build + ctest suite must pass. The default build
#      has HYPERSIO_CHECKED=ON, so every tier-1 System run already
#      executes under the fail-fast shadow oracle.
#   3. A longer adversarial fuzz campaign than the ctest smoke:
#      every pattern x system variant at 400 packets x 3 seeds under
#      the collecting shadow oracle.
#   4. Shadow checking must be observation-only: fig10_scalability
#      --quick output is byte-identical between the checked build
#      and a -DHYPERSIO_CHECKED=OFF build.
#   5. fig10_scalability at quick scale must emit a valid JSON
#      report (BENCH_fig10.json) that self-compares with zero drift
#      and, when a committed baseline exists, matches it exactly —
#      the simulator is deterministic, so any drift is a behavior
#      change that needs the baseline regenerated on purpose.
#   6. The event-kernel microbench must show the slab kernel at
#      >= 1.3x the legacy kernel's events/sec on the schedule_fire
#      mix, and its report must keep the shape of the committed
#      BENCH_event_kernel.json. Rates are wall-clock measurements,
#      so the baseline comparison runs with a deliberately loose
#      tolerance: it catches missing/renamed scalars and order-of-
#      magnitude regressions, while the hard >= 1.3x bound is
#      enforced in-process by --check-speedup on this machine.
#   7. The translation-path microbench must show the flat-hash/SoA
#      data layouts at >= 1.3x the pinned reference layouts'
#      packets/sec. The two layouts are a compile-time choice
#      (HYPERSIO_LEGACY_STRUCTURES), so the ratio is taken across
#      two -DHYPERSIO_CHECKED=OFF builds of the same binary;
#      scripts/bench_speedup.py additionally requires every
#      deterministic probe-count scalar to match exactly between
#      them (the layouts must do identical simulated work). The
#      report shape is compared against the committed
#      BENCH_translation_path.json with the same loose wall-clock
#      tolerance as gate 6.
#   8. The hyper-scale streaming bench (tenant churn over bounded
#      SID slots, sharded across systems) must complete its smoke
#      configuration inside a fixed peak-RSS budget — the O(active)
#      state invariant — and its deterministic scalars (packets,
#      translations, retirements, merge checksum) must match the
#      committed BENCH_hyperscale.json exactly.
#   9. Probe vectorization must be observation-free and profitable:
#      a -DHYPERSIO_SIMD_PROBES=OFF build (scalar reference group
#      ops) must produce bit-identical deterministic counts to the
#      SIMD build on the translation-path microbench, and the SIMD
#      build's walk-storm rate must hold >= 1.15x over the scalar
#      build's in a back-to-back same-machine A/B (locally measured
#      ~1.25x). The pinned pre-vectorization record
#      (BENCH_translation_path_flat_baseline.json — regenerate it
#      only as part of a deliberate re-baselining of the
#      pre-vectorization record) is compared counts-only: committed
#      rates don't travel across machines, deterministic counts do.
#  10. The soak harness (long-haul churn + adversarial episodes with
#      interval telemetry) must run its smoke configuration under
#      the checked build, stream valid hypersio-soak-1 snapshots,
#      pass scripts/soak_report.py's drift/leak gate, stay inside a
#      peak-RSS budget, and match the committed BENCH_soak.json's
#      deterministic scalars exactly.
#  11. The mechanism tournament (partitioning vs sub-entry sharing
#      vs MMU-aware prefetch, and their combinations) must complete
#      its smoke sweep under the checked build's fail-fast shadow
#      oracle and match the committed BENCH_tournament.json exactly
#      — every scalar in that report (hit rates, throughputs, area
#      proxies) is deterministic, so any drift means a mechanism's
#      behavior changed and the bake-off needs re-reading before
#      the baseline is regenerated on purpose.
#  12. Hit-path event fusion must be observation-free and
#      profitable: a -DHYPERSIO_EVENT_FUSION=OFF build (event-per-
#      hop reference kernel) must produce exactly the deterministic
#      counts the fused build produces on the event-fusion
#      microbench, and the fused build must hold >= 1.4x the
#      reference's aggregate packet rate in a back-to-back
#      same-machine A/B (locally measured ~1.45-1.50x). Both sides
#      run without the shadow oracle — its mirrors dominate the 2 ns
#      hops being fused and would mask the ratio. The in-binary
#      runtime-knob A/B (identical RunResults, stat trees, and event
#      ledgers) already ran in gate 2's ctest; this gate pins the
#      compile-time flavour. The report shape is compared against
#      the committed BENCH_event_fusion.json with the same loose
#      wall-clock tolerance as gates 6 and 7.
#
# scripts/coverage.sh (gcov line coverage) is a separate, slower
# workflow and is not part of this gate.
#
# Usage: scripts/check_repo.sh [build-dir]   (default: build)
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
UNCHECKED_DIR="${BUILD_DIR}-unchecked"

echo "== 1/12 repo hygiene: no tracked build artifacts"
if git ls-files | grep -q '^build'; then
    echo "FAIL: build trees are tracked in git:" >&2
    git ls-files | grep '^build' | head >&2
    echo "(fix: git rm -r --cached <dir>; .gitignore covers" \
         "build*/)" >&2
    exit 1
fi
echo "   ok"

echo "== 2/12 tier-1 build + ctest (shadow oracle compiled in)"
# Every configure pins the build type: `cmake -B` on an existing
# tree silently keeps whatever CMAKE_BUILD_TYPE is cached there, and
# the rate gates (6, 7, 9) are calibrated against RelWithDebInfo
# codegen — a stale -O3 cache shifts inlining in the header-only hot
# loops enough to flip a speedup gate without any source change.
BUILD_TYPE="-DCMAKE_BUILD_TYPE=RelWithDebInfo"
cmake -B "$BUILD_DIR" -S . "$BUILD_TYPE"
cmake --build "$BUILD_DIR" -j "$(nproc)"
(cd "$BUILD_DIR" && ctest --output-on-failure -j "$(nproc)")

echo "== 3/12 extended adversarial fuzz campaign"
# The ctest invocation above already ran the bounded smoke; this is
# the long campaign: more packets, multiple seeds. Reproduce any
# failure with the HYPERSIO_FUZZ_SEED printed in its repro line.
FUZZ_LOG="$BUILD_DIR/fuzz_campaign.log"
if ! HYPERSIO_FUZZ_PACKETS=400 HYPERSIO_FUZZ_ROUNDS=3 \
    "$BUILD_DIR"/tests/fuzz_translation \
    --gtest_filter='FuzzTranslation.*UnderShadowOracle' \
    > "$FUZZ_LOG" 2>&1; then
    cat "$FUZZ_LOG" >&2
    exit 1
fi
grep 'translation requests checked' "$FUZZ_LOG"

echo "== 4/12 shadow checking is observation-only (checked vs not)"
cmake -B "$UNCHECKED_DIR" -S . "$BUILD_TYPE" \
    -DHYPERSIO_CHECKED=OFF > /dev/null
cmake --build "$UNCHECKED_DIR" -j "$(nproc)" \
    --target fig10_scalability
"$BUILD_DIR"/bench/fig10_scalability --quick --tenants 8 --jobs 1 \
    > "$BUILD_DIR/fig10_checked.out"
"$UNCHECKED_DIR"/bench/fig10_scalability --quick --tenants 8 \
    --jobs 1 > "$BUILD_DIR/fig10_unchecked.out"
if ! cmp -s "$BUILD_DIR/fig10_checked.out" \
        "$BUILD_DIR/fig10_unchecked.out"; then
    echo "FAIL: HYPERSIO_CHECKED=ON changed simulator output:" >&2
    diff "$BUILD_DIR/fig10_checked.out" \
         "$BUILD_DIR/fig10_unchecked.out" >&2 || true
    exit 1
fi
echo "   ok: fig10 --quick output byte-identical"

echo "== 5/12 bench JSON regression gate (fig10, quick scale)"
# Deterministic settings: quick scale, 8-tenant sweep, fixed seed.
# --jobs only changes scheduling, never results, but pin it anyway
# so the config block is stable too.
FRESH="$BUILD_DIR/BENCH_fig10.json"
"$BUILD_DIR"/bench/fig10_scalability --quick --tenants 8 --jobs 1 \
    --json "$FRESH" > /dev/null
python3 scripts/bench_compare.py "$FRESH" "$FRESH"
if [ -f BENCH_fig10.json ]; then
    echo "   comparing against committed BENCH_fig10.json baseline"
    python3 scripts/bench_compare.py BENCH_fig10.json "$FRESH"
else
    echo "   no committed baseline; installing $FRESH as" \
         "BENCH_fig10.json"
    cp "$FRESH" BENCH_fig10.json
fi

echo "== 6/12 event-kernel microbench speedup + report shape"
KERNEL_FRESH="$BUILD_DIR/BENCH_event_kernel.json"
"$BUILD_DIR"/bench/event_kernel_microbench --check-speedup 1.3 \
    --json "$KERNEL_FRESH"
if [ -f BENCH_event_kernel.json ]; then
    echo "   comparing against committed BENCH_event_kernel.json" \
         "baseline (loose tolerance: rates are wall-clock)"
    python3 scripts/bench_compare.py BENCH_event_kernel.json \
        "$KERNEL_FRESH" --tol-throughput 3.0 --tol-rate 1.0
else
    echo "   no committed baseline; installing $KERNEL_FRESH as" \
         "BENCH_event_kernel.json"
    cp "$KERNEL_FRESH" BENCH_event_kernel.json
fi

echo "== 7/12 translation-path microbench speedup + report shape"
# Both sides run without the shadow oracle (its mirrors would
# dominate the probes being measured). The flat side reuses the
# gate-4 unchecked build; the reference side pins the pre-flat
# layouts with HYPERSIO_LEGACY_STRUCTURES=ON.
LEGACY_DIR="${BUILD_DIR}-legacy-structs"
cmake --build "$UNCHECKED_DIR" -j "$(nproc)" \
    --target translation_path_microbench
cmake -B "$LEGACY_DIR" -S . "$BUILD_TYPE" -DHYPERSIO_CHECKED=OFF \
    -DHYPERSIO_LEGACY_STRUCTURES=ON > /dev/null
cmake --build "$LEGACY_DIR" -j "$(nproc)" \
    --target translation_path_microbench
FLAT_JSON="$BUILD_DIR/BENCH_translation_path.json"
LEGACY_JSON="$BUILD_DIR/BENCH_translation_path_legacy.json"
"$UNCHECKED_DIR"/bench/translation_path_microbench \
    --json "$FLAT_JSON" > /dev/null
"$LEGACY_DIR"/bench/translation_path_microbench \
    --json "$LEGACY_JSON" > /dev/null
# The gated rate is the walk storm: a tenant-lifecycle replay whose
# every probe lands on the converted structures. The timed
# full-system phase also runs (its deterministic scalars anchor the
# cross-build differential check) but its rate is dominated by the
# event kernel, which both layouts share.
python3 scripts/bench_speedup.py "$FLAT_JSON" "$LEGACY_JSON" \
    --scalar total_walkstorm_packets_per_sec --min-ratio 1.3
if [ -f BENCH_translation_path.json ]; then
    echo "   comparing against committed" \
         "BENCH_translation_path.json baseline (loose tolerance:" \
         "rates are wall-clock)"
    python3 scripts/bench_compare.py BENCH_translation_path.json \
        "$FLAT_JSON" --tol-throughput 3.0 --tol-rate 1.0
else
    echo "   no committed baseline; installing $FLAT_JSON as" \
         "BENCH_translation_path.json"
    cp "$FLAT_JSON" BENCH_translation_path.json
fi

echo "== 8/12 hyper-scale streaming bench: bounded RSS + regression"
# Measured without the shadow oracle (its mirrors would scale with
# the mirrored state being bounded, muddying the RSS reading); the
# unchecked build from gate 4 serves. The in-process assertions
# already enforce attaches == retirements == population and empty
# page-table directories per shard; --rss-budget-mb makes the
# O(active) memory claim a hard failure. The JSON carries only
# deterministic scalars, so the baseline comparison is exact.
cmake --build "$UNCHECKED_DIR" -j "$(nproc)" \
    --target hyperscale_bench
HYPERSCALE_FRESH="$BUILD_DIR/BENCH_hyperscale.json"
"$UNCHECKED_DIR"/bench/hyperscale_bench --smoke \
    --rss-budget-mb 512 --json "$HYPERSCALE_FRESH" > /dev/null
python3 scripts/bench_compare.py "$HYPERSCALE_FRESH" \
    "$HYPERSCALE_FRESH"
if [ -f BENCH_hyperscale.json ]; then
    echo "   comparing against committed BENCH_hyperscale.json" \
         "baseline (exact: all scalars deterministic)"
    python3 scripts/bench_compare.py BENCH_hyperscale.json \
        "$HYPERSCALE_FRESH"
else
    echo "   no committed baseline; installing $HYPERSCALE_FRESH" \
         "as BENCH_hyperscale.json"
    cp "$HYPERSCALE_FRESH" BENCH_hyperscale.json
fi

echo "== 9/12 probe vectorization: identical counts + speedup"
# The SIMD/scalar choice is compile-time (util/simd.hh); the masks
# the backends produce are defined to be identical, so every
# deterministic count in the microbench report must match exactly
# between a SIMD build and a HYPERSIO_SIMD_PROBES=OFF build. The
# scalar build is the pre-vectorization reference implementation,
# so the speedup leg is a same-machine A/B against it: the gate-7
# flat measurement is minutes (and two configure+build cycles) old
# by now, so the flat binary is re-measured back-to-back with the
# scalar one and the better of the two flat runs is scored — rate
# noise is one-sided (background load only ever slows a run). The
# 1.15x floor sits under a locally measured ~1.25x. The pinned
# BENCH_translation_path_flat_baseline.json (regenerate it only as
# part of a deliberate re-baselining of the pre-vectorization
# record) is held to the machine-independent claim a committed file
# can actually support: today's builds must do simulated work
# identical to the pre-vectorization record, count for count.
SCALAR_DIR="${BUILD_DIR}-scalar-probes"
cmake -B "$SCALAR_DIR" -S . "$BUILD_TYPE" -DHYPERSIO_CHECKED=OFF \
    -DHYPERSIO_SIMD_PROBES=OFF > /dev/null
cmake --build "$SCALAR_DIR" -j "$(nproc)" \
    --target translation_path_microbench
SCALAR_JSON="$BUILD_DIR/BENCH_translation_path_scalar.json"
"$SCALAR_DIR"/bench/translation_path_microbench \
    --json "$SCALAR_JSON" > /dev/null
FLAT9_JSON="$BUILD_DIR/BENCH_translation_path_flat9.json"
"$UNCHECKED_DIR"/bench/translation_path_microbench \
    --json "$FLAT9_JSON" > /dev/null
BEST_FLAT=$(python3 - "$FLAT_JSON" "$FLAT9_JSON" <<'EOF'
import json, sys
print(max(sys.argv[1:3], key=lambda p: json.load(open(p))
          ["scalars"]["total_walkstorm_packets_per_sec"]))
EOF
)
python3 scripts/bench_speedup.py "$BEST_FLAT" "$SCALAR_JSON" \
    --scalar total_walkstorm_packets_per_sec --min-ratio 1.15
if [ -f BENCH_translation_path_flat_baseline.json ]; then
    python3 scripts/bench_speedup.py "$FLAT_JSON" \
        BENCH_translation_path_flat_baseline.json \
        --counts-only --ignore-missing
else
    echo "FAIL: BENCH_translation_path_flat_baseline.json missing" \
         "(the pinned pre-vectorization baseline must stay" \
         "committed)" >&2
    exit 1
fi

echo "== 10/12 soak harness: telemetry stream + drift/leak gate"
# Runs from the *checked* build on purpose: the soak regime's value
# is churn + adversarial episodes under the fail-fast shadow oracle,
# so the RSS budget is sized for the mirrors' overhead. --jobs 1
# pins the snapshot file's line order (any jobs count produces the
# same per-shard lines, but interleaving across shards is scheduler
# timing); the deterministic scalars in the JSON report are
# jobs-independent either way.
SOAK_STREAM="$BUILD_DIR/soak_check.jsonl"
SOAK_FRESH="$BUILD_DIR/BENCH_soak.json"
"$BUILD_DIR"/bench/soak_bench --smoke --jobs 1 \
    --snapshots "$SOAK_STREAM" --rss-budget-mb 1024 \
    --json "$SOAK_FRESH" > /dev/null
python3 scripts/soak_report.py "$SOAK_STREAM" --verbose
python3 scripts/bench_compare.py "$SOAK_FRESH" "$SOAK_FRESH"
if [ -f BENCH_soak.json ]; then
    echo "   comparing against committed BENCH_soak.json baseline" \
         "(exact: all scalars deterministic)"
    python3 scripts/bench_compare.py BENCH_soak.json "$SOAK_FRESH"
else
    echo "   no committed baseline; installing $SOAK_FRESH as" \
         "BENCH_soak.json"
    cp "$SOAK_FRESH" BENCH_soak.json
fi

echo "== 11/12 mechanism tournament: bake-off regression gate"
# Runs from the *checked* build: every competitor (sub-entry
# sharing, MMU-aware prefetch, the paper's partitioning, and their
# combinations) then executes under the fail-fast shadow oracle, so
# a passing sweep doubles as an oracle-agreement check for each
# mechanism. Every value in the report — per-config hit rates,
# throughputs, and the geometry-derived area proxies — is
# deterministic and jobs-independent, so the baseline comparison is
# exact. To inspect one competitor's drift in isolation, diff with
#   python3 scripts/bench_compare.py BENCH_tournament.json <fresh> \
#       --only-label <label>
TOURN_FRESH="$BUILD_DIR/BENCH_tournament.json"
"$BUILD_DIR"/bench/mechanism_tournament --smoke --jobs 1 \
    --json "$TOURN_FRESH" > /dev/null
python3 scripts/bench_compare.py "$TOURN_FRESH" "$TOURN_FRESH"
if [ -f BENCH_tournament.json ]; then
    echo "   comparing against committed BENCH_tournament.json" \
         "baseline (exact: all scalars deterministic)"
    python3 scripts/bench_compare.py BENCH_tournament.json \
        "$TOURN_FRESH"
else
    echo "   no committed baseline; installing $TOURN_FRESH as" \
         "BENCH_tournament.json"
    cp "$TOURN_FRESH" BENCH_tournament.json
fi

echo "== 12/12 event fusion: identical counts + speedup"
# The fused/per-hop choice here is compile-time
# (HYPERSIO_EVENT_FUSION); the fused kernel is defined to elide hop
# events without changing behaviour, so every deterministic count in
# the microbench report must match exactly between the two builds
# (bench_speedup.py enforces that before it scores the ratio). The
# ON side reuses the gate-4 unchecked build and, as in gate 9, runs
# twice back-to-back with the better run scored — rate noise is
# one-sided (background load only ever slows a run). The 1.4x floor
# sits under a locally measured ~1.45-1.50x aggregate.
NOFUSION_DIR="${BUILD_DIR}-nofusion"
cmake -B "$NOFUSION_DIR" -S . "$BUILD_TYPE" -DHYPERSIO_CHECKED=OFF \
    -DHYPERSIO_EVENT_FUSION=OFF > /dev/null
cmake --build "$NOFUSION_DIR" -j "$(nproc)" \
    --target event_fusion_microbench
cmake --build "$UNCHECKED_DIR" -j "$(nproc)" \
    --target event_fusion_microbench
NOFUSION_JSON="$BUILD_DIR/BENCH_event_fusion_off.json"
"$NOFUSION_DIR"/bench/event_fusion_microbench \
    --json "$NOFUSION_JSON" > /dev/null
FUSION_JSON="$BUILD_DIR/BENCH_event_fusion.json"
FUSION2_JSON="$BUILD_DIR/BENCH_event_fusion_run2.json"
"$UNCHECKED_DIR"/bench/event_fusion_microbench \
    --json "$FUSION_JSON" > /dev/null
"$UNCHECKED_DIR"/bench/event_fusion_microbench \
    --json "$FUSION2_JSON" > /dev/null
BEST_FUSION=$(python3 - "$FUSION_JSON" "$FUSION2_JSON" <<'EOF'
import json, sys
print(max(sys.argv[1:3], key=lambda p: json.load(open(p))
          ["scalars"]["total_walkstorm_packets_per_sec"]))
EOF
)
python3 scripts/bench_speedup.py "$BEST_FUSION" "$NOFUSION_JSON" \
    --scalar total_walkstorm_packets_per_sec --min-ratio 1.4
if [ -f BENCH_event_fusion.json ]; then
    echo "   comparing against committed BENCH_event_fusion.json" \
         "baseline (loose tolerance: rates are wall-clock)"
    python3 scripts/bench_compare.py BENCH_event_fusion.json \
        "$FUSION_JSON" --tol-throughput 3.0 --tol-rate 1.0
else
    echo "   no committed baseline; installing $FUSION_JSON as" \
         "BENCH_event_fusion.json"
    cp "$FUSION_JSON" BENCH_event_fusion.json
fi

echo "check_repo: all gates passed"
