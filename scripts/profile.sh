#!/bin/sh
# Profile a bench binary and print the hottest symbols.
#
# The containers this repo targets have no `perf`, so this uses the
# gprof call-count instrumentation that ships with binutils: it
# configures a dedicated `build-profile` tree with `-pg` (and the
# shadow oracle off, so the profile shows the production path, not
# the checker mirrors), builds the requested bench target, runs it,
# and prints the top-N lines of gprof's flat profile.
#
# Caveat worth knowing before trusting the numbers: -pg inserts a
# mcount call into every non-inlined function, which both perturbs
# inlining decisions and taxes small hot functions the most — treat
# the output as "where to look", not as a truth source for ratios.
# For A/B layout questions, bench/translation_path_microbench's
# best-of-reps rates (and check_repo.sh gate 7) are the measurement.
#
# Usage:
#   scripts/profile.sh [-n TOP] [target] [args...]
#
#   scripts/profile.sh
#       profiles translation_path_microbench on its default workload
#   scripts/profile.sh --packets 200000
#       same target; a leading dash means "args for the default
#       target", so flags work without naming it
#   scripts/profile.sh -n 40 fig10_scalability --quick --tenants 8
#       profiles the fig10 sweep, printing the top 40 symbols
set -eu

cd "$(dirname "$0")/.."

TOP=25
if [ "${1:-}" = "-n" ]; then
    TOP="$2"
    shift 2
fi
TARGET=translation_path_microbench
if [ "$#" -gt 0 ]; then
    case "$1" in
        -*) ;; # flags go to the default target
        *) TARGET="$1"; shift ;;
    esac
fi

PROFILE_DIR=build-profile
cmake -B "$PROFILE_DIR" -S . -DHYPERSIO_CHECKED=OFF \
    -DCMAKE_CXX_FLAGS=-pg -DCMAKE_EXE_LINKER_FLAGS=-pg > /dev/null
cmake --build "$PROFILE_DIR" -j "$(nproc)" --target "$TARGET"

BIN="$(find "$PROFILE_DIR" -type f -name "$TARGET" -perm -u+x \
    | head -n 1)"
if [ -z "$BIN" ]; then
    echo "profile.sh: built no executable named '$TARGET'" >&2
    exit 1
fi

# gmon.out lands in the working directory of the profiled process;
# run inside the build tree to keep the repo root clean.
RUN_DIR="$PROFILE_DIR/profile-run"
mkdir -p "$RUN_DIR"
echo "== running: $TARGET $*"
(cd "$RUN_DIR" && "../../$BIN" "$@")

echo
echo "== gprof flat profile (top $TOP) — see header caveat"
gprof -b -p "$BIN" "$RUN_DIR/gmon.out" | head -n "$((TOP + 5))"
