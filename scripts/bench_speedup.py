#!/usr/bin/env python3
"""Compute a speedup ratio between two hypersio-bench-1 reports.

Usage:
    bench_speedup.py FAST.json SLOW.json --scalar NAME --min-ratio R

Prints the ratio FAST/SLOW of the named scalar and exits nonzero if
it falls below --min-ratio. Before comparing rates, every pair of
deterministic count scalars (names ending in _packets, _lookups,
_walks, _translations, _requests) is required to match exactly: the
two builds must have done identical simulated work, otherwise the
ratio is meaningless and the run fails loudly.
"""

from __future__ import annotations

import argparse
import json
import sys

COUNT_SUFFIXES = (
    "_packets",
    "_lookups",
    "_walks",
    "_translations",
    "_requests",
    "_detaches",
)


def load_scalars(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") != "hypersio-bench-1":
        sys.exit(f"{path}: not a hypersio-bench-1 report")
    return doc.get("scalars", {})


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fast", help="report from the optimised build")
    parser.add_argument("slow", help="report from the reference build")
    parser.add_argument("--scalar", default="total_packets_per_sec",
                        help="rate scalar to form the ratio from")
    parser.add_argument("--min-ratio", type=float, default=1.3,
                        help="fail if fast/slow falls below this")
    parser.add_argument("--counts-only", action="store_true",
                        help="only require the deterministic counts "
                             "to match; skip the rate ratio (used "
                             "for bit-identical-results gates, e.g. "
                             "SIMD vs scalar probe builds)")
    parser.add_argument("--ignore-missing", action="store_true",
                        help="skip counts present in only one "
                             "report instead of failing (for "
                             "baselines pinned before a scalar was "
                             "added)")
    args = parser.parse_args()

    fast = load_scalars(args.fast)
    slow = load_scalars(args.slow)

    mismatches = []
    for name, value in sorted(fast.items()):
        if not name.endswith(COUNT_SUFFIXES):
            continue
        if name not in slow:
            if not args.ignore_missing:
                mismatches.append(f"{name}: missing from {args.slow}")
        elif slow[name] != value:
            mismatches.append(
                f"{name}: {value:g} (fast) != {slow[name]:g} (slow)")
    if mismatches:
        print("deterministic scalars differ between builds:")
        for line in mismatches:
            print(f"  {line}")
        return 1
    checked = sum(1 for n in fast
                  if n.endswith(COUNT_SUFFIXES) and
                  (n in slow or not args.ignore_missing))
    print(f"deterministic scalars identical across builds "
          f"({checked} checked)")
    if args.counts_only:
        print("OK (counts only)")
        return 0

    for name, scalars, path in ((args.scalar, fast, args.fast),
                                (args.scalar, slow, args.slow)):
        if name not in scalars:
            sys.exit(f"{path}: scalar '{name}' not found")
    if slow[args.scalar] <= 0:
        sys.exit(f"{args.slow}: scalar '{args.scalar}' is not positive")

    ratio = fast[args.scalar] / slow[args.scalar]
    print(f"{args.scalar}: fast={fast[args.scalar]:.0f} "
          f"slow={slow[args.scalar]:.0f} ratio={ratio:.2f}x "
          f"(minimum {args.min_ratio:.2f}x)")
    if ratio < args.min_ratio:
        print("FAIL: speedup below minimum")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
