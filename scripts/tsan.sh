#!/bin/sh
# ThreadSanitizer pass over the concurrency-sensitive tests.
#
# Configures a separate build tree with -DHYPERSIO_SANITIZE=thread,
# builds the parallel-runner and event-queue test binaries, and runs
# them under TSan. Any data race in the worker pool, the trace
# cache's per-key construction locks, or the shared logging/debug
# sinks fails the run (TSan exits non-zero on a report).
#
# Usage: scripts/tsan.sh [build-dir]   (default: build-tsan)
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DHYPERSIO_SANITIZE=thread
cmake --build "$BUILD_DIR" -j "$(nproc)" \
    --target test_parallel_runner test_event_queue

# halt_on_error makes the first race fail fast and loudly.
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
    "$BUILD_DIR"/tests/test_parallel_runner
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
    "$BUILD_DIR"/tests/test_event_queue

echo "TSan pass clean: test_parallel_runner + test_event_queue"
