#!/usr/bin/env python3
"""Analyze a soak_bench snapshot stream and gate on drift/leaks.

Usage:
    scripts/soak_report.py SNAPSHOTS.jsonl
        [--min-intervals N] [--warmup N]
        [--max-throughput-decay FRAC] [--max-hitrate-decay RATE]
        [--rss-growth-kib KIB] [--verbose]

The input is the JSON-lines file soak_bench writes via
`--snapshots <file>` (one "hypersio-soak-1" object per line, one
stream of contiguous intervals per shard). For every shard the
report rebuilds the per-interval trajectory of

  * throughput — delta(system.device.packets) / delta_sim_ticks,
  * DevTLB and IOTLB hit rates — interval-delta hits / lookups, and
  * resident-set size — wall.vm_rss_kib, when the stream carries it

and fits a least-squares line to each. The gate fails (exit 1) when

  * throughput decays by more than --max-throughput-decay (as a
    fraction of the mean) across the post-warm-up window,
  * either hit rate decays by more than --max-hitrate-decay rate
    points across the window, or
  * VmRSS grows monotonically through every post-warm-up interval
    AND the total growth is at least --rss-growth-kib — the classic
    leak signature. (VmRSS can legitimately fall; a trajectory that
    only ever rises, by a nontrivial amount, cannot be allocator
    noise.)

Warm-up intervals (--warmup, default 1) are excluded from every
trend: the first intervals fill cold caches and touch fresh pages,
and their slopes say nothing about steady state.

Exit status: 0 clean, 1 drift or leak, 2 usage errors or a
truncated/corrupt stream (missing intervals, mixed seeds, fewer
than --min-intervals intervals per shard).
"""

import argparse
import json
import sys

PACKETS = "system.device.packets"
RATES = (
    ("devtlb", "system.device.devtlb.hits",
     "system.device.devtlb.lookups"),
    ("iotlb", "system.iommu.iotlb.hits",
     "system.iommu.iotlb.lookups"),
)


def die(message):
    print(f"soak_report: {message}", file=sys.stderr)
    sys.exit(2)


def load_stream(path):
    """Parses the JSONL stream into {shard: [snapshot, ...]}."""
    shards = {}
    seeds = set()
    try:
        with open(path) as f:
            for lineno, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    snap = json.loads(line)
                except json.JSONDecodeError as exc:
                    die(f"{path}:{lineno}: malformed JSON ({exc}) "
                        f"— truncated stream?")
                if snap.get("schema") != "hypersio-soak-1":
                    die(f"{path}:{lineno}: unknown schema "
                        f"{snap.get('schema')!r}")
                shards.setdefault(snap.get("shard"),
                                  []).append(snap)
                seeds.add(snap.get("seed"))
    except OSError as exc:
        die(f"cannot read {path}: {exc}")
    if not shards:
        die(f"{path}: no snapshots")
    if len(seeds) > 1:
        die(f"{path}: mixed seeds {sorted(seeds)} — streams from "
            f"different runs?")
    for shard, snaps in shards.items():
        snaps.sort(key=lambda s: s.get("interval", 0))
        intervals = [s.get("interval") for s in snaps]
        if intervals != list(range(len(snaps))):
            die(f"{path}: shard {shard} intervals {intervals} are "
                f"not contiguous from 0 — truncated stream?")
    return shards


def stat_map(snap):
    return {e["path"]: e for e in snap.get("stats", [])}


def series(snaps):
    """Per-interval metric series for one shard's stream."""
    throughput = []
    rates = {name: [] for name, _, _ in RATES}
    rss = []
    for snap in snaps:
        stats = stat_map(snap)
        dticks = snap.get("delta_sim_ticks", 0)
        if PACKETS not in stats:
            die(f"shard {snap.get('shard')} interval "
                f"{snap.get('interval')}: no {PACKETS} stat")
        if dticks > 0:
            throughput.append(
                stats[PACKETS]["delta"] / dticks)
        else:
            # An interval in which simulated time did not advance
            # has no defined rate; keep indices aligned with None.
            throughput.append(None)
        for name, hits, lookups in RATES:
            dl = stats.get(lookups, {}).get("delta", 0)
            dh = stats.get(hits, {}).get("delta", 0)
            rates[name].append(dh / dl if dl > 0 else None)
        wall = snap.get("wall", {})
        rss.append(wall.get("vm_rss_kib"))
    return throughput, rates, rss


def fit_drift(values):
    """(mean, total fitted change over the window) of a series.

    Least-squares slope over the interval index, scaled by the
    window length: the fitted line's total rise/fall, which is what
    a decay threshold naturally bounds. None for degenerate input.
    """
    points = [(i, v) for i, v in enumerate(values) if v is not None]
    if len(points) < 2:
        return None, None
    n = len(points)
    mean_x = sum(i for i, _ in points) / n
    mean_y = sum(v for _, v in points) / n
    var_x = sum((i - mean_x) ** 2 for i, _ in points)
    if var_x == 0:
        return mean_y, None
    slope = sum((i - mean_x) * (v - mean_y)
                for i, v in points) / var_x
    span = points[-1][0] - points[0][0]
    return mean_y, slope * span


def check_shard(shard, snaps, args, failures, verbose):
    throughput, rates, rss = series(snaps)
    post = slice(args.warmup, None)

    mean, change = fit_drift(throughput[post])
    if verbose or (mean and change is not None):
        frac = (change / mean) if (mean and change is not None) \
            else 0.0
        print(f"  shard {shard}: throughput mean "
              f"{mean if mean is not None else float('nan'):.3e} "
              f"pkt/tick, fitted change {frac * 100.0:+.2f}% over "
              f"{len(snaps) - args.warmup} intervals")
    if mean and change is not None:
        frac = change / mean
        if frac < -args.max_throughput_decay:
            failures.append(
                f"shard {shard}: throughput decays "
                f"{-frac * 100.0:.2f}% over the post-warm-up "
                f"window (limit "
                f"{args.max_throughput_decay * 100.0:.2f}%)")

    for name, values in rates.items():
        mean, change = fit_drift(values[post])
        if verbose and mean is not None:
            print(f"  shard {shard}: {name} hit rate mean "
                  f"{mean:.4f}, fitted change "
                  f"{(change or 0.0):+.4f}")
        if change is not None and change < -args.max_hitrate_decay:
            failures.append(
                f"shard {shard}: {name} hit rate decays "
                f"{-change:.4f} rate points (limit "
                f"{args.max_hitrate_decay:.4f})")

    tail = [v for v in rss[post] if v is not None]
    if len(tail) >= 2:
        growth = tail[-1] - tail[0]
        monotonic = all(b >= a for a, b in zip(tail, tail[1:]))
        rising = all(b > a for a, b in zip(tail, tail[1:]))
        if verbose:
            print(f"  shard {shard}: VmRSS {tail[0]} -> {tail[-1]} "
                  f"KiB ({growth:+d} KiB, "
                  f"{'monotonic' if monotonic else 'fluctuating'})")
        if monotonic and rising and growth >= args.rss_growth_kib:
            failures.append(
                f"shard {shard}: VmRSS grew monotonically by "
                f"{growth} KiB across the post-warm-up window "
                f"(limit {args.rss_growth_kib} KiB) — leak "
                f"signature")
    elif verbose:
        print(f"  shard {shard}: no RSS telemetry in the stream")


def main():
    parser = argparse.ArgumentParser(
        description="gate on drift/leaks in a soak snapshot stream")
    parser.add_argument("snapshots")
    parser.add_argument("--min-intervals", type=int, default=3,
                        help="minimum intervals per shard for a "
                             "meaningful trend (default 3)")
    parser.add_argument("--warmup", type=int, default=1,
                        help="leading intervals excluded from "
                             "every trend (default 1)")
    parser.add_argument("--max-throughput-decay", type=float,
                        default=0.02,
                        help="largest tolerated fractional "
                             "throughput decay (default 0.02)")
    parser.add_argument("--max-hitrate-decay", type=float,
                        default=0.01,
                        help="largest tolerated hit-rate decay in "
                             "rate points (default 0.01)")
    parser.add_argument("--rss-growth-kib", type=int, default=4096,
                        help="monotonic VmRSS growth below this is "
                             "ignored (default 4096 KiB)")
    parser.add_argument("--verbose", action="store_true",
                        help="print every shard's trajectory "
                             "summary")
    args = parser.parse_args()
    if args.warmup < 0 or args.min_intervals < 2:
        die("--warmup must be >= 0 and --min-intervals >= 2")

    shards = load_stream(args.snapshots)
    for shard, snaps in sorted(shards.items()):
        if len(snaps) < args.min_intervals:
            die(f"shard {shard}: only {len(snaps)} interval(s), "
                f"need {args.min_intervals} for a trend — run too "
                f"short or stream truncated")
        if len(snaps) - args.warmup < 2:
            die(f"shard {shard}: fewer than 2 post-warm-up "
                f"intervals (have {len(snaps)}, warmup "
                f"{args.warmup})")

    failures = []
    for shard, snaps in sorted(shards.items()):
        check_shard(shard, snaps, args, failures, args.verbose)

    intervals = sum(len(s) for s in shards.values())
    if failures:
        print(f"soak_report: FAIL — {len(failures)} drift/leak "
              f"signature(s) across {len(shards)} shard(s), "
              f"{intervals} interval(s):")
        for failure in failures:
            print(f"  {failure}")
        sys.exit(1)
    print(f"soak_report: OK — {len(shards)} shard(s), {intervals} "
          f"interval(s), no drift or leak signatures")
    sys.exit(0)


if __name__ == "__main__":
    main()
