#!/usr/bin/env python3
"""Unit tests for scripts/soak_report.py.

Runs the gate as a subprocess against synthetic "hypersio-soak-1"
snapshot streams and asserts on its exit status and output: 0 for a
clean trajectory, 1 on a drift or leak signature, 2 on usage errors
or truncated/corrupt streams. Registered with ctest as
`soak_report_unittest` (tests/CMakeLists.txt); also runnable
directly:

    python3 -m unittest discover -s scripts -p test_soak_report.py
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "soak_report.py")


def make_snap(shard, interval, *, packets=4000, dticks=1_000_000,
              devtlb=(900, 1000), iotlb=(950, 1000), rss=None,
              seed=42):
    """One synthetic snapshot line (deltas, not cumulatives)."""
    stats = [
        {"path": "system.device.packets", "kind": "counter",
         "value": float(packets * (interval + 1)),
         "delta": float(packets)},
        {"path": "system.device.devtlb.hits", "kind": "callback",
         "value": 0.0, "delta": float(devtlb[0])},
        {"path": "system.device.devtlb.lookups", "kind": "callback",
         "value": 0.0, "delta": float(devtlb[1])},
        {"path": "system.iommu.iotlb.hits", "kind": "callback",
         "value": 0.0, "delta": float(iotlb[0])},
        {"path": "system.iommu.iotlb.lookups", "kind": "callback",
         "value": 0.0, "delta": float(iotlb[1])},
    ]
    snap = {
        "schema": "hypersio-soak-1",
        "shard": shard,
        "seed": seed,
        "interval": interval,
        "sim_ticks": dticks * (interval + 1),
        "delta_sim_ticks": dticks,
        "stats": stats,
    }
    if rss is not None:
        snap["wall"] = {"seconds": 1.0 * (interval + 1),
                        "delta_seconds": 1.0,
                        "vm_rss_kib": rss, "vm_hwm_kib": rss}
    return snap


def steady_stream(intervals=6, shards=1, rss_base=50_000):
    """A flat, healthy trajectory: no drift, stable RSS."""
    lines = []
    for shard in range(shards):
        for i in range(intervals):
            # RSS wobbles up and down around the base — the
            # non-monotonic shape a healthy allocator produces.
            rss = rss_base + (100 if i % 2 else 0)
            lines.append(make_snap(shard, i, rss=rss))
    return lines


class SoakReportTest(unittest.TestCase):
    def setUp(self):
        self._dir = tempfile.TemporaryDirectory()
        self.addCleanup(self._dir.cleanup)

    def write(self, lines):
        path = os.path.join(self._dir.name, "soak.jsonl")
        with open(path, "w") as f:
            for line in lines:
                if isinstance(line, str):
                    f.write(line + "\n")
                else:
                    f.write(json.dumps(line) + "\n")
        return path

    def run_report(self, path, *extra):
        return subprocess.run(
            [sys.executable, SCRIPT, path, *extra],
            capture_output=True, text=True)

    def report(self, lines, *extra):
        return self.run_report(self.write(lines), *extra)

    # ---- exit 0: clean trajectories ------------------------------

    def test_steady_stream_passes(self):
        proc = self.report(steady_stream())
        self.assertEqual(proc.returncode, 0, proc.stdout)
        self.assertIn("OK", proc.stdout)

    def test_multi_shard_steady_stream_passes(self):
        proc = self.report(steady_stream(shards=3), "--verbose")
        self.assertEqual(proc.returncode, 0, proc.stdout)
        self.assertIn("shard 2", proc.stdout)

    def test_small_monotonic_rss_growth_passes(self):
        # Monotonic but under the growth threshold: allocator
        # settling, not a leak.
        lines = [make_snap(0, i, rss=50_000 + i * 10)
                 for i in range(6)]
        self.assertEqual(self.report(lines).returncode, 0)

    def test_improving_throughput_passes(self):
        lines = [make_snap(0, i, packets=4000 + i * 200)
                 for i in range(6)]
        self.assertEqual(self.report(lines).returncode, 0)

    def test_decay_confined_to_warmup_passes(self):
        # A bad first interval (cold caches) must not fail the gate:
        # warm-up intervals are excluded from every trend.
        lines = [make_snap(0, 0, packets=1000, devtlb=(100, 1000))]
        lines += [make_snap(0, i) for i in range(1, 6)]
        self.assertEqual(self.report(lines).returncode, 0,
                         self.report(lines).stdout)

    # ---- exit 1: drift and leak signatures -----------------------

    def test_throughput_decay_fails(self):
        lines = [make_snap(0, i, packets=4000 - i * 100)
                 for i in range(6)]
        proc = self.report(lines)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("throughput decays", proc.stdout)

    def test_hitrate_decay_fails(self):
        lines = [make_snap(0, i, devtlb=(900 - i * 20, 1000))
                 for i in range(6)]
        proc = self.report(lines)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("devtlb hit rate decays", proc.stdout)

    def test_monotonic_rss_growth_fails(self):
        lines = [make_snap(0, i, rss=50_000 + i * 2048)
                 for i in range(6)]
        proc = self.report(lines)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("leak signature", proc.stdout)

    def test_fluctuating_rss_with_same_total_growth_passes(self):
        # The same endpoints, but with a dip on the way: not
        # monotonic, so not the leak signature.
        rss = [50_000, 52_000, 51_000, 55_000, 58_000, 60_240]
        lines = [make_snap(0, i, rss=r) for i, r in enumerate(rss)]
        self.assertEqual(self.report(lines).returncode, 0)

    def test_one_bad_shard_fails_the_run(self):
        lines = steady_stream(shards=2)
        lines += [make_snap(2, i, packets=4000 - i * 100)
                  for i in range(6)]
        proc = self.report(lines)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("shard 2", proc.stdout)

    def test_threshold_flags_widen_the_gate(self):
        lines = [make_snap(0, i, packets=4000 - i * 100)
                 for i in range(6)]
        proc = self.report(lines, "--max-throughput-decay", "0.5")
        self.assertEqual(proc.returncode, 0, proc.stdout)

    # ---- exit 2: usage errors and corrupt streams ----------------

    def test_too_few_intervals_is_a_usage_error(self):
        proc = self.report([make_snap(0, 0), make_snap(0, 1)])
        self.assertEqual(proc.returncode, 2)
        self.assertIn("need 3", proc.stderr)

    def test_noncontiguous_intervals_mean_truncation(self):
        lines = [make_snap(0, i) for i in (0, 1, 3, 4)]
        proc = self.report(lines)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("not contiguous", proc.stderr)

    def test_malformed_line_is_a_corrupt_stream(self):
        lines = steady_stream()[:4] + ['{"schema": "hypersio-so']
        proc = self.report(lines)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("malformed JSON", proc.stderr)

    def test_mixed_seeds_are_rejected(self):
        lines = [make_snap(0, i) for i in range(3)]
        lines += [make_snap(1, i, seed=7) for i in range(3)]
        proc = self.report(lines)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("mixed seeds", proc.stderr)

    def test_unknown_schema_is_rejected(self):
        snap = make_snap(0, 0)
        snap["schema"] = "hypersio-soak-999"
        proc = self.report([snap])
        self.assertEqual(proc.returncode, 2)
        self.assertIn("unknown schema", proc.stderr)

    def test_missing_file_is_a_usage_error(self):
        proc = self.run_report(
            os.path.join(self._dir.name, "nope.jsonl"))
        self.assertEqual(proc.returncode, 2)
        self.assertIn("cannot read", proc.stderr)

    def test_empty_file_is_a_usage_error(self):
        proc = self.report([])
        self.assertEqual(proc.returncode, 2)
        self.assertIn("no snapshots", proc.stderr)


if __name__ == "__main__":
    unittest.main()
