file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_runner.dir/test_parallel_runner.cc.o"
  "CMakeFiles/test_parallel_runner.dir/test_parallel_runner.cc.o.d"
  "test_parallel_runner"
  "test_parallel_runner.pdb"
  "test_parallel_runner[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
