file(REMOVE_RECURSE
  "CMakeFiles/test_iommu.dir/test_iommu.cc.o"
  "CMakeFiles/test_iommu.dir/test_iommu.cc.o.d"
  "test_iommu"
  "test_iommu.pdb"
  "test_iommu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_iommu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
