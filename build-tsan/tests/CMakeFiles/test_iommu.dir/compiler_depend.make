# Empty compiler generated dependencies file for test_iommu.
# This may be replaced when dependencies are built.
