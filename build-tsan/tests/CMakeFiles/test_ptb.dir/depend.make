# Empty dependencies file for test_ptb.
# This may be replaced when dependencies are built.
