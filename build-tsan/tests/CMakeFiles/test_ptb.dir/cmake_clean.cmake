file(REMOVE_RECURSE
  "CMakeFiles/test_ptb.dir/test_ptb.cc.o"
  "CMakeFiles/test_ptb.dir/test_ptb.cc.o.d"
  "test_ptb"
  "test_ptb.pdb"
  "test_ptb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ptb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
