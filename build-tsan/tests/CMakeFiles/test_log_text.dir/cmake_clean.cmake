file(REMOVE_RECURSE
  "CMakeFiles/test_log_text.dir/test_log_text.cc.o"
  "CMakeFiles/test_log_text.dir/test_log_text.cc.o.d"
  "test_log_text"
  "test_log_text.pdb"
  "test_log_text[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_log_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
