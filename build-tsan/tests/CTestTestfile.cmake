# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-tsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/test_util[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_stats[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_event_queue[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_cache[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_replacement[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_page_table[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_memory_model[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_iommu[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_trace[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_workload[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_prefetch[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_ptb[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_device[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_system[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_config[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_properties[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_extensions[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_log_text[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_debug[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_runner[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_logging[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_parallel_runner[1]_include.cmake")
