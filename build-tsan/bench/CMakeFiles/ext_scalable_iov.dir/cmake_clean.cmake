file(REMOVE_RECURSE
  "CMakeFiles/ext_scalable_iov.dir/ext_scalable_iov.cc.o"
  "CMakeFiles/ext_scalable_iov.dir/ext_scalable_iov.cc.o.d"
  "ext_scalable_iov"
  "ext_scalable_iov.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_scalable_iov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
