# Empty dependencies file for ext_scalable_iov.
# This may be replaced when dependencies are built.
