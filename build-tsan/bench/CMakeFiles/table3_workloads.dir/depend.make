# Empty dependencies file for table3_workloads.
# This may be replaced when dependencies are built.
