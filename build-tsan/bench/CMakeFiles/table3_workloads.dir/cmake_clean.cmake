file(REMOVE_RECURSE
  "CMakeFiles/table3_workloads.dir/table3_workloads.cc.o"
  "CMakeFiles/table3_workloads.dir/table3_workloads.cc.o.d"
  "table3_workloads"
  "table3_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
