file(REMOVE_RECURSE
  "CMakeFiles/fig04_iommu_missrate.dir/fig04_iommu_missrate.cc.o"
  "CMakeFiles/fig04_iommu_missrate.dir/fig04_iommu_missrate.cc.o.d"
  "fig04_iommu_missrate"
  "fig04_iommu_missrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_iommu_missrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
