# Empty compiler generated dependencies file for fig04_iommu_missrate.
# This may be replaced when dependencies are built.
