file(REMOVE_RECURSE
  "CMakeFiles/fig11b_replacement.dir/fig11b_replacement.cc.o"
  "CMakeFiles/fig11b_replacement.dir/fig11b_replacement.cc.o.d"
  "fig11b_replacement"
  "fig11b_replacement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11b_replacement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
