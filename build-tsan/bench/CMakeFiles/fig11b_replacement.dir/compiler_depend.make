# Empty compiler generated dependencies file for fig11b_replacement.
# This may be replaced when dependencies are built.
