file(REMOVE_RECURSE
  "CMakeFiles/fig05_native_vs_vf.dir/fig05_native_vs_vf.cc.o"
  "CMakeFiles/fig05_native_vs_vf.dir/fig05_native_vs_vf.cc.o.d"
  "fig05_native_vs_vf"
  "fig05_native_vs_vf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_native_vs_vf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
