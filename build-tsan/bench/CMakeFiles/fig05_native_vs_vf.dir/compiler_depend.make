# Empty compiler generated dependencies file for fig05_native_vs_vf.
# This may be replaced when dependencies are built.
