file(REMOVE_RECURSE
  "CMakeFiles/fig11c_fullassoc.dir/fig11c_fullassoc.cc.o"
  "CMakeFiles/fig11c_fullassoc.dir/fig11c_fullassoc.cc.o.d"
  "fig11c_fullassoc"
  "fig11c_fullassoc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11c_fullassoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
