# Empty dependencies file for fig11c_fullassoc.
# This may be replaced when dependencies are built.
