file(REMOVE_RECURSE
  "CMakeFiles/fig12c_prefetch.dir/fig12c_prefetch.cc.o"
  "CMakeFiles/fig12c_prefetch.dir/fig12c_prefetch.cc.o.d"
  "fig12c_prefetch"
  "fig12c_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12c_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
