# Empty dependencies file for fig12c_prefetch.
# This may be replaced when dependencies are built.
