file(REMOVE_RECURSE
  "CMakeFiles/fig11a_devtlb_size.dir/fig11a_devtlb_size.cc.o"
  "CMakeFiles/fig11a_devtlb_size.dir/fig11a_devtlb_size.cc.o.d"
  "fig11a_devtlb_size"
  "fig11a_devtlb_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11a_devtlb_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
