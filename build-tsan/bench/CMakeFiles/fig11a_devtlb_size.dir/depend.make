# Empty dependencies file for fig11a_devtlb_size.
# This may be replaced when dependencies are built.
