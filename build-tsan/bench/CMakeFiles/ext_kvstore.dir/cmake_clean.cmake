file(REMOVE_RECURSE
  "CMakeFiles/ext_kvstore.dir/ext_kvstore.cc.o"
  "CMakeFiles/ext_kvstore.dir/ext_kvstore.cc.o.d"
  "ext_kvstore"
  "ext_kvstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_kvstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
