# Empty compiler generated dependencies file for ext_kvstore.
# This may be replaced when dependencies are built.
