file(REMOVE_RECURSE
  "CMakeFiles/table2_parameters.dir/table2_parameters.cc.o"
  "CMakeFiles/table2_parameters.dir/table2_parameters.cc.o.d"
  "table2_parameters"
  "table2_parameters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_parameters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
