file(REMOVE_RECURSE
  "CMakeFiles/fig09_devtlb_config.dir/fig09_devtlb_config.cc.o"
  "CMakeFiles/fig09_devtlb_config.dir/fig09_devtlb_config.cc.o.d"
  "fig09_devtlb_config"
  "fig09_devtlb_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_devtlb_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
