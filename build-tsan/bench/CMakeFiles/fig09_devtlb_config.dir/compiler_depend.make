# Empty compiler generated dependencies file for fig09_devtlb_config.
# This may be replaced when dependencies are built.
