# Empty compiler generated dependencies file for fig12a_partitioning.
# This may be replaced when dependencies are built.
