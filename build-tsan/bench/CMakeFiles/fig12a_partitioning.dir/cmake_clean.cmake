file(REMOVE_RECURSE
  "CMakeFiles/fig12a_partitioning.dir/fig12a_partitioning.cc.o"
  "CMakeFiles/fig12a_partitioning.dir/fig12a_partitioning.cc.o.d"
  "fig12a_partitioning"
  "fig12a_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12a_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
