file(REMOVE_RECURSE
  "CMakeFiles/fig12b_ptb.dir/fig12b_ptb.cc.o"
  "CMakeFiles/fig12b_ptb.dir/fig12b_ptb.cc.o.d"
  "fig12b_ptb"
  "fig12b_ptb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12b_ptb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
