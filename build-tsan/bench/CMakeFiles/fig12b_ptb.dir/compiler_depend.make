# Empty compiler generated dependencies file for fig12b_ptb.
# This may be replaced when dependencies are built.
