file(REMOVE_RECURSE
  "CMakeFiles/fig08_characterization.dir/fig08_characterization.cc.o"
  "CMakeFiles/fig08_characterization.dir/fig08_characterization.cc.o.d"
  "fig08_characterization"
  "fig08_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
