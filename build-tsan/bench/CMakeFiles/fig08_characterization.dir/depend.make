# Empty dependencies file for fig08_characterization.
# This may be replaced when dependencies are built.
