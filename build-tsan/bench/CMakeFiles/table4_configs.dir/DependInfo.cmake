
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table4_configs.cc" "bench/CMakeFiles/table4_configs.dir/table4_configs.cc.o" "gcc" "bench/CMakeFiles/table4_configs.dir/table4_configs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/core/CMakeFiles/hypersio_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/iommu/CMakeFiles/hypersio_iommu.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/workload/CMakeFiles/hypersio_workload.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/trace/CMakeFiles/hypersio_trace.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/cache/CMakeFiles/hypersio_cache.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/stats/CMakeFiles/hypersio_stats.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/hypersio_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
