file(REMOVE_RECURSE
  "CMakeFiles/table4_configs.dir/table4_configs.cc.o"
  "CMakeFiles/table4_configs.dir/table4_configs.cc.o.d"
  "table4_configs"
  "table4_configs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
