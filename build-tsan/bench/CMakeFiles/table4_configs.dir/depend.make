# Empty dependencies file for table4_configs.
# This may be replaced when dependencies are built.
