# Empty compiler generated dependencies file for prefetch_tuning.
# This may be replaced when dependencies are built.
