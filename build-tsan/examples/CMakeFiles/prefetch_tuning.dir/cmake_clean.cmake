file(REMOVE_RECURSE
  "CMakeFiles/prefetch_tuning.dir/prefetch_tuning.cpp.o"
  "CMakeFiles/prefetch_tuning.dir/prefetch_tuning.cpp.o.d"
  "prefetch_tuning"
  "prefetch_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prefetch_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
