# Empty dependencies file for hypersio_cache.
# This may be replaced when dependencies are built.
