file(REMOVE_RECURSE
  "CMakeFiles/hypersio_cache.dir/replacement.cc.o"
  "CMakeFiles/hypersio_cache.dir/replacement.cc.o.d"
  "libhypersio_cache.a"
  "libhypersio_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypersio_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
