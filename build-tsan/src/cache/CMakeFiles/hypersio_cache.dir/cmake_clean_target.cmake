file(REMOVE_RECURSE
  "libhypersio_cache.a"
)
