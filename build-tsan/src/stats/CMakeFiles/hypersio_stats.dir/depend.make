# Empty dependencies file for hypersio_stats.
# This may be replaced when dependencies are built.
