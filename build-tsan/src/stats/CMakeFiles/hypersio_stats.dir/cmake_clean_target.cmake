file(REMOVE_RECURSE
  "libhypersio_stats.a"
)
