file(REMOVE_RECURSE
  "CMakeFiles/hypersio_stats.dir/stats.cc.o"
  "CMakeFiles/hypersio_stats.dir/stats.cc.o.d"
  "libhypersio_stats.a"
  "libhypersio_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypersio_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
