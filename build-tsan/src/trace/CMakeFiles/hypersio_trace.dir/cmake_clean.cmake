file(REMOVE_RECURSE
  "CMakeFiles/hypersio_trace.dir/constructor.cc.o"
  "CMakeFiles/hypersio_trace.dir/constructor.cc.o.d"
  "CMakeFiles/hypersio_trace.dir/record.cc.o"
  "CMakeFiles/hypersio_trace.dir/record.cc.o.d"
  "CMakeFiles/hypersio_trace.dir/trace_file.cc.o"
  "CMakeFiles/hypersio_trace.dir/trace_file.cc.o.d"
  "libhypersio_trace.a"
  "libhypersio_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypersio_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
