# Empty dependencies file for hypersio_trace.
# This may be replaced when dependencies are built.
