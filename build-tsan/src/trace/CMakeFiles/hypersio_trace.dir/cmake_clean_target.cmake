file(REMOVE_RECURSE
  "libhypersio_trace.a"
)
