file(REMOVE_RECURSE
  "CMakeFiles/hypersio_iommu.dir/iommu.cc.o"
  "CMakeFiles/hypersio_iommu.dir/iommu.cc.o.d"
  "libhypersio_iommu.a"
  "libhypersio_iommu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypersio_iommu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
