file(REMOVE_RECURSE
  "libhypersio_iommu.a"
)
