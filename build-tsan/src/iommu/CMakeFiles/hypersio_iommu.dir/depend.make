# Empty dependencies file for hypersio_iommu.
# This may be replaced when dependencies are built.
