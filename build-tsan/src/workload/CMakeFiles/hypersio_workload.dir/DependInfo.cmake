
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/benchmarks.cc" "src/workload/CMakeFiles/hypersio_workload.dir/benchmarks.cc.o" "gcc" "src/workload/CMakeFiles/hypersio_workload.dir/benchmarks.cc.o.d"
  "/root/repo/src/workload/log_text.cc" "src/workload/CMakeFiles/hypersio_workload.dir/log_text.cc.o" "gcc" "src/workload/CMakeFiles/hypersio_workload.dir/log_text.cc.o.d"
  "/root/repo/src/workload/tenant_model.cc" "src/workload/CMakeFiles/hypersio_workload.dir/tenant_model.cc.o" "gcc" "src/workload/CMakeFiles/hypersio_workload.dir/tenant_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/trace/CMakeFiles/hypersio_trace.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/hypersio_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
