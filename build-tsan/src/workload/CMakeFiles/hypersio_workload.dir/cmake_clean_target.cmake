file(REMOVE_RECURSE
  "libhypersio_workload.a"
)
