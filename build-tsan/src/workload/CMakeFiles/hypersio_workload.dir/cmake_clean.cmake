file(REMOVE_RECURSE
  "CMakeFiles/hypersio_workload.dir/benchmarks.cc.o"
  "CMakeFiles/hypersio_workload.dir/benchmarks.cc.o.d"
  "CMakeFiles/hypersio_workload.dir/log_text.cc.o"
  "CMakeFiles/hypersio_workload.dir/log_text.cc.o.d"
  "CMakeFiles/hypersio_workload.dir/tenant_model.cc.o"
  "CMakeFiles/hypersio_workload.dir/tenant_model.cc.o.d"
  "libhypersio_workload.a"
  "libhypersio_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypersio_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
