# Empty dependencies file for hypersio_workload.
# This may be replaced when dependencies are built.
