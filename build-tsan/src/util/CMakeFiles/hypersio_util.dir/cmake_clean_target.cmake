file(REMOVE_RECURSE
  "libhypersio_util.a"
)
