# Empty dependencies file for hypersio_util.
# This may be replaced when dependencies are built.
