file(REMOVE_RECURSE
  "CMakeFiles/hypersio_util.dir/debug.cc.o"
  "CMakeFiles/hypersio_util.dir/debug.cc.o.d"
  "CMakeFiles/hypersio_util.dir/logging.cc.o"
  "CMakeFiles/hypersio_util.dir/logging.cc.o.d"
  "CMakeFiles/hypersio_util.dir/str.cc.o"
  "CMakeFiles/hypersio_util.dir/str.cc.o.d"
  "libhypersio_util.a"
  "libhypersio_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypersio_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
