file(REMOVE_RECURSE
  "libhypersio_core.a"
)
