# Empty dependencies file for hypersio_core.
# This may be replaced when dependencies are built.
