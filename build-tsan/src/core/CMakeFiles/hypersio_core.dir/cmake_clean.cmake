file(REMOVE_RECURSE
  "CMakeFiles/hypersio_core.dir/chipset.cc.o"
  "CMakeFiles/hypersio_core.dir/chipset.cc.o.d"
  "CMakeFiles/hypersio_core.dir/config.cc.o"
  "CMakeFiles/hypersio_core.dir/config.cc.o.d"
  "CMakeFiles/hypersio_core.dir/device.cc.o"
  "CMakeFiles/hypersio_core.dir/device.cc.o.d"
  "CMakeFiles/hypersio_core.dir/multi_system.cc.o"
  "CMakeFiles/hypersio_core.dir/multi_system.cc.o.d"
  "CMakeFiles/hypersio_core.dir/overrides.cc.o"
  "CMakeFiles/hypersio_core.dir/overrides.cc.o.d"
  "CMakeFiles/hypersio_core.dir/runner.cc.o"
  "CMakeFiles/hypersio_core.dir/runner.cc.o.d"
  "CMakeFiles/hypersio_core.dir/system.cc.o"
  "CMakeFiles/hypersio_core.dir/system.cc.o.d"
  "libhypersio_core.a"
  "libhypersio_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypersio_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
