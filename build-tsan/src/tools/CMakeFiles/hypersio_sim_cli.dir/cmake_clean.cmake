file(REMOVE_RECURSE
  "CMakeFiles/hypersio_sim_cli.dir/hypersio_sim.cc.o"
  "CMakeFiles/hypersio_sim_cli.dir/hypersio_sim.cc.o.d"
  "hypersio_sim"
  "hypersio_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypersio_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
