# Empty dependencies file for hypersio_sim_cli.
# This may be replaced when dependencies are built.
