/**
 * @file
 * Context Cache: maps a request's Source ID (PCIe Bus/Device/Function)
 * to its Context Entry — the tenant's Domain ID and second-level
 * page-table root (step 1-2 in the paper's Fig. 3). Misses cost two
 * dependent memory reads (root-table entry, then context entry).
 */

#ifndef HYPERSIO_IOMMU_CONTEXT_CACHE_HH
#define HYPERSIO_IOMMU_CONTEXT_CACHE_HH

#include "cache/set_assoc_cache.hh"
#include "mem/page_table.hh"
#include "util/logging.hh"
#include "trace/record.hh"

namespace hypersio::iommu
{

/** A cached context entry. */
struct ContextEntry
{
    mem::DomainId domain = 0;
};

/** Memory reads needed to fetch a context entry on a miss. */
constexpr unsigned ContextWalkAccesses = 2;

/**
 * Set-associative cache of context entries. The (SID, PASID) → DID
 * mapping itself is established by the hypervisor when a VF (or,
 * with Scalable IOV, a process-level assignable interface) is
 * assigned; all consumers go through this cache so its
 * capacity/latency effects are modelled.
 */
class ContextCache
{
  public:
    /**
     * Source IDs supported in the DID encoding: the SID occupies the
     * low bits of the Domain ID (did = pasid * SidSpace + sid), so
     * everything keyed by "did mod partitions" — the PTag row
     * selection of the partitioned caches — behaves exactly as if
     * keyed by the SID, as the paper specifies, while distinct
     * PASIDs still name distinct address spaces.
     */
    static constexpr uint32_t SidSpace = 4096;

    explicit ContextCache(const cache::CacheConfig &config)
        : _cache(config)
    {}

    /**
     * Looks up the context entry for (`sid`, `pasid`).
     * @return entry pointer, or nullptr on miss (caller fetches the
     *         entry via fill() after charging ContextWalkAccesses)
     */
    const ContextEntry *
    lookup(trace::SourceId sid, uint16_t pasid = 0)
    {
        const uint64_t key = contextKey(sid, pasid);
        return _cache.lookup(key, key);
    }

    /** Installs the entry after a memory fetch. */
    void
    fill(trace::SourceId sid, uint16_t pasid,
         const ContextEntry &entry)
    {
        const uint64_t key = contextKey(sid, pasid);
        _cache.insert(key, key, entry);
    }

    /** The authoritative (SID, PASID) → DID mapping. */
    static ContextEntry
    resolve(trace::SourceId sid, uint16_t pasid = 0)
    {
        HYPERSIO_ASSERT(sid < SidSpace,
                        "SID %u exceeds the DID encoding", sid);
        return ContextEntry{static_cast<mem::DomainId>(
            static_cast<uint32_t>(pasid) * SidSpace + sid)};
    }

    /** Recovers the SID from an encoded Domain ID. */
    static constexpr trace::SourceId
    sidOf(mem::DomainId domain)
    {
        return static_cast<trace::SourceId>(domain % SidSpace);
    }

    /** Packs (sid, pasid) into one cache key. */
    static constexpr uint64_t
    contextKey(trace::SourceId sid, uint16_t pasid)
    {
        return (static_cast<uint64_t>(sid) << 16) | pasid;
    }

    const cache::CacheStats &stats() const { return _cache.stats(); }
    /** See SetAssocCache::exportStats(). */
    void
    exportStats(stats::StatGroup &group) const
    {
        _cache.exportStats(group);
    }
    void flush() { _cache.flush(); }

  private:
    cache::SetAssocCache<ContextEntry> _cache;
};

} // namespace hypersio::iommu

#endif // HYPERSIO_IOMMU_CONTEXT_CACHE_HH
