/**
 * @file
 * The IOMMU translation subsystem (chipset side of Fig. 3).
 *
 * On a translation request the IOMMU checks its IOTLB (final
 * gIOVA→hPA translations); on a miss it performs a two-dimensional
 * page-table walk, starting from the deepest paging-structure cache
 * hit (L2/L3 TLBs), charging the per-level memory accesses of
 * Fig. 2 / Table II through the MemoryModel. Concurrent walks are
 * bounded by a configurable number of walker slots, and walks to the
 * same page coalesce MSHR-style. Completed walks fill the IOTLB and
 * the paging caches.
 */

#ifndef HYPERSIO_IOMMU_IOMMU_HH
#define HYPERSIO_IOMMU_IOMMU_HH

#include <deque>
#include <functional>
#include <vector>

#include "cache/set_assoc_cache.hh"
#include "iommu/keys.hh"
#include "mem/memory_model.hh"
#include "mem/page_table.hh"
#include "sim/sim_object.hh"
#include "util/flat_map.hh"
#include "util/pool.hh"

namespace hypersio::iommu
{

/** Lazily creating directory of per-tenant page tables. */
class PageTableDirectory
{
  public:
    explicit PageTableDirectory(uint64_t seed) : _seed(seed) {}

    /**
     * The page table of `domain`, created on first use. The
     * reference is only stable until the next get() of a *new*
     * domain (the directory is an open-addressed table); callers
     * must not hold it across table creation.
     *
     * A one-entry inline cache short-circuits the table probe: the
     * translation path performs several consecutive get()s of the
     * same domain per packet (ops, walk levels, history), so the
     * repeat rate is very high. The cached pointer is dropped on
     * erase() — a backward-shift erase of *another* domain may move
     * this one's slot — and refreshed on every probing get(), so it
     * can never outlive the entry it names.
     */
    mem::PageTable &
    get(mem::DomainId domain)
    {
        if (domain == _lastDomain && _lastTable)
            return *_lastTable;
        auto [table, inserted] = _tables.tryEmplace(domain);
        if (inserted)
            *table = mem::PageTable(domain, _seed);
        _lastDomain = domain;
        _lastTable = table;
        return *table;
    }

    const mem::PageTable *
    find(mem::DomainId domain) const
    {
        return _tables.find(domain);
    }

    /** Like find(), for callers that must mutate without creating. */
    mem::PageTable *
    findExisting(mem::DomainId domain)
    {
        return _tables.find(domain);
    }

    /**
     * Drops `domain`'s page table entirely (tenant detach).
     * @return true when a table existed.
     */
    bool
    erase(mem::DomainId domain)
    {
        _lastTable = nullptr;
        return _tables.erase(domain);
    }

    size_t size() const { return _tables.size(); }

    /**
     * Visits every live domain ID. Unspecified order (see FlatMap);
     * deterministic callers must sort the IDs they collect.
     */
    template <typename Fn>
    void
    forEachDomain(Fn &&fn) const
    {
        _tables.forEach(
            [&](const mem::DomainId &domain, const mem::PageTable &) {
                fn(domain);
            });
    }

  private:
    uint64_t _seed;
    util::FlatMap<mem::DomainId, mem::PageTable> _tables;
    /** One-entry inline cache for get(); see get() for invalidation
     *  rules. The pointer gates validity, so domain 0 needs no
     *  special-casing. */
    mem::DomainId _lastDomain = 0;
    mem::PageTable *_lastTable = nullptr;
};

/** IOMMU configuration (paging caches per Table II / Table IV). */
struct IommuConfig
{
    /**
     * Chipset-side final-translation cache. Unlike the simple
     * device TLB, the IOMMU hashes the domain into the set index,
     * so identical guest gIOVAs from different tenants spread over
     * all sets.
     */
    cache::CacheConfig iotlb{4096, 8, 1, cache::ReplPolicyKind::LFU,
                             1, true};
    cache::CacheConfig l2tlb{512, 16, 1, cache::ReplPolicyKind::LFU,
                             2};
    cache::CacheConfig l3tlb{1024, 16, 1, cache::ReplPolicyKind::LFU,
                             3};
    /**
     * Concurrent page-table walks; 0 = unlimited (the paper's
     * latency-only model).
     */
    unsigned walkers = 0;
    /**
     * Anti-starvation bound for queued prefetch walks: after this
     * many consecutive demand dispatches while a prefetch waits, the
     * oldest queued prefetch takes the next walker slot. Demand
     * traffic otherwise starves the prefetch queue forever while its
     * MSHR entries pin walker bookkeeping. 0 disables aging
     * (strict demand-first, the pre-fix behaviour).
     */
    unsigned prefetchAgingThreshold = 8;
    /** IOTLB hit latency (Table II: 2 ns). */
    Tick iotlbHitLatency = 2 * TicksPerNs;
    /**
     * Paging depth of both walk dimensions: 4 (24-access full walk)
     * or 5 (35 accesses, 5-level paging / 5-level EPT).
     */
    unsigned pagingLevels = 4;
};

/** One translation request presented to the IOMMU. */
struct IommuRequest
{
    mem::DomainId domain = 0;
    mem::Iova iova = 0;
    mem::PageSize size = mem::PageSize::Size4K;
    bool prefetch = false; ///< issued by the IOVA History Reader
};

/** The IOMMU's answer. */
struct IommuResponse
{
    mem::Addr hostAddr = 0;
    bool valid = false;   ///< false = translation fault (unmapped)
    bool iotlbHit = false;
};

/**
 * The IOMMU performance model. Completion is signalled through a
 * callback; the caller adds any interconnect (PCIe) latency itself.
 */
class Iommu : public sim::SimObject
{
  public:
    using ResponseFn = std::function<void(const IommuResponse &)>;

    Iommu(const IommuConfig &config, sim::EventQueue &queue,
          stats::StatGroup &parent, mem::MemoryModel &memory,
          PageTableDirectory &tables);

    /**
     * Asynchronously translates `req`; `done` fires on completion.
     * With `may_fuse` (the caller is in tail position of an event
     * callback) an IOTLB hit's fixed latency may collapse into a
     * synchronous `done` at the identical (tick, priority, seq) the
     * hit event would have had; walks and coalesced requests always
     * take the event path.
     */
    void translate(const IommuRequest &req, ResponseFn done,
                   bool may_fuse = false);

    /**
     * True while a `done` callback is being delivered from tail
     * position — the end of an IOTLB-hit event or a fused
     * continuation of one. Callers that want to fuse their own next
     * hop inside `done` (the XlatePort's PCIe return leg) must check
     * this: walk completions fan out to coalesced waiters and keep
     * working afterwards, so their deliveries are never fusible.
     */
    bool fusedDelivery() const { return _fusedDelivery; }

    /**
     * Invalidates any cached final translation of the page at `iova`
     * (called on driver unmap). Paging-structure entries stay valid:
     * the intermediate table pointers do not change on leaf unmap.
     */
    void invalidate(mem::DomainId domain, mem::Iova iova,
                    mem::PageSize size);

    /** Drops every cached entry (global invalidation). */
    void flushAll();

    const cache::CacheStats &iotlbStats() const
    {
        return _iotlb.stats();
    }
    const cache::CacheStats &l2Stats() const { return _l2.stats(); }
    const cache::CacheStats &l3Stats() const { return _l3.stats(); }

    /** Valid IOTLB entries (O(entries); shadow checks and tests). */
    size_t iotlbOccupancy() const { return _iotlb.occupancy(); }
    size_t l2Occupancy() const { return _l2.occupancy(); }
    size_t l3Occupancy() const { return _l3.occupancy(); }

    /** Walks currently occupying a walker slot. */
    unsigned activeWalks() const { return _activeWalks; }
    /** Queued prefetch walks promoted by the aging bound. */
    uint64_t prefetchPromotions() const
    {
        return _prefetchPromotions.count();
    }
    /** Walks waiting for a walker slot. */
    size_t queuedWalks() const
    {
        return _demandQueue.size() + _prefetchQueue.size();
    }

  private:
    struct Walk
    {
        IommuRequest req;
        uint64_t key;
        std::vector<ResponseFn> waiters;
    };

    void startWalk(uint64_t key);
    void finishWalk(Walk &walk, const mem::Translation &xlate);
    void dispatchQueued();
    unsigned walkAccessesFor(const IommuRequest &req);

    /** One IOTLB hit awaiting delivery: the hit event captures only
     *  (this, slot) so the closure stays inline in the event slab. */
    struct HitDelivery
    {
        ResponseFn done;
        IommuResponse resp;
    };
    /** Delivers pooled hit `slot` with the fused-delivery scope set. */
    void deliverHit(uint32_t slot);

    IommuConfig _config;
    mem::MemoryModel &_memory;
    PageTableDirectory &_tables;

    cache::SetAssocCache<IommuResponse> _iotlb;
    /** Paging-structure caches; the value is unused (presence only). */
    cache::SetAssocCache<uint8_t> _l2;
    cache::SetAssocCache<uint8_t> _l3;

    /** In-flight walks by translation key (MSHR coalescing). */
    util::FlatMap<uint64_t, Walk> _mshr;
    /** Pending IOTLB-hit deliveries (see HitDelivery). */
    util::SlabPool<HitDelivery> _hits;
    /** See fusedDelivery(). */
    bool _fusedDelivery = false;
    unsigned _activeWalks = 0;
    std::deque<uint64_t> _demandQueue;
    std::deque<uint64_t> _prefetchQueue;
    /** Demand dispatches since the last prefetch dispatch while a
     *  prefetch waited (aging bound input). */
    unsigned _demandStreak = 0;

    stats::Counter &_requests;
    stats::Counter &_prefetchRequests;
    stats::Counter &_iotlbHits;
    stats::Counter &_walks;
    stats::Counter &_coalesced;
    stats::Counter &_faults;
    stats::Counter &_prefetchPromotions;
    stats::Histogram &_walkAccessHist;
};

} // namespace hypersio::iommu

#endif // HYPERSIO_IOMMU_IOMMU_HH
