/**
 * @file
 * Key packing for translation caching structures.
 *
 * Every TLB-like structure in the model maps a 64-bit key to a value.
 * Keys must uniquely identify (domain, page-size, page-frame) for
 * final-translation caches, or (domain, level, gIOVA-prefix) for
 * paging-structure caches. The *index* used for set selection is kept
 * separate (the page frame / prefix alone) so that tenants that use
 * identical gIOVAs — the common case the paper highlights — collide
 * in the same cache rows.
 */

#ifndef HYPERSIO_IOMMU_KEYS_HH
#define HYPERSIO_IOMMU_KEYS_HH

#include "mem/addr.hh"
#include "mem/page_table.hh"
#include "util/logging.hh"

namespace hypersio::iommu
{

/**
 * Key of a final gIOVA→hPA translation: domain, page size bit, and
 * page frame. Frames fit in 39 bits (we model a <= 2^51-byte gIOVA
 * space), domains in 20 bits.
 */
constexpr uint64_t
translationKey(mem::DomainId domain, mem::Iova iova,
               mem::PageSize size)
{
    const uint64_t frame = mem::pageFrame(iova, size);
    const uint64_t size_bit =
        size == mem::PageSize::Size2M ? 1 : 0;
    return (static_cast<uint64_t>(domain) << 40) | (size_bit << 39) |
           frame;
}

/** Set-selection index of a final translation (its page frame). */
constexpr uint64_t
translationIndex(mem::Iova iova, mem::PageSize size)
{
    return mem::pageFrame(iova, size);
}

/**
 * Key of a paging-structure cache entry at `level`: domain plus the
 * gIOVA prefix covering levels 4..level.
 */
constexpr uint64_t
pagingKey(mem::DomainId domain, mem::Iova iova, unsigned level)
{
    return (static_cast<uint64_t>(domain) << 40) |
           (static_cast<uint64_t>(level) << 36) |
           mem::levelPrefix(iova, level);
}

/** Set-selection index of a paging-structure entry (its prefix). */
constexpr uint64_t
pagingIndex(mem::Iova iova, unsigned level)
{
    return mem::levelPrefix(iova, level);
}

} // namespace hypersio::iommu

#endif // HYPERSIO_IOMMU_KEYS_HH
