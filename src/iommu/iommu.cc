#include "iommu/iommu.hh"

#include "oracle/hooks.hh"
#include "util/debug.hh"

namespace hypersio::iommu
{

namespace
{
debug::Flag IommuFlag("IOMMU", "IOMMU requests, walks, and fills");
} // namespace

Iommu::Iommu(const IommuConfig &config, sim::EventQueue &queue,
             stats::StatGroup &parent, mem::MemoryModel &memory,
             PageTableDirectory &tables)
    : SimObject("iommu", queue, parent), _config(config),
      _memory(memory), _tables(tables), _iotlb(config.iotlb),
      _l2(config.l2tlb), _l3(config.l3tlb),
      _requests(statGroup().makeCounter("requests",
                                        "translation requests")),
      _prefetchRequests(statGroup().makeCounter(
          "prefetch_requests", "prefetch translation requests")),
      _iotlbHits(
          statGroup().makeCounter("iotlb_hits", "IOTLB hits")),
      _walks(statGroup().makeCounter("walks",
                                     "page-table walks started")),
      _coalesced(statGroup().makeCounter(
          "coalesced", "requests coalesced onto in-flight walks")),
      _faults(statGroup().makeCounter("faults",
                                      "translation faults")),
      _prefetchPromotions(statGroup().makeCounter(
          "prefetch_promotions",
          "queued prefetch walks promoted by the aging bound")),
      _walkAccessHist(statGroup().makeHistogram(
          "walk_accesses", "memory accesses per walk", 0, 40, 40))
{
    if (config.pagingLevels != 4 && config.pagingLevels != 5)
        fatal("pagingLevels must be 4 or 5 (got %u)",
              config.pagingLevels);

    // Per-structure hit/miss breakdowns, read live at dump time.
    _iotlb.exportStats(statGroup().child("iotlb"));
    _l2.exportStats(statGroup().child("l2_cache"));
    _l3.exportStats(statGroup().child("l3_cache"));
}

void
Iommu::translate(const IommuRequest &req, ResponseFn done,
                 bool may_fuse)
{
    ++_requests;
    if (req.prefetch)
        ++_prefetchRequests;

    const uint64_t key = translationKey(req.domain, req.iova, req.size);
    const uint64_t index = translationIndex(req.iova, req.size);

    // 1. IOTLB: final-translation cache. The hit's latency is fixed,
    // so the delivery goes through a pooled HitDelivery slot either
    // way: fused (tail caller, clear window) it runs synchronously
    // at the hit's exact tick; otherwise it is the hit event, whose
    // (this, slot) closure stays inline in the event slab. Both
    // deliveries run inside the fusedDelivery() scope — they are the
    // tail of their dispatch, unlike a walk's waiter fan-out.
    IommuResponse *hit = _iotlb.lookup(key, index, req.domain);
    HYPERSIO_SHADOW(iommuIotlbLookup(
        req.domain, req.iova, req.size,
        _iotlb.setFor(key, index, req.domain), hit != nullptr,
        hit ? hit->hostAddr : 0));
    if (hit) {
        ++_iotlbHits;
        const uint32_t slot = _hits.alloc();
        HitDelivery &pending = _hits.at(slot);
        pending.done = std::move(done);
        pending.resp = *hit;
        pending.resp.iotlbHit = true;
        if (may_fuse &&
            eventQueue().tryFuseAdvance(_config.iotlbHitLatency)) {
            deliverHit(slot);
            return;
        }
        eventQueue().scheduleAfter(
            _config.iotlbHitLatency,
            [this, slot]() { deliverHit(slot); });
        return;
    }

    // 2. MSHR: coalesce onto an in-flight walk for the same page.
    if (Walk *walk = _mshr.find(key)) {
        ++_coalesced;
        HYPERSIO_SHADOW(
            iommuCoalesced(req.domain, req.iova, req.size));
        walk->waiters.push_back(std::move(done));
        return;
    }

    // 3. New walk.
    auto [walk, inserted] = _mshr.tryEmplace(key);
    HYPERSIO_ASSERT(inserted, "duplicate MSHR entry");
    walk->req = req;
    walk->key = key;
    walk->waiters.push_back(std::move(done));
    HYPERSIO_SHADOW(
        iommuMshrAllocated(req.domain, req.iova, req.size));

    if (_config.walkers == 0 || _activeWalks < _config.walkers) {
        ++_activeWalks;
        startWalk(key);
    } else if (req.prefetch) {
        _prefetchQueue.push_back(key);
    } else {
        _demandQueue.push_back(key);
    }
}

void
Iommu::deliverHit(uint32_t slot)
{
    // Move the record out and recycle the slot before delivering:
    // the callback may translate again (chained requests) and reuse
    // the pool reentrantly, exactly like XlatePort::respond.
    HitDelivery pending = std::move(_hits.at(slot));
    _hits.at(slot).done = nullptr;
    _hits.release(slot);
    // Save/restore rather than clear: a delivery may chain into
    // another translate() whose hit delivers (and unwinds) nested
    // inside this one.
    const bool prev = _fusedDelivery;
    _fusedDelivery = true;
    pending.done(pending.resp);
    _fusedDelivery = prev;
}

unsigned
Iommu::walkAccessesFor(const IommuRequest &req)
{
    // The deepest paging-structure hit determines how many guest
    // levels remain to be read (each costs a host walk of the guest
    // PTE pointer plus the PTE read itself), followed by the final
    // host walk of the guest-physical address. The leaf guest level
    // is 1 for 4 KB pages, 2 for 2 MB.
    const unsigned levels = _config.pagingLevels;
    const unsigned leaf =
        req.size == mem::PageSize::Size2M ? 2 : 1;

    // L2 entry covers guest levels down to 2.
    const uint64_t l2_key = pagingKey(req.domain, req.iova, 2);
    const uint64_t l2_idx = pagingIndex(req.iova, 2);
    if (_l2.lookup(l2_key, l2_idx, req.domain)) {
        // 1 remaining level for 4K, 0 for 2M.
        return mem::walkAccessesAtDepth(2 - leaf, levels);
    }

    // L3 entry covers guest levels down to 3.
    const uint64_t l3_key = pagingKey(req.domain, req.iova, 3);
    const uint64_t l3_idx = pagingIndex(req.iova, 3);
    if (_l3.lookup(l3_key, l3_idx, req.domain)) {
        // 2 remaining levels for 4K, 1 for 2M.
        return mem::walkAccessesAtDepth(3 - leaf, levels);
    }

    // Full walk from the context entry's table root: 24 accesses
    // for 4-level 4 KB pages (Table II), 35 for 5-level.
    return mem::walkAccessesAtDepth(levels - leaf + 1, levels);
}

void
Iommu::startWalk(uint64_t key)
{
    // The walk owns its MSHR entry; late arrivals keep appending to
    // the entry's waiter list until the walk finishes.
    Walk *mshr_walk = _mshr.find(key);
    HYPERSIO_ASSERT(mshr_walk, "walk without MSHR entry");

    ++_walks;
    const unsigned accesses = walkAccessesFor(mshr_walk->req);
    _walkAccessHist.sample(accesses);
    HYPERSIO_SHADOW(iommuWalkStarted(
        mshr_walk->req.domain, mshr_walk->req.iova,
        mshr_walk->req.size, accesses, _activeWalks));
    HYPERSIO_DPRINTF(IommuFlag, now(),
                     "walk did=%u iova=%#llx accesses=%u%s",
                     mshr_walk->req.domain,
                     (unsigned long long)mshr_walk->req.iova,
                     accesses,
                     mshr_walk->req.prefetch ? " (prefetch)" : "");

    _memory.access(accesses, [this, key]() {
        Walk *entry = _mshr.find(key);
        HYPERSIO_ASSERT(entry, "finished walk lost");
        Walk walk = std::move(*entry);
        _mshr.erase(key);

        const mem::Translation xlate =
            _tables.get(walk.req.domain).translate(walk.req.iova);
        finishWalk(walk, xlate);

        --_activeWalks;
        dispatchQueued();
    });
}

void
Iommu::finishWalk(Walk &walk, const mem::Translation &xlate)
{
    IommuResponse resp;
    if (xlate.valid) {
        resp.hostAddr = xlate.hostAddr;
        resp.valid = true;
    } else {
        ++_faults;
    }
    HYPERSIO_SHADOW(iommuWalkCompleted(walk.req.domain,
                                       walk.req.iova, walk.req.size,
                                       resp.valid, resp.hostAddr));
    if (xlate.valid) {
        // Fill the translation caches. The IOTLB caches the final
        // translation; the paging caches remember the intermediate
        // table pointers so later walks can start deeper.
        const uint64_t key = translationKey(
            walk.req.domain, walk.req.iova, xlate.pageSize);
        const uint64_t index =
            translationIndex(walk.req.iova, xlate.pageSize);
        [[maybe_unused]] auto io_ev =
            _iotlb.insert(key, index, resp, walk.req.domain);
        HYPERSIO_SHADOW(iommuIotlbFilled(
            walk.req.domain, walk.req.iova, xlate.pageSize,
            _iotlb.setFor(key, index, walk.req.domain), resp.hostAddr,
            io_ev ? std::optional<uint64_t>(io_ev->key)
                  : std::nullopt));
        [[maybe_unused]] auto l2_ev =
            _l2.insert(pagingKey(walk.req.domain, walk.req.iova, 2),
                       pagingIndex(walk.req.iova, 2), 1,
                       walk.req.domain);
        HYPERSIO_SHADOW(iommuPagingFilled(
            2, walk.req.domain, walk.req.iova,
            _l2.setFor(pagingKey(walk.req.domain, walk.req.iova, 2),
                       pagingIndex(walk.req.iova, 2),
                       walk.req.domain),
            l2_ev ? std::optional<uint64_t>(l2_ev->key)
                  : std::nullopt));
        [[maybe_unused]] auto l3_ev =
            _l3.insert(pagingKey(walk.req.domain, walk.req.iova, 3),
                       pagingIndex(walk.req.iova, 3), 1,
                       walk.req.domain);
        HYPERSIO_SHADOW(iommuPagingFilled(
            3, walk.req.domain, walk.req.iova,
            _l3.setFor(pagingKey(walk.req.domain, walk.req.iova, 3),
                       pagingIndex(walk.req.iova, 3),
                       walk.req.domain),
            l3_ev ? std::optional<uint64_t>(l3_ev->key)
                  : std::nullopt));
    }

    for (auto &waiter : walk.waiters)
        waiter(resp);
}

void
Iommu::dispatchQueued()
{
    while ((_config.walkers == 0 || _activeWalks < _config.walkers) &&
           (!_demandQueue.empty() || !_prefetchQueue.empty())) {
        uint64_t key;
        // Demand first, but bounded: sustained demand traffic must
        // not starve a queued prefetch forever while its MSHR entry
        // pins walker bookkeeping. Once `prefetchAgingThreshold`
        // consecutive demand walks have dispatched past a waiting
        // prefetch, the oldest prefetch takes the next slot.
        const bool promote =
            !_prefetchQueue.empty() &&
            (_demandQueue.empty() ||
             (_config.prefetchAgingThreshold != 0 &&
              _demandStreak >= _config.prefetchAgingThreshold));
        if (promote) {
            key = _prefetchQueue.front();
            _prefetchQueue.pop_front();
            if (!_demandQueue.empty())
                ++_prefetchPromotions;
            _demandStreak = 0;
        } else {
            key = _demandQueue.front();
            _demandQueue.pop_front();
            _demandStreak = _prefetchQueue.empty()
                                ? 0
                                : _demandStreak + 1;
        }
        // The entry must still exist: queued walks hold their MSHR
        // slot until they run.
        HYPERSIO_ASSERT(_mshr.contains(key), "queued walk lost");
        ++_activeWalks;
        startWalk(key);
    }
}

void
Iommu::invalidate(mem::DomainId domain, mem::Iova iova,
                  mem::PageSize size)
{
    // The unmap op's declared size does not bound what may be
    // cached: a remap that flips page size (2M→4K or back) re-keys
    // the translation, so an erase under only the invalidated size
    // would leave the other size's entry alive and stale. Both size
    // keys are disjoint, so the extra probe of an absent key is
    // harmless.
    for (const mem::PageSize sz :
         {mem::PageSize::Size4K, mem::PageSize::Size2M}) {
        const uint64_t key = translationKey(domain, iova, sz);
        const uint64_t index = translationIndex(iova, sz);
        [[maybe_unused]] const bool removed =
            _iotlb.invalidate(key, index, domain);
        HYPERSIO_SHADOW(
            iommuIotlbInvalidated(domain, iova, sz, removed));
    }
    (void)size;
}

void
Iommu::flushAll()
{
    _iotlb.flush();
    _l2.flush();
    _l3.flush();
    HYPERSIO_SHADOW(iommuFlushed());
}

} // namespace hypersio::iommu
