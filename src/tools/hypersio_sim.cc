/**
 * @file
 * Command-line simulator driver: the open-source-release entry
 * point. Builds or loads a hyper-trace, applies configuration
 * overrides, runs the performance model, and prints results and
 * (optionally) the full statistics tree.
 *
 * Usage:
 *   hypersio_sim [--preset base|hypertrio]
 *                [--config <file>] [--set key=value ...]
 *                (--trace <file.trace> |
 *                 --bench <name> --tenants <n> [--scale <f>]
 *                 [--interleave RR1|RR4|RAND1])
 *                [--seed <n>] [--native] [--stats]
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/overrides.hh"
#include "hypersio/hypersio.hh"
#include "util/debug.hh"
#include "util/json.hh"

using namespace hypersio;

namespace
{

struct Options
{
    std::string preset = "hypertrio";
    std::optional<std::string> configFile;
    std::vector<std::string> overrides;
    std::optional<std::string> tracePath;
    std::string bench = "iperf3";
    unsigned tenants = 64;
    double scale = 0.05;
    std::string interleave = "RR1";
    uint64_t seed = 42;
    bool native = false;
    bool stats = false;
    std::string jsonPath;
};

[[noreturn]] void
usage()
{
    std::puts(
        "hypersio_sim — HyperSIO trace-driven performance model\n"
        "\n"
        "  --preset base|hypertrio   Table IV starting point "
        "(default hypertrio)\n"
        "  --config <file>           key=value config file\n"
        "  --set key=value           single override (repeatable)\n"
        "  --keys                    list supported override keys\n"
        "  --trace <file>            run a saved hyper-trace\n"
        "  --bench <name>            synthesize iperf3|mediastream|"
        "websearch\n"
        "  --tenants <n>             tenant count for --bench\n"
        "  --scale <f>               trace scale for --bench\n"
        "  --interleave <il>         RR1|RR4|RAND1 for --bench\n"
        "  --seed <n>                workload seed\n"
        "  --native                  bypass translation (Fig. 5 "
        "native mode)\n"
        "  --stats                   dump the full statistics tree\n"
        "  --json <file>             write config, results, and the "
        "full stat\n"
        "                            tree as JSON (alias: "
        "--stats-json)\n"
        "  --debug <flags>           comma-separated debug flags "
        "(or All)\n"
        "  --debug-list              list available debug flags");
    std::exit(1);
}

Options
parse(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--preset") {
            opts.preset = value();
        } else if (arg == "--config") {
            opts.configFile = value();
        } else if (arg == "--set") {
            opts.overrides.push_back(value());
        } else if (arg == "--keys") {
            for (const auto &key : core::supportedOverrideKeys())
                std::puts(key.c_str());
            std::exit(0);
        } else if (arg == "--trace") {
            opts.tracePath = value();
        } else if (arg == "--bench") {
            opts.bench = value();
        } else if (arg == "--tenants") {
            opts.tenants = static_cast<unsigned>(
                std::strtoul(value().c_str(), nullptr, 0));
        } else if (arg == "--scale") {
            opts.scale = std::strtod(value().c_str(), nullptr);
        } else if (arg == "--interleave") {
            opts.interleave = value();
        } else if (arg == "--seed") {
            opts.seed =
                std::strtoull(value().c_str(), nullptr, 0);
        } else if (arg == "--debug") {
            debug::enable(value());
        } else if (arg == "--debug-list") {
            for (const auto &[name, desc] : debug::listFlags())
                std::printf("%-12s %s\n", name.c_str(),
                            desc.c_str());
            std::exit(0);
        } else if (arg == "--json" || arg == "--stats-json") {
            opts.jsonPath = value();
        } else if (arg == "--native") {
            opts.native = true;
        } else if (arg == "--stats") {
            opts.stats = true;
        } else {
            usage();
        }
    }
    return opts;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opts = parse(argc, argv);

    core::SystemConfig config =
        opts.preset == "base"        ? core::SystemConfig::base()
        : opts.preset == "hypertrio" ? core::SystemConfig::hypertrio()
                                     : (usage(), core::SystemConfig{});
    if (opts.configFile)
        core::loadConfigFile(config, *opts.configFile);
    core::applyOverrides(config, opts.overrides);
    config.seed = opts.seed;

    trace::HyperTrace tr;
    if (opts.tracePath) {
        tr = trace::loadTrace(*opts.tracePath);
    } else {
        auto logs = workload::generateLogs(
            workload::parseBenchmark(opts.bench), opts.tenants,
            opts.seed, opts.scale);
        tr = trace::constructTrace(
            logs, trace::parseInterleaving(opts.interleave));
    }

    std::printf("%s", config.describe().c_str());
    std::printf("trace: %u tenants, %zu packets, %llu "
                "translations\n\n",
                tr.numTenants, tr.packets.size(),
                (unsigned long long)tr.translations());

    const auto wall_start = std::chrono::steady_clock::now();
    core::System system(config);
    const core::RunResults r = system.run(tr, opts.native);
    const double wall_seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - wall_start)
            .count();

    std::printf("achieved bandwidth  %10.2f Gb/s (%.1f%% of link)\n",
                r.achievedGbps, r.utilization * 100.0);
    std::printf("packets processed   %10llu (%llu dropped "
                "arrivals)\n",
                (unsigned long long)r.packetsProcessed,
                (unsigned long long)r.packetsDropped);
    std::printf("simulated time      %10.2f us\n",
                ticksToNs(r.elapsed) / 1000.0);
    std::printf("avg packet latency  %10.1f ns\n",
                r.avgPacketLatencyNs);
    std::printf("DevTLB hit rate     %10.2f %%\n",
                r.devtlbHitRate * 100.0);
    std::printf("PB hit rate         %10.2f %%\n",
                r.pbHitRate * 100.0);
    std::printf("IOTLB hit rate      %10.2f %%\n",
                r.iotlbHitRate * 100.0);
    std::printf("page-table walks    %10llu\n",
                (unsigned long long)r.walks);

    if (opts.stats) {
        std::printf("\n");
        system.dumpStats(std::cout);
    }

    if (!opts.jsonPath.empty()) {
        std::ofstream out(opts.jsonPath, std::ios::trunc);
        if (!out) {
            std::fprintf(stderr, "cannot open '%s' for writing\n",
                         opts.jsonPath.c_str());
            return 1;
        }
        json::Writer w(out);
        w.beginObject();
        w.key("schema");
        w.value("hypersio-sim-1");
        w.key("config");
        w.beginObject();
        w.key("preset");
        w.value(opts.preset);
        w.key("name");
        w.value(config.name);
        w.key("benchmark");
        w.value(opts.tracePath ? "trace" : opts.bench);
        w.key("tenants");
        w.value(tr.numTenants);
        w.key("scale");
        w.value(opts.scale);
        w.key("interleave");
        w.value(opts.interleave);
        w.key("seed");
        w.value(opts.seed);
        w.key("native");
        w.value(opts.native);
        w.endObject();
        w.key("results");
        core::writeRunResultsJson(w, r);
        w.key("stats");
        std::ostringstream stats_os;
        system.dumpStatsJson(stats_os, 0);
        w.raw(stats_os.str());
        w.key("wall_seconds");
        w.value(wall_seconds);
        w.endObject();
        out << '\n';
        if (!out) {
            std::fprintf(stderr, "write error on '%s'\n",
                         opts.jsonPath.c_str());
            return 1;
        }
    }
    return 0;
}
