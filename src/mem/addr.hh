/**
 * @file
 * Address types and paging geometry for x86-64-style 4-level paging
 * with 4 KB and 2 MB pages, as used by the translation model.
 */

#ifndef HYPERSIO_MEM_ADDR_HH
#define HYPERSIO_MEM_ADDR_HH

#include <cstdint>

#include "util/bitfield.hh"

namespace hypersio::mem
{

/** A memory address (guest-virtual, guest-physical, or host-physical). */
using Addr = uint64_t;

/** Guest I/O virtual address (gIOVA in the paper). */
using Iova = Addr;

constexpr unsigned PageShift4K = 12;
constexpr unsigned PageShift2M = 21;
constexpr uint64_t PageSize4K = uint64_t(1) << PageShift4K;
constexpr uint64_t PageSize2M = uint64_t(1) << PageShift2M;

/** Number of paging levels in a 4-level table. */
constexpr unsigned NumLevels = 4;
/** Bits of index per level (512-entry tables). */
constexpr unsigned LevelBits = 9;

/** Page size selector for a mapping. */
enum class PageSize : uint8_t
{
    Size4K,
    Size2M,
};

/** Bytes covered by one page of the given size. */
constexpr uint64_t
pageBytes(PageSize size)
{
    return size == PageSize::Size4K ? PageSize4K : PageSize2M;
}

/** Page-offset shift for the given size. */
constexpr unsigned
pageShift(PageSize size)
{
    return size == PageSize::Size4K ? PageShift4K : PageShift2M;
}

/** Page-frame number of `addr` for the given page size. */
constexpr uint64_t
pageFrame(Addr addr, PageSize size = PageSize::Size4K)
{
    return addr >> pageShift(size);
}

/** Base address of the page containing `addr`. */
constexpr Addr
pageBase(Addr addr, PageSize size = PageSize::Size4K)
{
    return addr & ~(pageBytes(size) - 1);
}

/**
 * Index into the level-`level` page table for `addr`. Levels are
 * numbered 4 (root) down to 1 (leaf for 4 KB pages).
 */
constexpr uint64_t
levelIndex(Addr addr, unsigned level)
{
    const unsigned shift = PageShift4K + LevelBits * (level - 1);
    return bits(addr, shift + LevelBits - 1, shift);
}

/**
 * The gIOVA prefix that a paging-structure cache entry for `level`
 * covers: all index bits from the root down to and including that
 * level. Entries at higher levels cover wider regions.
 */
constexpr uint64_t
levelPrefix(Addr addr, unsigned level)
{
    const unsigned shift = PageShift4K + LevelBits * (level - 1);
    return addr >> shift;
}

/** Number of leaf-walk levels a mapping of `size` needs (4 or 3). */
constexpr unsigned
walkLevels(PageSize size)
{
    return size == PageSize::Size4K ? NumLevels : NumLevels - 1;
}

} // namespace hypersio::mem

#endif // HYPERSIO_MEM_ADDR_HH
