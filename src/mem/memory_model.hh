/**
 * @file
 * Main-memory timing model.
 *
 * Page-table reads and history-buffer reads go through this model. It
 * charges a fixed DRAM access latency (Table II: 50 ns) and can bound
 * the number of outstanding accesses to model finite memory-subsystem
 * parallelism (banks/channels). With unlimited slots it degenerates
 * to a pure latency model, which is what the paper's simulator uses.
 */

#ifndef HYPERSIO_MEM_MEMORY_MODEL_HH
#define HYPERSIO_MEM_MEMORY_MODEL_HH

#include <deque>
#include <functional>

#include "sim/sim_object.hh"
#include "util/units.hh"

namespace hypersio::mem
{

/** Configuration for MemoryModel. */
struct MemoryConfig
{
    /** Latency of one access. */
    Tick accessLatency = 50 * TicksPerNs;
    /** Max concurrent accesses; 0 means unlimited. */
    unsigned maxOutstanding = 0;
};

/**
 * Fixed-latency memory with optional bounded concurrency. Callers
 * issue `access(n_reads, done)`; the model invokes `done` when all n
 * serialized reads of a dependent chain complete (a page-table walk
 * is a dependent chain, so its reads serialize: n * latency).
 */
class MemoryModel : public sim::SimObject
{
  public:
    MemoryModel(const MemoryConfig &config, sim::EventQueue &queue,
                stats::StatGroup &parent)
        : SimObject("memory", queue, parent), _config(config),
          _reads(statGroup().makeCounter("reads",
                                         "memory words read")),
          _chains(statGroup().makeCounter(
              "chains", "dependent access chains issued")),
          _queued(statGroup().makeCounter(
              "queued", "chains that waited for a free slot"))
    {}

    const MemoryConfig &config() const { return _config; }

    /**
     * Issues a dependent chain of `n_accesses` reads; `done` runs
     * after n * accessLatency (plus any queueing for a free slot).
     */
    void
    access(unsigned n_accesses, std::function<void()> done)
    {
        ++_chains;
        _reads += n_accesses;
        const Tick service =
            static_cast<Tick>(n_accesses) * _config.accessLatency;
        if (_config.maxOutstanding == 0) {
            eventQueue().scheduleAfter(service, std::move(done));
            return;
        }
        if (_busy < _config.maxOutstanding) {
            ++_busy;
            startChain(service, std::move(done));
        } else {
            ++_queued;
            _waiting.push_back({service, std::move(done)});
        }
    }

    /** Currently active chains (bounded mode only). */
    unsigned busy() const { return _busy; }

  private:
    struct Pending
    {
        Tick service;
        std::function<void()> done;
    };

    void
    startChain(Tick service, std::function<void()> done)
    {
        eventQueue().scheduleAfter(
            service, [this, done = std::move(done)]() {
                done();
                finishChain();
            });
    }

    void
    finishChain()
    {
        if (!_waiting.empty()) {
            Pending next = std::move(_waiting.front());
            _waiting.pop_front();
            startChain(next.service, std::move(next.done));
        } else {
            --_busy;
        }
    }

    MemoryConfig _config;
    unsigned _busy = 0;
    std::deque<Pending> _waiting;

    stats::Counter &_reads;
    stats::Counter &_chains;
    stats::Counter &_queued;
};

} // namespace hypersio::mem

#endif // HYPERSIO_MEM_MEMORY_MODEL_HH
