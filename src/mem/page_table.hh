/**
 * @file
 * Synthetic per-tenant two-level (guest + host) page tables.
 *
 * In a virtualized setup every tenant's gIOVA is translated by a
 * two-dimensional walk: the guest page table maps gIOVA → guest
 * physical address, and every guest page-table access itself requires
 * a host walk (Fig. 2 of the paper). The performance model only needs
 * (a) the final hPA for each gIOVA, (b) deterministic per-level walk
 * identity so paging-structure caches behave realistically, and
 * (c) the number of memory accesses each partial walk costs.
 *
 * Frames are assigned deterministically from the (tenant seed, page
 * frame) pair via SplitMix64, so two runs over the same trace produce
 * identical translations without storing the tables densely.
 */

#ifndef HYPERSIO_MEM_PAGE_TABLE_HH
#define HYPERSIO_MEM_PAGE_TABLE_HH

#include <cstdint>

#include "mem/addr.hh"
#include "util/flat_map.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace hypersio::mem
{

/** Identifies a tenant's address space (the paper's Device ID). */
using DomainId = uint32_t;

/** The outcome of translating one gIOVA. */
struct Translation
{
    Addr hostAddr = 0;        ///< final host-physical address
    PageSize pageSize = PageSize::Size4K;
    bool valid = false;
};

/**
 * Cost model of a (possibly partial) two-dimensional walk.
 *
 * A full 4-level 2-D walk reads 5 memory words per guest level
 * (4 host-table reads to translate the guest PTE pointer + 1 read of
 * the guest PTE itself) plus 4 host-table reads to translate the
 * final guest-physical address: 5*4 + 4 = 24 accesses, matching the
 * paper's Table II. A walk that starts below level `start` (because a
 * paging-structure cache supplied the entry covering levels above)
 * performs 5*(start-1) + 4 accesses. 2 MB mappings skip the last
 * guest level.
 */
constexpr unsigned
walkAccesses(unsigned start_level, PageSize size = PageSize::Size4K)
{
    const unsigned leaf_levels = walkLevels(size);
    const unsigned guest_levels =
        start_level > leaf_levels ? leaf_levels : start_level;
    return 5 * guest_levels + NumLevels;
}

/** Full-walk access count for a page size (24 for 4 KB, 19 for 2 MB). */
constexpr unsigned
fullWalkAccesses(PageSize size = PageSize::Size4K)
{
    return walkAccesses(NumLevels, size);
}

/**
 * Walk cost for an arbitrary paging depth: each remaining guest
 * level costs a `levels`-step host walk plus the guest PTE read,
 * followed by the final host walk of the guest-physical address.
 * 4-level/4 KB: 5*4+4 = 24; 5-level/4 KB: 6*5+5 = 35 (both match
 * the Intel numbers the paper cites).
 *
 * @param remaining_guest_levels guest table reads still to perform
 * @param levels paging depth of both dimensions (4 or 5)
 */
constexpr unsigned
walkAccessesAtDepth(unsigned remaining_guest_levels, unsigned levels)
{
    return (levels + 1) * remaining_guest_levels + levels;
}

/** Guest levels of a full walk at `levels` depth for `size` pages. */
constexpr unsigned
fullGuestLevels(unsigned levels, PageSize size)
{
    // 2 MB mappings terminate one level early.
    return size == PageSize::Size2M ? levels - 1 : levels;
}

/**
 * One tenant's synthetic guest+host page table.
 *
 * Mappings must be installed (as the guest OS driver would) before
 * translation; translating an unmapped gIOVA yields invalid, which
 * the IOMMU reports as a translation fault.
 */
class PageTable
{
  public:
    /**
     * @param domain the tenant's DID
     * @param seed global seed mixed into frame assignment
     */
    PageTable(DomainId domain, uint64_t seed)
        : _domain(domain), _frameSeed(hashCombine(seed, domain))
    {}

    /** Empty table; placeholder state for FlatMap slots only. */
    PageTable() = default;

    DomainId domain() const { return _domain; }

    /**
     * Maps the page containing `iova` with the given page size. The
     * host frame is chosen deterministically. Remapping an existing
     * page keeps its frame (idempotent).
     */
    void
    map(Iova iova, PageSize size)
    {
        const Addr base = pageBase(iova, size);
        if (size == PageSize::Size2M) {
            _has2m = true;
            _lo2m = base < _lo2m ? base : _lo2m;
            _hi2m = base > _hi2m ? base : _hi2m;
        } else {
            _has4k = true;
        }
        auto [entry_ptr, inserted] = _mappings.tryEmplace(base);
        if (!inserted) {
            HYPERSIO_ASSERT(entry_ptr->pageSize() == size,
                            "page size change on remap of %llx",
                            (unsigned long long)base);
            return;
        }
        // Deterministic host frame: uniform over a 1 TB host space,
        // aligned to the page size.
        const uint64_t raw = hashCombine(_frameSeed, base);
        const uint64_t space = uint64_t(1) << 40;
        entry_ptr->packed = roundDown(raw % space, pageBytes(size)) |
                            uint64_t(size == PageSize::Size2M);
    }

    /** Removes the mapping covering `iova`; true if one existed. */
    bool
    unmap(Iova iova)
    {
        // Erase the mapping that actually covers `iova`: the entry
        // at the covering 2 MB base when it is a genuine 2 MB
        // mapping (or when the two bases coincide), else the 4 KB
        // entry. The 2 MB probe must check the entry's own size: a
        // 4 KB mapping whose base merely happens to be 2 MB-aligned
        // is a *different page* when `iova` lies beyond it, and
        // erasing it would silently unmap an address the caller
        // never named — leaving that page's cached translations
        // permanently stale, because invalidation is keyed by the
        // declared page.
        const Addr b2 = pageBase(iova, PageSize::Size2M);
        const Addr b4 = pageBase(iova, PageSize::Size4K);
        if (const Entry *e = find(b2);
            e && (e->pageSize() == PageSize::Size2M || b2 == b4))
            return _mappings.erase(b2);
        return _mappings.erase(b4);
    }

    /**
     * Translates `iova`; invalid when unmapped.
     *
     * A 2 MB mapping covers its whole range, so in general both the
     * 2 MB and the 4 KB page base must be probed. Two sticky
     * summaries (set by map(), never cleared) skip probes that
     * cannot match: the [_lo2m, _hi2m] range bounds every 2 MB
     * mapping base ever installed, so iovas outside it — ring and
     * doorbell pages sit far from the hugepage pool in practice —
     * skip the 2 MB probe even in domains that mix page sizes, and
     * _has4k gates the 4 KB probe. Stale summaries after unmap only
     * cost a wasted probe, never a wrong result.
     */
    Translation
    translate(Iova iova) const
    {
        if (const Addr b2 = pageBase(iova, PageSize::Size2M);
            b2 >= _lo2m && b2 <= _hi2m) {
            if (const Entry *e = find(b2);
                e && e->pageSize() == PageSize::Size2M) {
                return {e->hostBase() + (iova - b2),
                        PageSize::Size2M, true};
            }
        }
        if (_has4k) {
            if (const Entry *e =
                    find(pageBase(iova, PageSize::Size4K));
                e && e->pageSize() == PageSize::Size4K) {
                return {e->hostBase() +
                            (iova - pageBase(iova, PageSize::Size4K)),
                        PageSize::Size4K, true};
            }
        }
        return {};
    }

    /** Number of installed mappings. */
    size_t size() const { return _mappings.size(); }

    /**
     * Visits every installed mapping as fn(pageBase, pageSize).
     * Iteration order is unspecified (open-addressed table): callers
     * on a deterministic path must sort what they collect — the
     * tenant-retirement teardown in System does exactly that.
     */
    template <typename Fn>
    void
    forEachMapping(Fn &&fn) const
    {
        _mappings.forEach([&](const Addr &base, const Entry &entry) {
            fn(base, entry.pageSize());
        });
    }

  private:
    struct Entry
    {
        uint64_t packed = 0;
        Addr hostBase() const { return packed & ~uint64_t(1); }
        PageSize pageSize() const { return (packed & 1) ? PageSize::Size2M : PageSize::Size4K; }
    };

    const Entry *find(Addr base) const { return _mappings.find(base); }

    DomainId _domain = 0;
    uint64_t _frameSeed = 0;
    util::FlatMap<Addr, Entry> _mappings;
    /**
     * Sticky page-size summaries (unmap does not shrink them; see
     * translate()). _lo2m/_hi2m bound every 2 MB mapping base ever
     * installed; the empty range (_lo2m > _hi2m) doubles as the
     * "never mapped 2 MB" flag.
     */
    bool _has4k = false;
    bool _has2m = false;
    Addr _lo2m = ~Addr(0);
    Addr _hi2m = 0;
};

} // namespace hypersio::mem

#endif // HYPERSIO_MEM_PAGE_TABLE_HH
