/**
 * @file
 * Base class for all simulated components.
 *
 * A SimObject has a hierarchical name, a reference to the event queue
 * of the system it belongs to, and a StatGroup for its statistics.
 */

#ifndef HYPERSIO_SIM_SIM_OBJECT_HH
#define HYPERSIO_SIM_SIM_OBJECT_HH

#include <string>

#include "sim/event_queue.hh"
#include "stats/stats.hh"

namespace hypersio::sim
{

/** A named component attached to an event queue. */
class SimObject
{
  public:
    SimObject(std::string name, EventQueue &queue,
              stats::StatGroup &parent_stats)
        : _name(std::move(name)), _queue(queue),
          _stats(parent_stats.child(_name))
    {}

    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    const std::string &name() const { return _name; }
    Tick now() const { return _queue.now(); }

  protected:
    EventQueue &eventQueue() { return _queue; }
    stats::StatGroup &statGroup() { return _stats; }

  private:
    std::string _name;
    EventQueue &_queue;
    stats::StatGroup &_stats;
};

} // namespace hypersio::sim

#endif // HYPERSIO_SIM_SIM_OBJECT_HH
