/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The performance model is an event-driven simulator: components
 * schedule callbacks at absolute ticks, and the queue executes them
 * in (tick, priority, sequence) order so simulation is fully
 * deterministic.
 *
 * Internals (see DESIGN.md "Slab event kernel"): events live in a
 * slab of fixed-size records with chunk-stable addresses and
 * free-list recycling. Callbacks are stored through a small-buffer
 * optimization — captures up to CallbackInlineSize bytes go directly
 * into the record, larger ones fall back to one heap allocation.
 * Ordering is a 4-ary index heap over (tick, priority, seq) keys;
 * the heap moves 24-byte keys, never callbacks. Cancellation is O(1)
 * and generation-checked: a cancelled record is tombstoned in place
 * (its callback destroyed immediately) and its slot recycles when
 * the key pops. Handles carry (slot, generation), so cancelling an
 * already-fired or already-cancelled event is a detected no-op.
 *
 * Event fusion (DESIGN.md "Hit-path event fusion"): a component
 * sitting in tail position of an event callback may collapse its
 * next deterministic hop — "schedule myself `delay` later" — into a
 * synchronous continuation via tryFuseAdvance(). The queue advances
 * _now to the exact tick the hop event would have fired at and burns
 * the sequence number that event would have consumed, so every
 * observable total-order key (tick, priority, seq) is identical to
 * the event-per-hop schedule. Fusion is refused whenever any pending
 * event would fire at or before the hop's tick, so fused work can
 * never run ahead of (or tie with) a legacy event — interleaving is
 * bit-identical by construction. -DHYPERSIO_EVENT_FUSION=OFF
 * compiles the fast path away entirely.
 */

#ifndef HYPERSIO_SIM_EVENT_QUEUE_HH
#define HYPERSIO_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/logging.hh"
#include "util/units.hh"

namespace hypersio::sim
{

/** Scheduling priority; lower value runs first within the same tick. */
using Priority = int;

constexpr Priority DefaultPriority = 0;
/** Used by components that must observe state before others mutate it. */
constexpr Priority EarlyPriority = -10;
/** Used by bookkeeping that must run after all same-tick activity. */
constexpr Priority LatePriority = 10;

/**
 * Opaque handle to a scheduled event. Valid until the event fires or
 * is cancelled; safe to keep after either (cancel becomes a no-op
 * that returns false, thanks to the generation check).
 */
class EventHandle
{
  public:
    EventHandle() = default;

    bool valid() const { return _id != 0; }

  private:
    friend class EventQueue;
    explicit EventHandle(uint64_t id) : _id(id) {}
    uint64_t _id = 0;
};

/**
 * The central event queue. One instance drives one simulated system.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;
    using Handle = EventHandle;

    /**
     * Captures up to this many bytes are stored inline in the event
     * record; larger callables cost one heap allocation. Sized so
     * every hot-path closure of the translation pipeline (a handful
     * of words: object pointer, slot index, a response struct) stays
     * inline.
     */
    static constexpr size_t CallbackInlineSize = 48;

    /**
     * True when the fused hit path is compiled in (the default).
     * -DHYPERSIO_EVENT_FUSION=OFF pins the event-per-hop reference
     * kernel; scripts/check_repo.sh gate 12 builds both and requires
     * every deterministic bench count to match exactly.
     */
#ifdef HYPERSIO_NO_EVENT_FUSION
    static constexpr bool FusionCompiledIn = false;
#else
    static constexpr bool FusionCompiledIn = true;
#endif

    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    ~EventQueue()
    {
        // Destroy callbacks of events that never fired. Cancelled
        // tombstones already destroyed theirs.
        for (const HeapItem &item : _heap) {
            Record &rec = record(item.idx);
            if (rec.state == Record::Pending)
                rec.destroyCallback();
        }
    }

    /** Current simulated time. */
    Tick now() const { return _now; }

    /** Number of events executed so far. */
    uint64_t executed() const { return _executed; }

    /**
     * Sequence number of the most recently scheduled event. Part of
     * the kernel's total order (tick, priority, seq); the sharded
     * MultiSystem reuses it as the deterministic tie-breaker when
     * merging per-shard timelines.
     */
    uint64_t scheduledSeq() const { return _nextSeq; }

    /** Number of events currently pending (tombstones excluded). */
    size_t pending() const { return _live; }

    /** True when no live events remain. */
    bool empty() const { return _live == 0; }

    /** Event records ever allocated (slab high-water mark; tests). */
    size_t poolCapacity() const { return _slabSize; }

    /**
     * Enables/disables the fused fast path at runtime (tests compare
     * fused and unfused runs inside one binary). A no-op when fusion
     * is compiled out; on() then keeps reporting false.
     */
    void
    setFusionEnabled(bool on)
    {
        _fusionEnabled = on && FusionCompiledIn;
    }
    bool fusionEnabled() const { return _fusionEnabled; }

    /** Hop events elided by tryFuseAdvance() so far (diagnostics
     *  only — never part of a simulation result). */
    uint64_t fusedHops() const { return _fusedHops; }

    /**
     * Fused-completion fast path. The caller is an event callback in
     * *tail position* — nothing after the call site reads now() or
     * schedules with pre-call expectations — that would otherwise
     * `scheduleAfter(delay, continuation)` exactly one event and
     * return. On success the queue warps _now to that event's tick
     * and burns the one sequence number it would have consumed; the
     * caller then runs the continuation synchronously. On failure
     * the caller must schedule exactly as before.
     *
     * Success requires, conservatively:
     *  - fusion enabled and a run() in progress (never during step(),
     *    which promises one callback per call);
     *  - the hop's tick not beyond the run limit (legacy leaves the
     *    event pending past the limit; so do we);
     *  - every pending event STRICTLY later than the hop's tick — a
     *    tombstoned top counts as pending (it may hide a later live
     *    key, so skipping fusion is the safe direction), and
     *    same-tick events of any priority refuse fusion even when
     *    the elided event would have ordered first.
     */
    bool
    tryFuseAdvance(Tick delay)
    {
#ifdef HYPERSIO_NO_EVENT_FUSION
        (void)delay;
        return false;
#else
        if (!_fusionEnabled || !_inRun)
            return false;
        const Tick when = _now + delay;
        HYPERSIO_ASSERT(when >= _now,
                        "fused hop overflows Tick: now %llu + %llu",
                        (unsigned long long)_now,
                        (unsigned long long)delay);
        if (when > _runLimit)
            return false;
        if (!_heap.empty() && _heap.front().when <= when)
            return false;
        ++_nextSeq; // the elided event's slot in the total order
        ++_fusedHops;
        _now = when;
        return true;
#endif
    }

    /**
     * Schedules `fn` to run at absolute tick `when` (>= now()).
     * Same-tick events run in priority order, then insertion order.
     * Any callable convertible to void() is accepted; its captures
     * are stored inline when they fit (see CallbackInlineSize).
     */
    template <typename F>
    EventHandle
    schedule(Tick when, F &&fn, Priority priority = DefaultPriority)
    {
        HYPERSIO_ASSERT(when >= _now,
                        "scheduling in the past: %llu < %llu",
                        (unsigned long long)when,
                        (unsigned long long)_now);
        const uint32_t idx = allocRecord();
        Record &rec = record(idx);
        rec.emplace(std::forward<F>(fn));
        rec.state = Record::Pending;
        ++_live;
        heapPush(HeapItem{when, ++_nextSeq, priority, idx});
        return EventHandle((static_cast<uint64_t>(rec.gen) << 32) |
                           (idx + 1));
    }

    /** Schedules `fn` to run `delay` ticks from now. */
    template <typename F>
    EventHandle
    scheduleAfter(Tick delay, F &&fn,
                  Priority priority = DefaultPriority)
    {
        const Tick when = _now + delay;
        HYPERSIO_ASSERT(when >= _now,
                        "scheduleAfter overflows Tick: now %llu + "
                        "delay %llu wraps",
                        (unsigned long long)_now,
                        (unsigned long long)delay);
        return schedule(when, std::forward<F>(fn), priority);
    }

    /**
     * Cancels a scheduled event in O(1). Returns true if the event
     * was still pending; false for an invalid handle or one whose
     * event already fired or was already cancelled (the generation
     * check catches both, so late cancels never corrupt accounting).
     * The callback is destroyed immediately; the record's heap key
     * is skipped and recycled when it reaches the top.
     */
    bool
    cancel(EventHandle handle)
    {
        if (!handle.valid())
            return false;
        const uint32_t idx =
            static_cast<uint32_t>(handle._id & 0xffffffffu) - 1;
        const uint32_t gen = static_cast<uint32_t>(handle._id >> 32);
        if (idx >= _slabSize)
            return false;
        Record &rec = record(idx);
        if (rec.state != Record::Pending || rec.gen != gen)
            return false;
        rec.destroyCallback();
        rec.state = Record::Cancelled;
        // Invalidate every outstanding handle to this record,
        // including the one just used.
        ++rec.gen;
        --_live;
        return true;
    }

    /**
     * Runs events until the queue drains or `limit` ticks elapse.
     * @return the tick of the last executed event (or now()).
     */
    Tick
    run(Tick limit = MaxTick)
    {
        // Publish the horizon for tryFuseAdvance(): a fused hop may
        // never warp past `limit`, and fusion is only meaningful
        // while this loop is driving execution (run() never nests —
        // callbacks do not call run()).
        _inRun = true;
        _runLimit = limit;
        while (!_heap.empty()) {
            const HeapItem top = _heap.front();
            if (top.when > limit)
                break;
            Record &rec = record(top.idx);
            if (rec.state == Record::Cancelled) {
                heapPopTop();
                releaseRecord(top.idx, rec);
                continue;
            }
            HYPERSIO_ASSERT(top.when >= _now, "time went backwards");
            FiredCallback cb(rec);
            heapPopTop();
            releaseRecord(top.idx, rec);
            --_live;
            _now = top.when;
            ++_executed;
            cb();
        }
        _inRun = false;
        _runLimit = MaxTick;
        if (_now < limit && limit != MaxTick)
            _now = limit;
        return _now;
    }

    /** Executes exactly one event if any is pending. */
    bool
    step()
    {
        while (!_heap.empty()) {
            const HeapItem top = _heap.front();
            Record &rec = record(top.idx);
            if (rec.state == Record::Cancelled) {
                heapPopTop();
                releaseRecord(top.idx, rec);
                continue;
            }
            HYPERSIO_ASSERT(top.when >= _now, "time went backwards");
            FiredCallback cb(rec);
            heapPopTop();
            releaseRecord(top.idx, rec);
            --_live;
            _now = top.when;
            ++_executed;
            cb();
            return true;
        }
        return false;
    }

  private:
    /** Type-erased operations of one stored callable. */
    struct CallbackOps
    {
        void (*invoke)(void *buf);
        /** Move-construct dst's storage from src, destroying src. */
        void (*relocate)(void *dst, void *src);
        void (*destroy)(void *buf);
    };

    template <typename T>
    struct InlineOps
    {
        static T *get(void *buf)
        {
            return std::launder(reinterpret_cast<T *>(buf));
        }
        static void invoke(void *buf) { (*get(buf))(); }
        static void
        relocate(void *dst, void *src)
        {
            T *s = get(src);
            ::new (dst) T(std::move(*s));
            s->~T();
        }
        static void destroy(void *buf) { get(buf)->~T(); }
        static constexpr CallbackOps ops{&invoke, &relocate,
                                         &destroy};
    };

    template <typename T>
    struct HeapOps
    {
        static T *&ptr(void *buf)
        {
            return *std::launder(reinterpret_cast<T **>(buf));
        }
        static void invoke(void *buf) { (*ptr(buf))(); }
        static void
        relocate(void *dst, void *src)
        {
            ::new (dst) (T *)(ptr(src));
        }
        static void destroy(void *buf) { delete ptr(buf); }
        static constexpr CallbackOps ops{&invoke, &relocate,
                                         &destroy};
    };

    /**
     * One slab record. `when`/`priority`/`seq` live in the heap key,
     * not here — cancellation and firing only need the callback and
     * the generation.
     */
    struct Record
    {
        enum State : uint8_t { Free, Pending, Cancelled };

        alignas(alignof(std::max_align_t))
            unsigned char buf[CallbackInlineSize];
        const CallbackOps *ops = nullptr;
        /**
         * Bumped on cancel and on fire, so stale handles miss. A
         * 32-bit generation would need 4G reuses of one slot to
         * alias — beyond any simulated workload.
         */
        uint32_t gen = 0;
        State state = Free;

        template <typename F>
        void
        emplace(F &&fn)
        {
            using T = std::decay_t<F>;
            if constexpr (sizeof(T) <= CallbackInlineSize &&
                          alignof(T) <=
                              alignof(std::max_align_t) &&
                          std::is_nothrow_move_constructible_v<T>) {
                ::new (static_cast<void *>(buf))
                    T(std::forward<F>(fn));
                ops = &InlineOps<T>::ops;
            } else {
                ::new (static_cast<void *>(buf))
                    (T *)(new T(std::forward<F>(fn)));
                ops = &HeapOps<T>::ops;
            }
        }

        void
        destroyCallback()
        {
            ops->destroy(buf);
            ops = nullptr;
        }
    };

    /**
     * Moves a firing record's callback onto the stack so the slot
     * can recycle before the callback runs (callbacks routinely
     * schedule new events, and a cancel arriving after the fire must
     * see a released record).
     */
    class FiredCallback
    {
      public:
        explicit FiredCallback(Record &rec) : _ops(rec.ops)
        {
            _ops->relocate(_buf, rec.buf);
            rec.ops = nullptr;
        }
        ~FiredCallback() { _ops->destroy(_buf); }

        FiredCallback(const FiredCallback &) = delete;
        FiredCallback &operator=(const FiredCallback &) = delete;

        void operator()() { _ops->invoke(_buf); }

      private:
        alignas(alignof(std::max_align_t))
            unsigned char _buf[CallbackInlineSize];
        const CallbackOps *_ops;
    };

    /** One 4-ary-heap element: the full sort key plus record index. */
    struct HeapItem
    {
        Tick when;
        uint64_t seq;
        Priority priority;
        uint32_t idx;
    };

    static bool
    before(const HeapItem &a, const HeapItem &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        if (a.priority != b.priority)
            return a.priority < b.priority;
        return a.seq < b.seq;
    }

    static constexpr size_t ChunkShift = 8; ///< 256 records/chunk
    static constexpr size_t ChunkSize = size_t(1) << ChunkShift;
    static constexpr size_t ChunkMask = ChunkSize - 1;

    Record &
    record(uint32_t idx)
    {
        return _chunks[idx >> ChunkShift][idx & ChunkMask];
    }

    uint32_t
    allocRecord()
    {
        if (!_free.empty()) {
            const uint32_t idx = _free.back();
            _free.pop_back();
            return idx;
        }
        if ((_slabSize & ChunkMask) == 0)
            _chunks.push_back(
                std::make_unique<Record[]>(ChunkSize));
        return static_cast<uint32_t>(_slabSize++);
    }

    void
    releaseRecord(uint32_t idx, Record &rec)
    {
        if (rec.state == Record::Pending)
            ++rec.gen; // cancelled records bumped theirs already
        rec.state = Record::Free;
        _free.push_back(idx);
    }

    void
    heapPush(HeapItem item)
    {
        size_t i = _heap.size();
        _heap.push_back(item);
        while (i > 0) {
            const size_t parent = (i - 1) >> 2;
            if (!before(item, _heap[parent]))
                break;
            _heap[i] = _heap[parent];
            i = parent;
        }
        _heap[i] = item;
    }

    void
    heapPopTop()
    {
        const HeapItem last = _heap.back();
        _heap.pop_back();
        const size_t n = _heap.size();
        if (n == 0)
            return;
        size_t i = 0;
        for (;;) {
            const size_t first = (i << 2) + 1;
            if (first >= n)
                break;
            size_t best = first;
            const size_t end = std::min(first + 4, n);
            for (size_t c = first + 1; c < end; ++c) {
                if (before(_heap[c], _heap[best]))
                    best = c;
            }
            if (!before(_heap[best], last))
                break;
            _heap[i] = _heap[best];
            i = best;
        }
        _heap[i] = last;
    }

    std::vector<std::unique_ptr<Record[]>> _chunks;
    std::vector<uint32_t> _free;
    std::vector<HeapItem> _heap;
    size_t _slabSize = 0;
    size_t _live = 0;
    Tick _now = 0;
    uint64_t _nextSeq = 0;
    uint64_t _executed = 0;
    uint64_t _fusedHops = 0;
    /** run()'s `limit` while a run is in progress (fusion horizon). */
    Tick _runLimit = MaxTick;
    bool _inRun = false;
    bool _fusionEnabled = FusionCompiledIn;
};

} // namespace hypersio::sim

#endif // HYPERSIO_SIM_EVENT_QUEUE_HH
