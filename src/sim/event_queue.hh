/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The performance model is an event-driven simulator: components
 * schedule callbacks at absolute ticks, and the queue executes them in
 * (tick, priority, sequence) order so simulation is fully
 * deterministic. Events are heap-allocated callables owned by the
 * queue; cancellation is supported via EventHandle.
 */

#ifndef HYPERSIO_SIM_EVENT_QUEUE_HH
#define HYPERSIO_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/logging.hh"
#include "util/units.hh"

namespace hypersio::sim
{

/** Scheduling priority; lower value runs first within the same tick. */
using Priority = int;

constexpr Priority DefaultPriority = 0;
/** Used by components that must observe state before others mutate it. */
constexpr Priority EarlyPriority = -10;
/** Used by bookkeeping that must run after all same-tick activity. */
constexpr Priority LatePriority = 10;

/**
 * Opaque handle to a scheduled event. Valid until the event fires or
 * is cancelled; safe to keep after either (cancel becomes a no-op).
 */
class EventHandle
{
  public:
    EventHandle() = default;

    bool valid() const { return _id != 0; }

  private:
    friend class EventQueue;
    explicit EventHandle(uint64_t id) : _id(id) {}
    uint64_t _id = 0;
};

/**
 * The central event queue. One instance drives one simulated system.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /** Number of events executed so far. */
    uint64_t executed() const { return _executed; }

    /** Number of events currently pending. */
    size_t pending() const { return _heap.size() - _cancelled; }

    /**
     * Schedules `cb` to run at absolute tick `when` (>= now()).
     * Same-tick events run in priority order, then insertion order.
     */
    EventHandle
    schedule(Tick when, Callback cb,
             Priority priority = DefaultPriority)
    {
        HYPERSIO_ASSERT(when >= _now,
                        "scheduling in the past: %llu < %llu",
                        (unsigned long long)when,
                        (unsigned long long)_now);
        uint64_t id = ++_nextId;
        _heap.push(Entry{when, priority, id, std::move(cb), false});
        return EventHandle(id);
    }

    /** Schedules `cb` to run `delay` ticks from now. */
    EventHandle
    scheduleAfter(Tick delay, Callback cb,
                  Priority priority = DefaultPriority)
    {
        return schedule(_now + delay, std::move(cb), priority);
    }

    /**
     * Cancels a scheduled event. Returns true if the event was still
     * pending. Cancelled events stay in the heap as tombstones and are
     * skipped on pop.
     */
    bool
    cancel(EventHandle handle)
    {
        if (!handle.valid())
            return false;
        auto inserted = _dead.insert(handle._id).second;
        if (inserted)
            ++_cancelled;
        return inserted;
    }

    /**
     * Runs events until the queue drains or `limit` ticks elapse.
     * @return the tick of the last executed event (or now()).
     */
    Tick
    run(Tick limit = MaxTick)
    {
        while (!_heap.empty()) {
            const Entry &top = _heap.top();
            if (top.when > limit)
                break;
            if (_dead.erase(top.id)) {
                --_cancelled;
                _heap.pop();
                continue;
            }
            // Move the callback out before popping.
            Entry entry = std::move(const_cast<Entry &>(top));
            _heap.pop();
            HYPERSIO_ASSERT(entry.when >= _now, "time went backwards");
            _now = entry.when;
            ++_executed;
            entry.cb();
        }
        if (_now < limit && limit != MaxTick)
            _now = limit;
        return _now;
    }

    /** Executes exactly one event if any is pending. */
    bool
    step()
    {
        while (!_heap.empty()) {
            const Entry &top = _heap.top();
            if (_dead.erase(top.id)) {
                --_cancelled;
                _heap.pop();
                continue;
            }
            Entry entry = std::move(const_cast<Entry &>(top));
            _heap.pop();
            _now = entry.when;
            ++_executed;
            entry.cb();
            return true;
        }
        return false;
    }

    /** True when no live events remain. */
    bool empty() const { return pending() == 0; }

  private:
    struct Entry
    {
        Tick when;
        Priority priority;
        uint64_t id;
        Callback cb;
        bool dead;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.id > b.id;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> _heap;
    std::unordered_set<uint64_t> _dead;
    size_t _cancelled = 0;
    Tick _now = 0;
    uint64_t _nextId = 0;
    uint64_t _executed = 0;
};

} // namespace hypersio::sim

#endif // HYPERSIO_SIM_EVENT_QUEUE_HH
