/**
 * @file
 * The pre-slab event kernel, preserved verbatim for measurement and
 * regression demonstration.
 *
 * This is the original `EventQueue` implementation: a
 * `std::priority_queue` of fat entries, each carrying its
 * `std::function` callback through every heap sift, with tombstone
 * cancellation through an `unordered_set`. It is kept (under a new
 * name) for two reasons:
 *
 *  1. `bench/event_kernel_microbench` runs identical workloads
 *     against this kernel and the slab kernel in `event_queue.hh`
 *     and reports the events/sec speedup, so the rewrite's win stays
 *     measured instead of assumed.
 *  2. `tests/test_event_queue.cc` demonstrates the cancel-after-fire
 *     accounting bug this kernel ships (cancelling an already-fired
 *     handle inserts a permanent tombstone and underflows
 *     `pending()`), proving the regression tests would fail here.
 *
 * Nothing in the simulator proper may use this class.
 */

#ifndef HYPERSIO_SIM_LEGACY_EVENT_QUEUE_HH
#define HYPERSIO_SIM_LEGACY_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/logging.hh"
#include "util/units.hh"

namespace hypersio::sim
{

/** Handle into a LegacyEventQueue (the old EventHandle). */
class LegacyEventHandle
{
  public:
    LegacyEventHandle() = default;

    bool valid() const { return _id != 0; }

  private:
    friend class LegacyEventQueue;
    explicit LegacyEventHandle(uint64_t id) : _id(id) {}
    uint64_t _id = 0;
};

/** The old fat-entry event queue. See the file comment. */
class LegacyEventQueue
{
  public:
    using Callback = std::function<void()>;
    using Handle = LegacyEventHandle;

    Tick now() const { return _now; }
    uint64_t executed() const { return _executed; }
    size_t pending() const { return _heap.size() - _cancelled; }

    LegacyEventHandle
    schedule(Tick when, Callback cb, int priority = 0)
    {
        HYPERSIO_ASSERT(when >= _now,
                        "scheduling in the past: %llu < %llu",
                        (unsigned long long)when,
                        (unsigned long long)_now);
        uint64_t id = ++_nextId;
        _heap.push(Entry{when, priority, id, std::move(cb), false});
        return LegacyEventHandle(id);
    }

    LegacyEventHandle
    scheduleAfter(Tick delay, Callback cb, int priority = 0)
    {
        return schedule(_now + delay, std::move(cb), priority);
    }

    /**
     * The buggy cancel: it never checks whether the event already
     * fired, so a late cancel tombstones a dead id forever and bumps
     * `_cancelled` past the heap size.
     */
    bool
    cancel(LegacyEventHandle handle)
    {
        if (!handle.valid())
            return false;
        auto inserted = _dead.insert(handle._id).second;
        if (inserted)
            ++_cancelled;
        return inserted;
    }

    Tick
    run(Tick limit = MaxTick)
    {
        while (!_heap.empty()) {
            const Entry &top = _heap.top();
            if (top.when > limit)
                break;
            if (_dead.erase(top.id)) {
                --_cancelled;
                _heap.pop();
                continue;
            }
            // Move the callback out before popping.
            Entry entry = std::move(const_cast<Entry &>(top));
            _heap.pop();
            HYPERSIO_ASSERT(entry.when >= _now, "time went backwards");
            _now = entry.when;
            ++_executed;
            entry.cb();
        }
        if (_now < limit && limit != MaxTick)
            _now = limit;
        return _now;
    }

    bool
    step()
    {
        while (!_heap.empty()) {
            const Entry &top = _heap.top();
            if (_dead.erase(top.id)) {
                --_cancelled;
                _heap.pop();
                continue;
            }
            Entry entry = std::move(const_cast<Entry &>(top));
            _heap.pop();
            _now = entry.when;
            ++_executed;
            entry.cb();
            return true;
        }
        return false;
    }

    bool empty() const { return pending() == 0; }

  private:
    struct Entry
    {
        Tick when;
        int priority;
        uint64_t id;
        Callback cb;
        bool dead;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.id > b.id;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> _heap;
    std::unordered_set<uint64_t> _dead;
    size_t _cancelled = 0;
    Tick _now = 0;
    uint64_t _nextId = 0;
    uint64_t _executed = 0;
};

} // namespace hypersio::sim

#endif // HYPERSIO_SIM_LEGACY_EVENT_QUEUE_HH
