#include "util/debug.hh"

#include <algorithm>
#include <cstdio>
#include <mutex>

#include "util/logging.hh"
#include "util/str.hh"

namespace hypersio::debug
{

namespace
{

/** Registry of all live flags (static-init safe via function-local). */
std::vector<Flag *> &
registry()
{
    static std::vector<Flag *> flags;
    return flags;
}

/** Guards registry structure against concurrent register/iterate. */
std::mutex &
registryMutex()
{
    static std::mutex mutex;
    return mutex;
}

} // namespace

Flag::Flag(const char *name, const char *desc)
    : _name(name), _desc(desc)
{
    std::lock_guard<std::mutex> lock(registryMutex());
    registry().push_back(this);
}

Flag::~Flag()
{
    std::lock_guard<std::mutex> lock(registryMutex());
    auto &flags = registry();
    flags.erase(std::remove(flags.begin(), flags.end(), this),
                flags.end());
}

void
enable(const std::string &names)
{
    std::lock_guard<std::mutex> lock(registryMutex());
    for (const std::string &name : split(names, ',')) {
        const std::string_view wanted = trim(name);
        if (wanted.empty())
            continue;
        if (wanted == "All") {
            for (Flag *flag : registry())
                flag->setEnabled(true);
            continue;
        }
        bool found = false;
        for (Flag *flag : registry()) {
            if (wanted == flag->name()) {
                flag->setEnabled(true);
                found = true;
            }
        }
        if (!found) {
            std::string known;
            for (Flag *flag : registry()) {
                known += flag->name();
                known += ' ';
            }
            fatal("unknown debug flag '%.*s' (known: %s)",
                  static_cast<int>(wanted.size()), wanted.data(),
                  known.c_str());
        }
    }
}

void
disableAll()
{
    std::lock_guard<std::mutex> lock(registryMutex());
    for (Flag *flag : registry())
        flag->setEnabled(false);
}

std::vector<std::pair<std::string, std::string>>
listFlags()
{
    std::lock_guard<std::mutex> lock(registryMutex());
    std::vector<std::pair<std::string, std::string>> out;
    out.reserve(registry().size());
    for (Flag *flag : registry())
        out.emplace_back(flag->name(), flag->desc());
    std::sort(out.begin(), out.end());
    return out;
}

bool
anyEnabled()
{
    std::lock_guard<std::mutex> lock(registryMutex());
    for (Flag *flag : registry())
        if (flag->enabled())
            return true;
    return false;
}

void
dprintf(const Flag &flag, Tick when, const char *fmt, ...)
{
    if (!flag.enabled())
        return;
    // Share the logger's sink lock so a trace line never interleaves
    // with another thread's trace or log output.
    std::lock_guard<std::mutex> lock(Logger::instance().ioMutex());
    std::FILE *out = Logger::instance().stream();
    std::fprintf(out, "%10llu: %s: ",
                 (unsigned long long)when, flag.name());
    va_list args;
    va_start(args, fmt);
    std::vfprintf(out, fmt, args);
    va_end(args);
    std::fputc('\n', out);
}

} // namespace hypersio::debug
