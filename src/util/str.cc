#include "util/str.hh"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace hypersio
{

std::vector<std::string>
split(std::string_view text, char sep)
{
    std::vector<std::string> out;
    size_t start = 0;
    for (size_t i = 0; i <= text.size(); ++i) {
        if (i == text.size() || text[i] == sep) {
            out.emplace_back(text.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::string_view
trim(std::string_view text)
{
    size_t begin = 0;
    size_t end = text.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(
                              text[begin]))) {
        ++begin;
    }
    while (end > begin && std::isspace(static_cast<unsigned char>(
                              text[end - 1]))) {
        --end;
    }
    return text.substr(begin, end - begin);
}

bool
parseU64(std::string_view text, uint64_t &out)
{
    text = trim(text);
    if (text.empty())
        return false;

    uint64_t multiplier = 1;
    char suffix = static_cast<char>(
        std::tolower(static_cast<unsigned char>(text.back())));
    if (suffix == 'k' || suffix == 'm' || suffix == 'g') {
        multiplier = suffix == 'k'   ? (uint64_t(1) << 10)
                     : suffix == 'm' ? (uint64_t(1) << 20)
                                     : (uint64_t(1) << 30);
        text.remove_suffix(1);
        if (text.empty())
            return false;
    }

    std::string buf(text);
    char *end = nullptr;
    errno = 0;
    uint64_t value = std::strtoull(buf.c_str(), &end, 0);
    if (errno != 0 || end == buf.c_str() || *end != '\0')
        return false;
    out = value * multiplier;
    return true;
}

bool
parseDouble(std::string_view text, double &out)
{
    std::string buf(trim(text));
    if (buf.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    double value = std::strtod(buf.c_str(), &end);
    if (errno != 0 || end == buf.c_str() || *end != '\0')
        return false;
    out = value;
    return true;
}

namespace
{

/** Strict parse of one "<key>   <n> kB" line in a status blob. */
bool
parseStatusKib(std::string_view status_text, std::string_view key,
               uint64_t &out)
{
    size_t pos = 0;
    while (pos < status_text.size()) {
        size_t eol = status_text.find('\n', pos);
        if (eol == std::string_view::npos)
            eol = status_text.size();
        const std::string_view line =
            status_text.substr(pos, eol - pos);
        if (line.substr(0, key.size()) == key) {
            // Field format: "VmHWM:   123456 kB". Reject anything
            // that is not a plain decimal count in kB.
            const std::string_view rest =
                trim(line.substr(key.size()));
            const size_t sep = rest.find_first_of(" \t");
            if (sep == std::string_view::npos)
                return false;
            uint64_t kib = 0;
            if (!parseU64(rest.substr(0, sep), kib))
                return false;
            if (trim(rest.substr(sep)) != "kB")
                return false;
            out = kib;
            return true;
        }
        pos = eol + 1;
    }
    return false;
}

} // namespace

bool
parseVmHwmKib(std::string_view status_text, uint64_t &out)
{
    return parseStatusKib(status_text, "VmHWM:", out);
}

bool
parseVmRssKib(std::string_view status_text, uint64_t &out)
{
    return parseStatusKib(status_text, "VmRSS:", out);
}

std::string
strprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list copy;
    va_copy(copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);

    std::string out;
    if (len > 0) {
        out.resize(static_cast<size_t>(len));
        std::vsnprintf(out.data(), out.size() + 1, fmt, args);
    }
    va_end(args);
    return out;
}

std::string
formatBytes(uint64_t bytes)
{
    static const char *suffixes[] = {"B", "KiB", "MiB", "GiB", "TiB"};
    int idx = 0;
    double value = static_cast<double>(bytes);
    while (value >= 1024.0 && idx < 4) {
        value /= 1024.0;
        ++idx;
    }
    if (idx == 0)
        return strprintf("%llu%s", (unsigned long long)bytes,
                         suffixes[idx]);
    return strprintf("%.1f%s", value, suffixes[idx]);
}

} // namespace hypersio
