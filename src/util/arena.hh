/**
 * @file
 * Chunked bump (arena/epoch) allocator for short-lived transients.
 *
 * Several hot paths need a scratch array whose size is only known at
 * the call (the sorted domain list of a retiring tenant, the page
 * list of a table being torn down). A std::vector there costs a heap
 * round trip per call — and tenant retirement retries on every
 * packet completion, so the calls are frequent. An Arena hands out
 * pointer-bump allocations from reusable chunks; callers bracket a
 * transient with mark()/rewind() (or an Arena::Scope) and the memory
 * is reclaimed wholesale, no per-allocation bookkeeping.
 *
 * Only trivially destructible element types are allowed: rewind()
 * never runs destructors.
 */

#ifndef HYPERSIO_UTIL_ARENA_HH
#define HYPERSIO_UTIL_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "util/logging.hh"

namespace hypersio::util
{

/** Bump allocator over a growable list of reusable chunks. */
class Arena
{
  public:
    static constexpr size_t DefaultChunkBytes = 64 * 1024;

    explicit Arena(size_t chunk_bytes = DefaultChunkBytes)
        : _chunkBytes(chunk_bytes ? chunk_bytes : DefaultChunkBytes)
    {}

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /** A rewind point: everything allocated after it is reclaimed. */
    struct Marker
    {
        size_t chunk = 0;
        size_t used = 0;
    };

    /** RAII mark()/rewind() bracket around a transient's lifetime. */
    class Scope
    {
      public:
        explicit Scope(Arena &arena)
            : _arena(arena), _marker(arena.mark())
        {}
        ~Scope() { _arena.rewind(_marker); }
        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        Arena &_arena;
        Marker _marker;
    };

    Marker mark() const { return {_chunk, _used}; }

    /**
     * Releases everything allocated since `marker`. Chunks are kept
     * for reuse — a steady-state caller stops allocating entirely.
     * Markers must be rewound in LIFO order (enforced only by use).
     */
    void
    rewind(Marker marker)
    {
        HYPERSIO_ASSERT(marker.chunk < _chunks.size() ||
                            (marker.chunk == 0 && _chunks.empty()),
                        "arena marker outlived its chunks");
        _chunk = marker.chunk;
        _used = marker.used;
    }

    /** Rewinds to empty; chunk storage is retained for reuse. */
    void reset() { rewind({0, 0}); }

    /**
     * `count` default-initialized (i.e. uninitialized for scalar) Ts,
     * aligned for T, contiguous. Valid until the enclosing rewind.
     * count == 0 returns a non-null one-past pointer like new T[0].
     */
    template <typename T>
    T *
    allocArray(size_t count)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "arena memory is reclaimed without running "
                      "destructors");
        T *out = static_cast<T *>(
            allocate(count * sizeof(T), alignof(T)));
        for (size_t i = 0; i < count; ++i)
            ::new (static_cast<void *>(out + i)) T;
        return out;
    }

    /**
     * `bytes` of storage at alignment `align` (a power of two no
     * larger than alignof(std::max_align_t)).
     */
    void *
    allocate(size_t bytes, size_t align)
    {
        HYPERSIO_ASSERT(align != 0 && (align & (align - 1)) == 0 &&
                            align <= alignof(std::max_align_t),
                        "unsupported arena alignment %zu", align);
        for (;;) {
            if (_chunk < _chunks.size()) {
                Chunk &chunk = _chunks[_chunk];
                const size_t at = (_used + align - 1) & ~(align - 1);
                if (at + bytes <= chunk.capacity) {
                    _used = at + bytes;
                    return chunk.data.get() + at;
                }
            }
            advanceChunk(bytes);
        }
    }

    /** Chunks ever allocated (monotone; for tests and budgets). */
    size_t chunks() const { return _chunks.size(); }

    /** Bytes the chunks hold in total (monotone; tests/budgets). */
    size_t
    capacityBytes() const
    {
        size_t total = 0;
        for (const Chunk &chunk : _chunks)
            total += chunk.capacity;
        return total;
    }

  private:
    struct Chunk
    {
        std::unique_ptr<std::byte[]> data;
        size_t capacity = 0;
    };

    /**
     * Moves to the next chunk that can hold `bytes`, allocating one
     * when none exists yet. Oversized requests get their own chunk,
     * so allocate() always succeeds on the next pass.
     */
    void
    advanceChunk(size_t bytes)
    {
        if (_chunk < _chunks.size())
            ++_chunk;
        // Reuse a retained chunk when it is big enough; otherwise
        // insert a fresh one at the cursor (keeping retained chunks
        // after it usable for later allocations).
        if (_chunk < _chunks.size() &&
            _chunks[_chunk].capacity >= bytes) {
            _used = 0;
            return;
        }
        const size_t cap = bytes > _chunkBytes ? bytes : _chunkBytes;
        Chunk fresh{std::make_unique<std::byte[]>(cap), cap};
        _chunks.insert(_chunks.begin() +
                           static_cast<ptrdiff_t>(_chunk),
                       std::move(fresh));
        _used = 0;
    }

    size_t _chunkBytes;
    std::vector<Chunk> _chunks;
    size_t _chunk = 0; ///< current chunk index (may == chunks())
    size_t _used = 0;  ///< bytes used in the current chunk
};

} // namespace hypersio::util

#endif // HYPERSIO_UTIL_ARENA_HH
