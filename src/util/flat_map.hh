/**
 * @file
 * Open-addressing hash map for the translation hot path.
 *
 * Every per-tenant metadata structure the simulator probes per
 * translation (page-table mappings, the page-table directory, the
 * IOMMU MSHR, the prefetcher's per-DID history, the SID-predictor
 * table) used to be a `std::unordered_map`: one heap node per entry,
 * a pointer chase per probe, and an allocation per insert. FlatMap
 * replaces them with a single open-addressed table:
 *
 *   - power-of-two capacity, so the bucket of a key is one Fibonacci
 *     multiply plus a shift (no integer division);
 *   - linear probing over a dense 1-byte tag array (0 for an empty
 *     slot, otherwise a marker bit plus seven hash bits), with the
 *     keys and values packed together in a parallel array touched
 *     only when a tag matches. A miss therefore resolves inside a
 *     single tag cache line, and a hit costs that line plus one
 *     key/value line — which matters when thousands of per-tenant
 *     maps are probed in interleaved (cold-cache) packet order;
 *   - the tag array is the only zero-initialized storage: the
 *     key/value array is allocated default-initialized, so growing a
 *     table never memsets the (much larger) payload — the cost that
 *     otherwise dominates tenant-attach storms;
 *   - tombstone-free deletion by backward shifting, so probe chains
 *     never accumulate dead slots and lookup cost stays bounded by
 *     the live load factor;
 *   - `reserve(n)` guarantees: no rehash — and therefore no pointer
 *     or reference invalidation — for the next `n - size()` inserts.
 *
 * Determinism: the memory layout is a pure function of the insert /
 * erase sequence, and nothing on the simulation path depends on
 * iteration order (forEach exists for tests and teardown only, and
 * its order is explicitly unspecified).
 *
 * Requirements on K/V: K is an integral (or enum) type no wider than
 * 64 bits; V is default-constructible and move-assignable. Erasing a
 * non-trivial V assigns `V()` into the vacated slot so resources
 * release eagerly.
 *
 * Reference mode: building with -DHYPERSIO_LEGACY_STRUCTURES=ON pins
 * the old node-based layout (a thin wrapper over std::unordered_map
 * with this same API). scripts/check_repo.sh builds it to measure
 * the flat layout's end-to-end speedup on
 * bench/translation_path_microbench; it is not meant for production
 * runs.
 */

#ifndef HYPERSIO_UTIL_FLAT_MAP_HH
#define HYPERSIO_UTIL_FLAT_MAP_HH

#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#ifdef HYPERSIO_LEGACY_STRUCTURES
#include <unordered_map>
#endif

#include "util/logging.hh"

namespace hypersio::util
{

#ifndef HYPERSIO_LEGACY_STRUCTURES

/** Open-addressing map from an integral key to V (see file header). */
template <typename K, typename V>
class FlatMap
{
    static_assert(std::is_integral_v<K> || std::is_enum_v<K>,
                  "FlatMap keys must be integral");
    static_assert(sizeof(K) <= sizeof(uint64_t),
                  "FlatMap keys must fit in 64 bits");

  public:
    FlatMap() = default;

    size_t size() const { return _size; }
    bool empty() const { return _size == 0; }
    /** Allocated slots (power of two; 0 before the first insert). */
    size_t capacity() const { return _capacity; }

    /**
     * Ensures `n` total entries fit without growing. Until size()
     * exceeds `n`, inserts never rehash, so pointers returned by
     * find()/operator[]/tryEmplace() stay valid (erase of *other*
     * keys may still move entries via backward shift).
     */
    void
    reserve(size_t n)
    {
        const size_t needed = capacityFor(n);
        if (needed > _capacity)
            rehash(needed);
    }

    /** Pointer to the value of `key`, or nullptr when absent. */
    V *
    find(K key)
    {
        const size_t slot = findSlot(key);
        return slot == NoSlot ? nullptr : &_kv[slot].value;
    }

    const V *
    find(K key) const
    {
        const size_t slot = findSlot(key);
        return slot == NoSlot ? nullptr : &_kv[slot].value;
    }

    bool contains(K key) const { return findSlot(key) != NoSlot; }

    /**
     * Inserts a default-constructed value for `key` when absent.
     * @return {value pointer, true when newly inserted}
     */
    std::pair<V *, bool>
    tryEmplace(K key)
    {
        if (_size + 1 > _growAt)
            rehash(capacityFor(_size + 1));
        const uint64_t h = mix(key);
        const uint8_t tag = tagOf(h);
        size_t slot = h >> _shift;
        while (_tags[slot]) {
            if (_tags[slot] == tag && _kv[slot].key == key)
                return {&_kv[slot].value, false};
            slot = next(slot);
        }
        _tags[slot] = tag;
        _kv[slot].key = key;
        _kv[slot].value = V();
        ++_size;
        return {&_kv[slot].value, true};
    }

    /** The value of `key`, default-constructed on first access. */
    V &operator[](K key) { return *tryEmplace(key).first; }

    /** Inserts or overwrites key → value. @return true if inserted */
    bool
    insert(K key, V value)
    {
        auto [v, inserted] = tryEmplace(key);
        *v = std::move(value);
        return inserted;
    }

    /**
     * Removes `key` by backward shifting the tail of its probe
     * chain, leaving no tombstone. @return true when removed.
     */
    bool
    erase(K key)
    {
        size_t hole = findSlot(key);
        if (hole == NoSlot)
            return false;
        const size_t mask = _mask;
        size_t probe = next(hole);
        while (_tags[probe]) {
            // An entry may back-fill the hole iff the hole lies on
            // its probe path, i.e. within [home, probe) circularly.
            const size_t home = mix(_kv[probe].key) >> _shift;
            if (((hole - home) & mask) < ((probe - home) & mask)) {
                _tags[hole] = _tags[probe];
                _kv[hole].key = _kv[probe].key;
                _kv[hole].value = std::move(_kv[probe].value);
                hole = probe;
            }
            probe = next(probe);
        }
        _tags[hole] = 0;
        releaseSlot(hole);
        --_size;
        return true;
    }

    /** Removes every entry; keeps the allocation. */
    void
    clear()
    {
        for (size_t s = 0; s < _capacity; ++s) {
            if (_tags[s]) {
                _tags[s] = 0;
                releaseSlot(s);
            }
        }
        _size = 0;
    }

    /**
     * Visits every entry as fn(key, value&). Iteration order is
     * unspecified — never call this on the simulation path.
     */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (size_t s = 0; s < _capacity; ++s)
            if (_tags[s])
                fn(_kv[s].key, _kv[s].value);
    }

    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (size_t s = 0; s < _capacity; ++s)
            if (_tags[s])
                fn(_kv[s].key, _kv[s].value);
    }

  private:
    static constexpr size_t NoSlot = SIZE_MAX;
    static constexpr size_t MinCapacity = 64;

    /** Key and value packed so a tag match costs one more line. */
    struct KV
    {
        K key;
        V value;
    };

    /**
     * Smallest power-of-two capacity holding `n` at <= 1/4 load.
     * The low ceiling keeps linear-probe chains short, which pays
     * for itself twice: misses terminate after ~1 probe, and the
     * backward-shift erase only walks a couple of slots. (At 1/2
     * load and above, churn-heavy users like the IOMMU MSHR spent
     * more time walking and shifting chain tails than the
     * node-based map spent allocating.) The floor of 64 slots means
     * typical per-tenant tables — a handful of pages — never rehash:
     * one tag allocation plus one key/value allocation for the
     * table's whole lifetime.
     */
    static size_t
    capacityFor(size_t n)
    {
        size_t cap = MinCapacity;
        while (n * 4 > cap)
            cap <<= 1;
        return cap;
    }

    /**
     * Fibonacci (multiplicative) hash: one multiply whose top bits
     * are well mixed even for the simulator's structured keys (page
     * bases and small dense IDs). The bucket reads the *top*
     * log2(capacity) bits, so one multiply plus one shift replaces
     * the three-multiply SplitMix finalizer — the mix sits on every
     * probe's critical path, so its latency is most of a warm
     * probe's cost.
     */
    static uint64_t
    mix(K key)
    {
        return static_cast<uint64_t>(key) * 0x9E3779B97F4A7C15ull;
    }

    /**
     * Occupied-slot tag: the marker bit plus seven mixed-hash bits
     * taken below the bucket bits (disjoint for every capacity this
     * simulator uses). A probe only touches the key/value array
     * when all eight bits match, so ~99% of colliding slots are
     * rejected from the tag line alone.
     */
    static uint8_t tagOf(uint64_t h) { return uint8_t(h >> 40) | 0x80; }

    size_t next(size_t slot) const { return (slot + 1) & _mask; }

    size_t
    findSlot(K key) const
    {
        if (_size == 0)
            return NoSlot;
        const uint64_t h = mix(key);
        const uint8_t tag = tagOf(h);
        const uint8_t *tags = _tags.data();
        const KV *kv = _kv.get();
        size_t slot = h >> _shift;
        while (tags[slot]) {
            if (tags[slot] == tag && kv[slot].key == key)
                return slot;
            slot = next(slot);
        }
        return NoSlot;
    }

    /** Eagerly releases a vacated value's resources. A trivial V
     *  has none, and skipping the store keeps erase write-free on
     *  the payload array. */
    void
    releaseSlot(size_t slot)
    {
        if constexpr (!std::is_trivially_destructible_v<V>)
            _kv[slot].value = V();
    }

    void
    rehash(size_t new_capacity)
    {
        HYPERSIO_ASSERT((new_capacity & (new_capacity - 1)) == 0,
                        "flat map capacity must be a power of two");
        std::vector<uint8_t> old_tags = std::move(_tags);
        std::unique_ptr<KV[]> old_kv = std::move(_kv);
        const size_t old_capacity = _capacity;
        _tags.assign(new_capacity, 0);
        // Default-initialized on purpose: for trivial K/V this is
        // raw storage (no memset of the payload), and slots are
        // only ever read after their tag marks them live.
        _kv.reset(new KV[new_capacity]);
        _capacity = new_capacity;
        _mask = new_capacity - 1;
        _shift = std::countl_zero(new_capacity) + 1;
        _growAt = new_capacity / 4;
        // Reinsert in slot order: deterministic given the same
        // insert/erase history.
        for (size_t s = 0; s < old_capacity; ++s) {
            if (!old_tags[s])
                continue;
            const uint64_t h = mix(old_kv[s].key);
            size_t slot = h >> _shift;
            while (_tags[slot])
                slot = next(slot);
            _tags[slot] = tagOf(h);
            _kv[slot].key = old_kv[s].key;
            _kv[slot].value = std::move(old_kv[s].value);
        }
    }

    std::vector<uint8_t> _tags; ///< 0 = empty; else tagOf(hash)
    std::unique_ptr<KV[]> _kv;  ///< live iff the matching tag is set
    size_t _capacity = 0;
    size_t _size = 0;
    size_t _growAt = 0;
    size_t _mask = 0;  ///< capacity() - 1; 0 before the first insert
    int _shift = 63;   ///< bucket = mix(key) >> _shift
};

#else // HYPERSIO_LEGACY_STRUCTURES

/**
 * Reference mode: the pre-flat node-based layout, kept selectable so
 * bench/translation_path_microbench can measure the data-layout win
 * end-to-end (scripts/check_repo.sh gate 7). API-compatible with the
 * flat implementation above.
 */
template <typename K, typename V>
class FlatMap
{
  public:
    FlatMap() = default;

    size_t size() const { return _map.size(); }
    bool empty() const { return _map.empty(); }
    size_t capacity() const { return _map.bucket_count(); }

    void reserve(size_t n) { _map.reserve(n); }

    V *
    find(K key)
    {
        auto it = _map.find(key);
        return it == _map.end() ? nullptr : &it->second;
    }

    const V *
    find(K key) const
    {
        auto it = _map.find(key);
        return it == _map.end() ? nullptr : &it->second;
    }

    bool contains(K key) const { return _map.count(key) != 0; }

    std::pair<V *, bool>
    tryEmplace(K key)
    {
        auto [it, inserted] = _map.try_emplace(key);
        return {&it->second, inserted};
    }

    V &operator[](K key) { return _map[key]; }

    bool
    insert(K key, V value)
    {
        auto [it, inserted] = _map.try_emplace(key);
        it->second = std::move(value);
        return inserted;
    }

    bool erase(K key) { return _map.erase(key) != 0; }

    void clear() { _map.clear(); }

    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (auto &[key, value] : _map)
            fn(key, value);
    }

    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &[key, value] : _map)
            fn(key, value);
    }

  private:
    std::unordered_map<K, V> _map;
};

#endif // HYPERSIO_LEGACY_STRUCTURES

} // namespace hypersio::util

#endif // HYPERSIO_UTIL_FLAT_MAP_HH
