/**
 * @file
 * Open-addressing hash map for the translation hot path.
 *
 * Every per-tenant metadata structure the simulator probes per
 * translation (page-table mappings, the page-table directory, the
 * IOMMU MSHR, the prefetcher's per-DID history, the SID-predictor
 * table) used to be a `std::unordered_map`: one heap node per entry,
 * a pointer chase per probe, and an allocation per insert. FlatMap
 * replaces them with a single open-addressed table:
 *
 *   - power-of-two capacity, so the bucket of a key is one Fibonacci
 *     multiply plus a shift (no integer division);
 *   - linear probing over a dense 1-byte tag array (0 for an empty
 *     slot, otherwise a marker bit plus seven hash bits), with the
 *     keys and values packed together in a parallel array touched
 *     only when a tag matches. A miss therefore resolves inside a
 *     single tag cache line, and a hit costs that line plus one
 *     key/value line — which matters when thousands of per-tenant
 *     maps are probed in interleaved (cold-cache) packet order;
 *   - the probe loop compares a whole 16-slot group of tags at a
 *     time through util/simd.hh (SSE2/NEON, scalar fallback): after
 *     a one-slot fast path for the overwhelmingly common
 *     hit-at-home / empty-at-home cases, collision chains and erase
 *     scans resolve in one group compare instead of a byte loop.
 *     The group backend only produces candidate masks — every
 *     decision is made from the masks in slot order — so the table's
 *     layout and every observable result are bit-identical across
 *     backends (scripts/check_repo.sh gate 9 enforces this);
 *   - the tag array is the only zero-initialized storage: the
 *     key/value array is allocated default-initialized, so growing a
 *     table never memsets the (much larger) payload — the cost that
 *     otherwise dominates tenant-attach storms;
 *   - tombstone-free deletion by backward shifting, so probe chains
 *     never accumulate dead slots and lookup cost stays bounded by
 *     the live load factor;
 *   - `reserve(n)` guarantees: no rehash — and therefore no pointer
 *     or reference invalidation — for the next `n - size()` inserts.
 *
 * Determinism: the memory layout is a pure function of the insert /
 * erase sequence, and nothing on the simulation path depends on
 * iteration order (forEach exists for tests and teardown only, and
 * its order is explicitly unspecified).
 *
 * Requirements on K/V: K is an integral (or enum) type no wider than
 * 64 bits; V is default-constructible and move-assignable. Erasing a
 * non-trivial V assigns `V()` into the vacated slot so resources
 * release eagerly.
 *
 * Reference mode: building with -DHYPERSIO_LEGACY_STRUCTURES=ON pins
 * the old node-based layout (a thin wrapper over std::unordered_map
 * with this same API). scripts/check_repo.sh builds it to measure
 * the flat layout's end-to-end speedup on
 * bench/translation_path_microbench; it is not meant for production
 * runs.
 */

#ifndef HYPERSIO_UTIL_FLAT_MAP_HH
#define HYPERSIO_UTIL_FLAT_MAP_HH

#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#ifdef HYPERSIO_LEGACY_STRUCTURES
#include <unordered_map>
#endif

#include "util/logging.hh"
#include "util/simd.hh"

namespace hypersio::util
{

#ifndef HYPERSIO_LEGACY_STRUCTURES

/**
 * Open-addressing map from an integral key to V (see file header).
 *
 * `Ops` selects the 16-wide group-probe backend (util/simd.hh). The
 * default is the build's best backend; tests instantiate the scalar
 * reference explicitly to prove layout equivalence.
 */
template <typename K, typename V,
          typename Ops = simd::DefaultGroupOps>
class FlatMap
{
    static_assert(std::is_integral_v<K> || std::is_enum_v<K>,
                  "FlatMap keys must be integral");
    static_assert(sizeof(K) <= sizeof(uint64_t),
                  "FlatMap keys must fit in 64 bits");

  public:
    FlatMap() = default;

    size_t size() const { return _size; }
    bool empty() const { return _size == 0; }
    /** Allocated slots (power of two; 0 before the first insert). */
    size_t capacity() const { return _capacity; }

    /**
     * Ensures `n` total entries fit without growing. Until size()
     * exceeds `n`, inserts never rehash, so pointers returned by
     * find()/operator[]/tryEmplace() stay valid (erase of *other*
     * keys may still move entries via backward shift).
     */
    void
    reserve(size_t n)
    {
        const size_t needed = capacityFor(n);
        if (needed > _capacity)
            rehash(needed);
    }

    /** Pointer to the value of `key`, or nullptr when absent. */
    V *
    find(K key)
    {
        const size_t slot = findSlot(key);
        return slot == NoSlot ? nullptr : &_kv[slot].value;
    }

    const V *
    find(K key) const
    {
        const size_t slot = findSlot(key);
        return slot == NoSlot ? nullptr : &_kv[slot].value;
    }

    bool contains(K key) const { return findSlot(key) != NoSlot; }

    /**
     * Inserts a default-constructed value for `key` when absent.
     * @return {value pointer, true when newly inserted}
     */
    std::pair<V *, bool>
    tryEmplace(K key)
    {
        if (_size + 1 > _growAt)
            rehash(capacityFor(_size + 1));
        const uint64_t h = mix(key);
        const Probe p = probeSlot(h, key);
        if (p.found)
            return {&_kv[p.slot].value, false};
        _tags[p.slot] = tagOf(h);
        _kv[p.slot].key = key;
        _kv[p.slot].value = V();
        ++_size;
        return {&_kv[p.slot].value, true};
    }

    /** The value of `key`, default-constructed on first access. */
    V &operator[](K key) { return *tryEmplace(key).first; }

    /** Inserts or overwrites key → value. @return true if inserted */
    bool
    insert(K key, V value)
    {
        auto [v, inserted] = tryEmplace(key);
        *v = std::move(value);
        return inserted;
    }

    /**
     * Removes `key` by backward shifting the tail of its probe
     * chain, leaving no tombstone. @return true when removed.
     */
    bool
    erase(K key)
    {
        size_t hole = findSlot(key);
        if (hole == NoSlot)
            return false;
        eraseSlot(hole);
        return true;
    }

    /**
     * Removes `key`, moving its value into `out` instead of
     * destroying it. One probe total — callers that recycle the
     * evicted value's storage (tenant-table pooling) would otherwise
     * pay find() + erase(). @return true when the key existed.
     */
    bool
    extract(K key, V &out)
    {
        size_t hole = findSlot(key);
        if (hole == NoSlot)
            return false;
        out = std::move(_kv[hole].value);
        eraseSlot(hole);
        return true;
    }

    /** Removes every entry; keeps the allocation. */
    void
    clear()
    {
        for (size_t s = 0; s < _capacity; ++s) {
            if (_tags[s]) {
                _tags[s] = 0;
                releaseSlot(s);
            }
        }
        _size = 0;
    }

    /**
     * Visits every entry as fn(key, value&). Iteration order is
     * unspecified — never call this on the simulation path.
     */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (size_t s = 0; s < _capacity; ++s)
            if (_tags[s])
                fn(_kv[s].key, _kv[s].value);
    }

    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (size_t s = 0; s < _capacity; ++s)
            if (_tags[s])
                fn(_kv[s].key, _kv[s].value);
    }

  private:
    static constexpr size_t NoSlot = SIZE_MAX;
    static constexpr size_t MinCapacity = 64;

    /** Key and value packed so a tag match costs one more line. */
    struct KV
    {
        K key;
        V value;
    };

    /**
     * Smallest power-of-two capacity holding `n` at <= 1/2 load.
     * Group-wide tag probes changed the old 1/4 calculus: a probe
     * rejects 16 slots per compare, so the shorter chains a 1/4
     * ceiling buys no longer pay for the doubled memory footprint
     * and the extra rehash step (measured ~4% on the translation
     * microbench, walk-heavy patterns). The floor of 64 slots means
     * typical per-tenant tables — a handful of pages — never rehash:
     * one tag allocation plus one key/value allocation for the
     * table's whole lifetime.
     */
    static size_t
    capacityFor(size_t n)
    {
        size_t cap = MinCapacity;
        while (n * 2 > cap)
            cap <<= 1;
        return cap;
    }

    /**
     * Fibonacci (multiplicative) hash: one multiply whose top bits
     * are well mixed even for the simulator's structured keys (page
     * bases and small dense IDs). The bucket reads the *top*
     * log2(capacity) bits, so one multiply plus one shift replaces
     * the three-multiply SplitMix finalizer — the mix sits on every
     * probe's critical path, so its latency is most of a warm
     * probe's cost.
     */
    static uint64_t
    mix(K key)
    {
        return static_cast<uint64_t>(key) * 0x9E3779B97F4A7C15ull;
    }

    /**
     * Occupied-slot tag: the marker bit plus seven hash bits taken
     * from the *low* end of the mix, folded with bits 32–38. The
     * bucket index reads the top log2(capacity) bits, so low bits
     * stay disjoint from it at every reachable capacity — the old
     * bits 40–46 collided with the bucket index from 2^17 slots up
     * (hyperscale directory/MSHR territory), making the tag a pure
     * function of the in-bucket position and gutting its rejection
     * power. The fold matters too: page-base keys have zero low
     * bits, so the low 7 product bits alone would be constant; XORing
     * in well-mixed middle bits keeps 7 bits of entropy for every
     * key shape. A probe only touches the key/value array when all
     * eight bits match, so ~99% of colliding slots are rejected from
     * the tag line alone.
     */
    static uint8_t
    tagOf(uint64_t h)
    {
        return uint8_t((h ^ (h >> 32)) & 0x7f) | 0x80;
    }

    size_t next(size_t slot) const { return (slot + 1) & _mask; }

    /** Outcome of walking a key's probe chain: the key's slot when
     *  found, else the first empty slot (the insert position). */
    struct Probe
    {
        size_t slot;
        bool found;
    };

    /**
     * Walks the probe chain of `h` in slot order. A one-slot fast
     * path answers the dominant cases (key at its home slot, or home
     * slot empty); otherwise tags are compared a 16-slot group at a
     * time. Groups are position-aligned windows of the tag array
     * (capacity is a power of two >= 64, so groups never straddle
     * the wrap), the first group masks off lanes before the home
     * slot, and candidates are checked strictly before the group's
     * first empty lane — exactly the order and termination of a
     * one-slot-at-a-time scan, for any backend.
     */
    Probe
    probeSlot(uint64_t h, K key) const
    {
        const uint8_t tag = tagOf(h);
        const uint8_t *tags = _tags.data();
        const KV *kv = _kv.get();
        const size_t home = h >> _shift;
        if (tags[home] == tag && kv[home].key == key)
            return {home, true};
        if (tags[home] == 0)
            return {home, false};
        size_t group = home & ~(simd::GroupWidth - 1);
        uint32_t lanes = (~uint32_t(0) << (home - group)) & 0xffffu;
        for (;;) {
            const uint32_t empty = Ops::zeroMask(tags + group) & lanes;
            // Only lanes before the first empty slot are on the
            // probe chain; the chain ends there.
            const uint32_t chain =
                empty ? (empty & (~empty + 1)) - 1 : 0xffffu;
            uint32_t cand =
                Ops::matchMask(tags + group, tag) & lanes & chain;
            while (cand) {
                const size_t s =
                    group + size_t(std::countr_zero(cand));
                if (kv[s].key == key)
                    return {s, true};
                cand &= cand - 1;
            }
            if (empty)
                return {group + size_t(std::countr_zero(empty)),
                        false};
            group = (group + simd::GroupWidth) & _mask;
            lanes = 0xffffu;
        }
    }

    size_t
    findSlot(K key) const
    {
        if (_size == 0)
            return NoSlot;
        const Probe p = probeSlot(mix(key), key);
        return p.found ? p.slot : NoSlot;
    }

    /**
     * Backward-shift removal of the entry at `hole`: entries whose
     * probe path crosses the hole are pulled back over it, leaving
     * no tombstone.
     */
    void
    eraseSlot(size_t hole)
    {
        const size_t mask = _mask;
        size_t probe = next(hole);
        while (_tags[probe]) {
            // An entry may back-fill the hole iff the hole lies on
            // its probe path, i.e. within [home, probe) circularly.
            const size_t home = mix(_kv[probe].key) >> _shift;
            if (((hole - home) & mask) < ((probe - home) & mask)) {
                _tags[hole] = _tags[probe];
                _kv[hole].key = _kv[probe].key;
                _kv[hole].value = std::move(_kv[probe].value);
                hole = probe;
            }
            probe = next(probe);
        }
        _tags[hole] = 0;
        releaseSlot(hole);
        --_size;
    }

    /** Eagerly releases a vacated value's resources. A trivial V
     *  has none, and skipping the store keeps erase write-free on
     *  the payload array. */
    void
    releaseSlot(size_t slot)
    {
        if constexpr (!std::is_trivially_destructible_v<V>)
            _kv[slot].value = V();
    }

    void
    rehash(size_t new_capacity)
    {
        HYPERSIO_ASSERT((new_capacity & (new_capacity - 1)) == 0,
                        "flat map capacity must be a power of two");
        std::vector<uint8_t> old_tags = std::move(_tags);
        std::unique_ptr<KV[]> old_kv = std::move(_kv);
        const size_t old_capacity = _capacity;
        _tags.assign(new_capacity, 0);
        // Default-initialized on purpose: for trivial K/V this is
        // raw storage (no memset of the payload), and slots are
        // only ever read after their tag marks them live.
        _kv.reset(new KV[new_capacity]);
        _capacity = new_capacity;
        _mask = new_capacity - 1;
        _shift = std::countl_zero(new_capacity) + 1;
        _growAt = new_capacity / 2;
        // Reinsert in slot order: deterministic given the same
        // insert/erase history.
        for (size_t s = 0; s < old_capacity; ++s) {
            if (!old_tags[s])
                continue;
            const uint64_t h = mix(old_kv[s].key);
            size_t slot = h >> _shift;
            while (_tags[slot])
                slot = next(slot);
            _tags[slot] = tagOf(h);
            _kv[slot].key = old_kv[s].key;
            _kv[slot].value = std::move(old_kv[s].value);
        }
    }

    std::vector<uint8_t> _tags; ///< 0 = empty; else tagOf(hash)
    std::unique_ptr<KV[]> _kv;  ///< live iff the matching tag is set
    size_t _capacity = 0;
    size_t _size = 0;
    size_t _growAt = 0;
    size_t _mask = 0;  ///< capacity() - 1; 0 before the first insert
    int _shift = 63;   ///< bucket = mix(key) >> _shift
};

#else // HYPERSIO_LEGACY_STRUCTURES

/**
 * Reference mode: the pre-flat node-based layout, kept selectable so
 * bench/translation_path_microbench can measure the data-layout win
 * end-to-end (scripts/check_repo.sh gate 7). API-compatible with the
 * flat implementation above. The group-probe backend parameter is
 * accepted for API compatibility and ignored (node-based layout).
 */
template <typename K, typename V,
          typename Ops = simd::DefaultGroupOps>
class FlatMap
{
  public:
    FlatMap() = default;

    size_t size() const { return _map.size(); }
    bool empty() const { return _map.empty(); }
    size_t capacity() const { return _map.bucket_count(); }

    void reserve(size_t n) { _map.reserve(n); }

    V *
    find(K key)
    {
        auto it = _map.find(key);
        return it == _map.end() ? nullptr : &it->second;
    }

    const V *
    find(K key) const
    {
        auto it = _map.find(key);
        return it == _map.end() ? nullptr : &it->second;
    }

    bool contains(K key) const { return _map.count(key) != 0; }

    std::pair<V *, bool>
    tryEmplace(K key)
    {
        auto [it, inserted] = _map.try_emplace(key);
        return {&it->second, inserted};
    }

    V &operator[](K key) { return _map[key]; }

    bool
    insert(K key, V value)
    {
        auto [it, inserted] = _map.try_emplace(key);
        it->second = std::move(value);
        return inserted;
    }

    bool erase(K key) { return _map.erase(key) != 0; }

    bool
    extract(K key, V &out)
    {
        auto it = _map.find(key);
        if (it == _map.end())
            return false;
        out = std::move(it->second);
        _map.erase(it);
        return true;
    }

    void clear() { _map.clear(); }

    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (auto &[key, value] : _map)
            fn(key, value);
    }

    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &[key, value] : _map)
            fn(key, value);
    }

  private:
    std::unordered_map<K, V> _map;
};

#endif // HYPERSIO_LEGACY_STRUCTURES

} // namespace hypersio::util

#endif // HYPERSIO_UTIL_FLAT_MAP_HH
