/**
 * @file
 * Status-message and error-reporting helpers, in the spirit of gem5's
 * logging interface.
 *
 * `panic()` is for conditions that indicate a bug in the simulator
 * itself; it aborts. `fatal()` is for user errors (bad configuration,
 * malformed trace files, invalid arguments); it exits with status 1.
 * `warn()` and `inform()` never stop the simulation.
 */

#ifndef HYPERSIO_UTIL_LOGGING_HH
#define HYPERSIO_UTIL_LOGGING_HH

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <string>

namespace hypersio
{

/** Verbosity levels for the global logger. */
enum class LogLevel : int
{
    Quiet = 0,   ///< only fatal/panic messages
    Warn = 1,    ///< warnings and above
    Inform = 2,  ///< informational messages and above
    Debug = 3,   ///< everything, including debug traces
};

/**
 * Process-wide logger configuration. All free logging functions below
 * route through this singleton.
 *
 * The logger is shared by every simulation thread (parallel sweeps
 * run one System per worker), so level/stream are atomics and all
 * writers serialise on ioMutex() — each log line reaches the sink as
 * one uninterleaved unit.
 */
class Logger
{
  public:
    static Logger &instance();

    LogLevel
    level() const
    {
        return _level.load(std::memory_order_relaxed);
    }

    void
    setLevel(LogLevel level)
    {
        _level.store(level, std::memory_order_relaxed);
    }

    /** Redirect output (used by tests); nullptr restores stderr. */
    void
    setStream(std::FILE *stream)
    {
        _stream.store(stream, std::memory_order_relaxed);
    }

    std::FILE *
    stream() const
    {
        std::FILE *s = _stream.load(std::memory_order_relaxed);
        return s ? s : stderr;
    }

    /** Serialises writers so each line is emitted atomically. */
    std::mutex &ioMutex() { return _ioMutex; }

  private:
    Logger() = default;

    std::atomic<LogLevel> _level{LogLevel::Warn};
    std::atomic<std::FILE *> _stream{nullptr};
    std::mutex _ioMutex;
};

/**
 * Thread-local one-line context printed immediately before any
 * panic() message raised on the same thread. Long-running harnesses
 * set it to a self-contained repro line (seed, shard, interval) so
 * that an assertion or shadow-oracle abort deep inside the simulator
 * still tells the user how to reproduce it — the soak harness's
 * equivalent of the fuzz harness's HYPERSIO_FUZZ_SEED line.
 */
class PanicContext
{
  public:
    /** Replaces this thread's context line; empty clears it. */
    static void set(std::string line);

    /** This thread's current context line (empty when unset). */
    static const std::string &get();
};

namespace detail
{
/** Formats and prints one log line with the given prefix. */
void logLine(LogLevel level, const char *prefix, const char *fmt,
             va_list args);
} // namespace detail

/** Informational status message; shown at LogLevel::Inform and above. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Warning about suspicious but non-fatal behaviour. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Debug-level trace message. */
void debugLog(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Unrecoverable *user* error (bad config, bad input file). Prints the
 * message and exits with status 1.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Unrecoverable *internal* error (a simulator bug). Prints the message
 * and aborts so a core dump / debugger can be used.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** panic() unless `cond` holds; message describes the broken invariant. */
#define HYPERSIO_ASSERT(cond, fmt, ...)                                     \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::hypersio::panic("assertion '%s' failed at %s:%d: " fmt,       \
                              #cond, __FILE__, __LINE__,                    \
                              ##__VA_ARGS__);                               \
        }                                                                   \
    } while (0)

} // namespace hypersio

#endif // HYPERSIO_UTIL_LOGGING_HH
