/**
 * @file
 * Simulation time base and unit helpers.
 *
 * The simulator counts time in integer picoseconds (`Tick`), which
 * represents the 61.68 ns packet inter-arrival time of a 200 Gb/s link
 * exactly enough (61680 ps) while keeping event ordering integral.
 */

#ifndef HYPERSIO_UTIL_UNITS_HH
#define HYPERSIO_UTIL_UNITS_HH

#include <cstdint>

namespace hypersio
{

/** Simulated time in picoseconds. */
using Tick = uint64_t;

/** Sentinel for "no tick / never". */
constexpr Tick MaxTick = ~Tick(0);

constexpr Tick TicksPerPs = 1;
constexpr Tick TicksPerNs = 1000;
constexpr Tick TicksPerUs = 1000 * TicksPerNs;
constexpr Tick TicksPerMs = 1000 * TicksPerUs;
constexpr Tick TicksPerSec = 1000 * TicksPerMs;

/** Converts nanoseconds to ticks. */
constexpr Tick
nsToTicks(double ns)
{
    return static_cast<Tick>(ns * TicksPerNs);
}

/** Converts ticks to (fractional) nanoseconds. */
constexpr double
ticksToNs(Tick t)
{
    return static_cast<double>(t) / TicksPerNs;
}

/** Converts ticks to (fractional) seconds. */
constexpr double
ticksToSec(Tick t)
{
    return static_cast<double>(t) / TicksPerSec;
}

/**
 * Time to serialize `bytes` at `gbps` gigabits per second, in ticks.
 * E.g. packetTime(1542, 200.0) == 61680 ps.
 */
constexpr Tick
serializationTicks(uint64_t bytes, double gbps)
{
    // bits / (Gb/s) = ns; * 1000 = ps.
    return static_cast<Tick>(static_cast<double>(bytes) * 8.0 / gbps *
                             TicksPerNs);
}

/** Achieved bandwidth in Gb/s for `bytes` transferred over `elapsed`. */
constexpr double
achievedGbps(uint64_t bytes, Tick elapsed)
{
    if (elapsed == 0)
        return 0.0;
    return static_cast<double>(bytes) * 8.0 /
           static_cast<double>(elapsed) * TicksPerNs;
}

} // namespace hypersio

#endif // HYPERSIO_UTIL_UNITS_HH
