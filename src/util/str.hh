/**
 * @file
 * Small string utilities: splitting, trimming, and number parsing used
 * by the command-line and config-file front ends.
 */

#ifndef HYPERSIO_UTIL_STR_HH
#define HYPERSIO_UTIL_STR_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hypersio
{

/** Splits `text` at every occurrence of `sep`; keeps empty fields. */
std::vector<std::string> split(std::string_view text, char sep);

/** Removes leading and trailing whitespace. */
std::string_view trim(std::string_view text);

/**
 * Parses an unsigned integer, accepting decimal, 0x-hex, and the
 * suffixes k/m/g (powers of 1024). Returns false on malformed input.
 */
bool parseU64(std::string_view text, uint64_t &out);

/** Parses a double. Returns false on malformed input. */
bool parseDouble(std::string_view text, double &out);

/**
 * Extracts the peak-resident-set high-water mark (the "VmHWM:" field,
 * in KiB) from a /proc/self/status blob. Returns false when the field
 * is absent or malformed — callers gating on a memory budget must
 * treat that as "no measurement", not as 0 KiB.
 */
bool parseVmHwmKib(std::string_view status_text, uint64_t &out);

/**
 * Extracts the current resident set (the "VmRSS:" field, in KiB) from
 * a /proc/self/status blob, under the same strict-parse contract as
 * parseVmHwmKib. The soak harness samples this per interval — unlike
 * the high-water mark, it can fall, which is what makes a monotonic
 * trajectory a leak signal.
 */
bool parseVmRssKib(std::string_view status_text, uint64_t &out);

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Formats a byte count with a human-readable suffix (e.g. "2MiB"). */
std::string formatBytes(uint64_t bytes);

} // namespace hypersio

#endif // HYPERSIO_UTIL_STR_HH
