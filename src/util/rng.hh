/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * All randomness in HyperSIO must be reproducible from a seed so that
 * traces and simulation results are deterministic across runs. We use
 * SplitMix64 for hashing/seeding and xoshiro256** as the main stream
 * generator (both public-domain algorithms by Blackman & Vigna).
 */

#ifndef HYPERSIO_UTIL_RNG_HH
#define HYPERSIO_UTIL_RNG_HH

#include <cstdint>

namespace hypersio
{

/**
 * One SplitMix64 step: maps an arbitrary 64-bit value to a well-mixed
 * 64-bit value. Useful as a stateless hash and for seeding.
 */
constexpr uint64_t
splitmix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Mixes two 64-bit values into one (order-sensitive). */
constexpr uint64_t
hashCombine(uint64_t a, uint64_t b)
{
    return splitmix64(a ^ splitmix64(b));
}

/**
 * xoshiro256** generator. Small, fast, and good statistical quality;
 * plenty for workload synthesis and replacement-policy randomness.
 */
class Rng
{
  public:
    /** Seeds the four state words via SplitMix64 expansion of `seed`. */
    explicit Rng(uint64_t seed = 0x185706b82c2e03f8ULL)
    {
        uint64_t sm = seed;
        for (auto &word : _state) {
            sm = splitmix64(sm);
            word = sm;
        }
    }

    /** Next raw 64-bit output. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(_state[1] * 5, 7) * 9;
        const uint64_t t = _state[1] << 17;

        _state[2] ^= _state[0];
        _state[3] ^= _state[1];
        _state[1] ^= _state[2];
        _state[0] ^= _state[3];
        _state[2] ^= t;
        _state[3] = rotl(_state[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound == 0 returns 0. */
    uint64_t
    below(uint64_t bound)
    {
        if (bound == 0)
            return 0;
        // Rejection sampling to avoid modulo bias.
        const uint64_t threshold = -bound % bound;
        for (;;) {
            uint64_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform integer in [lo, hi] inclusive. */
    uint64_t
    range(uint64_t lo, uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli draw with probability `p` of returning true. */
    bool chance(double p) { return uniform() < p; }

  private:
    static constexpr uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t _state[4];
};

} // namespace hypersio

#endif // HYPERSIO_UTIL_RNG_HH
