#include "util/json.hh"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace hypersio::json
{

std::string
escape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

std::string
formatDouble(double v)
{
    // JSON has no inf/nan literals; clamp them to null-adjacent 0
    // rather than emitting an invalid document.
    if (!std::isfinite(v))
        return "0";
    char buf[32];
    auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
    if (ec != std::errc())
        return "0";
    return std::string(buf, ptr);
}

void
Writer::newline()
{
    if (_indent == 0)
        return;
    _os << '\n';
    for (size_t i = 0; i < _stack.size() * _indent; ++i)
        _os << ' ';
}

void
Writer::separate()
{
    if (_afterKey) {
        _afterKey = false;
        return;
    }
    if (_stack.empty())
        return;
    if (_stack.back().hasItems)
        _os << ',';
    _stack.back().hasItems = true;
    newline();
}

void
Writer::open(char c)
{
    separate();
    _os << c;
    _stack.push_back({});
}

void
Writer::close(char c)
{
    const bool had_items = _stack.back().hasItems;
    _stack.pop_back();
    if (had_items)
        newline();
    _os << c;
}

void
Writer::key(std::string_view k)
{
    separate();
    _os << '"' << escape(k) << '"' << ':';
    if (_indent > 0)
        _os << ' ';
    _afterKey = true;
}

void
Writer::value(double v)
{
    separate();
    _os << formatDouble(v);
}

void
Writer::value(uint64_t v)
{
    separate();
    _os << v;
}

void
Writer::value(int64_t v)
{
    separate();
    _os << v;
}

void
Writer::value(bool v)
{
    separate();
    _os << (v ? "true" : "false");
}

void
Writer::value(std::string_view v)
{
    separate();
    _os << '"' << escape(v) << '"';
}

void
Writer::null()
{
    separate();
    _os << "null";
}

void
Writer::raw(std::string_view text)
{
    separate();
    _os << text;
}

namespace
{

/** Recursive-descent JSON parser over a string_view cursor. */
class Parser
{
  public:
    explicit Parser(std::string_view text) : _text(text) {}

    std::optional<Value>
    document()
    {
        auto v = parseValue();
        if (!v)
            return std::nullopt;
        skipWs();
        if (_pos != _text.size())
            return std::nullopt; // trailing garbage
        return v;
    }

  private:
    void
    skipWs()
    {
        while (_pos < _text.size() &&
               std::isspace(static_cast<unsigned char>(_text[_pos])))
            ++_pos;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (_pos < _text.size() && _text[_pos] == c) {
            ++_pos;
            return true;
        }
        return false;
    }

    bool
    literal(std::string_view word)
    {
        if (_text.substr(_pos, word.size()) != word)
            return false;
        _pos += word.size();
        return true;
    }

    std::optional<std::string>
    parseString()
    {
        if (!consume('"'))
            return std::nullopt;
        std::string out;
        while (_pos < _text.size()) {
            char c = _text[_pos++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (_pos >= _text.size())
                return std::nullopt;
            char esc = _text[_pos++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (_pos + 4 > _text.size())
                    return std::nullopt;
                unsigned code = 0;
                auto [p, ec] = std::from_chars(
                    _text.data() + _pos, _text.data() + _pos + 4,
                    code, 16);
                if (ec != std::errc() ||
                    p != _text.data() + _pos + 4)
                    return std::nullopt;
                _pos += 4;
                // Only the BMP subset the writer emits (control
                // chars) needs to round-trip; encode as UTF-8.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(
                        0x80 | ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
              }
              default:
                return std::nullopt;
            }
        }
        return std::nullopt; // unterminated
    }

    std::optional<Value>
    parseValue()
    {
        skipWs();
        if (_pos >= _text.size())
            return std::nullopt;
        const char c = _text[_pos];
        Value v;
        if (c == '{') {
            ++_pos;
            v.kind = Value::Kind::Object;
            skipWs();
            if (consume('}'))
                return v;
            for (;;) {
                auto key = parseString();
                if (!key || !consume(':'))
                    return std::nullopt;
                auto member = parseValue();
                if (!member)
                    return std::nullopt;
                v.object.emplace_back(std::move(*key),
                                      std::move(*member));
                if (consume(','))
                    continue;
                if (consume('}'))
                    return v;
                return std::nullopt;
            }
        }
        if (c == '[') {
            ++_pos;
            v.kind = Value::Kind::Array;
            skipWs();
            if (consume(']'))
                return v;
            for (;;) {
                auto item = parseValue();
                if (!item)
                    return std::nullopt;
                v.array.push_back(std::move(*item));
                if (consume(','))
                    continue;
                if (consume(']'))
                    return v;
                return std::nullopt;
            }
        }
        if (c == '"') {
            auto s = parseString();
            if (!s)
                return std::nullopt;
            v.kind = Value::Kind::String;
            v.str = std::move(*s);
            return v;
        }
        if (literal("true")) {
            v.kind = Value::Kind::Bool;
            v.boolean = true;
            return v;
        }
        if (literal("false")) {
            v.kind = Value::Kind::Bool;
            v.boolean = false;
            return v;
        }
        if (literal("null"))
            return v;
        // Number.
        double number = 0.0;
        auto [p, ec] = std::from_chars(
            _text.data() + _pos, _text.data() + _text.size(),
            number);
        if (ec != std::errc() || p == _text.data() + _pos)
            return std::nullopt;
        _pos = static_cast<size_t>(p - _text.data());
        v.kind = Value::Kind::Number;
        v.number = number;
        return v;
    }

    std::string_view _text;
    size_t _pos = 0;
};

} // namespace

const Value *
Value::find(std::string_view key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : object) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

std::optional<Value>
Value::parse(std::string_view text)
{
    return Parser(text).document();
}

} // namespace hypersio::json
