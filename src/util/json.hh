/**
 * @file
 * Minimal JSON support: a streaming writer with automatic comma and
 * indentation handling, and a small DOM + recursive-descent parser.
 *
 * The writer emits doubles with std::to_chars (shortest
 * round-trippable form), so a value written, parsed, and re-read
 * compares bit-identical — the property the bench regression gate
 * (scripts/bench_compare.py) and the stats round-trip tests rely on.
 * The parser accepts standard JSON (null, booleans, numbers, strings
 * with escapes, arrays, objects) and is intended for tool/test use,
 * not adversarial input.
 */

#ifndef HYPERSIO_UTIL_JSON_HH
#define HYPERSIO_UTIL_JSON_HH

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hypersio::json
{

/** Escapes a string's contents for use inside JSON quotes. */
std::string escape(std::string_view s);

/** Shortest round-trippable text for a double (to_chars). */
std::string formatDouble(double v);

/**
 * Streaming JSON writer. Call begin/end for containers, key() before
 * each object member, and value()/raw() for leaves; commas, quoting,
 * and indentation are handled automatically.
 *
 * An indent of 0 writes compact single-line JSON; any positive
 * indent pretty-prints with that many spaces per level.
 */
class Writer
{
  public:
    explicit Writer(std::ostream &os, unsigned indent = 2)
        : _os(os), _indent(indent)
    {}

    Writer(const Writer &) = delete;
    Writer &operator=(const Writer &) = delete;

    void beginObject() { open('{'); }
    void endObject() { close('}'); }
    void beginArray() { open('['); }
    void endArray() { close(']'); }

    /** Writes the member name of the next value. */
    void key(std::string_view k);

    void value(double v);
    void value(uint64_t v);
    void value(int64_t v);
    void value(int v) { value(static_cast<int64_t>(v)); }
    void value(unsigned v) { value(static_cast<uint64_t>(v)); }
    void value(bool v);
    void value(std::string_view v);
    void value(const char *v) { value(std::string_view(v)); }
    void null();

    /** Splices pre-serialized JSON in as the next value, verbatim. */
    void raw(std::string_view text);

  private:
    void open(char c);
    void close(char c);
    void separate();
    void newline();

    struct Level
    {
        bool hasItems = false;
    };

    std::ostream &_os;
    unsigned _indent;
    bool _afterKey = false;
    std::vector<Level> _stack;
};

/**
 * Parsed JSON value. Objects keep member order and are searched
 * linearly (the documents this package handles are small).
 */
struct Value
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<Value> array;
    std::vector<std::pair<std::string, Value>> object;

    bool isNull() const { return kind == Kind::Null; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }

    /** Object member lookup; nullptr when absent or not an object. */
    const Value *find(std::string_view key) const;

    /**
     * Parses a complete JSON document (trailing whitespace allowed,
     * trailing garbage rejected). std::nullopt on malformed input.
     */
    static std::optional<Value> parse(std::string_view text);
};

} // namespace hypersio::json

#endif // HYPERSIO_UTIL_JSON_HH
