/**
 * @file
 * 16-wide byte-group probe primitives for the translation hot path.
 *
 * The flat-hash/SoA layouts (util/flat_map.hh, the SetAssocCache tag
 * plane) keep their occupancy/tag metadata as dense 1-byte arrays
 * precisely so the probe loop can compare a whole group of candidate
 * slots at once. This header is the single place that knows how:
 * each backend exposes two operations over a 16-byte group,
 *
 *   matchMask(group, b) — bit i set iff group[i] == b
 *   zeroMask(group)     — bit i set iff group[i] == 0
 *
 * and every backend produces the *same* masks for the same bytes, so
 * a consumer that derives its decisions from the masks alone behaves
 * bit-identically no matter which backend was compiled in:
 *
 *   - Sse2GroupOps: x86-64 baseline (PCMPEQB + PMOVMSKB), one
 *     unaligned 16-byte load per group;
 *   - NeonGroupOps: AArch64 (CMEQ + the shrn/4-bit-per-lane mask
 *     narrowing idiom, spread back out to one bit per lane);
 *   - ScalarGroupOps: portable reference — a plain byte loop the
 *     other backends are tested against (tests/test_simd.cc drives
 *     both through identical sequences and asserts identical masks
 *     and identical FlatMap/SetAssocCache layouts).
 *
 * Selection is compile-time: DefaultGroupOps is the best vector
 * backend for the target unless HYPERSIO_FORCE_SCALAR_PROBES is
 * defined (the -DHYPERSIO_SIMD_PROBES=OFF CMake build), which pins
 * the scalar reference. scripts/check_repo.sh gate 9 builds both and
 * requires every deterministic bench count to match exactly.
 *
 * Group discipline shared by all consumers: groups are 16-byte
 * *position-aligned* windows of the byte array (offset a multiple of
 * 16 from the array base — the base pointer itself need not be
 * aligned; loads are unaligned). Arrays sized to a multiple of 16
 * therefore never read past the end, and a probe that starts
 * mid-group masks off the lanes before its start position.
 */

#ifndef HYPERSIO_UTIL_SIMD_HH
#define HYPERSIO_UTIL_SIMD_HH

#include <cstddef>
#include <cstdint>

#if !defined(HYPERSIO_FORCE_SCALAR_PROBES)
#if defined(__SSE2__) || defined(_M_X64)
#define HYPERSIO_SIMD_SSE2 1
#include <emmintrin.h>
#elif defined(__ARM_NEON) || defined(__ARM_NEON__)
#define HYPERSIO_SIMD_NEON 1
#include <arm_neon.h>
#endif
#endif

namespace hypersio::util::simd
{

/** Slots compared per group operation. Always 16, even for the
 *  scalar backend: consumers size and align their metadata arrays to
 *  this, so the layout (and thus behaviour) is backend-independent. */
inline constexpr size_t GroupWidth = 16;

/** Portable reference backend: the loop the vector backends must
 *  agree with bit-for-bit. */
struct ScalarGroupOps
{
    static constexpr const char *name = "scalar";

    static uint32_t
    matchMask(const uint8_t *group, uint8_t byte)
    {
        uint32_t mask = 0;
        for (size_t i = 0; i < GroupWidth; ++i)
            mask |= uint32_t(group[i] == byte) << i;
        return mask;
    }

    static uint32_t
    zeroMask(const uint8_t *group)
    {
        uint32_t mask = 0;
        for (size_t i = 0; i < GroupWidth; ++i)
            mask |= uint32_t(group[i] == 0) << i;
        return mask;
    }
};

#if defined(HYPERSIO_SIMD_SSE2)

/** x86-64 backend: PCMPEQB + PMOVMSKB (SSE2 is baseline on x86-64,
 *  so this needs no -m flags). */
struct Sse2GroupOps
{
    static constexpr const char *name = "sse2";

    static uint32_t
    matchMask(const uint8_t *group, uint8_t byte)
    {
        const __m128i g = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(group));
        const __m128i b = _mm_set1_epi8(static_cast<char>(byte));
        return static_cast<uint32_t>(
            _mm_movemask_epi8(_mm_cmpeq_epi8(g, b)));
    }

    static uint32_t
    zeroMask(const uint8_t *group)
    {
        const __m128i g = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(group));
        return static_cast<uint32_t>(
            _mm_movemask_epi8(_mm_cmpeq_epi8(g, _mm_setzero_si128())));
    }
};

using VectorGroupOps = Sse2GroupOps;

#elif defined(HYPERSIO_SIMD_NEON)

/** AArch64 backend: CMEQ produces 0x00/0xFF lanes; the vshrn idiom
 *  narrows them to 4 bits per lane, which are then gathered into the
 *  same one-bit-per-lane mask the other backends produce. */
struct NeonGroupOps
{
    static constexpr const char *name = "neon";

    static uint32_t
    maskOf(uint8x16_t eq)
    {
        // Narrow each 16-bit pair of lanes to 8 bits (4 bits per
        // original lane), then pick one bit per lane out of the
        // resulting 64-bit scalar.
        const uint8x8_t narrowed =
            vshrn_n_u16(vreinterpretq_u16_u8(eq), 4);
        const uint64_t nibbles =
            vget_lane_u64(vreinterpret_u64_u8(narrowed), 0);
        uint32_t mask = 0;
        for (unsigned i = 0; i < GroupWidth; ++i)
            mask |= uint32_t((nibbles >> (4 * i)) & 1) << i;
        return mask;
    }

    static uint32_t
    matchMask(const uint8_t *group, uint8_t byte)
    {
        return maskOf(vceqq_u8(vld1q_u8(group), vdupq_n_u8(byte)));
    }

    static uint32_t
    zeroMask(const uint8_t *group)
    {
        return maskOf(vceqq_u8(vld1q_u8(group), vdupq_n_u8(0)));
    }
};

using VectorGroupOps = NeonGroupOps;

#else

/** No vector unit (or HYPERSIO_FORCE_SCALAR_PROBES): the reference
 *  backend is also the "vector" one. */
using VectorGroupOps = ScalarGroupOps;

#endif

/** The backend the simulator's structures use by default. */
using DefaultGroupOps = VectorGroupOps;

} // namespace hypersio::util::simd

#endif // HYPERSIO_UTIL_SIMD_HH
