#include "util/logging.hh"

namespace hypersio
{

Logger &
Logger::instance()
{
    static Logger logger;
    return logger;
}

namespace
{

std::string &
panicContextLine()
{
    static thread_local std::string line;
    return line;
}

} // namespace

void
PanicContext::set(std::string line)
{
    panicContextLine() = std::move(line);
}

const std::string &
PanicContext::get()
{
    return panicContextLine();
}

namespace detail
{

void
logLine(LogLevel level, const char *prefix, const char *fmt, va_list args)
{
    Logger &logger = Logger::instance();
    if (static_cast<int>(level) > static_cast<int>(logger.level()))
        return;
    std::lock_guard<std::mutex> lock(logger.ioMutex());
    std::FILE *out = logger.stream();
    std::fputs(prefix, out);
    std::vfprintf(out, fmt, args);
    std::fputc('\n', out);
    std::fflush(out);
}

} // namespace detail

void
inform(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    detail::logLine(LogLevel::Inform, "info: ", fmt, args);
    va_end(args);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    detail::logLine(LogLevel::Warn, "warn: ", fmt, args);
    va_end(args);
}

void
debugLog(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    detail::logLine(LogLevel::Debug, "debug: ", fmt, args);
    va_end(args);
}

void
fatal(const char *fmt, ...)
{
    {
        std::lock_guard<std::mutex> lock(
            Logger::instance().ioMutex());
        std::FILE *out = Logger::instance().stream();
        std::fputs("fatal: ", out);
        va_list args;
        va_start(args, fmt);
        std::vfprintf(out, fmt, args);
        va_end(args);
        std::fputc('\n', out);
        std::fflush(out);
    }
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    {
        std::lock_guard<std::mutex> lock(
            Logger::instance().ioMutex());
        std::FILE *out = Logger::instance().stream();
        const std::string &context = PanicContext::get();
        if (!context.empty()) {
            std::fputs(context.c_str(), out);
            std::fputc('\n', out);
        }
        std::fputs("panic: ", out);
        va_list args;
        va_start(args, fmt);
        std::vfprintf(out, fmt, args);
        va_end(args);
        std::fputc('\n', out);
        std::fflush(out);
    }
    std::abort();
}

} // namespace hypersio
