/**
 * @file
 * Generic slab pool: fixed records addressed by index, chunk-stable
 * storage, free-list recycling.
 *
 * Components on the simulation hot path keep their in-flight state
 * in pooled records and pass 32-bit slot indices through event
 * closures instead of heap-allocating per-operation state (see the
 * translation round trip in core::XlatePort). Records are
 * default-constructed once per chunk and reused as-is — the caller
 * resets whatever fields matter on alloc() and should move out or
 * clear owning members (e.g. std::function) on release().
 */

#ifndef HYPERSIO_UTIL_POOL_HH
#define HYPERSIO_UTIL_POOL_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/logging.hh"

namespace hypersio::util
{

/**
 * Index-addressed pool of reusable T records. Addresses are stable
 * for the pool's lifetime (storage grows in chunks, never moves), so
 * references obtained from at() survive later alloc() calls.
 */
template <typename T>
class SlabPool
{
  public:
    /** Allocates a slot (recycled when possible) and returns it. */
    uint32_t
    alloc()
    {
        ++_live;
        if (!_free.empty()) {
            const uint32_t idx = _free.back();
            _free.pop_back();
            return idx;
        }
        if ((_size & ChunkMask) == 0)
            _chunks.push_back(std::make_unique<T[]>(ChunkSize));
        return static_cast<uint32_t>(_size++);
    }

    /** The record at `idx` (must be a live slot). */
    T &
    at(uint32_t idx)
    {
        HYPERSIO_ASSERT(idx < _size, "bad pool index %u", idx);
        return _chunks[idx >> ChunkShift][idx & ChunkMask];
    }

    /** Returns `idx` to the free list. */
    void
    release(uint32_t idx)
    {
        HYPERSIO_ASSERT(idx < _size && _live > 0,
                        "bad pool release %u", idx);
        --_live;
        _free.push_back(idx);
    }

    /** Records ever allocated (high-water mark). */
    size_t capacity() const { return _size; }
    /** Currently allocated records. */
    size_t inUse() const { return _live; }

  private:
    static constexpr size_t ChunkShift = 6; ///< 64 records/chunk
    static constexpr size_t ChunkSize = size_t(1) << ChunkShift;
    static constexpr size_t ChunkMask = ChunkSize - 1;

    std::vector<std::unique_ptr<T[]>> _chunks;
    std::vector<uint32_t> _free;
    size_t _size = 0;
    size_t _live = 0;
};

} // namespace hypersio::util

#endif // HYPERSIO_UTIL_POOL_HH
