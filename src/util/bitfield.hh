/**
 * @file
 * Bit-manipulation helpers used throughout the address-translation code.
 */

#ifndef HYPERSIO_UTIL_BITFIELD_HH
#define HYPERSIO_UTIL_BITFIELD_HH

#include <bit>
#include <cstdint>

namespace hypersio
{

/** Extracts bits [first, last] (inclusive, last >= first) of `value`. */
constexpr uint64_t
bits(uint64_t value, unsigned last, unsigned first)
{
    const unsigned nbits = last - first + 1;
    const uint64_t mask =
        nbits >= 64 ? ~uint64_t(0) : ((uint64_t(1) << nbits) - 1);
    return (value >> first) & mask;
}

/** Returns a mask with bits [first, last] set. */
constexpr uint64_t
mask(unsigned last, unsigned first)
{
    const unsigned nbits = last - first + 1;
    const uint64_t low =
        nbits >= 64 ? ~uint64_t(0) : ((uint64_t(1) << nbits) - 1);
    return low << first;
}

/** True iff `value` is a power of two (0 is not). */
constexpr bool
isPowerOf2(uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** floor(log2(value)); value must be nonzero. */
constexpr unsigned
floorLog2(uint64_t value)
{
    return 63 - std::countl_zero(value);
}

/** ceil(log2(value)); value must be nonzero. */
constexpr unsigned
ceilLog2(uint64_t value)
{
    return value <= 1 ? 0 : floorLog2(value - 1) + 1;
}

/** Rounds `value` up to the next multiple of `align` (a power of two). */
constexpr uint64_t
roundUp(uint64_t value, uint64_t align)
{
    return (value + align - 1) & ~(align - 1);
}

/** Rounds `value` down to a multiple of `align` (a power of two). */
constexpr uint64_t
roundDown(uint64_t value, uint64_t align)
{
    return value & ~(align - 1);
}

} // namespace hypersio

#endif // HYPERSIO_UTIL_BITFIELD_HH
