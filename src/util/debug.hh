/**
 * @file
 * Per-component debug tracing, in the spirit of gem5's debug flags.
 *
 * Components declare a Flag object and emit tick-stamped trace lines
 * through dprintf(); nothing is printed (and the cost is one branch)
 * unless the flag was enabled by name, e.g. from the CLI:
 *
 *   hypersio_sim --debug DevTLB,IOMMU ...
 *
 * The special name "All" enables every registered flag.
 */

#ifndef HYPERSIO_UTIL_DEBUG_HH
#define HYPERSIO_UTIL_DEBUG_HH

#include <atomic>
#include <cstdarg>
#include <string>
#include <vector>

#include "util/units.hh"

namespace hypersio::debug
{

/** A named, registrable debug flag. Declare as a static object. */
class Flag
{
  public:
    Flag(const char *name, const char *desc);
    ~Flag();

    Flag(const Flag &) = delete;
    Flag &operator=(const Flag &) = delete;

    const char *name() const { return _name; }
    const char *desc() const { return _desc; }

    bool
    enabled() const
    {
        return _enabled.load(std::memory_order_relaxed);
    }

    void
    setEnabled(bool on)
    {
        _enabled.store(on, std::memory_order_relaxed);
    }

  private:
    const char *_name;
    const char *_desc;
    std::atomic<bool> _enabled{false};
};

/**
 * Enables flags by name; comma-separated lists and "All" accepted.
 * Unknown names are user errors (fatal()).
 */
void enable(const std::string &names);

/** Disables every flag (used by tests). */
void disableAll();

/** Lists all registered flags as (name, description) pairs. */
std::vector<std::pair<std::string, std::string>> listFlags();

/** True when any flag is enabled (fast global gate). */
bool anyEnabled();

/**
 * Emits one tick-stamped trace line if `flag` is enabled:
 *   "  12345: DevTLB: miss sid=3 iova=0xbbe00000"
 */
void dprintf(const Flag &flag, Tick when, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

} // namespace hypersio::debug

/** Convenience macro: evaluates arguments only when enabled. */
#define HYPERSIO_DPRINTF(flag, when, ...)                           \
    do {                                                             \
        if ((flag).enabled())                                        \
            ::hypersio::debug::dprintf((flag), (when),               \
                                       __VA_ARGS__);                 \
    } while (0)

#endif // HYPERSIO_UTIL_DEBUG_HH
