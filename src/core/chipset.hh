/**
 * @file
 * Chipset model: the IOMMU plus the IOVA History Reader of the
 * translation-prefetching scheme (Fig. 6, right side).
 *
 * The History Reader keeps, per Device ID, the most recently used
 * distinct gIOVA pages in main memory (an ample resource, as the
 * paper notes), appending on every demand request the chipset
 * receives. When the device's Prefetch Unit sends a predicted SID,
 * the reader fetches that tenant's history from memory (a short
 * dependent read chain) and issues IOMMU translation requests for
 * the most recent pages. Completions flow back to the device's
 * Prefetch Buffer and, as a side effect of walking, warm the IOTLB
 * and paging-structure caches.
 */

#ifndef HYPERSIO_CORE_CHIPSET_HH
#define HYPERSIO_CORE_CHIPSET_HH

#include <functional>
#include <vector>

#include "core/config.hh"
#include "iommu/iommu.hh"
#include "sim/sim_object.hh"
#include "util/flat_map.hh"

namespace hypersio::core
{

/** One page in a tenant's gIOVA history. */
struct HistoryPage
{
    mem::Iova pageBase = 0;
    mem::PageSize size = mem::PageSize::Size4K;
};

/**
 * The per-DID gIOVA history and the prefetch state machine. The
 * hardware cost is independent of the tenant count: only the state
 * machine lives in the chipset; histories live in main memory.
 */
class HistoryReader : public sim::SimObject
{
  public:
    using FillFn = std::function<void(mem::DomainId, mem::Iova,
                                      mem::PageSize, mem::Addr)>;

    HistoryReader(const PrefetchConfig &config,
                  sim::EventQueue &queue, stats::StatGroup &parent,
                  iommu::Iommu &iommu, mem::MemoryModel &memory,
                  FillFn fill);

    /** Notes a demand access (updates the in-memory history). */
    void observe(mem::DomainId did, mem::Iova iova,
                 mem::PageSize size);

    /** Starts a prefetch for `did` (deduplicated per tenant). */
    void prefetch(mem::DomainId did);

    /**
     * Drops `did`'s history (tenant detach). The caller must first
     * wait out any in-flight prefetch burst (prefetchInFlight).
     */
    void retire(mem::DomainId did);

    /** True while a prefetch burst for `did` is outstanding. */
    bool prefetchInFlight(mem::DomainId did) const;

    /** Tenants with history state (O(active), eviction tests). */
    size_t historySize() const { return _history.size(); }

    uint64_t prefetchesStarted() const { return _started.count(); }
    uint64_t prefetchesDeduped() const { return _deduped.count(); }

  private:
    struct TenantHistory
    {
        std::vector<HistoryPage> recent; ///< front = most recent
        bool inFlight = false;
    };

    void issueTranslations(mem::DomainId did);

    PrefetchConfig _config;
    iommu::Iommu &_iommu;
    mem::MemoryModel &_memory;
    FillFn _fill;
    util::FlatMap<mem::DomainId, TenantHistory> _history;

    stats::Counter &_started;
    stats::Counter &_deduped;
    stats::Counter &_issued;
};

} // namespace hypersio::core

#endif // HYPERSIO_CORE_CHIPSET_HH
