/**
 * @file
 * The assembled device–chipset–memory system and the trace runner
 * (HyperSIO's Performance Model, Section IV-C).
 *
 * The link model computes packet arrival times from the nominal
 * bandwidth and packet size; a packet that finds the PTB full is
 * dropped and retried at the next arrival slot. When the trace is
 * exhausted and all in-flight work drains, the achieved bandwidth is
 * total processed bytes divided by elapsed simulated time.
 */

#ifndef HYPERSIO_CORE_SYSTEM_HH
#define HYPERSIO_CORE_SYSTEM_HH

#include <memory>
#include <optional>
#include <string>

#include <vector>

#include "cache/oracle_feed.hh"
#include "core/chipset.hh"
#include "core/config.hh"
#include "core/device.hh"
#include "core/run_results.hh"
#include "core/xlate_port.hh"
#include "iommu/iommu.hh"
#include "mem/memory_model.hh"
#include "trace/record.hh"
#include "trace/stream.hh"
#include "util/arena.hh"
#include "util/flat_map.hh"
#include "util/json.hh"

namespace hypersio::core
{

class System;

/** Options of a streaming run (System::runStream). */
struct StreamRunOptions
{
    /**
     * Retire detached tenants: erase their page tables, history,
     * and predictor state once every in-flight access drains, then
     * confirm sidRetired() to the stream. Off, a run behaves exactly
     * like run() over the equivalent materialized trace (state grows
     * with every tenant ever seen) — the golden equivalence mode.
     */
    bool evictDetached = true;

    /**
     * Interval-telemetry hook: onSnapshot(system, processed) fires
     * from the completion path each time another
     * `snapshotEveryPackets` packets have finished. The trigger is
     * simulated progress — never wall time — so capture points are
     * identical across runs, machines, and jobs counts. The callback
     * must treat the system as read-only (it runs between events of
     * the simulation it is observing); the snapshotting-vs-off
     * byte-identity test in tests/test_soak.cc holds runStream to
     * producing bit-identical results either way. 0 disables.
     */
    uint64_t snapshotEveryPackets = 0;
    std::function<void(const System &, uint64_t)> onSnapshot;

    /**
     * Invoked once at runStream() entry, on the thread that will run
     * the simulation — the hook for per-shard thread-local setup
     * (PanicContext repro lines, wall timers) when shards run on a
     * worker pool.
     */
    std::function<void(const System &)> onRunStart;
};

/**
 * One tenant retirement, stamped with the kernel's (tick, seq) key
 * at retirement time. Per-shard retirement logs are merged into a
 * deterministic global timeline by ShardedMultiSystem using
 * (tick, shard, seq, index) — the slab kernel's ordering rule.
 */
struct StreamRetirement
{
    Tick tick = 0;
    uint64_t seq = 0; ///< EventQueue::scheduledSeq() at retirement
    trace::SourceId sid = 0;

    bool operator==(const StreamRetirement &) const = default;
};

/**
 * One simulated system instance. Construct, then run() a trace.
 * run() may be called once per System (state is not reset between
 * traces; build a fresh System per experiment point).
 */
class System : private Device::CompletionSink
{
  public:
    explicit System(const SystemConfig &config);
    ~System();

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /**
     * Simulates the full trace and returns the results.
     * @param bypass_translation "native" mode: packets complete at
     *        link rate without any address translation (used by the
     *        Fig. 5 motivation experiment)
     */
    RunResults run(const trace::HyperTrace &trace,
                   bool bypass_translation = false);

    /**
     * Simulates a lazily produced packet stream. With eviction off
     * and a stream mirroring a materialized trace, the run is
     * event-for-event identical to run() on that trace (same
     * RunResults, same stats tree). With eviction on, tenants the
     * stream detaches are fully retired — page tables erased,
     * cached translations invalidated, history and predictor state
     * dropped — keeping total state O(active tenants) regardless of
     * the tenant population.
     *
     * Not supported with Oracle DevTLB replacement (the Belady feed
     * needs the full trace up front).
     */
    RunResults runStream(trace::PacketStream &stream,
                         const StreamRunOptions &opts = {});

    /** Retirement log of the last runStream (merge rule input). */
    const std::vector<StreamRetirement> &streamRetirements() const
    {
        return _streamRetirements;
    }

    const SystemConfig &config() const { return _config; }

    /** Dumps the full statistics tree of the last run. */
    void dumpStats(std::ostream &os) const;

    /** Same tree as JSON; indent 0 writes one compact line. */
    void dumpStatsJson(std::ostream &os, unsigned indent = 2) const;

    /** The statistics tree (JSON capture, tests). */
    const stats::StatGroup &statsRoot() const { return _stats; }

    /** Direct access for tests. */
    Device &device() { return *_device; }
    iommu::Iommu &iommuUnit() { return *_iommu; }
    sim::EventQueue &eventQueue() { return _queue; }
    /** Read-only queue access (snapshot callbacks read now()). */
    const sim::EventQueue &eventQueue() const { return _queue; }
    /** The run's functional page tables (shadow checking, tests). */
    const iommu::PageTableDirectory &tables() const { return _tables; }
    /** The chipset history reader, if prefetching is on (tests). */
    const HistoryReader *historyReader() const
    {
        return _historyReader.get();
    }

  private:
    /**
     * Device completion (one sink for both run loops): bytes and SID
     * come from the completed packet itself, so accept() needs no
     * per-packet closure.
     */
    void packetDone(const trace::PacketRecord &pkt) override;

    void applyOps(const trace::PacketRecord &pkt,
                  const trace::PageOp *ops);
    void buildOracleFeed(const trace::HyperTrace &trace);
    /** Wires the device-to-chipset ports through _xlatePort. */
    DevicePorts makeDevicePorts();
    /**
     * Sends a completed prefetch translation back to the device over
     * PCIe, with the per-DID wire counter and the device's squash
     * record maintained — shared by the History-Reader fill path and
     * the MMU-prefetch completion path.
     */
    void dispatchPrefetchFill(mem::DomainId did, mem::Iova iova,
                              mem::PageSize size,
                              mem::Addr host_addr);
    uint64_t wireBytesOf(const trace::PacketRecord &pkt) const;
    /** Results from the run counters (shared by run/runStream). */
    RunResults collectResults(uint64_t first_wire_bytes);

    // ---- Streaming-run eviction machinery ----------------------------
    /** Drains detach notices and retires every SID that can go. */
    void serviceRetirements();
    /**
     * Retires `sid` unless packets, prefetch bursts, or prefetch
     * fills are still in flight for it. @return true when retired
     */
    bool tryRetireSid(trace::SourceId sid);
    /** Tears down one domain through the regular unmap path. */
    void retireDomain(mem::DomainId did);
    /** Completion bookkeeping of a streaming-run packet. */
    void onStreamPacketDrained(trace::SourceId sid);
    /** Re-arms the arrival process after a stall, if unparked. */
    void maybeRestartStreamArrival();

    SystemConfig _config;
    sim::EventQueue _queue;
    stats::StatGroup _stats;
    std::unique_ptr<mem::MemoryModel> _memory;
    iommu::PageTableDirectory _tables;
    std::unique_ptr<iommu::Iommu> _iommu;
    std::unique_ptr<HistoryReader> _historyReader;
    std::unique_ptr<XlatePort> _xlatePort;
    std::unique_ptr<cache::OracleFeed> _oracleFeed;
    std::unique_ptr<Device> _device;

    // Link/run state.
    uint64_t _cursor = 0;
    uint64_t _processed = 0;
    uint64_t _dropped = 0;
    uint64_t _bytesProcessed = 0;
    Tick _lastCompletion = 0;

    // Streaming-run state (runStream only; inert during run()).
    trace::PacketStream *_stream = nullptr;
    bool _evictStream = false;
    bool _streamStalled = false;
    bool _streamRan = false;
    Tick _streamInterval = 0;
    /** Snapshot cadence/hook of the active streaming run. */
    uint64_t _snapshotEvery = 0;
    std::function<void(const System &, uint64_t)> _onSnapshot;
    std::function<void()> *_streamArrival = nullptr;
    /** In-flight (accepted, not completed) packets per SID. */
    util::FlatMap<trace::SourceId, uint32_t> _outstanding;
    /** Detached SIDs awaiting retirement, in detach order. */
    std::vector<trace::SourceId> _pendingRetire;
    /** Prefetch fills on the PCIe wire per DID (retirement gate). */
    util::FlatMap<mem::DomainId, uint32_t> _fillsInFlight;
    /**
     * MMU prefetches between issue and IOMMU completion per DID
     * (retirement gate; entries erase at zero). The fill's return
     * hop is then covered by _fillsInFlight.
     */
    util::FlatMap<mem::DomainId, uint32_t> _mmuPrefetchesInFlight;
    std::vector<StreamRetirement> _streamRetirements;
    /**
     * Scratch for retirement transients (a retiring SID's sorted
     * domain list, a dying table's sorted page list). Retirement
     * retries on every completion while a tenant drains, so these
     * would otherwise be a heap round trip each attempt; the arena
     * reuses the same chunk run after run.
     */
    util::Arena _retireArena;
};

} // namespace hypersio::core

#endif // HYPERSIO_CORE_SYSTEM_HH
