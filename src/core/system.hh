/**
 * @file
 * The assembled device–chipset–memory system and the trace runner
 * (HyperSIO's Performance Model, Section IV-C).
 *
 * The link model computes packet arrival times from the nominal
 * bandwidth and packet size; a packet that finds the PTB full is
 * dropped and retried at the next arrival slot. When the trace is
 * exhausted and all in-flight work drains, the achieved bandwidth is
 * total processed bytes divided by elapsed simulated time.
 */

#ifndef HYPERSIO_CORE_SYSTEM_HH
#define HYPERSIO_CORE_SYSTEM_HH

#include <memory>
#include <optional>
#include <string>

#include "cache/oracle_feed.hh"
#include "core/chipset.hh"
#include "core/config.hh"
#include "core/device.hh"
#include "core/xlate_port.hh"
#include "iommu/iommu.hh"
#include "mem/memory_model.hh"
#include "trace/record.hh"
#include "util/json.hh"

namespace hypersio::core
{

/** Summary of one simulation run. */
struct RunResults
{
    std::string configName;
    uint64_t packetsProcessed = 0;
    uint64_t packetsDropped = 0;
    uint64_t translations = 0;
    Tick elapsed = 0;
    double achievedGbps = 0.0;
    double utilization = 0.0; ///< achievedGbps / nominal link rate

    double devtlbHitRate = 0.0;
    double pbHitRate = 0.0;    ///< PB hits / translation requests
    double iotlbHitRate = 0.0; ///< chipset IOTLB
    uint64_t walks = 0;
    uint64_t iommuRequests = 0;
    double avgPacketLatencyNs = 0.0;

    /** Exact (bit-identical doubles included) equality. */
    bool operator==(const RunResults &) const = default;
};

/**
 * Writes the results as one JSON object (snake_case keys, full
 * double precision) — the "results" block of the `--json` reports.
 */
void writeRunResultsJson(json::Writer &w, const RunResults &r);

/**
 * One simulated system instance. Construct, then run() a trace.
 * run() may be called once per System (state is not reset between
 * traces; build a fresh System per experiment point).
 */
class System
{
  public:
    explicit System(const SystemConfig &config);
    ~System();

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /**
     * Simulates the full trace and returns the results.
     * @param bypass_translation "native" mode: packets complete at
     *        link rate without any address translation (used by the
     *        Fig. 5 motivation experiment)
     */
    RunResults run(const trace::HyperTrace &trace,
                   bool bypass_translation = false);

    const SystemConfig &config() const { return _config; }

    /** Dumps the full statistics tree of the last run. */
    void dumpStats(std::ostream &os) const;

    /** Same tree as JSON; indent 0 writes one compact line. */
    void dumpStatsJson(std::ostream &os, unsigned indent = 2) const;

    /** The statistics tree (JSON capture, tests). */
    const stats::StatGroup &statsRoot() const { return _stats; }

    /** Direct access for tests. */
    Device &device() { return *_device; }
    iommu::Iommu &iommuUnit() { return *_iommu; }
    sim::EventQueue &eventQueue() { return _queue; }
    /** The run's functional page tables (shadow checking, tests). */
    const iommu::PageTableDirectory &tables() const { return _tables; }

  private:
    void applyOps(const trace::HyperTrace &trace,
                  const trace::PacketRecord &pkt);
    void buildOracleFeed(const trace::HyperTrace &trace);
    /** Wires the device-to-chipset ports through _xlatePort. */
    DevicePorts makeDevicePorts();

    SystemConfig _config;
    sim::EventQueue _queue;
    stats::StatGroup _stats;
    std::unique_ptr<mem::MemoryModel> _memory;
    iommu::PageTableDirectory _tables;
    std::unique_ptr<iommu::Iommu> _iommu;
    std::unique_ptr<HistoryReader> _historyReader;
    std::unique_ptr<XlatePort> _xlatePort;
    std::unique_ptr<cache::OracleFeed> _oracleFeed;
    std::unique_ptr<Device> _device;

    // Link/run state.
    uint64_t _cursor = 0;
    uint64_t _processed = 0;
    uint64_t _dropped = 0;
    uint64_t _bytesProcessed = 0;
    Tick _lastCompletion = 0;
};

} // namespace hypersio::core

#endif // HYPERSIO_CORE_SYSTEM_HH
