#include "core/multi_system.hh"

#include <algorithm>
#include <atomic>
#include <ostream>
#include <thread>

#include "util/logging.hh"
#include "util/rng.hh"

namespace hypersio::core
{

MultiSystem::MultiSystem(const SystemConfig &config,
                         unsigned num_devices)
    : _config(config), _stats("system"), _tables(config.seed)
{
    if (num_devices == 0)
        fatal("multi-device system needs at least one device");
    if (config.device.devtlb.policy == cache::ReplPolicyKind::Oracle)
        fatal("oracle DevTLB replacement is not supported in "
              "multi-device mode");

    // Runtime leg of the event-fusion knob (see System's ctor).
    _queue.setFusionEnabled(_config.eventFusion);
    _memory = std::make_unique<mem::MemoryModel>(_config.memory,
                                                 _queue, _stats);
    _iommu = std::make_unique<iommu::Iommu>(
        _config.iommu, _queue, _stats, *_memory, _tables);

    const Tick pcie = _config.pcieOneWay;
    _devices.reserve(num_devices);
    _historyReaders.reserve(num_devices);
    _links.resize(num_devices);
    for (LinkState &link : _links)
        link.owner = this;

    for (unsigned d = 0; d < num_devices; ++d) {
        stats::StatGroup &dev_stats =
            _stats.child("dev" + std::to_string(d));

        HistoryReader *reader = nullptr;
        if (_config.device.prefetch.enabled &&
            _config.device.prefetch.kind ==
                PrefetchKind::SidPredictor) {
            // Fills route back to this device (set post-construction
            // via the captured index into _devices).
            auto fill = [this, d](mem::DomainId did, mem::Iova iova,
                                  mem::PageSize size,
                                  mem::Addr host) {
                _devices[d]->prefetchFillDispatched(did, iova, size);
                _queue.scheduleAfter(
                    _config.pcieOneWay,
                    [this, d, did, iova, size, host]() {
                        _devices[d]->prefetchFill(did, iova, size,
                                                  host);
                    });
            };
            _historyReaders.push_back(
                std::make_unique<HistoryReader>(
                    _config.device.prefetch, _queue, dev_stats,
                    *_iommu, *_memory, std::move(fill)));
            reader = _historyReaders.back().get();
        }

        // Each device routes its demand path through its own pooled
        // round-trip records (one XlatePort per device).
        _xlatePorts.push_back(std::make_unique<XlatePort>(
            _queue, *_iommu, reader, pcie));
        DevicePorts ports;
        ports.translate = [port = _xlatePorts.back().get()](
                              mem::DomainId did, mem::Iova iova,
                              mem::PageSize size, bool may_fuse,
                              DevicePorts::ResponseFn done) {
            port->translate(did, iova, size, may_fuse,
                            std::move(done));
        };
        if (reader) {
            ports.prefetch = [this, reader,
                              pcie](mem::DomainId did) {
                _queue.scheduleAfter(
                    pcie, [reader, did]() { reader->prefetch(did); });
            };
        }
        if (_config.device.prefetch.enabled &&
            _config.device.prefetch.kind == PrefetchKind::MmuDma) {
            // A predicted page crosses PCIe, translates through the
            // prefetch-tagged IOMMU path, and a valid result returns
            // to the issuing device as a prefetch fill (MultiSystem
            // has no tenant retirement, so no pending counter).
            ports.prefetchPage = [this, d, pcie](mem::DomainId did,
                                                 mem::Iova iova,
                                                 mem::PageSize size) {
                _queue.scheduleAfter(pcie, [this, d, did, iova,
                                            size]() {
                    iommu::IommuRequest req;
                    req.domain = did;
                    req.iova = iova;
                    req.size = size;
                    req.prefetch = true;
                    _iommu->translate(
                        req,
                        [this, d, did, iova,
                         size](const iommu::IommuResponse &resp) {
                            if (!resp.valid)
                                return;
                            _devices[d]->prefetchFillDispatched(
                                did, iova, size);
                            _queue.scheduleAfter(
                                _config.pcieOneWay,
                                [this, d, did, iova, size,
                                 host = resp.hostAddr]() {
                                    _devices[d]->prefetchFill(
                                        did, iova, size, host);
                                });
                        });
                });
            };
        }

        _devices.push_back(std::make_unique<Device>(
            _config.device, _queue, dev_stats, std::move(ports)));
    }
}

MultiSystem::~MultiSystem() = default;

void
MultiSystem::applyOps(const trace::HyperTrace &trace,
                      const trace::PacketRecord &pkt, unsigned dev)
{
    const mem::DomainId did =
        iommu::ContextCache::resolve(pkt.sid, pkt.pasid)
            .domain;
    for (uint16_t i = 0; i < pkt.opCount; ++i) {
        const trace::PageOp &op = trace.ops[pkt.opBegin + i];
        mem::PageTable &table = _tables.get(did);
        if (op.isMap) {
            table.map(op.pageBase, op.size);
        } else {
            table.unmap(op.pageBase);
            _devices[dev]->invalidatePage(did, op.pageBase,
                                          op.size);
            _iommu->invalidate(did, op.pageBase, op.size);
        }
    }
}

MultiRunResults
MultiSystem::run(const trace::HyperTrace &trace)
{
    HYPERSIO_ASSERT(!_ran, "MultiSystem::run() may only run once");
    _ran = true;

    const auto n = static_cast<unsigned>(_devices.size());
    MultiRunResults results;
    results.perDeviceGbps.assign(n, 0.0);
    if (trace.packets.empty())
        return results;

    // Pre-split the trace: tenant t's packets drive device t % N,
    // keeping each tenant's packet order intact.
    for (uint32_t i = 0; i < trace.packets.size(); ++i) {
        const unsigned dev = trace.packets[i].sid % n;
        _links[dev].packetIdx.push_back(i);
    }

    const Tick interval = _config.link.packetInterval();

    // One independent arrival process per device link.
    std::vector<std::function<void()>> arrivals(n);
    for (unsigned d = 0; d < n; ++d) {
        arrivals[d] = [this, d, n, interval, &trace, &arrivals]() {
            LinkState &link = _links[d];
            if (link.cursor >= link.packetIdx.size())
                return;
            const trace::PacketRecord &pkt =
                trace.packets[link.packetIdx[link.cursor]];

            if (_devices[d]->ptbFull()) {
                ++link.dropped;
            } else {
                applyOps(trace, pkt, d);
                ++link.cursor;
                _devices[d]->accept(pkt, link);
            }
            if (link.cursor < link.packetIdx.size()) {
                // Re-arm by reference: the closure itself is never
                // copied per arrival slot.
                _queue.scheduleAfter(
                    interval, [fn = &arrivals[d]] { (*fn)(); });
            }
        };
        if (!_links[d].packetIdx.empty())
            _queue.schedule(0, [fn = &arrivals[d]] { (*fn)(); });
    }

    _queue.run();

    results.elapsed = _lastCompletion + interval;
    for (unsigned d = 0; d < n; ++d) {
        results.packetsProcessed += _links[d].processed;
        results.packetsDropped += _links[d].dropped;
        results.perDeviceGbps[d] =
            achievedGbps(_links[d].bytes, results.elapsed);
        results.totalGbps += results.perDeviceGbps[d];
    }
    results.utilization =
        results.totalGbps / (_config.link.gbps * n);

    const auto &iotlb = _iommu->iotlbStats();
    results.iotlbHitRate =
        iotlb.lookups == 0
            ? 0.0
            : static_cast<double>(iotlb.hits) /
                  static_cast<double>(iotlb.lookups);
    const auto *walks = _stats.child("iommu").find("walks");
    results.walks =
        walks ? static_cast<uint64_t>(walks->value()) : 0;
    return results;
}

void
MultiSystem::dumpStats(std::ostream &os) const
{
    _stats.dump(os);
}

void
MultiSystem::dumpStatsJson(std::ostream &os, unsigned indent) const
{
    stats::writeJson(_stats, os, indent);
}

ShardedMultiSystem::ShardedMultiSystem(const SystemConfig &config,
                                       unsigned shards,
                                       unsigned jobs)
    : _jobs(jobs ? jobs : 1)
{
    if (shards == 0)
        fatal("sharded system needs at least one shard");
    if (config.device.devtlb.policy == cache::ReplPolicyKind::Oracle)
        fatal("oracle DevTLB replacement is not supported in "
              "sharded streaming mode");
    _systems.reserve(shards);
    for (unsigned s = 0; s < shards; ++s)
        _systems.push_back(std::make_unique<System>(config));
}

ShardedMultiSystem::~ShardedMultiSystem() = default;

ShardedRunResults
ShardedMultiSystem::run(const StreamFactory &make_stream,
                        const StreamRunOptions &opts)
{
    return run(make_stream,
               [&opts](unsigned) { return opts; });
}

ShardedRunResults
ShardedMultiSystem::run(const StreamFactory &make_stream,
                        const OptionsFactory &make_options)
{
    HYPERSIO_ASSERT(!_ran,
                    "ShardedMultiSystem::run() may only run once");
    _ran = true;

    const auto n = static_cast<unsigned>(_systems.size());

    // Streams and per-shard options are built on the calling thread
    // in shard order, so factories drawing from shared (seeded)
    // state stay deterministic no matter the jobs count.
    _streams.reserve(n);
    std::vector<StreamRunOptions> options;
    options.reserve(n);
    for (unsigned s = 0; s < n; ++s) {
        _streams.push_back(make_stream(s));
        HYPERSIO_ASSERT(_streams.back() != nullptr,
                        "stream factory returned null for shard %u",
                        s);
        options.push_back(make_options(s));
    }

    // Shards share nothing at run time (each System owns its event
    // queue, memory, chipset, and — in checked builds — its own
    // thread-local shadow checker), so each worker simulates whole
    // shards independently and results are a pure function of the
    // per-shard streams.
    ShardedRunResults results;
    results.perShard.resize(n);
    const unsigned workers = std::min(_jobs, n);
    if (workers <= 1) {
        for (unsigned s = 0; s < n; ++s)
            results.perShard[s] =
                _systems[s]->runStream(*_streams[s], options[s]);
    } else {
        std::atomic<unsigned> next{0};
        auto work = [&]() {
            for (;;) {
                const unsigned s =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (s >= n)
                    return;
                results.perShard[s] =
                    _systems[s]->runStream(*_streams[s], options[s]);
            }
        };
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (unsigned t = 0; t < workers; ++t)
            pool.emplace_back(work);
        for (auto &thread : pool)
            thread.join();
    }

    for (unsigned s = 0; s < n; ++s) {
        const RunResults &r = results.perShard[s];
        results.packetsProcessed += r.packetsProcessed;
        results.packetsDropped += r.packetsDropped;
        results.translations += r.translations;
        results.maxElapsed = std::max(results.maxElapsed, r.elapsed);
        for (const StreamRetirement &ret :
             _systems[s]->streamRetirements()) {
            results.retirements.push_back(
                {ret.tick, s, ret.seq, ret.sid});
        }
    }
    results.tenantsRetired = results.retirements.size();

    // Merge rule: the slab kernel's (tick, priority, seq) ordering
    // with the shard id as the priority band. Per-shard logs are
    // already in (tick, seq) order, so a stable sort on
    // (tick, shard, seq) yields the unique global timeline with the
    // per-shard index as the final tie-breaker.
    std::stable_sort(results.retirements.begin(),
                     results.retirements.end(),
                     [](const GlobalRetirement &a,
                        const GlobalRetirement &b) {
                         if (a.tick != b.tick)
                             return a.tick < b.tick;
                         if (a.shard != b.shard)
                             return a.shard < b.shard;
                         return a.seq < b.seq;
                     });

    uint64_t digest = 0;
    for (const GlobalRetirement &ret : results.retirements) {
        digest = hashCombine(
            digest, hashCombine(ret.tick,
                                hashCombine(ret.shard, ret.sid)));
    }
    results.mergeChecksum = digest & ((uint64_t{1} << 48) - 1);
    return results;
}

void
ShardedMultiSystem::dumpStatsJson(std::ostream &os,
                                  unsigned indent) const
{
    os << '[';
    for (size_t s = 0; s < _systems.size(); ++s) {
        if (s != 0)
            os << (indent ? ",\n" : ",");
        _systems[s]->dumpStatsJson(os, indent);
    }
    os << ']';
}

} // namespace hypersio::core
