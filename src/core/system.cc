#include "core/system.hh"

#include <algorithm>
#include <ostream>

#include "iommu/keys.hh"
#include "oracle/hooks.hh"
#include "util/logging.hh"

namespace hypersio::core
{

/**
 * Wires the device-to-chipset ports with PCIe latency on each hop:
 * demand path device → IOMMU → device (state pooled in _xlatePort),
 * prefetch path device → history reader (which later fills back
 * through its own callback).
 */
DevicePorts
System::makeDevicePorts()
{
    if (!_xlatePort) {
        _xlatePort = std::make_unique<XlatePort>(
            _queue, *_iommu, _historyReader.get(),
            _config.pcieOneWay);
    }
    DevicePorts ports;
    ports.translate = [port = _xlatePort.get()](
                          mem::DomainId did, mem::Iova iova,
                          mem::PageSize size, bool may_fuse,
                          DevicePorts::ResponseFn done) {
        port->translate(did, iova, size, may_fuse, std::move(done));
    };
    if (_historyReader) {
        ports.prefetch = [this](mem::DomainId did) {
            _queue.scheduleAfter(
                _config.pcieOneWay,
                [reader = _historyReader.get(), did] {
                    reader->prefetch(did);
                });
        };
    }
    if (_config.device.prefetch.enabled &&
        _config.device.prefetch.kind == PrefetchKind::MmuDma) {
        // MMU-aware prefetch: one predicted page crosses PCIe to the
        // chipset, translates through the regular (prefetch-tagged)
        // IOMMU path, and a valid result is dispatched back as a
        // prefetch fill. The pending counter gates streaming-run
        // retirement for the issue-to-completion window; the return
        // hop is then covered by the fill wire counter.
        ports.prefetchPage = [this](mem::DomainId did,
                                    mem::Iova iova,
                                    mem::PageSize size) {
            ++_mmuPrefetchesInFlight[did];
            _queue.scheduleAfter(
                _config.pcieOneWay, [this, did, iova, size]() {
                    iommu::IommuRequest req;
                    req.domain = did;
                    req.iova = iova;
                    req.size = size;
                    req.prefetch = true;
                    _iommu->translate(
                        req,
                        [this, did, iova,
                         size](const iommu::IommuResponse &resp) {
                            uint32_t *pending =
                                _mmuPrefetchesInFlight.find(did);
                            HYPERSIO_ASSERT(
                                pending && *pending > 0,
                                "MMU prefetch completion without "
                                "a pending counter");
                            if (--*pending == 0)
                                _mmuPrefetchesInFlight.erase(did);
                            if (resp.valid) {
                                dispatchPrefetchFill(
                                    did, iova, size,
                                    resp.hostAddr);
                            }
                        });
                });
        };
    }
    return ports;
}

void
System::dispatchPrefetchFill(mem::DomainId did, mem::Iova iova,
                             mem::PageSize size, mem::Addr host_addr)
{
    ++_fillsInFlight[did];
    // The device records the fill as in flight now: an invalidate of
    // this page during the PCIe hop squashes the fill instead of
    // installing a stale translation.
    _device->prefetchFillDispatched(did, iova, size);
    _queue.scheduleAfter(
        _config.pcieOneWay, [this, did, iova, size, host_addr]() {
            uint32_t *wire = _fillsInFlight.find(did);
            HYPERSIO_ASSERT(wire && *wire > 0,
                            "prefetch fill without a wire counter");
            --*wire;
            _device->prefetchFill(did, iova, size, host_addr);
        });
}

System::System(const SystemConfig &config)
    : _config(config), _stats("system"), _tables(config.seed)
{
    // Runtime leg of the event-fusion knob (the compile-time leg is
    // -DHYPERSIO_EVENT_FUSION); results are bit-identical either
    // way, so this only selects the kernel being measured.
    _queue.setFusionEnabled(_config.eventFusion);
    _memory = std::make_unique<mem::MemoryModel>(_config.memory,
                                                 _queue, _stats);
    _iommu = std::make_unique<iommu::Iommu>(
        _config.iommu, _queue, _stats, *_memory, _tables);

    if (_config.device.prefetch.enabled &&
        _config.device.prefetch.kind == PrefetchKind::SidPredictor) {
        // The History Reader drives the paper's scheme; prefetch
        // completions return to the device via dispatchPrefetchFill
        // (the MmuDma mechanism has no reader — its completions come
        // straight from the IOMMU in makeDevicePorts()).
        auto fill = [this](mem::DomainId did, mem::Iova iova,
                           mem::PageSize size, mem::Addr host_addr) {
            dispatchPrefetchFill(did, iova, size, host_addr);
        };
        _historyReader = std::make_unique<HistoryReader>(
            _config.device.prefetch, _queue, _stats, *_iommu,
            *_memory, std::move(fill));
    }

    // With Belady replacement the device needs the future-knowledge
    // feed, which is only available once run() sees the trace; the
    // device is then built lazily there.
    if (_config.device.devtlb.policy !=
        cache::ReplPolicyKind::Oracle) {
        _device = std::make_unique<Device>(_config.device, _queue,
                                           _stats,
                                           makeDevicePorts());
    }
}

System::~System() = default;

void
System::buildOracleFeed(const trace::HyperTrace &trace)
{
    // Pre-pass: the DevTLB key sequence in lookup order (three
    // requests per packet, in Ring/Data/Notify order). Dropped
    // packets never reach the DevTLB, so the feed — advanced once
    // per performed lookup — stays aligned with the simulation.
    std::vector<uint64_t> keys;
    keys.reserve(trace.packets.size() * 3);
    for (const auto &pkt : trace.packets) {
        const mem::DomainId did =
        iommu::ContextCache::resolve(pkt.sid, pkt.pasid)
            .domain;
        for (unsigned c = 0; c < trace::NumReqClasses; ++c) {
            const auto cls = static_cast<trace::ReqClass>(c);
            keys.push_back(iommu::translationKey(
                did, pkt.iova(cls), pkt.pageSize(cls)));
        }
    }
    _oracleFeed = std::make_unique<cache::OracleFeed>(keys);
}

RunResults
System::run(const trace::HyperTrace &trace, bool bypass_translation)
{
    HYPERSIO_ASSERT(_cursor == 0 && _processed == 0,
                    "System::run() may only be called once");

    if (!_device) {
        // Oracle-replacement run: build the feed, then the device.
        buildOracleFeed(trace);
        _device = std::make_unique<Device>(
            _config.device, _queue, _stats, makeDevicePorts(),
            _oracleFeed.get());
    }

    if (trace.packets.empty()) {
        RunResults empty;
        empty.configName = _config.name;
        return empty;
    }

#ifdef HYPERSIO_CHECKED
    // Auto-install a fail-fast differential oracle for this run
    // unless one is already active on this thread (tests/fuzzing
    // install their own collecting checker) or auto-checking is
    // disabled (HYPERSIO_SHADOW=off).
    std::unique_ptr<oracle::ShadowChecker> auto_checker;
    std::optional<oracle::ShadowScope> shadow_scope;
    if (!oracle::shadowChecker() &&
        oracle::shadowAutoCheckEnabled() && !bypass_translation) {
        auto_checker = std::make_unique<oracle::ShadowChecker>(
            toShadowConfig(_config), &_tables, /*fail_fast=*/true);
        shadow_scope.emplace(*auto_checker);
    }
#endif

    const Tick interval = _config.link.packetInterval();
    const uint64_t total = trace.packets.size();
    const unsigned batch = _config.admitBatch ? _config.admitBatch : 1;

    // The link arrival process. At admitBatch == 1 (the default),
    // one event per arrival slot — the classic process, event for
    // event. Larger batches drain up to `batch` pending arrivals per
    // dispatch and space events by the batch's summed serialization
    // time; a PTB drop ends the batch (the dropped packet retries at
    // the next arrival event). Packets with an explicit wire size
    // occupy the link for their own serialization time (small
    // packets arrive faster, leaving less time per translation).
    std::function<void()> arrival = [&]() {
        for (unsigned b = 0; b < batch && _cursor < total; ++b) {
            const trace::PacketRecord &pkt = trace.packets[_cursor];

            if (bypass_translation) {
                // Native mode: no address translation at all.
                ++_cursor;
                ++_processed;
                _bytesProcessed += wireBytesOf(pkt);
                _lastCompletion = _queue.now();
                continue;
            }
            if (_device->ptbFull()) {
                // Dropped; the same packet retries next slot.
                ++_dropped;
                HYPERSIO_SHADOW(devicePacketDropped());
                break;
            }
            applyOps(pkt, trace.ops.data() + pkt.opBegin);
            ++_cursor;
            _device->accept(pkt, *this);
        }

        if (_cursor < total) {
            // The next arrival follows the serialization time of
            // the packets now occupying the wire (the retried packet
            // first on a drop, the next ones otherwise). Re-arm
            // through a one-word reference so the arrival closure
            // itself is never copied per slot.
            Tick gap = 0;
            const uint64_t ahead =
                std::min<uint64_t>(batch, total - _cursor);
            for (uint64_t i = 0; i < ahead; ++i) {
                const Tick ser = serializationTicks(
                    wireBytesOf(trace.packets[_cursor + i]),
                    _config.link.gbps);
                gap += ser == 0 ? interval : ser;
            }
            _queue.scheduleAfter(gap, [&arrival] { arrival(); });
        }
    };

    _queue.schedule(0, [&arrival] { arrival(); });
    _queue.run();

    HYPERSIO_SHADOW(systemRunCompleted(
        bypass_translation, _processed,
        _device->translationsIssued(), _device->devtlbOccupancy(),
        _device->prefetchBufferOccupancy(),
        _iommu->iotlbOccupancy(), _iommu->l2Occupancy(),
        _iommu->l3Occupancy(), _device->ptbInUse()));

    return collectResults(wireBytesOf(trace.packets.front()));
}

RunResults
System::runStream(trace::PacketStream &stream,
                  const StreamRunOptions &opts)
{
    HYPERSIO_ASSERT(!_streamRan && _cursor == 0 && _processed == 0,
                    "System::runStream() may only be called once");
    _streamRan = true;

    // Fires before anything can panic so run-start hooks that
    // install PanicContext repro lines cover the whole run.
    if (opts.onRunStart)
        opts.onRunStart(*this);
    _snapshotEvery = opts.snapshotEveryPackets;
    _onSnapshot = opts.onSnapshot;

    if (!_device) {
        fatal("streaming runs do not support Oracle DevTLB "
              "replacement (the Belady feed needs the full trace "
              "up front)");
    }

    const trace::PacketRecord *first = stream.peek();
    if (!first) {
        HYPERSIO_ASSERT(stream.exhausted(),
                        "stream stalled before its first packet");
        RunResults empty;
        empty.configName = _config.name;
        return empty;
    }

#ifdef HYPERSIO_CHECKED
    // Same auto-installed differential oracle as run().
    std::unique_ptr<oracle::ShadowChecker> auto_checker;
    std::optional<oracle::ShadowScope> shadow_scope;
    if (!oracle::shadowChecker() &&
        oracle::shadowAutoCheckEnabled()) {
        auto_checker = std::make_unique<oracle::ShadowChecker>(
            toShadowConfig(_config), &_tables, /*fail_fast=*/true);
        shadow_scope.emplace(*auto_checker);
    }
#endif

    _stream = &stream;
    _evictStream = opts.evictDetached;
    _streamInterval = _config.link.packetInterval();
    const uint64_t first_bytes = wireBytesOf(*first);

    // The arrival process mirrors run()'s slot for slot; the only
    // difference is where the next packet comes from (and that a
    // batch can also end early because the stream ran dry — only the
    // head packet is peekable). A stream that runs dry while tenants
    // await retirement (ChurnStream parked on a full SID space)
    // parks the process; retirement completions re-arm it through
    // maybeRestartStreamArrival().
    const unsigned batch = _config.admitBatch ? _config.admitBatch : 1;
    std::function<void()> arrival = [&]() {
        HYPERSIO_ASSERT(_stream->peek(),
                        "stream arrival fired without a packet");
        for (unsigned b = 0; b < batch; ++b) {
            const trace::PacketRecord *head = _stream->peek();
            if (!head)
                break;
            if (_device->ptbFull()) {
                // Dropped; the same packet retries next slot.
                ++_dropped;
                HYPERSIO_SHADOW(devicePacketDropped());
                break;
            }
            // Copy the record out: advance() invalidates peek().
            const trace::PacketRecord pkt = *head;
            applyOps(pkt, _stream->ops());
            ++_cursor;
            if (_evictStream)
                ++_outstanding[pkt.sid];
            _stream->advance();
            _device->accept(pkt, *this);
        }

        if (_evictStream)
            serviceRetirements();

        if (const trace::PacketRecord *next = _stream->peek()) {
            // Only the head is visible, so the batch window is
            // approximated as `batch` slots of the head's
            // serialization time (exact at batch == 1).
            const Tick ser = serializationTicks(
                wireBytesOf(*next), _config.link.gbps);
            const Tick slot = ser == 0 ? _streamInterval : ser;
            _queue.scheduleAfter(slot * batch,
                                 [&arrival] { arrival(); });
        } else if (!_stream->exhausted()) {
            _streamStalled = true;
        }
    };
    _streamArrival = &arrival;

    _queue.schedule(0, [&arrival] { arrival(); });
    for (;;) {
        _queue.run();
        if (!_evictStream)
            break;
        // Drained: every in-flight access is done, so anything still
        // pending must retire now (and may unpark the stream).
        serviceRetirements();
        HYPERSIO_ASSERT(_pendingRetire.empty(),
                        "tenants stuck awaiting retirement after "
                        "the queue drained");
        if (_streamStalled && _stream->peek()) {
            _streamStalled = false;
            _queue.scheduleAfter(_streamInterval,
                                 [&arrival] { arrival(); });
            continue;
        }
        break;
    }
    HYPERSIO_ASSERT(_stream->exhausted(),
                    "streaming run ended with the stream unfinished");
    _streamArrival = nullptr;
    _stream = nullptr;

    HYPERSIO_SHADOW(systemRunCompleted(
        /*bypass=*/false, _processed,
        _device->translationsIssued(), _device->devtlbOccupancy(),
        _device->prefetchBufferOccupancy(),
        _iommu->iotlbOccupancy(), _iommu->l2Occupancy(),
        _iommu->l3Occupancy(), _device->ptbInUse()));

    return collectResults(first_bytes);
}

void
System::packetDone(const trace::PacketRecord &pkt)
{
    ++_processed;
    _bytesProcessed += wireBytesOf(pkt);
    _lastCompletion = _queue.now();
    // Streaming-run bookkeeping; _evictStream is never set by run().
    if (_evictStream)
        onStreamPacketDrained(pkt.sid);
    // After retirement bookkeeping, so a capture at this boundary
    // sees the stats with this completion fully applied.
    if (_snapshotEvery != 0 && _processed % _snapshotEvery == 0 &&
        _onSnapshot) {
        _onSnapshot(*this, _processed);
    }
}

uint64_t
System::wireBytesOf(const trace::PacketRecord &pkt) const
{
    return pkt.wireBytes != 0 ? pkt.wireBytes
                              : _config.link.packetBytes;
}

RunResults
System::collectResults(uint64_t first_wire_bytes)
{
    RunResults results;
    results.configName = _config.name;
    results.packetsProcessed = _processed;
    results.packetsDropped = _dropped;
    results.translations = _device->translationsIssued();
    // The first packet occupies the wire for one serialization
    // interval before its arrival event; include it so a perfectly
    // translated run reports exactly the nominal link rate.
    results.elapsed =
        _lastCompletion +
        serializationTicks(first_wire_bytes, _config.link.gbps);
    results.achievedGbps =
        achievedGbps(_bytesProcessed, results.elapsed);
    results.utilization = results.achievedGbps / _config.link.gbps;

    const auto &devtlb = _device->devtlbStats();
    results.devtlbHitRate =
        devtlb.lookups == 0
            ? 0.0
            : static_cast<double>(devtlb.hits) /
                  static_cast<double>(devtlb.lookups);
    results.pbHitRate =
        results.translations == 0
            ? 0.0
            : static_cast<double>(_device->pbHits()) /
                  static_cast<double>(results.translations);
    const auto &iotlb = _iommu->iotlbStats();
    results.iotlbHitRate =
        iotlb.lookups == 0
            ? 0.0
            : static_cast<double>(iotlb.hits) /
                  static_cast<double>(iotlb.lookups);

    const auto *walks = _stats.child("iommu").find("walks");
    results.walks = walks ? static_cast<uint64_t>(walks->value()) : 0;
    const auto *reqs = _stats.child("iommu").find("requests");
    results.iommuRequests =
        reqs ? static_cast<uint64_t>(reqs->value()) : 0;
    const auto *lat =
        _stats.child("device").find("packet_latency_ns");
    results.avgPacketLatencyNs = lat ? lat->value() : 0.0;
    return results;
}

void
System::applyOps(const trace::PacketRecord &pkt,
                 const trace::PageOp *ops)
{
    const mem::DomainId did =
        iommu::ContextCache::resolve(pkt.sid, pkt.pasid)
            .domain;
    for (uint16_t i = 0; i < pkt.opCount; ++i) {
        const trace::PageOp &op = ops[i];
        mem::PageTable &table = _tables.get(did);
        if (op.isMap) {
            table.map(op.pageBase, op.size);
        } else {
            table.unmap(op.pageBase);
            // Invalidate every cached copy of the dying translation:
            // device TLB, prefetch buffer, and chipset IOTLB.
            _device->invalidatePage(did, op.pageBase, op.size);
            _iommu->invalidate(did, op.pageBase, op.size);
            HYPERSIO_SHADOW(
                systemUnmapped(did, op.pageBase, op.size));
        }
    }
}

void
System::serviceRetirements()
{
    _stream->drainDetached(_pendingRetire);
    if (_pendingRetire.empty())
        return;
    // Retire what can go; keep the rest in detach order. A SID may
    // stay parked across many slots while its packets, prefetch
    // bursts, or fills drain — retrying here every arrival and every
    // completion keeps the latency O(in-flight work), not O(stream).
    size_t keep = 0;
    for (size_t i = 0; i < _pendingRetire.size(); ++i) {
        if (!tryRetireSid(_pendingRetire[i]))
            _pendingRetire[keep++] = _pendingRetire[i];
    }
    _pendingRetire.resize(keep);
}

bool
System::tryRetireSid(trace::SourceId sid)
{
    // Gate 1: every accepted packet of the SID has completed.
    if (const uint32_t *count = _outstanding.find(sid);
        count && *count > 0) {
        return false;
    }

    // The SID's domains (one per PASID the tenant used). Directory
    // iteration order is unspecified; sort for determinism. The
    // list lives in the retirement arena: this function reruns on
    // every completion while the tenant drains.
    const util::Arena::Scope scratch(_retireArena);
    auto *dids = _retireArena.allocArray<mem::DomainId>(
        _tables.size());
    size_t ndids = 0;
    _tables.forEachDomain([&](const mem::DomainId &did) {
        if (iommu::ContextCache::sidOf(did) == sid)
            dids[ndids++] = did;
    });
    std::sort(dids, dids + ndids);

    for (size_t i = 0; i < ndids; ++i) {
        const mem::DomainId did = dids[i];
        // Gate 2: no history-reader prefetch burst in flight.
        if (_historyReader && _historyReader->prefetchInFlight(did))
            return false;
        // Gate 3: no prefetched translation on the PCIe wire.
        if (const uint32_t *wire = _fillsInFlight.find(did);
            wire && *wire > 0) {
            return false;
        }
        // Gate 4: no MMU prefetch between issue and its IOMMU
        // completion (after which the fill rides Gate 3's wire).
        if (const uint32_t *pending = _mmuPrefetchesInFlight.find(did);
            pending && *pending > 0) {
            return false;
        }
    }

    for (size_t i = 0; i < ndids; ++i)
        retireDomain(dids[i]);
    _device->retireSid(sid);
    _streamRetirements.push_back(
        {_queue.now(), _queue.scheduledSeq(), sid});
    _stream->sidRetired(sid);
    return true;
}

void
System::retireDomain(mem::DomainId did)
{
    // Unmap every live page through the regular driver-unmap path so
    // all cached translations (DevTLB, PB, IOTLB) and the shadow
    // mirrors retire in lock-step, then drop the table and the
    // chipset's access history. Mapping iteration order is
    // unspecified; sort for determinism.
    mem::PageTable *table = _tables.findExisting(did);
    HYPERSIO_ASSERT(table, "retiring a domain without a table");
    using PageRef = std::pair<mem::Iova, mem::PageSize>;
    const util::Arena::Scope scratch(_retireArena);
    auto *pages = _retireArena.allocArray<PageRef>(table->size());
    size_t npages = 0;
    table->forEachMapping(
        [&](mem::Iova base, mem::PageSize size) {
            pages[npages++] = {base, size};
        });
    std::sort(pages, pages + npages);
    for (size_t i = 0; i < npages; ++i) {
        const auto [base, size] = pages[i];
        table->unmap(base);
        _device->invalidatePage(did, base, size);
        _iommu->invalidate(did, base, size);
        HYPERSIO_SHADOW(systemUnmapped(did, base, size));
    }
    _tables.erase(did);
    if (_historyReader)
        _historyReader->retire(did);
    _device->retireDomain(did);
}

void
System::onStreamPacketDrained(trace::SourceId sid)
{
    uint32_t *count = _outstanding.find(sid);
    HYPERSIO_ASSERT(count && *count > 0,
                    "packet completion without an outstanding "
                    "counter");
    --*count;
    serviceRetirements();
    maybeRestartStreamArrival();
}

void
System::maybeRestartStreamArrival()
{
    if (!_streamStalled || !_streamArrival)
        return;
    if (!_stream->peek())
        return;
    _streamStalled = false;
    _queue.scheduleAfter(_streamInterval,
                         [fn = _streamArrival] { (*fn)(); });
}

void
System::dumpStats(std::ostream &os) const
{
    _stats.dump(os);
}

void
System::dumpStatsJson(std::ostream &os, unsigned indent) const
{
    stats::writeJson(_stats, os, indent);
}

void
writeRunResultsJson(json::Writer &w, const RunResults &r)
{
    w.beginObject();
    w.key("config");
    w.value(r.configName);
    w.key("packets_processed");
    w.value(r.packetsProcessed);
    w.key("packets_dropped");
    w.value(r.packetsDropped);
    w.key("translations");
    w.value(r.translations);
    w.key("elapsed_ticks");
    w.value(r.elapsed);
    w.key("achieved_gbps");
    w.value(r.achievedGbps);
    w.key("utilization");
    w.value(r.utilization);
    w.key("devtlb_hit_rate");
    w.value(r.devtlbHitRate);
    w.key("pb_hit_rate");
    w.value(r.pbHitRate);
    w.key("iotlb_hit_rate");
    w.value(r.iotlbHitRate);
    w.key("walks");
    w.value(r.walks);
    w.key("iommu_requests");
    w.value(r.iommuRequests);
    w.key("avg_packet_latency_ns");
    w.value(r.avgPacketLatencyNs);
    w.endObject();
}

} // namespace hypersio::core
