/**
 * @file
 * Device-side Prefetch Unit: Prefetch Buffer + SID-predictor
 * (Section III, "Translation Prefetching Scheme").
 *
 * The SID-predictor is a direct-mapped table from the currently
 * accessed Source ID to a predicted future Source ID, trained online
 * from the observed SID stream with a host-configured history-length
 * register: the prediction for SID s is the SID that arrived
 * `historyLength` packets after s's last arrival. Under round-robin
 * arbitration this converges to "the tenant scheduled H slots later",
 * giving the prefetcher exactly enough lead time to cover the
 * translation latency.
 *
 * The Prefetch Buffer is a small fully-associative cache of
 * gIOVA→hPA translations shared by all tenants, filled only by
 * prefetch completions and checked concurrently with the DevTLB.
 */

#ifndef HYPERSIO_CORE_PREFETCH_HH
#define HYPERSIO_CORE_PREFETCH_HH

#include <vector>
#include <optional>

#include "cache/set_assoc_cache.hh"
#include "core/config.hh"
#include "iommu/keys.hh"
#include "trace/record.hh"
#include "util/flat_map.hh"

namespace hypersio::core
{

/** Online next-SID predictor with a configurable history stride. */
class SidPredictor
{
  public:
    explicit SidPredictor(unsigned history_length)
        : _historyLength(history_length),
          _window(history_length + 1)
    {}

    /** Observes the SID of an arriving packet and trains the table. */
    void
    train(trace::SourceId sid)
    {
        pushBack(sid);
        if (_count > _historyLength) {
            _table[front()] = sid;
            popFront();
        }
    }

    /** Prediction for the tenant `historyLength` packets ahead. */
    std::optional<trace::SourceId>
    predict(trace::SourceId sid) const
    {
        const trace::SourceId *next = _table.find(sid);
        if (!next)
            return std::nullopt;
        return *next;
    }

    /**
     * Reconfigures the history-length register (hypervisor). A
     * shorter length drains the excess window entries through the
     * same pairing rule train() uses: each evicted SID predicts the
     * SID that arrived `length` packets after it — `_window[length]`
     * at eviction time, not the newest observation.
     */
    void
    setHistoryLength(unsigned length)
    {
        _historyLength = length;
        growTo(size_t(length) + 1);
        while (_count > _historyLength) {
            _table[front()] = at(_historyLength);
            popFront();
        }
    }

    /**
     * Forgets the prediction entry keyed by a retired SID. Window
     * slots still holding the SID are left alone: they age out in at
     * most historyLength packets, exactly as a recycled SID would
     * retrain them in hardware.
     * @return true if an entry existed
     */
    bool retire(trace::SourceId sid) { return _table.erase(sid); }

    unsigned historyLength() const { return _historyLength; }
    size_t tableSize() const { return _table.size(); }

  private:
    // The observation window is a fixed circular buffer: train()
    // runs for every packet, and a deque's branchy block management
    // was measurable on the translation path. Capacity is
    // historyLength + 1 (one transient slot between the push and
    // the paired eviction).
    trace::SourceId
    at(size_t i) const
    {
        size_t p = _head + i;
        if (p >= _window.size())
            p -= _window.size();
        return _window[p];
    }

    trace::SourceId front() const { return _window[_head]; }

    void
    pushBack(trace::SourceId sid)
    {
        size_t p = _head + _count;
        if (p >= _window.size())
            p -= _window.size();
        _window[p] = sid;
        ++_count;
    }

    void
    popFront()
    {
        ++_head;
        if (_head == _window.size())
            _head = 0;
        --_count;
    }

    /** Re-packs the ring into a larger buffer (hypervisor grows
     *  the history-length register). */
    void
    growTo(size_t capacity)
    {
        if (_window.size() >= capacity)
            return;
        std::vector<trace::SourceId> fresh(capacity);
        for (size_t i = 0; i < _count; ++i)
            fresh[i] = at(i);
        _window.swap(fresh);
        _head = 0;
    }

    unsigned _historyLength;
    std::vector<trace::SourceId> _window; ///< circular buffer
    size_t _head = 0;
    size_t _count = 0;
    util::FlatMap<trace::SourceId, trace::SourceId> _table;
};

/** A translation held in the Prefetch Buffer. */
struct PrefetchEntry
{
    mem::Addr hostAddr = 0;
};

/** Confidence cap of the MMU-aware stride detector. */
constexpr unsigned MaxMmuConfidence = 3;

/**
 * Stride state of one (tenant, request-class) DMA stream — the
 * MMU-aware prefetcher's per-stream detector (PrefetchKind::MmuDma).
 */
struct MmuStreamState
{
    mem::Iova lastPage = 0;
    int64_t stride = 0;
    unsigned confidence = 0;
    bool primed = false;
    mem::PageSize size = mem::PageSize::Size4K;
};

/**
 * The Prefetch Unit: owns the Prefetch Buffer and the SID-predictor.
 * The device consults it in parallel with the DevTLB and notifies it
 * of packet arrivals for training.
 */
class PrefetchUnit
{
  public:
    explicit PrefetchUnit(const PrefetchConfig &config)
        : _config(config),
          _buffer({config.bufferEntries,
                   config.bufferEntries, // fully associative
                   1, cache::ReplPolicyKind::LRU, 13}),
          _predictor(config.historyLength)
    {}

    const PrefetchConfig &config() const { return _config; }

    /** Trains the predictor with an arriving packet's SID. */
    void observePacket(trace::SourceId sid) { _predictor.train(sid); }

    /**
     * Checks the Prefetch Buffer for a translation. A hit consumes
     * the entry: the buffer is a staging area between the prefetcher
     * and the packet that needed the translation, and freeing on use
     * keeps its eight entries available for upcoming fills.
     * @return true on hit (with the host address in `host_addr`)
     */
    bool
    lookup(mem::DomainId did, mem::Iova iova, mem::PageSize size,
           mem::Addr &host_addr)
    {
        const uint64_t key = iommu::translationKey(did, iova, size);
        const uint64_t index = iommu::translationIndex(iova, size);
        PrefetchEntry *entry = _buffer.lookup(key, index);
        if (!entry)
            return false;
        host_addr = entry->hostAddr;
        _buffer.invalidate(key, index);
        return true;
    }

    /**
     * Installs a completed prefetch translation.
     * @return the key evicted to make room, if any
     */
    std::optional<uint64_t>
    fill(mem::DomainId did, mem::Iova iova, mem::PageSize size,
         mem::Addr host_addr)
    {
        auto evicted =
            _buffer.insert(iommu::translationKey(did, iova, size),
                           iommu::translationIndex(iova, size),
                           PrefetchEntry{host_addr});
        if (!evicted)
            return std::nullopt;
        return evicted->key;
    }

    /** Drops a buffered translation (driver unmap). @return removed */
    bool
    invalidate(mem::DomainId did, mem::Iova iova, mem::PageSize size)
    {
        return _buffer.invalidate(
            iommu::translationKey(did, iova, size),
            iommu::translationIndex(iova, size));
    }

    /** SID to prefetch for, given the current packet's SID. */
    std::optional<trace::SourceId>
    predict(trace::SourceId sid) const
    {
        return _predictor.predict(sid);
    }

    SidPredictor &predictor() { return _predictor; }
    const cache::CacheStats &bufferStats() const
    {
        return _buffer.stats();
    }
    /** Valid buffer entries (O(entries); shadow checks and tests). */
    size_t bufferOccupancy() const { return _buffer.occupancy(); }

    // ---- MMU-aware DMA prefetch (PrefetchKind::MmuDma) -----------------
    // The device observes every translation request's (tenant,
    // request-class, page); each stream's detector locks onto the
    // descriptor-ring stride and predicts the pages the DMA engine
    // will touch next. No SID predictor and no history reads from
    // main memory are involved.

    /**
     * Trains the (did, cls) stream with an observed access. Repeats
     * of the stream's current page (ring polls, notify mailboxes)
     * carry no stride information and are ignored; a page-size flip
     * restarts confidence like a stride break.
     */
    void
    observeAccess(mem::DomainId did, trace::ReqClass cls,
                  mem::Iova iova, mem::PageSize size)
    {
        const mem::Iova page = mem::pageBase(iova, size);
        auto [stream, inserted] =
            _streams.tryEmplace(streamKey(did, cls));
        if (inserted)
            *stream = MmuStreamState{};
        if (!stream->primed) {
            stream->primed = true;
            stream->lastPage = page;
            stream->size = size;
            return;
        }
        const int64_t delta =
            int64_t(page) - int64_t(stream->lastPage);
        if (delta == 0 && size == stream->size)
            return;
        if (delta == stream->stride && size == stream->size) {
            if (stream->confidence < MaxMmuConfidence)
                ++stream->confidence;
        } else {
            stream->stride = delta;
            stream->confidence = 0;
            stream->size = size;
        }
        stream->lastPage = page;
    }

    /**
     * Predicted next pages of the (did, cls) stream: lastPage +
     * stride * k for k = 1..pagesPerPrefetch, written to `pages`
     * (capacity must be >= pagesPerPrefetch); `size` is set to the
     * stream's page size.
     * @return pages written (0 while the stride is not confident)
     */
    size_t
    predictStrided(mem::DomainId did, trace::ReqClass cls,
                   mem::Iova *pages, mem::PageSize &size) const
    {
        const MmuStreamState *stream =
            _streams.find(streamKey(did, cls));
        if (!stream || stream->confidence == 0 ||
            stream->stride == 0)
            return 0;
        size = stream->size;
        for (unsigned k = 1; k <= _config.pagesPerPrefetch; ++k) {
            pages[k - 1] = mem::Iova(int64_t(stream->lastPage) +
                                     stream->stride * int64_t(k));
        }
        return _config.pagesPerPrefetch;
    }

    /** Tenant detach: drops the tenant's stream detectors. */
    void
    retireDomain(mem::DomainId did)
    {
        for (unsigned cls = 0; cls < trace::NumReqClasses; ++cls)
            _streams.erase(
                streamKey(did, static_cast<trace::ReqClass>(cls)));
    }

    /** Live stream detectors (tests and teardown checks). */
    size_t mmuStreams() const { return _streams.size(); }

  private:
    /** Key of a (tenant, request class) stream. */
    static uint64_t
    streamKey(mem::DomainId did, trace::ReqClass cls)
    {
        return (uint64_t(did) << 2) | uint64_t(cls);
    }

    PrefetchConfig _config;
    cache::SetAssocCache<PrefetchEntry> _buffer;
    SidPredictor _predictor;
    /** MMU-aware stride detectors by (did, cls); MmuDma only. */
    util::FlatMap<uint64_t, MmuStreamState> _streams;
};

} // namespace hypersio::core

#endif // HYPERSIO_CORE_PREFETCH_HH
