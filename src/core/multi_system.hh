/**
 * @file
 * Multi-device system: several I/O devices — one per host link, as
 * in the paper's Fig. 1 multi-host sharing scenario — translating
 * through one shared chipset (IOMMU, paging caches, memory).
 *
 * Each device keeps its own link, PTB, DevTLB, and Prefetch Unit;
 * tenants are distributed round-robin across devices (tenant t
 * drives device t % N). The shared IOMMU sees the union of all
 * devices' demand and prefetch traffic, so its IOTLB, paging caches,
 * and walker slots become contended resources.
 */

#ifndef HYPERSIO_CORE_MULTI_SYSTEM_HH
#define HYPERSIO_CORE_MULTI_SYSTEM_HH

#include <memory>
#include <vector>

#include "core/chipset.hh"
#include "core/config.hh"
#include "core/device.hh"
#include "core/xlate_port.hh"
#include "trace/record.hh"

namespace hypersio::core
{

/** Aggregate results of a multi-device run. */
struct MultiRunResults
{
    /** Sum of all links' achieved bandwidth. */
    double totalGbps = 0.0;
    /** Aggregate utilisation relative to N x link rate. */
    double utilization = 0.0;
    uint64_t packetsProcessed = 0;
    uint64_t packetsDropped = 0;
    Tick elapsed = 0;
    /** Per-device achieved bandwidth. */
    std::vector<double> perDeviceGbps;
    /** Shared-IOMMU IOTLB hit rate. */
    double iotlbHitRate = 0.0;
    uint64_t walks = 0;
};

/**
 * N devices sharing one translation subsystem. Constructed from one
 * per-device configuration (every device is identical, as VFs of the
 * same physical part would be).
 */
class MultiSystem
{
  public:
    MultiSystem(const SystemConfig &config, unsigned num_devices);
    ~MultiSystem();

    MultiSystem(const MultiSystem &) = delete;
    MultiSystem &operator=(const MultiSystem &) = delete;

    /**
     * Runs the trace with packets routed to device (sid % N). May be
     * called once per MultiSystem.
     */
    MultiRunResults run(const trace::HyperTrace &trace);

    unsigned numDevices() const
    {
        return static_cast<unsigned>(_devices.size());
    }

    /** Dumps the statistics tree (shared chipset + per device). */
    void dumpStats(std::ostream &os) const;

    /** Same tree as JSON; indent 0 writes one compact line. */
    void dumpStatsJson(std::ostream &os, unsigned indent = 2) const;

  private:
    void applyOps(const trace::HyperTrace &trace,
                  const trace::PacketRecord &pkt, unsigned dev);

    SystemConfig _config;
    sim::EventQueue _queue;
    stats::StatGroup _stats;
    std::unique_ptr<mem::MemoryModel> _memory;
    iommu::PageTableDirectory _tables;
    std::unique_ptr<iommu::Iommu> _iommu;
    std::vector<std::unique_ptr<HistoryReader>> _historyReaders;
    std::vector<std::unique_ptr<XlatePort>> _xlatePorts;
    std::vector<std::unique_ptr<Device>> _devices;

    struct LinkState
    {
        std::vector<uint32_t> packetIdx; ///< trace indices for this dev
        size_t cursor = 0;
        uint64_t processed = 0;
        uint64_t dropped = 0;
        uint64_t bytes = 0;
    };
    std::vector<LinkState> _links;
    Tick _lastCompletion = 0;
    bool _ran = false;
};

} // namespace hypersio::core

#endif // HYPERSIO_CORE_MULTI_SYSTEM_HH
