/**
 * @file
 * Multi-device system: several I/O devices — one per host link, as
 * in the paper's Fig. 1 multi-host sharing scenario — translating
 * through one shared chipset (IOMMU, paging caches, memory).
 *
 * Each device keeps its own link, PTB, DevTLB, and Prefetch Unit;
 * tenants are distributed round-robin across devices (tenant t
 * drives device t % N). The shared IOMMU sees the union of all
 * devices' demand and prefetch traffic, so its IOTLB, paging caches,
 * and walker slots become contended resources.
 */

#ifndef HYPERSIO_CORE_MULTI_SYSTEM_HH
#define HYPERSIO_CORE_MULTI_SYSTEM_HH

#include <functional>
#include <memory>
#include <vector>

#include "core/chipset.hh"
#include "core/config.hh"
#include "core/device.hh"
#include "core/system.hh"
#include "core/xlate_port.hh"
#include "trace/record.hh"
#include "trace/stream.hh"

namespace hypersio::core
{

/** Aggregate results of a multi-device run. */
struct MultiRunResults
{
    /** Sum of all links' achieved bandwidth. */
    double totalGbps = 0.0;
    /** Aggregate utilisation relative to N x link rate. */
    double utilization = 0.0;
    uint64_t packetsProcessed = 0;
    uint64_t packetsDropped = 0;
    Tick elapsed = 0;
    /** Per-device achieved bandwidth. */
    std::vector<double> perDeviceGbps;
    /** Shared-IOMMU IOTLB hit rate. */
    double iotlbHitRate = 0.0;
    uint64_t walks = 0;
};

/**
 * N devices sharing one translation subsystem. Constructed from one
 * per-device configuration (every device is identical, as VFs of the
 * same physical part would be).
 */
class MultiSystem
{
  public:
    MultiSystem(const SystemConfig &config, unsigned num_devices);
    ~MultiSystem();

    MultiSystem(const MultiSystem &) = delete;
    MultiSystem &operator=(const MultiSystem &) = delete;

    /**
     * Runs the trace with packets routed to device (sid % N). May be
     * called once per MultiSystem.
     */
    MultiRunResults run(const trace::HyperTrace &trace);

    unsigned numDevices() const
    {
        return static_cast<unsigned>(_devices.size());
    }

    /** The shared event queue (fusion telemetry in tests/benches). */
    const sim::EventQueue &eventQueue() const { return _queue; }

    /** Dumps the statistics tree (shared chipset + per device). */
    void dumpStats(std::ostream &os) const;

    /** Same tree as JSON; indent 0 writes one compact line. */
    void dumpStatsJson(std::ostream &os, unsigned indent = 2) const;

  private:
    void applyOps(const trace::HyperTrace &trace,
                  const trace::PacketRecord &pkt, unsigned dev);

    SystemConfig _config;
    sim::EventQueue _queue;
    stats::StatGroup _stats;
    std::unique_ptr<mem::MemoryModel> _memory;
    iommu::PageTableDirectory _tables;
    std::unique_ptr<iommu::Iommu> _iommu;
    std::vector<std::unique_ptr<HistoryReader>> _historyReaders;
    std::vector<std::unique_ptr<XlatePort>> _xlatePorts;
    std::vector<std::unique_ptr<Device>> _devices;

    struct LinkState : Device::CompletionSink
    {
        std::vector<uint32_t> packetIdx; ///< trace indices for this dev
        size_t cursor = 0;
        uint64_t processed = 0;
        uint64_t dropped = 0;
        uint64_t bytes = 0;
        MultiSystem *owner = nullptr; ///< completion bookkeeping

        /** Device completion for this link (allocation-free). */
        void
        packetDone(const trace::PacketRecord &pkt) override
        {
            ++processed;
            bytes += pkt.wireBytes ? pkt.wireBytes
                                   : owner->_config.link.packetBytes;
            owner->_lastCompletion = owner->_queue.now();
        }
    };
    std::vector<LinkState> _links;
    Tick _lastCompletion = 0;
    bool _ran = false;
};

/**
 * One tenant retirement on the merged global timeline. Entries are
 * ordered by (tick, shard, seq, per-shard index) — the slab event
 * kernel's (tick, priority, seq) rule with the shard id standing in
 * for the priority band — so the timeline is a pure function of the
 * per-shard simulations, independent of worker-thread scheduling.
 */
struct GlobalRetirement
{
    Tick tick = 0;
    unsigned shard = 0;
    uint64_t seq = 0;
    trace::SourceId sid = 0;

    bool operator==(const GlobalRetirement &) const = default;
};

/** Aggregate results of a sharded streaming run. */
struct ShardedRunResults
{
    uint64_t packetsProcessed = 0;
    uint64_t packetsDropped = 0;
    uint64_t translations = 0;
    uint64_t tenantsRetired = 0;
    /** Slowest shard's elapsed time (makespan of the fleet). */
    Tick maxElapsed = 0;
    /** Global retirement timeline (deterministic merge). */
    std::vector<GlobalRetirement> retirements;
    /**
     * Order-sensitive 48-bit digest of the merged timeline (48 so
     * the value survives a JSON double round-trip exactly).
     */
    uint64_t mergeChecksum = 0;
    std::vector<RunResults> perShard;

    bool operator==(const ShardedRunResults &) const = default;
};

/**
 * Hyper-scale regime: the tenant population is partitioned across
 * independent System shards (own link, device, chipset, and event
 * queue each), run on a small worker pool. Shards never interact
 * mid-run, so any jobs count produces bit-identical results; the
 * cross-shard retirement timeline is re-synchronised after the fact
 * by a deterministic (tick, shard, seq) merge of the per-shard logs.
 */
class ShardedMultiSystem
{
  public:
    /** Builds shard `s`'s packet stream (called in shard order). */
    using StreamFactory =
        std::function<std::unique_ptr<trace::PacketStream>(
            unsigned shard)>;

    /**
     * Builds shard `s`'s run options (called in shard order on the
     * calling thread). Lets each shard carry its own telemetry
     * hooks — a per-shard Snapshotter, a per-shard repro context —
     * while the run itself stays jobs-count independent.
     */
    using OptionsFactory =
        std::function<StreamRunOptions(unsigned shard)>;

    /**
     * @param jobs worker threads for run(); clamped to the shard
     *        count, 0/1 runs serially on the calling thread
     */
    ShardedMultiSystem(const SystemConfig &config, unsigned shards,
                       unsigned jobs = 1);
    ~ShardedMultiSystem();

    ShardedMultiSystem(const ShardedMultiSystem &) = delete;
    ShardedMultiSystem &operator=(const ShardedMultiSystem &) =
        delete;

    /** Runs every shard's stream to exhaustion. Call once. */
    ShardedRunResults run(const StreamFactory &make_stream,
                          const StreamRunOptions &opts = {});

    /** Same, with per-shard run options. Call once. */
    ShardedRunResults run(const StreamFactory &make_stream,
                          const OptionsFactory &make_options);

    unsigned numShards() const
    {
        return static_cast<unsigned>(_systems.size());
    }

    /** Direct access for tests/benchmarks. */
    const System &shard(unsigned s) const { return *_systems[s]; }

    /**
     * Writes every shard's statistics tree as one JSON array, in
     * shard order (deterministic regardless of the jobs count).
     */
    void dumpStatsJson(std::ostream &os, unsigned indent = 2) const;

  private:
    unsigned _jobs;
    std::vector<std::unique_ptr<System>> _systems;
    /** Kept alive past run() so callers may read stream counters. */
    std::vector<std::unique_ptr<trace::PacketStream>> _streams;
    bool _ran = false;
};

} // namespace hypersio::core

#endif // HYPERSIO_CORE_MULTI_SYSTEM_HH
