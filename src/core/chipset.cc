#include "core/chipset.hh"

#include <algorithm>

#include "oracle/hooks.hh"
#include "util/logging.hh"

namespace hypersio::core
{

HistoryReader::HistoryReader(const PrefetchConfig &config,
                             sim::EventQueue &queue,
                             stats::StatGroup &parent,
                             iommu::Iommu &iommu,
                             mem::MemoryModel &memory, FillFn fill)
    : SimObject("history_reader", queue, parent), _config(config),
      _iommu(iommu), _memory(memory), _fill(std::move(fill)),
      _started(statGroup().makeCounter("started",
                                       "prefetches started")),
      _deduped(statGroup().makeCounter(
          "deduped", "prefetch requests dropped (already running)")),
      _issued(statGroup().makeCounter(
          "issued", "prefetch translations issued to the IOMMU"))
{}

void
HistoryReader::observe(mem::DomainId did, mem::Iova iova,
                       mem::PageSize size)
{
    // The history write happens off the critical path and costs no
    // simulated time; only reads (on prefetch) are charged.
    HYPERSIO_SHADOW(historyObserved(did, iova, size));
    TenantHistory &hist = _history[did];
    const mem::Addr base = mem::pageBase(iova, size);
    auto it = std::find_if(hist.recent.begin(), hist.recent.end(),
                           [&](const HistoryPage &p) {
                               return p.pageBase == base;
                           });
    if (it != hist.recent.end()) {
        // Move to front (most recent).
        std::rotate(hist.recent.begin(), it, it + 1);
        return;
    }
    hist.recent.insert(hist.recent.begin(), {base, size});
    if (hist.recent.size() > _config.historyDepth)
        hist.recent.pop_back();
}

void
HistoryReader::prefetch(mem::DomainId did)
{
    // find() rather than operator[]: a predicted-but-never-observed
    // (or retired) DID must not grow the history map back.
    TenantHistory *hist = _history.find(did);
    if (!hist)
        return; // nothing known about this tenant yet
    if (hist->inFlight) {
        ++_deduped;
        return;
    }
    if (hist->recent.empty())
        return;
    hist->inFlight = true;
    ++_started;

    // Fetch the tenant's history from main memory, then translate.
    _memory.access(_config.historyReadAccesses,
                   [this, did]() { issueTranslations(did); });
}

void
HistoryReader::issueTranslations(mem::DomainId did)
{
    // Only ever reached from prefetch()'s memory callback with the
    // in-flight flag set, so the entry is pinned until the flag
    // clears (retire() refuses in-flight DIDs).
    TenantHistory *hist = _history.find(did);
    HYPERSIO_ASSERT(hist && hist->inFlight,
                    "history burst issued without in-flight state");
    const unsigned count = std::min<unsigned>(
        _config.pagesPerPrefetch,
        static_cast<unsigned>(hist->recent.size()));

    if (count == 0) {
        hist->inFlight = false;
        return;
    }

    // The in-flight flag clears when the last translation lands, so
    // a tenant has at most one prefetch burst outstanding.
    auto remaining = std::make_shared<unsigned>(count);
    for (unsigned i = 0; i < count; ++i) {
        const HistoryPage page = hist->recent[i];
        ++_issued;
        HYPERSIO_SHADOW(
            historyPrefetchIssued(did, i, page.pageBase, page.size));
        iommu::IommuRequest req;
        req.domain = did;
        req.iova = page.pageBase;
        req.size = page.size;
        req.prefetch = true;
        // may_fuse stays false: the loop keeps issuing after each
        // translate returns, so this is not a tail position — a
        // fused IOTLB hit would deliver (and advance time) before
        // the burst's remaining pages were even issued.
        _iommu.translate(
            req,
            [this, did, page, remaining](
                const iommu::IommuResponse &resp) {
                if (resp.valid && _fill)
                    _fill(did, page.pageBase, page.size,
                          resp.hostAddr);
                if (--*remaining == 0) {
                    TenantHistory *h = _history.find(did);
                    HYPERSIO_ASSERT(h, "history entry vanished "
                                       "under an in-flight burst");
                    h->inFlight = false;
                }
            },
            /*may_fuse=*/false);
    }
}

void
HistoryReader::retire(mem::DomainId did)
{
    TenantHistory *hist = _history.find(did);
    if (!hist)
        return;
    HYPERSIO_ASSERT(!hist->inFlight,
                    "retiring a DID with a prefetch burst in flight");
    HYPERSIO_SHADOW(historyRetired(did));
    _history.erase(did);
}

bool
HistoryReader::prefetchInFlight(mem::DomainId did) const
{
    const TenantHistory *hist = _history.find(did);
    return hist && hist->inFlight;
}

} // namespace hypersio::core
