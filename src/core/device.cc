#include "core/device.hh"

#include "oracle/fault_injection.hh"
#include "oracle/hooks.hh"
#include "util/debug.hh"

namespace hypersio::core
{

namespace
{

debug::Flag DevTlbFlag("DevTLB", "device TLB lookups and fills");
debug::Flag PtbFlag("PTB", "pending translation buffer activity");
debug::Flag PrefetchFlag("Prefetch", "prefetch unit activity");

/** DevTLB key/index/partition for one request of a packet. */
struct DevtlbAddr
{
    uint64_t key;
    uint64_t index;
    uint32_t partition;
};

DevtlbAddr
devtlbAddr(mem::DomainId did, trace::SourceId sid, mem::Iova iova,
           mem::PageSize size, size_t partitions)
{
    uint32_t partition = sid;
#ifdef HYPERSIO_CHECKED
    // Planted bug for validating the shadow oracle: masking the PTag
    // with `partitions` instead of `partitions - 1` collapses every
    // SID into row group 0 of a partitioned DevTLB.
    if (oracle::faultInjection().devtlbPtagOffByOne)
        partition = sid & static_cast<uint32_t>(partitions);
#else
    (void)partitions;
#endif
    return {iommu::translationKey(did, iova, size),
            iommu::translationIndex(iova, size), partition};
}

} // namespace

Device::Device(const DeviceConfig &config, sim::EventQueue &queue,
               stats::StatGroup &parent, DevicePorts ports,
               cache::OracleFeed *oracle)
    : SimObject("device", queue, parent), _config(config),
      _ports(std::move(ports)), _ptb(config.ptbEntries),
      _devtlb(config.devtlb,
              oracle ? std::unique_ptr<cache::ReplacementPolicy>(
                           std::make_unique<cache::OraclePolicy>(
                               *oracle))
                     : cache::makePolicy(config.devtlb.policy,
                                         config.devtlb.seed,
                                         config.devtlb.lfuBits)),
      _context(config.contextCache),
      _prefetchUnit(config.prefetch.enabled
                        ? std::make_unique<PrefetchUnit>(
                              config.prefetch)
                        : nullptr),
      _oracle(oracle),
      _packets(statGroup().makeCounter("packets",
                                       "packets accepted")),
      _translations(statGroup().makeCounter(
          "translations", "translation requests issued")),
      _devtlbHits(statGroup().makeCounter("devtlb_hits",
                                          "DevTLB hits")),
      _pbHits(statGroup().makeCounter("pb_hits",
                                      "Prefetch Buffer hits")),
      _prefetchesSent(statGroup().makeCounter(
          "prefetches_sent", "prefetch requests sent to chipset")),
      _prefetchFills(statGroup().makeCounter(
          "prefetch_fills", "prefetched translations installed")),
      _demandFillsSquashed(statGroup().makeCounter(
          "demand_fills_squashed",
          "demand fills dropped after a mid-flight invalidate")),
      _prefetchFillsSquashed(statGroup().makeCounter(
          "prefetch_fills_squashed",
          "prefetch fills dropped after a mid-flight invalidate")),
      _packetLatency(statGroup().makeHistogram(
          "packet_latency_ns", "accept-to-complete latency", 0,
          20000, 40))
{
    HYPERSIO_ASSERT(_ports.translate != nullptr,
                    "device needs a translate port");
    if (_prefetchUnit &&
        _config.prefetch.kind == PrefetchKind::MmuDma)
        _mmuPages.resize(_config.prefetch.pagesPerPrefetch);

    // Per-structure hit/miss breakdowns, read live at dump time.
    _devtlb.exportStats(statGroup().child("devtlb"));
    _context.exportStats(statGroup().child("context_cache"));
}

unsigned
Device::admit(const trace::PacketRecord &packet)
{
    const int idx = _ptb.allocate(packet, now());
    HYPERSIO_ASSERT(idx >= 0, "accept() called with a full PTB");
    ++_packets;
    HYPERSIO_DPRINTF(PtbFlag, now(),
                     "accept sid=%u ptb=%d in_use=%u", packet.sid,
                     idx, _ptb.inUse());
    HYPERSIO_SHADOW(devicePacketAccepted(
        packet.sid, static_cast<unsigned>(idx), _ptb.inUse()));

    if (_prefetchUnit &&
        _config.prefetch.kind == PrefetchKind::SidPredictor) {
        _prefetchUnit->observePacket(packet.sid);
        HYPERSIO_SHADOW(deviceSidObserved(packet.sid));
    }
    return static_cast<unsigned>(idx);
}

void
Device::accept(const trace::PacketRecord &packet,
               CompletionSink &sink)
{
    const unsigned idx = admit(packet);
    _ptb.entry(idx).sink = &sink;
    // The arrival event keeps working after accept() returns (batch
    // admission, scheduling the next arrival), so the chain start is
    // not in tail position: the first hop is always a real event.
    issueNext(idx, /*may_fuse=*/false);
}

void
Device::accept(const trace::PacketRecord &packet,
               std::function<void()> done)
{
    const unsigned idx = admit(packet);
    _ptb.entry(idx).done = std::move(done);
    issueNext(idx, /*may_fuse=*/false);
}

void
Device::issueNext(unsigned idx, bool may_fuse)
{
    // Each loop iteration is one request whose hit hop was fused:
    // resolve() already advanced time to the tick the hop event
    // would have fired at, so issuing the next request here is
    // exactly the work that event's callback would have done.
    for (;;) {
        PtbEntry &entry = _ptb.entry(idx);
        if (entry.nextReq >= trace::NumReqClasses) {
            // All three translations done: packet fully processed.
            _packetLatency.sample(ticksToNs(now() - entry.accepted));
            if (CompletionSink *sink = entry.sink) {
                // The sink path frees the entry before notifying,
                // like the callback path — the sink may accept a new
                // packet reentrantly — so the record is copied out
                // first.
                const trace::PacketRecord packet = entry.packet;
                entry.sink = nullptr;
                _ptb.release(idx);
                HYPERSIO_SHADOW(
                    devicePacketCompleted(idx, _ptb.inUse()));
                sink->packetDone(packet);
                return;
            }
            std::function<void()> done = std::move(entry.done);
            _ptb.release(idx);
            HYPERSIO_SHADOW(devicePacketCompleted(idx, _ptb.inUse()));
            done();
            return;
        }
        const auto cls = static_cast<trace::ReqClass>(entry.nextReq);
        ++entry.nextReq;
        if (!resolve(idx, cls, may_fuse))
            return;
    }
}

bool
Device::resolve(unsigned idx, trace::ReqClass cls, bool may_fuse)
{
    PtbEntry &entry = _ptb.entry(idx);
    const trace::PacketRecord &pkt = entry.packet;
    const mem::Iova iova = pkt.iova(cls);
    const mem::PageSize size = pkt.pageSize(cls);
    ++_translations;

    // Context Cache: SID → DID. Device-resident per-VF state; a
    // miss is filled from the hypervisor-maintained context table
    // (modelled as part of the next chipset round trip).
    const iommu::ContextEntry *ce =
        _context.lookup(pkt.sid, pkt.pasid);
    mem::DomainId did;
    if (ce) {
        did = ce->domain;
    } else {
        const iommu::ContextEntry fresh =
            iommu::ContextCache::resolve(pkt.sid, pkt.pasid);
        _context.fill(pkt.sid, pkt.pasid, fresh);
        did = fresh.domain;
    }

    // The MMU-aware prefetcher observes every request of the DMA
    // stream (hit or miss — the stride detector needs the full
    // descriptor-ring access pattern).
    if (_prefetchUnit &&
        _config.prefetch.kind == PrefetchKind::MmuDma) {
        _prefetchUnit->observeAccess(did, cls, iova, size);
        HYPERSIO_SHADOW(deviceMmuObserved(
            did, static_cast<unsigned>(cls), iova, size));
    }

    // Belady feed advances once per DevTLB lookup, in accept order.
    if (_oracle)
        _oracle->advance();

    // Prefetch Buffer and DevTLB are checked concurrently.
    bool pb_hit = false;
    mem::Addr pb_addr = 0;
    if (_prefetchUnit) {
        pb_hit = _prefetchUnit->lookup(did, iova, size, pb_addr);
        HYPERSIO_SHADOW(
            devicePbLookup(did, iova, size, pb_hit, pb_addr));
        if (pb_hit)
            ++_pbHits;
    }

    const DevtlbAddr addr = devtlbAddr(did, pkt.sid, iova, size,
                                       _config.devtlb.partitions);
    const mem::Addr *tlb_entry =
        _devtlb.lookup(addr.key, addr.index, addr.partition);
    const bool tlb_hit = tlb_entry != nullptr;
    HYPERSIO_SHADOW(deviceDevtlbLookup(
        pkt.sid, did, iova, size,
        _devtlb.setFor(addr.key, addr.index, addr.partition),
        tlb_hit, tlb_hit ? *tlb_entry : 0));
    if (tlb_hit)
        ++_devtlbHits;

    HYPERSIO_DPRINTF(DevTlbFlag, now(),
                     "%s sid=%u %s iova=%#llx%s%s",
                     tlb_hit ? "hit" : "miss", pkt.sid,
                     trace::reqClassName(cls),
                     (unsigned long long)iova,
                     pb_hit ? " (PB hit)" : "",
                     size == mem::PageSize::Size2M ? " 2M" : "");

    if (pb_hit || tlb_hit) {
        // Deterministic hit: the continuation is "issue the next
        // request devtlbHitLatency later". In tail position with a
        // clear window the hop event is elided and the caller's loop
        // continues at the hit's exact tick.
        if (may_fuse &&
            eventQueue().tryFuseAdvance(_config.devtlbHitLatency))
            return true;
        eventQueue().scheduleAfter(
            _config.devtlbHitLatency,
            [this, idx] { issueNext(idx, /*may_fuse=*/true); });
        return false;
    }

    // Miss in both: consult the SID-predictor (prefetch trigger; at
    // most one prefetch per packet) and send the request on. The
    // entry records what is on the wire; the response continuation
    // re-derives everything from it, so its closure stays two words.
    entry.did = did;
    entry.curCls = cls;
    if (!entry.prefetchIssued) {
        entry.prefetchIssued = true;
        if (_config.prefetch.kind == PrefetchKind::MmuDma)
            maybeMmuPrefetch(did, cls);
        else
            maybePrefetch(pkt.sid);
    }

    markFillInFlight(addr.key);
    _ports.translate(did, iova, size, may_fuse,
                     [this, idx](const iommu::IommuResponse &resp) {
                         onTranslateResponse(idx, resp);
                     });
    return false;
}

void
Device::markFillInFlight(uint64_t key)
{
    auto [entry, inserted] = _fillsInFlight.tryEmplace(key);
    if (inserted)
        *entry = InFlightFill{};
    ++entry->count;
}

bool
Device::consumeFill(uint64_t key)
{
    InFlightFill *entry = _fillsInFlight.find(key);
    HYPERSIO_ASSERT(entry && entry->count > 0,
                    "fill arrival without a dispatch record");
    const bool squashed = entry->squash > 0;
    if (squashed)
        --entry->squash;
    if (--entry->count == 0)
        _fillsInFlight.erase(key);
    return squashed;
}

void
Device::onTranslateResponse(unsigned idx,
                            const iommu::IommuResponse &resp)
{
    PtbEntry &entry = _ptb.entry(idx);
    const trace::PacketRecord &pkt = entry.packet;
    const mem::Iova iova = pkt.iova(entry.curCls);
    const mem::PageSize size = pkt.pageSize(entry.curCls);
    const DevtlbAddr fill = devtlbAddr(entry.did, pkt.sid, iova,
                                       size,
                                       _config.devtlb.partitions);
    // A response whose page was invalidated while it crossed the
    // wire carries a pre-unmap translation: the packet still
    // completes with it (as hardware would until the invalidation
    // handshake finishes), but caching it would be stale.
    const bool squashed = consumeFill(fill.key);
    if (squashed)
        ++_demandFillsSquashed;
    if (resp.valid && !squashed) {
        [[maybe_unused]] auto evicted =
            _devtlb.insert(fill.key, fill.index, resp.hostAddr,
                           fill.partition);
        HYPERSIO_SHADOW(deviceDevtlbFill(
            pkt.sid, entry.did, iova, size,
            _devtlb.setFor(fill.key, fill.index, fill.partition),
            resp.hostAddr,
            evicted ? std::optional<uint64_t>(evicted->key)
                    : std::nullopt));
    }
    // Response deliveries arrive in tail position (the end of a
    // respond event, a fused continuation of one, or outside run()
    // where fusion refuses anyway), so the chain may keep fusing.
    issueNext(idx, /*may_fuse=*/true);
}

void
Device::maybePrefetch(trace::SourceId sid)
{
    if (!_prefetchUnit || !_ports.prefetch)
        return;
    const auto predicted = _prefetchUnit->predict(sid);
    HYPERSIO_SHADOW(deviceSidPredicted(sid, predicted));
    if (!predicted)
        return;
    ++_prefetchesSent;
    HYPERSIO_DPRINTF(PrefetchFlag, now(),
                     "predict sid=%u -> sid=%u", sid, *predicted);
    // DID == SID for predicted tenants too (hypervisor assignment).
    _ports.prefetch(
        iommu::ContextCache::resolve(*predicted).domain);
}

void
Device::maybeMmuPrefetch(mem::DomainId did, trace::ReqClass cls)
{
    if (!_prefetchUnit || !_ports.prefetchPage)
        return;
    mem::PageSize size = mem::PageSize::Size4K;
    const size_t pages = _prefetchUnit->predictStrided(
        did, cls, _mmuPages.data(), size);
    for (size_t k = 0; k < pages; ++k) {
        ++_prefetchesSent;
        HYPERSIO_DPRINTF(PrefetchFlag, now(),
                         "mmu prefetch did=%u %s page=%#llx", did,
                         trace::reqClassName(cls),
                         (unsigned long long)_mmuPages[k]);
        HYPERSIO_SHADOW(deviceMmuPrefetchIssued(
            did, static_cast<unsigned>(cls),
            static_cast<unsigned>(k), _mmuPages[k], size));
        _ports.prefetchPage(did, _mmuPages[k], size);
    }
}

void
Device::prefetchFillDispatched(mem::DomainId did, mem::Iova iova,
                               mem::PageSize size)
{
    if (!_prefetchUnit)
        return;
    markFillInFlight(iommu::translationKey(did, iova, size));
}

void
Device::prefetchFill(mem::DomainId did, mem::Iova iova,
                     mem::PageSize size, mem::Addr host_addr)
{
    if (!_prefetchUnit)
        return;
    if (consumeFill(iommu::translationKey(did, iova, size))) {
        ++_prefetchFillsSquashed;
        HYPERSIO_DPRINTF(PrefetchFlag, now(),
                         "squash fill did=%u iova=%#llx", did,
                         (unsigned long long)iova);
        return;
    }
    ++_prefetchFills;
    [[maybe_unused]] auto evicted =
        _prefetchUnit->fill(did, iova, size, host_addr);
    HYPERSIO_SHADOW(
        devicePbFill(did, iova, size, host_addr, evicted));
}

void
Device::invalidatePage(mem::DomainId did, mem::Iova iova,
                       mem::PageSize size)
{
    // Partition tags are per SID; recover it from the DID encoding.
    // Both size keys are dropped, not just the unmap's declared
    // size: a remap that flips page size re-keys the translation,
    // and the erased mapping need not match the declared size
    // either (PageTable::unmap probes both alignments).
    const trace::SourceId sid = iommu::ContextCache::sidOf(did);
    for (const mem::PageSize sz :
         {mem::PageSize::Size4K, mem::PageSize::Size2M}) {
        const DevtlbAddr addr = devtlbAddr(
            did, sid, iova, sz, _config.devtlb.partitions);
        [[maybe_unused]] const bool removed =
            _devtlb.invalidate(addr.key, addr.index,
                               addr.partition);
        HYPERSIO_SHADOW(
            deviceDevtlbInvalidated(sid, did, iova, sz, removed));
        if (_prefetchUnit) {
            [[maybe_unused]] const bool pb_removed =
                _prefetchUnit->invalidate(did, iova, sz);
            HYPERSIO_SHADOW(
                devicePbInvalidated(did, iova, sz, pb_removed));
        }
        // Fills already on the wire for this page sampled the
        // pre-unmap tables; mark them all to be dropped on arrival.
        if (InFlightFill *in_flight = _fillsInFlight.find(addr.key))
            in_flight->squash = in_flight->count;
    }
    (void)size;
}

void
Device::retireSid(trace::SourceId sid)
{
    if (!_prefetchUnit)
        return;
    _prefetchUnit->predictor().retire(sid);
    HYPERSIO_SHADOW(deviceSidRetired(sid));
}

void
Device::retireDomain(mem::DomainId did)
{
    if (!_prefetchUnit ||
        _config.prefetch.kind != PrefetchKind::MmuDma)
        return;
    _prefetchUnit->retireDomain(did);
    HYPERSIO_SHADOW(deviceMmuRetired(did));
}

} // namespace hypersio::core
