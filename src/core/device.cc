#include "core/device.hh"

#include "oracle/fault_injection.hh"
#include "oracle/hooks.hh"
#include "util/debug.hh"

namespace hypersio::core
{

namespace
{

debug::Flag DevTlbFlag("DevTLB", "device TLB lookups and fills");
debug::Flag PtbFlag("PTB", "pending translation buffer activity");
debug::Flag PrefetchFlag("Prefetch", "prefetch unit activity");

/** DevTLB key/index/partition for one request of a packet. */
struct DevtlbAddr
{
    uint64_t key;
    uint64_t index;
    uint32_t partition;
};

DevtlbAddr
devtlbAddr(mem::DomainId did, trace::SourceId sid, mem::Iova iova,
           mem::PageSize size, size_t partitions)
{
    uint32_t partition = sid;
#ifdef HYPERSIO_CHECKED
    // Planted bug for validating the shadow oracle: masking the PTag
    // with `partitions` instead of `partitions - 1` collapses every
    // SID into row group 0 of a partitioned DevTLB.
    if (oracle::faultInjection().devtlbPtagOffByOne)
        partition = sid & static_cast<uint32_t>(partitions);
#else
    (void)partitions;
#endif
    return {iommu::translationKey(did, iova, size),
            iommu::translationIndex(iova, size), partition};
}

} // namespace

Device::Device(const DeviceConfig &config, sim::EventQueue &queue,
               stats::StatGroup &parent, DevicePorts ports,
               cache::OracleFeed *oracle)
    : SimObject("device", queue, parent), _config(config),
      _ports(std::move(ports)), _ptb(config.ptbEntries),
      _devtlb(config.devtlb,
              oracle ? std::unique_ptr<cache::ReplacementPolicy>(
                           std::make_unique<cache::OraclePolicy>(
                               *oracle))
                     : cache::makePolicy(config.devtlb.policy,
                                         config.devtlb.seed,
                                         config.devtlb.lfuBits)),
      _context(config.contextCache),
      _prefetchUnit(config.prefetch.enabled
                        ? std::make_unique<PrefetchUnit>(
                              config.prefetch)
                        : nullptr),
      _oracle(oracle),
      _packets(statGroup().makeCounter("packets",
                                       "packets accepted")),
      _translations(statGroup().makeCounter(
          "translations", "translation requests issued")),
      _devtlbHits(statGroup().makeCounter("devtlb_hits",
                                          "DevTLB hits")),
      _pbHits(statGroup().makeCounter("pb_hits",
                                      "Prefetch Buffer hits")),
      _prefetchesSent(statGroup().makeCounter(
          "prefetches_sent", "prefetch requests sent to chipset")),
      _prefetchFills(statGroup().makeCounter(
          "prefetch_fills", "prefetched translations installed")),
      _packetLatency(statGroup().makeHistogram(
          "packet_latency_ns", "accept-to-complete latency", 0,
          20000, 40))
{
    HYPERSIO_ASSERT(_ports.translate != nullptr,
                    "device needs a translate port");

    // Per-structure hit/miss breakdowns, read live at dump time.
    _devtlb.exportStats(statGroup().child("devtlb"));
    _context.exportStats(statGroup().child("context_cache"));
}

unsigned
Device::admit(const trace::PacketRecord &packet)
{
    const int idx = _ptb.allocate(packet, now());
    HYPERSIO_ASSERT(idx >= 0, "accept() called with a full PTB");
    ++_packets;
    HYPERSIO_DPRINTF(PtbFlag, now(),
                     "accept sid=%u ptb=%d in_use=%u", packet.sid,
                     idx, _ptb.inUse());
    HYPERSIO_SHADOW(devicePacketAccepted(
        packet.sid, static_cast<unsigned>(idx), _ptb.inUse()));

    if (_prefetchUnit) {
        _prefetchUnit->observePacket(packet.sid);
        HYPERSIO_SHADOW(deviceSidObserved(packet.sid));
    }
    return static_cast<unsigned>(idx);
}

void
Device::accept(const trace::PacketRecord &packet,
               CompletionSink &sink)
{
    const unsigned idx = admit(packet);
    _ptb.entry(idx).sink = &sink;
    issueNext(idx);
}

void
Device::accept(const trace::PacketRecord &packet,
               std::function<void()> done)
{
    const unsigned idx = admit(packet);
    _ptb.entry(idx).done = std::move(done);
    issueNext(idx);
}

void
Device::issueNext(unsigned idx)
{
    PtbEntry &entry = _ptb.entry(idx);
    if (entry.nextReq >= trace::NumReqClasses) {
        // All three translations done: packet fully processed.
        _packetLatency.sample(ticksToNs(now() - entry.accepted));
        if (CompletionSink *sink = entry.sink) {
            // The sink path frees the entry before notifying, like
            // the callback path — the sink may accept a new packet
            // reentrantly — so the record is copied out first.
            const trace::PacketRecord packet = entry.packet;
            entry.sink = nullptr;
            _ptb.release(idx);
            HYPERSIO_SHADOW(devicePacketCompleted(idx, _ptb.inUse()));
            sink->packetDone(packet);
            return;
        }
        std::function<void()> done = std::move(entry.done);
        _ptb.release(idx);
        HYPERSIO_SHADOW(devicePacketCompleted(idx, _ptb.inUse()));
        done();
        return;
    }
    const auto cls = static_cast<trace::ReqClass>(entry.nextReq);
    ++entry.nextReq;
    resolve(idx, cls);
}

void
Device::resolve(unsigned idx, trace::ReqClass cls)
{
    PtbEntry &entry = _ptb.entry(idx);
    const trace::PacketRecord &pkt = entry.packet;
    const mem::Iova iova = pkt.iova(cls);
    const mem::PageSize size = pkt.pageSize(cls);
    ++_translations;

    // Context Cache: SID → DID. Device-resident per-VF state; a
    // miss is filled from the hypervisor-maintained context table
    // (modelled as part of the next chipset round trip).
    const iommu::ContextEntry *ce =
        _context.lookup(pkt.sid, pkt.pasid);
    mem::DomainId did;
    if (ce) {
        did = ce->domain;
    } else {
        const iommu::ContextEntry fresh =
            iommu::ContextCache::resolve(pkt.sid, pkt.pasid);
        _context.fill(pkt.sid, pkt.pasid, fresh);
        did = fresh.domain;
    }

    // Belady feed advances once per DevTLB lookup, in accept order.
    if (_oracle)
        _oracle->advance();

    // Prefetch Buffer and DevTLB are checked concurrently.
    bool pb_hit = false;
    mem::Addr pb_addr = 0;
    if (_prefetchUnit) {
        pb_hit = _prefetchUnit->lookup(did, iova, size, pb_addr);
        HYPERSIO_SHADOW(
            devicePbLookup(did, iova, size, pb_hit, pb_addr));
        if (pb_hit)
            ++_pbHits;
    }

    const DevtlbAddr addr = devtlbAddr(did, pkt.sid, iova, size,
                                       _config.devtlb.partitions);
    const mem::Addr *tlb_entry =
        _devtlb.lookup(addr.key, addr.index, addr.partition);
    const bool tlb_hit = tlb_entry != nullptr;
    HYPERSIO_SHADOW(deviceDevtlbLookup(
        pkt.sid, did, iova, size,
        _devtlb.setFor(addr.key, addr.index, addr.partition),
        tlb_hit, tlb_hit ? *tlb_entry : 0));
    if (tlb_hit)
        ++_devtlbHits;

    HYPERSIO_DPRINTF(DevTlbFlag, now(),
                     "%s sid=%u %s iova=%#llx%s%s",
                     tlb_hit ? "hit" : "miss", pkt.sid,
                     trace::reqClassName(cls),
                     (unsigned long long)iova,
                     pb_hit ? " (PB hit)" : "",
                     size == mem::PageSize::Size2M ? " 2M" : "");

    if (pb_hit || tlb_hit) {
        eventQueue().scheduleAfter(_config.devtlbHitLatency,
                                   [this, idx] { issueNext(idx); });
        return;
    }

    // Miss in both: consult the SID-predictor (prefetch trigger; at
    // most one prefetch per packet) and send the request on. The
    // entry records what is on the wire; the response continuation
    // re-derives everything from it, so its closure stays two words.
    entry.did = did;
    entry.curCls = cls;
    if (!entry.prefetchIssued) {
        entry.prefetchIssued = true;
        maybePrefetch(pkt.sid);
    }

    _ports.translate(did, iova, size,
                     [this, idx](const iommu::IommuResponse &resp) {
                         onTranslateResponse(idx, resp);
                     });
}

void
Device::onTranslateResponse(unsigned idx,
                            const iommu::IommuResponse &resp)
{
    PtbEntry &entry = _ptb.entry(idx);
    if (resp.valid) {
        const trace::PacketRecord &pkt = entry.packet;
        const mem::Iova iova = pkt.iova(entry.curCls);
        const mem::PageSize size = pkt.pageSize(entry.curCls);
        const DevtlbAddr fill = devtlbAddr(
            entry.did, pkt.sid, iova, size,
            _config.devtlb.partitions);
        [[maybe_unused]] auto evicted =
            _devtlb.insert(fill.key, fill.index, resp.hostAddr,
                           fill.partition);
        HYPERSIO_SHADOW(deviceDevtlbFill(
            pkt.sid, entry.did, iova, size,
            _devtlb.setFor(fill.key, fill.index, fill.partition),
            resp.hostAddr,
            evicted ? std::optional<uint64_t>(evicted->key)
                    : std::nullopt));
    }
    issueNext(idx);
}

void
Device::maybePrefetch(trace::SourceId sid)
{
    if (!_prefetchUnit || !_ports.prefetch)
        return;
    const auto predicted = _prefetchUnit->predict(sid);
    HYPERSIO_SHADOW(deviceSidPredicted(sid, predicted));
    if (!predicted)
        return;
    ++_prefetchesSent;
    HYPERSIO_DPRINTF(PrefetchFlag, now(),
                     "predict sid=%u -> sid=%u", sid, *predicted);
    // DID == SID for predicted tenants too (hypervisor assignment).
    _ports.prefetch(
        iommu::ContextCache::resolve(*predicted).domain);
}

void
Device::prefetchFill(mem::DomainId did, mem::Iova iova,
                     mem::PageSize size, mem::Addr host_addr)
{
    if (!_prefetchUnit)
        return;
    ++_prefetchFills;
    [[maybe_unused]] auto evicted =
        _prefetchUnit->fill(did, iova, size, host_addr);
    HYPERSIO_SHADOW(
        devicePbFill(did, iova, size, host_addr, evicted));
}

void
Device::invalidatePage(mem::DomainId did, mem::Iova iova,
                       mem::PageSize size)
{
    // Partition tags are per SID; recover it from the DID encoding.
    const trace::SourceId sid = iommu::ContextCache::sidOf(did);
    const DevtlbAddr addr = devtlbAddr(did, sid, iova, size,
                                       _config.devtlb.partitions);
    [[maybe_unused]] const bool removed =
        _devtlb.invalidate(addr.key, addr.index, addr.partition);
    HYPERSIO_SHADOW(
        deviceDevtlbInvalidated(sid, did, iova, size, removed));
    if (_prefetchUnit) {
        [[maybe_unused]] const bool pb_removed =
            _prefetchUnit->invalidate(did, iova, size);
        HYPERSIO_SHADOW(
            devicePbInvalidated(did, iova, size, pb_removed));
    }
}

void
Device::retireSid(trace::SourceId sid)
{
    if (!_prefetchUnit)
        return;
    _prefetchUnit->predictor().retire(sid);
    HYPERSIO_SHADOW(deviceSidRetired(sid));
}

} // namespace hypersio::core
