/**
 * @file
 * Experiment harness: builds traces, runs configuration sweeps, and
 * prints paper-style result tables. All bench binaries are thin
 * wrappers around this API.
 *
 * Sweeps can fan out across a worker pool (`jobs` > 1): every
 * ExperimentPoint is an independent System run over an immutable
 * cached trace, so points execute on N threads while results stay in
 * input order and are bit-identical to a serial run. The trace cache
 * is thread-safe with per-key construction locks — two points that
 * need the same (benchmark, tenants, interleaving) trace build it
 * exactly once.
 */

#ifndef HYPERSIO_CORE_RUNNER_HH
#define HYPERSIO_CORE_RUNNER_HH

#include <atomic>
#include <compare>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/bench_options.hh"
#include "core/system.hh"
#include "trace/constructor.hh"
#include "workload/benchmarks.hh"

namespace hypersio::core
{

/** A named point in a sweep: configuration + workload. */
struct ExperimentPoint
{
    std::string label;
    SystemConfig config;
    workload::Benchmark bench = workload::Benchmark::Iperf3;
    unsigned tenants = 4;
    trace::Interleaving interleave;
    bool bypassTranslation = false;
};

/** One row of experiment output. */
struct ExperimentRow
{
    ExperimentPoint point;
    RunResults results;
    /**
     * Compact JSON dump of the run's full stat tree; empty unless
     * the runner's captureStatsJson() was enabled (the `--json`
     * reports embed it per point).
     */
    std::string statsJson;
};

/**
 * Runs experiment points, reusing constructed traces across points
 * that share (benchmark, tenants, interleaving, scale, seed).
 *
 * All public methods are safe to call from multiple threads; each
 * run() builds its own System, and getTrace() returns references
 * that stay valid for the runner's lifetime.
 */
class ExperimentRunner
{
  public:
    /**
     * @param scale trace scale factor (1.0 = paper-sized logs);
     *        quick runs use a small fraction
     * @param jobs worker threads used by runAll(); 1 = serial
     * @param capture_stats_json fill ExperimentRow::statsJson
     */
    explicit ExperimentRunner(double scale = 0.05,
                              uint64_t seed = 42,
                              unsigned jobs = 1,
                              bool capture_stats_json = false);

    /** Runs one point. */
    ExperimentRow run(const ExperimentPoint &point);

    /**
     * Runs all points, dispatching them to jobs() worker threads.
     * Results are returned in input order regardless of completion
     * order; progress lines (one per point) are emitted atomically.
     * With jobs() == 1 this is exactly the historical serial loop.
     */
    std::vector<ExperimentRow>
    runAll(const std::vector<ExperimentPoint> &points,
           std::ostream *progress = nullptr);

    /**
     * Builds (and caches) the trace for a workload setting. The
     * returned reference is stable for the runner's lifetime; a
     * given key's trace is constructed exactly once even when many
     * threads request it concurrently.
     */
    const trace::HyperTrace &getTrace(workload::Benchmark bench,
                                      unsigned tenants,
                                      const trace::Interleaving &il);

    double scale() const { return _scale; }
    uint64_t seed() const { return _seed; }

    unsigned jobs() const { return _jobs; }
    void setJobs(unsigned jobs) { _jobs = jobs ? jobs : 1; }

    /** When set, each ExperimentRow carries its JSON stat tree. */
    bool captureStatsJson() const { return _captureStatsJson; }
    void setCaptureStatsJson(bool on) { _captureStatsJson = on; }

    /** Unique traces constructed so far (tested by the stress suite). */
    uint64_t
    traceConstructions() const
    {
        return _constructions.load(std::memory_order_relaxed);
    }

    /** One worker per hardware thread (at least 1). */
    static unsigned defaultJobs();

  private:
    double _scale;
    uint64_t _seed;
    unsigned _jobs;
    bool _captureStatsJson = false;

    struct TraceKey
    {
        workload::Benchmark bench;
        unsigned tenants;
        std::string interleave;

        auto operator<=>(const TraceKey &) const = default;
    };

    /** A cache slot: the once-flag is the per-key construction lock. */
    struct TraceEntry
    {
        std::once_flag built;
        trace::HyperTrace trace;
    };

    std::mutex _traceMutex; ///< guards the map structure only
    std::map<TraceKey, std::unique_ptr<TraceEntry>> _traces;
    std::atomic<uint64_t> _constructions{0};
};

/** The tenant counts the paper sweeps in Figs. 9-12 (4..1024). */
std::vector<unsigned> paperTenantSweep(unsigned max_tenants = 1024);

/**
 * Prints a bandwidth table: one row per tenant count, one column per
 * series. `series` maps label → (tenants → Gb/s).
 */
void printBandwidthTable(
    std::ostream &os, const std::string &title,
    const std::vector<unsigned> &tenants,
    const std::vector<
        std::pair<std::string, std::vector<double>>> &series);

/**
 * Writes the same data as CSV (header: tenants,<label>,...), ready
 * for gnuplot/matplotlib to regenerate the paper's figures.
 */
void writeCsv(const std::string &path,
              const std::vector<unsigned> &tenants,
              const std::vector<
                  std::pair<std::string, std::vector<double>>>
                  &series);

} // namespace hypersio::core

#endif // HYPERSIO_CORE_RUNNER_HH
