/**
 * @file
 * Experiment harness: builds traces, runs configuration sweeps, and
 * prints paper-style result tables. All bench binaries are thin
 * wrappers around this API.
 */

#ifndef HYPERSIO_CORE_RUNNER_HH
#define HYPERSIO_CORE_RUNNER_HH

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/system.hh"
#include "trace/constructor.hh"
#include "workload/benchmarks.hh"

namespace hypersio::core
{

/** A named point in a sweep: configuration + workload. */
struct ExperimentPoint
{
    std::string label;
    SystemConfig config;
    workload::Benchmark bench = workload::Benchmark::Iperf3;
    unsigned tenants = 4;
    trace::Interleaving interleave;
    bool bypassTranslation = false;
};

/** One row of experiment output. */
struct ExperimentRow
{
    ExperimentPoint point;
    RunResults results;
};

/**
 * Runs experiment points, reusing constructed traces across points
 * that share (benchmark, tenants, interleaving, scale, seed).
 */
class ExperimentRunner
{
  public:
    /**
     * @param scale trace scale factor (1.0 = paper-sized logs);
     *        quick runs use a small fraction
     */
    explicit ExperimentRunner(double scale = 0.05,
                              uint64_t seed = 42);

    /** Runs one point. */
    ExperimentRow run(const ExperimentPoint &point);

    /** Runs all points in order. */
    std::vector<ExperimentRow>
    runAll(const std::vector<ExperimentPoint> &points,
           std::ostream *progress = nullptr);

    /** Builds (and caches) the trace for a workload setting. */
    const trace::HyperTrace &getTrace(workload::Benchmark bench,
                                      unsigned tenants,
                                      const trace::Interleaving &il);

    double scale() const { return _scale; }
    uint64_t seed() const { return _seed; }

  private:
    double _scale;
    uint64_t _seed;

    struct CachedTrace
    {
        workload::Benchmark bench;
        unsigned tenants;
        std::string interleave;
        trace::HyperTrace trace;
    };
    std::vector<CachedTrace> _traces;
};

/** The tenant counts the paper sweeps in Figs. 9-12 (4..1024). */
std::vector<unsigned> paperTenantSweep(unsigned max_tenants = 1024);

/**
 * Prints a bandwidth table: one row per tenant count, one column per
 * series. `series` maps label → (tenants → Gb/s).
 */
void printBandwidthTable(
    std::ostream &os, const std::string &title,
    const std::vector<unsigned> &tenants,
    const std::vector<
        std::pair<std::string, std::vector<double>>> &series);

/**
 * Writes the same data as CSV (header: tenants,<label>,...), ready
 * for gnuplot/matplotlib to regenerate the paper's figures.
 */
void writeCsv(const std::string &path,
              const std::vector<unsigned> &tenants,
              const std::vector<
                  std::pair<std::string, std::vector<double>>>
                  &series);

/** Standard "--quick/--full/--scale" command line for benches. */
struct BenchOptions
{
    double scale = 0.05;
    unsigned maxTenants = 1024;
    uint64_t seed = 42;
    bool verbose = false;

    /** Parses argv; fatal() on unknown flags. */
    static BenchOptions parse(int argc, char **argv);
};

} // namespace hypersio::core

#endif // HYPERSIO_CORE_RUNNER_HH
