/**
 * @file
 * The shared multi-tenant I/O device (Fig. 3 / Fig. 6).
 *
 * Owns the packet-handling front end: Context Cache, Pending
 * Translation Buffer, (optionally partitioned) Device TLB, and the
 * Prefetch Unit. The device does not know about the chipset's
 * internals: translation and prefetch requests leave through
 * callbacks the System wires up with PCIe latency in between.
 */

#ifndef HYPERSIO_CORE_DEVICE_HH
#define HYPERSIO_CORE_DEVICE_HH

#include <functional>
#include <memory>
#include <unordered_set>

#include "cache/oracle_feed.hh"
#include "core/config.hh"
#include "core/prefetch.hh"
#include "core/ptb.hh"
#include "iommu/context_cache.hh"
#include "iommu/iommu.hh"
#include "sim/sim_object.hh"
#include "util/flat_map.hh"

namespace hypersio::core
{

/**
 * Device-to-chipset ports, wired by the System. `translate` must
 * eventually call the response function exactly once; `prefetch`
 * is fire-and-forget (results come back via prefetchFill()).
 *
 * `translate`'s bool is the may-fuse flag: true when the caller is
 * in tail position of an event callback, so the port may collapse
 * its deterministic hops via EventQueue::tryFuseAdvance() and run
 * the continuation synchronously at the same (tick, priority, seq)
 * a scheduled hop would have had. With false the port must schedule
 * event-per-hop. The response function must likewise be invoked
 * only from tail position (a scheduled event's end, or a fused
 * continuation of one) or outside run() entirely.
 */
struct DevicePorts
{
    using ResponseFn =
        std::function<void(const iommu::IommuResponse &)>;

    std::function<void(mem::DomainId, mem::Iova, mem::PageSize, bool,
                       ResponseFn)>
        translate;
    std::function<void(mem::DomainId)> prefetch;
    /**
     * MMU-aware prefetch of one predicted page (fire-and-forget;
     * results come back via prefetchFill()). Wired only when
     * PrefetchKind::MmuDma is selected.
     */
    std::function<void(mem::DomainId, mem::Iova, mem::PageSize)>
        prefetchPage;
};

/** The I/O device performance model. */
class Device : public sim::SimObject
{
  public:
    /**
     * @param oracle future-knowledge feed for Belady DevTLB
     *        replacement, or nullptr for ordinary policies
     */
    Device(const DeviceConfig &config, sim::EventQueue &queue,
           stats::StatGroup &parent, DevicePorts ports,
           cache::OracleFeed *oracle = nullptr);

    /** Completion interface of the run loops (see ptb.hh). */
    using CompletionSink = PacketCompletionSink;

    /** True when no PTB entry is available. */
    bool ptbFull() const { return _ptb.full(); }

    /**
     * Accepts a packet (the caller applied its page ops already) and
     * starts its translation chain. `sink.packetDone(packet)` fires
     * when all three translations complete; the packet is then fully
     * processed. The sink must outlive the packet — this is the
     * allocation-free form the run loops use on every arrival.
     */
    void accept(const trace::PacketRecord &packet,
                CompletionSink &sink);

    /**
     * Callback form of accept() for tests and ad-hoc drivers; `done`
     * fires when all three translations complete.
     */
    void accept(const trace::PacketRecord &packet,
                std::function<void()> done);

    /**
     * A prefetched translation left the chipset for this device
     * (System calls this when it schedules the PCIe hop of a fill).
     * Pairs with exactly one later prefetchFill() of the same page;
     * an invalidatePage() in between squashes that fill instead of
     * letting it install a stale translation.
     */
    void prefetchFillDispatched(mem::DomainId did, mem::Iova iova,
                                mem::PageSize size);

    /** Installs a prefetched translation into the Prefetch Buffer. */
    void prefetchFill(mem::DomainId did, mem::Iova iova,
                      mem::PageSize size, mem::Addr host_addr);

    /** Driver unmap: drops cached translations of the page. */
    void invalidatePage(mem::DomainId did, mem::Iova iova,
                        mem::PageSize size);

    /**
     * Tenant detach: forgets the SID's predictor entry so a later
     * tenant recycling the SID starts untrained. Cached translations
     * must already be gone (the System unmaps every page first).
     */
    void retireSid(trace::SourceId sid);

    /**
     * Tenant detach, MMU-prefetcher half: drops the tenant's stream
     * detectors so a later tenant recycling the DID starts untrained.
     */
    void retireDomain(mem::DomainId did);

    const cache::CacheStats &devtlbStats() const
    {
        return _devtlb.stats();
    }
    const cache::CacheStats &contextStats() const
    {
        return _context.stats();
    }
    const cache::CacheStats *
    prefetchBufferStats() const
    {
        return _prefetchUnit ? &_prefetchUnit->bufferStats() : nullptr;
    }

    uint64_t translationsIssued() const
    {
        return _translations.count();
    }
    /** Valid DevTLB entries (O(entries); shadow checks and tests). */
    size_t devtlbOccupancy() const { return _devtlb.occupancy(); }
    /** Valid Prefetch Buffer entries (0 without a prefetch unit). */
    size_t
    prefetchBufferOccupancy() const
    {
        return _prefetchUnit ? _prefetchUnit->bufferOccupancy() : 0;
    }
    /** Live MMU-prefetch stream detectors (0 without a unit). */
    size_t
    mmuStreams() const
    {
        return _prefetchUnit ? _prefetchUnit->mmuStreams() : 0;
    }
    /** Live PTB slots. */
    unsigned ptbInUse() const { return _ptb.inUse(); }
    uint64_t pbHits() const { return _pbHits.count(); }
    uint64_t prefetchesSent() const { return _prefetchesSent.count(); }
    /** Fills dropped because their page was invalidated mid-flight. */
    uint64_t demandFillsSquashed() const
    {
        return _demandFillsSquashed.count();
    }
    uint64_t prefetchFillsSquashed() const
    {
        return _prefetchFillsSquashed.count();
    }

  private:
    /** Shared accept() front half; returns the allocated PTB index. */
    unsigned admit(const trace::PacketRecord &packet);
    /**
     * Issues the remaining translation requests of PTB entry `idx`,
     * fusing consecutive deterministic hits into one dispatch when
     * `may_fuse` (the caller is in tail position of an event
     * callback — the chain events and response deliveries are; the
     * admission path inside an arrival event is not). All in-flight
     * state lives in the entry itself, so the continuation events
     * only carry (this, idx).
     */
    void issueNext(unsigned idx, bool may_fuse);
    /**
     * Resolves one request through PB → DevTLB → chipset.
     * @return true when the hit hop was fused (time already advanced
     *         to the hit's tick) and the caller may continue the
     *         chain synchronously; false when the continuation was
     *         scheduled or handed to the translate port.
     */
    bool resolve(unsigned idx, trace::ReqClass cls, bool may_fuse);
    /** The chipset answered entry `idx`'s outstanding request. */
    void onTranslateResponse(unsigned idx,
                             const iommu::IommuResponse &resp);
    /** Triggers a SID prediction + prefetch on a PB miss. */
    void maybePrefetch(trace::SourceId sid);
    /** Issues the (did, cls) stream's predicted pages (MmuDma). */
    void maybeMmuPrefetch(mem::DomainId did, trace::ReqClass cls);

    /**
     * In-flight fill tracking (ATS-style invalidation semantics):
     * every translation whose result may later install into the
     * DevTLB or the Prefetch Buffer is marked when it leaves the
     * device side and consumed when its fill arrives. An unmap's
     * invalidatePage() marks every fill then in flight for the page
     * as squashed; same-key fills complete in dispatch order (MSHR
     * coalescing plus the fixed PCIe return leg), so the first
     * `squash` completions are exactly the pre-invalidate ones.
     */
    struct InFlightFill
    {
        uint32_t count = 0;  ///< fills on the wire for this key
        uint32_t squash = 0; ///< leading fills to drop on arrival
    };

    void markFillInFlight(uint64_t key);
    /** @return true when this arrival was invalidated mid-flight. */
    bool consumeFill(uint64_t key);

    DeviceConfig _config;
    DevicePorts _ports;
    PendingTranslationBuffer _ptb;
    cache::SetAssocCache<mem::Addr> _devtlb;
    iommu::ContextCache _context;
    std::unique_ptr<PrefetchUnit> _prefetchUnit;
    cache::OracleFeed *_oracle;
    /** In-flight fills by translation key (see markFillInFlight). */
    util::FlatMap<uint64_t, InFlightFill> _fillsInFlight;
    /** Scratch page list for maybeMmuPrefetch (no per-call alloc). */
    std::vector<mem::Iova> _mmuPages;

    stats::Counter &_packets;
    stats::Counter &_translations;
    stats::Counter &_devtlbHits;
    stats::Counter &_pbHits;
    stats::Counter &_prefetchesSent;
    stats::Counter &_prefetchFills;
    stats::Counter &_demandFillsSquashed;
    stats::Counter &_prefetchFillsSquashed;
    stats::Histogram &_packetLatency;
};

} // namespace hypersio::core

#endif // HYPERSIO_CORE_DEVICE_HH
