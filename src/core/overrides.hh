/**
 * @file
 * Textual configuration overrides: "key=value" strings applied to a
 * SystemConfig, so command-line tools and config files can reach
 * every knob the evaluation sweeps without recompiling.
 *
 * Supported keys (see overrides.cc for the authoritative table):
 *   link.gbps, link.packet_bytes,
 *   pcie.oneway_ns, dram.latency_ns, dram.max_outstanding,
 *   ptb.entries,
 *   devtlb.entries, devtlb.ways, devtlb.partitions, devtlb.policy,
 *   devtlb.hit_ns, devtlb.lfu_bits,
 *   iotlb.entries, iotlb.ways, iotlb.policy, iotlb.hashed,
 *   l2tlb.entries, l2tlb.ways, l2tlb.partitions,
 *   l3tlb.entries, l3tlb.ways, l3tlb.partitions,
 *   iommu.walkers, iommu.paging_levels,
 *   prefetch.enabled, prefetch.buffer, prefetch.history,
 *   prefetch.pages, seed
 */

#ifndef HYPERSIO_CORE_OVERRIDES_HH
#define HYPERSIO_CORE_OVERRIDES_HH

#include <string>
#include <vector>

#include "core/config.hh"

namespace hypersio::core
{

/**
 * Applies one "key=value" override. Unknown keys and malformed
 * values are user errors (fatal()).
 */
void applyOverride(SystemConfig &config, const std::string &text);

/** Applies a list of overrides in order. */
void applyOverrides(SystemConfig &config,
                    const std::vector<std::string> &overrides);

/**
 * Loads overrides from a config file: one "key = value" per line,
 * '#' starts a comment, blank lines ignored.
 */
void loadConfigFile(SystemConfig &config, const std::string &path);

/** Lists all supported override keys (for --help output). */
std::vector<std::string> supportedOverrideKeys();

} // namespace hypersio::core

#endif // HYPERSIO_CORE_OVERRIDES_HH
