/**
 * @file
 * Pooled device→chipset translation round trip.
 *
 * The demand path (device → PCIe → IOMMU → PCIe → device) used to
 * capture the request parameters and the response callback into a
 * fresh closure at every hop, heap-allocating several times per
 * translation. XlatePort keeps the whole round trip's state in one
 * pooled continuation record instead: each hop's event captures only
 * (port pointer, 32-bit slot), which stores inline both in the event
 * kernel's slab records and in std::function's small-buffer storage.
 * The record recycles the moment the response is handed back.
 */

#ifndef HYPERSIO_CORE_XLATE_PORT_HH
#define HYPERSIO_CORE_XLATE_PORT_HH

#include "core/chipset.hh"
#include "core/device.hh"
#include "iommu/iommu.hh"
#include "sim/event_queue.hh"
#include "util/pool.hh"

namespace hypersio::core
{

/**
 * One device's demand-translation port. Wire DevicePorts::translate
 * to translate(); completions return over the same PCIe latency and
 * invoke the device's response function exactly once.
 */
class XlatePort
{
  public:
    /**
     * @param history chipset-side IOVA history observer (prefetch
     *        path), or nullptr when prefetching is disabled
     */
    XlatePort(sim::EventQueue &queue, iommu::Iommu &iommu,
              HistoryReader *history, Tick pcie_one_way)
        : _queue(queue), _iommu(iommu), _history(history),
          _pcie(pcie_one_way)
    {}

    /**
     * Starts one translation round trip (DevicePorts::translate).
     * With `may_fuse` (the caller is in tail position) the outbound
     * PCIe hop collapses into a synchronous continuation when the
     * event window is clear; otherwise — and whenever anything
     * nondeterministic could interleave — it is a real event at the
     * identical (tick, priority, seq).
     */
    void
    translate(mem::DomainId did, mem::Iova iova, mem::PageSize size,
              bool may_fuse, DevicePorts::ResponseFn done)
    {
        const uint32_t op = _ops.alloc();
        Op &rec = _ops.at(op);
        rec.did = did;
        rec.iova = iova;
        rec.size = size;
        rec.done = std::move(done);
        if (may_fuse && _queue.tryFuseAdvance(_pcie)) {
            atChipset(op);
            return;
        }
        _queue.scheduleAfter(_pcie, [this, op] { atChipset(op); });
    }

    /** Round-trip records ever allocated (bounded by PTB depth). */
    size_t poolCapacity() const { return _ops.capacity(); }
    /** Round trips currently in flight. */
    size_t inFlight() const { return _ops.inUse(); }

  private:
    struct Op
    {
        mem::DomainId did = 0;
        mem::Iova iova = 0;
        mem::PageSize size = mem::PageSize::Size4K;
        DevicePorts::ResponseFn done;
    };

    /** The request arrived at the chipset: history + IOMMU lookup. */
    void
    atChipset(uint32_t op)
    {
        Op &rec = _ops.at(op);
        if (_history)
            _history->observe(rec.did, rec.iova, rec.size);
        iommu::IommuRequest req;
        req.domain = rec.did;
        req.iova = rec.iova;
        req.size = rec.size;
        // atChipset is always the tail of its event (or of a fused
        // continuation of one), so the IOMMU may fuse its hit
        // latency. The return hop may fuse only when the IOMMU says
        // the delivery itself is in tail position — a page-table
        // walk's completion fans out to coalesced waiters and keeps
        // working afterwards, so those deliveries always schedule.
        _iommu.translate(
            req,
            [this, op](const iommu::IommuResponse &resp) {
                if (_iommu.fusedDelivery() &&
                    _queue.tryFuseAdvance(_pcie)) {
                    respond(op, resp);
                    return;
                }
                _queue.scheduleAfter(_pcie, [this, op, resp] {
                    respond(op, resp);
                });
            },
            /*may_fuse=*/true);
    }

    /** Back at the device: recycle the record, then complete. */
    void
    respond(uint32_t op, const iommu::IommuResponse &resp)
    {
        DevicePorts::ResponseFn done = std::move(_ops.at(op).done);
        _ops.release(op);
        done(resp);
    }

    sim::EventQueue &_queue;
    iommu::Iommu &_iommu;
    HistoryReader *_history;
    Tick _pcie;
    util::SlabPool<Op> _ops;
};

} // namespace hypersio::core

#endif // HYPERSIO_CORE_XLATE_PORT_HH
