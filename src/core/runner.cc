#include "core/runner.hh"

#include <cstdio>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <thread>

#include "util/logging.hh"
#include "util/str.hh"

namespace hypersio::core
{

namespace
{

/** One "running <label> (...)" progress line, emitted as a unit. */
void
progressLine(std::ostream &os, const ExperimentPoint &point)
{
    os << "  running " << point.label << " ("
       << workload::benchmarkName(point.bench) << ", "
       << point.tenants << " tenants, " << point.interleave.name()
       << ")..." << std::endl;
}

} // namespace

ExperimentRunner::ExperimentRunner(double scale, uint64_t seed,
                                   unsigned jobs,
                                   bool capture_stats_json)
    : _scale(scale), _seed(seed), _jobs(jobs ? jobs : 1),
      _captureStatsJson(capture_stats_json)
{
    if (scale <= 0.0)
        fatal("experiment scale must be positive");
}

unsigned
defaultBenchJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

unsigned
ExperimentRunner::defaultJobs()
{
    return defaultBenchJobs();
}

const trace::HyperTrace &
ExperimentRunner::getTrace(workload::Benchmark bench,
                           unsigned tenants,
                           const trace::Interleaving &il)
{
    TraceEntry *entry = nullptr;
    {
        std::lock_guard<std::mutex> lock(_traceMutex);
        auto &slot = _traces[TraceKey{bench, tenants, il.name()}];
        if (!slot)
            slot = std::make_unique<TraceEntry>();
        entry = slot.get();
    }
    // Per-key construction lock: the first requester builds the
    // trace, concurrent requesters for the same key block until it
    // is ready, and other keys proceed independently.
    std::call_once(entry->built, [&]() {
        auto logs =
            workload::generateLogs(bench, tenants, _seed, _scale);
        entry->trace = trace::constructTrace(logs, il);
        entry->trace.seed = _seed;
        _constructions.fetch_add(1, std::memory_order_relaxed);
    });
    return entry->trace;
}

ExperimentRow
ExperimentRunner::run(const ExperimentPoint &point)
{
    const trace::HyperTrace &tr =
        getTrace(point.bench, point.tenants, point.interleave);
    SystemConfig config = point.config;
    config.seed = _seed;
    System system(config);
    ExperimentRow row;
    row.point = point;
    row.results = system.run(tr, point.bypassTranslation);
    if (_captureStatsJson) {
        std::ostringstream os;
        system.dumpStatsJson(os, 0);
        row.statsJson = os.str();
    }
    return row;
}

std::vector<ExperimentRow>
ExperimentRunner::runAll(const std::vector<ExperimentPoint> &points,
                         std::ostream *progress)
{
    const size_t workers =
        std::min<size_t>(_jobs ? _jobs : 1, points.size());

    if (workers <= 1) {
        std::vector<ExperimentRow> rows;
        rows.reserve(points.size());
        for (const auto &point : points) {
            if (progress)
                progressLine(*progress, point);
            rows.push_back(run(point));
        }
        return rows;
    }

    // Worker pool: each thread claims the next unstarted point.
    // rows[i] is written by exactly one worker, so results land in
    // input order without any reordering pass.
    std::vector<ExperimentRow> rows(points.size());
    std::atomic<size_t> next{0};
    std::mutex progress_mutex;
    auto work = [&]() {
        for (;;) {
            const size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= points.size())
                return;
            if (progress) {
                std::lock_guard<std::mutex> lock(progress_mutex);
                progressLine(*progress, points[i]);
            }
            rows[i] = run(points[i]);
        }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (size_t t = 0; t < workers; ++t)
        pool.emplace_back(work);
    for (auto &thread : pool)
        thread.join();
    return rows;
}

std::vector<unsigned>
paperTenantSweep(unsigned max_tenants)
{
    std::vector<unsigned> sweep;
    for (unsigned t = 4; t <= max_tenants; t *= 2)
        sweep.push_back(t);
    return sweep;
}

void
printBandwidthTable(
    std::ostream &os, const std::string &title,
    const std::vector<unsigned> &tenants,
    const std::vector<std::pair<std::string, std::vector<double>>>
        &series)
{
    os << "\n" << title << "\n";
    os << std::left << std::setw(10) << "tenants";
    for (const auto &[label, values] : series)
        os << std::right << std::setw(14) << label;
    os << "\n";
    for (size_t i = 0; i < tenants.size(); ++i) {
        os << std::left << std::setw(10) << tenants[i];
        for (const auto &[label, values] : series) {
            if (i < values.size())
                os << std::right << std::setw(14) << std::fixed
                   << std::setprecision(1) << values[i];
            else
                os << std::right << std::setw(14) << "-";
        }
        os << "\n";
    }
    os.unsetf(std::ios::fixed);
}

void
writeCsv(const std::string &path,
         const std::vector<unsigned> &tenants,
         const std::vector<std::pair<std::string,
                                     std::vector<double>>> &series)
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        fatal("cannot open '%s' for writing", path.c_str());
    out << "tenants";
    for (const auto &[label, values] : series)
        out << ',' << label;
    out << '\n';
    for (size_t i = 0; i < tenants.size(); ++i) {
        out << tenants[i];
        for (const auto &[label, values] : series) {
            out << ',';
            if (i < values.size())
                out << values[i];
        }
        out << '\n';
    }
    if (!out)
        fatal("write error on '%s'", path.c_str());
}

namespace
{

constexpr const char *UsageText =
    "options:\n"
    "  --quick         small traces, up to 256 tenants "
    "(default)\n"
    "  --full          paper-sized traces, up to 1024 "
    "tenants\n"
    "  --scale <f>     trace scale factor (0 < f <= 1)\n"
    "  --tenants <n>   max tenant count in sweeps\n"
    "  --seed <n>      workload seed\n"
    "  --jobs, -j <n>  worker threads for sweeps "
    "(default: all cores; 1 = serial)\n"
    "  --json <file>   write a machine-readable JSON "
    "report (config,\n"
    "                  per-point stats, wall clock; see "
    "EXPERIMENTS.md)\n"
    "  --verbose       per-point progress output";

} // namespace

BenchOptions
BenchOptions::parse(int argc, char **argv)
{
    BenchOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next_value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc)
                fatal("%s needs a value", flag);
            return argv[++i];
        };
        if (arg == "--quick") {
            opts.scale = 0.05;
            opts.maxTenants = 256;
        } else if (arg == "--full") {
            opts.scale = 1.0;
            opts.maxTenants = 1024;
        } else if (arg == "--scale") {
            double value = 0.0;
            if (!parseDouble(next_value("--scale"), value) ||
                value <= 0.0)
                fatal("--scale needs a positive number");
            opts.scale = value;
        } else if (arg == "--tenants") {
            uint64_t value = 0;
            if (!parseU64(next_value("--tenants"), value) ||
                value == 0)
                fatal("--tenants needs a positive integer");
            opts.maxTenants = static_cast<unsigned>(value);
        } else if (arg == "--seed") {
            uint64_t value = 0;
            if (!parseU64(next_value("--seed"), value))
                fatal("--seed needs an integer");
            opts.seed = value;
        } else if (arg == "--jobs" || arg == "-j") {
            uint64_t value = 0;
            if (!parseU64(next_value("--jobs"), value) ||
                value == 0)
                fatal("--jobs needs a positive integer");
            opts.jobs = static_cast<unsigned>(value);
        } else if (arg == "--json" || arg == "--stats-json") {
            opts.jsonPath = next_value(arg.c_str());
            if (opts.jsonPath.empty())
                fatal("%s needs a file path", arg.c_str());
        } else if (arg == "--verbose" || arg == "-v") {
            opts.verbose = true;
        } else if (arg == "--help" || arg == "-h") {
            std::puts(UsageText);
            std::exit(0);
        } else {
            // Usage goes to stderr so a typo'd flag never corrupts
            // piped experiment output.
            std::fputs(UsageText, stderr);
            std::fputc('\n', stderr);
            fatal("unknown option '%s' (try --help)", arg.c_str());
        }
    }
    return opts;
}

} // namespace hypersio::core
