#include "core/overrides.hh"

#include <fstream>
#include <functional>

#include "util/logging.hh"
#include "util/str.hh"

namespace hypersio::core
{

namespace
{

using Setter =
    std::function<void(SystemConfig &, const std::string &)>;

uint64_t
parseUnsignedOrDie(const std::string &key, const std::string &value)
{
    uint64_t out = 0;
    if (!parseU64(value, out))
        fatal("override %s: '%s' is not an unsigned integer",
              key.c_str(), value.c_str());
    return out;
}

double
parseDoubleOrDie(const std::string &key, const std::string &value)
{
    double out = 0.0;
    if (!parseDouble(value, out))
        fatal("override %s: '%s' is not a number", key.c_str(),
              value.c_str());
    return out;
}

bool
parseBoolOrDie(const std::string &key, const std::string &value)
{
    if (value == "1" || value == "true" || value == "on" ||
        value == "yes")
        return true;
    if (value == "0" || value == "false" || value == "off" ||
        value == "no")
        return false;
    fatal("override %s: '%s' is not a boolean", key.c_str(),
          value.c_str());
}

/** The authoritative key table. */
const std::vector<std::pair<std::string, Setter>> &
setters()
{
    auto u = [](const std::string &k, const std::string &v) {
        return parseUnsignedOrDie(k, v);
    };
    static const std::vector<std::pair<std::string, Setter>> table = {
        {"link.gbps",
         [](SystemConfig &c, const std::string &v) {
             c.link.gbps = parseDoubleOrDie("link.gbps", v);
         }},
        {"link.packet_bytes",
         [u](SystemConfig &c, const std::string &v) {
             c.link.packetBytes = static_cast<unsigned>(
                 u("link.packet_bytes", v));
         }},
        {"pcie.oneway_ns",
         [u](SystemConfig &c, const std::string &v) {
             c.pcieOneWay = u("pcie.oneway_ns", v) * TicksPerNs;
         }},
        {"dram.latency_ns",
         [u](SystemConfig &c, const std::string &v) {
             c.memory.accessLatency =
                 u("dram.latency_ns", v) * TicksPerNs;
         }},
        {"dram.max_outstanding",
         [u](SystemConfig &c, const std::string &v) {
             c.memory.maxOutstanding = static_cast<unsigned>(
                 u("dram.max_outstanding", v));
         }},
        {"ptb.entries",
         [u](SystemConfig &c, const std::string &v) {
             c.device.ptbEntries =
                 static_cast<unsigned>(u("ptb.entries", v));
         }},
        {"devtlb.entries",
         [u](SystemConfig &c, const std::string &v) {
             c.device.devtlb.entries = u("devtlb.entries", v);
         }},
        {"devtlb.ways",
         [u](SystemConfig &c, const std::string &v) {
             c.device.devtlb.ways = u("devtlb.ways", v);
         }},
        {"devtlb.partitions",
         [u](SystemConfig &c, const std::string &v) {
             c.device.devtlb.partitions = u("devtlb.partitions", v);
         }},
        {"devtlb.policy",
         [](SystemConfig &c, const std::string &v) {
             c.device.devtlb.policy = cache::parseReplPolicy(v);
         }},
        {"devtlb.hit_ns",
         [u](SystemConfig &c, const std::string &v) {
             c.device.devtlbHitLatency =
                 u("devtlb.hit_ns", v) * TicksPerNs;
         }},
        {"devtlb.lfu_bits",
         [u](SystemConfig &c, const std::string &v) {
             c.device.devtlb.lfuBits =
                 static_cast<unsigned>(u("devtlb.lfu_bits", v));
         }},
        {"iotlb.entries",
         [u](SystemConfig &c, const std::string &v) {
             c.iommu.iotlb.entries = u("iotlb.entries", v);
         }},
        {"iotlb.ways",
         [u](SystemConfig &c, const std::string &v) {
             c.iommu.iotlb.ways = u("iotlb.ways", v);
         }},
        {"iotlb.policy",
         [](SystemConfig &c, const std::string &v) {
             c.iommu.iotlb.policy = cache::parseReplPolicy(v);
         }},
        {"iotlb.hashed",
         [](SystemConfig &c, const std::string &v) {
             c.iommu.iotlb.hashIndex =
                 parseBoolOrDie("iotlb.hashed", v);
         }},
        {"l2tlb.entries",
         [u](SystemConfig &c, const std::string &v) {
             c.iommu.l2tlb.entries = u("l2tlb.entries", v);
         }},
        {"l2tlb.ways",
         [u](SystemConfig &c, const std::string &v) {
             c.iommu.l2tlb.ways = u("l2tlb.ways", v);
         }},
        {"l2tlb.partitions",
         [u](SystemConfig &c, const std::string &v) {
             c.iommu.l2tlb.partitions = u("l2tlb.partitions", v);
         }},
        {"l3tlb.entries",
         [u](SystemConfig &c, const std::string &v) {
             c.iommu.l3tlb.entries = u("l3tlb.entries", v);
         }},
        {"l3tlb.ways",
         [u](SystemConfig &c, const std::string &v) {
             c.iommu.l3tlb.ways = u("l3tlb.ways", v);
         }},
        {"l3tlb.partitions",
         [u](SystemConfig &c, const std::string &v) {
             c.iommu.l3tlb.partitions = u("l3tlb.partitions", v);
         }},
        {"iommu.walkers",
         [u](SystemConfig &c, const std::string &v) {
             c.iommu.walkers =
                 static_cast<unsigned>(u("iommu.walkers", v));
         }},
        {"iommu.paging_levels",
         [u](SystemConfig &c, const std::string &v) {
             c.iommu.pagingLevels = static_cast<unsigned>(
                 u("iommu.paging_levels", v));
         }},
        {"prefetch.enabled",
         [](SystemConfig &c, const std::string &v) {
             c.device.prefetch.enabled =
                 parseBoolOrDie("prefetch.enabled", v);
         }},
        {"prefetch.buffer",
         [u](SystemConfig &c, const std::string &v) {
             c.device.prefetch.bufferEntries =
                 static_cast<unsigned>(u("prefetch.buffer", v));
         }},
        {"prefetch.history",
         [u](SystemConfig &c, const std::string &v) {
             c.device.prefetch.historyLength =
                 static_cast<unsigned>(u("prefetch.history", v));
         }},
        {"prefetch.pages",
         [u](SystemConfig &c, const std::string &v) {
             c.device.prefetch.pagesPerPrefetch =
                 static_cast<unsigned>(u("prefetch.pages", v));
         }},
        {"seed",
         [u](SystemConfig &c, const std::string &v) {
             c.seed = u("seed", v);
         }},
    };
    return table;
}

} // namespace

void
applyOverride(SystemConfig &config, const std::string &text)
{
    const size_t eq = text.find('=');
    if (eq == std::string::npos)
        fatal("override '%s' is not of the form key=value",
              text.c_str());
    const std::string key(trim(text.substr(0, eq)));
    const std::string value(trim(text.substr(eq + 1)));
    for (const auto &[name, setter] : setters()) {
        if (name == key) {
            setter(config, value);
            return;
        }
    }
    fatal("unknown configuration key '%s' (see "
          "supportedOverrideKeys())",
          key.c_str());
}

void
applyOverrides(SystemConfig &config,
               const std::vector<std::string> &overrides)
{
    for (const auto &text : overrides)
        applyOverride(config, text);
}

void
loadConfigFile(SystemConfig &config, const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open config file '%s'", path.c_str());
    std::string line;
    unsigned lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        const std::string_view body = trim(line);
        if (body.empty())
            continue;
        applyOverride(config, std::string(body));
    }
}

std::vector<std::string>
supportedOverrideKeys()
{
    std::vector<std::string> keys;
    keys.reserve(setters().size());
    for (const auto &[name, setter] : setters())
        keys.push_back(name);
    return keys;
}

} // namespace hypersio::core
