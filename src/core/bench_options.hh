/**
 * @file
 * The standard bench command line, split out of runner.hh so that
 * bench binaries (and bench/json_report.hh) that only need the
 * option block don't compile the whole experiment harness — and,
 * through it, the entire simulator — into their own translation
 * unit. That matters for the event-kernel microbench in particular:
 * its timed loops are header-inline, and pulling megabytes of
 * unrelated inline code into the same TU lets unit-growth inlining
 * heuristics reshape the very loops being measured.
 */

#ifndef HYPERSIO_CORE_BENCH_OPTIONS_HH
#define HYPERSIO_CORE_BENCH_OPTIONS_HH

#include <cstdint>
#include <string>

namespace hypersio::core
{

/** Worker-pool width default: hardware_concurrency, else 1. */
unsigned defaultBenchJobs();

/** Standard "--quick/--full/--scale/--jobs" command line for benches. */
struct BenchOptions
{
    double scale = 0.05;
    unsigned maxTenants = 1024;
    uint64_t seed = 42;
    unsigned jobs = defaultBenchJobs();
    bool verbose = false;
    /** `--json <file>`: machine-readable report destination. */
    std::string jsonPath;

    /** Parses argv; fatal() on unknown flags. */
    static BenchOptions parse(int argc, char **argv);
};

} // namespace hypersio::core

#endif // HYPERSIO_CORE_BENCH_OPTIONS_HH
