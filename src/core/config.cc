#include "core/config.hh"

#include <sstream>

#include "util/str.hh"

namespace hypersio::core
{

SystemConfig
SystemConfig::base()
{
    SystemConfig config;
    config.name = "base";
    config.device.ptbEntries = 1;
    config.device.devtlb = {64, 8, 1, cache::ReplPolicyKind::LFU, 7};
    config.device.prefetch.enabled = false;
    config.iommu.l2tlb = {512, 16, 1, cache::ReplPolicyKind::LFU, 2};
    config.iommu.l3tlb = {1024, 16, 1, cache::ReplPolicyKind::LFU, 3};
    return config;
}

SystemConfig
SystemConfig::hypertrio()
{
    SystemConfig config;
    config.name = "hypertrio";
    config.device.ptbEntries = 32;
    config.device.devtlb = {64, 8, 8, cache::ReplPolicyKind::LFU, 7};
    // The paper uses an 8-entry PB with a 48-access stride, tuned to
    // its testbed's prefetch latency. Our model's prefetch path is
    // shorter (~16 packet slots), so the calibrated defaults are a
    // 32-entry PB with a 20-packet stride; bench/fig12c_prefetch
    // sweeps both knobs (see EXPERIMENTS.md, calibration notes).
    config.device.prefetch.enabled = true;
    config.device.prefetch.bufferEntries = 32;
    config.device.prefetch.historyLength = 20;
    config.device.prefetch.pagesPerPrefetch = 2;
    config.iommu.l2tlb = {512, 16, 32, cache::ReplPolicyKind::LFU, 2};
    config.iommu.l3tlb = {1024, 16, 64, cache::ReplPolicyKind::LFU, 3};
    return config;
}

namespace
{

/** ", N sub-entries/tag" when sharing is on; empty otherwise. */
std::string
subEntrySuffix(const cache::CacheConfig &config)
{
    if (config.subEntries <= 1)
        return "";
    return strprintf(", %zu sub-entries/tag", config.subEntries);
}

} // namespace

std::string
SystemConfig::describe() const
{
    std::ostringstream os;
    os << "configuration '" << name << "'\n";
    os << strprintf("  link              %.0f Gb/s, %u B packets "
                    "(interval %.2f ns)\n",
                    link.gbps, link.packetBytes,
                    ticksToNs(link.packetInterval()));
    os << strprintf("  PCIe one-way      %.0f ns\n",
                    ticksToNs(pcieOneWay));
    os << strprintf("  DRAM latency      %.0f ns\n",
                    ticksToNs(memory.accessLatency));
    os << strprintf("  PTB               %u entries\n",
                    device.ptbEntries);
    os << strprintf("  DevTLB            %zu entries, %zu-way, "
                    "%zu partition(s), %s, hit %.0f ns%s\n",
                    device.devtlb.entries, device.devtlb.ways,
                    device.devtlb.partitions,
                    cache::replPolicyName(device.devtlb.policy),
                    ticksToNs(device.devtlbHitLatency),
                    subEntrySuffix(device.devtlb).c_str());
    os << strprintf("  IOTLB             %zu entries, %zu-way, %s, "
                    "hit %.0f ns\n",
                    iommu.iotlb.entries, iommu.iotlb.ways,
                    cache::replPolicyName(iommu.iotlb.policy),
                    ticksToNs(iommu.iotlbHitLatency));
    os << strprintf("  L2TLB             %zu entries, %zu-way, "
                    "%zu partition(s), %s%s\n",
                    iommu.l2tlb.entries, iommu.l2tlb.ways,
                    iommu.l2tlb.partitions,
                    cache::replPolicyName(iommu.l2tlb.policy),
                    subEntrySuffix(iommu.l2tlb).c_str());
    os << strprintf("  L3TLB             %zu entries, %zu-way, "
                    "%zu partition(s), %s%s\n",
                    iommu.l3tlb.entries, iommu.l3tlb.ways,
                    iommu.l3tlb.partitions,
                    cache::replPolicyName(iommu.l3tlb.policy),
                    subEntrySuffix(iommu.l3tlb).c_str());
    os << strprintf("  walkers           %u\n", iommu.walkers);
    if (!device.prefetch.enabled) {
        os << "  prefetch          off\n";
    } else if (device.prefetch.kind == PrefetchKind::MmuDma) {
        os << strprintf("  prefetch          MMU-aware DMA stride, "
                        "%u-entry buffer, %u page(s)/stream\n",
                        device.prefetch.bufferEntries,
                        device.prefetch.pagesPerPrefetch);
    } else {
        os << strprintf("  prefetch          %u-entry buffer, "
                        "%u-access stride, %u page(s)/tenant\n",
                        device.prefetch.bufferEntries,
                        device.prefetch.historyLength,
                        device.prefetch.pagesPerPrefetch);
    }
    return os.str();
}

oracle::ShadowConfig
toShadowConfig(const SystemConfig &config)
{
    oracle::ShadowConfig sc;
    sc.devtlbEntries = config.device.devtlb.entries;
    sc.devtlbWays = config.device.devtlb.ways;
    sc.devtlbPartitions = config.device.devtlb.partitions;
    sc.iotlbEntries = config.iommu.iotlb.entries;
    sc.iotlbWays = config.iommu.iotlb.ways;
    sc.iotlbPartitions = config.iommu.iotlb.partitions;
    sc.l2Entries = config.iommu.l2tlb.entries;
    sc.l2Ways = config.iommu.l2tlb.ways;
    sc.l2Partitions = config.iommu.l2tlb.partitions;
    sc.l3Entries = config.iommu.l3tlb.entries;
    sc.l3Ways = config.iommu.l3tlb.ways;
    sc.l3Partitions = config.iommu.l3tlb.partitions;
    sc.prefetchEnabled = config.device.prefetch.enabled;
    sc.pbEntries = config.device.prefetch.bufferEntries;
    sc.historyLength = config.device.prefetch.historyLength;
    sc.pagesPerPrefetch = config.device.prefetch.pagesPerPrefetch;
    sc.historyDepth = config.device.prefetch.historyDepth;
    sc.ptbEntries = config.device.ptbEntries;
    sc.walkers = config.iommu.walkers;
    sc.pagingLevels = config.iommu.pagingLevels;
    sc.devtlbSubEntries = config.device.devtlb.subEntries;
    sc.l2SubEntries = config.iommu.l2tlb.subEntries;
    sc.l3SubEntries = config.iommu.l3tlb.subEntries;
    sc.mmuPrefetch =
        config.device.prefetch.enabled &&
        config.device.prefetch.kind == PrefetchKind::MmuDma;
    return sc;
}

} // namespace hypersio::core
