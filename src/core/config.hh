/**
 * @file
 * Top-level system configuration and the Base / HyperTRIO presets.
 *
 * Latency and link parameters follow the paper's Table II; the Base
 * and HyperTRIO architectural presets follow Table IV. Every knob the
 * evaluation sweeps (DevTLB size/associativity/policy/partitions,
 * PTB depth, prefetcher parameters, paging-cache partitioning) is a
 * field here, so experiments are pure configuration.
 */

#ifndef HYPERSIO_CORE_CONFIG_HH
#define HYPERSIO_CORE_CONFIG_HH

#include <string>

#include "cache/set_assoc_cache.hh"
#include "iommu/iommu.hh"
#include "mem/memory_model.hh"
#include "oracle/shadow.hh"
#include "util/units.hh"

namespace hypersio::core
{

/** I/O link parameters (Table II). */
struct LinkConfig
{
    /** Nominal link bandwidth in Gb/s. */
    double gbps = 200.0;
    /** Wire size of one packet incl. inter-packet gap (Table II). */
    unsigned packetBytes = 1542;

    /** Ticks between back-to-back packet arrivals. */
    Tick
    packetInterval() const
    {
        return serializationTicks(packetBytes, gbps);
    }
};

/** Which prefetch mechanism drives the Prefetch Buffer. */
enum class PrefetchKind
{
    /**
     * The paper's scheme: SID predictor + History Reader fetching
     * each predicted tenant's recent gIOVAs from main memory.
     */
    SidPredictor,
    /**
     * MMU-aware DMA prefetch: a per-(tenant, request-class) stride
     * detector follows the descriptor-ring access pattern and pulls
     * the next ring pages through the IOMMU ahead of the demand
     * stream. No history reads from memory are needed.
     */
    MmuDma,
};

/** Translation-prefetching scheme parameters (Section III). */
struct PrefetchConfig
{
    bool enabled = false;
    /** Prefetch Buffer entries (fully associative; paper: 8). */
    unsigned bufferEntries = 8;
    /**
     * SID-predictor history length: the prediction targets the SID
     * expected this many packets in the future (paper: 48).
     */
    unsigned historyLength = 48;
    /** Most-recent gIOVAs prefetched per predicted SID (paper: 2). */
    unsigned pagesPerPrefetch = 2;
    /** Per-DID gIOVA history entries kept in main memory. */
    unsigned historyDepth = 4;
    /** Memory reads to fetch a tenant's history on a prefetch. */
    unsigned historyReadAccesses = 2;
    /** Mechanism selector (appended last; brace-inits keep working). */
    PrefetchKind kind = PrefetchKind::SidPredictor;
};

/** The I/O-device-side configuration. */
struct DeviceConfig
{
    /** Pending Translation Buffer entries (Table IV: 1 vs 32). */
    unsigned ptbEntries = 1;
    /** Device TLB geometry/policy (Table IV). */
    cache::CacheConfig devtlb{64, 8, 1, cache::ReplPolicyKind::LFU, 7};
    /** DevTLB hit latency (same 2 ns as the IOTLB, Table II). */
    Tick devtlbHitLatency = 2 * TicksPerNs;
    /** Context Cache geometry (device-resident per-VF state). */
    cache::CacheConfig contextCache{2048, 4, 1,
                                    cache::ReplPolicyKind::LRU, 11};
    PrefetchConfig prefetch;
};

/** Everything a System needs. */
struct SystemConfig
{
    std::string name = "base";
    LinkConfig link;
    DeviceConfig device;
    iommu::IommuConfig iommu;
    mem::MemoryConfig memory;
    /** One-way PCIe traversal latency (Table II: 450 ns). */
    Tick pcieOneWay = 450 * TicksPerNs;
    /** Seed for page-table frame assignment and policy randomness. */
    uint64_t seed = 42;
    /**
     * Packets admitted per link-arrival event. 1 reproduces the
     * classic one-event-per-slot arrival process exactly (the
     * default everywhere). Larger values drain up to this many
     * pending arrivals per event-kernel dispatch, spacing arrival
     * events by the batch's total serialization time — the same
     * offered load with ~1/batch the dispatch overhead. A PTB drop
     * ends the batch early; the dropped packet retries at the next
     * arrival event, exactly as in the per-slot process.
     */
    unsigned admitBatch = 1;
    /**
     * Hit-path event fusion (sim/event_queue.hh::tryFuseAdvance):
     * deterministic translation hops run as synchronous
     * continuations instead of separate events. Results are
     * bit-identical either way (gate 12 enforces it); OFF pins the
     * event-per-hop reference kernel for A/B measurement. Clamped to
     * off in -DHYPERSIO_EVENT_FUSION=OFF builds.
     */
    bool eventFusion = true;

    /**
     * The paper's Base configuration (Table IV): single-entry PTB,
     * unpartitioned 64-entry 8-way LFU DevTLB, unpartitioned paging
     * caches, no prefetching.
     */
    static SystemConfig base();

    /**
     * The paper's HyperTRIO configuration (Table IV): 32-entry PTB,
     * DevTLB with 8 partitions, L2 TLB with 32 partitions, L3 TLB
     * with 64 partitions, prefetching with an 8-entry buffer, a
     * 48-access history stride, and 2 pages of history per tenant.
     */
    static SystemConfig hypertrio();

    /** Renders the configuration as a Table II/IV-style text block. */
    std::string describe() const;
};

/**
 * The cache/predictor geometry the shadow oracle mirrors, extracted
 * from a full system configuration (see oracle/shadow.hh).
 */
oracle::ShadowConfig toShadowConfig(const SystemConfig &config);

} // namespace hypersio::core

#endif // HYPERSIO_CORE_CONFIG_HH
