/**
 * @file
 * Pending Translation Buffer (Section III).
 *
 * The PTB tracks every in-flight gIOVA→hPA translation on the
 * device, supporting out-of-order completion so a packet whose walk
 * is slow does not block later packets (no head-of-line blocking).
 * A packet that cannot allocate an entry at arrival time is dropped
 * and retried at the next link arrival slot.
 *
 * Each entry corresponds to one accepted packet working through its
 * (dependent) chain of translation requests: the ring-descriptor
 * pointer must be translated to learn the data-buffer address, and
 * the completion notification follows the data write — so a packet
 * holds one outstanding translation at a time, and the PTB depth
 * bounds the number of concurrently translating packets.
 */

#ifndef HYPERSIO_CORE_PTB_HH
#define HYPERSIO_CORE_PTB_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "mem/page_table.hh"
#include "trace/record.hh"
#include "util/logging.hh"
#include "util/units.hh"

namespace hypersio::core
{

/**
 * Receives packet completions from the device. The completed packet
 * identifies itself (SID, wire bytes, iovas), so one long-lived sink
 * serves every in-flight packet — unlike a per-packet closure, which
 * costs a std::function copy (and, past the small-buffer limit, a
 * heap allocation) on every accept.
 */
struct PacketCompletionSink
{
    virtual ~PacketCompletionSink() = default;
    /** All three of `packet`'s translations completed. */
    virtual void packetDone(const trace::PacketRecord &packet) = 0;
};

/**
 * One PTB entry: an accepted packet in translation. The entry IS the
 * packet's in-flight state — the completion target and the
 * parameters of the translation currently on the wire live here, so
 * per-hop events only need to carry the entry index.
 */
struct PtbEntry
{
    bool busy = false;
    trace::PacketRecord packet;
    /** Next request class to issue (0..2), 3 = all issued. */
    unsigned nextReq = 0;
    /** A prefetch was already triggered for this packet. */
    bool prefetchIssued = false;
    Tick accepted = 0;
    /** Completion target (the run loop); null when `done` is used. */
    PacketCompletionSink *sink = nullptr;
    /** Fires when all three translations complete (callback form;
     *  tests and ad-hoc drivers). */
    std::function<void()> done;
    /** Domain of the request currently outstanding. */
    mem::DomainId did = 0;
    /** Request class currently outstanding (set by each resolve). */
    trace::ReqClass curCls = trace::ReqClass::Ring;
};

/**
 * Fixed-capacity pool of PTB entries with a free list. Allocation
 * fails when full (the caller drops the packet).
 */
class PendingTranslationBuffer
{
  public:
    explicit PendingTranslationBuffer(unsigned entries)
    {
        HYPERSIO_ASSERT(entries >= 1, "PTB needs at least one entry");
        _pool.resize(entries);
        _free.reserve(entries);
        for (unsigned i = 0; i < entries; ++i)
            _free.push_back(entries - 1 - i);
    }

    unsigned capacity() const { return static_cast<unsigned>(
        _pool.size()); }
    unsigned inUse() const
    {
        return capacity() - static_cast<unsigned>(_free.size());
    }
    bool full() const { return _free.empty(); }

    /**
     * Allocates an entry for `packet`.
     * @return entry index, or -1 when the buffer is full.
     */
    int
    allocate(const trace::PacketRecord &packet, Tick now)
    {
        if (_free.empty())
            return -1;
        const unsigned idx = _free.back();
        _free.pop_back();
        PtbEntry &entry = _pool[idx];
        entry.busy = true;
        entry.packet = packet;
        entry.nextReq = 0;
        entry.prefetchIssued = false;
        entry.accepted = now;
        entry.sink = nullptr;
        return static_cast<int>(idx);
    }

    PtbEntry &
    entry(unsigned idx)
    {
        HYPERSIO_ASSERT(idx < _pool.size() && _pool[idx].busy,
                        "bad PTB index %u", idx);
        return _pool[idx];
    }

    /** Returns the entry to the free list. */
    void
    release(unsigned idx)
    {
        HYPERSIO_ASSERT(idx < _pool.size() && _pool[idx].busy,
                        "double free of PTB entry %u", idx);
        _pool[idx].busy = false;
        _pool[idx].done = nullptr;
        _free.push_back(idx);
    }

  private:
    std::vector<PtbEntry> _pool;
    std::vector<unsigned> _free;
};

} // namespace hypersio::core

#endif // HYPERSIO_CORE_PTB_HH
