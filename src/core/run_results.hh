/**
 * @file
 * The per-run results summary, split out of system.hh for the same
 * reason BenchOptions left runner.hh: bench/json_report.hh stores a
 * RunResults per sweep point, and keeping this struct in a leaf
 * header lets report-only translation units avoid compiling the
 * whole simulator.
 */

#ifndef HYPERSIO_CORE_RUN_RESULTS_HH
#define HYPERSIO_CORE_RUN_RESULTS_HH

#include <cstdint>
#include <string>

#include "util/units.hh"

namespace hypersio::json
{
class Writer;
}

namespace hypersio::core
{

/** Summary of one simulation run. */
struct RunResults
{
    std::string configName;
    uint64_t packetsProcessed = 0;
    uint64_t packetsDropped = 0;
    uint64_t translations = 0;
    Tick elapsed = 0;
    double achievedGbps = 0.0;
    double utilization = 0.0; ///< achievedGbps / nominal link rate

    double devtlbHitRate = 0.0;
    double pbHitRate = 0.0;    ///< PB hits / translation requests
    double iotlbHitRate = 0.0; ///< chipset IOTLB
    uint64_t walks = 0;
    uint64_t iommuRequests = 0;
    double avgPacketLatencyNs = 0.0;

    /** Exact (bit-identical doubles included) equality. */
    bool operator==(const RunResults &) const = default;
};

/**
 * Writes the results as one JSON object (snake_case keys, full
 * double precision) — the "results" block of the `--json` reports.
 */
void writeRunResultsJson(json::Writer &w, const RunResults &r);

} // namespace hypersio::core

#endif // HYPERSIO_CORE_RUN_RESULTS_HH
