/**
 * @file
 * Umbrella header: the public API of the HyperSIO/HyperTRIO library.
 *
 * Typical use:
 * @code
 *   using namespace hypersio;
 *   auto logs = workload::generateLogs(
 *       workload::Benchmark::Iperf3, 64, 42, 0.1);
 *   auto tr = trace::constructTrace(
 *       logs, trace::parseInterleaving("RR1"));
 *   core::System system(core::SystemConfig::hypertrio());
 *   auto results = system.run(tr);
 * @endcode
 */

#ifndef HYPERSIO_HYPERSIO_HH
#define HYPERSIO_HYPERSIO_HH

#include "cache/oracle_feed.hh"
#include "cache/replacement.hh"
#include "cache/set_assoc_cache.hh"
#include "core/chipset.hh"
#include "core/config.hh"
#include "core/device.hh"
#include "core/multi_system.hh"
#include "core/overrides.hh"
#include "core/prefetch.hh"
#include "core/ptb.hh"
#include "core/runner.hh"
#include "core/system.hh"
#include "iommu/context_cache.hh"
#include "iommu/iommu.hh"
#include "iommu/keys.hh"
#include "mem/addr.hh"
#include "mem/memory_model.hh"
#include "mem/page_table.hh"
#include "sim/event_queue.hh"
#include "sim/sim_object.hh"
#include "stats/stats.hh"
#include "trace/constructor.hh"
#include "trace/record.hh"
#include "trace/trace_file.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/units.hh"
#include "workload/benchmarks.hh"
#include "workload/log_text.hh"
#include "workload/tenant_model.hh"

#endif // HYPERSIO_HYPERSIO_HH
