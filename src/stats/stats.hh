/**
 * @file
 * Lightweight statistics package for the performance model.
 *
 * Components own a StatGroup and register named statistics in it.
 * Supported kinds: Counter (monotonic count), Scalar (arbitrary
 * value), Ratio (lazy quotient of two stats), and Histogram (fixed
 * linear bins plus underflow/overflow). Groups nest, and a whole tree
 * can be dumped as an aligned text table.
 */

#ifndef HYPERSIO_STATS_STATS_HH
#define HYPERSIO_STATS_STATS_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "util/json.hh"

namespace hypersio::stats
{

class Counter;
class Scalar;
class Ratio;
class Histogram;
class Callback;

/** Double-dispatch interface over the concrete stat kinds. */
class StatVisitor
{
  public:
    virtual ~StatVisitor() = default;

    virtual void visit(const Counter &c) = 0;
    virtual void visit(const Scalar &s) = 0;
    virtual void visit(const Ratio &r) = 0;
    virtual void visit(const Histogram &h) = 0;
    virtual void visit(const Callback &cb) = 0;
};

/** Base class for all named statistics. */
class StatBase
{
  public:
    StatBase(std::string name, std::string desc)
        : _name(std::move(name)), _desc(std::move(desc))
    {}
    virtual ~StatBase() = default;

    const std::string &name() const { return _name; }
    const std::string &desc() const { return _desc; }

    /** Current value as a double, for dumping and formulas. */
    virtual double value() const = 0;

    /** Resets the statistic to its initial state. */
    virtual void reset() = 0;

    /** Dispatches to the visitor overload for the concrete kind. */
    virtual void accept(StatVisitor &v) const = 0;

    /** Writes one or more table rows describing this stat. */
    virtual void dump(std::ostream &os, const std::string &prefix) const;

  private:
    std::string _name;
    std::string _desc;
};

/** Monotonically increasing event count. */
class Counter : public StatBase
{
  public:
    using StatBase::StatBase;

    Counter &operator++() { ++_count; return *this; }
    Counter &operator+=(uint64_t n) { _count += n; return *this; }

    uint64_t count() const { return _count; }
    double value() const override
    {
        return static_cast<double>(_count);
    }
    void reset() override { _count = 0; }
    void accept(StatVisitor &v) const override { v.visit(*this); }

  private:
    uint64_t _count = 0;
};

/** Arbitrary scalar value (can be set, not just incremented). */
class Scalar : public StatBase
{
  public:
    using StatBase::StatBase;

    Scalar &operator=(double v) { _value = v; return *this; }
    Scalar &operator+=(double v) { _value += v; return *this; }

    double value() const override { return _value; }
    void reset() override { _value = 0.0; }
    void accept(StatVisitor &v) const override { v.visit(*this); }

  private:
    double _value = 0.0;
};

/**
 * Lazy quotient of two other statistics, e.g. a miss rate. Evaluated
 * at dump time; reports 0 when the denominator is 0.
 */
class Ratio : public StatBase
{
  public:
    Ratio(std::string name, std::string desc, const StatBase &numer,
          const StatBase &denom)
        : StatBase(std::move(name), std::move(desc)), _numer(&numer),
          _denom(&denom)
    {}

    double
    value() const override
    {
        double d = _denom->value();
        return d == 0.0 ? 0.0 : _numer->value() / d;
    }
    void reset() override {}
    void accept(StatVisitor &v) const override { v.visit(*this); }

  private:
    const StatBase *_numer;
    const StatBase *_denom;
};

/**
 * Lazily evaluated statistic: value() calls back into the owning
 * component at dump time. Lets components that keep their counters
 * in plain structs (e.g. cache::CacheStats) appear in the stat tree
 * without double bookkeeping — the exported value can never drift
 * from the component's own copy. The source must outlive the group.
 */
class Callback : public StatBase
{
  public:
    using Source = std::function<double()>;

    Callback(std::string name, std::string desc, Source source)
        : StatBase(std::move(name), std::move(desc)),
          _source(std::move(source))
    {}

    double value() const override { return _source(); }
    /** The owning component resets its own state. */
    void reset() override {}
    void accept(StatVisitor &v) const override { v.visit(*this); }

  private:
    Source _source;
};

/** Linear-binned histogram with underflow/overflow buckets. */
class Histogram : public StatBase
{
  public:
    /**
     * @param lo lower bound of the first bin
     * @param hi upper bound of the last bin (exclusive)
     * @param nbins number of equal-width bins between lo and hi
     */
    Histogram(std::string name, std::string desc, double lo, double hi,
              size_t nbins);

    /** Records one sample. */
    void sample(double v, uint64_t count = 1);

    uint64_t samples() const { return _samples; }
    double mean() const;
    double stddev() const;
    double min() const { return _min; }
    double max() const { return _max; }
    uint64_t binCount(size_t idx) const { return _bins.at(idx); }
    uint64_t underflow() const { return _underflow; }
    uint64_t overflow() const { return _overflow; }
    size_t numBins() const { return _bins.size(); }
    double lo() const { return _lo; }
    double hi() const { return _hi; }

    /**
     * Estimates the p-th percentile (p in [0, 100]) from the binned
     * distribution: the rank is located in the cumulative counts and
     * interpolated linearly inside its bin. Ranks that land in the
     * underflow (overflow) bucket report min() (max()), and the
     * result is clamped to the observed [min, max] range. 0 with no
     * samples.
     */
    double percentile(double p) const;

    /** Mean; dumps the full distribution. */
    double value() const override { return mean(); }
    void reset() override;
    void accept(StatVisitor &v) const override { v.visit(*this); }
    void dump(std::ostream &os, const std::string &prefix) const override;

  private:
    double _lo;
    double _hi;
    std::vector<uint64_t> _bins;
    uint64_t _underflow = 0;
    uint64_t _overflow = 0;
    uint64_t _samples = 0;
    double _sum = 0.0;
    double _sumSq = 0.0;
    double _min = 0.0;
    double _max = 0.0;
};

/**
 * A named collection of statistics and child groups. Components create
 * stats through the make* factories; the group owns them.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : _name(std::move(name)) {}

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    const std::string &name() const { return _name; }

    Counter &makeCounter(const std::string &name,
                         const std::string &desc);
    Scalar &makeScalar(const std::string &name, const std::string &desc);
    Ratio &makeRatio(const std::string &name, const std::string &desc,
                     const StatBase &numer, const StatBase &denom);
    Histogram &makeHistogram(const std::string &name,
                             const std::string &desc, double lo,
                             double hi, size_t nbins);
    Callback &makeCallback(const std::string &name,
                           const std::string &desc,
                           Callback::Source source);

    /** Creates (or returns an existing) nested child group. */
    StatGroup &child(const std::string &name);

    /** Finds a stat by name in this group only; nullptr if missing. */
    const StatBase *find(const std::string &name) const;

    /** Applies `fn` to every stat in this group (not children). */
    template <typename Fn>
    void
    forEachStat(Fn &&fn) const
    {
        for (const auto &s : _stats)
            fn(*s);
    }

    /** Applies `fn` to every direct child group. */
    template <typename Fn>
    void
    forEachChild(Fn &&fn) const
    {
        for (const auto &c : _children)
            fn(*c);
    }

    /** Resets all stats in this group and all children. */
    void resetAll();

    /** Dumps this group and children as "prefix.name value # desc". */
    void dump(std::ostream &os, const std::string &prefix = "") const;

  private:
    std::string _name;
    std::vector<std::unique_ptr<StatBase>> _stats;
    std::vector<std::unique_ptr<StatGroup>> _children;
};

/**
 * StatVisitor that renders a stat tree as JSON through a
 * json::Writer. Each group becomes
 *   {"name": ..., "stats": [...], "children": [...]}
 * and each stat an object tagged with its "kind". Histograms carry
 * the full distribution (bounds, bins, moments) plus p50/p90/p99
 * percentile estimates.
 */
class JsonWriter : public StatVisitor
{
  public:
    explicit JsonWriter(json::Writer &out) : _out(out) {}

    /** Writes `group` and its subtree as one JSON object. */
    void write(const StatGroup &group);

    void visit(const Counter &c) override;
    void visit(const Scalar &s) override;
    void visit(const Ratio &r) override;
    void visit(const Histogram &h) override;
    void visit(const Callback &cb) override;

  private:
    void leaf(const StatBase &stat, const char *kind);

    json::Writer &_out;
};

/** Dumps a stat tree as JSON; compact single line when indent is 0. */
void writeJson(const StatGroup &group, std::ostream &os,
               unsigned indent = 2);

/** writeJson into a string (always compact). */
std::string toJsonString(const StatGroup &group);

} // namespace hypersio::stats

#endif // HYPERSIO_STATS_STATS_HH
