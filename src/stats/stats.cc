#include "stats/stats.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "util/logging.hh"

namespace hypersio::stats
{

void
StatBase::dump(std::ostream &os, const std::string &prefix) const
{
    os << std::left << std::setw(48) << (prefix + _name) << " "
       << std::right << std::setw(16) << value() << "  # " << _desc
       << "\n";
}

Histogram::Histogram(std::string name, std::string desc, double lo,
                     double hi, size_t nbins)
    : StatBase(std::move(name), std::move(desc)), _lo(lo), _hi(hi),
      _bins(nbins, 0)
{
    HYPERSIO_ASSERT(hi > lo && nbins > 0, "bad histogram bounds");
}

void
Histogram::sample(double v, uint64_t count)
{
    if (_samples == 0) {
        _min = v;
        _max = v;
    } else {
        if (v < _min)
            _min = v;
        if (v > _max)
            _max = v;
    }
    _samples += count;
    _sum += v * static_cast<double>(count);
    _sumSq += v * v * static_cast<double>(count);

    if (v < _lo) {
        _underflow += count;
    } else if (v >= _hi) {
        _overflow += count;
    } else {
        double width = (_hi - _lo) / static_cast<double>(_bins.size());
        auto idx = static_cast<size_t>((v - _lo) / width);
        if (idx >= _bins.size())
            idx = _bins.size() - 1;
        _bins[idx] += count;
    }
}

double
Histogram::mean() const
{
    return _samples == 0 ? 0.0
                         : _sum / static_cast<double>(_samples);
}

double
Histogram::stddev() const
{
    if (_samples < 2)
        return 0.0;
    double n = static_cast<double>(_samples);
    double var = (_sumSq - _sum * _sum / n) / (n - 1);
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

double
Histogram::percentile(double p) const
{
    if (_samples == 0)
        return 0.0;
    p = std::clamp(p, 0.0, 100.0);
    // Rank of the requested sample, 1-based over all buckets in
    // value order: underflow, the linear bins, overflow.
    const double rank =
        p / 100.0 * static_cast<double>(_samples - 1) + 1.0;
    double cum = static_cast<double>(_underflow);
    if (rank <= cum)
        return _min;
    const double width =
        (_hi - _lo) / static_cast<double>(_bins.size());
    for (size_t i = 0; i < _bins.size(); ++i) {
        if (_bins[i] == 0)
            continue;
        const double in_bin = static_cast<double>(_bins[i]);
        if (rank <= cum + in_bin) {
            const double frac = (rank - cum) / in_bin;
            const double v = _lo + width * (static_cast<double>(i) +
                                            frac);
            return std::clamp(v, _min, _max);
        }
        cum += in_bin;
    }
    return _max; // rank lands in the overflow bucket
}

void
Histogram::reset()
{
    std::fill(_bins.begin(), _bins.end(), 0);
    _underflow = 0;
    _overflow = 0;
    _samples = 0;
    _sum = 0.0;
    _sumSq = 0.0;
    _min = 0.0;
    _max = 0.0;
}

void
Histogram::dump(std::ostream &os, const std::string &prefix) const
{
    os << std::left << std::setw(48) << (prefix + name() + ".mean")
       << " " << std::right << std::setw(16) << mean() << "  # "
       << desc() << " (mean)\n";
    os << std::left << std::setw(48) << (prefix + name() + ".samples")
       << " " << std::right << std::setw(16) << _samples << "  # "
       << desc() << " (samples)\n";
    if (_samples == 0)
        return;
    os << std::left << std::setw(48) << (prefix + name() + ".min") << " "
       << std::right << std::setw(16) << _min << "\n";
    os << std::left << std::setw(48) << (prefix + name() + ".max") << " "
       << std::right << std::setw(16) << _max << "\n";
    double width = (_hi - _lo) / static_cast<double>(_bins.size());
    for (size_t i = 0; i < _bins.size(); ++i) {
        if (_bins[i] == 0)
            continue;
        std::ostringstream label;
        label << prefix << name() << ".bin[" << (_lo + width * i) << ","
              << (_lo + width * (i + 1)) << ")";
        os << std::left << std::setw(48) << label.str() << " "
           << std::right << std::setw(16) << _bins[i] << "\n";
    }
    if (_underflow)
        os << std::left << std::setw(48)
           << (prefix + name() + ".underflow") << " " << std::right
           << std::setw(16) << _underflow << "\n";
    if (_overflow)
        os << std::left << std::setw(48)
           << (prefix + name() + ".overflow") << " " << std::right
           << std::setw(16) << _overflow << "\n";
}

Counter &
StatGroup::makeCounter(const std::string &name, const std::string &desc)
{
    auto stat = std::make_unique<Counter>(name, desc);
    Counter &ref = *stat;
    _stats.push_back(std::move(stat));
    return ref;
}

Scalar &
StatGroup::makeScalar(const std::string &name, const std::string &desc)
{
    auto stat = std::make_unique<Scalar>(name, desc);
    Scalar &ref = *stat;
    _stats.push_back(std::move(stat));
    return ref;
}

Ratio &
StatGroup::makeRatio(const std::string &name, const std::string &desc,
                     const StatBase &numer, const StatBase &denom)
{
    auto stat = std::make_unique<Ratio>(name, desc, numer, denom);
    Ratio &ref = *stat;
    _stats.push_back(std::move(stat));
    return ref;
}

Histogram &
StatGroup::makeHistogram(const std::string &name,
                         const std::string &desc, double lo, double hi,
                         size_t nbins)
{
    auto stat = std::make_unique<Histogram>(name, desc, lo, hi, nbins);
    Histogram &ref = *stat;
    _stats.push_back(std::move(stat));
    return ref;
}

Callback &
StatGroup::makeCallback(const std::string &name,
                        const std::string &desc,
                        Callback::Source source)
{
    HYPERSIO_ASSERT(source != nullptr,
                    "callback stat '%s' needs a source",
                    name.c_str());
    auto stat =
        std::make_unique<Callback>(name, desc, std::move(source));
    Callback &ref = *stat;
    _stats.push_back(std::move(stat));
    return ref;
}

StatGroup &
StatGroup::child(const std::string &name)
{
    for (auto &c : _children) {
        if (c->name() == name)
            return *c;
    }
    _children.push_back(std::make_unique<StatGroup>(name));
    return *_children.back();
}

const StatBase *
StatGroup::find(const std::string &name) const
{
    for (const auto &s : _stats) {
        if (s->name() == name)
            return s.get();
    }
    return nullptr;
}

void
StatGroup::resetAll()
{
    for (auto &s : _stats)
        s->reset();
    for (auto &c : _children)
        c->resetAll();
}

void
StatGroup::dump(std::ostream &os, const std::string &prefix) const
{
    std::string full = prefix.empty() ? _name : prefix + "." + _name;
    for (const auto &s : _stats)
        s->dump(os, full + ".");
    for (const auto &c : _children)
        c->dump(os, full);
}

void
JsonWriter::leaf(const StatBase &stat, const char *kind)
{
    _out.beginObject();
    _out.key("name");
    _out.value(stat.name());
    _out.key("kind");
    _out.value(kind);
    _out.key("value");
    _out.value(stat.value());
    if (!stat.desc().empty()) {
        _out.key("desc");
        _out.value(stat.desc());
    }
}

void
JsonWriter::visit(const Counter &c)
{
    leaf(c, "counter");
    _out.key("count");
    _out.value(c.count());
    _out.endObject();
}

void
JsonWriter::visit(const Scalar &s)
{
    leaf(s, "scalar");
    _out.endObject();
}

void
JsonWriter::visit(const Ratio &r)
{
    leaf(r, "ratio");
    _out.endObject();
}

void
JsonWriter::visit(const Callback &cb)
{
    leaf(cb, "callback");
    _out.endObject();
}

void
JsonWriter::visit(const Histogram &h)
{
    leaf(h, "histogram");
    _out.key("samples");
    _out.value(h.samples());
    _out.key("mean");
    _out.value(h.mean());
    _out.key("stddev");
    _out.value(h.stddev());
    _out.key("min");
    _out.value(h.min());
    _out.key("max");
    _out.value(h.max());
    _out.key("lo");
    _out.value(h.lo());
    _out.key("hi");
    _out.value(h.hi());
    _out.key("underflow");
    _out.value(h.underflow());
    _out.key("overflow");
    _out.value(h.overflow());
    _out.key("bins");
    _out.beginArray();
    for (size_t i = 0; i < h.numBins(); ++i)
        _out.value(h.binCount(i));
    _out.endArray();
    _out.key("percentiles");
    _out.beginObject();
    for (const auto &[label, p] :
         {std::pair<const char *, double>{"p50", 50.0},
          {"p90", 90.0},
          {"p99", 99.0}}) {
        _out.key(label);
        _out.value(h.percentile(p));
    }
    _out.endObject();
    _out.endObject();
}

void
JsonWriter::write(const StatGroup &group)
{
    _out.beginObject();
    _out.key("name");
    _out.value(group.name());
    _out.key("stats");
    _out.beginArray();
    group.forEachStat(
        [this](const StatBase &stat) { stat.accept(*this); });
    _out.endArray();
    _out.key("children");
    _out.beginArray();
    group.forEachChild(
        [this](const StatGroup &child) { write(child); });
    _out.endArray();
    _out.endObject();
}

void
writeJson(const StatGroup &group, std::ostream &os, unsigned indent)
{
    json::Writer out(os, indent);
    JsonWriter writer(out);
    writer.write(group);
}

std::string
toJsonString(const StatGroup &group)
{
    std::ostringstream os;
    writeJson(group, os, 0);
    return os.str();
}

} // namespace hypersio::stats
