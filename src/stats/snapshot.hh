/**
 * @file
 * Interval-delta telemetry over a statistics tree.
 *
 * The stat tree (stats.hh) carries cumulative values: counters only
 * grow, histograms only accumulate. A long-haul run cares about the
 * *trajectory* — did this interval's throughput, hit rate, or memory
 * differ from the last one? — so the Snapshotter walks the tree
 * through the StatVisitor double dispatch, flattens every stat to a
 * dotted path, and diffs each cumulative value against the previous
 * capture. One capture is a Snapshot; a run emits a stream of them
 * (one JSON object per line, schema "hypersio-soak-1"), which
 * scripts/soak_report.py turns into trend slopes and a drift/leak
 * gate.
 *
 * Delta semantics:
 *  - First capture: the implicit previous snapshot is the zero state,
 *    so every delta equals the cumulative value.
 *  - Counters and histogram sample counts are monotonic; a cumulative
 *    value *below* the previous capture means the stat was reset (or
 *    wrapped), and the delta is the new cumulative value — the
 *    accumulation since the reset — never a negative number.
 *  - Scalars, ratios, and callbacks may legitimately fall (occupancy,
 *    miss rates), so their deltas are plain differences.
 *  - Stats first seen mid-run (a lazily created child group) get
 *    first-capture semantics on their first appearance.
 *
 * Everything in a Snapshot except the `wall` block is a pure function
 * of the simulation state, so same-seed runs produce byte-identical
 * snapshot streams when the wall block is excluded — the determinism
 * contract tests/test_soak.cc enforces.
 */

#ifndef HYPERSIO_STATS_SNAPSHOT_HH
#define HYPERSIO_STATS_SNAPSHOT_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "stats/stats.hh"
#include "util/json.hh"

namespace hypersio::stats
{

/** One flattened stat in a snapshot: cumulative value plus delta. */
struct SnapshotEntry
{
    std::string path; ///< dotted path from the tree root
    const char *kind = "";
    double value = 0.0; ///< cumulative value at capture time
    double delta = 0.0; ///< change since the previous capture

    // Histogram extras. Sample counts delta like counters; the
    // percentile estimates are cumulative (the binned distribution
    // cannot be un-merged per interval).
    bool isHistogram = false;
    uint64_t samples = 0;
    uint64_t deltaSamples = 0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
};

/** One interval capture of a stat tree. */
struct Snapshot
{
    uint64_t interval = 0; ///< 0-based capture index
    uint64_t simTicks = 0;
    uint64_t deltaSimTicks = 0;
    std::vector<SnapshotEntry> entries;

    // Wall-clock / process telemetry. Nondeterministic by nature;
    // serialized under the single "wall" member so tools (and the
    // byte-identity tests) can exclude exactly one sub-object.
    double wallSeconds = 0.0;
    double deltaWallSeconds = 0.0;
    bool rssKnown = false;
    uint64_t vmRssKib = 0;
    uint64_t vmHwmKib = 0;
};

/**
 * Walks a stat tree and produces interval-delta Snapshots. The tree
 * must outlive the Snapshotter; capture() is observation-only (it
 * never mutates a stat), which is what lets the soak harness call it
 * from inside a running simulation without perturbing results.
 */
class Snapshotter
{
  public:
    explicit Snapshotter(const StatGroup &root) : _root(&root) {}

    /**
     * Captures the tree's current state and diffs it against the
     * previous capture. @param sim_ticks the simulated clock at
     * capture time; @param wall_seconds wall clock since run start
     * (0 when the caller doesn't track one).
     */
    Snapshot capture(uint64_t sim_ticks, double wall_seconds = 0.0);

    /** Captures taken so far (== the next snapshot's interval). */
    uint64_t captures() const { return _captures; }

    /**
     * Fills snap's VmRSS/VmHWM fields from /proc/self/status.
     * rssKnown stays false when procfs or the fields are unavailable
     * — consumers must treat that as "no measurement", never 0.
     */
    static void sampleProcessRss(Snapshot &snap);

  private:
    struct PrevEntry
    {
        double value = 0.0;
        uint64_t samples = 0;
    };

    const StatGroup *_root;
    uint64_t _captures = 0;
    uint64_t _prevTicks = 0;
    double _prevWall = 0.0;
    std::unordered_map<std::string, PrevEntry> _prev;
};

/**
 * Writes one snapshot as a "hypersio-soak-1" JSON object: shard and
 * seed identify the emitting simulation, `stats` carries the
 * flattened entries, and the nondeterministic process telemetry goes
 * under `wall` (omitted entirely when include_wall is false — the
 * byte-identity form).
 */
void writeSnapshotJson(json::Writer &w, const Snapshot &snap,
                       unsigned shard, uint64_t seed,
                       bool include_wall = true);

/** writeSnapshotJson as one compact line (JSONL form). */
std::string snapshotToJsonLine(const Snapshot &snap, unsigned shard,
                               uint64_t seed,
                               bool include_wall = true);

} // namespace hypersio::stats

#endif // HYPERSIO_STATS_SNAPSHOT_HH
