#include "stats/snapshot.hh"

#include <fstream>
#include <sstream>
#include <string_view>
#include <utility>

#include "util/str.hh"

namespace hypersio::stats
{

namespace
{

/**
 * Flattens one group's stats into SnapshotEntry records. Kind tags
 * match JsonWriter's so the two serializations agree on vocabulary.
 */
class FlattenVisitor : public StatVisitor
{
  public:
    FlattenVisitor(std::vector<SnapshotEntry> &out, std::string &path)
        : _out(out), _path(path)
    {}

    void
    visit(const Counter &c) override
    {
        leaf(c, "counter");
    }

    void
    visit(const Scalar &s) override
    {
        leaf(s, "scalar");
    }

    void
    visit(const Ratio &r) override
    {
        leaf(r, "ratio");
    }

    void
    visit(const Histogram &h) override
    {
        SnapshotEntry &e = leaf(h, "histogram");
        e.isHistogram = true;
        e.samples = h.samples();
        e.p50 = h.percentile(50.0);
        e.p90 = h.percentile(90.0);
        e.p99 = h.percentile(99.0);
    }

    void
    visit(const Callback &cb) override
    {
        leaf(cb, "callback");
    }

  private:
    SnapshotEntry &
    leaf(const StatBase &stat, const char *kind)
    {
        SnapshotEntry entry;
        entry.path = _path + "." + stat.name();
        entry.kind = kind;
        entry.value = stat.value();
        _out.push_back(std::move(entry));
        return _out.back();
    }

    std::vector<SnapshotEntry> &_out;
    std::string &_path;
};

void
flattenGroup(const StatGroup &group, std::string &path,
             std::vector<SnapshotEntry> &out)
{
    const size_t prefix_len = path.size();
    if (!path.empty())
        path += '.';
    path += group.name();

    FlattenVisitor visitor(out, path);
    group.forEachStat(
        [&](const StatBase &stat) { stat.accept(visitor); });
    group.forEachChild([&](const StatGroup &child) {
        flattenGroup(child, path, out);
    });

    path.resize(prefix_len);
}

/** Monotonic delta with the counter wrap/reset rule. */
uint64_t
monotonicDelta(uint64_t current, uint64_t previous)
{
    return current >= previous ? current - previous : current;
}

} // namespace

Snapshot
Snapshotter::capture(uint64_t sim_ticks, double wall_seconds)
{
    Snapshot snap;
    snap.interval = _captures;
    snap.simTicks = sim_ticks;
    snap.deltaSimTicks = monotonicDelta(sim_ticks, _prevTicks);
    snap.wallSeconds = wall_seconds;
    snap.deltaWallSeconds = wall_seconds >= _prevWall
                                ? wall_seconds - _prevWall
                                : wall_seconds;

    std::string path;
    flattenGroup(*_root, path, snap.entries);

    for (SnapshotEntry &entry : snap.entries) {
        // Unseen paths (first capture, or a lazily created child
        // group) diff against the zero state.
        const PrevEntry prev = [&] {
            auto it = _prev.find(entry.path);
            return it == _prev.end() ? PrevEntry{} : it->second;
        }();

        // Only counters are monotonic in `value`; a histogram's
        // value is its mean, which may fall (its *sample count* is
        // the monotonic quantity, handled below).
        const bool monotonic =
            std::string_view(entry.kind) == "counter";
        if (monotonic && entry.value < prev.value) {
            // Reset/wrap: credit the accumulation since the reset.
            entry.delta = entry.value;
        } else {
            entry.delta = entry.value - prev.value;
        }
        if (entry.isHistogram) {
            entry.deltaSamples =
                monotonicDelta(entry.samples, prev.samples);
        }
        _prev[entry.path] = {entry.value, entry.samples};
    }

    _prevTicks = sim_ticks;
    _prevWall = wall_seconds;
    ++_captures;
    return snap;
}

void
Snapshotter::sampleProcessRss(Snapshot &snap)
{
    std::ifstream status("/proc/self/status");
    if (!status)
        return;
    std::ostringstream text;
    text << status.rdbuf();
    const std::string blob = text.str();
    uint64_t rss = 0;
    uint64_t hwm = 0;
    if (!parseVmRssKib(blob, rss) || !parseVmHwmKib(blob, hwm))
        return;
    snap.rssKnown = true;
    snap.vmRssKib = rss;
    snap.vmHwmKib = hwm;
}

void
writeSnapshotJson(json::Writer &w, const Snapshot &snap,
                  unsigned shard, uint64_t seed, bool include_wall)
{
    w.beginObject();
    w.key("schema");
    w.value("hypersio-soak-1");
    w.key("shard");
    w.value(shard);
    w.key("seed");
    w.value(seed);
    w.key("interval");
    w.value(snap.interval);
    w.key("sim_ticks");
    w.value(snap.simTicks);
    w.key("delta_sim_ticks");
    w.value(snap.deltaSimTicks);
    w.key("stats");
    w.beginArray();
    for (const SnapshotEntry &entry : snap.entries) {
        w.beginObject();
        w.key("path");
        w.value(entry.path);
        w.key("kind");
        w.value(entry.kind);
        w.key("value");
        w.value(entry.value);
        w.key("delta");
        w.value(entry.delta);
        if (entry.isHistogram) {
            w.key("samples");
            w.value(entry.samples);
            w.key("delta_samples");
            w.value(entry.deltaSamples);
            w.key("p50");
            w.value(entry.p50);
            w.key("p90");
            w.value(entry.p90);
            w.key("p99");
            w.value(entry.p99);
        }
        w.endObject();
    }
    w.endArray();
    if (include_wall) {
        w.key("wall");
        w.beginObject();
        w.key("seconds");
        w.value(snap.wallSeconds);
        w.key("delta_seconds");
        w.value(snap.deltaWallSeconds);
        if (snap.rssKnown) {
            w.key("vm_rss_kib");
            w.value(snap.vmRssKib);
            w.key("vm_hwm_kib");
            w.value(snap.vmHwmKib);
        }
        w.endObject();
    }
    w.endObject();
}

std::string
snapshotToJsonLine(const Snapshot &snap, unsigned shard,
                   uint64_t seed, bool include_wall)
{
    std::ostringstream os;
    json::Writer w(os, 0);
    writeSnapshotJson(w, snap, shard, seed, include_wall);
    return os.str();
}

} // namespace hypersio::stats
