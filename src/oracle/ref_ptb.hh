/**
 * @file
 * Untimed reference model of the Pending Translation Buffer: a pool
 * of `capacity` slots with allocate / release / drop events. The
 * timed PTB may complete packets out of order and drop-and-retry on
 * full; the reference only tracks which slots are live and checks
 * the occupancy invariants on every event.
 */

#ifndef HYPERSIO_ORACLE_REF_PTB_HH
#define HYPERSIO_ORACLE_REF_PTB_HH

#include <optional>
#include <string>
#include <unordered_set>

#include "util/str.hh"

namespace hypersio::oracle
{

/** Slot-occupancy reference for the PTB. */
class RefPtb
{
  public:
    void
    configure(unsigned capacity)
    {
        _capacity = capacity;
        _live.clear();
    }

    /** A packet was accepted into slot `idx`. */
    std::optional<std::string>
    allocated(unsigned idx, unsigned reported_in_use)
    {
        if (idx >= _capacity) {
            return strprintf("PTB: allocated slot %u beyond "
                             "capacity %u",
                             idx, _capacity);
        }
        if (!_live.insert(idx).second)
            return strprintf("PTB: slot %u allocated twice", idx);
        if (_live.size() != reported_in_use) {
            return strprintf("PTB: occupancy %u reported after "
                             "allocate, reference holds %zu",
                             reported_in_use, _live.size());
        }
        return std::nullopt;
    }

    /** A packet completed and freed slot `idx`. */
    std::optional<std::string>
    released(unsigned idx, unsigned reported_in_use)
    {
        if (_live.erase(idx) == 0)
            return strprintf("PTB: released idle slot %u", idx);
        if (_live.size() != reported_in_use) {
            return strprintf("PTB: occupancy %u reported after "
                             "release, reference holds %zu",
                             reported_in_use, _live.size());
        }
        return std::nullopt;
    }

    /** A packet was dropped because the PTB reported full. */
    std::optional<std::string>
    dropped() const
    {
        if (_live.size() != _capacity) {
            return strprintf("PTB: packet dropped at occupancy "
                             "%zu/%u — drops are only legal when "
                             "full",
                             _live.size(), _capacity);
        }
        return std::nullopt;
    }

    size_t inUse() const { return _live.size(); }
    unsigned capacity() const { return _capacity; }

  private:
    unsigned _capacity = 0;
    std::unordered_set<unsigned> _live;
};

} // namespace hypersio::oracle

#endif // HYPERSIO_ORACLE_REF_PTB_HH
