/**
 * @file
 * Shadow-mode hook macro for the timed model.
 *
 * Instrumented code reports events as
 *
 *     HYPERSIO_SHADOW(deviceDevtlbLookup(sid, did, iova, size,
 *                                        set, hit, value));
 *
 * In HYPERSIO_CHECKED builds this forwards the call to the current
 * thread's ShadowChecker when one is installed (the arguments are
 * evaluated only then, so even O(entries) snapshot arguments cost
 * nothing while no checker is active). In unchecked builds the macro
 * expands to nothing and the oracle adds zero code and zero cycles.
 */

#ifndef HYPERSIO_ORACLE_HOOKS_HH
#define HYPERSIO_ORACLE_HOOKS_HH

#ifdef HYPERSIO_CHECKED

#include "oracle/shadow.hh"

#define HYPERSIO_SHADOW(call)                                         \
    do {                                                              \
        if (::hypersio::oracle::ShadowChecker *shadow_ =              \
                ::hypersio::oracle::shadowChecker())                  \
            shadow_->call;                                            \
    } while (0)

#else

#define HYPERSIO_SHADOW(call)                                         \
    do {                                                              \
    } while (0)

#endif // HYPERSIO_CHECKED

#endif // HYPERSIO_ORACLE_HOOKS_HH
