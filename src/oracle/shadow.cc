#include "oracle/shadow.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "iommu/iommu.hh"
#include "iommu/keys.hh"
#include "oracle/fault_injection.hh"
#include "oracle/ref_walk.hh"
#include "util/logging.hh"

namespace hypersio::oracle
{

namespace
{

/** Violations stored per checker; the count keeps going past this. */
constexpr size_t MaxStoredViolations = 100;

thread_local ShadowChecker *tls_checker = nullptr;

bool
initialAutoCheck()
{
    const char *env = std::getenv("HYPERSIO_SHADOW");
    if (!env)
        return true;
    return std::strcmp(env, "off") != 0 && std::strcmp(env, "0") != 0;
}

std::atomic<bool> auto_check{initialAutoCheck()};

long long
optionalSid(const std::optional<uint32_t> &sid)
{
    return sid ? static_cast<long long>(*sid) : -1;
}

} // namespace

// Collects the failure message of any check that does not hold.
#define SHADOW_CHECK(cond, ...)                                       \
    do {                                                              \
        if (!(cond))                                                  \
            record(strprintf(__VA_ARGS__));                           \
    } while (0)

FaultInjection &
faultInjection()
{
    static FaultInjection injection;
    return injection;
}

ShadowChecker::ShadowChecker(const ShadowConfig &config,
                             const iommu::PageTableDirectory *tables,
                             bool fail_fast)
    : _config(config), _tables(tables), _failFast(fail_fast)
{
    _devtlb.configure("DevTLB", config.devtlbEntries,
                      config.devtlbWays, config.devtlbPartitions,
                      /*check_values=*/true,
                      config.devtlbSubEntries);
    const size_t pb = config.pbEntries ? config.pbEntries : 1;
    _pb.configure("PB", pb, pb, 1); // fully associative
    _iotlb.configure("IOTLB", config.iotlbEntries, config.iotlbWays,
                     config.iotlbPartitions);
    _l2.configure("L2TLB", config.l2Entries, config.l2Ways,
                  config.l2Partitions, /*check_values=*/false,
                  config.l2SubEntries);
    _l3.configure("L3TLB", config.l3Entries, config.l3Ways,
                  config.l3Partitions, /*check_values=*/false,
                  config.l3SubEntries);
    _ptb.configure(config.ptbEntries);
    _predictor.configure(config.historyLength);
    _history.configure(config.historyDepth);
}

void
ShadowChecker::record(std::optional<std::string> violation)
{
    if (!violation)
        return;
    ++_violationCount;
    if (_failFast)
        panic("shadow oracle: %s", violation->c_str());
    if (_violations.size() < MaxStoredViolations)
        _violations.push_back(std::move(*violation));
}

void
ShadowChecker::checkFillFresh(const char *what, mem::DomainId did,
                              mem::Iova iova, mem::Addr value)
{
    // Freshness: a fill that installs into a device-side translation
    // cache must agree with the functional tables *at install time*.
    // An unmap between the walk and the fill's arrival must squash
    // the fill (never install), so a surviving fill implies the page
    // is still mapped and its frame unchanged. The comparison is
    // frame-granular: a cached IOTLB response carries the offset of
    // the iova that originally filled it, so only the page frame of
    // the value is authoritative.
    if (!_tables)
        return;
    const mem::PageTable *table = _tables->find(did);
    mem::Translation ref;
    if (table)
        ref = table->translate(iova);
    SHADOW_CHECK(ref.valid,
                 "%s fill of did=%u iova=%#llx, but the functional "
                 "tables say the page is unmapped (stale fill not "
                 "squashed)",
                 what, did, (unsigned long long)iova);
    if (ref.valid) {
        SHADOW_CHECK(mem::pageBase(value, ref.pageSize) ==
                         mem::pageBase(ref.hostAddr, ref.pageSize),
                     "%s fill of did=%u iova=%#llx installs hPA "
                     "frame %#llx, functional tables say %#llx "
                     "(stale fill not squashed)",
                     what, did, (unsigned long long)iova,
                     (unsigned long long)mem::pageBase(value,
                                                       ref.pageSize),
                     (unsigned long long)mem::pageBase(ref.hostAddr,
                                                       ref.pageSize));
    }
}

// ---- Device events -----------------------------------------------------

void
ShadowChecker::devicePacketAccepted(uint32_t sid, unsigned idx,
                                    unsigned in_use)
{
    (void)sid;
    ++_events;
    record(_ptb.allocated(idx, in_use));
}

void
ShadowChecker::devicePacketCompleted(unsigned idx, unsigned in_use)
{
    ++_events;
    record(_ptb.released(idx, in_use));
}

void
ShadowChecker::devicePacketDropped()
{
    ++_events;
    record(_ptb.dropped());
}

void
ShadowChecker::deviceSidObserved(uint32_t sid)
{
    ++_events;
    SHADOW_CHECK(!_config.mmuPrefetch,
                 "SID-predictor trained with sid %u while the MMU "
                 "prefetcher is the configured mechanism",
                 sid);
    _predictor.observe(sid);
}

void
ShadowChecker::deviceSidPredicted(uint32_t sid,
                                  std::optional<uint32_t> predicted)
{
    ++_events;
    const auto expected = _predictor.predict(sid);
    SHADOW_CHECK(predicted == expected,
                 "SID-predictor: sid %u predicted %lld, reference "
                 "expects %lld (after %llu arrivals)",
                 sid, optionalSid(predicted), optionalSid(expected),
                 (unsigned long long)_predictor.observed());
}

void
ShadowChecker::devicePbLookup(mem::DomainId did, mem::Iova iova,
                              mem::PageSize size, bool hit,
                              mem::Addr value)
{
    ++_events;
    const uint64_t key = iommu::translationKey(did, iova, size);
    record(_pb.lookup(key, 0, 0, hit, value));
    // A PB hit consumes the entry.
    if (hit)
        _pb.consume(key);
}

void
ShadowChecker::devicePbFill(mem::DomainId did, mem::Iova iova,
                            mem::PageSize size, mem::Addr value,
                            std::optional<uint64_t> evicted)
{
    ++_events;
    checkFillFresh("Prefetch Buffer", did, iova, value);
    record(_pb.fill(iommu::translationKey(did, iova, size), 0, 0,
                    value, evicted));
}

void
ShadowChecker::devicePbInvalidated(mem::DomainId did, mem::Iova iova,
                                   mem::PageSize size, bool removed)
{
    ++_events;
    record(_pb.invalidated(iommu::translationKey(did, iova, size),
                           removed));
}

void
ShadowChecker::deviceDevtlbLookup(uint32_t sid, mem::DomainId did,
                                  mem::Iova iova, mem::PageSize size,
                                  size_t set, bool hit,
                                  mem::Addr value)
{
    ++_events;
    ++_translationChecks;
    record(_devtlb.lookup(iommu::translationKey(did, iova, size),
                          set, sid, hit, value));
}

void
ShadowChecker::deviceDevtlbFill(uint32_t sid, mem::DomainId did,
                                mem::Iova iova, mem::PageSize size,
                                size_t set, mem::Addr value,
                                std::optional<uint64_t> evicted)
{
    ++_events;
    checkFillFresh("DevTLB", did, iova, value);
    record(_devtlb.fill(iommu::translationKey(did, iova, size), set,
                        sid, value, evicted));
}

void
ShadowChecker::deviceDevtlbInvalidated(uint32_t sid,
                                       mem::DomainId did,
                                       mem::Iova iova,
                                       mem::PageSize size,
                                       bool removed)
{
    (void)sid;
    ++_events;
    record(_devtlb.invalidated(
        iommu::translationKey(did, iova, size), removed));
}

void
ShadowChecker::deviceMmuObserved(mem::DomainId did, unsigned cls,
                                 mem::Iova iova, mem::PageSize size)
{
    ++_events;
    SHADOW_CHECK(_config.mmuPrefetch,
                 "MMU stride detector trained (did=%u cls=%u) but "
                 "the MMU prefetcher is not the configured mechanism",
                 did, cls);
    _mmu.observe(did, cls, iova, size);
}

void
ShadowChecker::deviceMmuPrefetchIssued(mem::DomainId did,
                                       unsigned cls, unsigned slot,
                                       mem::Iova page,
                                       mem::PageSize size)
{
    ++_events;
    SHADOW_CHECK(slot < _config.pagesPerPrefetch,
                 "MMU prefetcher issued slot %u, burst limit is %u "
                 "pages",
                 slot, _config.pagesPerPrefetch);
    const auto expected = _mmu.predicted(did, cls, slot);
    SHADOW_CHECK(expected && expected->first == page &&
                     expected->second == size,
                 "MMU prefetcher issued did=%u cls=%u slot %u page "
                 "%#llx, reference predicts %#llx",
                 did, cls, slot, (unsigned long long)page,
                 expected ? (unsigned long long)expected->first
                          : 0ULL);
}

void
ShadowChecker::deviceMmuRetired(mem::DomainId did)
{
    ++_events;
    _mmu.retire(did);
}

// ---- IOMMU events ------------------------------------------------------

void
ShadowChecker::iommuIotlbLookup(mem::DomainId domain, mem::Iova iova,
                                mem::PageSize size, size_t set,
                                bool hit, mem::Addr value)
{
    ++_events;
    record(_iotlb.lookup(iommu::translationKey(domain, iova, size),
                         set, domain, hit, value));
}

void
ShadowChecker::iommuMshrAllocated(mem::DomainId domain,
                                  mem::Iova iova, mem::PageSize size)
{
    ++_events;
    const uint64_t key = iommu::translationKey(domain, iova, size);
    SHADOW_CHECK(_mshr.insert(key).second,
                 "MSHR: second walk allocated for in-flight key "
                 "%#llx (did %u iova %#llx)",
                 (unsigned long long)key, domain,
                 (unsigned long long)iova);
}

void
ShadowChecker::iommuCoalesced(mem::DomainId domain, mem::Iova iova,
                              mem::PageSize size)
{
    ++_events;
    const uint64_t key = iommu::translationKey(domain, iova, size);
    SHADOW_CHECK(_mshr.count(key) == 1,
                 "MSHR: request coalesced onto key %#llx with no "
                 "walk in flight",
                 (unsigned long long)key);
}

void
ShadowChecker::iommuWalkStarted(mem::DomainId domain, mem::Iova iova,
                                mem::PageSize size, unsigned accesses,
                                unsigned active_walks)
{
    ++_events;
    const bool huge = size == mem::PageSize::Size2M;
    const bool l2_hit =
        _l2.contains(iommu::pagingKey(domain, iova, 2));
    const bool l3_hit =
        _l3.contains(iommu::pagingKey(domain, iova, 3));
    const unsigned expected = refWalkAccesses(
        l2_hit, l3_hit, _config.pagingLevels, huge);
    SHADOW_CHECK(accesses == expected,
                 "walk did=%u iova=%#llx charged %u accesses, "
                 "reference expects %u (L2 %d, L3 %d, %s)",
                 domain, (unsigned long long)iova, accesses,
                 expected, l2_hit ? 1 : 0, l3_hit ? 1 : 0,
                 huge ? "2M" : "4K");
    SHADOW_CHECK(_config.walkers == 0 ||
                     active_walks <= _config.walkers,
                 "walker bound: %u active walks exceed the %u "
                 "walker slots",
                 active_walks, _config.walkers);
    SHADOW_CHECK(_mshr.count(iommu::translationKey(domain, iova,
                                                   size)) == 1,
                 "walk did=%u iova=%#llx started without an MSHR "
                 "entry",
                 domain, (unsigned long long)iova);
}

void
ShadowChecker::iommuWalkCompleted(mem::DomainId domain,
                                  mem::Iova iova,
                                  mem::PageSize req_size, bool valid,
                                  mem::Addr host_addr)
{
    ++_events;
    const uint64_t key =
        iommu::translationKey(domain, iova, req_size);
    SHADOW_CHECK(_mshr.erase(key) == 1,
                 "walk did=%u iova=%#llx completed without an MSHR "
                 "entry",
                 domain, (unsigned long long)iova);

    if (!_tables)
        return;
    // The authoritative untimed translation, sampled at the same
    // instant the timed walk samples the page table.
    const mem::PageTable *table = _tables->find(domain);
    mem::Translation ref;
    if (table)
        ref = table->translate(iova);
    SHADOW_CHECK(valid == ref.valid,
                 "walk did=%u iova=%#llx %s but the functional "
                 "tables say %s",
                 domain, (unsigned long long)iova,
                 valid ? "succeeded" : "faulted",
                 ref.valid ? "mapped" : "unmapped");
    if (valid && ref.valid) {
        SHADOW_CHECK(host_addr == ref.hostAddr,
                     "hPA mismatch: did=%u iova=%#llx timed %#llx, "
                     "functional %#llx",
                     domain, (unsigned long long)iova,
                     (unsigned long long)host_addr,
                     (unsigned long long)ref.hostAddr);
    }
}

void
ShadowChecker::iommuIotlbFilled(mem::DomainId domain, mem::Iova iova,
                                mem::PageSize mapped_size, size_t set,
                                mem::Addr value,
                                std::optional<uint64_t> evicted)
{
    ++_events;
    record(_iotlb.fill(
        iommu::translationKey(domain, iova, mapped_size), set,
        domain, value, evicted));
}

void
ShadowChecker::iommuPagingFilled(unsigned level, mem::DomainId domain,
                                 mem::Iova iova, size_t set,
                                 std::optional<uint64_t> evicted)
{
    ++_events;
    SHADOW_CHECK(level == 2 || level == 3,
                 "paging-structure fill at unexpected level %u",
                 level);
    CacheMirror &mirror = level == 2 ? _l2 : _l3;
    record(mirror.fill(iommu::pagingKey(domain, iova, level), set,
                       domain, 0, evicted));
}

void
ShadowChecker::iommuIotlbInvalidated(mem::DomainId domain,
                                     mem::Iova iova,
                                     mem::PageSize size, bool removed)
{
    ++_events;
    record(_iotlb.invalidated(
        iommu::translationKey(domain, iova, size), removed));
}

void
ShadowChecker::iommuFlushed()
{
    ++_events;
    _iotlb.flush();
    _l2.flush();
    _l3.flush();
}

// ---- Chipset events ----------------------------------------------------

void
ShadowChecker::historyObserved(mem::DomainId did, mem::Iova iova,
                               mem::PageSize size)
{
    ++_events;
    _history.observe(did, mem::pageBase(iova, size),
                     mem::pageShift(size));
}

void
ShadowChecker::historyPrefetchIssued(mem::DomainId did, unsigned slot,
                                     mem::Addr page_base,
                                     mem::PageSize size)
{
    ++_events;
    SHADOW_CHECK(slot < _config.pagesPerPrefetch,
                 "history reader issued prefetch slot %u, burst "
                 "limit is %u pages",
                 slot, _config.pagesPerPrefetch);
    const auto expected = _history.recent(did, slot);
    const RefHistoryPage issued{page_base, mem::pageShift(size)};
    SHADOW_CHECK(expected && *expected == issued,
                 "history reader prefetched did=%u page %#llx (slot "
                 "%u), reference history holds %#llx there",
                 did, (unsigned long long)page_base, slot,
                 expected
                     ? (unsigned long long)expected->pageBase
                     : 0ULL);
}

void
ShadowChecker::historyRetired(mem::DomainId did)
{
    ++_events;
    _history.retire(did);
}

// ---- Tenant-retirement events ------------------------------------------

void
ShadowChecker::deviceSidRetired(uint32_t sid)
{
    ++_events;
    _predictor.retire(sid);
}

// ---- System events -----------------------------------------------------

void
ShadowChecker::systemUnmapped(mem::DomainId did, mem::Iova page_base,
                              mem::PageSize size)
{
    ++_events;
    // Both size keys must be gone: a size-flip remap (2M→4K or back)
    // re-keys the translation, and functional unmap probes the
    // covering 2M base before the declared size, so either flavor may
    // have been cached regardless of what size the op declared.
    (void)size;
    for (const mem::PageSize sz :
         {mem::PageSize::Size4K, mem::PageSize::Size2M}) {
        const uint64_t key =
            iommu::translationKey(did, page_base, sz);
        SHADOW_CHECK(!_devtlb.contains(key),
                     "unmap of did=%u page %#llx left the %s "
                     "translation in the DevTLB",
                     did, (unsigned long long)page_base,
                     sz == mem::PageSize::Size2M ? "2M" : "4K");
        SHADOW_CHECK(!_pb.contains(key),
                     "unmap of did=%u page %#llx left the %s "
                     "translation in the Prefetch Buffer",
                     did, (unsigned long long)page_base,
                     sz == mem::PageSize::Size2M ? "2M" : "4K");
        SHADOW_CHECK(!_iotlb.contains(key),
                     "unmap of did=%u page %#llx left the %s "
                     "translation in the IOTLB",
                     did, (unsigned long long)page_base,
                     sz == mem::PageSize::Size2M ? "2M" : "4K");
    }
}

void
ShadowChecker::systemRunCompleted(bool bypass, uint64_t processed,
                                  uint64_t translations,
                                  size_t devtlb_occupancy,
                                  size_t pb_occupancy,
                                  size_t iotlb_occupancy,
                                  size_t l2_occupancy,
                                  size_t l3_occupancy,
                                  unsigned ptb_in_use)
{
    ++_events;
    if (!bypass) {
        SHADOW_CHECK(translations == 3 * processed,
                     "run issued %llu translations for %llu "
                     "processed packets (expected 3 per packet)",
                     (unsigned long long)translations,
                     (unsigned long long)processed);
    }
    SHADOW_CHECK(ptb_in_use == 0 && _ptb.inUse() == 0,
                 "PTB not empty at end of run (timed %u, reference "
                 "%zu)",
                 ptb_in_use, _ptb.inUse());
    SHADOW_CHECK(_mshr.empty(),
                 "%zu walks still in the MSHR at end of run",
                 _mshr.size());
    SHADOW_CHECK(devtlb_occupancy == _devtlb.size(),
                 "DevTLB occupancy %zu at end of run, reference "
                 "holds %zu",
                 devtlb_occupancy, _devtlb.size());
    SHADOW_CHECK(pb_occupancy == _pb.size(),
                 "PB occupancy %zu at end of run, reference holds "
                 "%zu",
                 pb_occupancy, _pb.size());
    SHADOW_CHECK(iotlb_occupancy == _iotlb.size(),
                 "IOTLB occupancy %zu at end of run, reference "
                 "holds %zu",
                 iotlb_occupancy, _iotlb.size());
    SHADOW_CHECK(l2_occupancy == _l2.size(),
                 "L2TLB occupancy %zu at end of run, reference "
                 "holds %zu",
                 l2_occupancy, _l2.size());
    SHADOW_CHECK(l3_occupancy == _l3.size(),
                 "L3TLB occupancy %zu at end of run, reference "
                 "holds %zu",
                 l3_occupancy, _l3.size());
}

// ---- Installation ------------------------------------------------------

ShadowScope::ShadowScope(ShadowChecker &checker)
    : _previous(tls_checker)
{
    tls_checker = &checker;
}

ShadowScope::~ShadowScope()
{
    tls_checker = _previous;
}

ShadowChecker *
shadowChecker()
{
    return tls_checker;
}

bool
shadowAutoCheckEnabled()
{
    return auto_check.load(std::memory_order_relaxed);
}

void
setShadowAutoCheck(bool enabled)
{
    auto_check.store(enabled, std::memory_order_relaxed);
}

} // namespace hypersio::oracle
