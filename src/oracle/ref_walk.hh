/**
 * @file
 * Untimed reference of the two-dimensional page-walk cost model.
 *
 * Restates Table II / Fig. 2 independently of the timed IOMMU: each
 * guest level still to be read costs a full host walk of the guest
 * PTE pointer (`levels` reads) plus the guest PTE read itself, and
 * the walk ends with a host walk of the final guest-physical
 * address. The deepest paging-structure cache hit decides how many
 * guest levels remain: an L2 entry covers down to guest level 2, an
 * L3 entry down to level 3, otherwise the walk starts at the root.
 * 2 MB mappings terminate one guest level early (leaf level 2).
 */

#ifndef HYPERSIO_ORACLE_REF_WALK_HH
#define HYPERSIO_ORACLE_REF_WALK_HH

namespace hypersio::oracle
{

/**
 * Memory accesses a walk must perform.
 *
 * @param l2_hit the L2 paging cache holds the request's prefix
 * @param l3_hit the L3 paging cache holds the request's prefix
 *        (only consulted when the L2 missed)
 * @param levels paging depth of both dimensions (4 or 5)
 * @param huge the request targets a 2 MB mapping
 */
constexpr unsigned
refWalkAccesses(bool l2_hit, bool l3_hit, unsigned levels, bool huge)
{
    const unsigned leaf = huge ? 2 : 1;
    unsigned remaining_guest_levels;
    if (l2_hit)
        remaining_guest_levels = 2 - leaf;
    else if (l3_hit)
        remaining_guest_levels = 3 - leaf;
    else
        remaining_guest_levels = levels - leaf + 1;
    return (levels + 1) * remaining_guest_levels + levels;
}

static_assert(refWalkAccesses(false, false, 4, false) == 24,
              "full 4-level 4K walk is 24 accesses (Table II)");
static_assert(refWalkAccesses(false, false, 5, false) == 35,
              "full 5-level 4K walk is 35 accesses");
static_assert(refWalkAccesses(false, true, 4, false) == 14,
              "L3 hit leaves two guest levels");
static_assert(refWalkAccesses(true, false, 4, false) == 9,
              "L2 hit leaves one guest level");
static_assert(refWalkAccesses(true, false, 4, true) == 4,
              "L2 hit on a 2M mapping needs only the host walk");

} // namespace hypersio::oracle

#endif // HYPERSIO_ORACLE_REF_WALK_HH
