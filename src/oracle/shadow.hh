/**
 * @file
 * The shadow checker: an untimed differential oracle that follows a
 * timed System run event by event and asserts agreement between the
 * microarchitectural model and the reference models in src/oracle.
 *
 * The timed model reports every observable event — packet accepts,
 * drops and completions, TLB lookups/fills/invalidations, walk
 * starts and completions, prefetch training and history activity —
 * through the HYPERSIO_SHADOW hooks (see oracle/hooks.hh). The
 * checker verifies, on every event:
 *
 *   - hPA results: each completed walk's host address against the
 *     functional page tables (the authoritative untimed translator),
 *   - hit/miss classification and hit values of the DevTLB, Prefetch
 *     Buffer, IOTLB, and (via walk-access counts) the L2/L3 paging
 *     caches, against exact event-driven mirrors,
 *   - PTag row legality of every partitioned-cache access,
 *   - PTB occupancy bounds and slot discipline (allocate / release /
 *     drop-only-when-full),
 *   - SID predictions against the definition-level reference
 *     predictor, and prefetched pages against the reference history,
 *   - walker-slot bounds and MSHR coalescing discipline,
 *   - unmap semantics: a driver unmap must leave no cached final
 *     translation of the page behind,
 *   - end-of-run accounting: three translations per processed
 *     packet, an empty PTB, and mirror/timed occupancy agreement.
 *
 * The checker is observation-only: it never feeds anything back into
 * the timed model, so a checked run's results are byte-identical to
 * an unchecked one. In fail-fast mode (the default for the
 * auto-installed checker) the first violation panics with a
 * diagnostic; in collecting mode (tests, fuzzing) violations
 * accumulate for inspection.
 *
 * Scope: one checker mirrors one System (one Device + one Iommu).
 * Installation is per thread (ShadowScope), so parallel sweep
 * workers each check their own run independently.
 */

#ifndef HYPERSIO_ORACLE_SHADOW_HH
#define HYPERSIO_ORACLE_SHADOW_HH

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "mem/addr.hh"
#include "mem/page_table.hh"
#include "oracle/ref_cache.hh"
#include "oracle/ref_mmu_prefetch.hh"
#include "oracle/ref_predictor.hh"
#include "oracle/ref_ptb.hh"

namespace hypersio::iommu
{
class PageTableDirectory;
} // namespace hypersio::iommu

namespace hypersio::oracle
{

/**
 * Geometry the reference models need, decoupled from the core
 * configuration structs so the oracle library stays below core in
 * the layering (core converts via toShadowConfig()).
 */
struct ShadowConfig
{
    size_t devtlbEntries = 0;
    size_t devtlbWays = 0;
    size_t devtlbPartitions = 1;
    size_t iotlbEntries = 0;
    size_t iotlbWays = 0;
    size_t iotlbPartitions = 1;
    size_t l2Entries = 0;
    size_t l2Ways = 0;
    size_t l2Partitions = 1;
    size_t l3Entries = 0;
    size_t l3Ways = 0;
    size_t l3Partitions = 1;
    bool prefetchEnabled = false;
    unsigned pbEntries = 0;
    unsigned historyLength = 0;
    unsigned pagesPerPrefetch = 0;
    unsigned historyDepth = 0;
    unsigned ptbEntries = 0;
    unsigned walkers = 0;
    unsigned pagingLevels = 4;
    size_t devtlbSubEntries = 1;
    size_t l2SubEntries = 1;
    size_t l3SubEntries = 1;
    /** True when the device runs the MMU-aware DMA prefetcher. */
    bool mmuPrefetch = false;
};

/** The differential oracle for one System run. */
class ShadowChecker
{
  public:
    /**
     * @param tables the run's functional page tables (authoritative
     *        hPA source); may be null, which skips only the
     *        hPA-result check
     * @param fail_fast panic on the first violation instead of
     *        collecting
     */
    ShadowChecker(const ShadowConfig &config,
                  const iommu::PageTableDirectory *tables,
                  bool fail_fast = true);

    // ---- Device events -------------------------------------------------
    void devicePacketAccepted(uint32_t sid, unsigned idx,
                              unsigned in_use);
    void devicePacketCompleted(unsigned idx, unsigned in_use);
    void devicePacketDropped();
    void deviceSidObserved(uint32_t sid);
    void deviceSidPredicted(uint32_t sid,
                            std::optional<uint32_t> predicted);
    void devicePbLookup(mem::DomainId did, mem::Iova iova,
                        mem::PageSize size, bool hit,
                        mem::Addr value);
    void devicePbFill(mem::DomainId did, mem::Iova iova,
                      mem::PageSize size, mem::Addr value,
                      std::optional<uint64_t> evicted);
    void devicePbInvalidated(mem::DomainId did, mem::Iova iova,
                             mem::PageSize size, bool removed);
    void deviceDevtlbLookup(uint32_t sid, mem::DomainId did,
                            mem::Iova iova, mem::PageSize size,
                            size_t set, bool hit, mem::Addr value);
    void deviceDevtlbFill(uint32_t sid, mem::DomainId did,
                          mem::Iova iova, mem::PageSize size,
                          size_t set, mem::Addr value,
                          std::optional<uint64_t> evicted);
    void deviceDevtlbInvalidated(uint32_t sid, mem::DomainId did,
                                 mem::Iova iova, mem::PageSize size,
                                 bool removed);
    void deviceMmuObserved(mem::DomainId did, unsigned cls,
                           mem::Iova iova, mem::PageSize size);
    void deviceMmuPrefetchIssued(mem::DomainId did, unsigned cls,
                                 unsigned slot, mem::Iova page,
                                 mem::PageSize size);
    void deviceMmuRetired(mem::DomainId did);

    // ---- IOMMU events --------------------------------------------------
    void iommuIotlbLookup(mem::DomainId domain, mem::Iova iova,
                          mem::PageSize size, size_t set, bool hit,
                          mem::Addr value);
    void iommuMshrAllocated(mem::DomainId domain, mem::Iova iova,
                            mem::PageSize size);
    void iommuCoalesced(mem::DomainId domain, mem::Iova iova,
                        mem::PageSize size);
    void iommuWalkStarted(mem::DomainId domain, mem::Iova iova,
                          mem::PageSize size, unsigned accesses,
                          unsigned active_walks);
    void iommuWalkCompleted(mem::DomainId domain, mem::Iova iova,
                            mem::PageSize req_size, bool valid,
                            mem::Addr host_addr);
    void iommuIotlbFilled(mem::DomainId domain, mem::Iova iova,
                          mem::PageSize mapped_size, size_t set,
                          mem::Addr value,
                          std::optional<uint64_t> evicted);
    void iommuPagingFilled(unsigned level, mem::DomainId domain,
                           mem::Iova iova, size_t set,
                           std::optional<uint64_t> evicted);
    void iommuIotlbInvalidated(mem::DomainId domain, mem::Iova iova,
                               mem::PageSize size, bool removed);
    void iommuFlushed();

    // ---- Chipset (History Reader) events -------------------------------
    void historyObserved(mem::DomainId did, mem::Iova iova,
                         mem::PageSize size);
    void historyPrefetchIssued(mem::DomainId did, unsigned slot,
                               mem::Addr page_base,
                               mem::PageSize size);
    void historyRetired(mem::DomainId did);

    // ---- Tenant-retirement events --------------------------------------
    void deviceSidRetired(uint32_t sid);

    // ---- System events -------------------------------------------------
    void systemUnmapped(mem::DomainId did, mem::Iova page_base,
                        mem::PageSize size);
    void systemRunCompleted(bool bypass, uint64_t processed,
                            uint64_t translations,
                            size_t devtlb_occupancy,
                            size_t pb_occupancy,
                            size_t iotlb_occupancy,
                            size_t l2_occupancy, size_t l3_occupancy,
                            unsigned ptb_in_use);

    // ---- Results -------------------------------------------------------
    /** All recorded violations (capped; see violationCount()). */
    const std::vector<std::string> &violations() const
    {
        return _violations;
    }
    /** Total violations, including any beyond the stored cap. */
    uint64_t violationCount() const { return _violationCount; }
    /** Events observed (a zero here means the hooks never fired). */
    uint64_t eventCount() const { return _events; }
    /** DevTLB lookups checked (one per translation request). */
    uint64_t translationChecks() const { return _translationChecks; }
    bool failFast() const { return _failFast; }

  private:
    void record(std::optional<std::string> violation);
    /** Fill-freshness rule: see the definition in shadow.cc. */
    void checkFillFresh(const char *what, mem::DomainId did,
                        mem::Iova iova, mem::Addr value);

    ShadowConfig _config;
    const iommu::PageTableDirectory *_tables;
    bool _failFast;

    CacheMirror _devtlb;
    CacheMirror _pb;
    CacheMirror _iotlb;
    CacheMirror _l2;
    CacheMirror _l3;
    RefPtb _ptb;
    RefSidPredictor _predictor;
    RefHistory _history;
    RefMmuPrefetcher _mmu;
    std::unordered_set<uint64_t> _mshr;

    uint64_t _events = 0;
    uint64_t _translationChecks = 0;
    uint64_t _violationCount = 0;
    std::vector<std::string> _violations;
};

/**
 * Installs `checker` as the current thread's shadow for its scope;
 * restores the previous checker (if any) on destruction.
 */
class ShadowScope
{
  public:
    explicit ShadowScope(ShadowChecker &checker);
    ~ShadowScope();
    ShadowScope(const ShadowScope &) = delete;
    ShadowScope &operator=(const ShadowScope &) = delete;

  private:
    ShadowChecker *_previous;
};

/** The current thread's shadow checker, or nullptr. */
ShadowChecker *shadowChecker();

/**
 * Whether System::run() may auto-install a fail-fast checker in
 * HYPERSIO_CHECKED builds when none is active. Defaults to on; the
 * HYPERSIO_SHADOW=off (or =0) environment variable and
 * setShadowAutoCheck(false) disable it (e.g. to time an instrumented
 * build without the mirrors).
 */
bool shadowAutoCheckEnabled();
void setShadowAutoCheck(bool enabled);

} // namespace hypersio::oracle

#endif // HYPERSIO_ORACLE_SHADOW_HH
