/**
 * @file
 * Untimed reference model of a set-associative, partitioned
 * translation cache (the oracle twin of cache::SetAssocCache).
 *
 * The mirror is event-driven: the shadow hooks report every fill,
 * eviction, invalidation, and flush the timed cache performs, so the
 * mirror's contents are exactly the timed cache's contents at all
 * times. That makes hit/miss classification checks exact — no
 * replacement-policy modelling is needed, because evictions arrive
 * as events rather than being predicted.
 *
 * What the mirror *does* verify independently:
 *   - row legality: every fill and lookup must land in the set group
 *     owned by the request's partition tag (the P-DevTLB PTag rule),
 *   - capacity: never more than `ways` keys per set or `entries`
 *     keys total,
 *   - classification: a reported hit must be a key the mirror holds
 *     (and with the very value the timed cache returned), a reported
 *     miss must not be,
 *   - eviction sanity: an evicted key must have been resident.
 */

#ifndef HYPERSIO_ORACLE_REF_CACHE_HH
#define HYPERSIO_ORACLE_REF_CACHE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "mem/addr.hh"
#include "util/str.hh"

namespace hypersio::oracle
{

/**
 * Domain-independent low key bits shared by co-located tenants in
 * sub-entry mode. Mirrors cache::SubEntrySharedKeyBits — duplicated
 * because the oracle layer links against mem+util only.
 */
constexpr unsigned RefSubEntrySharedKeyBits = 40;

constexpr uint64_t
refSubEntrySharedKey(uint64_t key)
{
    return key & ((uint64_t(1) << RefSubEntrySharedKeyBits) - 1);
}

/** Event-driven mirror of one timed cache instance. */
class CacheMirror
{
  public:
    CacheMirror() = default;

    /**
     * @param check_values compare cached values on hits (final
     *        translation caches); presence-only caches (the paging
     *        structure caches) pass false
     * @param sub_entries sub-entries per shared tag (1 disables; the
     *        mirror then counts ways in *tags* and allows
     *        `sub_entries` tenants behind each)
     */
    void
    configure(std::string name, size_t entries, size_t ways,
              size_t partitions, bool check_values = true,
              size_t sub_entries = 1)
    {
        _name = std::move(name);
        _entries = entries;
        _ways = ways;
        _partitions = partitions ? partitions : 1;
        _sets = ways ? entries / ways : 0;
        _setsPerPartition = _sets / _partitions;
        _checkValues = check_values;
        _subEntries = sub_entries ? sub_entries : 1;
        _map.clear();
        _setCount.clear();
        _tagRefs.clear();
    }

    /**
     * Checks that `set` is a row the partition tag may legally use.
     * @return violation message, or nullopt when legal
     */
    std::optional<std::string>
    checkRow(uint64_t key, size_t set, uint32_t partition_tag) const
    {
        if (set >= _sets) {
            return strprintf("%s: key %#llx uses set %zu beyond the "
                             "%zu sets",
                             _name.c_str(),
                             (unsigned long long)key, set, _sets);
        }
        const size_t owner = set / _setsPerPartition;
        const size_t legal = partition_tag % _partitions;
        if (owner != legal) {
            return strprintf(
                "%s: PTag violation — key %#llx (tag %u) allocated "
                "row group %zu, legal group is %zu",
                _name.c_str(), (unsigned long long)key,
                partition_tag, owner, legal);
        }
        return std::nullopt;
    }

    /** Verifies a lookup's hit/miss classification and hit value. */
    std::optional<std::string>
    lookup(uint64_t key, size_t set, uint32_t partition_tag,
           bool hit, mem::Addr value) const
    {
        if (auto err = checkRow(key, set, partition_tag))
            return err;
        auto it = _map.find(key);
        const bool mirror_hit = it != _map.end();
        if (hit != mirror_hit) {
            return strprintf(
                "%s: lookup of key %#llx reported a %s but the "
                "reference holds %s entry",
                _name.c_str(), (unsigned long long)key,
                hit ? "hit" : "miss", mirror_hit ? "that" : "no");
        }
        if (hit && _checkValues && value != it->second.value) {
            return strprintf(
                "%s: hit on key %#llx returned %#llx, reference "
                "holds %#llx",
                _name.c_str(), (unsigned long long)key,
                (unsigned long long)value,
                (unsigned long long)it->second.value);
        }
        return std::nullopt;
    }

    /** Applies a fill (with its reported eviction, if any). */
    std::optional<std::string>
    fill(uint64_t key, size_t set, uint32_t partition_tag,
         mem::Addr value, const std::optional<uint64_t> &evicted)
    {
        if (auto err = checkRow(key, set, partition_tag))
            return err;
        if (evicted) {
            auto ev = _map.find(*evicted);
            if (ev == _map.end()) {
                return strprintf(
                    "%s: fill of %#llx evicted %#llx which the "
                    "reference never held",
                    _name.c_str(), (unsigned long long)key,
                    (unsigned long long)*evicted);
            }
            if (_map.count(key)) {
                return strprintf(
                    "%s: in-place update of %#llx reported an "
                    "eviction of %#llx",
                    _name.c_str(), (unsigned long long)key,
                    (unsigned long long)*evicted);
            }
            if (_subEntries > 1 && refSubEntrySharedKey(*evicted) !=
                                       refSubEntrySharedKey(key)) {
                // A reported eviction whose shared tag differs from
                // the fill's can only be a whole-tag eviction (a
                // matching tag would have taken the tag-hit path):
                // every tenant behind the victim tag dies with it,
                // and the timed cache names one representative.
                const size_t vset = ev->second.set;
                const uint64_t vshared =
                    refSubEntrySharedKey(*evicted);
                std::vector<uint64_t> dead;
                for (const auto &[k, entry] : _map) {
                    if (entry.set == vset &&
                        refSubEntrySharedKey(k) == vshared)
                        dead.push_back(k);
                }
                for (uint64_t k : dead)
                    erase(_map.find(k));
            } else {
                erase(ev);
            }
        }
        auto [it, inserted] = _map.try_emplace(key);
        if (inserted) {
            if (_subEntries > 1) {
                // _setCount tracks distinct shared tags per set.
                unsigned &refs = _tagRefs[tagKeyOf(set, key)];
                if (++refs == 1)
                    ++_setCount[set];
                if (refs > _subEntries) {
                    return strprintf(
                        "%s: tag %#llx in set %zu carries %u "
                        "tenants but has only %zu sub-entries "
                        "(missed sub-eviction)",
                        _name.c_str(),
                        (unsigned long long)refSubEntrySharedKey(
                            key),
                        set, refs, _subEntries);
                }
            } else {
                ++_setCount[set];
            }
        } else if (it->second.set != set) {
            return strprintf("%s: key %#llx moved from set %zu to "
                             "set %zu",
                             _name.c_str(), (unsigned long long)key,
                             it->second.set, set);
        }
        it->second = {value, set};
        if (_setCount[set] > _ways) {
            return strprintf(
                "%s: set %zu holds %u keys but has only %zu ways "
                "(missed eviction)",
                _name.c_str(), set, _setCount[set], _ways);
        }
        if (_map.size() > _entries * _subEntries) {
            return strprintf("%s: %zu resident keys exceed the %zu "
                             "entries",
                             _name.c_str(), _map.size(),
                             _entries * _subEntries);
        }
        return std::nullopt;
    }

    /** Applies an invalidation and checks the removal outcome. */
    std::optional<std::string>
    invalidated(uint64_t key, bool removed)
    {
        auto it = _map.find(key);
        const bool mirror_had = it != _map.end();
        if (removed != mirror_had) {
            return strprintf(
                "%s: invalidate of key %#llx %s but the reference "
                "%s it",
                _name.c_str(), (unsigned long long)key,
                removed ? "removed an entry" : "found nothing",
                mirror_had ? "holds" : "does not hold");
        }
        if (mirror_had)
            erase(it);
        return std::nullopt;
    }

    /** Removes a key known to be consumed (Prefetch Buffer hits). */
    void
    consume(uint64_t key)
    {
        auto it = _map.find(key);
        if (it != _map.end())
            erase(it);
    }

    void
    flush()
    {
        _map.clear();
        _setCount.clear();
        _tagRefs.clear();
    }

    bool contains(uint64_t key) const { return _map.count(key) > 0; }
    size_t size() const { return _map.size(); }
    const std::string &name() const { return _name; }

  private:
    struct Entry
    {
        mem::Addr value = 0;
        size_t set = 0;
    };

    /**
     * Key of `_tagRefs` for (set, key): sets are small and the
     * shared key is 40 bits, so the pair packs uniquely.
     */
    uint64_t
    tagKeyOf(size_t set, uint64_t key) const
    {
        return (uint64_t(set) << RefSubEntrySharedKeyBits) |
               refSubEntrySharedKey(key);
    }

    void
    erase(std::unordered_map<uint64_t, Entry>::iterator it)
    {
        // In sub-entry mode a way frees only when the last tenant
        // behind its shared tag leaves.
        bool tag_freed = true;
        if (_subEntries > 1) {
            auto ref =
                _tagRefs.find(tagKeyOf(it->second.set, it->first));
            tag_freed =
                ref != _tagRefs.end() && --ref->second == 0;
            if (tag_freed)
                _tagRefs.erase(ref);
        }
        if (tag_freed) {
            auto count = _setCount.find(it->second.set);
            if (count != _setCount.end() && count->second > 0)
                --count->second;
        }
        _map.erase(it);
    }

    std::string _name;
    size_t _entries = 0;
    size_t _ways = 0;
    size_t _partitions = 1;
    size_t _sets = 0;
    size_t _setsPerPartition = 1;
    bool _checkValues = true;
    size_t _subEntries = 1;
    std::unordered_map<uint64_t, Entry> _map;
    /** sub==1: keys per set. sub>1: distinct shared tags per set. */
    std::unordered_map<size_t, unsigned> _setCount;
    /** Tenants behind each (set, shared tag); sub>1 only. */
    std::unordered_map<uint64_t, unsigned> _tagRefs;
};

} // namespace hypersio::oracle

#endif // HYPERSIO_ORACLE_REF_CACHE_HH
