/**
 * @file
 * Untimed reference models of the SID-predictor and the IOVA History
 * Reader's per-tenant history.
 *
 * The predictor reference restates the paper's training rule from
 * first principles: after arrival n, the prediction for the SID that
 * arrived at position n - H is the SID of arrival n (H = the
 * history-length register). It is implemented over a ring of the
 * last H+1 arrivals rather than the timed model's sliding deque, so
 * the two agree only if both implement the same definition.
 */

#ifndef HYPERSIO_ORACLE_REF_PREDICTOR_HH
#define HYPERSIO_ORACLE_REF_PREDICTOR_HH

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "mem/addr.hh"

namespace hypersio::oracle
{

/** Definition-level reference of the next-SID predictor. */
class RefSidPredictor
{
  public:
    void
    configure(unsigned history_length)
    {
        _history = history_length;
        _ring.assign(static_cast<size_t>(_history) + 1, 0);
        _count = 0;
        _table.clear();
    }

    /** Observes arrival number `_count` with source `sid`. */
    void
    observe(uint32_t sid)
    {
        const size_t period = _ring.size();
        if (_history == 0) {
            _table[sid] = sid;
        } else if (_count >= _history) {
            // Arrival n - H is still resident: the slot about to be
            // overwritten is (n + 1) mod (H + 1), not (n - H).
            _table[_ring[(_count - _history) % period]] = sid;
        }
        _ring[_count % period] = sid;
        ++_count;
    }

    std::optional<uint32_t>
    predict(uint32_t sid) const
    {
        auto it = _table.find(sid);
        if (it == _table.end())
            return std::nullopt;
        return it->second;
    }

    /** Tenant detach: forgets the retired SID's prediction entry. */
    void retire(uint32_t sid) { _table.erase(sid); }

    uint64_t observed() const { return _count; }

  private:
    unsigned _history = 0;
    std::vector<uint32_t> _ring{0};
    uint64_t _count = 0;
    std::unordered_map<uint32_t, uint32_t> _table;
};

/** One page in a reference tenant history. */
struct RefHistoryPage
{
    mem::Addr pageBase = 0;
    unsigned sizeBytesLog2 = 12;

    bool
    operator==(const RefHistoryPage &other) const
    {
        return pageBase == other.pageBase &&
               sizeBytesLog2 == other.sizeBytesLog2;
    }
};

/**
 * Reference of the History Reader's per-DID MRU page list: distinct
 * page bases, most recent first, capped at `depth`. A re-observed
 * page moves to the front keeping its originally recorded size.
 */
class RefHistory
{
  public:
    void
    configure(unsigned depth)
    {
        _depth = depth;
        _lists.clear();
    }

    void
    observe(uint32_t did, mem::Addr page_base, unsigned size_log2)
    {
        auto &list = _lists[did];
        for (size_t i = 0; i < list.size(); ++i) {
            if (list[i].pageBase == page_base) {
                const RefHistoryPage page = list[i];
                list.erase(list.begin() +
                           static_cast<ptrdiff_t>(i));
                list.insert(list.begin(), page);
                return;
            }
        }
        list.insert(list.begin(), {page_base, size_log2});
        if (list.size() > _depth)
            list.pop_back();
    }

    /** Tenant detach: drops the retired DID's history list. */
    void retire(uint32_t did) { _lists.erase(did); }

    /** The i-th most recent page of `did`, if recorded. */
    std::optional<RefHistoryPage>
    recent(uint32_t did, size_t i) const
    {
        auto it = _lists.find(did);
        if (it == _lists.end() || i >= it->second.size())
            return std::nullopt;
        return it->second[i];
    }

  private:
    unsigned _depth = 0;
    std::unordered_map<uint32_t, std::vector<RefHistoryPage>> _lists;
};

} // namespace hypersio::oracle

#endif // HYPERSIO_ORACLE_REF_PREDICTOR_HH
