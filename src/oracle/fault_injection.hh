/**
 * @file
 * Deliberate model-corruption knobs for validating the shadow
 * oracle. Tests flip a knob, run a checked simulation, and assert
 * that the oracle reports the planted bug — proving the differential
 * harness actually detects the failure class it claims to cover.
 *
 * The knobs are consulted by the timed model only in
 * HYPERSIO_CHECKED builds; production builds compile the injection
 * sites away entirely.
 */

#ifndef HYPERSIO_ORACLE_FAULT_INJECTION_HH
#define HYPERSIO_ORACLE_FAULT_INJECTION_HH

namespace hypersio::oracle
{

/** Global fault-injection switches (all off by default). */
struct FaultInjection
{
    /**
     * Corrupts the DevTLB PTag mask: the partition tag is masked
     * with `partitions` instead of `partitions - 1`, collapsing
     * every SID into row group 0 — the classic off-by-one the
     * P-DevTLB row-legality check must catch.
     */
    bool devtlbPtagOffByOne = false;
};

/** The process-wide injection state. */
FaultInjection &faultInjection();

/** RAII guard: saves the injection state and restores it on exit. */
class FaultInjectionScope
{
  public:
    FaultInjectionScope() : _saved(faultInjection()) {}
    ~FaultInjectionScope() { faultInjection() = _saved; }
    FaultInjectionScope(const FaultInjectionScope &) = delete;
    FaultInjectionScope &
    operator=(const FaultInjectionScope &) = delete;

  private:
    FaultInjection _saved;
};

} // namespace hypersio::oracle

#endif // HYPERSIO_ORACLE_FAULT_INJECTION_HH
