/**
 * @file
 * Untimed reference model of the MMU-aware DMA stride prefetcher
 * (the oracle twin of the MmuDma half of core::PrefetchUnit).
 *
 * One detector per (tenant, request-class) stream follows the
 * descriptor-ring access pattern: repeats of the current page carry
 * no information, a repeated page delta builds confidence, and any
 * stride or page-size break resets it. The state transitions
 * replicate PrefetchUnit::observeAccess() exactly, so every issued
 * prefetch can be checked against the slot the reference predicts.
 */

#ifndef HYPERSIO_ORACLE_REF_MMU_PREFETCH_HH
#define HYPERSIO_ORACLE_REF_MMU_PREFETCH_HH

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>

#include "mem/addr.hh"

namespace hypersio::oracle
{

/** Confidence cap; mirrors core::MaxMmuConfidence. */
constexpr unsigned RefMaxMmuConfidence = 3;

/** Stride state of one (tenant, request-class) stream. */
struct RefMmuStream
{
    mem::Iova lastPage = 0;
    int64_t stride = 0;
    unsigned confidence = 0;
    bool primed = false;
    mem::PageSize size = mem::PageSize::Size4K;
};

/** Event-driven reference of the MMU-aware stride detectors. */
class RefMmuPrefetcher
{
  public:
    void
    observe(uint32_t did, unsigned cls, mem::Iova iova,
            mem::PageSize size)
    {
        const mem::Iova page = mem::pageBase(iova, size);
        RefMmuStream &stream = _streams[streamKey(did, cls)];
        if (!stream.primed) {
            stream.primed = true;
            stream.lastPage = page;
            stream.size = size;
            return;
        }
        const int64_t delta =
            int64_t(page) - int64_t(stream.lastPage);
        if (delta == 0 && size == stream.size)
            return;
        if (delta == stream.stride && size == stream.size) {
            if (stream.confidence < RefMaxMmuConfidence)
                ++stream.confidence;
        } else {
            stream.stride = delta;
            stream.confidence = 0;
            stream.size = size;
        }
        stream.lastPage = page;
    }

    /**
     * The page a legal prefetch of `slot` (0-based) must name for
     * the (did, cls) stream, or nullopt when no prefetch is legal.
     */
    std::optional<std::pair<mem::Iova, mem::PageSize>>
    predicted(uint32_t did, unsigned cls, unsigned slot) const
    {
        auto it = _streams.find(streamKey(did, cls));
        if (it == _streams.end())
            return std::nullopt;
        const RefMmuStream &stream = it->second;
        if (stream.confidence == 0 || stream.stride == 0)
            return std::nullopt;
        return std::make_pair(
            mem::Iova(int64_t(stream.lastPage) +
                      stream.stride * int64_t(slot) +
                      stream.stride),
            stream.size);
    }

    /** Tenant detach: the tenant's streams must all disappear. */
    void
    retire(uint32_t did)
    {
        for (unsigned cls = 0; cls < 3; ++cls)
            _streams.erase(streamKey(did, cls));
    }

    size_t streams() const { return _streams.size(); }

  private:
    static uint64_t
    streamKey(uint32_t did, unsigned cls)
    {
        return (uint64_t(did) << 2) | cls;
    }

    std::unordered_map<uint64_t, RefMmuStream> _streams;
};

} // namespace hypersio::oracle

#endif // HYPERSIO_ORACLE_REF_MMU_PREFETCH_HH
