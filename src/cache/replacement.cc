#include "cache/replacement.hh"

namespace hypersio::cache
{

ReplPolicyKind
parseReplPolicy(const std::string &name)
{
    if (name == "lru" || name == "LRU")
        return ReplPolicyKind::LRU;
    if (name == "lfu" || name == "LFU")
        return ReplPolicyKind::LFU;
    if (name == "fifo" || name == "FIFO")
        return ReplPolicyKind::FIFO;
    if (name == "random" || name == "rand")
        return ReplPolicyKind::Random;
    if (name == "oracle" || name == "belady")
        return ReplPolicyKind::Oracle;
    fatal("unknown replacement policy '%s' "
          "(expected lru|lfu|fifo|random|oracle)",
          name.c_str());
}

const char *
replPolicyName(ReplPolicyKind kind)
{
    switch (kind) {
      case ReplPolicyKind::LRU:
        return "lru";
      case ReplPolicyKind::LFU:
        return "lfu";
      case ReplPolicyKind::FIFO:
        return "fifo";
      case ReplPolicyKind::Random:
        return "random";
      case ReplPolicyKind::Oracle:
        return "oracle";
    }
    panic("unreachable replacement policy kind");
}

std::unique_ptr<ReplacementPolicy>
makePolicy(ReplPolicyKind kind, uint64_t seed, unsigned lfu_bits)
{
    switch (kind) {
      case ReplPolicyKind::LRU:
        return std::make_unique<LruPolicy>();
      case ReplPolicyKind::LFU:
        return std::make_unique<LfuPolicy>(lfu_bits);
      case ReplPolicyKind::FIFO:
        return std::make_unique<FifoPolicy>();
      case ReplPolicyKind::Random:
        return std::make_unique<RandomPolicy>(seed);
      case ReplPolicyKind::Oracle:
        fatal("oracle policy needs a FutureOracle; construct "
              "OraclePolicy directly");
    }
    panic("unreachable replacement policy kind");
}

} // namespace hypersio::cache
