/**
 * @file
 * Replacement policies for set-associative translation caches.
 *
 * The paper studies LRU, LFU (motivated by the three-frequency-group
 * structure of tenant page accesses, Section IV-D), and a Belady
 * oracle built from the full trace (Section V-C). FIFO and Random are
 * included as additional baselines. The LFU implementation follows
 * the paper: a 4-bit counter per entry, and all counters in a set are
 * halved when any of them saturates.
 */

#ifndef HYPERSIO_CACHE_REPLACEMENT_HH
#define HYPERSIO_CACHE_REPLACEMENT_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/logging.hh"
#include "util/rng.hh"

namespace hypersio::cache
{

/** Replacement policy identifiers, parseable from strings. */
enum class ReplPolicyKind
{
    LRU,
    LFU,
    FIFO,
    Random,
    Oracle,
};

/** Parses "lru"/"lfu"/"fifo"/"random"/"oracle"; fatal() on others. */
ReplPolicyKind parseReplPolicy(const std::string &name);

/** Human-readable policy name. */
const char *replPolicyName(ReplPolicyKind kind);

/**
 * Interface a cache uses to drive its replacement policy. The cache
 * calls init() once, then reports hits/insertions/invalidations and
 * asks for victims. `set` is the global set index, `way` the way
 * within the set, and `key` the full tag identity of the entry.
 */
class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    /** Sizes internal state; called once before use. */
    virtual void init(size_t num_sets, size_t num_ways) = 0;

    /** An existing entry was re-referenced. */
    virtual void touch(size_t set, size_t way, uint64_t key) = 0;

    /** A new entry was installed in (set, way). */
    virtual void insert(size_t set, size_t way, uint64_t key) = 0;

    /** The entry in (set, way) was invalidated. */
    virtual void invalidate(size_t set, size_t way) = 0;

    /**
     * Chooses a victim among the valid ways of `set`. `keys[w]` is
     * the key resident in way w; all ways passed in are valid.
     * @param ways the candidate way indices (all valid, all evictable)
     */
    virtual size_t victim(size_t set, const std::vector<size_t> &ways,
                          const uint64_t *keys) = 0;

    /** Clears all recency/frequency state. */
    virtual void reset() = 0;
};

/** Least Recently Used: evicts the oldest-referenced way. */
class LruPolicy : public ReplacementPolicy
{
  public:
    void
    init(size_t num_sets, size_t num_ways) override
    {
        _lastUse.assign(num_sets * num_ways, 0);
        _ways = num_ways;
        _seq = 0;
    }

    void
    touch(size_t set, size_t way, uint64_t) override
    {
        _lastUse[set * _ways + way] = ++_seq;
    }

    void
    insert(size_t set, size_t way, uint64_t) override
    {
        _lastUse[set * _ways + way] = ++_seq;
    }

    void invalidate(size_t set, size_t way) override
    {
        _lastUse[set * _ways + way] = 0;
    }

    size_t
    victim(size_t set, const std::vector<size_t> &ways,
           const uint64_t *) override
    {
        size_t best = ways.front();
        uint64_t best_use = _lastUse[set * _ways + best];
        for (size_t w : ways) {
            uint64_t use = _lastUse[set * _ways + w];
            if (use < best_use) {
                best = w;
                best_use = use;
            }
        }
        return best;
    }

    void reset() override
    {
        std::fill(_lastUse.begin(), _lastUse.end(), 0);
        _seq = 0;
    }

  private:
    std::vector<uint64_t> _lastUse;
    size_t _ways = 0;
    uint64_t _seq = 0;
};

/**
 * Least Frequently Used with saturating 4-bit counters. When any
 * counter in a set saturates, every counter in that set is halved,
 * aging out stale frequency information (cf. RRIP-style aging).
 * Count ties break by recency (least recently used first), so stale
 * low-count entries age out instead of pinning a set.
 */
class LfuPolicy : public ReplacementPolicy
{
  public:
    /** @param counter_bits width of the per-entry counter (paper: 4). */
    explicit LfuPolicy(unsigned counter_bits = 4)
        : _maxCount((1u << counter_bits) - 1)
    {
        HYPERSIO_ASSERT(counter_bits >= 1 && counter_bits <= 16,
                        "unsupported LFU counter width");
    }

    void
    init(size_t num_sets, size_t num_ways) override
    {
        _count.assign(num_sets * num_ways, 0);
        _lastUse.assign(num_sets * num_ways, 0);
        _ways = num_ways;
        _seq = 0;
    }

    void
    touch(size_t set, size_t way, uint64_t) override
    {
        bump(set, way);
        _lastUse[set * _ways + way] = ++_seq;
    }

    void
    insert(size_t set, size_t way, uint64_t) override
    {
        _count[set * _ways + way] = 1;
        _lastUse[set * _ways + way] = ++_seq;
    }

    void invalidate(size_t set, size_t way) override
    {
        _count[set * _ways + way] = 0;
        _lastUse[set * _ways + way] = 0;
    }

    size_t
    victim(size_t set, const std::vector<size_t> &ways,
           const uint64_t *) override
    {
        size_t best = ways.front();
        uint32_t best_count = _count[set * _ways + best];
        uint64_t best_use = _lastUse[set * _ways + best];
        for (size_t w : ways) {
            const uint32_t count = _count[set * _ways + w];
            const uint64_t use = _lastUse[set * _ways + w];
            if (count < best_count ||
                (count == best_count && use < best_use)) {
                best = w;
                best_count = count;
                best_use = use;
            }
        }
        return best;
    }

    void reset() override
    {
        std::fill(_count.begin(), _count.end(), 0);
        std::fill(_lastUse.begin(), _lastUse.end(), 0);
        _seq = 0;
    }

    /** Exposed for testing: current counter value of (set, way). */
    uint32_t
    counter(size_t set, size_t way) const
    {
        return _count[set * _ways + way];
    }

  private:
    void
    bump(size_t set, size_t way)
    {
        uint32_t &c = _count[set * _ways + way];
        if (c < _maxCount) {
            ++c;
            return;
        }
        // Saturated: halve every counter in the row, then bump.
        for (size_t w = 0; w < _ways; ++w)
            _count[set * _ways + w] >>= 1;
        ++c;
    }

    std::vector<uint32_t> _count;
    std::vector<uint64_t> _lastUse;
    size_t _ways = 0;
    uint64_t _seq = 0;
    const uint32_t _maxCount;
};

/** First-In First-Out: evicts the oldest-inserted way. */
class FifoPolicy : public ReplacementPolicy
{
  public:
    void
    init(size_t num_sets, size_t num_ways) override
    {
        _inserted.assign(num_sets * num_ways, 0);
        _ways = num_ways;
        _seq = 0;
    }

    void touch(size_t, size_t, uint64_t) override {}

    void
    insert(size_t set, size_t way, uint64_t) override
    {
        _inserted[set * _ways + way] = ++_seq;
    }

    void invalidate(size_t set, size_t way) override
    {
        _inserted[set * _ways + way] = 0;
    }

    size_t
    victim(size_t set, const std::vector<size_t> &ways,
           const uint64_t *) override
    {
        size_t best = ways.front();
        uint64_t best_seq = _inserted[set * _ways + best];
        for (size_t w : ways) {
            uint64_t seq = _inserted[set * _ways + w];
            if (seq < best_seq) {
                best = w;
                best_seq = seq;
            }
        }
        return best;
    }

    void reset() override
    {
        std::fill(_inserted.begin(), _inserted.end(), 0);
        _seq = 0;
    }

  private:
    std::vector<uint64_t> _inserted;
    size_t _ways = 0;
    uint64_t _seq = 0;
};

/** Uniform-random victim selection (deterministic from a seed). */
class RandomPolicy : public ReplacementPolicy
{
  public:
    explicit RandomPolicy(uint64_t seed = 1) : _rng(seed) {}

    void init(size_t, size_t) override {}
    void touch(size_t, size_t, uint64_t) override {}
    void insert(size_t, size_t, uint64_t) override {}
    void invalidate(size_t, size_t) override {}

    size_t
    victim(size_t, const std::vector<size_t> &ways,
           const uint64_t *) override
    {
        return ways[_rng.below(ways.size())];
    }

    void reset() override {}

  private:
    Rng _rng;
};

/**
 * Source of future-knowledge for the Belady oracle policy: returns
 * the position of the next reference to `key` strictly after the
 * current position, or UINT64_MAX if the key is never used again.
 */
class FutureOracle
{
  public:
    virtual ~FutureOracle() = default;
    virtual uint64_t nextUse(uint64_t key) const = 0;
};

/**
 * Belady's optimal policy: evicts the resident entry whose next use
 * lies furthest in the future. Requires a FutureOracle fed with the
 * full access sequence (see OracleFeed).
 */
class OraclePolicy : public ReplacementPolicy
{
  public:
    explicit OraclePolicy(const FutureOracle &oracle) : _oracle(oracle)
    {}

    void init(size_t, size_t) override {}
    void touch(size_t, size_t, uint64_t) override {}
    void insert(size_t, size_t, uint64_t) override {}
    void invalidate(size_t, size_t) override {}

    size_t
    victim(size_t, const std::vector<size_t> &ways,
           const uint64_t *keys) override
    {
        size_t best = ways.front();
        uint64_t best_next = _oracle.nextUse(keys[best]);
        for (size_t w : ways) {
            uint64_t next = _oracle.nextUse(keys[w]);
            if (next > best_next) {
                best = w;
                best_next = next;
            }
        }
        return best;
    }

    void reset() override {}

  private:
    const FutureOracle &_oracle;
};

/**
 * Factory for non-oracle policies. Oracle policies need a FutureOracle
 * and are constructed explicitly by the caller.
 * @param lfu_bits counter width used when kind is LFU
 */
std::unique_ptr<ReplacementPolicy>
makePolicy(ReplPolicyKind kind, uint64_t seed = 1,
           unsigned lfu_bits = 4);

} // namespace hypersio::cache

#endif // HYPERSIO_CACHE_REPLACEMENT_HH
