/**
 * @file
 * Generic set-associative, optionally partitioned translation cache.
 *
 * This single template backs every caching structure in the model:
 * the Device TLB, the IOMMU's IOTLB, the paging-structure caches
 * (L2/L3/L4 TLBs), the Context Cache, and the Prefetch Buffer (as a
 * fully-associative instance).
 *
 * Partitioning implements the paper's P-DevTLB: the cache's sets are
 * divided into `partitions` equal groups (a partition tag per row);
 * a request may look up and allocate only inside the set group
 * selected by its partition id (low bits of the Source ID). With
 * partitions == 1 the cache behaves classically.
 *
 * Storage is split structure-of-arrays style: a dense 1-byte tag
 * plane scanned by the way-matching loop (0 for an invalid way,
 * otherwise a marker bit plus a 7-bit key digest), and parallel
 * key/value arrays touched only when a digest matches. Each set's
 * tag row is padded to a 16-lane group so the whole scan is one
 * group compare through util/simd.hh (SSE2/NEON, scalar fallback):
 * candidate ways come back as a bitmask and are verified against the
 * full 64-bit key lowest-way-first, so hit/miss results — and thus
 * every replacement decision — are bit-identical across backends
 * (padding lanes stay zero and can never match a digest, whose
 * marker bit is always set). A live valid-entry counter makes
 * occupancy() O(1), and a per-set fill count skips the invalid-way
 * scan once a set has filled (sets never "unfill" except via
 * invalidate/flush, so a full set usually stays full).
 *
 * Building with -DHYPERSIO_LEGACY_STRUCTURES=ON selects the original
 * array-of-structures layout (same behaviour, bit-identical
 * simulation results) as the pinned reference for the
 * translation-path microbenchmark; see util/flat_map.hh for the
 * matching map-side reference mode.
 */

#ifndef HYPERSIO_CACHE_SET_ASSOC_CACHE_HH
#define HYPERSIO_CACHE_SET_ASSOC_CACHE_HH

#include <algorithm>
#include <bit>
#include <optional>
#include <vector>

#include "cache/replacement.hh"
#include "stats/stats.hh"
#include "util/bitfield.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/simd.hh"

namespace hypersio::cache
{

/** Geometry and policy configuration for a SetAssocCache. */
struct CacheConfig
{
    /** Total entries; must be a multiple of `ways`. */
    size_t entries = 64;
    /** Associativity; `entries == ways` gives a fully-assoc cache. */
    size_t ways = 8;
    /** Number of row partitions (PTag groups); must divide the sets. */
    size_t partitions = 1;
    /** Replacement policy. */
    ReplPolicyKind policy = ReplPolicyKind::LRU;
    /** Seed for randomized policies. */
    uint64_t seed = 1;
    /**
     * Select the set by hashing the full key instead of using the
     * low index bits directly. Chipset-side structures (IOTLB) hash
     * the domain into the index, spreading same-gIOVA tenants across
     * sets; simple device-side TLBs do not — which is why identical
     * guest drivers conflict there (Section IV-D).
     */
    bool hashIndex = false;
    /** LFU counter width in bits (paper: 4). */
    unsigned lfuBits = 4;
    /**
     * Sub-entries per tag (1 disables; appended last so positional
     * brace initialization of the older fields keeps working). With
     * S > 1 each tag matches on the domain-independent low
     * SubEntrySharedKeyBits of the key — tenants whose gIOVA layouts
     * coincide, the common case the paper highlights, share one
     * tag — and the way carries up to S per-tenant (full key, value)
     * sub-slots behind it. Ways and sets still count tags, so reach
     * grows toward entries * S translations for the area cost of S
     * payloads (not S full tags) per way. Sub-slot replacement is
     * round-robin inside the tag; evicting a tag evicts every tenant
     * behind it. Flat (SoA) structures only.
     */
    size_t subEntries = 1;

    size_t sets() const { return entries / ways; }
};

/**
 * Bits of a translation/paging key below the domain field (see
 * iommu/keys.hh): the tenant-independent page identity that
 * sub-entry-shared tags match on. Domains sit at bit 40 and up in
 * both key families, so masking them off leaves exactly the
 * (size/level, page-frame/prefix) part tenants can share.
 */
constexpr unsigned SubEntrySharedKeyBits = 40;

/** The shared (domain-stripped) part of a key. */
constexpr uint64_t
subEntrySharedKey(uint64_t key)
{
    return key & ((uint64_t(1) << SubEntrySharedKeyBits) - 1);
}

/** Aggregate hit/miss statistics of one cache instance. */
struct CacheStats
{
    uint64_t lookups = 0;
    uint64_t hits = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    uint64_t invalidations = 0;

    uint64_t misses() const { return lookups - hits; }
    double
    missRate() const
    {
        return lookups == 0
                   ? 0.0
                   : static_cast<double>(misses()) /
                         static_cast<double>(lookups);
    }
};

#ifndef HYPERSIO_LEGACY_STRUCTURES

/**
 * Set-associative cache mapping a 64-bit key to a value of type V.
 *
 * The *key* is the full identity used for tag matching (callers pack
 * e.g. SID and page number into it). The *index* is the value whose
 * low bits select the set inside the partition — kept separate from
 * the key so that different tenants using the same gIOVA pages index
 * to the same rows, which is exactly the conflict behaviour the paper
 * analyses.
 *
 * `Ops` selects the 16-wide group-probe backend (util/simd.hh); the
 * default is the build's best backend, and tests instantiate the
 * scalar reference to prove behavioural equivalence.
 */
template <typename V, typename Ops = util::simd::DefaultGroupOps>
class SetAssocCache
{
  public:
    /** Result of an insertion: the evicted key, if any. */
    struct Eviction
    {
        uint64_t key;
        V value;
    };

    /**
     * Constructs with an owned policy created from config.policy.
     * For oracle replacement use the other constructor.
     */
    explicit SetAssocCache(const CacheConfig &config)
        : SetAssocCache(config, makePolicy(config.policy, config.seed,
                                           config.lfuBits))
    {}

    /** Constructs with an explicit (possibly oracle) policy. */
    SetAssocCache(const CacheConfig &config,
                  std::unique_ptr<ReplacementPolicy> policy)
        : _config(config), _policy(std::move(policy))
    {
        HYPERSIO_ASSERT(_config.ways > 0 && _config.entries > 0,
                        "cache must have entries");
        HYPERSIO_ASSERT(_config.entries % _config.ways == 0,
                        "entries (%zu) not a multiple of ways (%zu)",
                        _config.entries, _config.ways);
        const size_t sets = _config.sets();
        HYPERSIO_ASSERT(_config.partitions >= 1 &&
                            sets % _config.partitions == 0,
                        "partitions (%zu) must divide sets (%zu)",
                        _config.partitions, sets);
        _setsPerPartition = sets / _config.partitions;
        HYPERSIO_ASSERT(_config.subEntries >= 1 &&
                            _config.subEntries <= 16,
                        "subEntries (%zu) out of range [1, 16]",
                        _config.subEntries);
        _sub = _config.subEntries;
        // Round each set's tag row up to whole 16-lane groups so the
        // way scan never reads past its row; the padding lanes stay
        // zero forever.
        constexpr size_t group = util::simd::GroupWidth;
        _wayStride = (_config.ways + group - 1) & ~(group - 1);
        _tagBytes.resize(sets * _wayStride, 0);
        _tagKeys.resize(sets * _config.ways, 0);
        _values.resize(sets * _config.ways * _sub);
        _setFill.resize(sets, 0);
        if (_sub > 1) {
            _subKeys.resize(sets * _config.ways * _sub, 0);
            _subValid.resize(sets * _config.ways * _sub, 0);
            _subFill.resize(sets * _config.ways, 0);
            _subVictim.resize(sets * _config.ways, 0);
        }
        _victimKeys.resize(_config.ways);
        _policy->init(sets, _config.ways);
    }

    const CacheConfig &config() const { return _config; }
    const CacheStats &stats() const { return _stats; }
    size_t numSets() const { return _config.sets(); }
    size_t numWays() const { return _config.ways; }
    size_t numPartitions() const { return _config.partitions; }

    /**
     * Looks up `key`. `index` selects the set; `partition` selects
     * the row group (ignored when the cache has one partition).
     * @return pointer to the cached value, or nullptr on miss.
     */
    V *
    lookup(uint64_t key, uint64_t index, uint32_t partition = 0)
    {
        if (_sub > 1)
            return lookupSub(key, index, partition);
        ++_stats.lookups;
        const size_t set = setFor(key, index, partition);
        const size_t way = findWay(set, key);
        if (way == _config.ways)
            return nullptr;
        ++_stats.hits;
        _policy->touch(set, way, key);
        return &_values[set * _config.ways + way];
    }

    /** Like lookup() but with no policy/statistics side effects. */
    const V *
    peek(uint64_t key, uint64_t index, uint32_t partition = 0) const
    {
        const size_t set = setFor(key, index, partition);
        if (_sub > 1) {
            const size_t way = findWay(set, subEntrySharedKey(key));
            if (way == _config.ways)
                return nullptr;
            const size_t sub = findSub(set, way, key);
            return sub == _sub ? nullptr
                               : &_values[subBase(set, way) + sub];
        }
        const size_t way = findWay(set, key);
        return way == _config.ways
                   ? nullptr
                   : &_values[set * _config.ways + way];
    }

    /**
     * Inserts (or updates) key → value.
     * @return the eviction that made room, if one occurred.
     */
    std::optional<Eviction>
    insert(uint64_t key, uint64_t index, V value,
           uint32_t partition = 0)
    {
        if (_sub > 1)
            return insertSub(key, index, std::move(value), partition);
        const size_t set = setFor(key, index, partition);
        const size_t base = set * _config.ways;

        // Update in place on re-insertion.
        if (const size_t way = findWay(set, key);
            way != _config.ways) {
            _values[base + way] = std::move(value);
            _policy->touch(set, way, key);
            return std::nullopt;
        }

        ++_stats.insertions;

        // Use an invalid way if one exists; the fill count lets a
        // full set (the steady state) skip the scan entirely.
        uint8_t *row = _tagBytes.data() + set * _wayStride;
        if (_setFill[set] < _config.ways) {
            size_t way = 0;
            while (row[way])
                ++way;
            row[way] = tagByteOf(key);
            _tagKeys[base + way] = key;
            _values[base + way] = std::move(value);
            ++_setFill[set];
            ++_occupied;
            _policy->insert(set, way, key);
            return std::nullopt;
        }

        // All ways valid: ask the policy for a victim.
        _victimWays.clear();
        for (size_t w = 0; w < _config.ways; ++w) {
            _victimWays.push_back(w);
            _victimKeys[w] = _tagKeys[base + w];
        }
        size_t victim = _policy->victim(set, _victimWays,
                                        _victimKeys.data());
        HYPERSIO_ASSERT(victim < _config.ways, "policy victim range");

        Eviction evicted{_tagKeys[base + victim],
                         std::move(_values[base + victim])};
        ++_stats.evictions;
        row[victim] = tagByteOf(key);
        _tagKeys[base + victim] = key;
        _values[base + victim] = std::move(value);
        _policy->insert(set, victim, key);
        return evicted;
    }

    /** Invalidates `key` if present. @return true when removed. */
    bool
    invalidate(uint64_t key, uint64_t index, uint32_t partition = 0)
    {
        if (_sub > 1)
            return invalidateSub(key, index, partition);
        const size_t set = setFor(key, index, partition);
        const size_t way = findWay(set, key);
        if (way == _config.ways)
            return false;
        _tagBytes[set * _wayStride + way] = 0;
        --_setFill[set];
        --_occupied;
        ++_stats.invalidations;
        _policy->invalidate(set, way);
        return true;
    }

    /** Invalidates every entry (e.g. on tenant teardown). */
    void
    flush()
    {
        if (_sub > 1) {
            _stats.invalidations += _occupied;
            std::fill(_tagBytes.begin(), _tagBytes.end(),
                      uint8_t(0));
            std::fill(_subValid.begin(), _subValid.end(),
                      uint8_t(0));
            std::fill(_subFill.begin(), _subFill.end(), uint8_t(0));
            std::fill(_subVictim.begin(), _subVictim.end(),
                      uint8_t(0));
            std::fill(_setFill.begin(), _setFill.end(), 0u);
            _occupied = 0;
            _policy->reset();
            return;
        }
        // Padding lanes are always zero, so iterating the padded
        // plane visits exactly the valid ways.
        for (auto &tag : _tagBytes) {
            if (tag) {
                tag = 0;
                ++_stats.invalidations;
            }
        }
        std::fill(_setFill.begin(), _setFill.end(), 0u);
        _occupied = 0;
        _policy->reset();
    }

    /** Number of currently valid entries (O(1): live counter). */
    size_t occupancy() const { return _occupied; }

    /** Resets statistics but keeps contents. */
    void resetStats() { _stats = CacheStats{}; }

    /**
     * Registers this cache's counters in `group` as lazily-read
     * Callback stats. Values are read from the live CacheStats at
     * dump time, so the exported numbers always match stats(); the
     * cache must outlive the group's dumps.
     */
    void
    exportStats(stats::StatGroup &group) const
    {
        const CacheStats *s = &_stats;
        group.makeCallback("lookups", "tag lookups", [s] {
            return static_cast<double>(s->lookups);
        });
        group.makeCallback("hits", "tag hits", [s] {
            return static_cast<double>(s->hits);
        });
        group.makeCallback("misses", "tag misses", [s] {
            return static_cast<double>(s->misses());
        });
        group.makeCallback("miss_rate", "misses / lookups",
                           [s] { return s->missRate(); });
        group.makeCallback("insertions", "lines allocated", [s] {
            return static_cast<double>(s->insertions);
        });
        group.makeCallback("evictions", "lines evicted", [s] {
            return static_cast<double>(s->evictions);
        });
        group.makeCallback("invalidations", "lines invalidated",
                           [s] {
                               return static_cast<double>(
                                   s->invalidations);
                           });
    }

    /**
     * Visits all valid entries: fn(key, value, set, way). Used by the
     * oracle pre-pass and tests.
     */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        const size_t sets = _config.sets();
        if (_sub > 1) {
            for (size_t s = 0; s < sets; ++s) {
                for (size_t w = 0; w < _config.ways; ++w) {
                    if (!_tagBytes[s * _wayStride + w])
                        continue;
                    const size_t sbase = subBase(s, w);
                    for (size_t e = 0; e < _sub; ++e) {
                        if (_subValid[sbase + e])
                            fn(_subKeys[sbase + e],
                               _values[sbase + e], s, w);
                    }
                }
            }
            return;
        }
        for (size_t s = 0; s < sets; ++s) {
            for (size_t w = 0; w < _config.ways; ++w) {
                const size_t slot = s * _config.ways + w;
                if (_tagBytes[s * _wayStride + w])
                    fn(_tagKeys[slot], _values[slot], s, w);
            }
        }
    }

    /**
     * Computes the global set index for (key, index, partition). In
     * sub-entry mode a hashed index mixes the *shared* key, so
     * same-layout tenants co-index (the precondition for sharing a
     * tag); with subEntries == 1 the behaviour is unchanged.
     */
    size_t
    setFor(uint64_t key, uint64_t index, uint32_t partition) const
    {
        const uint64_t hashed =
            _sub > 1 ? subEntrySharedKey(key) : key;
        return setIndex(_config.hashIndex ? splitmix64(hashed)
                                          : index,
                        partition);
    }

    /** Computes the global set index for (index, partition). */
    size_t
    setIndex(uint64_t index, uint32_t partition) const
    {
        const uint32_t part =
            _config.partitions == 1
                ? 0
                : partition % static_cast<uint32_t>(_config.partitions);
        return static_cast<size_t>(part) * _setsPerPartition +
               static_cast<size_t>(index % _setsPerPartition);
    }

  private:
    /**
     * 1-byte way tag: the marker bit plus the top 7 bits of the
     * key's Fibonacci mix (well mixed even for page-base keys, whose
     * low bits are zero). 0 marks an invalid way — the marker bit
     * keeps every live digest nonzero, so zero padding lanes can
     * never produce a candidate.
     */
    static uint8_t
    tagByteOf(uint64_t key)
    {
        return uint8_t((key * 0x9E3779B97F4A7C15ull) >> 57) | 0x80;
    }

    /**
     * Scans the set's tag row for `key`, one 16-lane group compare
     * per group of ways. Candidate ways (digest matches) are
     * verified against the full key lowest-way-first, matching the
     * scalar scan's order exactly.
     * @return the matching way, or `ways` when absent.
     */
    size_t
    findWay(size_t set, uint64_t key) const
    {
        const uint8_t *row = _tagBytes.data() + set * _wayStride;
        const uint64_t *keys = _tagKeys.data() + set * _config.ways;
        const uint8_t digest = tagByteOf(key);
        for (size_t g = 0; g < _wayStride;
             g += util::simd::GroupWidth) {
            uint32_t cand = Ops::matchMask(row + g, digest);
            while (cand) {
                const size_t w = g + size_t(std::countr_zero(cand));
                if (keys[w] == key)
                    return w;
                cand &= cand - 1;
            }
        }
        return _config.ways;
    }

    // ---- Sub-entry mode (subEntries > 1) ---------------------------
    // The tag plane and _tagKeys hold *shared* keys; each way owns a
    // plane of `_sub` (full key, value) sub-slots behind its tag.

    /** First sub-slot of (set, way) in the sub planes. */
    size_t
    subBase(size_t set, size_t way) const
    {
        return (set * _config.ways + way) * _sub;
    }

    /** Sub-slot holding `key` in (set, way), or `_sub` when absent. */
    size_t
    findSub(size_t set, size_t way, uint64_t key) const
    {
        const size_t sbase = subBase(set, way);
        for (size_t e = 0; e < _sub; ++e)
            if (_subValid[sbase + e] && _subKeys[sbase + e] == key)
                return e;
        return _sub;
    }

    V *
    lookupSub(uint64_t key, uint64_t index, uint32_t partition)
    {
        ++_stats.lookups;
        const size_t set = setFor(key, index, partition);
        const size_t way = findWay(set, subEntrySharedKey(key));
        if (way == _config.ways)
            return nullptr;
        // Tag present but no sub-entry for this tenant: still a miss
        // (another tenant with the same layout owns the tag).
        const size_t sub = findSub(set, way, key);
        if (sub == _sub)
            return nullptr;
        ++_stats.hits;
        _policy->touch(set, way, subEntrySharedKey(key));
        return &_values[subBase(set, way) + sub];
    }

    /** Resets (set, way) to hold only `key` under its shared tag. */
    void
    installTag(size_t set, size_t way, uint64_t key, V value)
    {
        const uint64_t shared = subEntrySharedKey(key);
        const size_t sbase = subBase(set, way);
        _tagBytes[set * _wayStride + way] = tagByteOf(shared);
        _tagKeys[set * _config.ways + way] = shared;
        std::fill_n(_subValid.begin() +
                        static_cast<ptrdiff_t>(sbase),
                    _sub, uint8_t(0));
        _subValid[sbase] = 1;
        _subKeys[sbase] = key;
        _values[sbase] = std::move(value);
        _subFill[set * _config.ways + way] = 1;
        _subVictim[set * _config.ways + way] = 0;
        ++_occupied;
    }

    std::optional<Eviction>
    insertSub(uint64_t key, uint64_t index, V value,
              uint32_t partition)
    {
        const uint64_t shared = subEntrySharedKey(key);
        const size_t set = setFor(key, index, partition);
        const size_t base = set * _config.ways;

        if (const size_t way = findWay(set, shared);
            way != _config.ways) {
            const size_t sbase = subBase(set, way);
            // Update in place on re-insertion of the same tenant.
            if (const size_t sub = findSub(set, way, key);
                sub != _sub) {
                _values[sbase + sub] = std::move(value);
                _policy->touch(set, way, shared);
                return std::nullopt;
            }
            ++_stats.insertions;
            // A free sub-slot under the shared tag: the sharing win —
            // no way is consumed and nothing is evicted.
            if (_subFill[base + way] < _sub) {
                size_t sub = 0;
                while (_subValid[sbase + sub])
                    ++sub;
                _subValid[sbase + sub] = 1;
                _subKeys[sbase + sub] = key;
                _values[sbase + sub] = std::move(value);
                ++_subFill[base + way];
                ++_occupied;
                _policy->touch(set, way, shared);
                return std::nullopt;
            }
            // Tag full: round-robin victim among the tag's tenants.
            const size_t victim = _subVictim[base + way];
            _subVictim[base + way] =
                static_cast<uint8_t>((victim + 1) % _sub);
            Eviction evicted{_subKeys[sbase + victim],
                             std::move(_values[sbase + victim])};
            ++_stats.evictions;
            _subKeys[sbase + victim] = key;
            _values[sbase + victim] = std::move(value);
            _policy->touch(set, way, shared);
            return evicted;
        }

        ++_stats.insertions;

        // New tag: use an invalid way if one exists.
        uint8_t *row = _tagBytes.data() + set * _wayStride;
        if (_setFill[set] < _config.ways) {
            size_t way = 0;
            while (row[way])
                ++way;
            installTag(set, way, key, std::move(value));
            ++_setFill[set];
            _policy->insert(set, way, shared);
            return std::nullopt;
        }

        // All tags valid: the policy picks a victim way, and every
        // tenant sub-entry behind its tag dies with it. The lowest
        // valid sub-slot is reported as the representative eviction;
        // mirrors derive the rest from its shared tag (an eviction
        // whose tag differs from the fill's tag is always whole-tag).
        _victimWays.clear();
        for (size_t w = 0; w < _config.ways; ++w) {
            _victimWays.push_back(w);
            _victimKeys[w] = _tagKeys[base + w];
        }
        const size_t victim =
            _policy->victim(set, _victimWays, _victimKeys.data());
        HYPERSIO_ASSERT(victim < _config.ways, "policy victim range");

        const size_t vbase = subBase(set, victim);
        size_t rep = 0;
        while (!_subValid[vbase + rep])
            ++rep;
        Eviction evicted{_subKeys[vbase + rep],
                         std::move(_values[vbase + rep])};
        ++_stats.evictions;
        _occupied -= _subFill[base + victim];
        installTag(set, victim, key, std::move(value));
        _policy->insert(set, victim, shared);
        return evicted;
    }

    bool
    invalidateSub(uint64_t key, uint64_t index, uint32_t partition)
    {
        const size_t set = setFor(key, index, partition);
        const size_t way = findWay(set, subEntrySharedKey(key));
        if (way == _config.ways)
            return false;
        const size_t sub = findSub(set, way, key);
        if (sub == _sub)
            return false;
        const size_t base = set * _config.ways;
        _subValid[subBase(set, way) + sub] = 0;
        --_occupied;
        ++_stats.invalidations;
        // The last tenant leaving frees the tag (and the way).
        if (--_subFill[base + way] == 0) {
            _tagBytes[set * _wayStride + way] = 0;
            --_setFill[set];
            _policy->invalidate(set, way);
        }
        return true;
    }

    CacheConfig _config;
    std::unique_ptr<ReplacementPolicy> _policy;

    // SoA storage: the tag plane is all the way scan touches; the
    // key array is read per digest match, the value array only on
    // hit/insert/evict.
    std::vector<uint8_t> _tagBytes;
    std::vector<uint64_t> _tagKeys;
    std::vector<V> _values;
    /** Sub-entry planes (subEntries > 1 only; see CacheConfig). */
    size_t _sub = 1;
    std::vector<uint64_t> _subKeys;
    std::vector<uint8_t> _subValid;
    /** Valid sub-entries per (set, way). */
    std::vector<uint8_t> _subFill;
    /** Round-robin sub-victim cursor per (set, way). */
    std::vector<uint8_t> _subVictim;
    /** Valid ways per set; `ways` means the invalid-way scan is moot. */
    std::vector<uint32_t> _setFill;
    /** Tag-plane bytes per set: ways rounded up to 16-lane groups. */
    size_t _wayStride = util::simd::GroupWidth;
    /** Live valid-entry count across all sets. */
    size_t _occupied = 0;

    size_t _setsPerPartition = 1;
    CacheStats _stats;

    // Scratch buffers for victim selection (avoid per-miss alloc).
    std::vector<size_t> _victimWays;
    std::vector<uint64_t> _victimKeys;
};

#else // HYPERSIO_LEGACY_STRUCTURES

/**
 * Reference mode: the original array-of-Line layout, kept verbatim
 * (O(entries) occupancy, per-insert invalid-way scan) so the
 * translation-path microbench can measure the SoA split end-to-end.
 * Behaviour is bit-identical to the SoA implementation above. The
 * group-probe backend parameter is accepted for API compatibility
 * and ignored.
 */
template <typename V, typename Ops = util::simd::DefaultGroupOps>
class SetAssocCache
{
  public:
    /** Result of an insertion: the evicted key, if any. */
    struct Eviction
    {
        uint64_t key;
        V value;
    };

    explicit SetAssocCache(const CacheConfig &config)
        : SetAssocCache(config, makePolicy(config.policy, config.seed,
                                           config.lfuBits))
    {}

    SetAssocCache(const CacheConfig &config,
                  std::unique_ptr<ReplacementPolicy> policy)
        : _config(config), _policy(std::move(policy))
    {
        HYPERSIO_ASSERT(_config.ways > 0 && _config.entries > 0,
                        "cache must have entries");
        HYPERSIO_ASSERT(_config.entries % _config.ways == 0,
                        "entries (%zu) not a multiple of ways (%zu)",
                        _config.entries, _config.ways);
        if (_config.subEntries > 1)
            fatal("sub-entry sharing (subEntries=%zu) requires the "
                  "flat structures; rebuild without "
                  "HYPERSIO_LEGACY_STRUCTURES",
                  _config.subEntries);
        const size_t sets = _config.sets();
        HYPERSIO_ASSERT(_config.partitions >= 1 &&
                            sets % _config.partitions == 0,
                        "partitions (%zu) must divide sets (%zu)",
                        _config.partitions, sets);
        _setsPerPartition = sets / _config.partitions;
        _lines.resize(sets * _config.ways);
        _victimKeys.resize(_config.ways);
        _policy->init(sets, _config.ways);
    }

    const CacheConfig &config() const { return _config; }
    const CacheStats &stats() const { return _stats; }
    size_t numSets() const { return _config.sets(); }
    size_t numWays() const { return _config.ways; }
    size_t numPartitions() const { return _config.partitions; }

    V *
    lookup(uint64_t key, uint64_t index, uint32_t partition = 0)
    {
        ++_stats.lookups;
        const size_t set = setFor(key, index, partition);
        Line *line = findLine(set, key);
        if (!line)
            return nullptr;
        ++_stats.hits;
        _policy->touch(set, wayOf(set, line), key);
        return &line->value;
    }

    const V *
    peek(uint64_t key, uint64_t index, uint32_t partition = 0) const
    {
        const size_t set = setFor(key, index, partition);
        const Line *line = findLine(set, key);
        return line ? &line->value : nullptr;
    }

    std::optional<Eviction>
    insert(uint64_t key, uint64_t index, V value,
           uint32_t partition = 0)
    {
        const size_t set = setFor(key, index, partition);
        // Update in place on re-insertion.
        if (Line *line = findLine(set, key)) {
            line->value = std::move(value);
            _policy->touch(set, wayOf(set, line), key);
            return std::nullopt;
        }

        ++_stats.insertions;

        // Use an invalid way if one exists.
        for (size_t w = 0; w < _config.ways; ++w) {
            Line &line = at(set, w);
            if (!line.valid) {
                line.valid = true;
                line.key = key;
                line.value = std::move(value);
                _policy->insert(set, w, key);
                return std::nullopt;
            }
        }

        // All ways valid: ask the policy for a victim.
        _victimWays.clear();
        for (size_t w = 0; w < _config.ways; ++w) {
            _victimWays.push_back(w);
            _victimKeys[w] = at(set, w).key;
        }
        size_t victim = _policy->victim(set, _victimWays,
                                        _victimKeys.data());
        HYPERSIO_ASSERT(victim < _config.ways, "policy victim range");

        Line &line = at(set, victim);
        Eviction evicted{line.key, std::move(line.value)};
        ++_stats.evictions;
        line.key = key;
        line.value = std::move(value);
        _policy->insert(set, victim, key);
        return evicted;
    }

    bool
    invalidate(uint64_t key, uint64_t index, uint32_t partition = 0)
    {
        const size_t set = setFor(key, index, partition);
        Line *line = findLine(set, key);
        if (!line)
            return false;
        line->valid = false;
        ++_stats.invalidations;
        _policy->invalidate(set, wayOf(set, line));
        return true;
    }

    void
    flush()
    {
        for (auto &line : _lines) {
            if (line.valid) {
                line.valid = false;
                ++_stats.invalidations;
            }
        }
        _policy->reset();
    }

    /** Number of currently valid entries (O(entries)). */
    size_t
    occupancy() const
    {
        size_t n = 0;
        for (const auto &line : _lines)
            n += line.valid ? 1 : 0;
        return n;
    }

    void resetStats() { _stats = CacheStats{}; }

    void
    exportStats(stats::StatGroup &group) const
    {
        const CacheStats *s = &_stats;
        group.makeCallback("lookups", "tag lookups", [s] {
            return static_cast<double>(s->lookups);
        });
        group.makeCallback("hits", "tag hits", [s] {
            return static_cast<double>(s->hits);
        });
        group.makeCallback("misses", "tag misses", [s] {
            return static_cast<double>(s->misses());
        });
        group.makeCallback("miss_rate", "misses / lookups",
                           [s] { return s->missRate(); });
        group.makeCallback("insertions", "lines allocated", [s] {
            return static_cast<double>(s->insertions);
        });
        group.makeCallback("evictions", "lines evicted", [s] {
            return static_cast<double>(s->evictions);
        });
        group.makeCallback("invalidations", "lines invalidated",
                           [s] {
                               return static_cast<double>(
                                   s->invalidations);
                           });
    }

    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        const size_t sets = _config.sets();
        for (size_t s = 0; s < sets; ++s) {
            for (size_t w = 0; w < _config.ways; ++w) {
                const Line &line = at(s, w);
                if (line.valid)
                    fn(line.key, line.value, s, w);
            }
        }
    }

    size_t
    setFor(uint64_t key, uint64_t index, uint32_t partition) const
    {
        return setIndex(_config.hashIndex ? splitmix64(key) : index,
                        partition);
    }

    size_t
    setIndex(uint64_t index, uint32_t partition) const
    {
        const uint32_t part =
            _config.partitions == 1
                ? 0
                : partition % static_cast<uint32_t>(_config.partitions);
        return static_cast<size_t>(part) * _setsPerPartition +
               static_cast<size_t>(index % _setsPerPartition);
    }

  private:
    struct Line
    {
        bool valid = false;
        uint64_t key = 0;
        V value{};
    };

    Line &at(size_t set, size_t way)
    {
        return _lines[set * _config.ways + way];
    }
    const Line &at(size_t set, size_t way) const
    {
        return _lines[set * _config.ways + way];
    }

    Line *
    findLine(size_t set, uint64_t key)
    {
        for (size_t w = 0; w < _config.ways; ++w) {
            Line &line = at(set, w);
            if (line.valid && line.key == key)
                return &line;
        }
        return nullptr;
    }

    const Line *
    findLine(size_t set, uint64_t key) const
    {
        for (size_t w = 0; w < _config.ways; ++w) {
            const Line &line = at(set, w);
            if (line.valid && line.key == key)
                return &line;
        }
        return nullptr;
    }

    size_t
    wayOf(size_t set, const Line *line) const
    {
        return static_cast<size_t>(line - &_lines[set * _config.ways]);
    }

    CacheConfig _config;
    std::unique_ptr<ReplacementPolicy> _policy;
    std::vector<Line> _lines;
    size_t _setsPerPartition = 1;
    CacheStats _stats;

    // Scratch buffers for victim selection (avoid per-miss alloc).
    std::vector<size_t> _victimWays;
    std::vector<uint64_t> _victimKeys;
};

#endif // HYPERSIO_LEGACY_STRUCTURES

} // namespace hypersio::cache

#endif // HYPERSIO_CACHE_SET_ASSOC_CACHE_HH
