/**
 * @file
 * Future-knowledge feed for Belady-oracle replacement.
 *
 * The simulator records the full key access sequence of a trace in a
 * pre-pass, then replays it: before each access it calls advance(),
 * after which nextUse(key) answers "at which global position will
 * `key` be referenced next, strictly after the current one?" — the
 * question Belady's algorithm needs.
 */

#ifndef HYPERSIO_CACHE_ORACLE_FEED_HH
#define HYPERSIO_CACHE_ORACLE_FEED_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cache/replacement.hh"
#include "util/logging.hh"

namespace hypersio::cache
{

/**
 * Stores, per key, the sorted list of positions at which the key is
 * accessed, plus a cursor advanced in lockstep with the simulation.
 */
class OracleFeed : public FutureOracle
{
  public:
    OracleFeed() = default;

    /** Builds the per-key position lists from the full sequence. */
    explicit OracleFeed(const std::vector<uint64_t> &sequence)
    {
        build(sequence);
    }

    /** (Re)builds from a full access sequence; resets the cursor. */
    void
    build(const std::vector<uint64_t> &sequence)
    {
        _positions.clear();
        for (uint64_t pos = 0; pos < sequence.size(); ++pos)
            _positions[sequence[pos]].uses.push_back(pos);
        _now = 0;
        _length = sequence.size();
    }

    /**
     * Moves the cursor to the next access. Call exactly once per
     * simulated access, *before* the cache lookup for that access.
     */
    void
    advance()
    {
        HYPERSIO_ASSERT(_now < _length, "oracle feed overran sequence");
        ++_now;
    }

    /** Current position (1-based after the first advance()). */
    uint64_t position() const { return _now; }

    /** Total sequence length. */
    uint64_t length() const { return _length; }

    /**
     * Next position of `key` strictly after the current access (the
     * access at position()-1), or UINT64_MAX if never used again.
     * Unknown keys (never in the sequence) also return UINT64_MAX.
     */
    uint64_t
    nextUse(uint64_t key) const override
    {
        auto it = _positions.find(key);
        if (it == _positions.end())
            return UINT64_MAX;
        KeyInfo &info = it->second;
        const auto &uses = info.uses;
        // Lazily advance the per-key cursor past consumed positions.
        while (info.cursor < uses.size() && uses[info.cursor] < _now)
            ++info.cursor;
        if (info.cursor == uses.size())
            return UINT64_MAX;
        return uses[info.cursor];
    }

    /** Rewinds the feed for a second simulation pass. */
    void
    rewind()
    {
        _now = 0;
        for (auto &kv : _positions)
            kv.second.cursor = 0;
    }

  private:
    struct KeyInfo
    {
        std::vector<uint64_t> uses;
        mutable size_t cursor = 0;
    };

    mutable std::unordered_map<uint64_t, KeyInfo> _positions;
    uint64_t _now = 0;
    uint64_t _length = 0;
};

} // namespace hypersio::cache

#endif // HYPERSIO_CACHE_ORACLE_FEED_HH
