#include "workload/benchmarks.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/rng.hh"

namespace hypersio::workload
{

Benchmark
parseBenchmark(const std::string &name)
{
    if (name == "iperf3" || name == "iperf")
        return Benchmark::Iperf3;
    if (name == "mediastream" || name == "media")
        return Benchmark::Mediastream;
    if (name == "websearch" || name == "web")
        return Benchmark::Websearch;
    fatal("unknown benchmark '%s' "
          "(expected iperf3|mediastream|websearch)",
          name.c_str());
}

const char *
benchmarkName(Benchmark bench)
{
    switch (bench) {
      case Benchmark::Iperf3:
        return "iperf3";
      case Benchmark::Mediastream:
        return "mediastream";
      case Benchmark::Websearch:
        return "websearch";
    }
    panic("unreachable benchmark kind");
}

BenchmarkProfile
benchmarkProfile(Benchmark bench)
{
    BenchmarkProfile profile;
    profile.bench = bench;
    TenantPattern &p = profile.pattern;

    switch (bench) {
      case Benchmark::Iperf3:
        // Throughput-oriented steady packet stream: the most regular
        // pattern and the smallest active translation set (paper: 8).
        p.streams = 6;
        p.jitterProb = 0.0;
        p.randomStreamOrder = false;
        p.numDataPages = 32;
        p.accessesPerDataPage = 1500;
        p.numInitPages = 70;
        profile.minTranslations = 68079;
        profile.maxTranslations = 108510;
        break;

      case Benchmark::Mediastream:
        // Eight concurrent video connections per host (the paper's
        // CloudSuite setting), each streaming sequentially, with
        // occasional revisits across the mapped buffer ring; active
        // set around 32.
        p.streams = 8;
        p.jitterProb = 0.12;
        p.randomStreamOrder = false;
        p.numDataPages = 32;
        p.accessesPerDataPage = 1500;
        p.numInitPages = 70;
        profile.minTranslations = 5520;
        profile.maxTranslations = 73657;
        break;

      case Benchmark::Websearch:
        // Request/response index serving: the least regular pattern;
        // active set around 36.
        p.streams = 12;
        p.jitterProb = 0.30;
        p.randomStreamOrder = true;
        p.numDataPages = 36;
        p.accessesPerDataPage = 1200;
        p.numInitPages = 70;
        profile.minTranslations = 43362;
        profile.maxTranslations = 108513;
        break;
    }
    return profile;
}

void
scaleInitPhase(TenantPattern &pattern, uint64_t num_packets)
{
    const uint64_t init_budget =
        std::max<uint64_t>(4, num_packets / 300);
    const unsigned max_accesses = pattern.accessesPerInitPage;
    pattern.numInitPages = static_cast<unsigned>(
        std::min<uint64_t>(pattern.numInitPages, init_budget));
    pattern.accessesPerInitPage = std::clamp<unsigned>(
        static_cast<unsigned>(init_budget /
                              std::max(1u, pattern.numInitPages)),
        1u, std::max(1u, max_accesses));
}

std::vector<trace::TenantLog>
generateLogs(Benchmark bench, unsigned num_tenants, uint64_t seed,
             double scale)
{
    HYPERSIO_ASSERT(num_tenants >= 1, "need at least one tenant");
    if (scale <= 0.0)
        fatal("workload scale must be positive (got %f)", scale);

    const BenchmarkProfile profile = benchmarkProfile(bench);
    const uint64_t min_packets = profile.minTranslations / 3;
    const uint64_t max_packets = profile.maxTranslations / 3;

    auto scaled = [&](uint64_t packets) {
        const auto value = static_cast<uint64_t>(
            static_cast<double>(packets) * scale);
        return std::max<uint64_t>(value, 64);
    };

    TenantPattern pattern = profile.pattern;
    scaleInitPhase(pattern, scaled(min_packets));

    TenantLogGenerator generator(pattern, seed);
    Rng rng(hashCombine(seed, static_cast<uint64_t>(bench)));

    std::vector<trace::TenantLog> logs;
    logs.reserve(num_tenants);
    for (unsigned t = 0; t < num_tenants; ++t) {
        uint64_t packets;
        if (t == 0) {
            packets = min_packets;
        } else if (t == num_tenants - 1 && num_tenants > 1) {
            packets = max_packets;
        } else {
            packets = rng.range(min_packets, max_packets);
        }
        logs.push_back(generator.generate(
            static_cast<trace::SourceId>(t), scaled(packets)));
    }
    return logs;
}

} // namespace hypersio::workload
