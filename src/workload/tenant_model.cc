#include "workload/tenant_model.hh"

#include <algorithm>
#include <deque>
#include <list>
#include <unordered_map>

#include "util/logging.hh"
#include "util/rng.hh"

namespace hypersio::workload
{

TenantLogGenerator::TenantLogGenerator(const TenantPattern &pattern,
                                       uint64_t seed)
    : _pattern(pattern), _seed(seed)
{
    HYPERSIO_ASSERT(pattern.streams >= 1, "need at least one stream");
    HYPERSIO_ASSERT(pattern.numDataPages >= pattern.streams,
                    "fewer data pages than streams");
}

namespace
{

/** State of one connection stream walking the data-buffer ring. */
struct StreamState
{
    unsigned currentPage = 0;   ///< index into the tenant's page ring
    unsigned accessesLeft = 0;  ///< before advancing to the next page
    uint64_t offset = 0;        ///< byte offset within the page
};

} // namespace

trace::TenantLog
TenantLogGenerator::generate(trace::SourceId sid, uint64_t num_packets,
                             bool include_init) const
{
    const TenantPattern &p = _pattern;
    trace::TenantLog log;
    log.sid = sid;
    log.packets.reserve(num_packets);

    // All randomness is tenant-local and deterministic.
    Rng rng(hashCombine(_seed, hashCombine(0x7e4a37, sid)));

    const mem::PageSize data_size = p.hugeDataPages
                                        ? mem::PageSize::Size2M
                                        : mem::PageSize::Size4K;
    const uint64_t data_page_bytes = mem::pageBytes(data_size);

    auto data_page_iova = [&](unsigned idx) {
        return p.dataBase + static_cast<uint64_t>(idx) *
                                data_page_bytes;
    };

    // Pending ops to attach to the next emitted packet.
    std::vector<trace::PageOp> pending_ops;
    auto map_page = [&](mem::Iova base, mem::PageSize size) {
        pending_ops.push_back({base, size, true});
    };
    auto unmap_page = [&](mem::Iova base, mem::PageSize size) {
        pending_ops.push_back({base, size, false});
    };

    uint64_t ring_cursor = 0;
    unsigned current_pasid = 0;
    auto emit_packet = [&](mem::Iova data_iova, bool huge) {
        trace::PacketRecord pkt;
        pkt.sid = sid;
        pkt.pasid = static_cast<uint16_t>(current_pasid);
        if (p.smallPacketBytes > 0 &&
            rng.chance(p.smallPacketProb)) {
            pkt.wireBytes = p.smallPacketBytes;
        }
        pkt.opBegin = static_cast<uint32_t>(log.ops.size());
        pkt.opCount = static_cast<uint16_t>(pending_ops.size());
        for (const auto &op : pending_ops)
            log.ops.push_back(op);
        pending_ops.clear();
        pkt.dataHuge = huge;
        // Ring descriptors cycle through the lower half of the
        // control page; the mailbox sits in its upper 256 bytes.
        pkt.ringIova =
            p.ringPage + (ring_cursor * p.descriptorBytes) %
                             (mem::PageSize4K / 2);
        pkt.dataIova = data_iova;
        pkt.notifyIova = p.mailboxPage + mem::PageSize4K - 256 +
                         (sid % 64) * 4;
        ++ring_cursor;
        log.packets.push_back(pkt);
    };

    // Fixed hot pages are mapped up front by the driver.
    map_page(p.ringPage, mem::PageSize::Size4K);
    map_page(p.mailboxPage, mem::PageSize::Size4K);

    uint64_t emitted = 0;

    // --- Initialisation phase (group 3) ---------------------------
    if (include_init) {
        for (unsigned page = 0;
             page < p.numInitPages && emitted < num_packets; ++page) {
            const mem::Iova base =
                p.initBase + static_cast<uint64_t>(page) *
                                 mem::PageSize4K;
            map_page(base, mem::PageSize::Size4K);
            // Slightly varied access count, always < 100.
            const unsigned accesses =
                p.accessesPerInitPage == 0
                    ? 0
                    : static_cast<unsigned>(rng.range(
                          p.accessesPerInitPage / 2,
                          p.accessesPerInitPage));
            for (unsigned a = 0;
                 a < accesses && emitted < num_packets; ++a) {
                emit_packet(base + (a * 64) % mem::PageSize4K, false);
                ++emitted;
            }
        }
    }

    // --- Steady state (groups 1 + 2) ------------------------------
    // Buffer pages stay mapped until the ring wraps around and the
    // driver recycles them: the unmap/remap pair lands just before
    // reuse, which invalidates stale cached translations exactly
    // once per ring cycle (~accessesPerDataPage accesses, Fig. 8b).
    std::vector<StreamState> streams(p.streams);
    std::vector<bool> page_mapped(p.numDataPages, false);
    unsigned next_free_page = 0;
    auto assign_page = [&](StreamState &st) {
        st.currentPage = next_free_page;
        next_free_page = (next_free_page + 1) % p.numDataPages;
        st.accessesLeft = p.accessesPerDataPage;
        st.offset = 0;
        const mem::Iova iova = data_page_iova(st.currentPage);
        if (page_mapped[st.currentPage])
            unmap_page(iova, data_size); // recycle: invalidate
        map_page(iova, data_size);
        page_mapped[st.currentPage] = true;
    };
    for (auto &st : streams)
        assign_page(st);

    unsigned rr_stream = 0;
    while (emitted < num_packets) {
        // Pick the stream for this packet.
        unsigned s;
        if (p.randomStreamOrder) {
            s = static_cast<unsigned>(rng.below(p.streams));
        } else {
            s = rr_stream;
            rr_stream = (rr_stream + 1) % p.streams;
        }
        StreamState &st = streams[s];
        current_pasid = p.processesPerTenant > 1
                            ? s % p.processesPerTenant
                            : 0;

        mem::Iova data_iova;
        if (p.jitterProb > 0.0 && rng.chance(p.jitterProb)) {
            // Irregular access: revisit a random still-mapped buffer
            // page at a random offset (e.g. a retransmission or an
            // out-of-order completion).
            unsigned page =
                static_cast<unsigned>(rng.below(p.numDataPages));
            while (!page_mapped[page])
                page = (page + 1) % p.numDataPages;
            data_iova = data_page_iova(page) +
                        rng.below(data_page_bytes / 64) * 64;
        } else {
            data_iova = data_page_iova(st.currentPage) + st.offset;
            st.offset += p.bytesPerPacket;
            if (st.offset + p.bytesPerPacket > data_page_bytes)
                st.offset = 0;
            if (--st.accessesLeft == 0)
                assign_page(st); // advance to the next ring slot
        }
        emit_packet(data_iova, p.hugeDataPages);
        ++emitted;
    }

    return log;
}

size_t
PageAccessStats::pagesAbove(uint64_t threshold) const
{
    size_t n = 0;
    for (const auto &pc : pages)
        n += pc.count >= threshold ? 1 : 0;
    return n;
}

PageAccessStats
analyzeLog(const trace::TenantLog &log)
{
    struct Info
    {
        mem::PageSize size;
        uint64_t count;
    };
    std::unordered_map<mem::Iova, Info> counts;

    auto note = [&](mem::Iova iova, mem::PageSize size) {
        const mem::Addr base = mem::pageBase(iova, size);
        auto [it, inserted] = counts.try_emplace(base, Info{size, 0});
        ++it->second.count;
        (void)inserted;
    };

    for (const auto &pkt : log.packets) {
        note(pkt.ringIova, mem::PageSize::Size4K);
        note(pkt.dataIova, pkt.dataHuge ? mem::PageSize::Size2M
                                        : mem::PageSize::Size4K);
        note(pkt.notifyIova, mem::PageSize::Size4K);
    }

    PageAccessStats stats;
    stats.pages.reserve(counts.size());
    for (const auto &[page, info] : counts)
        stats.pages.push_back({page, info.size, info.count});
    std::sort(stats.pages.begin(), stats.pages.end(),
              [](const auto &a, const auto &b) {
                  return a.count > b.count;
              });
    return stats;
}

unsigned
activeTranslationSet(const trace::TenantLog &log,
                     double target_hit_rate, unsigned max_entries)
{
    // Simulate a fully-associative LRU TLB of growing size over the
    // steady-state portion (skip the init phase: first packets whose
    // data accesses fall in the init region are warmup).
    std::vector<mem::Iova> seq;
    seq.reserve(log.packets.size() * 3);
    for (const auto &pkt : log.packets) {
        seq.push_back(mem::pageBase(pkt.ringIova,
                                    mem::PageSize::Size4K));
        seq.push_back(mem::pageBase(
            pkt.dataIova, pkt.dataHuge ? mem::PageSize::Size2M
                                       : mem::PageSize::Size4K));
        seq.push_back(mem::pageBase(pkt.notifyIova,
                                    mem::PageSize::Size4K));
    }

    for (unsigned entries = 1; entries <= max_entries; ++entries) {
        std::list<mem::Iova> lru;
        std::unordered_map<mem::Iova,
                           std::list<mem::Iova>::iterator>
            where;
        uint64_t hits = 0;
        uint64_t lookups = 0;
        for (mem::Iova page : seq) {
            ++lookups;
            auto it = where.find(page);
            if (it != where.end()) {
                ++hits;
                lru.splice(lru.begin(), lru, it->second);
            } else {
                lru.push_front(page);
                where[page] = lru.begin();
                if (lru.size() > entries) {
                    where.erase(lru.back());
                    lru.pop_back();
                }
            }
        }
        // Ignore cold misses: compare against compulsory-only rate.
        const uint64_t compulsory = where.size();
        const double hit_rate =
            lookups == 0
                ? 1.0
                : static_cast<double>(hits) /
                      static_cast<double>(lookups - compulsory);
        if (hit_rate >= target_hit_rate)
            return entries;
    }
    return max_entries;
}

} // namespace hypersio::workload
