#include "workload/log_text.hh"

#include <fstream>
#include <sstream>

#include "util/logging.hh"
#include "util/str.hh"

namespace hypersio::workload
{

namespace
{

const char *
sizeName(mem::PageSize size)
{
    return size == mem::PageSize::Size2M ? "2M" : "4K";
}

mem::PageSize
parseSize(const std::string &text, const std::string &where,
          unsigned lineno)
{
    if (text == "4K" || text == "4k")
        return mem::PageSize::Size4K;
    if (text == "2M" || text == "2m")
        return mem::PageSize::Size2M;
    fatal("%s:%u: bad page size '%s' (expected 4K or 2M)",
          where.c_str(), lineno, text.c_str());
}

uint64_t
parseHex(const std::string &text, const std::string &where,
         unsigned lineno)
{
    uint64_t out = 0;
    if (!parseU64(text, out))
        fatal("%s:%u: bad address '%s'", where.c_str(), lineno,
              text.c_str());
    return out;
}

} // namespace

void
writeTextLog(const trace::TenantLog &log, std::ostream &os)
{
    os << "# HyperSIO tenant log\n";
    os << "tenant " << log.sid << "\n";
    for (const auto &pkt : log.packets) {
        for (uint16_t i = 0; i < pkt.opCount; ++i) {
            const trace::PageOp &op = log.ops[pkt.opBegin + i];
            os << (op.isMap ? "map   " : "unmap ") << std::hex
               << "0x" << op.pageBase << std::dec << " "
               << sizeName(op.size) << "\n";
        }
        os << "pkt   " << std::hex << "0x" << pkt.ringIova << " 0x"
           << pkt.dataIova << std::dec << " "
           << (pkt.dataHuge ? "2M" : "4K") << " " << std::hex
           << "0x" << pkt.notifyIova << std::dec;
        if (pkt.wireBytes != 0)
            os << " " << pkt.wireBytes;
        os << "\n";
    }
}

void
saveTextLog(const trace::TenantLog &log, const std::string &path)
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        fatal("cannot open '%s' for writing", path.c_str());
    writeTextLog(log, out);
    if (!out)
        fatal("write error on '%s'", path.c_str());
}

trace::TenantLog
parseTextLog(std::istream &is, const std::string &name)
{
    trace::TenantLog log;
    std::vector<trace::PageOp> pending;
    std::string line;
    unsigned lineno = 0;
    bool saw_tenant = false;

    while (std::getline(is, line)) {
        ++lineno;
        const size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        std::istringstream fields(line);
        std::string keyword;
        if (!(fields >> keyword))
            continue; // blank line

        if (keyword == "tenant") {
            uint64_t sid = 0;
            std::string value;
            if (!(fields >> value) ||
                !parseU64(value, sid))
                fatal("%s:%u: bad tenant line", name.c_str(),
                      lineno);
            log.sid = static_cast<trace::SourceId>(sid);
            saw_tenant = true;
        } else if (keyword == "map" || keyword == "unmap") {
            std::string addr;
            std::string size;
            if (!(fields >> addr >> size))
                fatal("%s:%u: bad %s line", name.c_str(), lineno,
                      keyword.c_str());
            pending.push_back(
                {parseHex(addr, name, lineno),
                 parseSize(size, name, lineno), keyword == "map"});
        } else if (keyword == "pkt") {
            std::string ring;
            std::string data;
            std::string size;
            std::string notify;
            if (!(fields >> ring >> data >> size >> notify))
                fatal("%s:%u: bad pkt line", name.c_str(), lineno);
            trace::PacketRecord pkt;
            pkt.sid = log.sid;
            pkt.ringIova = parseHex(ring, name, lineno);
            pkt.dataIova = parseHex(data, name, lineno);
            pkt.dataHuge =
                parseSize(size, name, lineno) ==
                mem::PageSize::Size2M;
            pkt.notifyIova = parseHex(notify, name, lineno);
            std::string wire;
            if (fields >> wire) {
                uint64_t bytes = 0;
                if (!parseU64(wire, bytes))
                    fatal("%s:%u: bad wire-bytes '%s'",
                          name.c_str(), lineno, wire.c_str());
                pkt.wireBytes = static_cast<uint32_t>(bytes);
            }
            pkt.opBegin = static_cast<uint32_t>(log.ops.size());
            pkt.opCount = static_cast<uint16_t>(pending.size());
            for (const auto &op : pending)
                log.ops.push_back(op);
            pending.clear();
            log.packets.push_back(pkt);
        } else {
            fatal("%s:%u: unknown record '%s'", name.c_str(),
                  lineno, keyword.c_str());
        }
    }

    if (!saw_tenant && !log.packets.empty())
        warn("text log '%s' has packets but no tenant line; "
             "sid defaults to 0",
             name.c_str());
    if (!pending.empty())
        warn("text log '%s' ends with %zu dangling map/unmap "
             "records (dropped)",
             name.c_str(), pending.size());
    return log;
}

trace::TenantLog
loadTextLog(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open text log '%s'", path.c_str());
    return parseTextLog(in, path);
}

} // namespace hypersio::workload
