/**
 * @file
 * Lazy streaming workload generators for the hyper-scale regime.
 *
 * The materialized path (generateLogs + constructTrace) builds every
 * tenant's full packet log in memory before the simulation starts,
 * which caps experiments near 1024 tenants. The generators here
 * produce the *same* packet sequences one packet at a time:
 *
 *  - TenantStream is a resumable re-implementation of
 *    TenantLogGenerator::generate(): the same RNG draws in the same
 *    order, the same pending-op attachment, packet for packet. The
 *    equivalence is enforced by tests/test_hyperscale.cc.
 *  - SpliceStream replays generateLogs + constructTrace lazily: one
 *    TenantStream per tenant plus the interleaving cursor, so memory
 *    is O(tenants) small states instead of O(total packets).
 *  - ChurnStream hosts an unbounded tenant *population* on a bounded
 *    set of SID slots: when a tenant's stream ends, the slot is
 *    parked and its SID reported as detached; once the System
 *    confirms retirement (sidRetired), the slot is re-bound to the
 *    next virtual tenant with a fresh per-tenant seed. This is the
 *    arrival/departure-storm workload of the 100K+ tenant regime —
 *    total state is O(active slots), never O(population).
 */

#ifndef HYPERSIO_WORKLOAD_STREAMING_HH
#define HYPERSIO_WORKLOAD_STREAMING_HH

#include <cstdint>
#include <vector>

#include "trace/constructor.hh"
#include "trace/stream.hh"
#include "util/rng.hh"
#include "workload/benchmarks.hh"

namespace hypersio::workload
{

/**
 * Resumable single-tenant packet generator. Replays the exact state
 * machine of TenantLogGenerator::generate() — init phase, steady
 * buffer-ring walk, jitter, small packets — but yields one packet per
 * next() call instead of materializing a TenantLog.
 */
class TenantStream
{
  public:
    TenantStream() = default;

    /**
     * Matches TenantLogGenerator(pattern, seed).generate(sid,
     * num_packets, include_init) packet for packet.
     */
    TenantStream(const TenantPattern &pattern, uint64_t seed,
                 trace::SourceId sid, uint64_t num_packets,
                 bool include_init = true);

    /**
     * Produces the next packet and its page ops (pkt.opBegin is 0 and
     * ops holds pkt.opCount entries). Returns false once the packet
     * budget is exhausted.
     */
    bool next(trace::PacketRecord &pkt,
              std::vector<trace::PageOp> &ops);

    bool exhausted() const { return _emitted >= _budget; }
    uint64_t emitted() const { return _emitted; }
    uint64_t budget() const { return _budget; }

  private:
    enum class Phase
    {
        Init,
        Steady,
    };

    struct StreamState
    {
        unsigned currentPage = 0;
        unsigned accessesLeft = 0;
        uint64_t offset = 0;
    };

    void startInitPage();
    void setupSteady();
    void assignPage(StreamState &st);
    void emitPacket(trace::PacketRecord &pkt,
                    std::vector<trace::PageOp> &ops,
                    mem::Iova data_iova, bool huge);
    uint64_t dataPageBytes() const;
    mem::Iova dataPageIova(unsigned idx) const;

    TenantPattern _p;
    trace::SourceId _sid = 0;
    uint64_t _budget = 0;
    Rng _rng{0};

    std::vector<trace::PageOp> _pending;
    uint64_t _ringCursor = 0;
    unsigned _pasid = 0;
    uint64_t _emitted = 0;

    Phase _phase = Phase::Steady;
    unsigned _initPage = 0;   ///< current init page index
    unsigned _initAccesses = 0; ///< accesses drawn for that page
    unsigned _initDone = 0;   ///< accesses already emitted on it

    bool _steadyReady = false;
    std::vector<StreamState> _streams;
    std::vector<bool> _pageMapped;
    unsigned _nextFreePage = 0;
    unsigned _rrStream = 0;
};

/**
 * Lazy equivalent of constructTrace(generateLogs(bench, tenants,
 * seed, scale), mode): same per-tenant budgets, same interleaving
 * decisions, same packets — verified byte-identical by the golden
 * tests. Tenant count is bounded by the SID space (< 4096); use
 * ChurnStream beyond that.
 */
class SpliceStream : public trace::PacketStream
{
  public:
    SpliceStream(Benchmark bench, unsigned num_tenants, uint64_t seed,
                 const trace::Interleaving &mode, double scale = 1.0);

    const trace::PacketRecord *peek() override;
    const trace::PageOp *ops() const override { return _ops.data(); }
    void advance() override { _hasCur = false; }
    bool exhausted() override;
    uint32_t numTenants() const override { return _numTenants; }

  private:
    void produce();

    std::vector<TenantStream> _tenants;
    uint32_t _numTenants;
    trace::Interleaving _mode;
    Rng _pickRng{0};

    trace::PacketRecord _pkt;
    std::vector<trace::PageOp> _ops;
    bool _hasCur = false;
    bool _done = false;
    unsigned _turnTenant = 0; ///< tenant of the current RR/RAND turn
    unsigned _burstPos = 0;   ///< packets taken in the current turn
};

/** Knobs of a tenant-churn storm. */
struct ChurnConfig
{
    Benchmark bench = Benchmark::Iperf3;
    /** Total virtual tenants presented over the run. */
    unsigned population = 1024;
    /** Concurrently attached SID slots (bounded, < SidSpace). */
    unsigned slots = 64;
    uint64_t seed = 42;
    /**
     * Per-tenant packet budgets: uniform in [minBudget, maxBudget],
     * except a tailProb fraction of heavy hitters drawing from
     * [tailMin, tailMax] — the long-tail SID distribution.
     */
    uint64_t minBudget = 64;
    uint64_t maxBudget = 192;
    double tailProb = 0.04;
    uint64_t tailMin = 1024;
    uint64_t tailMax = 3072;
    /** Consecutive packets per slot turn (round-robin burst). */
    unsigned burst = 1;
    /** Emit each tenant's init phase (the attach storm). */
    bool includeInit = true;
};

/**
 * Streaming arrival/departure-storm workload: `population` virtual
 * tenants multiplexed over `slots` SID slots. Each virtual tenant v
 * runs the benchmark's Fig. 8 pattern under its own derived seed, so
 * a recycled SID carries a genuinely different tenant. A slot whose
 * tenant finishes is parked (reported via drainDetached) until the
 * System confirms sidRetired; peek() returns null while every slot is
 * parked — the stream is stalled, not exhausted.
 */
class ChurnStream : public trace::PacketStream
{
  public:
    explicit ChurnStream(const ChurnConfig &config);

    const trace::PacketRecord *peek() override;
    const trace::PageOp *ops() const override { return _ops.data(); }
    void advance() override;
    bool exhausted() override;
    uint32_t numTenants() const override { return _cfg.population; }
    void drainDetached(std::vector<trace::SourceId> &out) override;
    void sidRetired(trace::SourceId sid) override;

    /** Effective SID-slot count (config slots clamped to pop.). */
    unsigned
    slots() const
    {
        return static_cast<unsigned>(_slots.size());
    }
    /** Tenants bound to a slot so far (attaches). */
    uint64_t attaches() const { return _attaches; }
    /** Detach notices queued so far. */
    uint64_t detaches() const { return _detaches; }
    /** Packets produced so far. */
    uint64_t produced() const { return _produced; }
    /** Per-tenant packet budget for virtual tenant v (long tail). */
    uint64_t budgetFor(uint64_t v) const;

  private:
    enum class SlotState
    {
        Live,   ///< bound tenant still has packets
        Parked, ///< tenant done; awaiting sidRetired
        Dead,   ///< population exhausted; slot closed
    };

    struct Slot
    {
        TenantStream stream;
        SlotState state = SlotState::Parked;
        uint64_t virtualId = 0;
    };

    void bind(unsigned slot, uint64_t virtual_id);
    void produce();
    void advanceCursor();

    ChurnConfig _cfg;
    TenantPattern _pattern;
    std::vector<Slot> _slots;
    uint64_t _nextVirtual = 0;
    unsigned _dead = 0;

    unsigned _cursor = 0;
    unsigned _burstPos = 0;
    /** Slot whose buffered packet is its tenant's last, or -1. */
    int _farewellSlot = -1;
    std::vector<trace::SourceId> _detached;

    trace::PacketRecord _pkt;
    std::vector<trace::PageOp> _ops;
    bool _hasCur = false;

    uint64_t _attaches = 0;
    uint64_t _detaches = 0;
    uint64_t _produced = 0;
};

} // namespace hypersio::workload

#endif // HYPERSIO_WORKLOAD_STREAMING_HH
