/**
 * @file
 * Synthetic per-tenant I/O access-pattern model.
 *
 * Substitutes for the paper's QEMU-derived Log Collector. The model
 * is parameterised directly by the paper's single-tenant
 * characterisation (Section IV-D):
 *
 *  - Group 1: one hot 4 KB page holding the ring-buffer descriptors,
 *    translated for every arriving packet (~30x more frequent than
 *    any data page). A second fixed 4 KB page is the interrupt
 *    mailbox, also touched per packet.
 *  - Group 2: N (paper: 32) 2 MB data-buffer pages; each is accessed
 *    ~1500 times in a row before the driver unmaps it and moves to
 *    the next (a ring of buffers), producing the periodic pattern of
 *    Fig. 8b. Several concurrent streams (connections) interleave
 *    their own sequential walks, enlarging the active set.
 *  - Group 3: ~70 cold 4 KB initialisation pages, each accessed
 *    <100 times right after NIC init.
 *
 * All tenants use the *same* gIOVA values (same guest OS + driver
 * version), which is what makes translations from different tenants
 * conflict in shared caching structures.
 */

#ifndef HYPERSIO_WORKLOAD_TENANT_MODEL_HH
#define HYPERSIO_WORKLOAD_TENANT_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "mem/addr.hh"
#include "trace/record.hh"

namespace hypersio::workload
{

/** Tunable knobs of the per-tenant access-pattern model. */
struct TenantPattern
{
    /**
     * Group 1: the NIC control page (hot). Ring descriptors occupy
     * its lower part and the completion/interrupt mailbox its upper
     * part, so both the ring-pointer and the notification request of
     * every packet translate inside this one page — matching the
     * single 30x-hotter group-1 page of Fig. 8a.
     */
    mem::Iova ringPage = 0x34800000;
    /** Group 1: interrupt mailbox page; defaults into the ring page. */
    mem::Iova mailboxPage = 0x34800000;

    /** Group 2: base of the data-buffer region. */
    mem::Iova dataBase = 0xbbe00000;
    /** Group 2: number of data-buffer pages in the ring. */
    unsigned numDataPages = 32;
    /** Group 2: use 2 MB huge pages for data buffers. */
    bool hugeDataPages = true;
    /** Group 2: sequential accesses to a page before moving on. */
    unsigned accessesPerDataPage = 1500;
    /** Concurrent streams (connections) walking the buffer ring. */
    unsigned streams = 1;
    /**
     * Probability that a packet's data access jumps to a random
     * in-flight page instead of the stream head (irregularity).
     */
    double jitterProb = 0.0;
    /** Pick the stream per packet at random instead of round-robin. */
    bool randomStreamOrder = false;

    /** Group 3: base of the initialisation-page region. */
    mem::Iova initBase = 0xf0000000;
    /** Group 3: number of 4 KB init pages. */
    unsigned numInitPages = 70;
    /** Group 3: accesses per init page (paper: < 100). */
    unsigned accessesPerInitPage = 60;

    /** Payload bytes consumed from a data buffer per packet. */
    unsigned bytesPerPacket = 1400;
    /**
     * Variable wire sizes: with probability smallPacketProb a packet
     * is smallPacketBytes on the wire instead of the link default
     * (models request/response traffic like key-value stores where
     * most packets are far below the MTU). 0 disables.
     */
    unsigned smallPacketBytes = 0;
    double smallPacketProb = 0.0;
    /** Ring descriptor size in bytes (descriptor stride). */
    unsigned descriptorBytes = 16;
    /**
     * Scalable-IOV processes per tenant: each stream belongs to
     * process (stream % processesPerTenant), whose requests carry
     * that PASID and translate in their own address space. 1 keeps
     * the whole VF in a single (VM) address space.
     */
    unsigned processesPerTenant = 1;
};

/**
 * Generates the packet log of one tenant.
 *
 * The generator is deterministic in (pattern, sid, seed). The first
 * packets constitute the initialisation phase (group 3); steady-state
 * packets then walk the data-buffer ring. Page map operations are
 * attached to the packet that first uses a page; unmap operations are
 * attached when the driver retires a page.
 */
class TenantLogGenerator
{
  public:
    TenantLogGenerator(const TenantPattern &pattern, uint64_t seed);

    /**
     * Produces `num_packets` packets for tenant `sid`.
     * @param include_init emit the initialisation phase first
     */
    trace::TenantLog generate(trace::SourceId sid,
                              uint64_t num_packets,
                              bool include_init = true) const;

    const TenantPattern &pattern() const { return _pattern; }

  private:
    TenantPattern _pattern;
    uint64_t _seed;
};

/**
 * Access-frequency summary used to validate the model against the
 * paper's Fig. 8a (three frequency groups).
 */
struct PageAccessStats
{
    struct PageCount
    {
        mem::Iova page = 0;
        mem::PageSize size = mem::PageSize::Size4K;
        uint64_t count = 0;
    };

    std::vector<PageCount> pages; ///< sorted by descending count

    /** Pages with at least `threshold` accesses. */
    size_t pagesAbove(uint64_t threshold) const;
};

/** Counts per-page translation-request frequencies of a log. */
PageAccessStats analyzeLog(const trace::TenantLog &log);

/**
 * Measures the empirical active-translation-set size of a log: the
 * minimum number of fully-associative entries (with LRU) needed to
 * reach a hit rate of at least `target_hit_rate` over the steady
 * state. This mirrors the paper's "active translation set" notion
 * (Section V-C).
 */
unsigned activeTranslationSet(const trace::TenantLog &log,
                              double target_hit_rate = 0.999,
                              unsigned max_entries = 128);

} // namespace hypersio::workload

#endif // HYPERSIO_WORKLOAD_TENANT_MODEL_HH
