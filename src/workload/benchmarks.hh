/**
 * @file
 * The three I/O-intensive benchmark profiles used by the paper
 * (Table III): iperf3, CloudSuite mediastream, and CloudSuite
 * websearch. Each profile fixes a TenantPattern and the distribution
 * of per-tenant request counts so that a constructed 1024-tenant
 * trace reproduces the paper's min/max/total translation counts.
 */

#ifndef HYPERSIO_WORKLOAD_BENCHMARKS_HH
#define HYPERSIO_WORKLOAD_BENCHMARKS_HH

#include <string>
#include <vector>

#include "workload/tenant_model.hh"

namespace hypersio::workload
{

/** Benchmark identifiers. */
enum class Benchmark
{
    Iperf3,
    Mediastream,
    Websearch,
};

/** All benchmarks, in the paper's order. */
constexpr Benchmark AllBenchmarks[] = {
    Benchmark::Iperf3,
    Benchmark::Mediastream,
    Benchmark::Websearch,
};

/** Parses "iperf3"/"mediastream"/"websearch"; fatal() otherwise. */
Benchmark parseBenchmark(const std::string &name);

/** Benchmark name as used in the paper. */
const char *benchmarkName(Benchmark bench);

/** Per-benchmark workload profile. */
struct BenchmarkProfile
{
    Benchmark bench;
    TenantPattern pattern;
    /**
     * Translation-request count bounds per tenant (Table III). The
     * per-tenant packet count is translations / 3.
     */
    uint64_t minTranslations;
    uint64_t maxTranslations;
};

/** The profile reproducing the paper's Table III row for `bench`. */
BenchmarkProfile benchmarkProfile(Benchmark bench);

/**
 * Caps the initialisation phase (group 3) at ~0.3% of a log of
 * `num_packets` packets. The paper's logs are millions of requests
 * with a one-off init of < 100 accesses per page; a fixed-size init
 * would dominate scaled-down logs. Call this before handing a
 * pattern to TenantLogGenerator for short logs (generateLogs does
 * it automatically).
 */
void scaleInitPhase(TenantPattern &pattern, uint64_t num_packets);

/**
 * Generates per-tenant logs for a benchmark.
 *
 * Tenant 0 receives the minimum request count and the last tenant
 * the maximum (so min/max statistics match Table III); the others
 * draw uniformly in between (seeded, deterministic).
 *
 * @param scale multiplies every per-tenant packet count; use < 1 for
 *        quick runs (counts are clamped to at least 64 packets)
 */
std::vector<trace::TenantLog>
generateLogs(Benchmark bench, unsigned num_tenants, uint64_t seed,
             double scale = 1.0);

} // namespace hypersio::workload

#endif // HYPERSIO_WORKLOAD_BENCHMARKS_HH
