#include "workload/soak.hh"

#include "util/logging.hh"
#include "util/rng.hh"

namespace hypersio::workload
{

namespace
{

/** SID space bound shared with iommu::ContextCache. */
constexpr uint32_t SidSpace = 4096;

/** Episode seed salt (distinct from the churn slot-bind salt). */
constexpr uint64_t StormSeedSalt = 0x50a1e;

} // namespace

SoakStream::SoakStream(const SoakConfig &config)
    : _cfg(config), _churn(config.churn),
      _stormBase(_churn.slots())
{
    if (_cfg.stormPeriod != 0) {
        HYPERSIO_ASSERT(_cfg.stormTenants >= 1,
                        "episodes need at least one storm tenant");
        HYPERSIO_ASSERT(_cfg.stormPackets >= 1,
                        "episodes need at least one packet");
        HYPERSIO_ASSERT(_stormBase + _cfg.stormTenants <= SidSpace,
                        "storm SID range [%u, %u) exceeds the SID "
                        "space",
                        _stormBase,
                        _stormBase + _cfg.stormTenants);
    }
}

void
SoakStream::maybeStartEpisode()
{
    if (_cfg.stormPeriod == 0 ||
        _churnSinceStorm < _cfg.stormPeriod ||
        _stormRetirePending != 0 || _churn.exhausted()) {
        return;
    }
    // Alternate the two mutation-heavy families: unmap storms on hot
    // pages, then unmap-then-remap churn. Each episode draws a fresh
    // derived seed so recycled storm SIDs carry new page layouts.
    const AdversarialPattern pattern =
        _episodes % 2 == 0 ? AdversarialPattern::InvalidateStorm
                           : AdversarialPattern::RemapChurn;
    AdversarialConfig adv;
    adv.tenants = _cfg.stormTenants;
    adv.packets = _cfg.stormPackets;
    adv.seed = hashCombine(_cfg.churn.seed,
                           StormSeedSalt + _episodes);
    _storm = makeAdversarialTrace(pattern, adv);
    HYPERSIO_ASSERT(!_storm.packets.empty(),
                    "adversarial episode produced no packets");
    _stormCursor = 0;
    _stormBuffered = false;
    _mode = Mode::Storm;
    ++_episodes;
}

const trace::PacketRecord *
SoakStream::stormPeek()
{
    if (!_stormBuffered) {
        HYPERSIO_ASSERT(_stormCursor < _storm.packets.size(),
                        "storm cursor past the episode");
        const trace::PacketRecord &src =
            _storm.packets[_stormCursor];
        _stormPkt = src;
        // Rebase onto the dedicated storm SID range and re-anchor
        // the ops at 0 — the PacketStream contract (the ops belong
        // to the head packet only).
        _stormPkt.sid += _stormBase;
        _stormPkt.opBegin = 0;
        _stormOps.assign(
            _storm.ops.begin() + src.opBegin,
            _storm.ops.begin() + src.opBegin + src.opCount);
        _stormBuffered = true;
    }
    return &_stormPkt;
}

void
SoakStream::stormAdvance()
{
    HYPERSIO_ASSERT(_stormBuffered,
                    "advance without a buffered storm packet");
    _stormBuffered = false;
    ++_stormCursor;
    ++_produced;
    if (_stormCursor < _storm.packets.size())
        return;
    // Episode complete: its last packet has been *consumed*, so the
    // storm tenants may now detach (the same deferred-farewell rule
    // ChurnStream follows). Retirement of the whole range must be
    // confirmed before the next episode starts.
    for (unsigned t = 0; t < _cfg.stormTenants; ++t)
        _detached.push_back(_stormBase + t);
    _stormRetirePending = _cfg.stormTenants;
    _storm = trace::HyperTrace{}; // keep memory O(episode), not O(run)
    _mode = Mode::Churn;
    _churnSinceStorm = 0;
}

const trace::PacketRecord *
SoakStream::peek()
{
    if (_mode == Mode::Churn)
        maybeStartEpisode();
    if (_mode == Mode::Storm)
        return stormPeek();
    return _churn.peek();
}

const trace::PageOp *
SoakStream::ops() const
{
    return _mode == Mode::Storm ? _stormOps.data() : _churn.ops();
}

void
SoakStream::advance()
{
    if (_mode == Mode::Storm) {
        stormAdvance();
        return;
    }
    _churn.advance();
    ++_churnSinceStorm;
    ++_produced;
}

bool
SoakStream::exhausted()
{
    if (_mode == Mode::Churn)
        maybeStartEpisode();
    if (_mode == Mode::Storm)
        return false;
    return _churn.exhausted();
}

uint32_t
SoakStream::numTenants() const
{
    return _cfg.churn.population +
           static_cast<uint32_t>(_episodes * _cfg.stormTenants);
}

uint64_t
SoakStream::attaches() const
{
    return _churn.attaches() + _episodes * _cfg.stormTenants;
}

void
SoakStream::drainDetached(std::vector<trace::SourceId> &out)
{
    _churn.drainDetached(out);
    out.insert(out.end(), _detached.begin(), _detached.end());
    _detached.clear();
}

void
SoakStream::sidRetired(trace::SourceId sid)
{
    if (sid >= _stormBase) {
        HYPERSIO_ASSERT(sid < _stormBase + _cfg.stormTenants,
                        "retired SID %u outside the storm range",
                        sid);
        HYPERSIO_ASSERT(_stormRetirePending > 0,
                        "storm SID retired with none pending");
        --_stormRetirePending;
        return;
    }
    _churn.sidRetired(sid);
}

} // namespace hypersio::workload
