#include "workload/streaming.hh"

#include <algorithm>

#include "util/logging.hh"

namespace hypersio::workload
{

// --- TenantStream ---------------------------------------------------
//
// Every RNG draw below mirrors one in TenantLogGenerator::generate();
// the two must stay in lock-step or the streaming path diverges from
// the materialized one. tests/test_hyperscale.cc enforces packet-for-
// packet equality across patterns, budgets, and phases.

TenantStream::TenantStream(const TenantPattern &pattern, uint64_t seed,
                           trace::SourceId sid, uint64_t num_packets,
                           bool include_init)
    : _p(pattern), _sid(sid), _budget(num_packets),
      _rng(hashCombine(seed, hashCombine(0x7e4a37, sid)))
{
    HYPERSIO_ASSERT(_p.streams >= 1, "need at least one stream");
    HYPERSIO_ASSERT(_p.numDataPages >= _p.streams,
                    "fewer data pages than streams");
    if (_budget == 0)
        return;

    // Fixed hot pages are mapped up front by the driver.
    _pending.push_back({_p.ringPage, mem::PageSize::Size4K, true});
    _pending.push_back({_p.mailboxPage, mem::PageSize::Size4K, true});

    if (include_init && _p.numInitPages > 0) {
        _phase = Phase::Init;
        startInitPage();
    }
}

uint64_t
TenantStream::dataPageBytes() const
{
    return mem::pageBytes(_p.hugeDataPages ? mem::PageSize::Size2M
                                           : mem::PageSize::Size4K);
}

mem::Iova
TenantStream::dataPageIova(unsigned idx) const
{
    return _p.dataBase +
           static_cast<uint64_t>(idx) * dataPageBytes();
}

void
TenantStream::startInitPage()
{
    const mem::Iova base =
        _p.initBase +
        static_cast<uint64_t>(_initPage) * mem::PageSize4K;
    _pending.push_back({base, mem::PageSize::Size4K, true});
    // Slightly varied access count, always < 100.
    _initAccesses =
        _p.accessesPerInitPage == 0
            ? 0
            : static_cast<unsigned>(
                  _rng.range(_p.accessesPerInitPage / 2,
                             _p.accessesPerInitPage));
    _initDone = 0;
}

void
TenantStream::assignPage(StreamState &st)
{
    st.currentPage = _nextFreePage;
    _nextFreePage = (_nextFreePage + 1) % _p.numDataPages;
    st.accessesLeft = _p.accessesPerDataPage;
    st.offset = 0;
    const mem::Iova iova = dataPageIova(st.currentPage);
    const mem::PageSize size = _p.hugeDataPages
                                   ? mem::PageSize::Size2M
                                   : mem::PageSize::Size4K;
    if (_pageMapped[st.currentPage])
        _pending.push_back({iova, size, false}); // recycle: invalidate
    _pending.push_back({iova, size, true});
    _pageMapped[st.currentPage] = true;
}

void
TenantStream::setupSteady()
{
    _streams.assign(_p.streams, StreamState{});
    _pageMapped.assign(_p.numDataPages, false);
    _nextFreePage = 0;
    _rrStream = 0;
    for (auto &st : _streams)
        assignPage(st);
    _steadyReady = true;
}

void
TenantStream::emitPacket(trace::PacketRecord &pkt,
                         std::vector<trace::PageOp> &ops,
                         mem::Iova data_iova, bool huge)
{
    pkt = trace::PacketRecord{};
    pkt.sid = _sid;
    pkt.pasid = static_cast<uint16_t>(_pasid);
    if (_p.smallPacketBytes > 0 && _rng.chance(_p.smallPacketProb))
        pkt.wireBytes = _p.smallPacketBytes;
    pkt.opBegin = 0;
    pkt.opCount = static_cast<uint16_t>(_pending.size());
    ops.clear();
    ops.swap(_pending);
    pkt.dataHuge = huge;
    pkt.ringIova = _p.ringPage + (_ringCursor * _p.descriptorBytes) %
                                     (mem::PageSize4K / 2);
    pkt.dataIova = data_iova;
    pkt.notifyIova = _p.mailboxPage + mem::PageSize4K - 256 +
                     (_sid % 64) * 4;
    ++_ringCursor;
}

bool
TenantStream::next(trace::PacketRecord &pkt,
                   std::vector<trace::PageOp> &ops)
{
    if (_emitted >= _budget)
        return false;

    for (;;) {
        if (_phase == Phase::Init) {
            if (_initDone < _initAccesses) {
                const mem::Iova base =
                    _p.initBase + static_cast<uint64_t>(_initPage) *
                                      mem::PageSize4K;
                emitPacket(pkt, ops,
                           base + (_initDone * 64) % mem::PageSize4K,
                           false);
                ++_initDone;
                break;
            }
            ++_initPage;
            if (_initPage >= _p.numInitPages) {
                _phase = Phase::Steady;
                continue;
            }
            startInitPage();
            continue;
        }

        if (!_steadyReady)
            setupSteady();

        // Pick the stream for this packet.
        unsigned s;
        if (_p.randomStreamOrder) {
            s = static_cast<unsigned>(_rng.below(_p.streams));
        } else {
            s = _rrStream;
            _rrStream = (_rrStream + 1) % _p.streams;
        }
        StreamState &st = _streams[s];
        _pasid = _p.processesPerTenant > 1
                     ? s % _p.processesPerTenant
                     : 0;

        mem::Iova data_iova;
        if (_p.jitterProb > 0.0 && _rng.chance(_p.jitterProb)) {
            unsigned page = static_cast<unsigned>(
                _rng.below(_p.numDataPages));
            while (!_pageMapped[page])
                page = (page + 1) % _p.numDataPages;
            data_iova = dataPageIova(page) +
                        _rng.below(dataPageBytes() / 64) * 64;
        } else {
            data_iova = dataPageIova(st.currentPage) + st.offset;
            st.offset += _p.bytesPerPacket;
            if (st.offset + _p.bytesPerPacket > dataPageBytes())
                st.offset = 0;
            if (--st.accessesLeft == 0)
                assignPage(st);
        }
        emitPacket(pkt, ops, data_iova, _p.hugeDataPages);
        break;
    }

    ++_emitted;
    return true;
}

// --- SpliceStream ---------------------------------------------------

SpliceStream::SpliceStream(Benchmark bench, unsigned num_tenants,
                           uint64_t seed,
                           const trace::Interleaving &mode,
                           double scale)
    : _numTenants(num_tenants), _mode(mode), _pickRng(mode.seed)
{
    HYPERSIO_ASSERT(num_tenants >= 1, "need at least one tenant");
    HYPERSIO_ASSERT(_mode.burst >= 1, "burst must be positive");
    if (scale <= 0.0)
        fatal("workload scale must be positive (got %f)", scale);

    // Budget assignment replicates generateLogs: the same profile,
    // the same init scaling, and the same budget RNG stream.
    const BenchmarkProfile profile = benchmarkProfile(bench);
    const uint64_t min_packets = profile.minTranslations / 3;
    const uint64_t max_packets = profile.maxTranslations / 3;
    auto scaled = [&](uint64_t packets) {
        const auto value = static_cast<uint64_t>(
            static_cast<double>(packets) * scale);
        return std::max<uint64_t>(value, 64);
    };
    TenantPattern pattern = profile.pattern;
    scaleInitPhase(pattern, scaled(min_packets));

    Rng budget_rng(hashCombine(seed, static_cast<uint64_t>(bench)));
    _tenants.reserve(num_tenants);
    for (unsigned t = 0; t < num_tenants; ++t) {
        uint64_t packets;
        if (t == 0) {
            packets = min_packets;
        } else if (t == num_tenants - 1 && num_tenants > 1) {
            packets = max_packets;
        } else {
            packets = budget_rng.range(min_packets, max_packets);
        }
        _tenants.emplace_back(pattern, seed,
                              static_cast<trace::SourceId>(t),
                              scaled(packets));
    }
}

void
SpliceStream::produce()
{
    if (_done)
        return;
    // One step of the constructTrace interleaving loop: a turn takes
    // up to `burst` packets from one tenant, and construction stops
    // at the first attempt to take from an exhausted tenant.
    if (_burstPos == 0 &&
        _mode.kind == trace::InterleaveKind::Random) {
        _turnTenant =
            static_cast<unsigned>(_pickRng.below(_numTenants));
    }
    TenantStream &tenant = _tenants[_turnTenant];
    if (tenant.exhausted()) {
        _done = true;
        return;
    }
    _ops.clear();
    tenant.next(_pkt, _ops);
    _hasCur = true;
    ++_burstPos;
    if (_burstPos >= _mode.burst) {
        _burstPos = 0;
        if (_mode.kind == trace::InterleaveKind::RoundRobin)
            _turnTenant = (_turnTenant + 1) % _numTenants;
    }
}

const trace::PacketRecord *
SpliceStream::peek()
{
    if (!_hasCur)
        produce();
    return _hasCur ? &_pkt : nullptr;
}

bool
SpliceStream::exhausted()
{
    // A splice never stalls: no packet now means no packet ever.
    return peek() == nullptr;
}

// --- ChurnStream ----------------------------------------------------

ChurnStream::ChurnStream(const ChurnConfig &config) : _cfg(config)
{
    HYPERSIO_ASSERT(_cfg.population >= 1, "need at least one tenant");
    HYPERSIO_ASSERT(_cfg.slots >= 1, "need at least one slot");
    HYPERSIO_ASSERT(_cfg.burst >= 1, "burst must be positive");
    HYPERSIO_ASSERT(_cfg.minBudget >= 1 &&
                        _cfg.minBudget <= _cfg.maxBudget,
                    "bad budget range");
    HYPERSIO_ASSERT(_cfg.tailMin <= _cfg.tailMax, "bad tail range");
    // Slots are SIDs; they must fit the context cache's SID space
    // (iommu::ContextCache::SidSpace).
    HYPERSIO_ASSERT(_cfg.slots <= 4096, "more slots than SIDs");
    if (_cfg.slots > _cfg.population)
        _cfg.slots = _cfg.population;

    _pattern = benchmarkProfile(_cfg.bench).pattern;
    // Cap the one-off init phase relative to the typical per-tenant
    // budget, as generateLogs does for scaled-down logs. The init
    // phase is each tenant's attach storm.
    scaleInitPhase(_pattern,
                   std::max<uint64_t>(
                       (_cfg.minBudget + _cfg.maxBudget) / 2, 16));

    _slots.resize(_cfg.slots);
    for (unsigned s = 0; s < _cfg.slots; ++s)
        bind(s, _nextVirtual++);
}

uint64_t
ChurnStream::budgetFor(uint64_t v) const
{
    Rng rng(hashCombine(_cfg.seed, hashCombine(0x5ca1ab1eULL, v)));
    uint64_t budget = rng.range(_cfg.minBudget, _cfg.maxBudget);
    if (_cfg.tailProb > 0.0 && rng.chance(_cfg.tailProb))
        budget = rng.range(_cfg.tailMin, _cfg.tailMax);
    return std::max<uint64_t>(budget, 1);
}

void
ChurnStream::bind(unsigned slot, uint64_t virtual_id)
{
    Slot &sl = _slots[slot];
    // The per-virtual-tenant seed makes a recycled SID slot carry a
    // genuinely different tenant (different budgets and RNG stream).
    sl.stream = TenantStream(
        _pattern,
        hashCombine(_cfg.seed, hashCombine(0x7e47a9ULL, virtual_id)),
        static_cast<trace::SourceId>(slot), budgetFor(virtual_id),
        _cfg.includeInit);
    sl.state = SlotState::Live;
    sl.virtualId = virtual_id;
    ++_attaches;
}

void
ChurnStream::advanceCursor()
{
    _burstPos = 0;
    _cursor = (_cursor + 1) % static_cast<unsigned>(_slots.size());
}

void
ChurnStream::produce()
{
    // Round-robin over live slots; a full fruitless scan means every
    // slot is parked (stalled) or dead (exhausted).
    const auto n = static_cast<unsigned>(_slots.size());
    for (unsigned tries = 0; tries < n; ++tries) {
        Slot &sl = _slots[_cursor];
        if (sl.state != SlotState::Live) {
            advanceCursor();
            continue;
        }
        _ops.clear();
        sl.stream.next(_pkt, _ops);
        _hasCur = true;
        ++_produced;
        const bool tenant_done = sl.stream.exhausted();
        if (tenant_done) {
            // Park the slot: no more packets until the System retires
            // the SID's translation state and confirms sidRetired().
            // The detach notice itself waits until the consumer takes
            // this farewell packet (advance()) — announcing earlier
            // would let the System retire the tenant while its last
            // packet sits buffered through a full-PTB drop/retry, and
            // the retry would then translate against a torn-down
            // domain.
            sl.state = SlotState::Parked;
            _farewellSlot = static_cast<int>(_cursor);
        }
        ++_burstPos;
        if (tenant_done || _burstPos >= _cfg.burst)
            advanceCursor();
        return;
    }
}

void
ChurnStream::advance()
{
    _hasCur = false;
    if (_farewellSlot >= 0) {
        _detached.push_back(
            static_cast<trace::SourceId>(_farewellSlot));
        ++_detaches;
        _farewellSlot = -1;
    }
}

const trace::PacketRecord *
ChurnStream::peek()
{
    if (!_hasCur)
        produce();
    return _hasCur ? &_pkt : nullptr;
}

bool
ChurnStream::exhausted()
{
    if (peek() != nullptr)
        return false;
    return _dead == _slots.size();
}

void
ChurnStream::drainDetached(std::vector<trace::SourceId> &out)
{
    out.insert(out.end(), _detached.begin(), _detached.end());
    _detached.clear();
}

void
ChurnStream::sidRetired(trace::SourceId sid)
{
    HYPERSIO_ASSERT(sid < _slots.size(), "retired SID out of range");
    Slot &sl = _slots[sid];
    HYPERSIO_ASSERT(sl.state == SlotState::Parked,
                    "retired a slot that is not parked");
    if (_nextVirtual < _cfg.population) {
        bind(sid, _nextVirtual++);
    } else {
        sl.state = SlotState::Dead;
        ++_dead;
    }
}

} // namespace hypersio::workload
