#include "workload/adversarial.hh"

#include <algorithm>
#include <array>
#include <unordered_set>
#include <vector>

#include "mem/addr.hh"
#include "mem/page_table.hh"
#include "util/rng.hh"

namespace hypersio::workload
{

namespace
{

/** Shared gIOVA layout (all tenants use the same guest addresses). */
constexpr mem::Iova RingPage = 0x34800000;
constexpr mem::Iova NotifyPage = 0x34801000;
constexpr mem::Iova HugeDataBase = 0xbbe00000;  // 2 MB aligned
constexpr mem::Iova SmallDataBase = 0x7f000000; // 4 KB pages

mem::Iova
dataPageBase(unsigned page, bool huge)
{
    return huge ? HugeDataBase + mem::Iova(page) * 0x200000
                : SmallDataBase + mem::Iova(page) * 0x1000;
}

/**
 * Accumulates packets while tracking which (domain, page) pairs are
 * currently mapped, so map ops are attached exactly to the packets
 * that need them and unmaps only target live mappings.
 */
class TraceBuilder
{
  public:
    explicit TraceBuilder(uint64_t seed) { _trace.seed = seed; }

    /** Queues a map op for the packet if the page is not mapped. */
    void
    touch(mem::DomainId did, mem::Iova page_base, mem::PageSize size)
    {
        if (!_mapped.insert(key(did, page_base)).second)
            return;
        _pending.push_back({page_base, size, /*isMap=*/true});
    }

    /** Queues an unmap op if the page is currently mapped. */
    void
    unmap(mem::DomainId did, mem::Iova page_base, mem::PageSize size)
    {
        if (_mapped.erase(key(did, page_base)) == 0)
            return;
        _pending.push_back({page_base, size, /*isMap=*/false});
    }

    bool
    mapped(mem::DomainId did, mem::Iova page_base) const
    {
        return _mapped.count(key(did, page_base)) != 0;
    }

    /** Appends the packet, attaching every op queued since the last. */
    void
    add(trace::PacketRecord pkt)
    {
        pkt.opBegin = static_cast<uint32_t>(_trace.ops.size());
        pkt.opCount = static_cast<uint16_t>(_pending.size());
        _trace.ops.insert(_trace.ops.end(), _pending.begin(),
                          _pending.end());
        _pending.clear();
        _trace.packets.push_back(pkt);
    }

    trace::HyperTrace
    finish(uint32_t num_tenants)
    {
        _trace.numTenants = num_tenants;
        return std::move(_trace);
    }

  private:
    static uint64_t
    key(mem::DomainId did, mem::Iova page_base)
    {
        return hashCombine(did, page_base);
    }

    trace::HyperTrace _trace;
    std::vector<trace::PageOp> _pending;
    std::unordered_set<uint64_t> _mapped;
};

} // namespace

const char *
adversarialPatternName(AdversarialPattern pattern)
{
    switch (pattern) {
      case AdversarialPattern::SidBursts:
        return "sid_bursts";
      case AdversarialPattern::SidPhaseShift:
        return "sid_phase_shift";
      case AdversarialPattern::InvalidateStorm:
        return "invalidate_storm";
      case AdversarialPattern::PbThrash:
        return "pb_thrash";
      case AdversarialPattern::PartitionConflict:
        return "partition_conflict";
      case AdversarialPattern::HugeMix:
        return "huge_mix";
      case AdversarialPattern::RemapChurn:
        return "remap_churn";
      case AdversarialPattern::SizeFlipRemap:
        return "size_flip_remap";
      case AdversarialPattern::UniformRandom:
        return "uniform_random";
    }
    return "unknown";
}

trace::HyperTrace
makeAdversarialTrace(AdversarialPattern pattern,
                     const AdversarialConfig &config)
{
    const unsigned tenants = config.tenants == 0 ? 1 : config.tenants;
    Rng rng(hashCombine(config.seed,
                        static_cast<uint64_t>(pattern) + 1));
    TraceBuilder builder(config.seed);

    // Per-tenant data-stream position (tenant index, not SID).
    std::vector<uint64_t> stream(tenants, 0);

    // SidBursts state.
    unsigned burst_tenant = 0;
    unsigned burst_left = 0;

    // SizeFlipRemap state: the current size flavor of each tenant's
    // flip pages (all 2M-aligned; a page alternates between one 2M
    // mapping and one 4K mapping at the same base).
    constexpr unsigned FlipPages = 4;
    std::vector<std::array<bool, FlipPages>> flip_huge(
        tenants, {true, true, true, true});

    uint32_t max_sid = 0;
    for (uint64_t n = 0; n < config.packets; ++n) {
        // ---- Pick the tenant and its SID. -----------------------------
        unsigned tenant;
        switch (pattern) {
          case AdversarialPattern::SidBursts:
            if (burst_left == 0) {
                burst_tenant =
                    static_cast<unsigned>(rng.below(tenants));
                burst_left =
                    static_cast<unsigned>(rng.range(4, 12));
            }
            tenant = burst_tenant;
            --burst_left;
            break;
          case AdversarialPattern::SidPhaseShift:
            // Round-robin that reverses direction halfway: every
            // "H packets later" pairing the predictor learned in the
            // first phase is wrong in the second.
            tenant = n < config.packets / 2
                         ? static_cast<unsigned>(n % tenants)
                         : tenants - 1 -
                               static_cast<unsigned>(n % tenants);
            break;
          case AdversarialPattern::UniformRandom:
            tenant = static_cast<unsigned>(rng.below(tenants));
            break;
          default:
            tenant = static_cast<unsigned>(n % tenants);
            break;
        }
        // PartitionConflict: SIDs 0, 8, 16, … all map to partition
        // row group 0 of an 8-partition DevTLB.
        const uint32_t sid =
            pattern == AdversarialPattern::PartitionConflict
                ? tenant * 8
                : tenant;
        max_sid = std::max(max_sid, sid);
        // pasid 0: DID == SID (whole-VM tenants).
        const mem::DomainId did = sid;

        // ---- Pick the data page. --------------------------------------
        bool huge = true;
        unsigned page;
        switch (pattern) {
          case AdversarialPattern::PbThrash:
            // 64 candidate pages per tenant: prefetched entries go
            // stale long before the tenant returns to them.
            page = static_cast<unsigned>(rng.below(64));
            break;
          case AdversarialPattern::HugeMix:
            huge = rng.chance(0.5);
            page = static_cast<unsigned>(stream[tenant] / 4 % 8);
            break;
          case AdversarialPattern::UniformRandom:
            huge = rng.chance(0.5);
            page = static_cast<unsigned>(rng.below(16));
            break;
          case AdversarialPattern::SizeFlipRemap: {
            page = static_cast<unsigned>(rng.below(FlipPages));
            const mem::Iova base =
                HugeDataBase + mem::Iova(page) * 0x200000;
            if (builder.mapped(did, base) && rng.chance(0.35)) {
                // Flip the page's size on remap. Declaring the
                // *wrong* size in the unmap op (25% of flips) is
                // legal — functional unmap probes the covering 2M
                // base first — and is exactly the case where an
                // invalidation keyed only by the declared size
                // leaves the other flavor's cached entry stale.
                const bool cur = flip_huge[tenant][page];
                const bool declared =
                    rng.chance(0.25) ? !cur : cur;
                builder.unmap(did, base,
                              declared ? mem::PageSize::Size2M
                                       : mem::PageSize::Size4K);
                flip_huge[tenant][page] = !cur;
            }
            huge = flip_huge[tenant][page];
            break;
          }
          default:
            // Dwell on each page of an 8-page ring for 4 packets.
            page = static_cast<unsigned>(stream[tenant] / 4 % 8);
            break;
        }
        ++stream[tenant];
        // SizeFlipRemap keeps the same 2M-aligned base across both
        // size flavors — that collision is the whole point — so its
        // 4K flavor must not use the 4K-stride layout.
        const mem::Iova data_base =
            pattern == AdversarialPattern::SizeFlipRemap
                ? HugeDataBase + mem::Iova(page) * 0x200000
                : dataPageBase(page, huge);
        const mem::PageSize data_size =
            huge ? mem::PageSize::Size2M : mem::PageSize::Size4K;

        // ---- Pattern-specific unmap mischief (ordered before the
        // maps the packet needs, so churned pages get remapped). ------
        switch (pattern) {
          case AdversarialPattern::InvalidateStorm:
            if (rng.chance(0.4)) {
                const bool h = rng.chance(0.5);
                builder.unmap(
                    did,
                    dataPageBase(
                        static_cast<unsigned>(rng.below(8)), h),
                    h ? mem::PageSize::Size2M
                      : mem::PageSize::Size4K);
            }
            // The nastiest case: invalidate the hot ring page.
            if (rng.chance(0.15))
                builder.unmap(did, RingPage,
                              mem::PageSize::Size4K);
            break;
          case AdversarialPattern::RemapChurn:
            // Drop the very page this packet is about to use; the
            // touch below remaps it, so the walk must miss every
            // cache and still resolve through the fresh mapping.
            if (rng.chance(0.3))
                builder.unmap(did, data_base, data_size);
            if (rng.chance(0.2))
                builder.unmap(did, NotifyPage,
                              mem::PageSize::Size4K);
            break;
          case AdversarialPattern::UniformRandom:
            if (rng.chance(0.2)) {
                const bool h = rng.chance(0.5);
                builder.unmap(
                    did,
                    dataPageBase(
                        static_cast<unsigned>(rng.below(16)), h),
                    h ? mem::PageSize::Size2M
                      : mem::PageSize::Size4K);
            }
            break;
          default:
            break;
        }

        // ---- Maps for the three pages this packet translates. --------
        builder.touch(did, RingPage, mem::PageSize::Size4K);
        builder.touch(did, data_base, data_size);
        builder.touch(did, NotifyPage, mem::PageSize::Size4K);

        trace::PacketRecord pkt;
        pkt.sid = sid;
        pkt.dataHuge = huge;
        pkt.ringIova = RingPage + rng.below(64) * 16;
        // SizeFlipRemap offsets stay below 4 KB so every request
        // lands inside the page under either size flavor.
        pkt.dataIova =
            data_base +
            (pattern == AdversarialPattern::SizeFlipRemap
                 ? rng.below(64) * 64
                 : rng.below(512) * 64);
        pkt.notifyIova = NotifyPage + rng.below(16) * 4;
        if (pattern == AdversarialPattern::UniformRandom &&
            rng.chance(0.3)) {
            pkt.wireBytes = 256; // bursty small-packet arrivals
        }
        builder.add(pkt);
    }

    return builder.finish(max_sid + 1);
}

} // namespace hypersio::workload
