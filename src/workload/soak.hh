/**
 * @file
 * Long-haul mixed-scenario workload for the soak harness.
 *
 * A SoakStream interleaves the two stress regimes the repo already
 * models, on one System, through one PacketStream:
 *
 *  - the base load is ChurnStream's arrival/departure storm — an
 *    unbounded tenant population over bounded SID slots — and
 *  - every `stormPeriod` churn packets, an *adversarial episode* is
 *    spliced in: a materialized workload::adversarial trace
 *    (alternating InvalidateStorm and RemapChurn patterns, a fresh
 *    derived seed per episode) replayed on a dedicated SID range
 *    directly above the churn slots.
 *
 * The storm SID range is disjoint from the churn slots, so episode
 * page ops can never desynchronize a churn tenant's mapped-page
 * bookkeeping; after an episode's last packet is consumed, its SIDs
 * are detached through the regular retirement protocol, so the next
 * episode starts from clean tables — and every episode exercises
 * tenant teardown under invalidate/remap pressure, which is exactly
 * the long-haul drift/leak surface the soak bench watches.
 *
 * Everything is deterministic in the config: episode boundaries are
 * counted in produced packets, episode seeds derive from the config
 * seed and the episode index, and the underlying generators are
 * deterministic already.
 */

#ifndef HYPERSIO_WORKLOAD_SOAK_HH
#define HYPERSIO_WORKLOAD_SOAK_HH

#include <cstdint>
#include <vector>

#include "trace/record.hh"
#include "trace/stream.hh"
#include "workload/adversarial.hh"
#include "workload/streaming.hh"

namespace hypersio::workload
{

/** Knobs of the long-haul soak workload. */
struct SoakConfig
{
    /** The base tenant-churn load. */
    ChurnConfig churn;
    /** Churn packets between adversarial episodes; 0 disables. */
    uint64_t stormPeriod = 4096;
    /** Packets per adversarial episode. */
    uint64_t stormPackets = 256;
    /** Tenants per episode (SIDs [slots, slots + stormTenants)). */
    unsigned stormTenants = 4;
};

/** Churn punctuated by adversarial invalidate/remap episodes. */
class SoakStream : public trace::PacketStream
{
  public:
    explicit SoakStream(const SoakConfig &config);

    const trace::PacketRecord *peek() override;
    const trace::PageOp *ops() const override;
    void advance() override;
    bool exhausted() override;
    /** Population presented so far (grows with each episode). */
    uint32_t numTenants() const override;
    void drainDetached(std::vector<trace::SourceId> &out) override;
    void sidRetired(trace::SourceId sid) override;

    /** Adversarial episodes started so far. */
    uint64_t episodes() const { return _episodes; }
    /** Tenants attached so far (churn binds + storm tenants). */
    uint64_t attaches() const;
    /** Packets produced so far (churn + storm). */
    uint64_t produced() const { return _produced; }
    const ChurnStream &churn() const { return _churn; }

  private:
    enum class Mode
    {
        Churn, ///< delegating to the churn stream
        Storm, ///< replaying the current adversarial episode
    };

    /** Starts the next episode when one is due and none pending. */
    void maybeStartEpisode();
    const trace::PacketRecord *stormPeek();
    void stormAdvance();

    SoakConfig _cfg;
    ChurnStream _churn;
    trace::SourceId _stormBase = 0;

    Mode _mode = Mode::Churn;
    trace::HyperTrace _storm; ///< current episode (small, bounded)
    size_t _stormCursor = 0;
    trace::PacketRecord _stormPkt;
    std::vector<trace::PageOp> _stormOps;
    bool _stormBuffered = false;

    uint64_t _churnSinceStorm = 0;
    uint64_t _episodes = 0;
    /** Storm SIDs detached but not yet confirmed retired. */
    unsigned _stormRetirePending = 0;
    std::vector<trace::SourceId> _detached;
    uint64_t _produced = 0;
};

} // namespace hypersio::workload

#endif // HYPERSIO_WORKLOAD_SOAK_HH
