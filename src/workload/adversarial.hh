/**
 * @file
 * Adversarial trace synthesis for differential fuzzing.
 *
 * Unlike the benchmark profiles (benchmarks.hh), which reproduce the
 * paper's well-behaved tenants, these generators deliberately build
 * interleavings that stress the corners of the translation path: SID
 * bursts and phase shifts that mislead the SID-predictor, unmap
 * storms that race invalidations against in-flight walks, Prefetch
 * Buffer thrashing, partition-conflict SID sets, mixed page sizes,
 * and map/unmap churn on hot pages. The fuzz harness
 * (tests/fuzz_translation.cc) replays them under the shadow oracle
 * (oracle/shadow.hh) and asserts that no invariant breaks.
 *
 * Generation is deterministic in (pattern, config): the same seed
 * always produces the same trace, so any failure reproduces from the
 * seed printed by the harness.
 */

#ifndef HYPERSIO_WORKLOAD_ADVERSARIAL_HH
#define HYPERSIO_WORKLOAD_ADVERSARIAL_HH

#include <cstdint>

#include "trace/record.hh"

namespace hypersio::workload
{

/** The adversarial interleaving families. */
enum class AdversarialPattern
{
    /** Long per-SID bursts: trains the predictor, then breaks it. */
    SidBursts,
    /** Round-robin that reverses direction halfway through. */
    SidPhaseShift,
    /** Frequent unmaps of hot pages, including the ring page. */
    InvalidateStorm,
    /** Large random working set that thrashes the 8-entry PB. */
    PbThrash,
    /** All SIDs collide in one DevTLB partition row group. */
    PartitionConflict,
    /** Per-packet mix of 2 MB and 4 KB data pages. */
    HugeMix,
    /** Unmap-then-remap churn on the pages a packet is using. */
    RemapChurn,
    /** Uniformly random SIDs, pages, sizes, and unmaps. */
    UniformRandom,
    /**
     * Remaps that flip a page's size (2M↔4K) at the same 2M-aligned
     * base, sometimes declaring the wrong size in the unmap op: the
     * re-keyed translation must not survive under the old size's key.
     * (Deliberately last: the enum value seeds each pattern's RNG,
     * so appending keeps every existing trace bit-identical.)
     */
    SizeFlipRemap,
};

constexpr AdversarialPattern AllAdversarialPatterns[] = {
    AdversarialPattern::SidBursts,
    AdversarialPattern::SidPhaseShift,
    AdversarialPattern::InvalidateStorm,
    AdversarialPattern::PbThrash,
    AdversarialPattern::PartitionConflict,
    AdversarialPattern::HugeMix,
    AdversarialPattern::RemapChurn,
    AdversarialPattern::UniformRandom,
    AdversarialPattern::SizeFlipRemap,
};

/** Pattern name, for repro lines and test labels. */
const char *adversarialPatternName(AdversarialPattern pattern);

/** Knobs of one adversarial trace. */
struct AdversarialConfig
{
    unsigned tenants = 6;
    uint64_t packets = 200;
    uint64_t seed = 1;
};

/**
 * Builds one adversarial hyper-trace. Page map operations are
 * attached to the first packet that touches a page (and after any
 * unmap, to the next packet that touches it again), so the functional
 * page tables are always consistent with the request stream.
 */
trace::HyperTrace makeAdversarialTrace(AdversarialPattern pattern,
                                       const AdversarialConfig &config);

} // namespace hypersio::workload

#endif // HYPERSIO_WORKLOAD_ADVERSARIAL_HH
