/**
 * @file
 * Textual per-tenant log format — the interchange format between the
 * Log Collector stage and the Trace Constructor, mirroring how the
 * paper's HyperSIO passes QEMU-derived logs between its stages.
 *
 * One record per line:
 *
 *   # comment
 *   tenant <sid>
 *   map   <page-hex> 4K|2M
 *   unmap <page-hex> 4K|2M
 *   pkt   <ring-hex> <data-hex> 4K|2M <notify-hex> [wire-bytes]
 *
 * `map`/`unmap` lines attach to the next `pkt` line. The format is
 * deliberately simple so logs from other collectors (e.g. a real
 * QEMU trace post-processor) can be converted into it with a few
 * lines of scripting.
 */

#ifndef HYPERSIO_WORKLOAD_LOG_TEXT_HH
#define HYPERSIO_WORKLOAD_LOG_TEXT_HH

#include <iosfwd>
#include <string>

#include "trace/record.hh"

namespace hypersio::workload
{

/** Writes a tenant log in the textual format. */
void writeTextLog(const trace::TenantLog &log, std::ostream &os);

/** Writes a tenant log to a file; fatal() on I/O errors. */
void saveTextLog(const trace::TenantLog &log,
                 const std::string &path);

/**
 * Parses a textual log. Malformed lines are user errors (fatal(),
 * with the line number).
 */
trace::TenantLog parseTextLog(std::istream &is,
                              const std::string &name = "<stream>");

/** Loads a textual log from a file. */
trace::TenantLog loadTextLog(const std::string &path);

} // namespace hypersio::workload

#endif // HYPERSIO_WORKLOAD_LOG_TEXT_HH
