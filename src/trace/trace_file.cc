#include "trace/trace_file.hh"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <ostream>

#include "util/logging.hh"
#include "util/str.hh"

namespace hypersio::trace
{

namespace
{

constexpr uint32_t TraceMagic = 0x4f495348; // 'HSIO'
constexpr uint32_t TraceVersion = 3;

enum FileKind : uint32_t
{
    KindTenantLog = 0,
    KindHyperTrace = 1,
};

struct Header
{
    uint32_t magic;
    uint32_t version;
    uint32_t kind;
    uint32_t tenantsOrSid;
    uint64_t seed;
    uint64_t npackets;
    uint64_t nops;
};

struct PacketWire
{
    uint32_t sid;
    uint32_t opBegin;
    uint16_t opCount;
    uint8_t dataHuge;
    uint8_t pad = 0;
    uint32_t wireBytes;
    uint16_t pasid;
    uint16_t pad2 = 0;
    uint64_t ringIova;
    uint64_t dataIova;
    uint64_t notifyIova;
};

struct OpWire
{
    uint64_t pageBase;
    uint8_t size;
    uint8_t isMap;
    uint8_t pad[6] = {};
};

PacketWire
toWire(const PacketRecord &pkt)
{
    return {pkt.sid,       pkt.opBegin,  pkt.opCount,
            pkt.dataHuge,  0,            pkt.wireBytes,
            pkt.pasid,     0,            pkt.ringIova,
            pkt.dataIova,  pkt.notifyIova};
}

PacketRecord
fromWire(const PacketWire &w)
{
    PacketRecord pkt;
    pkt.sid = w.sid;
    pkt.opBegin = w.opBegin;
    pkt.opCount = w.opCount;
    pkt.dataHuge = w.dataHuge != 0;
    pkt.wireBytes = w.wireBytes;
    pkt.pasid = w.pasid;
    pkt.ringIova = w.ringIova;
    pkt.dataIova = w.dataIova;
    pkt.notifyIova = w.notifyIova;
    return pkt;
}

void
writePackets(std::ofstream &out, const std::vector<PacketRecord> &pkts,
             const std::vector<PageOp> &ops)
{
    for (const auto &pkt : pkts) {
        PacketWire w = toWire(pkt);
        out.write(reinterpret_cast<const char *>(&w), sizeof(w));
    }
    for (const auto &op : ops) {
        OpWire w{op.pageBase, static_cast<uint8_t>(op.size),
                 static_cast<uint8_t>(op.isMap ? 1 : 0), {}};
        out.write(reinterpret_cast<const char *>(&w), sizeof(w));
    }
}

void
readPackets(std::ifstream &in, uint64_t npackets, uint64_t nops,
            std::vector<PacketRecord> &pkts, std::vector<PageOp> &ops,
            const std::string &path)
{
    // Bulk-read each wire array with one sized read instead of one
    // stream extraction per record, then convert in memory. The
    // malformed-input checks are unchanged: a short read is a
    // truncated file, an out-of-range page size a corrupt one.
    std::vector<PacketWire> pkt_wire(npackets);
    if (npackets > 0) {
        in.read(reinterpret_cast<char *>(pkt_wire.data()),
                static_cast<std::streamsize>(npackets *
                                             sizeof(PacketWire)));
        if (!in)
            fatal("truncated trace file '%s'", path.c_str());
    }
    pkts.reserve(npackets);
    for (const PacketWire &w : pkt_wire)
        pkts.push_back(fromWire(w));

    std::vector<OpWire> op_wire(nops);
    if (nops > 0) {
        in.read(reinterpret_cast<char *>(op_wire.data()),
                static_cast<std::streamsize>(nops * sizeof(OpWire)));
        if (!in)
            fatal("truncated trace file '%s'", path.c_str());
    }
    ops.reserve(nops);
    for (const OpWire &w : op_wire) {
        if (w.size > 1)
            fatal("corrupt page-op size in '%s'", path.c_str());
        ops.push_back({w.pageBase, static_cast<mem::PageSize>(w.size),
                       w.isMap != 0});
    }
}

Header
readHeader(std::ifstream &in, const std::string &path,
           uint32_t expected_kind)
{
    Header hdr;
    in.read(reinterpret_cast<char *>(&hdr), sizeof(hdr));
    if (!in)
        fatal("cannot read header of '%s'", path.c_str());
    if (hdr.magic != TraceMagic)
        fatal("'%s' is not a HyperSIO trace (bad magic)", path.c_str());
    if (hdr.version != TraceVersion)
        fatal("'%s': unsupported trace version %u (expected %u)",
              path.c_str(), hdr.version, TraceVersion);
    if (hdr.kind != expected_kind)
        fatal("'%s': wrong trace kind %u (expected %u)", path.c_str(),
              hdr.kind, expected_kind);
    return hdr;
}

} // namespace

void
saveTrace(const HyperTrace &trace, const std::string &path)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        fatal("cannot open '%s' for writing", path.c_str());
    Header hdr{TraceMagic,   TraceVersion,
               KindHyperTrace, trace.numTenants,
               trace.seed,   trace.packets.size(),
               trace.ops.size()};
    out.write(reinterpret_cast<const char *>(&hdr), sizeof(hdr));
    writePackets(out, trace.packets, trace.ops);
    if (!out)
        fatal("write error on '%s'", path.c_str());
}

HyperTrace
loadTrace(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot open trace '%s'", path.c_str());
    Header hdr = readHeader(in, path, KindHyperTrace);
    HyperTrace trace;
    trace.numTenants = hdr.tenantsOrSid;
    trace.seed = hdr.seed;
    readPackets(in, hdr.npackets, hdr.nops, trace.packets, trace.ops,
                path);
    return trace;
}

void
saveTenantLog(const TenantLog &log, const std::string &path)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        fatal("cannot open '%s' for writing", path.c_str());
    Header hdr{TraceMagic,  TraceVersion,      KindTenantLog,
               log.sid,     0,                 log.packets.size(),
               log.ops.size()};
    out.write(reinterpret_cast<const char *>(&hdr), sizeof(hdr));
    writePackets(out, log.packets, log.ops);
    if (!out)
        fatal("write error on '%s'", path.c_str());
}

TenantLog
loadTenantLog(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot open tenant log '%s'", path.c_str());
    Header hdr = readHeader(in, path, KindTenantLog);
    TenantLog log;
    log.sid = hdr.tenantsOrSid;
    readPackets(in, hdr.npackets, hdr.nops, log.packets, log.ops, path);
    return log;
}

void
dumpTraceText(const HyperTrace &trace, std::ostream &os,
              uint64_t max_packets)
{
    os << "# hyper-trace tenants=" << trace.numTenants
       << " packets=" << trace.packets.size()
       << " translations=" << trace.translations() << "\n";
    uint64_t n = 0;
    for (const auto &pkt : trace.packets) {
        if (n++ >= max_packets)
            break;
        for (uint16_t i = 0; i < pkt.opCount; ++i) {
            const PageOp &op = trace.ops[pkt.opBegin + i];
            os << strprintf("  op  sid=%-4u %-5s %#llx (%s)\n",
                            pkt.sid, op.isMap ? "map" : "unmap",
                            (unsigned long long)op.pageBase,
                            op.size == mem::PageSize::Size2M ? "2M"
                                                             : "4K");
        }
        os << strprintf("pkt sid=%-4u ring=%#llx data=%#llx(%s) "
                        "notify=%#llx\n",
                        pkt.sid, (unsigned long long)pkt.ringIova,
                        (unsigned long long)pkt.dataIova,
                        pkt.dataHuge ? "2M" : "4K",
                        (unsigned long long)pkt.notifyIova);
    }
}

} // namespace hypersio::trace
