#include "trace/record.hh"

namespace hypersio::trace
{

const char *
reqClassName(ReqClass cls)
{
    switch (cls) {
      case ReqClass::Ring:
        return "ring";
      case ReqClass::Data:
        return "data";
      case ReqClass::Notify:
        return "notify";
    }
    return "?";
}

std::vector<uint64_t>
HyperTrace::perTenantPackets() const
{
    std::vector<uint64_t> counts(numTenants, 0);
    for (const auto &pkt : packets) {
        if (pkt.sid < counts.size())
            ++counts[pkt.sid];
    }
    return counts;
}

} // namespace hypersio::trace
