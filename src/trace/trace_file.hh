/**
 * @file
 * Binary serialization of tenant logs and hyper-traces, plus a
 * human-readable text dump. The binary format is versioned and
 * validated on load; malformed files are user errors (fatal()) not
 * simulator bugs.
 *
 * Layout (all little-endian, fixed-width):
 *   magic    u32   'HSIO' (0x4f495348)
 *   version  u32
 *   kind     u32   0 = tenant log, 1 = hyper trace
 *   tenants  u32   (hyper trace) or sid (tenant log)
 *   seed     u64
 *   npackets u64
 *   nops     u64
 *   packets  npackets * PacketRecordWire
 *   ops      nops * PageOpWire
 */

#ifndef HYPERSIO_TRACE_TRACE_FILE_HH
#define HYPERSIO_TRACE_TRACE_FILE_HH

#include <iosfwd>
#include <string>

#include "trace/record.hh"

namespace hypersio::trace
{

/** Writes a hyper-trace to `path`; fatal() on I/O failure. */
void saveTrace(const HyperTrace &trace, const std::string &path);

/** Loads a hyper-trace from `path`; fatal() on malformed input. */
HyperTrace loadTrace(const std::string &path);

/** Writes a single tenant log to `path`. */
void saveTenantLog(const TenantLog &log, const std::string &path);

/** Loads a tenant log from `path`. */
TenantLog loadTenantLog(const std::string &path);

/**
 * Dumps up to `max_packets` packets of a trace in a readable text
 * form (one packet per line) for debugging and the trace_tools
 * example.
 */
void dumpTraceText(const HyperTrace &trace, std::ostream &os,
                   uint64_t max_packets = UINT64_MAX);

} // namespace hypersio::trace

#endif // HYPERSIO_TRACE_TRACE_FILE_HH
