/**
 * @file
 * In-memory representation of translation traces.
 *
 * A *tenant log* is the per-tenant sequence of packets (with their
 * three gIOVA translation requests each) plus the page map/unmap
 * operations the tenant's driver performs. The *hyper-trace* is the
 * merged multi-tenant sequence produced by the Trace Constructor and
 * consumed by the performance model.
 */

#ifndef HYPERSIO_TRACE_RECORD_HH
#define HYPERSIO_TRACE_RECORD_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "mem/addr.hh"

namespace hypersio::trace
{

/** PCIe Source ID (Bus/Device/Function) — one per tenant VF. */
using SourceId = uint32_t;

/** The three translation requests each received packet triggers. */
enum class ReqClass : uint8_t
{
    Ring = 0,    ///< ring-buffer descriptor pointer
    Data = 1,    ///< packet data buffer
    Notify = 2,  ///< completion notification / interrupt mailbox
};

constexpr size_t NumReqClasses = 3;

/** Name of a request class, for dumps. */
const char *reqClassName(ReqClass cls);

/** A page mapping operation performed by the tenant's driver. */
struct PageOp
{
    mem::Iova pageBase = 0;
    mem::PageSize size = mem::PageSize::Size4K;
    bool isMap = true; ///< false = unmap (invalidates cached entries)
};

/**
 * One received packet and the translation work it generates. Page
 * operations ops[opBegin, opBegin+opCount) from the owning container
 * are applied when the packet is accepted by the device.
 */
struct PacketRecord
{
    SourceId sid = 0;
    /**
     * Process Address Space ID (Intel Scalable IOV): sub-address
     * spaces within one VF. 0 when the tenant is a whole VM.
     */
    uint16_t pasid = 0;
    uint32_t opBegin = 0;
    uint16_t opCount = 0;
    /** True when data buffer is a 2 MB (huge) page. */
    bool dataHuge = true;
    /**
     * Wire size of this packet in bytes; 0 means "use the link's
     * default packet size". Small packets (e.g. key-value-store
     * requests) arrive faster, leaving less time per translation.
     */
    uint32_t wireBytes = 0;
    mem::Iova ringIova = 0;
    mem::Iova dataIova = 0;
    mem::Iova notifyIova = 0;

    /** gIOVA of request class `cls`. */
    mem::Iova
    iova(ReqClass cls) const
    {
        switch (cls) {
          case ReqClass::Ring:
            return ringIova;
          case ReqClass::Data:
            return dataIova;
          case ReqClass::Notify:
            return notifyIova;
        }
        return 0;
    }

    /** Page size of request class `cls`. */
    mem::PageSize
    pageSize(ReqClass cls) const
    {
        return cls == ReqClass::Data && dataHuge
                   ? mem::PageSize::Size2M
                   : mem::PageSize::Size4K;
    }
};

/** Per-tenant packet log, as the Log Collector records it. */
struct TenantLog
{
    SourceId sid = 0;
    std::vector<PacketRecord> packets;
    std::vector<PageOp> ops;

    /** Translation requests in this log (3 per packet). */
    uint64_t translations() const { return packets.size() * 3; }
};

/**
 * The merged hyper-tenant trace driving one simulation. Op indices in
 * the packet records refer to the shared `ops` pool.
 */
struct HyperTrace
{
    uint32_t numTenants = 0;
    uint64_t seed = 0;
    std::vector<PacketRecord> packets;
    std::vector<PageOp> ops;

    uint64_t translations() const { return packets.size() * 3; }

    /** Per-tenant packet counts (index = sid). */
    std::vector<uint64_t> perTenantPackets() const;
};

} // namespace hypersio::trace

#endif // HYPERSIO_TRACE_RECORD_HH
