/**
 * @file
 * The HyperSIO Trace Constructor.
 *
 * Takes many per-tenant logs and splices them into a single
 * hyper-tenant trace. The paper's constructor (Section IV-B) supports
 * round-robin (RR) interleaving — modelling steady long-lived streams
 * behind a hardware arbiter — and random (RAND) interleaving —
 * modelling tenants issuing separate requests. The number after the
 * name is the burst size: consecutive packets taken from one tenant
 * per turn (RR4 models burstier traffic than RR1).
 *
 * Construction stops as soon as any tenant runs out of packets, which
 * avoids the "edge effect" of a tail where only a subset of tenants
 * is active.
 */

#ifndef HYPERSIO_TRACE_CONSTRUCTOR_HH
#define HYPERSIO_TRACE_CONSTRUCTOR_HH

#include <string>
#include <vector>

#include "trace/record.hh"

namespace hypersio::trace
{

/** Inter-tenant interleaving mode. */
enum class InterleaveKind
{
    RoundRobin,
    Random,
};

/** Interleaving specification: mode + burst size. */
struct Interleaving
{
    InterleaveKind kind = InterleaveKind::RoundRobin;
    /** Consecutive packets taken from a tenant per turn (>= 1). */
    unsigned burst = 1;
    /** Seed for the Random mode. */
    uint64_t seed = 1;

    /** Short name like "RR1", "RR4", "RAND1". */
    std::string name() const;
};

/** Parses "RR1"/"rr4"/"RAND1" etc.; fatal() on malformed input. */
Interleaving parseInterleaving(const std::string &text);

/**
 * Builds a hyper-trace from per-tenant logs. The resulting trace
 * contains each tenant's packets in their original per-tenant order,
 * interleaved according to `mode`, and is truncated when the
 * shortest log is exhausted. SIDs are renumbered to the log's index
 * so the hyper-trace always has dense SIDs [0, logs.size()).
 */
HyperTrace constructTrace(const std::vector<TenantLog> &logs,
                          const Interleaving &mode);

} // namespace hypersio::trace

#endif // HYPERSIO_TRACE_CONSTRUCTOR_HH
