/**
 * @file
 * Streaming front-end for hyper-traces.
 *
 * A PacketStream presents the same packet-plus-page-ops view of a
 * workload that a materialized HyperTrace does, but one packet at a
 * time: the head packet is produced lazily, so the total trace never
 * has to exist in memory. This is what makes the hyper-scale tenant
 * regime (100K+ tenants) feasible — a materialized 100K-tenant trace
 * is tens of gigabytes, while a stream's state is O(active tenants).
 *
 * The interface also carries the tenant-churn protocol used by
 * System::runStream's eviction mode:
 *
 *   - drainDetached() surfaces SIDs whose tenant has finished and
 *     detached; the System retires their translation state
 *     (page-table directory, caches, history, predictor) once every
 *     in-flight access has drained, and then
 *   - sidRetired() confirms the retirement back to the stream, which
 *     may re-use the SID slot for the next tenant (SID recycling is
 *     how a bounded SID space hosts an unbounded tenant population).
 *
 * A stream whose peek() returns null may be merely *stalled* (every
 * slot is parked awaiting retirement) rather than exhausted();
 * runStream restarts the arrival process when a retirement unparks a
 * slot.
 */

#ifndef HYPERSIO_TRACE_STREAM_HH
#define HYPERSIO_TRACE_STREAM_HH

#include <vector>

#include "trace/record.hh"

namespace hypersio::trace
{

/** Lazy, possibly-churning source of packets and their page ops. */
class PacketStream
{
  public:
    virtual ~PacketStream() = default;

    /**
     * The head packet, or nullptr when none is currently available
     * (the stream is exhausted, or stalled awaiting retirements).
     * Repeated calls without advance() return the same packet.
     */
    virtual const PacketRecord *peek() = 0;

    /**
     * The head packet's page operations: opCount entries, with
     * opBegin always 0 (the ops belong to the head packet only).
     * Valid until the next advance()/peek() transition.
     */
    virtual const PageOp *ops() const = 0;

    /** Consumes the head packet. */
    virtual void advance() = 0;

    /**
     * True when the stream can never produce another packet. A false
     * return with a null peek() means "stalled": packets will become
     * available again once pending SID retirements are confirmed.
     */
    virtual bool exhausted() = 0;

    /** Total tenant population this stream will have presented. */
    virtual uint32_t numTenants() const = 0;

    /**
     * Appends the SIDs of tenants that detached since the last call.
     * A tenant detaches only once its final packet has been consumed
     * via advance() — never while that packet is still buffered
     * (e.g. across a full-PTB drop/retry). Default: none.
     */
    virtual void drainDetached(std::vector<SourceId> &out)
    {
        (void)out;
    }

    /**
     * The System confirms that `sid`'s translation state has been
     * fully retired; the slot may be re-bound to a new tenant.
     */
    virtual void sidRetired(SourceId sid) { (void)sid; }
};

/**
 * Adapter presenting a materialized HyperTrace through the stream
 * interface. runStream(MaterializedStream(t)) is event-for-event
 * identical to run(t); the equivalence tests lean on this.
 */
class MaterializedStream : public PacketStream
{
  public:
    explicit MaterializedStream(const HyperTrace &trace)
        : _trace(trace)
    {}

    const PacketRecord *
    peek() override
    {
        return _cursor < _trace.packets.size()
                   ? &_trace.packets[_cursor]
                   : nullptr;
    }

    const PageOp *
    ops() const override
    {
        const PacketRecord &pkt = _trace.packets[_cursor];
        return _trace.ops.data() + pkt.opBegin;
    }

    void advance() override { ++_cursor; }

    bool exhausted() override
    {
        return _cursor >= _trace.packets.size();
    }

    uint32_t numTenants() const override { return _trace.numTenants; }

  private:
    const HyperTrace &_trace;
    size_t _cursor = 0;
};

} // namespace hypersio::trace

#endif // HYPERSIO_TRACE_STREAM_HH
