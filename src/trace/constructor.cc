#include "trace/constructor.hh"

#include <algorithm>
#include <cctype>

#include "util/logging.hh"
#include "util/rng.hh"
#include "util/str.hh"

namespace hypersio::trace
{

std::string
Interleaving::name() const
{
    const char *base =
        kind == InterleaveKind::RoundRobin ? "RR" : "RAND";
    return strprintf("%s%u", base, burst);
}

Interleaving
parseInterleaving(const std::string &text)
{
    std::string upper;
    for (char c : text)
        upper.push_back(static_cast<char>(
            std::toupper(static_cast<unsigned char>(c))));

    Interleaving mode;
    size_t prefix_len = 0;
    if (upper.rfind("RAND", 0) == 0) {
        mode.kind = InterleaveKind::Random;
        prefix_len = 4;
    } else if (upper.rfind("RR", 0) == 0) {
        mode.kind = InterleaveKind::RoundRobin;
        prefix_len = 2;
    } else {
        fatal("bad interleaving '%s' (expected RR<n> or RAND<n>)",
              text.c_str());
    }

    uint64_t burst = 1;
    if (prefix_len < upper.size()) {
        if (!parseU64(upper.substr(prefix_len), burst) || burst == 0)
            fatal("bad interleaving burst in '%s'", text.c_str());
    }
    mode.burst = static_cast<unsigned>(burst);
    return mode;
}

HyperTrace
constructTrace(const std::vector<TenantLog> &logs,
               const Interleaving &mode)
{
    HyperTrace trace;
    trace.numTenants = static_cast<uint32_t>(logs.size());
    if (logs.empty())
        return trace;

    size_t min_packets = SIZE_MAX;
    size_t total_packets = 0;
    for (const auto &log : logs) {
        min_packets = std::min(min_packets, log.packets.size());
        total_packets += log.packets.size();
    }
    if (min_packets == 0) {
        warn("trace constructor: a tenant log is empty; "
             "result is empty");
        return trace;
    }

    // Upper bound; the actual cut happens when the shortest log
    // drains, so reserve conservatively.
    trace.packets.reserve(
        std::min(total_packets, min_packets * logs.size() +
                                    logs.size() * mode.burst));

    // Per-tenant read cursors.
    std::vector<size_t> cursor(logs.size(), 0);
    Rng rng(mode.seed);

    auto copy_packet = [&](uint32_t tenant) {
        const TenantLog &log = logs[tenant];
        PacketRecord pkt = log.packets[cursor[tenant]];
        pkt.sid = tenant; // renumber to dense SIDs
        // Re-home the ops into the shared pool.
        const uint32_t op_begin =
            static_cast<uint32_t>(trace.ops.size());
        for (uint16_t i = 0; i < pkt.opCount; ++i)
            trace.ops.push_back(log.ops[pkt.opBegin + i]);
        pkt.opBegin = op_begin;
        trace.packets.push_back(pkt);
        ++cursor[tenant];
    };

    if (mode.kind == InterleaveKind::RoundRobin) {
        bool exhausted = false;
        while (!exhausted) {
            for (uint32_t t = 0; t < logs.size() && !exhausted; ++t) {
                for (unsigned b = 0; b < mode.burst; ++b) {
                    if (cursor[t] >= logs[t].packets.size()) {
                        exhausted = true;
                        break;
                    }
                    copy_packet(t);
                }
            }
        }
    } else {
        for (;;) {
            auto t = static_cast<uint32_t>(rng.below(logs.size()));
            bool exhausted = false;
            for (unsigned b = 0; b < mode.burst; ++b) {
                if (cursor[t] >= logs[t].packets.size()) {
                    exhausted = true;
                    break;
                }
                copy_packet(t);
            }
            if (exhausted)
                break;
        }
    }

    return trace;
}

} // namespace hypersio::trace
