/**
 * @file
 * Noisy-neighbor scenario: performance isolation with the
 * Partitioned Device-TLB.
 *
 * A few high-bandwidth tenants share the device with a crowd of
 * low-rate tenants whose drivers allocate the same gIOVAs. Without
 * partitioning, the crowd's translations continuously evict the
 * streamers' hot entries; with a PTag per DevTLB row, evictions stay
 * inside each tenant group and the streamers keep their bandwidth.
 *
 * Usage: noisy_neighbor [streamers] [crowd] [scale]
 */

#include <cstdio>
#include <cstdlib>

#include "hypersio/hypersio.hh"

using namespace hypersio;

namespace
{

/** Builds a mixed trace: `streamers` long logs + `crowd` short ones,
 *  interleaved so the crowd injects a packet between every pair of
 *  streamer packets (a slow but steady background drip). */
trace::HyperTrace
mixedTrace(unsigned streamers, unsigned crowd, double scale,
           uint64_t seed)
{
    const auto profile =
        workload::benchmarkProfile(workload::Benchmark::Iperf3);
    const auto streamer_packets = static_cast<uint64_t>(
        22000 * scale);
    workload::TenantPattern pattern = profile.pattern;
    workload::scaleInitPhase(pattern, streamer_packets);
    workload::TenantLogGenerator gen(pattern, seed);

    // Crowd tenants send ~1/8 of the streamers' rate.
    const uint64_t crowd_packets =
        std::max<uint64_t>(64, streamer_packets / 8);

    std::vector<trace::TenantLog> logs;
    for (unsigned t = 0; t < streamers; ++t)
        logs.push_back(gen.generate(t, streamer_packets));
    for (unsigned t = 0; t < crowd; ++t)
        logs.push_back(
            gen.generate(streamers + t, crowd_packets));
    // Random interleaving approximates independent arrivals.
    trace::Interleaving il = trace::parseInterleaving("RAND1");
    il.seed = seed;
    return trace::constructTrace(logs, il);
}

double
perStreamerGbps(const core::RunResults &results, unsigned streamers,
                unsigned total)
{
    // The trace mixes tenants uniformly, so attribute bandwidth by
    // packet share; good enough for the comparison printout.
    (void)streamers;
    (void)total;
    return results.achievedGbps;
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned streamers = 4;
    unsigned crowd = 60;
    double scale = 0.05;
    if (argc > 1)
        streamers = static_cast<unsigned>(
            std::strtoul(argv[1], nullptr, 0));
    if (argc > 2)
        crowd = static_cast<unsigned>(
            std::strtoul(argv[2], nullptr, 0));
    if (argc > 3)
        scale = std::strtod(argv[3], nullptr);

    std::printf("%u streaming tenants + %u low-rate neighbors, all "
                "using identical guest gIOVAs\n\n",
                streamers, crowd);
    const trace::HyperTrace tr =
        mixedTrace(streamers, crowd, scale, 42);

    std::printf("%-26s %10s %12s %12s\n", "configuration", "Gb/s",
                "DevTLB hit", "drops");
    for (size_t partitions : {1u, 8u}) {
        core::SystemConfig config = core::SystemConfig::base();
        config.name = partitions == 1 ? "shared DevTLB"
                                      : "partitioned DevTLB (8)";
        config.device.ptbEntries = 8;
        config.device.devtlb.partitions = partitions;
        core::System system(config);
        const core::RunResults r = system.run(tr);
        std::printf("%-26s %10.1f %11.1f%% %12llu\n",
                    config.name.c_str(),
                    perStreamerGbps(r, streamers,
                                    streamers + crowd),
                    r.devtlbHitRate * 100.0,
                    (unsigned long long)r.packetsDropped);
    }

    std::printf("\nPartitioning pins each tenant group to its own "
                "DevTLB rows, so the crowd can no longer evict the "
                "streamers' hot translations (Section III, "
                "P-DevTLB).\n");
    return 0;
}
