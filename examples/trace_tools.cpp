/**
 * @file
 * Trace toolbox: generate per-tenant logs, construct hyper-traces,
 * inspect them, and run them — the HyperSIO workflow as a CLI.
 *
 * Subcommands:
 *   generate   <out.trace> [--bench B] [--tenants N] [--scale F]
 *              [--interleave RR1|RR4|RAND1] [--seed S]
 *   info       <in.trace>
 *   dump       <in.trace> [--packets N]
 *   run        <in.trace> [--config base|hypertrio]
 *   export-log <out.txt>  [--bench B] [--scale F] [--seed S]
 *              write one tenant's log in the textual format
 *   import-log <in.txt>   [--tenants N] [--interleave IL]
 *              [--out <out.trace>] replicate a textual log across
 *              N tenants and construct a hyper-trace from it
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "hypersio/hypersio.hh"

using namespace hypersio;

namespace
{

struct Args
{
    std::string command;
    std::string path;
    std::string bench = "iperf3";
    std::string interleave = "RR1";
    std::string config = "hypertrio";
    unsigned tenants = 64;
    double scale = 0.05;
    uint64_t seed = 42;
    uint64_t packets = 20;
    std::string out = "out.trace";
};

[[noreturn]] void
usage()
{
    std::puts(
        "usage: trace_tools <command> <file> [options]\n"
        "  generate <out> [--bench iperf3|mediastream|websearch]\n"
        "                 [--tenants N] [--scale F]\n"
        "                 [--interleave RR1|RR4|RAND1] [--seed S]\n"
        "  info <in>      summary of a saved hyper-trace\n"
        "  dump <in>      [--packets N] text dump\n"
        "  run  <in>      [--config base|hypertrio]\n"
        "  export-log <out.txt> [--bench B] [--scale F]\n"
        "  import-log <in.txt> [--tenants N] [--interleave IL]\n"
        "             [--out <out.trace>]");
    std::exit(1);
}

Args
parse(int argc, char **argv)
{
    if (argc < 3)
        usage();
    Args args;
    args.command = argv[1];
    args.path = argv[2];
    for (int i = 3; i < argc; ++i) {
        const std::string flag = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (flag == "--bench") {
            args.bench = value();
        } else if (flag == "--tenants") {
            args.tenants = static_cast<unsigned>(
                std::strtoul(value().c_str(), nullptr, 0));
        } else if (flag == "--scale") {
            args.scale = std::strtod(value().c_str(), nullptr);
        } else if (flag == "--interleave") {
            args.interleave = value();
        } else if (flag == "--seed") {
            args.seed = std::strtoull(value().c_str(), nullptr, 0);
        } else if (flag == "--packets") {
            args.packets = std::strtoull(value().c_str(), nullptr, 0);
        } else if (flag == "--config") {
            args.config = value();
        } else if (flag == "--out") {
            args.out = value();
        } else {
            usage();
        }
    }
    return args;
}

} // namespace

int
main(int argc, char **argv)
{
    const Args args = parse(argc, argv);

    if (args.command == "generate") {
        auto logs = workload::generateLogs(
            workload::parseBenchmark(args.bench), args.tenants,
            args.seed, args.scale);
        auto tr = trace::constructTrace(
            logs, trace::parseInterleaving(args.interleave));
        tr.seed = args.seed;
        trace::saveTrace(tr, args.path);
        std::printf("wrote %s: %u tenants, %zu packets, %llu "
                    "translations\n",
                    args.path.c_str(), tr.numTenants,
                    tr.packets.size(),
                    (unsigned long long)tr.translations());
        return 0;
    }

    if (args.command == "export-log") {
        const auto profile = workload::benchmarkProfile(
            workload::parseBenchmark(args.bench));
        const auto packets = static_cast<uint64_t>(
            (profile.minTranslations / 3) * args.scale);
        workload::TenantPattern pattern = profile.pattern;
        workload::scaleInitPhase(pattern,
                                 std::max<uint64_t>(packets, 64));
        workload::TenantLogGenerator gen(pattern, args.seed);
        const trace::TenantLog log =
            gen.generate(0, std::max<uint64_t>(packets, 64));
        workload::saveTextLog(log, args.path);
        std::printf("wrote %s: %zu packets, %zu ops\n",
                    args.path.c_str(), log.packets.size(),
                    log.ops.size());
        return 0;
    }

    if (args.command == "import-log") {
        const trace::TenantLog base =
            workload::loadTextLog(args.path);
        // Replicate the log across N tenants (dense SIDs), exactly
        // what the paper's constructor does when fewer collector
        // runs exist than modeled tenants.
        std::vector<trace::TenantLog> logs;
        logs.reserve(args.tenants);
        for (unsigned t = 0; t < args.tenants; ++t) {
            trace::TenantLog copy = base;
            copy.sid = t;
            for (auto &pkt : copy.packets)
                pkt.sid = t;
            logs.push_back(std::move(copy));
        }
        auto tr = trace::constructTrace(
            logs, trace::parseInterleaving(args.interleave));
        tr.seed = args.seed;
        trace::saveTrace(tr, args.out);
        std::printf("wrote %s: %u tenants, %zu packets\n",
                    args.out.c_str(), tr.numTenants,
                    tr.packets.size());
        return 0;
    }

    const trace::HyperTrace tr = trace::loadTrace(args.path);

    if (args.command == "info") {
        std::printf("tenants:       %u\n", tr.numTenants);
        std::printf("packets:       %zu\n", tr.packets.size());
        std::printf("translations:  %llu\n",
                    (unsigned long long)tr.translations());
        std::printf("page ops:      %zu\n", tr.ops.size());
        const auto counts = tr.perTenantPackets();
        uint64_t min_c = UINT64_MAX;
        uint64_t max_c = 0;
        for (uint64_t c : counts) {
            min_c = std::min(min_c, c);
            max_c = std::max(max_c, c);
        }
        std::printf("packets/tenant: %llu .. %llu\n",
                    (unsigned long long)min_c,
                    (unsigned long long)max_c);
        return 0;
    }

    if (args.command == "dump") {
        trace::dumpTraceText(tr, std::cout, args.packets);
        return 0;
    }

    if (args.command == "run") {
        const core::SystemConfig config =
            args.config == "base" ? core::SystemConfig::base()
                                  : core::SystemConfig::hypertrio();
        core::System system(config);
        const core::RunResults r = system.run(tr);
        std::printf("%s: %.1f Gb/s (%.1f%%), %llu drops, devtlb "
                    "%.1f%%, pb %.1f%%\n",
                    config.name.c_str(), r.achievedGbps,
                    r.utilization * 100.0,
                    (unsigned long long)r.packetsDropped,
                    r.devtlbHitRate * 100.0, r.pbHitRate * 100.0);
        return 0;
    }

    usage();
}
