/**
 * @file
 * Prefetcher tuning walkthrough: how Prefetch Buffer capacity and
 * the SID-predictor history stride interact with prefetch latency.
 *
 * The history stride decides how far ahead of a tenant's next visit
 * the prefetch is issued; the buffer must keep the fill alive until
 * that visit. Too short a stride and the fill arrives late; too
 * long and it is evicted before use. This example sweeps both knobs
 * and prints achieved bandwidth plus the PB hit share so the
 * timeliness trade-off (Srinath et al.-style accuracy/timeliness
 * framing, Section V-D of the paper) is visible.
 *
 * Usage: prefetch_tuning [tenants] [scale]
 */

#include <cstdio>
#include <cstdlib>

#include "hypersio/hypersio.hh"

using namespace hypersio;

int
main(int argc, char **argv)
{
    unsigned tenants = 128;
    double scale = 0.05;
    if (argc > 1)
        tenants = static_cast<unsigned>(
            std::strtoul(argv[1], nullptr, 0));
    if (argc > 2)
        scale = std::strtod(argv[2], nullptr);

    auto logs = workload::generateLogs(workload::Benchmark::Iperf3,
                                       tenants, 42, scale);
    const auto tr =
        trace::constructTrace(logs, trace::parseInterleaving("RR1"));
    std::printf("iperf3, %u tenants, RR1, %zu packets\n\n", tenants,
                tr.packets.size());

    // Baseline without prefetching.
    {
        core::SystemConfig config = core::SystemConfig::hypertrio();
        config.device.prefetch.enabled = false;
        core::System system(config);
        const auto r = system.run(tr);
        std::printf("no prefetch:               %6.1f Gb/s\n\n",
                    r.achievedGbps);
    }

    std::printf("%8s %10s %10s %12s %12s\n", "PB", "stride",
                "Gb/s", "PB hit (%)", "prefetches");
    for (unsigned pb : {8u, 16u, 32u, 64u}) {
        for (unsigned stride : {8u, 16u, 20u, 28u, 48u}) {
            core::SystemConfig config =
                core::SystemConfig::hypertrio();
            config.device.prefetch.bufferEntries = pb;
            config.device.prefetch.historyLength = stride;
            core::System system(config);
            const auto r = system.run(tr);
            std::printf("%8u %10u %10.1f %12.1f %12llu\n", pb,
                        stride, r.achievedGbps,
                        r.pbHitRate * 100.0,
                        (unsigned long long)system.device()
                            .prefetchesSent());
        }
        std::printf("\n");
    }

    std::printf(
        "Reading the table: the stride must cover the prefetch\n"
        "round trip (~16 packet slots in this model) and the fill\n"
        "must survive in the buffer until the predicted tenant\n"
        "arrives — larger buffers widen the timeliness window.\n");
    return 0;
}
