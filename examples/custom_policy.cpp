/**
 * @file
 * Extending the library: plugging a custom replacement policy into
 * the Device-TLB.
 *
 * Implements a "class-pinning" policy on top of the public
 * ReplacementPolicy interface: translations of the hot control page
 * (the paper's frequency group 1) are preferred over data-buffer
 * entries when choosing a victim, an idea the paper's single-tenant
 * characterisation directly motivates ("this fact can be used to
 * decide which translation to evict in the case of a conflict").
 * The example compares it against LRU and LFU on the Base design.
 */

#include <cstdio>
#include <cstdlib>

#include "hypersio/hypersio.hh"

using namespace hypersio;

namespace
{

/**
 * Evicts, in order of preference: invalid-ish (oldest) data-buffer
 * entries first, hot-page entries only as a last resort. Hotness is
 * derived from the translation key's page-size bit: 2 MB mappings
 * are data buffers, 4 KB mappings are control structures.
 */
class ClassPinningPolicy : public cache::ReplacementPolicy
{
  public:
    void
    init(size_t num_sets, size_t num_ways) override
    {
        _lastUse.assign(num_sets * num_ways, 0);
        _ways = num_ways;
        _seq = 0;
    }

    void
    touch(size_t set, size_t way, uint64_t) override
    {
        _lastUse[set * _ways + way] = ++_seq;
    }

    void
    insert(size_t set, size_t way, uint64_t) override
    {
        _lastUse[set * _ways + way] = ++_seq;
    }

    void invalidate(size_t set, size_t way) override
    {
        _lastUse[set * _ways + way] = 0;
    }

    size_t
    victim(size_t set, const std::vector<size_t> &ways,
           const uint64_t *keys) override
    {
        // Prefer the least-recent *data* (2 MB) entry; fall back to
        // plain LRU when the set holds only control pages.
        size_t best = ways.front();
        uint64_t best_use = UINT64_MAX;
        bool best_is_data = false;
        for (size_t w : ways) {
            const bool is_data = (keys[w] >> 39) & 1; // size bit
            const uint64_t use = _lastUse[set * _ways + w];
            const bool better =
                (is_data && !best_is_data) ||
                (is_data == best_is_data && use < best_use);
            if (better) {
                best = w;
                best_use = use;
                best_is_data = is_data;
            }
        }
        return best;
    }

    void reset() override
    {
        std::fill(_lastUse.begin(), _lastUse.end(), 0);
        _seq = 0;
    }

  private:
    std::vector<uint64_t> _lastUse;
    size_t _ways = 0;
    uint64_t _seq = 0;
};

/** Replays the DevTLB lookup stream of a trace through one cache. */
cache::CacheStats
replay(const trace::HyperTrace &tr,
       std::unique_ptr<cache::ReplacementPolicy> policy)
{
    cache::CacheConfig config{64, 8, 1, cache::ReplPolicyKind::LRU,
                              7};
    cache::SetAssocCache<int> tlb(config, std::move(policy));
    for (const auto &pkt : tr.packets) {
        for (unsigned c = 0; c < trace::NumReqClasses; ++c) {
            const auto cls = static_cast<trace::ReqClass>(c);
            const auto size = pkt.pageSize(cls);
            const uint64_t key = iommu::translationKey(
                pkt.sid, pkt.iova(cls), size);
            const uint64_t idx =
                iommu::translationIndex(pkt.iova(cls), size);
            if (!tlb.lookup(key, idx))
                tlb.insert(key, idx, 1);
        }
    }
    return tlb.stats();
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned tenants = 6;
    if (argc > 1)
        tenants = static_cast<unsigned>(
            std::strtoul(argv[1], nullptr, 0));

    auto logs = workload::generateLogs(workload::Benchmark::Iperf3,
                                       tenants, 42, 0.05);
    const auto tr =
        trace::constructTrace(logs, trace::parseInterleaving("RR1"));
    std::printf("DevTLB replay, iperf3, %u tenants, %zu packets\n\n",
                tenants, tr.packets.size());

    std::printf("%-16s %12s %12s\n", "policy", "hit rate", "evictions");
    struct Row
    {
        const char *name;
        std::unique_ptr<cache::ReplacementPolicy> policy;
    };
    Row rows[] = {
        {"lru", cache::makePolicy(cache::ReplPolicyKind::LRU)},
        {"lfu", cache::makePolicy(cache::ReplPolicyKind::LFU)},
        {"class-pinning", std::make_unique<ClassPinningPolicy>()},
    };
    for (auto &row : rows) {
        const cache::CacheStats stats =
            replay(tr, std::move(row.policy));
        std::printf("%-16s %11.2f%% %12llu\n", row.name,
                    100.0 * (1.0 - stats.missRate()),
                    (unsigned long long)stats.evictions);
    }

    std::printf(
        "\nThe pinning heuristic protects control pages at the cost "
        "of extra data-buffer misses — and typically loses to LFU, "
        "whose frequency counters capture the same insight "
        "adaptively. That is the paper's own conclusion for "
        "motivating LFU, and the point of this example is the "
        "mechanics: any ReplacementPolicy subclass drops into the "
        "cache (and the DevTLB) unchanged.\n");
    return 0;
}
