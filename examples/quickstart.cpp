/**
 * @file
 * Quickstart: build a 64-tenant iperf3 hyper-trace, run it through
 * the Base and HyperTRIO configurations, and compare achieved I/O
 * bandwidth.
 *
 * Usage: quickstart [tenants] [scale]
 */

#include <cstdio>
#include <cstdlib>

#include "hypersio/hypersio.hh"

using namespace hypersio;

int
main(int argc, char **argv)
{
    unsigned tenants = 64;
    double scale = 0.05;
    if (argc > 1)
        tenants = static_cast<unsigned>(std::strtoul(argv[1],
                                                     nullptr, 0));
    if (argc > 2)
        scale = std::strtod(argv[2], nullptr);

    std::printf("generating %u iperf3 tenant logs (scale %.2f)...\n",
                tenants, scale);
    auto logs = workload::generateLogs(workload::Benchmark::Iperf3,
                                       tenants, /*seed=*/42, scale);

    auto hyper_trace =
        trace::constructTrace(logs, trace::parseInterleaving("RR1"));
    std::printf("hyper-trace: %zu packets, %llu translations\n",
                hyper_trace.packets.size(),
                (unsigned long long)hyper_trace.translations());

    for (const auto &config : {core::SystemConfig::base(),
                               core::SystemConfig::hypertrio()}) {
        core::System system(config);
        const core::RunResults results = system.run(hyper_trace);
        std::printf(
            "%-10s %7.1f Gb/s (%5.1f%% of link)  "
            "devtlb-hit %5.1f%%  pb-hit %5.1f%%  drops %llu\n",
            config.name.c_str(), results.achievedGbps,
            results.utilization * 100.0,
            results.devtlbHitRate * 100.0,
            results.pbHitRate * 100.0,
            (unsigned long long)results.packetsDropped);
    }
    return 0;
}
