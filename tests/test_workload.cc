/** Unit tests for the synthetic workload generator: the paper's
 *  single-tenant characterisation (Fig. 8), Table III request-count
 *  reproduction, shared gIOVA ranges, and determinism. */

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "trace/constructor.hh"
#include "workload/benchmarks.hh"
#include "workload/tenant_model.hh"

namespace hypersio::workload
{
namespace
{

TenantPattern
mediastreamLikePattern()
{
    TenantPattern p;
    p.streams = 8;
    p.numDataPages = 32;
    p.accessesPerDataPage = 1500;
    p.numInitPages = 70;
    p.accessesPerInitPage = 60;
    return p;
}

TEST(TenantLogGenerator, ThreeTranslationsPerPacket)
{
    TenantLogGenerator gen(mediastreamLikePattern(), 1);
    const trace::TenantLog log = gen.generate(0, 1000);
    EXPECT_EQ(log.packets.size(), 1000u);
    EXPECT_EQ(log.translations(), 3000u);
}

TEST(TenantLogGenerator, DeterministicForSameSeed)
{
    TenantLogGenerator gen(mediastreamLikePattern(), 5);
    const trace::TenantLog a = gen.generate(3, 500);
    const trace::TenantLog b = gen.generate(3, 500);
    ASSERT_EQ(a.packets.size(), b.packets.size());
    for (size_t i = 0; i < a.packets.size(); ++i) {
        EXPECT_EQ(a.packets[i].dataIova, b.packets[i].dataIova);
        EXPECT_EQ(a.packets[i].ringIova, b.packets[i].ringIova);
    }
}

TEST(TenantLogGenerator, Fig8aThreeFrequencyGroups)
{
    // A long-enough single-tenant log splits its pages into three
    // groups: one hot control page, the 2 MB data-buffer group, and
    // the cold init pages (Section IV-D / Fig. 8a).
    TenantLogGenerator gen(mediastreamLikePattern(), 1);
    const trace::TenantLog log = gen.generate(0, 200000);
    const PageAccessStats stats = analyzeLog(log);

    ASSERT_FALSE(stats.pages.empty());
    // Group 1: the single hottest page is the 4 KB control page,
    // touched twice per packet (ring + notify).
    const auto &hottest = stats.pages.front();
    EXPECT_EQ(hottest.page, 0x34800000u);
    EXPECT_EQ(hottest.size, mem::PageSize::Size4K);
    EXPECT_EQ(hottest.count, 2 * 200000u);

    // Group 2: the data pages are 2 MB and far less frequent
    // individually (paper: ~30x gap; ours is ~64x since the control
    // page serves both per-packet control accesses).
    uint64_t data_pages = 0;
    uint64_t data_accesses = 0;
    for (const auto &pc : stats.pages) {
        if (pc.size == mem::PageSize::Size2M) {
            ++data_pages;
            data_accesses += pc.count;
        }
    }
    EXPECT_EQ(data_pages, 32u);
    EXPECT_GT(hottest.count / (data_accesses / data_pages), 20u);

    // Group 3: init pages exist, are 4 KB, and see < 100 accesses.
    uint64_t init_pages = 0;
    for (const auto &pc : stats.pages) {
        if (pc.page >= 0xf0000000) {
            ++init_pages;
            EXPECT_LT(pc.count, 100u);
        }
    }
    EXPECT_EQ(init_pages, 70u);
}

TEST(TenantLogGenerator, Fig8bPeriodicSequentialDataAccess)
{
    // With a single stream, each 2 MB page is accessed
    // accessesPerDataPage times in a row before the driver unmaps it
    // and moves to the next (Fig. 8b).
    TenantPattern p = mediastreamLikePattern();
    p.streams = 1;
    p.numInitPages = 0;
    p.accessesPerDataPage = 100;
    TenantLogGenerator gen(p, 1);
    const trace::TenantLog log = gen.generate(0, 1000);

    mem::Addr current = 0;
    unsigned run_length = 0;
    std::vector<unsigned> runs;
    for (const auto &pkt : log.packets) {
        const mem::Addr base =
            mem::pageBase(pkt.dataIova, mem::PageSize::Size2M);
        if (base == current) {
            ++run_length;
        } else {
            if (run_length > 0)
                runs.push_back(run_length);
            current = base;
            run_length = 1;
        }
    }
    // Every complete run is exactly accessesPerDataPage long.
    ASSERT_GE(runs.size(), 8u);
    for (size_t i = 1; i < runs.size(); ++i) // skip partial first
        EXPECT_EQ(runs[i], 100u);
}

TEST(TenantLogGenerator, UnmapHappensWhenRingRecycles)
{
    // Buffer pages are unmapped (and remapped) when the ring wraps
    // around and the driver reuses them: one unmap per page per
    // full ring cycle.
    TenantPattern p = mediastreamLikePattern();
    p.streams = 1;
    p.numInitPages = 0;
    p.numDataPages = 4;
    p.accessesPerDataPage = 50;
    TenantLogGenerator gen(p, 1);
    const trace::TenantLog log = gen.generate(0, 1000);

    unsigned unmaps = 0;
    for (const auto &op : log.ops)
        unmaps += op.isMap ? 0 : 1;
    // 1000 packets / 50 per page = 20 in-run assignments plus the
    // initial one, over a 4-page ring: the first 4 are fresh maps,
    // the remaining 17 recycle a previously mapped page.
    EXPECT_EQ(unmaps, 17u);

    // Every unmap of a page is immediately followed by its remap.
    for (size_t i = 0; i < log.ops.size(); ++i) {
        if (!log.ops[i].isMap) {
            ASSERT_LT(i + 1, log.ops.size());
            EXPECT_TRUE(log.ops[i + 1].isMap);
            EXPECT_EQ(log.ops[i + 1].pageBase, log.ops[i].pageBase);
        }
    }
}

TEST(TenantLogGenerator, AllTenantsShareTheSameIovaRanges)
{
    // Same OS + driver in every tenant: the gIOVA values coincide
    // across tenants (the root cause of cross-tenant conflicts).
    TenantLogGenerator gen(mediastreamLikePattern(), 1);
    const trace::TenantLog a = gen.generate(0, 2000);
    const trace::TenantLog b = gen.generate(1, 2000);
    std::set<mem::Addr> pages_a;
    std::set<mem::Addr> pages_b;
    for (const auto &pkt : a.packets)
        pages_a.insert(mem::pageBase(pkt.dataIova,
                                     mem::PageSize::Size2M));
    for (const auto &pkt : b.packets)
        pages_b.insert(mem::pageBase(pkt.dataIova,
                                     mem::PageSize::Size2M));
    EXPECT_EQ(pages_a, pages_b);
}

TEST(TenantLogGenerator, MapPrecedesFirstUseOfEveryPage)
{
    TenantLogGenerator gen(mediastreamLikePattern(), 3);
    const trace::TenantLog log = gen.generate(0, 5000);
    std::unordered_set<mem::Addr> mapped;
    for (const auto &pkt : log.packets) {
        for (uint16_t i = 0; i < pkt.opCount; ++i) {
            const trace::PageOp &op = log.ops[pkt.opBegin + i];
            if (op.isMap)
                mapped.insert(op.pageBase);
            else
                mapped.erase(op.pageBase);
        }
        const mem::Addr data = mem::pageBase(
            pkt.dataIova, pkt.dataHuge ? mem::PageSize::Size2M
                                       : mem::PageSize::Size4K);
        EXPECT_TRUE(mapped.count(mem::pageBase(
            pkt.ringIova, mem::PageSize::Size4K)));
        EXPECT_TRUE(mapped.count(data))
            << "unmapped data page " << std::hex << data;
    }
}

TEST(ActiveTranslationSet, GrowsWithStreams)
{
    TenantPattern regular = mediastreamLikePattern();
    regular.streams = 1;
    regular.numInitPages = 0;
    TenantPattern wide = mediastreamLikePattern();
    wide.streams = 12;
    wide.jitterProb = 0.2;
    wide.numInitPages = 0;

    TenantLogGenerator gen_r(regular, 1);
    TenantLogGenerator gen_w(wide, 1);
    const unsigned small = activeTranslationSet(
        gen_r.generate(0, 20000), 0.999, 128);
    const unsigned large = activeTranslationSet(
        gen_w.generate(0, 20000), 0.999, 128);
    EXPECT_LT(small, 8u);
    EXPECT_GT(large, small);
}

TEST(Benchmarks, ParseAndNames)
{
    EXPECT_EQ(parseBenchmark("iperf3"), Benchmark::Iperf3);
    EXPECT_EQ(parseBenchmark("mediastream"), Benchmark::Mediastream);
    EXPECT_EQ(parseBenchmark("websearch"), Benchmark::Websearch);
    EXPECT_STREQ(benchmarkName(Benchmark::Iperf3), "iperf3");
}

TEST(Benchmarks, TableIIIBoundsAtFullScale)
{
    // At scale 1.0, per-tenant translation counts reproduce the
    // paper's Table III min/max (packets are translations / 3, so
    // counts match within rounding).
    for (Benchmark bench : AllBenchmarks) {
        const BenchmarkProfile profile = benchmarkProfile(bench);
        auto logs = generateLogs(bench, 8, 42, 1.0);
        uint64_t min_tr = UINT64_MAX;
        uint64_t max_tr = 0;
        for (const auto &log : logs) {
            min_tr = std::min(min_tr, log.translations());
            max_tr = std::max(max_tr, log.translations());
        }
        EXPECT_NEAR(static_cast<double>(min_tr),
                    static_cast<double>(profile.minTranslations), 3.0)
            << benchmarkName(bench);
        EXPECT_NEAR(static_cast<double>(max_tr),
                    static_cast<double>(profile.maxTranslations), 3.0)
            << benchmarkName(bench);
    }
}

TEST(Benchmarks, TableIIITotalForTruncatedTrace)
{
    // The constructed RR1 trace truncates every tenant at the
    // shortest log, so total translations ≈ tenants * min.
    auto logs = generateLogs(Benchmark::Iperf3, 16, 42, 0.1);
    const auto trace_rr =
        trace::constructTrace(logs, trace::parseInterleaving("RR1"));
    uint64_t min_packets = UINT64_MAX;
    for (const auto &log : logs)
        min_packets = std::min<uint64_t>(min_packets,
                                         log.packets.size());
    EXPECT_NEAR(static_cast<double>(trace_rr.packets.size()),
                static_cast<double>(16 * min_packets),
                static_cast<double>(16));
}

TEST(Benchmarks, ScaleShrinksLogs)
{
    auto big = generateLogs(Benchmark::Mediastream, 4, 42, 0.2);
    auto small = generateLogs(Benchmark::Mediastream, 4, 42, 0.05);
    EXPECT_GT(big[0].packets.size(), small[0].packets.size());
    // Floor: even tiny scales yield usable logs.
    auto tiny = generateLogs(Benchmark::Mediastream, 4, 42, 1e-6);
    EXPECT_GE(tiny[0].packets.size(), 64u);
}

TEST(Benchmarks, ProfilesDifferInRegularity)
{
    const auto iperf = benchmarkProfile(Benchmark::Iperf3);
    const auto media = benchmarkProfile(Benchmark::Mediastream);
    const auto web = benchmarkProfile(Benchmark::Websearch);
    EXPECT_LT(iperf.pattern.streams, media.pattern.streams);
    EXPECT_LT(media.pattern.streams, web.pattern.streams);
    EXPECT_EQ(iperf.pattern.jitterProb, 0.0);
    EXPECT_GT(web.pattern.jitterProb, media.pattern.jitterProb);
    EXPECT_TRUE(web.pattern.randomStreamOrder);
}

TEST(AnalyzeLog, CountsPagesAboveThreshold)
{
    TenantLogGenerator gen(mediastreamLikePattern(), 1);
    const PageAccessStats stats = analyzeLog(gen.generate(0, 10000));
    EXPECT_GE(stats.pagesAbove(10000), 1u); // the control page
    EXPECT_EQ(stats.pagesAbove(UINT64_MAX), 0u);
}

} // namespace
} // namespace hypersio::workload
