/** Unit tests for the Pending Translation Buffer. */

#include <gtest/gtest.h>

#include "core/ptb.hh"

namespace hypersio::core
{
namespace
{

trace::PacketRecord
packet(trace::SourceId sid)
{
    trace::PacketRecord pkt;
    pkt.sid = sid;
    pkt.ringIova = 0x34800000;
    pkt.dataIova = 0xbbe00000;
    pkt.notifyIova = 0x34800f00;
    return pkt;
}

TEST(Ptb, AllocateUntilFull)
{
    PendingTranslationBuffer ptb(2);
    EXPECT_EQ(ptb.capacity(), 2u);
    EXPECT_FALSE(ptb.full());
    const int a = ptb.allocate(packet(0), 10);
    const int b = ptb.allocate(packet(1), 20);
    EXPECT_GE(a, 0);
    EXPECT_GE(b, 0);
    EXPECT_NE(a, b);
    EXPECT_TRUE(ptb.full());
    EXPECT_EQ(ptb.allocate(packet(2), 30), -1); // drop
    EXPECT_EQ(ptb.inUse(), 2u);
}

TEST(Ptb, ReleaseMakesRoom)
{
    PendingTranslationBuffer ptb(1);
    const int a = ptb.allocate(packet(0), 0);
    ASSERT_GE(a, 0);
    EXPECT_TRUE(ptb.full());
    ptb.release(static_cast<unsigned>(a));
    EXPECT_FALSE(ptb.full());
    EXPECT_EQ(ptb.inUse(), 0u);
    EXPECT_GE(ptb.allocate(packet(1), 1), 0);
}

TEST(Ptb, EntryStateInitialised)
{
    PendingTranslationBuffer ptb(4);
    const int idx = ptb.allocate(packet(7), 123);
    ASSERT_GE(idx, 0);
    const PtbEntry &entry = ptb.entry(static_cast<unsigned>(idx));
    EXPECT_TRUE(entry.busy);
    EXPECT_EQ(entry.packet.sid, 7u);
    EXPECT_EQ(entry.nextReq, 0u);
    EXPECT_FALSE(entry.prefetchIssued);
    EXPECT_EQ(entry.accepted, 123u);
}

TEST(Ptb, ReallocationResetsEntryState)
{
    PendingTranslationBuffer ptb(1);
    int idx = ptb.allocate(packet(1), 5);
    PtbEntry &entry = ptb.entry(static_cast<unsigned>(idx));
    entry.nextReq = 3;
    entry.prefetchIssued = true;
    ptb.release(static_cast<unsigned>(idx));

    idx = ptb.allocate(packet(2), 9);
    const PtbEntry &fresh = ptb.entry(static_cast<unsigned>(idx));
    EXPECT_EQ(fresh.nextReq, 0u);
    EXPECT_FALSE(fresh.prefetchIssued);
    EXPECT_EQ(fresh.packet.sid, 2u);
}

TEST(Ptb, OutOfOrderRelease)
{
    PendingTranslationBuffer ptb(3);
    const int a = ptb.allocate(packet(0), 0);
    const int b = ptb.allocate(packet(1), 0);
    const int c = ptb.allocate(packet(2), 0);
    // Release the middle one first: no head-of-line blocking.
    ptb.release(static_cast<unsigned>(b));
    EXPECT_EQ(ptb.inUse(), 2u);
    const int d = ptb.allocate(packet(3), 0);
    EXPECT_GE(d, 0);
    EXPECT_TRUE(ptb.full());
    ptb.release(static_cast<unsigned>(a));
    ptb.release(static_cast<unsigned>(c));
    ptb.release(static_cast<unsigned>(d));
    EXPECT_EQ(ptb.inUse(), 0u);
}

TEST(Ptb, StressChurnKeepsAccounting)
{
    PendingTranslationBuffer ptb(8);
    std::vector<unsigned> live;
    uint64_t allocated = 0;
    for (int round = 0; round < 1000; ++round) {
        if (live.size() < 8 && (round % 3) != 2) {
            int idx = ptb.allocate(packet(round & 0xff), round);
            ASSERT_GE(idx, 0);
            live.push_back(static_cast<unsigned>(idx));
            ++allocated;
        } else if (!live.empty()) {
            ptb.release(live[round % live.size()]);
            live.erase(live.begin() +
                       static_cast<long>(round % live.size()));
        }
        EXPECT_EQ(ptb.inUse(), live.size());
    }
    EXPECT_GT(allocated, 300u);
}

} // namespace
} // namespace hypersio::core
