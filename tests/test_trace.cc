/** Unit tests for trace records, binary file round-trips, and the
 *  Trace Constructor's interleaving and truncation semantics. */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "trace/constructor.hh"
#include "trace/record.hh"
#include "trace/trace_file.hh"

namespace hypersio::trace
{
namespace
{

PacketRecord
makePacket(SourceId sid, uint64_t n)
{
    PacketRecord pkt;
    pkt.sid = sid;
    pkt.ringIova = 0x34800000 + (n % 128) * 16;
    pkt.dataIova = 0xbbe00000 + n * 1400;
    pkt.notifyIova = 0x34800f00;
    pkt.dataHuge = true;
    return pkt;
}

TenantLog
makeLog(SourceId sid, uint64_t packets)
{
    TenantLog log;
    log.sid = sid;
    log.ops.push_back({0x34800000, mem::PageSize::Size4K, true});
    for (uint64_t i = 0; i < packets; ++i) {
        PacketRecord pkt = makePacket(sid, i);
        if (i == 0) {
            pkt.opBegin = 0;
            pkt.opCount = 1;
        }
        log.packets.push_back(pkt);
    }
    return log;
}

TEST(Record, IovaAccessorsByClass)
{
    PacketRecord pkt = makePacket(3, 7);
    EXPECT_EQ(pkt.iova(ReqClass::Ring), pkt.ringIova);
    EXPECT_EQ(pkt.iova(ReqClass::Data), pkt.dataIova);
    EXPECT_EQ(pkt.iova(ReqClass::Notify), pkt.notifyIova);
    EXPECT_EQ(pkt.pageSize(ReqClass::Ring), mem::PageSize::Size4K);
    EXPECT_EQ(pkt.pageSize(ReqClass::Data), mem::PageSize::Size2M);
    pkt.dataHuge = false;
    EXPECT_EQ(pkt.pageSize(ReqClass::Data), mem::PageSize::Size4K);
}

TEST(Record, ReqClassNames)
{
    EXPECT_STREQ(reqClassName(ReqClass::Ring), "ring");
    EXPECT_STREQ(reqClassName(ReqClass::Data), "data");
    EXPECT_STREQ(reqClassName(ReqClass::Notify), "notify");
}

TEST(Record, PerTenantPacketCounts)
{
    HyperTrace trace;
    trace.numTenants = 3;
    trace.packets = {makePacket(0, 0), makePacket(1, 0),
                     makePacket(0, 1)};
    const auto counts = trace.perTenantPackets();
    ASSERT_EQ(counts.size(), 3u);
    EXPECT_EQ(counts[0], 2u);
    EXPECT_EQ(counts[1], 1u);
    EXPECT_EQ(counts[2], 0u);
    EXPECT_EQ(trace.translations(), 9u);
}

TEST(Interleaving, ParseAndName)
{
    const Interleaving rr1 = parseInterleaving("RR1");
    EXPECT_EQ(rr1.kind, InterleaveKind::RoundRobin);
    EXPECT_EQ(rr1.burst, 1u);
    EXPECT_EQ(rr1.name(), "RR1");

    const Interleaving rr4 = parseInterleaving("rr4");
    EXPECT_EQ(rr4.burst, 4u);

    const Interleaving rand1 = parseInterleaving("RAND1");
    EXPECT_EQ(rand1.kind, InterleaveKind::Random);
    EXPECT_EQ(rand1.name(), "RAND1");

    // Bare names default to burst 1.
    EXPECT_EQ(parseInterleaving("RR").burst, 1u);
}

TEST(Constructor, RoundRobinInterleavesFairly)
{
    std::vector<TenantLog> logs{makeLog(10, 4), makeLog(20, 4),
                                makeLog(30, 4)};
    const HyperTrace trace =
        constructTrace(logs, parseInterleaving("RR1"));
    ASSERT_EQ(trace.packets.size(), 12u);
    // SIDs are renumbered densely and strictly rotate 0,1,2,0,1,2...
    for (size_t i = 0; i < trace.packets.size(); ++i)
        EXPECT_EQ(trace.packets[i].sid, i % 3);
}

TEST(Constructor, BurstTakesConsecutivePackets)
{
    std::vector<TenantLog> logs{makeLog(0, 8), makeLog(1, 8)};
    const HyperTrace trace =
        constructTrace(logs, parseInterleaving("RR4"));
    ASSERT_GE(trace.packets.size(), 8u);
    for (size_t i = 0; i < 8; ++i)
        EXPECT_EQ(trace.packets[i].sid, (i / 4) % 2);
}

TEST(Constructor, StopsWhenShortestLogDrains)
{
    // Tenant 1 has only 2 packets: per the paper, construction stops
    // when any tenant runs out (no "edge effect" tail).
    std::vector<TenantLog> logs{makeLog(0, 10), makeLog(1, 2),
                                makeLog(2, 10)};
    const HyperTrace trace =
        constructTrace(logs, parseInterleaving("RR1"));
    const auto counts = trace.perTenantPackets();
    EXPECT_EQ(counts[1], 2u);
    // The others contributed at most one extra round.
    EXPECT_LE(counts[0], 3u);
    EXPECT_LE(counts[2], 3u);
}

TEST(Constructor, RandomIsSeededAndCoversAllTenants)
{
    std::vector<TenantLog> logs{makeLog(0, 50), makeLog(1, 50),
                                makeLog(2, 50)};
    Interleaving il = parseInterleaving("RAND1");
    il.seed = 7;
    const HyperTrace a = constructTrace(logs, il);
    const HyperTrace b = constructTrace(logs, il);
    ASSERT_EQ(a.packets.size(), b.packets.size());
    for (size_t i = 0; i < a.packets.size(); ++i)
        EXPECT_EQ(a.packets[i].sid, b.packets[i].sid);

    const auto counts = a.perTenantPackets();
    for (uint64_t c : counts)
        EXPECT_GT(c, 0u);
}

TEST(Constructor, PreservesPerTenantPacketOrder)
{
    std::vector<TenantLog> logs{makeLog(0, 6), makeLog(1, 6)};
    const HyperTrace trace =
        constructTrace(logs, parseInterleaving("RAND1"));
    uint64_t last_data[2] = {0, 0};
    for (const auto &pkt : trace.packets) {
        EXPECT_GE(pkt.dataIova, last_data[pkt.sid]);
        last_data[pkt.sid] = pkt.dataIova;
    }
}

TEST(Constructor, RehomesOpsIntoSharedPool)
{
    std::vector<TenantLog> logs{makeLog(0, 3), makeLog(1, 3)};
    const HyperTrace trace =
        constructTrace(logs, parseInterleaving("RR1"));
    EXPECT_EQ(trace.ops.size(), 2u); // one map op per tenant
    for (const auto &pkt : trace.packets) {
        for (uint16_t i = 0; i < pkt.opCount; ++i) {
            ASSERT_LT(pkt.opBegin + i, trace.ops.size());
            EXPECT_TRUE(trace.ops[pkt.opBegin + i].isMap);
        }
    }
}

TEST(Constructor, EmptyInputsYieldEmptyTrace)
{
    EXPECT_TRUE(constructTrace({}, parseInterleaving("RR1"))
                    .packets.empty());
    std::vector<TenantLog> logs{makeLog(0, 0), makeLog(1, 5)};
    EXPECT_TRUE(constructTrace(logs, parseInterleaving("RR1"))
                    .packets.empty());
}

class TraceFileTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        _path = std::filesystem::temp_directory_path() /
                "hypersio_trace_test.bin";
    }
    void TearDown() override { std::filesystem::remove(_path); }

    std::filesystem::path _path;
};

TEST_F(TraceFileTest, HyperTraceRoundTrip)
{
    std::vector<TenantLog> logs{makeLog(0, 5), makeLog(1, 5)};
    HyperTrace original =
        constructTrace(logs, parseInterleaving("RR2"));
    original.seed = 99;
    saveTrace(original, _path.string());

    const HyperTrace loaded = loadTrace(_path.string());
    EXPECT_EQ(loaded.numTenants, original.numTenants);
    EXPECT_EQ(loaded.seed, 99u);
    ASSERT_EQ(loaded.packets.size(), original.packets.size());
    ASSERT_EQ(loaded.ops.size(), original.ops.size());
    for (size_t i = 0; i < loaded.packets.size(); ++i) {
        EXPECT_EQ(loaded.packets[i].sid, original.packets[i].sid);
        EXPECT_EQ(loaded.packets[i].dataIova,
                  original.packets[i].dataIova);
        EXPECT_EQ(loaded.packets[i].opCount,
                  original.packets[i].opCount);
    }
    for (size_t i = 0; i < loaded.ops.size(); ++i) {
        EXPECT_EQ(loaded.ops[i].pageBase, original.ops[i].pageBase);
        EXPECT_EQ(loaded.ops[i].isMap, original.ops[i].isMap);
    }
}

TEST_F(TraceFileTest, TenantLogRoundTrip)
{
    const TenantLog original = makeLog(17, 8);
    saveTenantLog(original, _path.string());
    const TenantLog loaded = loadTenantLog(_path.string());
    EXPECT_EQ(loaded.sid, 17u);
    ASSERT_EQ(loaded.packets.size(), 8u);
    EXPECT_EQ(loaded.translations(), 24u);
    EXPECT_EQ(loaded.ops.size(), original.ops.size());
}

TEST_F(TraceFileTest, TextDumpContainsPacketsAndOps)
{
    std::vector<TenantLog> logs{makeLog(0, 2)};
    const HyperTrace trace =
        constructTrace(logs, parseInterleaving("RR1"));
    std::ostringstream os;
    dumpTraceText(trace, os);
    const std::string text = os.str();
    EXPECT_NE(text.find("pkt sid=0"), std::string::npos);
    EXPECT_NE(text.find("map"), std::string::npos);
    EXPECT_NE(text.find("0x34800000"), std::string::npos);
}

TEST_F(TraceFileTest, TextDumpRespectsLimit)
{
    std::vector<TenantLog> logs{makeLog(0, 50)};
    const HyperTrace trace =
        constructTrace(logs, parseInterleaving("RR1"));
    std::ostringstream os;
    dumpTraceText(trace, os, 3);
    size_t lines = 0;
    for (char c : os.str())
        lines += c == '\n' ? 1 : 0;
    EXPECT_LE(lines, 6u);
}

} // namespace
} // namespace hypersio::trace
