/** Unit tests for the replacement policies: LRU, LFU (4-bit counters,
 *  halve-on-saturate, LRU tie-break), FIFO, Random, and the Belady
 *  oracle with its future-knowledge feed. */

#include <gtest/gtest.h>

#include "cache/oracle_feed.hh"
#include "cache/replacement.hh"
#include "cache/set_assoc_cache.hh"

namespace hypersio::cache
{
namespace
{

TEST(ParsePolicy, AcceptsKnownNames)
{
    EXPECT_EQ(parseReplPolicy("lru"), ReplPolicyKind::LRU);
    EXPECT_EQ(parseReplPolicy("LFU"), ReplPolicyKind::LFU);
    EXPECT_EQ(parseReplPolicy("fifo"), ReplPolicyKind::FIFO);
    EXPECT_EQ(parseReplPolicy("random"), ReplPolicyKind::Random);
    EXPECT_EQ(parseReplPolicy("belady"), ReplPolicyKind::Oracle);
    EXPECT_STREQ(replPolicyName(ReplPolicyKind::LFU), "lfu");
}

TEST(LruPolicy, EvictsLeastRecentlyUsed)
{
    LruPolicy lru;
    lru.init(1, 3);
    lru.insert(0, 0, 100);
    lru.insert(0, 1, 101);
    lru.insert(0, 2, 102);
    lru.touch(0, 0, 100); // way 0 is now most recent
    std::vector<size_t> ways{0, 1, 2};
    uint64_t keys[3] = {100, 101, 102};
    EXPECT_EQ(lru.victim(0, ways, keys), 1u);
}

TEST(LruPolicy, ResetForgetsRecency)
{
    LruPolicy lru;
    lru.init(1, 2);
    lru.insert(0, 0, 1);
    lru.insert(0, 1, 2);
    lru.reset();
    lru.insert(0, 1, 3);
    std::vector<size_t> ways{0, 1};
    uint64_t keys[2] = {1, 3};
    EXPECT_EQ(lru.victim(0, ways, keys), 0u);
}

TEST(LfuPolicy, EvictsLeastFrequentlyUsed)
{
    LfuPolicy lfu;
    lfu.init(1, 2);
    lfu.insert(0, 0, 1);
    lfu.insert(0, 1, 2);
    lfu.touch(0, 0, 1);
    lfu.touch(0, 0, 1); // way 0 count 3, way 1 count 1
    std::vector<size_t> ways{0, 1};
    uint64_t keys[2] = {1, 2};
    EXPECT_EQ(lfu.victim(0, ways, keys), 1u);
}

TEST(LfuPolicy, CounterSaturatesAndHalvesRow)
{
    LfuPolicy lfu(4); // max count 15
    lfu.init(1, 2);
    lfu.insert(0, 0, 1); // count 1
    lfu.insert(0, 1, 2); // count 1
    for (int i = 0; i < 14; ++i)
        lfu.touch(0, 0, 1); // way 0 reaches 15
    EXPECT_EQ(lfu.counter(0, 0), 15u);
    EXPECT_EQ(lfu.counter(0, 1), 1u);
    // Next touch saturates: the whole row halves, then increments.
    lfu.touch(0, 0, 1);
    EXPECT_EQ(lfu.counter(0, 0), 8u); // 15/2 + 1
    EXPECT_EQ(lfu.counter(0, 1), 0u); // 1/2
}

TEST(LfuPolicy, TieBreaksByRecency)
{
    // Both ways at count 1; the older one must be the victim, so a
    // stale entry cannot pin its way against fresh insertions.
    LfuPolicy lfu;
    lfu.init(1, 2);
    lfu.insert(0, 0, 1); // older
    lfu.insert(0, 1, 2); // newer
    std::vector<size_t> ways{0, 1};
    uint64_t keys[2] = {1, 2};
    EXPECT_EQ(lfu.victim(0, ways, keys), 0u);
}

TEST(LfuPolicy, HotEntrySurvivesChurn)
{
    // A frequently touched entry must survive a stream of one-shot
    // insertions through the same set.
    CacheConfig config{4, 4, 1, ReplPolicyKind::LFU, 1};
    SetAssocCache<int> cache(config);
    cache.insert(0, 0, 1); // the hot key
    for (int round = 0; round < 50; ++round) {
        cache.lookup(0, 0); // keep it hot
        cache.insert(1000 + round, 0, 2);
    }
    EXPECT_NE(cache.lookup(0, 0), nullptr);
}

TEST(FifoPolicy, EvictsOldestInsertion)
{
    FifoPolicy fifo;
    fifo.init(1, 3);
    fifo.insert(0, 2, 102);
    fifo.insert(0, 0, 100);
    fifo.insert(0, 1, 101);
    fifo.touch(0, 2, 102); // touches do not matter for FIFO
    std::vector<size_t> ways{0, 1, 2};
    uint64_t keys[3] = {100, 101, 102};
    EXPECT_EQ(fifo.victim(0, ways, keys), 2u);
}

TEST(RandomPolicy, DeterministicFromSeedAndInRange)
{
    RandomPolicy a(5);
    RandomPolicy b(5);
    std::vector<size_t> ways{0, 1, 2, 3};
    uint64_t keys[4] = {};
    for (int i = 0; i < 100; ++i) {
        size_t va = a.victim(0, ways, keys);
        size_t vb = b.victim(0, ways, keys);
        EXPECT_EQ(va, vb);
        EXPECT_LT(va, 4u);
    }
}

TEST(OracleFeed, NextUseTracksCursor)
{
    // Sequence: A B A C B
    OracleFeed feed({10, 20, 10, 30, 20});
    feed.advance(); // position 1, current access = index 0 (A)
    EXPECT_EQ(feed.nextUse(10), 2u);
    EXPECT_EQ(feed.nextUse(20), 1u);
    EXPECT_EQ(feed.nextUse(30), 3u);
    feed.advance(); // index 1 (B)
    feed.advance(); // index 2 (A)
    EXPECT_EQ(feed.nextUse(10), UINT64_MAX); // A never used again
    EXPECT_EQ(feed.nextUse(20), 4u);
    EXPECT_EQ(feed.nextUse(99), UINT64_MAX); // unknown key
}

TEST(OracleFeed, RewindRestartsCursor)
{
    OracleFeed feed({1, 2, 1});
    feed.advance();
    feed.advance();
    feed.advance();
    EXPECT_EQ(feed.nextUse(1), UINT64_MAX);
    feed.rewind();
    feed.advance();
    EXPECT_EQ(feed.nextUse(1), 2u);
}

TEST(OraclePolicy, EvictsFurthestFutureUse)
{
    OracleFeed feed({10, 20, 30, 10, 20}); // 30 used furthest... never
    feed.advance();                        // at index 0
    OraclePolicy oracle(feed);
    std::vector<size_t> ways{0, 1, 2};
    uint64_t keys[3] = {10, 20, 30};
    // nextUse at index 0: 10 → 3, 20 → 1, 30 → 2; the furthest
    // future use (key 10, way 0) is the victim.
    EXPECT_EQ(oracle.victim(0, ways, keys), 0u);
    feed.advance(); // index 1
    feed.advance(); // index 2
    feed.advance(); // index 3: keys 10 and 30 are both dead (never
                    // used again); key 20 (way 1) has a future use
                    // and must never be the victim.
    EXPECT_NE(oracle.victim(0, ways, keys), 1u);
}

TEST(OraclePolicy, BeladyBeatsLruOnAdversarialPattern)
{
    // Cyclic pattern over N+1 distinct keys with an N-entry fully
    // associative cache: LRU misses every access; Belady does not.
    const size_t entries = 4;
    std::vector<uint64_t> seq;
    for (int round = 0; round < 50; ++round)
        for (uint64_t k = 0; k < entries + 1; ++k)
            seq.push_back(k);

    auto run = [&](bool use_oracle) {
        OracleFeed feed(seq);
        CacheConfig config{entries, entries, 1,
                           use_oracle ? ReplPolicyKind::Oracle
                                      : ReplPolicyKind::LRU,
                           1};
        auto cache =
            use_oracle
                ? SetAssocCache<int>(
                      config, std::make_unique<OraclePolicy>(feed))
                : SetAssocCache<int>(config);
        for (uint64_t key : seq) {
            feed.advance();
            if (!cache.lookup(key, 0))
                cache.insert(key, 0, 1);
        }
        return cache.stats().hits;
    };

    const uint64_t lru_hits = run(false);
    const uint64_t oracle_hits = run(true);
    EXPECT_EQ(lru_hits, 0u); // classic LRU worst case
    EXPECT_GT(oracle_hits, seq.size() / 2);
}

TEST(LfuPolicy, ConfigurableCounterWidth)
{
    // A 2-bit counter saturates at 3, halving much sooner.
    LfuPolicy lfu(2);
    lfu.init(1, 2);
    lfu.insert(0, 0, 1);
    lfu.insert(0, 1, 2);
    lfu.touch(0, 0, 1);
    lfu.touch(0, 0, 1); // reaches 3 (max)
    EXPECT_EQ(lfu.counter(0, 0), 3u);
    lfu.touch(0, 0, 1); // saturates: halve row then bump
    EXPECT_EQ(lfu.counter(0, 0), 2u);
    EXPECT_EQ(lfu.counter(0, 1), 0u);
}

TEST(MakePolicy, CreatesRequestedKinds)
{
    EXPECT_NE(makePolicy(ReplPolicyKind::LRU), nullptr);
    EXPECT_NE(makePolicy(ReplPolicyKind::LFU), nullptr);
    EXPECT_NE(makePolicy(ReplPolicyKind::FIFO), nullptr);
    EXPECT_NE(makePolicy(ReplPolicyKind::Random, 3), nullptr);
}

} // namespace
} // namespace hypersio::cache
