/** Unit tests for the device model: the serialized translation chain
 *  of a packet, DevTLB fills, prefetch triggering, and invalidation. */

#include <gtest/gtest.h>

#include "core/device.hh"

namespace hypersio::core
{
namespace
{

struct Fixture
{
    sim::EventQueue queue;
    stats::StatGroup stats{"test"};

    struct Request
    {
        mem::DomainId did;
        mem::Iova iova;
        mem::PageSize size;
        DevicePorts::ResponseFn done;
    };
    std::vector<Request> requests;
    std::vector<mem::DomainId> prefetches;

    DevicePorts
    ports(Tick latency = 0)
    {
        DevicePorts p;
        p.translate = [this, latency](mem::DomainId did,
                                      mem::Iova iova,
                                      mem::PageSize size, bool,
                                      DevicePorts::ResponseFn done) {
            if (latency == 0) {
                requests.push_back(
                    {did, iova, size, std::move(done)});
            } else {
                queue.scheduleAfter(
                    latency, [this, did, iova, size,
                              done = std::move(done)]() mutable {
                        iommu::IommuResponse resp;
                        resp.valid = true;
                        resp.hostAddr = 0xABC000 + iova;
                        done(resp);
                    });
            }
        };
        p.prefetch = [this](mem::DomainId did) {
            prefetches.push_back(did);
        };
        return p;
    }

    void
    respondAll()
    {
        // Responses may issue follow-up requests synchronously, so
        // drain a snapshot and keep the new arrivals.
        std::vector<Request> batch;
        batch.swap(requests);
        for (auto &req : batch) {
            iommu::IommuResponse resp;
            resp.valid = true;
            resp.hostAddr = 0xABC000;
            req.done(resp);
        }
    }
};

trace::PacketRecord
packet(trace::SourceId sid, mem::Iova data = 0xbbe00000)
{
    trace::PacketRecord pkt;
    pkt.sid = sid;
    pkt.ringIova = 0x34800000;
    pkt.dataIova = data;
    pkt.notifyIova = 0x34800f00;
    pkt.dataHuge = true;
    return pkt;
}

DeviceConfig
deviceConfig(bool prefetch = false)
{
    DeviceConfig config;
    config.ptbEntries = 4;
    config.devtlb = {64, 8, 1, cache::ReplPolicyKind::LRU, 7};
    config.prefetch.enabled = prefetch;
    config.prefetch.historyLength = 2;
    config.prefetch.bufferEntries = 8;
    return config;
}

TEST(Device, RequestsAreSerializedWithinPacket)
{
    Fixture f;
    Device device(deviceConfig(), f.queue, f.stats, f.ports());
    bool done = false;
    device.accept(packet(0), [&] { done = true; });
    f.queue.run();

    // Only the first (ring) request is outstanding: the data-buffer
    // address depends on the ring descriptor read.
    ASSERT_EQ(f.requests.size(), 1u);
    EXPECT_EQ(f.requests[0].iova, 0x34800000u);
    f.respondAll();
    f.queue.run();
    ASSERT_EQ(f.requests.size(), 1u); // now the data request
    EXPECT_EQ(f.requests[0].iova, 0xbbe00000u);
    EXPECT_EQ(f.requests[0].size, mem::PageSize::Size2M);
    f.respondAll();
    f.queue.run();
    ASSERT_EQ(f.requests.size(), 0u); // notify hits the fresh fill
    EXPECT_TRUE(done);
}

TEST(Device, DevtlbFillServesLaterPackets)
{
    Fixture f;
    Device device(deviceConfig(), f.queue, f.stats,
                  f.ports(100 * TicksPerNs));
    int completed = 0;
    device.accept(packet(0), [&] { ++completed; });
    f.queue.run();
    EXPECT_EQ(completed, 1);
    const Tick after_first = f.queue.now();

    // Same pages again: everything hits the DevTLB (2 ns per step).
    device.accept(packet(0), [&] { ++completed; });
    f.queue.run();
    EXPECT_EQ(completed, 2);
    EXPECT_EQ(f.queue.now() - after_first, 3 * 2 * TicksPerNs);
}

TEST(Device, PtbFullReportsBeforeAccept)
{
    Fixture f;
    DeviceConfig config = deviceConfig();
    config.ptbEntries = 1;
    Device device(config, f.queue, f.stats, f.ports());
    EXPECT_FALSE(device.ptbFull());
    device.accept(packet(0), [] {});
    f.queue.run();
    EXPECT_TRUE(device.ptbFull()); // ring request outstanding
    f.respondAll();
    f.queue.run();
    f.respondAll(); // data request
    f.queue.run();
    EXPECT_FALSE(device.ptbFull());
}

TEST(Device, InvalidTranslationDoesNotFillDevtlb)
{
    Fixture f;
    Device device(deviceConfig(), f.queue, f.stats, f.ports());
    device.accept(packet(0), [] {});
    f.queue.run();
    ASSERT_EQ(f.requests.size(), 1u);
    iommu::IommuResponse fault;
    fault.valid = false;
    f.requests[0].done(fault);
    f.requests.clear();
    f.queue.run();
    // The packet continues (data request), but the ring page is not
    // cached: a new packet misses on it again.
    EXPECT_EQ(device.devtlbStats().hits, 0u);
}

TEST(Device, PrefetchTriggersOncePerPacket)
{
    Fixture f;
    Device device(deviceConfig(true), f.queue, f.stats, f.ports());
    // Train the predictor: tenants 0,1,0,1 with history 2 → the
    // table fills after 3 packets.
    for (trace::SourceId s : {0u, 1u, 0u}) {
        device.accept(packet(s), [] {});
        f.queue.run();
        f.respondAll();
        f.queue.run();
        f.respondAll();
        f.queue.run();
    }
    f.prefetches.clear();
    // A fresh data buffer forces DevTLB misses on this packet.
    device.accept(packet(1, 0xcbe00000), [] {});
    f.queue.run();
    f.respondAll();
    f.queue.run();
    f.respondAll();
    f.queue.run();
    // Despite misses in the packet, only one prefetch went out.
    ASSERT_EQ(f.prefetches.size(), 1u);
    // Predicted SID (2 packets ahead) arrives as its domain id.
    EXPECT_EQ(f.prefetches[0],
              iommu::ContextCache::resolve(1).domain);
}

/** Dispatch + fill, as the System delivers prefetched pages. */
void
pbFill(Device &device, mem::DomainId did, mem::Iova iova,
       mem::PageSize size, mem::Addr host_addr)
{
    device.prefetchFillDispatched(did, iova, size);
    device.prefetchFill(did, iova, size, host_addr);
}

TEST(Device, PrefetchFillServesFromPb)
{
    Fixture f;
    Device device(deviceConfig(true), f.queue, f.stats, f.ports());
    pbFill(device, 0, 0x34800000, mem::PageSize::Size4K, 0xAA000);
    pbFill(device, 0, 0xbbe00000, mem::PageSize::Size2M, 0xBB0000);
    bool done = false;
    device.accept(packet(0), [&] { done = true; });
    f.queue.run();
    // Ring and data hit the PB; only the notify request goes out
    // (its ring-page PB entry was consumed by the ring request).
    ASSERT_EQ(f.requests.size(), 1u);
    EXPECT_EQ(f.requests[0].iova, 0x34800f00u);
    EXPECT_EQ(device.pbHits(), 2u);
    f.respondAll();
    f.queue.run();
    EXPECT_TRUE(done);
}

TEST(Device, InvalidatePageDropsDevtlbAndPb)
{
    Fixture f;
    Device device(deviceConfig(true), f.queue, f.stats,
                  f.ports(10));
    int completed = 0;
    device.accept(packet(0), [&] { ++completed; });
    f.queue.run();
    EXPECT_EQ(completed, 1);
    pbFill(device, 0, 0xbbe00000, mem::PageSize::Size2M, 0xBB);

    device.invalidatePage(0, 0xbbe00000, mem::PageSize::Size2M);
    const auto before = device.devtlbStats().hits;
    device.accept(packet(0), [&] { ++completed; });
    f.queue.run();
    EXPECT_EQ(completed, 2);
    // Ring and notify still hit; the data page had to re-translate.
    EXPECT_EQ(device.devtlbStats().hits, before + 2);
    EXPECT_EQ(device.pbHits(), 0u);
}

TEST(Device, InvalidateSquashesInFlightDemandFill)
{
    Fixture f;
    Device device(deviceConfig(), f.queue, f.stats, f.ports());
    device.accept(packet(0), [] {});
    f.queue.run();
    ASSERT_EQ(f.requests.size(), 1u); // ring request on the wire

    // The driver unmaps the ring page while the translation is in
    // flight: the response races the invalidation and must not
    // install the pre-unmap translation into the DevTLB.
    device.invalidatePage(0, 0x34800000, mem::PageSize::Size4K);
    f.respondAll();
    f.queue.run();
    EXPECT_EQ(device.demandFillsSquashed(), 1u);

    f.respondAll(); // data response
    f.queue.run();
    // The notify request shares the ring page; with the stale ring
    // fill squashed it must miss and go out to the chipset (with
    // the bug it hit the stale entry and no request appeared).
    ASSERT_EQ(f.requests.size(), 1u);
    EXPECT_EQ(f.requests[0].iova, 0x34800f00u);
    EXPECT_EQ(device.devtlbStats().hits, 0u);
}

TEST(Device, InvalidateSquashesInFlightPrefetchFill)
{
    Fixture f;
    Device device(deviceConfig(true), f.queue, f.stats, f.ports());
    // Fill dispatched by the chipset, then the page is unmapped
    // while the fill crosses PCIe: the arrival must be dropped.
    device.prefetchFillDispatched(0, 0xbbe00000,
                                  mem::PageSize::Size2M);
    device.invalidatePage(0, 0xbbe00000, mem::PageSize::Size2M);
    device.prefetchFill(0, 0xbbe00000, mem::PageSize::Size2M,
                        0xBB0000);
    EXPECT_EQ(device.prefetchFillsSquashed(), 1u);
    EXPECT_EQ(device.prefetchBufferOccupancy(), 0u);

    // A fresh dispatch with no intervening invalidate installs.
    pbFill(device, 0, 0xbbe00000, mem::PageSize::Size2M, 0xCC0000);
    EXPECT_EQ(device.prefetchFillsSquashed(), 1u);
    EXPECT_EQ(device.prefetchBufferOccupancy(), 1u);
}

TEST(Device, InvalidateDropsBothSizeFlavors)
{
    // A size-flip remap re-keys the translation; the device-side
    // invalidate must drop the old flavor's entry whatever size the
    // unmap op declared.
    Fixture f;
    Device device(deviceConfig(true), f.queue, f.stats, f.ports());
    pbFill(device, 0, 0xbbe00000, mem::PageSize::Size2M, 0xBB0000);
    device.invalidatePage(0, 0xbbe00000, mem::PageSize::Size4K);
    EXPECT_EQ(device.prefetchBufferOccupancy(), 0u);

    pbFill(device, 0, 0xbbe00000, mem::PageSize::Size4K, 0xCC000);
    device.invalidatePage(0, 0xbbe00000, mem::PageSize::Size2M);
    EXPECT_EQ(device.prefetchBufferOccupancy(), 0u);
}

TEST(Device, ContextCacheWarmsOnFirstUse)
{
    Fixture f;
    Device device(deviceConfig(), f.queue, f.stats, f.ports(10));
    device.accept(packet(5), [] {});
    f.queue.run();
    EXPECT_EQ(device.contextStats().hits, 2u); // req 2 and 3
    EXPECT_EQ(device.contextStats().misses(), 1u);
}

TEST(Device, TranslationCounterCountsAllRequests)
{
    Fixture f;
    Device device(deviceConfig(), f.queue, f.stats, f.ports(10));
    for (int i = 0; i < 5; ++i) {
        device.accept(packet(0), [] {});
        f.queue.run(); // complete before the next accept
    }
    EXPECT_EQ(device.translationsIssued(), 15u);
}

/** Records completed packets; the allocation-free accept() form. */
struct RecordingSink : Device::CompletionSink
{
    std::vector<trace::PacketRecord> completed;
    Device *device = nullptr; ///< when set, asserts entry released

    void
    packetDone(const trace::PacketRecord &pkt) override
    {
        if (device) {
            // The PTB entry must be released before the sink runs,
            // so a completion can immediately admit a new packet
            // even on a single-entry PTB.
            EXPECT_FALSE(device->ptbFull());
        }
        completed.push_back(pkt);
    }
};

TEST(Device, CompletionSinkReceivesTheCompletedPacket)
{
    Fixture f;
    Device device(deviceConfig(), f.queue, f.stats, f.ports(10));
    RecordingSink sink;
    trace::PacketRecord pkt = packet(3);
    pkt.wireBytes = 777;
    device.accept(pkt, sink);
    f.queue.run();
    ASSERT_EQ(sink.completed.size(), 1u);
    EXPECT_EQ(sink.completed[0].sid, 3u);
    EXPECT_EQ(sink.completed[0].wireBytes, 777u);
    EXPECT_EQ(device.ptbInUse(), 0u);
}

TEST(Device, CompletionSinkRunsAfterEntryRelease)
{
    Fixture f;
    DeviceConfig config = deviceConfig();
    config.ptbEntries = 1;
    Device device(config, f.queue, f.stats, f.ports(10));
    RecordingSink sink;
    sink.device = &device;
    device.accept(packet(0), sink);
    f.queue.run();
    EXPECT_EQ(sink.completed.size(), 1u);
}

TEST(Device, SinkAndCallbackCompletionsCoexist)
{
    Fixture f;
    Device device(deviceConfig(), f.queue, f.stats, f.ports(10));
    RecordingSink sink;
    int callback_done = 0;
    device.accept(packet(0), sink);
    device.accept(packet(1), [&] { ++callback_done; });
    f.queue.run();
    EXPECT_EQ(sink.completed.size(), 1u);
    EXPECT_EQ(sink.completed[0].sid, 0u);
    EXPECT_EQ(callback_done, 1);
    EXPECT_EQ(device.ptbInUse(), 0u);
}

} // namespace
} // namespace hypersio::core
