/**
 * Soak-harness tests.
 *
 * Three contracts, in order of how badly a violation would corrupt a
 * long-haul run:
 *
 *  - Snapshotter delta math: first-interval semantics, counter
 *    reset/wrap, falling scalars, empty-histogram percentiles, and a
 *    JSON round-trip through util/json.
 *  - Non-perturbation: capturing snapshots mid-run must not change a
 *    single bit of the simulated results — RunResults and the full
 *    stats tree must match a snapshot-free run exactly.
 *  - Determinism: same-seed soak runs emit byte-identical snapshot
 *    streams (wall block excluded), and a sharded run's deterministic
 *    outputs — including every snapshot line — are independent of the
 *    worker-thread count.
 *
 * Plus the fail-fast story: a planted fault under the checked oracle
 * must abort with the single-line soak repro context attached.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/multi_system.hh"
#include "core/system.hh"
#include "stats/snapshot.hh"
#include "stats/stats.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "workload/soak.hh"

#ifdef HYPERSIO_CHECKED
#include "oracle/fault_injection.hh"
#include "oracle/shadow.hh"
#endif

namespace hypersio
{
namespace
{

// ---------------------------------------------------------------
// Snapshotter delta math
// ---------------------------------------------------------------

const stats::SnapshotEntry *
findEntry(const stats::Snapshot &snap, const std::string &path)
{
    for (const stats::SnapshotEntry &e : snap.entries) {
        if (e.path == path)
            return &e;
    }
    return nullptr;
}

TEST(Snapshotter, FirstCaptureDiffsAgainstZeroState)
{
    stats::StatGroup root("root");
    stats::Counter &packets = root.makeCounter("packets", "");
    stats::Scalar &occupancy = root.makeScalar("occupancy", "");
    packets += 5;
    occupancy = 2.5;

    stats::Snapshotter snapper(root);
    EXPECT_EQ(snapper.captures(), 0u);
    const stats::Snapshot snap = snapper.capture(100);

    EXPECT_EQ(snap.interval, 0u);
    EXPECT_EQ(snap.simTicks, 100u);
    EXPECT_EQ(snap.deltaSimTicks, 100u);
    EXPECT_EQ(snapper.captures(), 1u);

    const stats::SnapshotEntry *p = findEntry(snap, "root.packets");
    ASSERT_NE(p, nullptr);
    EXPECT_STREQ(p->kind, "counter");
    EXPECT_DOUBLE_EQ(p->value, 5.0);
    EXPECT_DOUBLE_EQ(p->delta, 5.0);

    const stats::SnapshotEntry *o = findEntry(snap, "root.occupancy");
    ASSERT_NE(o, nullptr);
    EXPECT_DOUBLE_EQ(o->value, 2.5);
    EXPECT_DOUBLE_EQ(o->delta, 2.5);
}

TEST(Snapshotter, CrossIntervalDeltasAndFallingScalars)
{
    stats::StatGroup root("root");
    stats::Counter &packets = root.makeCounter("packets", "");
    stats::Scalar &occupancy = root.makeScalar("occupancy", "");
    stats::StatGroup &child = root.child("cache");
    stats::Counter &hits = child.makeCounter("hits", "");

    packets += 5;
    occupancy = 2.5;
    hits += 10;
    stats::Snapshotter snapper(root);
    snapper.capture(100, 1.0);

    packets += 7;
    occupancy = 1.5; // scalars may fall; delta goes negative
    hits += 1;
    const stats::Snapshot snap = snapper.capture(250, 3.5);

    EXPECT_EQ(snap.interval, 1u);
    EXPECT_EQ(snap.deltaSimTicks, 150u);
    EXPECT_DOUBLE_EQ(snap.deltaWallSeconds, 2.5);

    EXPECT_DOUBLE_EQ(findEntry(snap, "root.packets")->delta, 7.0);
    EXPECT_DOUBLE_EQ(findEntry(snap, "root.occupancy")->delta, -1.0);
    // Nested groups flatten to dotted paths.
    const stats::SnapshotEntry *h =
        findEntry(snap, "root.cache.hits");
    ASSERT_NE(h, nullptr);
    EXPECT_DOUBLE_EQ(h->delta, 1.0);
}

TEST(Snapshotter, CounterResetCreditsPostResetAccumulation)
{
    stats::StatGroup root("root");
    stats::Counter &packets = root.makeCounter("packets", "");
    packets += 10;

    stats::Snapshotter snapper(root);
    snapper.capture(100);

    root.resetAll();
    packets += 3;
    const stats::Snapshot snap = snapper.capture(200);

    // Not -7: the delta is the accumulation since the reset.
    const stats::SnapshotEntry *p = findEntry(snap, "root.packets");
    EXPECT_DOUBLE_EQ(p->value, 3.0);
    EXPECT_DOUBLE_EQ(p->delta, 3.0);
}

TEST(Snapshotter, HistogramSamplesDeltaAndEmptyPercentiles)
{
    stats::StatGroup root("root");
    stats::Histogram &lat =
        root.makeHistogram("latency", "", 0.0, 100.0, 10);

    stats::Snapshotter snapper(root);
    const stats::Snapshot empty = snapper.capture(10);
    const stats::SnapshotEntry *e = findEntry(empty, "root.latency");
    ASSERT_NE(e, nullptr);
    EXPECT_TRUE(e->isHistogram);
    EXPECT_EQ(e->samples, 0u);
    EXPECT_EQ(e->deltaSamples, 0u);
    // The documented no-sample contract: percentiles report 0, not
    // NaN or garbage — an empty interval must serialize cleanly.
    EXPECT_DOUBLE_EQ(e->p50, 0.0);
    EXPECT_DOUBLE_EQ(e->p90, 0.0);
    EXPECT_DOUBLE_EQ(e->p99, 0.0);

    lat.sample(10.0);
    lat.sample(20.0);
    lat.sample(30.0);
    const stats::Snapshot filled = snapper.capture(20);
    e = findEntry(filled, "root.latency");
    EXPECT_EQ(e->samples, 3u);
    EXPECT_EQ(e->deltaSamples, 3u);
    EXPECT_GT(e->p50, 0.0);

    // Reset rule on the monotonic sample count.
    lat.reset();
    lat.sample(50.0);
    const stats::Snapshot reset = snapper.capture(30);
    e = findEntry(reset, "root.latency");
    EXPECT_EQ(e->samples, 1u);
    EXPECT_EQ(e->deltaSamples, 1u);
}

TEST(Snapshotter, StatFirstSeenMidRunGetsFirstCaptureSemantics)
{
    stats::StatGroup root("root");
    root.makeCounter("packets", "");

    stats::Snapshotter snapper(root);
    snapper.capture(10);

    // A lazily created child group appears between captures.
    stats::StatGroup &late = root.child("late");
    stats::Counter &events = late.makeCounter("events", "");
    events += 4;
    const stats::Snapshot snap = snapper.capture(20);

    const stats::SnapshotEntry *e =
        findEntry(snap, "root.late.events");
    ASSERT_NE(e, nullptr);
    EXPECT_DOUBLE_EQ(e->delta, 4.0);
}

TEST(Snapshotter, JsonLineRoundTripsThroughParser)
{
    stats::StatGroup root("root");
    stats::Counter &packets = root.makeCounter("packets", "");
    stats::Histogram &lat =
        root.makeHistogram("latency", "", 0.0, 100.0, 10);
    packets += 42;
    lat.sample(25.0);

    stats::Snapshotter snapper(root);
    stats::Snapshot snap = snapper.capture(1000, 0.5);
    const std::string line =
        stats::snapshotToJsonLine(snap, 3, 77);
    EXPECT_EQ(line.find('\n'), std::string::npos);

    const auto doc = json::Value::parse(line);
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->find("schema")->str, "hypersio-soak-1");
    EXPECT_DOUBLE_EQ(doc->find("shard")->number, 3.0);
    EXPECT_DOUBLE_EQ(doc->find("seed")->number, 77.0);
    EXPECT_DOUBLE_EQ(doc->find("interval")->number, 0.0);
    EXPECT_DOUBLE_EQ(doc->find("sim_ticks")->number, 1000.0);

    const json::Value *statsArr = doc->find("stats");
    ASSERT_NE(statsArr, nullptr);
    ASSERT_TRUE(statsArr->isArray());
    ASSERT_EQ(statsArr->array.size(), 2u);
    const json::Value &p = statsArr->array[0];
    EXPECT_EQ(p.find("path")->str, "root.packets");
    EXPECT_EQ(p.find("kind")->str, "counter");
    EXPECT_DOUBLE_EQ(p.find("value")->number, 42.0);
    EXPECT_DOUBLE_EQ(p.find("delta")->number, 42.0);
    const json::Value &h = statsArr->array[1];
    EXPECT_EQ(h.find("kind")->str, "histogram");
    EXPECT_DOUBLE_EQ(h.find("samples")->number, 1.0);
    EXPECT_DOUBLE_EQ(h.find("delta_samples")->number, 1.0);

    // Wall block present by default...
    const json::Value *wall = doc->find("wall");
    ASSERT_NE(wall, nullptr);
    EXPECT_DOUBLE_EQ(wall->find("seconds")->number, 0.5);

    // ...and the byte-identity form omits it entirely.
    const std::string bare =
        stats::snapshotToJsonLine(snap, 3, 77,
                                  /*include_wall=*/false);
    const auto bare_doc = json::Value::parse(bare);
    ASSERT_TRUE(bare_doc.has_value());
    EXPECT_EQ(bare_doc->find("wall"), nullptr);

    // RSS fields appear only when sampled.
    stats::Snapshotter::sampleProcessRss(snap);
    if (snap.rssKnown) {
        const auto rich = json::Value::parse(
            stats::snapshotToJsonLine(snap, 3, 77));
        ASSERT_TRUE(rich.has_value());
        const json::Value *w = rich->find("wall");
        ASSERT_NE(w, nullptr);
        ASSERT_NE(w->find("vm_rss_kib"), nullptr);
        EXPECT_GT(w->find("vm_rss_kib")->number, 0.0);
        ASSERT_NE(w->find("vm_hwm_kib"), nullptr);
        EXPECT_GE(w->find("vm_hwm_kib")->number,
                  w->find("vm_rss_kib")->number);
    }
}

// ---------------------------------------------------------------
// SoakStream: churn + adversarial episodes on one System
// ---------------------------------------------------------------

workload::SoakConfig
smallSoak()
{
    workload::SoakConfig cfg;
    cfg.churn.population = 60;
    cfg.churn.slots = 6;
    cfg.churn.seed = 7;
    cfg.churn.minBudget = 24;
    cfg.churn.maxBudget = 64;
    cfg.churn.tailMin = 200;
    cfg.churn.tailMax = 300;
    cfg.stormPeriod = 300;
    cfg.stormPackets = 50;
    cfg.stormTenants = 3;
    return cfg;
}

TEST(SoakStream, RetiresChurnPopulationAndEveryEpisodeTenant)
{
    const workload::SoakConfig cfg = smallSoak();
    core::System system(core::SystemConfig::hypertrio());
    workload::SoakStream soak(cfg);
    const core::RunResults results = system.runStream(soak);

    EXPECT_GT(results.packetsProcessed, 0u);
    // The config is sized so storms actually fire; a soak test that
    // never leaves the churn regime tests nothing.
    EXPECT_GE(soak.episodes(), 2u);
    const uint64_t expected =
        cfg.churn.population + soak.episodes() * cfg.stormTenants;
    EXPECT_EQ(soak.attaches(), expected);
    EXPECT_EQ(system.streamRetirements().size(), expected);
    EXPECT_EQ(system.tables().size(), 0u);
    ASSERT_NE(system.historyReader(), nullptr);
    EXPECT_EQ(system.historyReader()->historySize(), 0u);
}

TEST(SoakStream, StormPeriodZeroDegeneratesToPlainChurn)
{
    workload::SoakConfig cfg = smallSoak();
    cfg.stormPeriod = 0;

    core::System system(core::SystemConfig::hypertrio());
    workload::SoakStream soak(cfg);
    system.runStream(soak);

    EXPECT_EQ(soak.episodes(), 0u);
    EXPECT_EQ(soak.attaches(), cfg.churn.population);
    EXPECT_EQ(system.streamRetirements().size(),
              cfg.churn.population);
    EXPECT_EQ(system.tables().size(), 0u);
}

// ---------------------------------------------------------------
// Non-perturbation and determinism of snapshot capture
// ---------------------------------------------------------------

/** Runs smallSoak() on one System, optionally snapshotting. */
core::RunResults
runSoak(core::System &system, std::vector<std::string> *lines,
        uint64_t every = 500)
{
    workload::SoakStream soak(smallSoak());
    core::StreamRunOptions opts;
    if (lines) {
        auto snapper = std::make_shared<stats::Snapshotter>(
            system.statsRoot());
        opts.snapshotEveryPackets = every;
        opts.onSnapshot = [snapper, lines](
                              const core::System &sys, uint64_t) {
            const stats::Snapshot snap = snapper->capture(
                sys.eventQueue().now());
            lines->push_back(stats::snapshotToJsonLine(
                snap, 0, 7, /*include_wall=*/false));
        };
    }
    return system.runStream(soak, opts);
}

TEST(SoakSnapshots, CaptureDoesNotPerturbSimulatedResults)
{
    core::System with(core::SystemConfig::hypertrio());
    std::vector<std::string> lines;
    const core::RunResults snapshotted = runSoak(with, &lines);

    core::System without(core::SystemConfig::hypertrio());
    const core::RunResults plain = runSoak(without, nullptr);

    ASSERT_GE(lines.size(), 3u);
    // Bit-identical RunResults and an identical stats tree: the
    // observation layer is pure.
    EXPECT_TRUE(snapshotted == plain);
    EXPECT_EQ(stats::toJsonString(with.statsRoot()),
              stats::toJsonString(without.statsRoot()));
}

TEST(SoakSnapshots, SameSeedRunsEmitByteIdenticalStreams)
{
    core::System a(core::SystemConfig::hypertrio());
    std::vector<std::string> lines_a;
    runSoak(a, &lines_a);

    core::System b(core::SystemConfig::hypertrio());
    std::vector<std::string> lines_b;
    runSoak(b, &lines_b);

    ASSERT_GE(lines_a.size(), 3u);
    EXPECT_EQ(lines_a, lines_b);
}

/** Sharded soak with per-shard snapshot capture via OptionsFactory. */
core::ShardedRunResults
runShardedSoak(unsigned shards, unsigned jobs,
               std::vector<std::vector<std::string>> &lines)
{
    lines.assign(shards, {});
    core::ShardedMultiSystem sharded(
        core::SystemConfig::hypertrio(), shards, jobs);
    auto make_stream = [](unsigned shard) {
        workload::SoakConfig cfg = smallSoak();
        cfg.churn.seed = hashCombine(21, shard);
        return std::make_unique<workload::SoakStream>(cfg);
    };
    auto make_options = [&lines](unsigned shard) {
        core::StreamRunOptions opts;
        opts.snapshotEveryPackets = 500;
        auto snapper = std::make_shared<
            std::unique_ptr<stats::Snapshotter>>();
        opts.onSnapshot = [&lines, shard, snapper](
                              const core::System &sys, uint64_t) {
            if (!*snapper) {
                *snapper = std::make_unique<stats::Snapshotter>(
                    sys.statsRoot());
            }
            const stats::Snapshot snap = (*snapper)->capture(
                sys.eventQueue().now());
            lines[shard].push_back(stats::snapshotToJsonLine(
                snap, shard, 21, /*include_wall=*/false));
        };
        return opts;
    };
    return sharded.run(make_stream, make_options);
}

TEST(SoakSnapshots, ShardedRunIsJobsCountInvariant)
{
    std::vector<std::vector<std::string>> serial_lines;
    const core::ShardedRunResults serial =
        runShardedSoak(3, 1, serial_lines);

    std::vector<std::vector<std::string>> pooled_lines;
    const core::ShardedRunResults pooled =
        runShardedSoak(3, 3, pooled_lines);

    // Every deterministic scalar — counts, the merged retirement
    // timeline, its checksum, per-shard RunResults — and every
    // per-shard snapshot line agree for any worker count.
    EXPECT_TRUE(serial == pooled);
    ASSERT_EQ(serial_lines.size(), pooled_lines.size());
    for (size_t s = 0; s < serial_lines.size(); ++s) {
        EXPECT_GE(serial_lines[s].size(), 1u) << "shard " << s;
        EXPECT_EQ(serial_lines[s], pooled_lines[s])
            << "shard " << s;
    }
}

// ---------------------------------------------------------------
// Fail-fast repro context
// ---------------------------------------------------------------

#ifdef HYPERSIO_CHECKED
TEST(SoakFaultInjection, PlantedFaultAbortsWithReproLine)
{
    // The soak fail-fast contract end to end: a planted DevTLB PTag
    // corruption must be caught by the auto-installed fail-fast
    // oracle, and the abort must carry the single-line repro context
    // the harness installs (seed + shard + interval) so a long-haul
    // failure is immediately re-runnable.
    EXPECT_DEATH(
        {
            oracle::FaultInjectionScope scope;
            oracle::faultInjection().devtlbPtagOffByOne = true;
            core::System system(core::SystemConfig::hypertrio());
            workload::SoakStream soak(smallSoak());
            core::StreamRunOptions opts;
            opts.onRunStart = [](const core::System &) {
                PanicContext::set(
                    "HYPERSIO_SOAK_REPRO: seed=7 shard=0 "
                    "interval=0");
            };
            system.runStream(soak, opts);
        },
        "HYPERSIO_SOAK_REPRO: seed=7 shard=0 interval=0");
}
#endif

} // namespace
} // namespace hypersio
