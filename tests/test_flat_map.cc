/**
 * Unit tests for util::FlatMap, the open-addressing map backing the
 * translation hot path (page tables, page-table directory, MSHR,
 * chipset history, SID predictor).
 *
 * The tricky behaviors are all around deletion: FlatMap erases by
 * backward-shifting the tail of the probe chain instead of leaving a
 * tombstone, and that shift must handle chains that wrap around the
 * end of the power-of-two table. The tests below construct such
 * chains deliberately (by replicating the bucket function and
 * searching for keys that land in the last slots), then hammer the
 * map with a randomized differential test against
 * std::unordered_map.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "util/flat_map.hh"
#include "util/rng.hh"

namespace hypersio
{
namespace
{

using util::FlatMap;

TEST(FlatMap, EmptyMapBehaves)
{
    FlatMap<uint64_t, int> map;
    EXPECT_EQ(map.size(), 0u);
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.find(0), nullptr);
    EXPECT_EQ(map.find(42), nullptr);
    EXPECT_FALSE(map.contains(42));
    EXPECT_FALSE(map.erase(42));
    map.clear(); // no-op, must not crash
    EXPECT_EQ(map.size(), 0u);
}

TEST(FlatMap, InsertFindOverwrite)
{
    FlatMap<uint64_t, uint64_t> map;
    EXPECT_TRUE(map.insert(7, 70));
    EXPECT_TRUE(map.insert(8, 80));
    EXPECT_FALSE(map.insert(7, 700)); // overwrite, not a new entry
    EXPECT_EQ(map.size(), 2u);
    ASSERT_NE(map.find(7), nullptr);
    EXPECT_EQ(*map.find(7), 700u);
    ASSERT_NE(map.find(8), nullptr);
    EXPECT_EQ(*map.find(8), 80u);
    EXPECT_EQ(map.find(9), nullptr);

    map[9] = 90; // operator[] default-constructs then assigns
    EXPECT_EQ(map.size(), 3u);
    EXPECT_EQ(map[9], 90u);

    auto [value, inserted] = map.tryEmplace(9);
    EXPECT_FALSE(inserted);
    EXPECT_EQ(*value, 90u);
}

TEST(FlatMap, EnumKeys)
{
    enum class Id : uint32_t { A = 1, B = 2, C = 0xffffffff };
    FlatMap<Id, int> map;
    map[Id::A] = 1;
    map[Id::C] = 3;
    EXPECT_TRUE(map.contains(Id::A));
    EXPECT_FALSE(map.contains(Id::B));
    EXPECT_EQ(map[Id::C], 3);
}

#ifndef HYPERSIO_LEGACY_STRUCTURES

/**
 * Replicates the flat implementation's bucket function so tests can
 * pick keys by home slot. Kept in sync with FlatMap::mix/the bucket
 * shift by the WrapAround tests themselves: they assert the chosen
 * keys actually collide by observing probe behavior.
 */
size_t
homeSlot(uint64_t key, size_t capacity)
{
    const uint64_t h = key * 0x9E3779B97F4A7C15ull;
    return h >> (std::countl_zero(capacity) + 1);
}

/** Finds `n` distinct keys whose home slot is >= `min_slot` in a
 *  `capacity`-slot table, so their probe chain wraps past slot 0. */
std::vector<uint64_t>
keysNearTableEnd(size_t n, size_t capacity, size_t min_slot)
{
    std::vector<uint64_t> keys;
    for (uint64_t key = 1; keys.size() < n; ++key) {
        if (homeSlot(key, capacity) >= min_slot)
            keys.push_back(key);
    }
    return keys;
}

TEST(FlatMap, CollisionChainWrapsAroundTable)
{
    // A fresh map allocates 64 slots and grows at 16 entries, so 12
    // keys homed in the last three slots force a probe chain that
    // wraps through slot 0 without triggering a rehash.
    FlatMap<uint64_t, uint64_t> map;
    map.reserve(1);
    ASSERT_EQ(map.capacity(), 64u);
    const auto keys = keysNearTableEnd(12, 64, 61);
    for (const uint64_t key : keys)
        map[key] = key * 3;
    ASSERT_EQ(map.capacity(), 64u) << "test assumes no rehash";
    for (const uint64_t key : keys) {
        ASSERT_NE(map.find(key), nullptr) << "key " << key;
        EXPECT_EQ(*map.find(key), key * 3);
    }
}

TEST(FlatMap, BackwardShiftEraseAcrossWrapAround)
{
    // Erase from the middle of a wrapped chain, in several orders;
    // every survivor must stay findable after every single erase.
    for (size_t victim = 0; victim < 12; ++victim) {
        FlatMap<uint64_t, uint64_t> map;
        const auto keys = keysNearTableEnd(12, 64, 61);
        for (const uint64_t key : keys)
            map[key] = key + 1;
        ASSERT_TRUE(map.erase(keys[victim]));
        EXPECT_FALSE(map.contains(keys[victim]));
        EXPECT_FALSE(map.erase(keys[victim])) << "double erase";
        for (size_t i = 0; i < keys.size(); ++i) {
            if (i == victim)
                continue;
            ASSERT_NE(map.find(keys[i]), nullptr)
                << "lost key " << keys[i] << " after erasing "
                << keys[victim];
            EXPECT_EQ(*map.find(keys[i]), keys[i] + 1);
        }
        EXPECT_EQ(map.size(), keys.size() - 1);
    }
}

TEST(FlatMap, ReserveDoesNotInvalidatePointers)
{
    FlatMap<uint64_t, uint64_t> map;
    map.reserve(1000);
    const size_t capacity = map.capacity();
    std::vector<uint64_t *> pointers;
    for (uint64_t key = 0; key < 1000; ++key) {
        auto [value, inserted] = map.tryEmplace(key);
        ASSERT_TRUE(inserted);
        *value = key ^ 0x5aa5;
        pointers.push_back(value);
    }
    // No rehash happened, so every pointer handed out is still the
    // live slot for its key.
    EXPECT_EQ(map.capacity(), capacity);
    for (uint64_t key = 0; key < 1000; ++key) {
        EXPECT_EQ(pointers[key], map.find(key));
        EXPECT_EQ(*pointers[key], key ^ 0x5aa5);
    }
}

#endif // !HYPERSIO_LEGACY_STRUCTURES

TEST(FlatMap, RehashPreservesAllEntries)
{
    // Grow through many rehashes; every key must survive with its
    // value intact and size must track exactly.
    FlatMap<uint64_t, uint64_t> map;
    constexpr uint64_t N = 20000;
    for (uint64_t key = 0; key < N; ++key) {
        map[key * 0x10001] = key; // spread keys, not dense
        ASSERT_EQ(map.size(), key + 1);
    }
    for (uint64_t key = 0; key < N; ++key) {
        const uint64_t *value = map.find(key * 0x10001);
        ASSERT_NE(value, nullptr) << "key index " << key;
        EXPECT_EQ(*value, key);
    }
    uint64_t visited = 0, sum = 0;
    map.forEach([&](uint64_t, uint64_t &value) {
        ++visited;
        sum += value;
    });
    EXPECT_EQ(visited, N);
    EXPECT_EQ(sum, N * (N - 1) / 2);
}

TEST(FlatMap, EraseThenReinsert)
{
    FlatMap<uint32_t, int> map;
    for (uint32_t key = 0; key < 500; ++key)
        map[key] = int(key);
    for (uint32_t key = 0; key < 500; key += 2)
        ASSERT_TRUE(map.erase(key));
    EXPECT_EQ(map.size(), 250u);
    for (uint32_t key = 0; key < 500; key += 2) {
        EXPECT_FALSE(map.contains(key));
        map[key] = int(key) + 1000; // reinsert with a new value
    }
    EXPECT_EQ(map.size(), 500u);
    for (uint32_t key = 0; key < 500; ++key) {
        ASSERT_TRUE(map.contains(key));
        EXPECT_EQ(map[key],
                  (key % 2 == 0) ? int(key) + 1000 : int(key));
    }
}

TEST(FlatMap, ClearKeepsWorking)
{
    FlatMap<uint64_t, uint64_t> map;
    for (uint64_t key = 0; key < 100; ++key)
        map[key] = key;
    map.clear();
    EXPECT_EQ(map.size(), 0u);
    for (uint64_t key = 0; key < 100; ++key)
        EXPECT_FALSE(map.contains(key));
    map[7] = 70;
    EXPECT_EQ(map.size(), 1u);
    EXPECT_EQ(map[7], 70u);
}

TEST(FlatMap, NonTrivialValuesReleaseOnErase)
{
    // The vacated slot must not keep the old value's resources
    // alive: erase assigns V() into it eagerly.
    FlatMap<uint32_t, std::shared_ptr<int>> map;
    std::weak_ptr<int> watch;
    {
        auto owned = std::make_shared<int>(123);
        watch = owned;
        map[5] = std::move(owned);
    }
    EXPECT_FALSE(watch.expired());
    ASSERT_TRUE(map.erase(5));
    EXPECT_TRUE(watch.expired());

    // Same through clear().
    auto owned = std::make_shared<int>(9);
    watch = owned;
    map[6] = std::move(owned);
    map.clear();
    EXPECT_TRUE(watch.expired());
}

TEST(FlatMap, ExtractMovesValueOutAndErases)
{
    FlatMap<uint32_t, std::shared_ptr<int>> map;
    map[5] = std::make_shared<int>(123);
    std::weak_ptr<int> watch = *map.find(5);

    std::shared_ptr<int> out;
    ASSERT_TRUE(map.extract(5, out));
    EXPECT_EQ(map.size(), 0u);
    EXPECT_FALSE(map.contains(5));
    // The value survived the erase — moved, not destroyed.
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(*out, 123);
    EXPECT_FALSE(watch.expired());
    out.reset();
    EXPECT_TRUE(watch.expired());

    // Absent key: reports false and leaves `out` alone.
    std::shared_ptr<int> untouched = std::make_shared<int>(7);
    EXPECT_FALSE(map.extract(5, untouched));
    ASSERT_NE(untouched, nullptr);
    EXPECT_EQ(*untouched, 7);
}

TEST(FlatMap, ExtractPreservesProbeChains)
{
    // Extract must backward-shift exactly like erase: fill a map,
    // extract half, and verify every survivor is still reachable.
    FlatMap<uint64_t, uint64_t> map;
    for (uint64_t key = 1; key <= 300; ++key)
        map[key << 12] = key;
    for (uint64_t key = 1; key <= 300; key += 2) {
        uint64_t out = 0;
        ASSERT_TRUE(map.extract(key << 12, out));
        EXPECT_EQ(out, key);
    }
    EXPECT_EQ(map.size(), 150u);
    for (uint64_t key = 2; key <= 300; key += 2) {
        const uint64_t *value = map.find(key << 12);
        ASSERT_NE(value, nullptr) << "lost key " << (key << 12);
        EXPECT_EQ(*value, key);
    }
}

/**
 * Randomized differential test: a long mixed insert/erase/lookup
 * workload replayed against std::unordered_map. Catches anything the
 * targeted tests above miss (erase interacting with rehash,
 * wrap-around chains at larger capacities, ...). Deterministic seeds
 * so a failure reproduces.
 */
TEST(FlatMap, RandomizedDifferentialVsStdUnorderedMap)
{
    for (const uint64_t seed : {1ull, 2026ull, 0xfeedull}) {
        Rng rng(seed);
        FlatMap<uint64_t, uint64_t> flat;
        std::unordered_map<uint64_t, uint64_t> ref;
        // A small key universe keeps the hit rate high so erases and
        // overwrites actually land on live entries.
        const uint64_t universe = 1 + rng.below(2000);
        for (int step = 0; step < 50000; ++step) {
            const uint64_t key = rng.below(universe);
            switch (rng.below(5)) {
            case 0:
            case 1: { // insert/overwrite
                const uint64_t value = rng.next();
                flat[key] = value;
                ref[key] = value;
                break;
            }
            case 2: // erase
                EXPECT_EQ(flat.erase(key), ref.erase(key) != 0);
                break;
            case 3: { // tryEmplace (insert-if-absent)
                auto [value, inserted] = flat.tryEmplace(key);
                auto [it, ref_inserted] = ref.try_emplace(key, 0);
                ASSERT_EQ(inserted, ref_inserted);
                ASSERT_EQ(*value, it->second);
                break;
            }
            default: { // lookup
                const uint64_t *value = flat.find(key);
                auto it = ref.find(key);
                ASSERT_EQ(value != nullptr, it != ref.end());
                if (value) {
                    ASSERT_EQ(*value, it->second);
                }
                break;
            }
            }
            ASSERT_EQ(flat.size(), ref.size()) << "step " << step;
        }
        // Full sweep both directions.
        size_t visited = 0;
        flat.forEach([&](uint64_t key, uint64_t &value) {
            ++visited;
            auto it = ref.find(key);
            ASSERT_NE(it, ref.end()) << "stray key " << key;
            EXPECT_EQ(value, it->second);
        });
        EXPECT_EQ(visited, ref.size());
        for (const auto &[key, value] : ref) {
            const uint64_t *flat_value = flat.find(key);
            ASSERT_NE(flat_value, nullptr) << "lost key " << key;
            EXPECT_EQ(*flat_value, value);
        }
    }
}

} // namespace
} // namespace hypersio
