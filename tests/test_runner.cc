/** Tests for the experiment runner utilities: bench option parsing
 *  and result-table formatting. */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/runner.hh"

namespace hypersio::core
{
namespace
{

BenchOptions
parseArgs(std::vector<std::string> args)
{
    std::vector<char *> argv;
    static std::string prog = "bench";
    argv.push_back(prog.data());
    for (auto &arg : args)
        argv.push_back(arg.data());
    return BenchOptions::parse(static_cast<int>(argv.size()),
                               argv.data());
}

TEST(BenchOptionsTest, Defaults)
{
    const BenchOptions opts = parseArgs({});
    EXPECT_DOUBLE_EQ(opts.scale, 0.05);
    EXPECT_EQ(opts.maxTenants, 1024u);
    EXPECT_EQ(opts.seed, 42u);
    EXPECT_FALSE(opts.verbose);
}

TEST(BenchOptionsTest, QuickAndFullPresets)
{
    const BenchOptions quick = parseArgs({"--quick"});
    EXPECT_DOUBLE_EQ(quick.scale, 0.05);
    EXPECT_EQ(quick.maxTenants, 256u);

    const BenchOptions full = parseArgs({"--full"});
    EXPECT_DOUBLE_EQ(full.scale, 1.0);
    EXPECT_EQ(full.maxTenants, 1024u);
}

TEST(BenchOptionsTest, ExplicitValues)
{
    const BenchOptions opts = parseArgs(
        {"--scale", "0.2", "--tenants", "128", "--seed", "7",
         "--verbose"});
    EXPECT_DOUBLE_EQ(opts.scale, 0.2);
    EXPECT_EQ(opts.maxTenants, 128u);
    EXPECT_EQ(opts.seed, 7u);
    EXPECT_TRUE(opts.verbose);
}

TEST(BenchOptionsTest, JobsFlag)
{
    // Default: one worker per hardware thread, never zero.
    EXPECT_EQ(parseArgs({}).jobs, ExperimentRunner::defaultJobs());
    EXPECT_GE(parseArgs({}).jobs, 1u);

    EXPECT_EQ(parseArgs({"--jobs", "4"}).jobs, 4u);
    EXPECT_EQ(parseArgs({"-j", "2"}).jobs, 2u);
}

TEST(BenchOptionsDeathTest, JobsRejectsZeroAndGarbage)
{
    EXPECT_EXIT(parseArgs({"--jobs", "0"}),
                ::testing::ExitedWithCode(1), "positive integer");
    EXPECT_EXIT(parseArgs({"-j", "many"}),
                ::testing::ExitedWithCode(1), "positive integer");
}

TEST(BenchOptionsDeathTest, UnknownFlagPrintsUsageToStderr)
{
    // A typo'd flag must exit 1 and put the full usage text on
    // stderr (stdout may be piped into a report).
    EXPECT_EXIT(parseArgs({"--tenant", "8"}),
                ::testing::ExitedWithCode(1),
                "options:(.|\n)*--tenants <n>(.|\n)*"
                "unknown option '--tenant'");
    EXPECT_EXIT(parseArgs({"-x"}), ::testing::ExitedWithCode(1),
                "unknown option '-x' \\(try --help\\)");
}

TEST(BenchOptionsDeathTest, MissingValuesNameTheFlagGiven)
{
    EXPECT_EXIT(parseArgs({"--seed"}),
                ::testing::ExitedWithCode(1),
                "--seed needs a value");
    // The alias reports itself, not its canonical spelling.
    EXPECT_EXIT(parseArgs({"--stats-json"}),
                ::testing::ExitedWithCode(1),
                "--stats-json needs a value");
}

TEST(BenchOptionsTest, StatsJsonAliasSetsJsonPath)
{
    EXPECT_EQ(parseArgs({"--stats-json", "out.json"}).jsonPath,
              "out.json");
    EXPECT_EQ(parseArgs({"--json", "r.json"}).jsonPath, "r.json");
}

TEST(PrintBandwidthTable, FormatsRowsAndColumns)
{
    std::ostringstream os;
    printBandwidthTable(os, "test table", {4, 8},
                        {{"a", {1.5, 2.5}}, {"b", {3.25}}});
    const std::string text = os.str();
    EXPECT_NE(text.find("test table"), std::string::npos);
    EXPECT_NE(text.find("tenants"), std::string::npos);
    EXPECT_NE(text.find("1.5"), std::string::npos);
    EXPECT_NE(text.find("3.2"), std::string::npos);
    // Missing second value of series "b" renders as "-".
    EXPECT_NE(text.find("-"), std::string::npos);
}

TEST(ExperimentRunnerTest, BypassPointRunsNative)
{
    ExperimentRunner runner(0.02, 42);
    ExperimentPoint point;
    point.label = "native";
    point.config = SystemConfig::base();
    point.config.link.gbps = 10.0;
    point.bench = workload::Benchmark::Iperf3;
    point.tenants = 4;
    point.interleave = trace::parseInterleaving("RR1");
    point.bypassTranslation = true;
    const ExperimentRow row = runner.run(point);
    EXPECT_NEAR(row.results.utilization, 1.0, 1e-9);
    EXPECT_EQ(row.results.packetsDropped, 0u);
}

TEST(ExperimentRunnerTest, RunAllPreservesOrderAndProgress)
{
    ExperimentRunner runner(0.02, 42);
    std::vector<ExperimentPoint> points(2);
    points[0].label = "first";
    points[0].config = SystemConfig::base();
    points[0].tenants = 4;
    points[0].interleave = trace::parseInterleaving("RR1");
    points[1].label = "second";
    points[1].config = SystemConfig::hypertrio();
    points[1].tenants = 4;
    points[1].interleave = trace::parseInterleaving("RR1");

    std::ostringstream progress;
    const auto rows = runner.runAll(points, &progress);
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].point.label, "first");
    EXPECT_EQ(rows[1].point.label, "second");
    EXPECT_NE(progress.str().find("first"), std::string::npos);
    EXPECT_NE(progress.str().find("second"), std::string::npos);
    // HyperTRIO beats Base on the same trace.
    EXPECT_GE(rows[1].results.achievedGbps,
              rows[0].results.achievedGbps);
}

TEST(WriteCsv, EmitsHeaderAndRows)
{
    const auto path = std::filesystem::temp_directory_path() /
                      "hypersio_csv_test.csv";
    writeCsv(path.string(), {4, 8},
             {{"base", {1.5, 2.5}}, {"ht", {3.0}}});
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "tenants,base,ht");
    std::getline(in, line);
    EXPECT_EQ(line, "4,1.5,3");
    std::getline(in, line);
    EXPECT_EQ(line, "8,2.5,"); // missing value stays empty
    std::filesystem::remove(path);
}

} // namespace
} // namespace hypersio::core
