/** Unit tests for the system configuration presets and description
 *  output (Table II / Table IV parameters). */

#include <gtest/gtest.h>

#include "core/config.hh"

namespace hypersio::core
{
namespace
{

TEST(Config, TableIILatencies)
{
    const SystemConfig config = SystemConfig::base();
    EXPECT_EQ(config.pcieOneWay, 450 * TicksPerNs);
    EXPECT_EQ(config.memory.accessLatency, 50 * TicksPerNs);
    EXPECT_EQ(config.iommu.iotlbHitLatency, 2 * TicksPerNs);
    EXPECT_EQ(config.link.packetBytes, 1542u);
    EXPECT_DOUBLE_EQ(config.link.gbps, 200.0);
}

TEST(Config, PacketIntervalMatchesPaper)
{
    // 1542 B at 200 Gb/s is ~62 ns per packet (Section III).
    const LinkConfig link;
    EXPECT_EQ(link.packetInterval(), 61680u);
}

TEST(Config, BasePresetMatchesTableIV)
{
    const SystemConfig config = SystemConfig::base();
    EXPECT_EQ(config.device.ptbEntries, 1u);
    EXPECT_EQ(config.device.devtlb.entries, 64u);
    EXPECT_EQ(config.device.devtlb.ways, 8u);
    EXPECT_EQ(config.device.devtlb.partitions, 1u);
    EXPECT_EQ(config.device.devtlb.policy,
              cache::ReplPolicyKind::LFU);
    EXPECT_FALSE(config.device.prefetch.enabled);
    EXPECT_EQ(config.iommu.l2tlb.entries, 512u);
    EXPECT_EQ(config.iommu.l2tlb.ways, 16u);
    EXPECT_EQ(config.iommu.l2tlb.partitions, 1u);
    EXPECT_EQ(config.iommu.l3tlb.entries, 1024u);
    EXPECT_EQ(config.iommu.l3tlb.partitions, 1u);
}

TEST(Config, HyperTrioPresetMatchesTableIV)
{
    const SystemConfig config = SystemConfig::hypertrio();
    EXPECT_EQ(config.device.ptbEntries, 32u);
    EXPECT_EQ(config.device.devtlb.entries, 64u);
    EXPECT_EQ(config.device.devtlb.partitions, 8u);
    EXPECT_EQ(config.iommu.l2tlb.partitions, 32u);
    EXPECT_EQ(config.iommu.l3tlb.partitions, 64u);
    EXPECT_TRUE(config.device.prefetch.enabled);
    EXPECT_EQ(config.device.prefetch.pagesPerPrefetch, 2u);
    // Calibrated for this model's prefetch latency (see DESIGN.md):
    // the paper's 8-entry/48-stride values are sweepable in
    // bench/fig12c_prefetch.
    EXPECT_EQ(config.device.prefetch.bufferEntries, 32u);
    EXPECT_EQ(config.device.prefetch.historyLength, 20u);
}

TEST(Config, DescribeMentionsEveryBlock)
{
    const std::string text = SystemConfig::hypertrio().describe();
    EXPECT_NE(text.find("hypertrio"), std::string::npos);
    EXPECT_NE(text.find("PTB"), std::string::npos);
    EXPECT_NE(text.find("DevTLB"), std::string::npos);
    EXPECT_NE(text.find("L2TLB"), std::string::npos);
    EXPECT_NE(text.find("L3TLB"), std::string::npos);
    EXPECT_NE(text.find("prefetch"), std::string::npos);
    EXPECT_NE(text.find("8 partition"), std::string::npos);
}

TEST(Config, DescribeShowsPrefetchOffForBase)
{
    const std::string text = SystemConfig::base().describe();
    EXPECT_NE(text.find("prefetch          off"), std::string::npos);
}

TEST(Config, DevtlbSeedsDifferFromPagingCacheSeeds)
{
    // Randomized policies must not be correlated across structures.
    const SystemConfig config = SystemConfig::base();
    EXPECT_NE(config.device.devtlb.seed, config.iommu.l2tlb.seed);
    EXPECT_NE(config.iommu.l2tlb.seed, config.iommu.l3tlb.seed);
}

} // namespace
} // namespace hypersio::core
