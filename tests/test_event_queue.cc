/** Unit tests for the discrete-event simulation kernel. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace hypersio::sim
{
namespace
{

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
    EXPECT_EQ(q.executed(), 3u);
}

TEST(EventQueue, SameTickOrderedByPriorityThenInsertion)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(5, [&] { order.push_back(2); }, DefaultPriority);
    q.schedule(5, [&] { order.push_back(3); }, LatePriority);
    q.schedule(5, [&] { order.push_back(1); }, EarlyPriority);
    q.schedule(5, [&] { order.push_back(21); }, DefaultPriority);
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 21, 3}));
}

TEST(EventQueue, ScheduleAfterIsRelative)
{
    EventQueue q;
    Tick seen = 0;
    q.schedule(100, [&] {
        q.scheduleAfter(50, [&] { seen = q.now(); });
    });
    q.run();
    EXPECT_EQ(seen, 150u);
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue q;
    int count = 0;
    std::function<void()> chain = [&] {
        if (++count < 10)
            q.scheduleAfter(1, chain);
    };
    q.schedule(0, chain);
    q.run();
    EXPECT_EQ(count, 10);
    EXPECT_EQ(q.now(), 9u);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue q;
    bool ran = false;
    EventHandle h = q.schedule(10, [&] { ran = true; });
    EXPECT_TRUE(q.cancel(h));
    EXPECT_FALSE(q.cancel(h)); // second cancel is a no-op
    q.run();
    EXPECT_FALSE(ran);
    EXPECT_EQ(q.executed(), 0u);
}

TEST(EventQueue, CancelOneOfMany)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(1, [&] { order.push_back(1); });
    EventHandle h = q.schedule(2, [&] { order.push_back(2); });
    q.schedule(3, [&] { order.push_back(3); });
    q.cancel(h);
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, RunWithLimitStopsEarly)
{
    EventQueue q;
    int count = 0;
    q.schedule(10, [&] { ++count; });
    q.schedule(20, [&] { ++count; });
    q.run(15);
    EXPECT_EQ(count, 1);
    EXPECT_EQ(q.now(), 15u);
    q.run();
    EXPECT_EQ(count, 2);
}

TEST(EventQueue, StepExecutesExactlyOne)
{
    EventQueue q;
    int count = 0;
    q.schedule(1, [&] { ++count; });
    q.schedule(2, [&] { ++count; });
    EXPECT_TRUE(q.step());
    EXPECT_EQ(count, 1);
    EXPECT_TRUE(q.step());
    EXPECT_FALSE(q.step());
    EXPECT_EQ(count, 2);
}

TEST(EventQueue, PendingTracksLiveEvents)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EventHandle a = q.schedule(1, [] {});
    q.schedule(2, [] {});
    EXPECT_EQ(q.pending(), 2u);
    q.cancel(a);
    EXPECT_EQ(q.pending(), 1u);
    q.run();
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ZeroDelaySameTickExecution)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(5, [&] {
        order.push_back(1);
        q.scheduleAfter(0, [&] { order.push_back(2); });
    });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(q.now(), 5u);
}

TEST(EventQueue, ManyEventsStaySorted)
{
    EventQueue q;
    Tick last = 0;
    bool monotonic = true;
    // Pseudo-random insertion order.
    for (uint64_t i = 0; i < 1000; ++i) {
        Tick when = (i * 7919) % 10007;
        q.schedule(when, [&, when] {
            monotonic &= when >= last;
            last = when;
        });
    }
    q.run();
    EXPECT_TRUE(monotonic);
    EXPECT_EQ(q.executed(), 1000u);
}

TEST(EventHandle, DefaultIsInvalid)
{
    EventHandle h;
    EXPECT_FALSE(h.valid());
    EventQueue q;
    EXPECT_FALSE(q.cancel(h));
}

} // namespace
} // namespace hypersio::sim
