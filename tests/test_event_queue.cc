/** Unit tests for the discrete-event simulation kernel. */

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/legacy_event_queue.hh"

namespace hypersio::sim
{
namespace
{

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
    EXPECT_EQ(q.executed(), 3u);
}

TEST(EventQueue, SameTickOrderedByPriorityThenInsertion)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(5, [&] { order.push_back(2); }, DefaultPriority);
    q.schedule(5, [&] { order.push_back(3); }, LatePriority);
    q.schedule(5, [&] { order.push_back(1); }, EarlyPriority);
    q.schedule(5, [&] { order.push_back(21); }, DefaultPriority);
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 21, 3}));
}

TEST(EventQueue, ScheduleAfterIsRelative)
{
    EventQueue q;
    Tick seen = 0;
    q.schedule(100, [&] {
        q.scheduleAfter(50, [&] { seen = q.now(); });
    });
    q.run();
    EXPECT_EQ(seen, 150u);
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue q;
    int count = 0;
    std::function<void()> chain = [&] {
        if (++count < 10)
            q.scheduleAfter(1, chain);
    };
    q.schedule(0, chain);
    q.run();
    EXPECT_EQ(count, 10);
    EXPECT_EQ(q.now(), 9u);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue q;
    bool ran = false;
    EventHandle h = q.schedule(10, [&] { ran = true; });
    EXPECT_TRUE(q.cancel(h));
    EXPECT_FALSE(q.cancel(h)); // second cancel is a no-op
    q.run();
    EXPECT_FALSE(ran);
    EXPECT_EQ(q.executed(), 0u);
}

TEST(EventQueue, CancelOneOfMany)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(1, [&] { order.push_back(1); });
    EventHandle h = q.schedule(2, [&] { order.push_back(2); });
    q.schedule(3, [&] { order.push_back(3); });
    q.cancel(h);
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, RunWithLimitStopsEarly)
{
    EventQueue q;
    int count = 0;
    q.schedule(10, [&] { ++count; });
    q.schedule(20, [&] { ++count; });
    q.run(15);
    EXPECT_EQ(count, 1);
    EXPECT_EQ(q.now(), 15u);
    q.run();
    EXPECT_EQ(count, 2);
}

TEST(EventQueue, StepExecutesExactlyOne)
{
    EventQueue q;
    int count = 0;
    q.schedule(1, [&] { ++count; });
    q.schedule(2, [&] { ++count; });
    EXPECT_TRUE(q.step());
    EXPECT_EQ(count, 1);
    EXPECT_TRUE(q.step());
    EXPECT_FALSE(q.step());
    EXPECT_EQ(count, 2);
}

TEST(EventQueue, PendingTracksLiveEvents)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EventHandle a = q.schedule(1, [] {});
    q.schedule(2, [] {});
    EXPECT_EQ(q.pending(), 2u);
    q.cancel(a);
    EXPECT_EQ(q.pending(), 1u);
    q.run();
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ZeroDelaySameTickExecution)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(5, [&] {
        order.push_back(1);
        q.scheduleAfter(0, [&] { order.push_back(2); });
    });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(q.now(), 5u);
}

TEST(EventQueue, ManyEventsStaySorted)
{
    EventQueue q;
    Tick last = 0;
    bool monotonic = true;
    // Pseudo-random insertion order.
    for (uint64_t i = 0; i < 1000; ++i) {
        Tick when = (i * 7919) % 10007;
        q.schedule(when, [&, when] {
            monotonic &= when >= last;
            last = when;
        });
    }
    q.run();
    EXPECT_TRUE(monotonic);
    EXPECT_EQ(q.executed(), 1000u);
}

TEST(EventHandle, DefaultIsInvalid)
{
    EventHandle h;
    EXPECT_FALSE(h.valid());
    EventQueue q;
    EXPECT_FALSE(q.cancel(h));
}

// Regression: cancelling an event after it fired must be a detected
// no-op. The legacy kernel tombstoned the dead id forever, so its
// pending() underflowed and empty() lied (see the companion test
// below, which pins down the old behaviour).
TEST(EventQueue, CancelAfterFireReturnsFalse)
{
    EventQueue q;
    int fired = 0;
    EventHandle h = q.schedule(10, [&] { ++fired; });
    q.run();
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(q.cancel(h));
    EXPECT_EQ(q.pending(), 0u);
    EXPECT_TRUE(q.empty());

    // The queue must remain fully usable after the late cancel.
    q.scheduleAfter(1, [&] { ++fired; });
    EXPECT_EQ(q.pending(), 1u);
    q.run();
    EXPECT_EQ(fired, 2);
    EXPECT_TRUE(q.empty());
}

// The same sequence against the preserved legacy kernel: cancel
// claims success on a fired event and corrupts the accounting. This
// documents that CancelAfterFireReturnsFalse genuinely fails on the
// old implementation (its EXPECTs invert here).
TEST(LegacyEventQueue, CancelAfterFireCorruptsAccounting)
{
    LegacyEventQueue q;
    int fired = 0;
    LegacyEventHandle h = q.schedule(10, [&] { ++fired; });
    q.run();
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(q.cancel(h)); // bug: the event already fired
    EXPECT_NE(q.pending(), 0u); // size_t underflow
    EXPECT_FALSE(q.empty());
}

// A handle must die with its event even when the slot is recycled:
// a stale cancel may not hit the new occupant.
TEST(EventQueue, StaleHandleMissesRecycledSlot)
{
    EventQueue q;
    EventHandle old = q.schedule(1, [] {});
    q.run();
    // The new event reuses the fired event's slab slot.
    bool ran = false;
    q.scheduleAfter(1, [&] { ran = true; });
    EXPECT_FALSE(q.cancel(old));
    EXPECT_EQ(q.pending(), 1u);
    q.run();
    EXPECT_TRUE(ran);
}

TEST(EventQueue, SameTickOrderSurvivesInterleavedCancels)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(5, [&] { order.push_back(2); }, DefaultPriority);
    EventHandle a =
        q.schedule(5, [&] { order.push_back(9); }, EarlyPriority);
    q.schedule(5, [&] { order.push_back(3); }, LatePriority);
    q.schedule(5, [&] { order.push_back(1); }, EarlyPriority);
    EventHandle b =
        q.schedule(5, [&] { order.push_back(9); }, DefaultPriority);
    q.schedule(5, [&] { order.push_back(21); }, DefaultPriority);
    EXPECT_TRUE(q.cancel(a));
    EXPECT_TRUE(q.cancel(b));
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 21, 3}));
}

TEST(EventQueue, RunLimitBoundaryIsInclusive)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(10, [&] { order.push_back(10); });
    q.schedule(15, [&] { order.push_back(15); });
    q.schedule(16, [&] { order.push_back(16); });
    // Events at exactly the limit tick still run.
    q.run(15);
    EXPECT_EQ(order, (std::vector<int>{10, 15}));
    EXPECT_EQ(q.now(), 15u);
    EXPECT_EQ(q.pending(), 1u);
    q.run();
    EXPECT_EQ(order, (std::vector<int>{10, 15, 16}));
}

// Steady-state churn must recycle slab slots, not grow the pool:
// the high-water mark tracks the peak number of in-flight events,
// not the total scheduled.
TEST(EventQueue, SlabRecyclesUnderChurn)
{
    EventQueue q;
    uint64_t fired = 0;
    for (int round = 0; round < 1000; ++round) {
        EventHandle keep = q.scheduleAfter(1, [&] { ++fired; });
        EventHandle drop = q.scheduleAfter(2, [&] { ++fired; });
        if (round % 2 == 0) {
            EXPECT_TRUE(q.cancel(drop));
        } else {
            (void)keep;
        }
        q.run(q.now() + 2);
    }
    EXPECT_EQ(fired, 1000u + 500u);
    EXPECT_TRUE(q.empty());
    // Two live events max; one chunk of records is ample.
    EXPECT_LE(q.poolCapacity(), 8u);
}

/** Counts constructions/destructions of callback captures. */
struct LifeCounter
{
    static int alive;
    LifeCounter() { ++alive; }
    LifeCounter(const LifeCounter &) { ++alive; }
    LifeCounter(LifeCounter &&) noexcept { ++alive; }
    ~LifeCounter() { --alive; }
};
int LifeCounter::alive = 0;

TEST(EventQueue, SmallClosureStaysInlineAndIsDestroyed)
{
    LifeCounter::alive = 0;
    {
        EventQueue q;
        bool ran = false;
        LifeCounter c;
        static_assert(sizeof(bool *) + sizeof(LifeCounter) <=
                      EventQueue::CallbackInlineSize);
        q.schedule(1, [&ran, c] { ran = true; });
        q.run();
        EXPECT_TRUE(ran);
    }
    EXPECT_EQ(LifeCounter::alive, 0);
}

TEST(EventQueue, LargeClosureFallsBackToHeapAndIsDestroyed)
{
    LifeCounter::alive = 0;
    {
        EventQueue q;
        uint64_t sum = 0;
        std::array<uint64_t, 16> payload{};
        payload.fill(3);
        LifeCounter c;
        static_assert(sizeof(payload) >
                      EventQueue::CallbackInlineSize);
        q.schedule(1, [&sum, payload, c] {
            for (uint64_t v : payload)
                sum += v;
        });
        q.run();
        EXPECT_EQ(sum, 48u);

        // Cancelled oversized closures free their heap copy too.
        EventHandle h = q.scheduleAfter(1, [&sum, payload, c] {
            sum += payload[0];
        });
        EXPECT_TRUE(q.cancel(h));
        q.run();
        EXPECT_EQ(sum, 48u);
    }
    EXPECT_EQ(LifeCounter::alive, 0);
}

// Destroying a queue with events still scheduled must release every
// callback, inline and heap-allocated alike.
TEST(EventQueue, DestructorReleasesUnfiredCallbacks)
{
    LifeCounter::alive = 0;
    {
        EventQueue q;
        LifeCounter c;
        std::array<uint64_t, 16> fat{};
        q.schedule(5, [c] {});
        q.schedule(6, [c, fat] { (void)fat[0]; });
    }
    EXPECT_EQ(LifeCounter::alive, 0);
}

TEST(EventQueue, StepRefusesToRunPastCancelledTop)
{
    EventQueue q;
    int count = 0;
    EventHandle a = q.schedule(1, [&] { ++count; });
    q.schedule(2, [&] { ++count; });
    EXPECT_TRUE(q.cancel(a));
    EXPECT_TRUE(q.step()); // skips the tombstone, runs tick 2
    EXPECT_EQ(count, 1);
    EXPECT_EQ(q.now(), 2u);
    EXPECT_FALSE(q.step());
}

// now + delay wrapping Tick used to silently schedule in the past
// (the schedule() precondition then fired with a misleading message,
// or worse, passed when now was 0). The overflow is its own fatal
// assert now, at the scheduleAfter boundary where the bad delay is
// still visible.
TEST(EventQueueDeathTest, ScheduleAfterOverflowPanics)
{
    EXPECT_DEATH(
        {
            EventQueue q;
            q.schedule(10, [] {});
            q.run();
            q.scheduleAfter(MaxTick - 5, [] {});
        },
        "scheduleAfter overflows Tick");
}

TEST(EventQueueDeathTest, FusedHopOverflowPanics)
{
    if (!EventQueue::FusionCompiledIn)
        GTEST_SKIP() << "fusion compiled out";
    EXPECT_DEATH(
        {
            EventQueue q;
            q.schedule(10, [&] { q.tryFuseAdvance(MaxTick - 5); });
            q.run();
        },
        "fused hop overflows Tick");
}

// The fast path must refuse outside run(): manual drivers (step(),
// direct calls between runs) rely on every hop being a real event.
TEST(EventQueueFusion, RefusesOutsideRun)
{
    EventQueue q;
    EXPECT_FALSE(q.tryFuseAdvance(5));
    EXPECT_EQ(q.now(), 0u);
    EXPECT_EQ(q.fusedHops(), 0u);
}

TEST(EventQueueFusion, WarpsNowAndBurnsExactlyOneSeq)
{
    if (!EventQueue::FusionCompiledIn)
        GTEST_SKIP() << "fusion compiled out";
    EventQueue q;
    Tick fused_at = 0;
    uint64_t seq_before = 0;
    uint64_t seq_after = 0;
    q.schedule(10, [&] {
        seq_before = q.scheduledSeq();
        ASSERT_TRUE(q.tryFuseAdvance(3)); // heap empty: fusible
        seq_after = q.scheduledSeq();
        fused_at = q.now();
    });
    q.run();
    // The elided event's tick and its slot in the (tick, priority,
    // seq) total order are both preserved, so a fused run's sequence
    // ledger is indistinguishable from the event-per-hop run's.
    EXPECT_EQ(fused_at, 13u);
    EXPECT_EQ(seq_after, seq_before + 1);
    EXPECT_EQ(q.now(), 13u);
    EXPECT_EQ(q.fusedHops(), 1u);
    EXPECT_EQ(q.executed(), 1u); // only the real event counts
}

// Fusion would reorder execution if any pending event were due at or
// before the hop's tick, so those cases must fall back — including
// the exact-tie, where the elided event's later seq would still have
// ordered it last. Strictly-later pending work is safe.
TEST(EventQueueFusion, RefusesUnlessHeapTopStrictlyLater)
{
    if (!EventQueue::FusionCompiledIn)
        GTEST_SKIP() << "fusion compiled out";
    EventQueue q;
    bool other_ran = false;
    q.schedule(12, [&] { other_ran = true; });
    q.schedule(10, [&] {
        EXPECT_FALSE(q.tryFuseAdvance(3)); // 13 past the top (12)
        EXPECT_FALSE(q.tryFuseAdvance(2)); // 12 ties the top
        EXPECT_TRUE(q.tryFuseAdvance(1));  // 11 strictly earlier
        EXPECT_EQ(q.now(), 11u);
    });
    q.run();
    EXPECT_TRUE(other_ran);
    EXPECT_EQ(q.fusedHops(), 1u);
}

// A tombstoned top refuses fusion too: the cancelled key may hide a
// later live event, and skipping fusion is the safe direction.
TEST(EventQueueFusion, RefusesOnTombstonedTop)
{
    if (!EventQueue::FusionCompiledIn)
        GTEST_SKIP() << "fusion compiled out";
    EventQueue q;
    EventHandle dead = q.schedule(12, [] {});
    q.schedule(10, [&] { EXPECT_FALSE(q.tryFuseAdvance(2)); });
    EXPECT_TRUE(q.cancel(dead));
    q.run();
    EXPECT_EQ(q.fusedHops(), 0u);
}

// run(limit) leaves past-limit events pending; a fused hop past the
// limit would instead execute its continuation, so it must refuse.
TEST(EventQueueFusion, RefusesPastRunLimit)
{
    if (!EventQueue::FusionCompiledIn)
        GTEST_SKIP() << "fusion compiled out";
    EventQueue q;
    q.schedule(10, [&] {
        EXPECT_FALSE(q.tryFuseAdvance(6)); // 16 past the limit
        EXPECT_TRUE(q.tryFuseAdvance(5));  // 15 exactly the limit
    });
    q.run(15);
    EXPECT_EQ(q.now(), 15u);
    EXPECT_EQ(q.fusedHops(), 1u);
}

TEST(EventQueueFusion, RuntimeKnobDisablesAndReenables)
{
    EventQueue q;
    int fused = 0;
    q.setFusionEnabled(false);
    EXPECT_FALSE(q.fusionEnabled());
    q.schedule(10, [&] { fused += q.tryFuseAdvance(1) ? 1 : 0; });
    q.schedule(20, [&] {
        q.setFusionEnabled(true);
        fused += q.tryFuseAdvance(1) ? 1 : 0;
    });
    q.run();
    // Re-enabling only takes effect when fusion is compiled in; the
    // knob never reports (or does) more than the build allows.
    const int expect = EventQueue::FusionCompiledIn ? 1 : 0;
    EXPECT_EQ(fused, expect);
    EXPECT_EQ(q.fusedHops(), static_cast<uint64_t>(expect));
}

// End-to-end ledger parity: a chain run with fusion (fall back when
// refused) must land on the same final now() and scheduledSeq() as
// the same chain run event-per-hop — the property the full-system
// golden tests check through RunResults and stat bytes.
TEST(EventQueueFusion, ChainLedgerMatchesEventPerHop)
{
    auto drive = [](EventQueue &q, bool use_fusion) {
        q.setFusionEnabled(use_fusion);
        std::function<void(int)> hop = [&](int left) {
            if (left == 0)
                return;
            if (q.tryFuseAdvance(7)) {
                hop(left - 1); // synchronous continuation
                return;
            }
            q.scheduleAfter(7, [&hop, left] { hop(left - 1); });
        };
        q.schedule(1, [&hop] { hop(16); });
        // A cross-cutting event mid-chain forces at least one
        // fallback in the fused run.
        q.schedule(50, [] {});
        q.run();
        return std::pair(q.now(), q.scheduledSeq());
    };
    EventQueue fused;
    EventQueue perhop;
    const auto a = drive(fused, true);
    const auto b = drive(perhop, false);
    EXPECT_EQ(a, b);
    EXPECT_EQ(perhop.fusedHops(), 0u);
    if (EventQueue::FusionCompiledIn) {
        EXPECT_GT(fused.fusedHops(), 0u);
        EXPECT_EQ(perhop.executed(),
                  fused.executed() + fused.fusedHops());
    }
}

} // namespace
} // namespace hypersio::sim
