/** Unit tests for the minimal JSON writer/parser utility. */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/json.hh"

namespace hypersio::json
{
namespace
{

TEST(JsonEscape, SpecialCharacters)
{
    EXPECT_EQ(escape("plain"), "plain");
    EXPECT_EQ(escape("a\"b"), "a\\\"b");
    EXPECT_EQ(escape("back\\slash"), "back\\\\slash");
    EXPECT_EQ(escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
    EXPECT_EQ(escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonFormatDouble, RoundTripsThroughParse)
{
    for (double v : {0.0, 1.0, -1.5, 0.1, 3.141592653589793,
                     1e-12, 123456789.123456789, 2e300}) {
        auto parsed = Value::parse(formatDouble(v));
        ASSERT_TRUE(parsed.has_value()) << v;
        EXPECT_EQ(parsed->kind, Value::Kind::Number);
        EXPECT_EQ(parsed->number, v) << formatDouble(v);
    }
}

TEST(JsonFormatDouble, NonFiniteBecomesZero)
{
    EXPECT_EQ(formatDouble(INFINITY), "0");
    EXPECT_EQ(formatDouble(NAN), "0");
}

TEST(JsonWriter, CompactObject)
{
    std::ostringstream os;
    Writer w(os, 0);
    w.beginObject();
    w.key("a");
    w.value(uint64_t{1});
    w.key("b");
    w.beginArray();
    w.value(2.5);
    w.value("x");
    w.value(true);
    w.null();
    w.endArray();
    w.endObject();
    EXPECT_EQ(os.str(), R"({"a":1,"b":[2.5,"x",true,null]})");
}

TEST(JsonWriter, IndentedOutputParses)
{
    std::ostringstream os;
    Writer w(os, 2);
    w.beginObject();
    w.key("nested");
    w.beginObject();
    w.key("list");
    w.beginArray();
    w.value(1);
    w.value(2);
    w.endArray();
    w.endObject();
    w.key("empty_obj");
    w.beginObject();
    w.endObject();
    w.key("empty_arr");
    w.beginArray();
    w.endArray();
    w.endObject();
    EXPECT_NE(os.str().find('\n'), std::string::npos);
    auto parsed = Value::parse(os.str());
    ASSERT_TRUE(parsed.has_value()) << os.str();
    const Value *list = parsed->find("nested")->find("list");
    ASSERT_NE(list, nullptr);
    ASSERT_EQ(list->array.size(), 2u);
    EXPECT_EQ(list->array[1].number, 2.0);
    EXPECT_TRUE(parsed->find("empty_obj")->object.empty());
    EXPECT_TRUE(parsed->find("empty_arr")->array.empty());
}

TEST(JsonWriter, RawSplicesVerbatim)
{
    std::ostringstream os;
    Writer w(os, 0);
    w.beginObject();
    w.key("stats");
    w.raw(R"({"inner":7})");
    w.key("after");
    w.value(1);
    w.endObject();
    auto parsed = Value::parse(os.str());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->find("stats")->find("inner")->number, 7.0);
    EXPECT_EQ(parsed->find("after")->number, 1.0);
}

TEST(JsonParse, Scalars)
{
    EXPECT_EQ(Value::parse("null")->kind, Value::Kind::Null);
    EXPECT_TRUE(Value::parse("true")->boolean);
    EXPECT_FALSE(Value::parse("false")->boolean);
    EXPECT_EQ(Value::parse("-3.5e2")->number, -350.0);
    EXPECT_EQ(Value::parse(R"("he\"llo")")->str, "he\"llo");
    EXPECT_EQ(Value::parse(R"("a\nb")")->str, "a\nb");
    EXPECT_EQ(Value::parse(R"("A")")->str, "A");
}

TEST(JsonParse, RejectsMalformedInput)
{
    EXPECT_FALSE(Value::parse("").has_value());
    EXPECT_FALSE(Value::parse("{").has_value());
    EXPECT_FALSE(Value::parse("[1,]").has_value());
    EXPECT_FALSE(Value::parse("{\"a\":}").has_value());
    EXPECT_FALSE(Value::parse("\"unterminated").has_value());
    EXPECT_FALSE(Value::parse("1 trailing").has_value());
    EXPECT_FALSE(Value::parse("nope").has_value());
}

TEST(JsonParse, WhitespaceTolerant)
{
    auto v = Value::parse("  { \"a\" : [ 1 , 2 ] }  ");
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->find("a")->array.size(), 2u);
}

TEST(JsonValue, FindMissesGracefully)
{
    auto v = Value::parse(R"({"a":1})");
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->find("b"), nullptr);
    EXPECT_EQ(v->find("a")->find("x"), nullptr); // not an object
}

} // namespace
} // namespace hypersio::json
