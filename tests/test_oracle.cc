/** Tests for the differential oracle: the reference models
 *  themselves, the shadow checker's violation detection on
 *  manufactured event streams, fault-injection end-to-end (the
 *  oracle must catch a deliberately planted DevTLB PTag bug), and
 *  the observation-only guarantee (checked == unchecked results). */

#include <gtest/gtest.h>

#include <string>

#include "core/prefetch.hh"
#include "core/system.hh"
#include "mem/memory_model.hh"
#include "oracle/fault_injection.hh"
#include "oracle/ref_cache.hh"
#include "oracle/ref_predictor.hh"
#include "oracle/ref_ptb.hh"
#include "oracle/ref_walk.hh"
#include "oracle/shadow.hh"
#include "util/rng.hh"
#include "workload/adversarial.hh"

namespace hypersio::oracle
{
namespace
{

bool
mentions(const std::optional<std::string> &violation,
         const char *needle)
{
    return violation && violation->find(needle) != std::string::npos;
}

// ---- CacheMirror -------------------------------------------------------

TEST(CacheMirror, TracksFillsLookupsAndInvalidations)
{
    CacheMirror mirror;
    mirror.configure("T", 8, 2, 1);

    // Miss before any fill, hit with the right value after.
    EXPECT_FALSE(mirror.lookup(0x10, 0, 0, false, 0));
    EXPECT_FALSE(mirror.fill(0x10, 0, 0, 0xabc, std::nullopt));
    EXPECT_FALSE(mirror.lookup(0x10, 0, 0, true, 0xabc));
    EXPECT_TRUE(mirror.contains(0x10));
    EXPECT_EQ(mirror.size(), 1u);

    // Invalidation outcomes must match residency.
    EXPECT_FALSE(mirror.invalidated(0x10, true));
    EXPECT_FALSE(mirror.invalidated(0x10, false));
    EXPECT_EQ(mirror.size(), 0u);
}

TEST(CacheMirror, DetectsMisclassifiedLookups)
{
    CacheMirror mirror;
    mirror.configure("T", 8, 2, 1);

    // Phantom hit: the timed cache claims a hit the mirror lacks.
    EXPECT_TRUE(mentions(mirror.lookup(0x20, 0, 0, true, 1), "hit"));
    // Lost entry: a resident key reported as a miss.
    ASSERT_FALSE(mirror.fill(0x20, 0, 0, 5, std::nullopt));
    EXPECT_TRUE(mentions(mirror.lookup(0x20, 0, 0, false, 0),
                         "miss"));
    // Wrong value on a genuine hit.
    EXPECT_TRUE(mentions(mirror.lookup(0x20, 0, 0, true, 6),
                         "reference holds"));
}

TEST(CacheMirror, DetectsEvictionViolations)
{
    CacheMirror mirror;
    mirror.configure("T", 4, 2, 1); // 2 sets x 2 ways

    // Evicting a key that was never resident.
    EXPECT_TRUE(mentions(
        mirror.fill(0x1, 0, 0, 1, std::optional<uint64_t>(0x99)),
        "never held"));
    // Overfilling a set without reporting an eviction.
    ASSERT_FALSE(mirror.fill(0x2, 1, 0, 1, std::nullopt));
    ASSERT_FALSE(mirror.fill(0x4, 1, 0, 1, std::nullopt));
    EXPECT_TRUE(mentions(mirror.fill(0x6, 1, 0, 1, std::nullopt),
                         "missed eviction"));
    // An in-place update must not evict.
    EXPECT_TRUE(mentions(
        mirror.fill(0x2, 1, 0, 2, std::optional<uint64_t>(0x4)),
        "in-place"));
}

TEST(CacheMirror, EnforcesPartitionRowLegality)
{
    CacheMirror mirror;
    mirror.configure("P", 64, 8, 4); // 8 sets, 2 per partition

    // Tag 3 owns sets 6-7; set 0 belongs to tag 0's group.
    EXPECT_FALSE(mirror.checkRow(0x1, 6, 3));
    EXPECT_FALSE(mirror.checkRow(0x1, 7, 3));
    EXPECT_TRUE(mentions(mirror.checkRow(0x1, 0, 3),
                         "PTag violation"));
    // Tags wrap modulo the partition count.
    EXPECT_FALSE(mirror.checkRow(0x1, 2, 9));
    // Sets beyond the geometry are always illegal.
    EXPECT_TRUE(mentions(mirror.checkRow(0x1, 8, 0), "beyond"));
    // Fills and lookups run the same row check.
    EXPECT_TRUE(mentions(mirror.fill(0x1, 0, 3, 1, std::nullopt),
                         "PTag violation"));
    EXPECT_TRUE(mentions(mirror.lookup(0x1, 0, 3, false, 0),
                         "PTag violation"));
}

TEST(CacheMirror, DetectsKeysMigratingBetweenSets)
{
    CacheMirror mirror;
    mirror.configure("T", 8, 2, 1);
    ASSERT_FALSE(mirror.fill(0x8, 1, 0, 1, std::nullopt));
    EXPECT_TRUE(mentions(mirror.fill(0x8, 2, 0, 1, std::nullopt),
                         "moved"));
}

// ---- RefPtb ------------------------------------------------------------

TEST(RefPtb, EnforcesSlotDiscipline)
{
    RefPtb ptb;
    ptb.configure(2);

    EXPECT_FALSE(ptb.allocated(0, 1));
    EXPECT_FALSE(ptb.allocated(1, 2));
    // Slot already live.
    EXPECT_TRUE(ptb.allocated(1, 2).has_value());
    // Beyond capacity.
    EXPECT_TRUE(mentions(ptb.allocated(5, 3), "beyond"));
    // Dropping is legal exactly when full.
    EXPECT_FALSE(ptb.dropped());
    EXPECT_FALSE(ptb.released(0, 1));
    EXPECT_TRUE(mentions(ptb.dropped(), "only legal when full"));
    // Releasing an idle slot.
    EXPECT_TRUE(mentions(ptb.released(0, 0), "idle"));
    // Occupancy mismatches are caught on both event kinds.
    EXPECT_TRUE(mentions(ptb.allocated(0, 7), "occupancy"));
}

// ---- RefSidPredictor ---------------------------------------------------

TEST(RefSidPredictor, MatchesTimedPredictorOnRandomStreams)
{
    for (unsigned history : {0u, 1u, 4u, 20u, 48u}) {
        RefSidPredictor ref;
        ref.configure(history);
        core::SidPredictor timed(history);

        Rng rng(history * 977 + 5);
        for (int n = 0; n < 3000; ++n) {
            const auto sid = static_cast<uint32_t>(rng.below(32));
            timed.train(sid);
            ref.observe(sid);
            // Spot-check a prediction every step, full sweep at end.
            const auto probe =
                static_cast<uint32_t>(rng.below(32));
            EXPECT_EQ(timed.predict(probe), ref.predict(probe))
                << "history=" << history << " n=" << n;
        }
        for (uint32_t sid = 0; sid < 32; ++sid)
            EXPECT_EQ(timed.predict(sid), ref.predict(sid))
                << "history=" << history;
    }
}

TEST(RefSidPredictor, ImplementsTheDefinitionDirectly)
{
    // After arrivals 0,1,2,...,9 with H=3, the prediction for the
    // SID of arrival n must be the SID of arrival n+3.
    RefSidPredictor ref;
    ref.configure(3);
    for (uint32_t n = 0; n < 10; ++n)
        ref.observe(100 + n);
    for (uint32_t n = 0; n + 3 < 10; ++n)
        EXPECT_EQ(ref.predict(100 + n), 100 + n + 3);
    EXPECT_FALSE(ref.predict(107).has_value());
}

// ---- RefHistory --------------------------------------------------------

TEST(RefHistory, KeepsMruOrderDedupedAndCapped)
{
    RefHistory hist;
    hist.configure(3);
    hist.observe(7, 0x1000, 12);
    hist.observe(7, 0x2000, 12);
    hist.observe(7, 0x200000, 21);
    ASSERT_TRUE(hist.recent(7, 0).has_value());
    EXPECT_EQ(hist.recent(7, 0)->pageBase, 0x200000u);
    EXPECT_EQ(hist.recent(7, 2)->pageBase, 0x1000u);

    // Re-observing moves to front and keeps the recorded size, even
    // if the re-observation claims another size.
    hist.observe(7, 0x1000, 21);
    EXPECT_EQ(hist.recent(7, 0)->pageBase, 0x1000u);
    EXPECT_EQ(hist.recent(7, 0)->sizeBytesLog2, 12u);

    // Depth cap evicts the least recent.
    hist.observe(7, 0x3000, 12);
    EXPECT_FALSE(hist.recent(7, 3).has_value());
    EXPECT_EQ(hist.recent(7, 2)->pageBase, 0x200000u);

    // Tenants are independent.
    EXPECT_FALSE(hist.recent(8, 0).has_value());
}

// ---- refWalkAccesses ---------------------------------------------------

TEST(RefWalkAccesses, AgreesWithTheTimedAccessFormula)
{
    for (unsigned levels : {4u, 5u}) {
        for (bool huge : {false, true}) {
            const unsigned leaf = huge ? 2 : 1;
            EXPECT_EQ(refWalkAccesses(false, false, levels, huge),
                      mem::walkAccessesAtDepth(levels - leaf + 1,
                                               levels));
            EXPECT_EQ(refWalkAccesses(false, true, levels, huge),
                      mem::walkAccessesAtDepth(3 - leaf, levels));
            EXPECT_EQ(refWalkAccesses(true, false, levels, huge),
                      mem::walkAccessesAtDepth(2 - leaf, levels));
        }
    }
    // The headline Table II numbers.
    EXPECT_EQ(refWalkAccesses(false, false, 4, false), 24u);
    EXPECT_EQ(refWalkAccesses(false, false, 5, false), 35u);
    EXPECT_EQ(refWalkAccesses(true, false, 4, false), 9u);
    EXPECT_EQ(refWalkAccesses(false, true, 4, false), 14u);
    EXPECT_EQ(refWalkAccesses(true, false, 4, true), 4u);
}

// ---- ShadowChecker on manufactured event streams -----------------------

ShadowConfig
smallConfig()
{
    ShadowConfig config;
    config.devtlbEntries = 16;
    config.devtlbWays = 4;
    config.devtlbPartitions = 2;
    config.iotlbEntries = 16;
    config.iotlbWays = 4;
    config.l2Entries = 8;
    config.l2Ways = 2;
    config.l3Entries = 8;
    config.l3Ways = 2;
    config.ptbEntries = 2;
    config.historyLength = 2;
    config.historyDepth = 2;
    config.pagesPerPrefetch = 2;
    return config;
}

TEST(ShadowChecker, CollectsViolationsInsteadOfDying)
{
    ShadowChecker checker(smallConfig(), nullptr,
                          /*fail_fast=*/false);
    // Drop with an empty PTB: illegal.
    checker.devicePacketDropped();
    // Phantom DevTLB hit.
    checker.deviceDevtlbLookup(0, 0, 0x1000, mem::PageSize::Size4K,
                               0, true, 0xdead);
    EXPECT_EQ(checker.violationCount(), 2u);
    ASSERT_EQ(checker.violations().size(), 2u);
    EXPECT_NE(checker.violations()[0].find("drop"),
              std::string::npos);
    EXPECT_EQ(checker.eventCount(), 2u);
    EXPECT_EQ(checker.translationChecks(), 1u);
}

TEST(ShadowChecker, ChecksWalkAccountingAgainstPagingMirrors)
{
    ShadowChecker checker(smallConfig(), nullptr,
                          /*fail_fast=*/false);
    const mem::DomainId did = 1;
    const mem::Iova iova = 0x4000;
    const auto size = mem::PageSize::Size4K;

    // A walk must allocate its MSHR entry first…
    checker.iommuWalkStarted(did, iova, size, 24, 1);
    EXPECT_EQ(checker.violationCount(), 1u); // no MSHR entry
    checker.iommuMshrAllocated(did, iova, size);
    // …and a cold walk costs the full 24 accesses, not 9.
    checker.iommuWalkStarted(did, iova, size, 9, 1);
    EXPECT_EQ(checker.violationCount(), 2u);
    checker.iommuWalkStarted(did, iova, size, 24, 1);
    EXPECT_EQ(checker.violationCount(), 2u);
    checker.iommuWalkCompleted(did, iova, size, true, 0x1234);
    // Completing again: the MSHR entry is gone.
    checker.iommuWalkCompleted(did, iova, size, true, 0x1234);
    EXPECT_EQ(checker.violationCount(), 3u);
}

TEST(ShadowChecker, FailFastPanicsOnFirstViolation)
{
    EXPECT_DEATH(
        {
            ShadowChecker checker(smallConfig(), nullptr,
                                  /*fail_fast=*/true);
            checker.devicePacketDropped();
        },
        "shadow oracle");
}

TEST(ShadowScope, InstallsPerThreadAndNests)
{
    EXPECT_EQ(shadowChecker(), nullptr);
    ShadowChecker outer(smallConfig(), nullptr, false);
    {
        ShadowScope scope(outer);
        EXPECT_EQ(shadowChecker(), &outer);
        ShadowChecker inner(smallConfig(), nullptr, false);
        {
            ShadowScope nested(inner);
            EXPECT_EQ(shadowChecker(), &inner);
        }
        EXPECT_EQ(shadowChecker(), &outer);
    }
    EXPECT_EQ(shadowChecker(), nullptr);
}

// ---- End-to-end: fault injection and observation-only ------------------

#ifdef HYPERSIO_CHECKED

trace::HyperTrace
smallTrace(uint64_t seed)
{
    workload::AdversarialConfig tc;
    tc.tenants = 6;
    tc.packets = 120;
    tc.seed = seed;
    return workload::makeAdversarialTrace(
        workload::AdversarialPattern::UniformRandom, tc);
}

TEST(FaultInjection, OracleCatchesDevtlbPtagOffByOne)
{
    // Plant the off-by-one: partition = sid & partitions collapses
    // every SID into row group 0 of the 8-partition DevTLB. The
    // row-legality check must fire for every non-zero-group SID.
    FaultInjectionScope guard;
    faultInjection().devtlbPtagOffByOne = true;

    const auto tr = smallTrace(3);
    core::SystemConfig config = core::SystemConfig::hypertrio();
    core::System system(config);
    ShadowChecker checker(core::toShadowConfig(config),
                          &system.tables(), /*fail_fast=*/false);
    {
        ShadowScope scope(checker);
        system.run(tr);
    }

    EXPECT_GT(checker.violationCount(), 0u);
    ASSERT_FALSE(checker.violations().empty());
    bool ptag = false;
    for (const auto &violation : checker.violations())
        ptag = ptag ||
               violation.find("PTag violation") != std::string::npos;
    EXPECT_TRUE(ptag) << "expected a PTag row-legality violation, "
                         "first was: "
                      << checker.violations().front();
}

TEST(FaultInjection, CleanModelPassesTheSameCampaign)
{
    // Control run: same trace and config, knob off — no violations.
    const auto tr = smallTrace(3);
    core::SystemConfig config = core::SystemConfig::hypertrio();
    core::System system(config);
    ShadowChecker checker(core::toShadowConfig(config),
                          &system.tables(), /*fail_fast=*/false);
    {
        ShadowScope scope(checker);
        system.run(tr);
    }
    EXPECT_EQ(checker.violationCount(), 0u);
    EXPECT_GT(checker.translationChecks(), 0u);
}

TEST(ShadowChecker, IsObservationOnly)
{
    // A checked run must be byte-identical to an unchecked run:
    // the oracle never feeds back into the timed model.
    const auto tr = smallTrace(9);

    const bool was_enabled = shadowAutoCheckEnabled();
    setShadowAutoCheck(false);
    core::RunResults unchecked;
    {
        core::System system(core::SystemConfig::hypertrio());
        unchecked = system.run(tr);
    }
    setShadowAutoCheck(true);
    core::RunResults checked;
    {
        core::System system(core::SystemConfig::hypertrio());
        checked = system.run(tr);
    }
    setShadowAutoCheck(was_enabled);

    EXPECT_TRUE(checked == unchecked);
}

#endif // HYPERSIO_CHECKED

TEST(ShadowAutoCheck, TogglesAndRestores)
{
    const bool was_enabled = shadowAutoCheckEnabled();
    setShadowAutoCheck(false);
    EXPECT_FALSE(shadowAutoCheckEnabled());
    setShadowAutoCheck(true);
    EXPECT_TRUE(shadowAutoCheckEnabled());
    setShadowAutoCheck(was_enabled);
}

} // namespace
} // namespace hypersio::oracle
