/** Tests for the debug-flag tracing facility. */

#include <gtest/gtest.h>

#include <cstdio>

#include "util/debug.hh"
#include "util/logging.hh"

namespace hypersio::debug
{
namespace
{

class DebugTest : public ::testing::Test
{
  protected:
    void TearDown() override { disableAll(); }
};

TEST_F(DebugTest, FlagsRegisterAndList)
{
    Flag flag("TestFlagA", "a test flag");
    const auto flags = listFlags();
    bool found = false;
    for (const auto &[name, desc] : flags) {
        if (name == "TestFlagA") {
            found = true;
            EXPECT_EQ(desc, "a test flag");
        }
    }
    EXPECT_TRUE(found);
}

TEST_F(DebugTest, FlagsUnregisterOnDestruction)
{
    {
        Flag flag("TestFlagB", "scoped");
        EXPECT_EQ(listFlags().size(),
                  listFlags().size()); // registered while alive
    }
    for (const auto &[name, desc] : listFlags())
        EXPECT_NE(name, "TestFlagB");
}

TEST_F(DebugTest, EnableByName)
{
    Flag a("TestFlagC", "");
    Flag b("TestFlagD", "");
    EXPECT_FALSE(a.enabled());
    enable("TestFlagC");
    EXPECT_TRUE(a.enabled());
    EXPECT_FALSE(b.enabled());
}

TEST_F(DebugTest, EnableCommaSeparatedList)
{
    Flag a("TestFlagE", "");
    Flag b("TestFlagF", "");
    enable("TestFlagE, TestFlagF");
    EXPECT_TRUE(a.enabled());
    EXPECT_TRUE(b.enabled());
}

TEST_F(DebugTest, EnableAll)
{
    Flag a("TestFlagG", "");
    enable("All");
    EXPECT_TRUE(a.enabled());
    EXPECT_TRUE(anyEnabled());
    disableAll();
    EXPECT_FALSE(anyEnabled());
}

TEST_F(DebugTest, DprintfRespectsEnable)
{
    Flag flag("TestFlagH", "");

    // Redirect the logger to a temp file and check output.
    std::FILE *tmp = std::tmpfile();
    ASSERT_NE(tmp, nullptr);
    Logger::instance().setStream(tmp);

    dprintf(flag, 100, "hidden %d", 1);
    flag.setEnabled(true);
    dprintf(flag, 200, "visible %d", 2);

    std::fflush(tmp);
    std::rewind(tmp);
    char buffer[256] = {};
    const size_t n = std::fread(buffer, 1, sizeof(buffer) - 1, tmp);
    Logger::instance().setStream(nullptr);
    std::fclose(tmp);

    const std::string text(buffer, n);
    EXPECT_EQ(text.find("hidden"), std::string::npos);
    EXPECT_NE(text.find("visible 2"), std::string::npos);
    EXPECT_NE(text.find("200"), std::string::npos);
    EXPECT_NE(text.find("TestFlagH"), std::string::npos);
}

} // namespace
} // namespace hypersio::debug
