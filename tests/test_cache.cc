/** Unit tests for the set-associative cache: geometry, partitioning,
 *  hashed indexing, eviction, invalidation, and statistics. */

#include <gtest/gtest.h>

#include "cache/set_assoc_cache.hh"

namespace hypersio::cache
{
namespace
{

CacheConfig
smallConfig()
{
    // 16 entries, 2-way, 8 sets, LRU.
    return {16, 2, 1, ReplPolicyKind::LRU, 1};
}

TEST(SetAssocCache, MissThenHit)
{
    SetAssocCache<int> cache(smallConfig());
    EXPECT_EQ(cache.lookup(100, 0), nullptr);
    cache.insert(100, 0, 7);
    int *v = cache.lookup(100, 0);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, 7);
    EXPECT_EQ(cache.stats().lookups, 2u);
    EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(SetAssocCache, InsertUpdatesInPlace)
{
    SetAssocCache<int> cache(smallConfig());
    cache.insert(1, 0, 10);
    cache.insert(1, 0, 20);
    EXPECT_EQ(*cache.lookup(1, 0), 20);
    EXPECT_EQ(cache.stats().insertions, 1u); // update is not an insert
    EXPECT_EQ(cache.occupancy(), 1u);
}

TEST(SetAssocCache, EvictionWhenSetFull)
{
    SetAssocCache<int> cache(smallConfig()); // 2-way
    // Three keys mapping to the same set (index % 8 == 0).
    cache.insert(100, 0, 1);
    cache.insert(200, 8, 2);
    auto evicted = cache.insert(300, 16, 3);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->key, 100u); // LRU victim
    EXPECT_EQ(evicted->value, 1);
    EXPECT_EQ(cache.lookup(100, 0), nullptr);
    EXPECT_NE(cache.lookup(200, 8), nullptr);
    EXPECT_NE(cache.lookup(300, 16), nullptr);
    EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(SetAssocCache, DifferentSetsDoNotConflict)
{
    SetAssocCache<int> cache(smallConfig());
    for (uint64_t i = 0; i < 8; ++i)
        cache.insert(1000 + i, i, static_cast<int>(i));
    EXPECT_EQ(cache.stats().evictions, 0u);
    EXPECT_EQ(cache.occupancy(), 8u);
}

TEST(SetAssocCache, InvalidateRemovesEntry)
{
    SetAssocCache<int> cache(smallConfig());
    cache.insert(5, 5, 50);
    EXPECT_TRUE(cache.invalidate(5, 5));
    EXPECT_FALSE(cache.invalidate(5, 5));
    EXPECT_EQ(cache.lookup(5, 5), nullptr);
    EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(SetAssocCache, FlushEmptiesEverything)
{
    SetAssocCache<int> cache(smallConfig());
    for (uint64_t i = 0; i < 16; ++i)
        cache.insert(i, i, 1);
    EXPECT_GT(cache.occupancy(), 0u);
    cache.flush();
    EXPECT_EQ(cache.occupancy(), 0u);
    for (uint64_t i = 0; i < 16; ++i)
        EXPECT_EQ(cache.peek(i, i), nullptr);
}

TEST(SetAssocCache, PeekHasNoSideEffects)
{
    SetAssocCache<int> cache(smallConfig());
    cache.insert(9, 1, 90);
    const auto before = cache.stats().lookups;
    EXPECT_NE(cache.peek(9, 1), nullptr);
    EXPECT_EQ(cache.peek(10, 1), nullptr);
    EXPECT_EQ(cache.stats().lookups, before);
}

TEST(SetAssocCache, FullyAssociativeMode)
{
    CacheConfig config{8, 8, 1, ReplPolicyKind::LRU, 1};
    SetAssocCache<int> cache(config);
    EXPECT_EQ(cache.numSets(), 1u);
    // All keys share the one set regardless of index.
    for (uint64_t i = 0; i < 8; ++i)
        cache.insert(i, i * 1000, 1);
    EXPECT_EQ(cache.stats().evictions, 0u);
    cache.insert(99, 123456, 1);
    EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(SetAssocCache, PartitionIsolation)
{
    // 4 partitions of 2 sets each; same index, different partitions
    // never evict each other.
    CacheConfig config{16, 2, 4, ReplPolicyKind::LRU, 1};
    SetAssocCache<int> cache(config);
    // Fill partition 0's set for index 0 to capacity.
    cache.insert(1, 0, 1, 0);
    cache.insert(2, 0, 2, 0);
    // Insert into partition 1 with the same index.
    cache.insert(3, 0, 3, 1);
    // Partition 0 entries must survive.
    EXPECT_NE(cache.lookup(1, 0, 0), nullptr);
    EXPECT_NE(cache.lookup(2, 0, 0), nullptr);
    EXPECT_NE(cache.lookup(3, 0, 1), nullptr);
    // A third key in partition 0 evicts only within partition 0.
    cache.insert(4, 0, 4, 0);
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_NE(cache.lookup(3, 0, 1), nullptr);
}

TEST(SetAssocCache, PartitionIdWrapsAroundModulo)
{
    CacheConfig config{16, 2, 4, ReplPolicyKind::LRU, 1};
    SetAssocCache<int> cache(config);
    cache.insert(1, 0, 1, 1);
    // Partition 5 maps to partition 1 (5 % 4).
    EXPECT_NE(cache.lookup(1, 0, 5), nullptr);
}

TEST(SetAssocCache, SetIndexComputation)
{
    CacheConfig config{64, 8, 4, ReplPolicyKind::LRU, 1};
    SetAssocCache<int> cache(config);
    // 8 sets, 4 partitions → 2 sets per partition.
    EXPECT_EQ(cache.setIndex(0, 0), 0u);
    EXPECT_EQ(cache.setIndex(1, 0), 1u);
    EXPECT_EQ(cache.setIndex(2, 0), 0u); // wraps inside partition
    EXPECT_EQ(cache.setIndex(0, 1), 2u);
    EXPECT_EQ(cache.setIndex(1, 3), 7u);
}

TEST(SetAssocCache, HashedIndexSpreadsSameIndexKeys)
{
    // With plain indexing, keys sharing an index collide in one set;
    // with hashed indexing they spread across sets.
    CacheConfig plain{64, 2, 1, ReplPolicyKind::LRU, 1, false};
    CacheConfig hashed{64, 2, 1, ReplPolicyKind::LRU, 1, true};
    SetAssocCache<int> a(plain);
    SetAssocCache<int> b(hashed);
    for (uint64_t t = 0; t < 16; ++t) {
        const uint64_t key = (t << 40) | 0x34800; // same page
        a.insert(key, 0x34800, 1);
        b.insert(key, 0x34800, 1);
    }
    // Plain: all 16 in one 2-way set → 14 evictions.
    EXPECT_EQ(a.stats().evictions, 14u);
    // Hashed: spread over 32 sets → few or no evictions.
    EXPECT_LT(b.stats().evictions, 4u);
}

TEST(SetAssocCache, ForEachVisitsAllValidEntries)
{
    SetAssocCache<int> cache(smallConfig());
    cache.insert(1, 1, 10);
    cache.insert(2, 2, 20);
    cache.insert(3, 3, 30);
    cache.invalidate(2, 2);
    int sum = 0;
    size_t count = 0;
    cache.forEach([&](uint64_t, const int &v, size_t, size_t) {
        sum += v;
        ++count;
    });
    EXPECT_EQ(count, 2u);
    EXPECT_EQ(sum, 40);
}

TEST(SetAssocCache, ResetStatsKeepsContents)
{
    SetAssocCache<int> cache(smallConfig());
    cache.insert(1, 1, 10);
    cache.lookup(1, 1);
    cache.resetStats();
    EXPECT_EQ(cache.stats().lookups, 0u);
    EXPECT_NE(cache.lookup(1, 1), nullptr);
}

TEST(CacheStats, MissRateArithmetic)
{
    CacheStats stats;
    EXPECT_DOUBLE_EQ(stats.missRate(), 0.0);
    stats.lookups = 10;
    stats.hits = 7;
    EXPECT_EQ(stats.misses(), 3u);
    EXPECT_DOUBLE_EQ(stats.missRate(), 0.3);
}

/** Geometry sweep: inserts never exceed capacity, lookups find what
 *  fits, and occupancy is bounded for every (entries, ways) shape. */
class CacheGeometryTest
    : public ::testing::TestWithParam<std::pair<size_t, size_t>>
{};

TEST_P(CacheGeometryTest, OccupancyNeverExceedsCapacity)
{
    const auto [entries, ways] = GetParam();
    CacheConfig config{entries, ways, 1, ReplPolicyKind::LRU, 1};
    SetAssocCache<int> cache(config);
    for (uint64_t i = 0; i < entries * 4; ++i)
        cache.insert(i, i * 2654435761u, 1);
    EXPECT_LE(cache.occupancy(), entries);
    const auto &s = cache.stats();
    EXPECT_EQ(s.insertions, entries * 4);
    EXPECT_EQ(s.insertions - s.evictions, cache.occupancy());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CacheGeometryTest,
    ::testing::Values(std::pair<size_t, size_t>{8, 1},
                      std::pair<size_t, size_t>{8, 8},
                      std::pair<size_t, size_t>{64, 8},
                      std::pair<size_t, size_t>{64, 2},
                      std::pair<size_t, size_t>{1024, 16},
                      std::pair<size_t, size_t>{512, 16}));

/** Partition sweep: entries inserted via one partition are never
 *  evicted by traffic in other partitions. */
class PartitionIsolationTest : public ::testing::TestWithParam<size_t>
{};

TEST_P(PartitionIsolationTest, CrossPartitionTrafficCannotEvict)
{
    const size_t partitions = GetParam();
    CacheConfig config{64, 8, partitions, ReplPolicyKind::LRU, 1};
    SetAssocCache<int> cache(config);

    // Pin one entry in partition 0.
    cache.insert(0xAAAA, 0, 1, 0);

    // Blast every other partition with conflicting traffic.
    for (uint32_t p = 1; p < partitions; ++p)
        for (uint64_t i = 0; i < 100; ++i)
            cache.insert((uint64_t(p) << 32) | i, i, 2, p);

    EXPECT_NE(cache.lookup(0xAAAA, 0, 0), nullptr);
}

INSTANTIATE_TEST_SUITE_P(Partitions, PartitionIsolationTest,
                         ::testing::Values(1, 2, 4, 8));

TEST(SetAssocCache, ExportStatsTracksLiveCounters)
{
    CacheConfig config;
    config.entries = 4;
    config.ways = 2;
    SetAssocCache<int> cache(config);
    stats::StatGroup group("devtlb");
    cache.exportStats(group);

    // Freshly exported: everything reads zero.
    ASSERT_NE(group.find("lookups"), nullptr);
    EXPECT_EQ(group.find("lookups")->value(), 0.0);
    EXPECT_EQ(group.find("miss_rate")->value(), 0.0);

    cache.insert(1, 0, 10);
    cache.lookup(1, 0); // hit
    cache.lookup(2, 0); // miss
    cache.lookup(3, 0); // miss

    // The exported stats follow the cache's own counters exactly —
    // no snapshot to go stale.
    const CacheStats &s = cache.stats();
    EXPECT_EQ(group.find("lookups")->value(),
              static_cast<double>(s.lookups));
    EXPECT_EQ(group.find("hits")->value(),
              static_cast<double>(s.hits));
    EXPECT_EQ(group.find("misses")->value(), 2.0);
    EXPECT_EQ(group.find("miss_rate")->value(), s.missRate());
    EXPECT_EQ(group.find("insertions")->value(), 1.0);
    EXPECT_EQ(group.find("evictions")->value(), 0.0);
    EXPECT_EQ(group.find("invalidations")->value(), 0.0);

    cache.resetStats();
    EXPECT_EQ(group.find("lookups")->value(), 0.0);
}

// ---- Sub-entry sharing ------------------------------------------------

/** 16 entries, 2-way, 8 sets, LRU, `sub` sub-entries per tag. */
CacheConfig
subConfig(size_t sub)
{
    CacheConfig config{16, 2, 1, ReplPolicyKind::LRU, 1};
    config.subEntries = sub;
    return config;
}

/** Key with the domain at bit 40, like both iommu key families. */
uint64_t
tenantKey(uint32_t domain, uint64_t low)
{
    return (uint64_t(domain) << 40) | low;
}

TEST(SetAssocCacheSubEntry, SameLayoutTenantsShareOneWay)
{
    SetAssocCache<int> cache(subConfig(4));
    // Four tenants, identical page identity: one tag, one way.
    for (uint32_t t = 1; t <= 4; ++t)
        EXPECT_FALSE(
            cache.insert(tenantKey(t, 0x1000), 0, int(t)));
    EXPECT_EQ(cache.occupancy(), 4u);
    for (uint32_t t = 1; t <= 4; ++t) {
        int *v = cache.lookup(tenantKey(t, 0x1000), 0);
        ASSERT_NE(v, nullptr);
        EXPECT_EQ(*v, int(t));
    }
    // A second layout still fits the same 2-way set: the four
    // tenants above consumed only one way.
    EXPECT_FALSE(cache.insert(tenantKey(1, 0x2000), 0, 99));
    EXPECT_NE(cache.lookup(tenantKey(1, 0x1000), 0), nullptr);
}

TEST(SetAssocCacheSubEntry, TagHitWrongTenantIsAMiss)
{
    SetAssocCache<int> cache(subConfig(4));
    cache.insert(tenantKey(1, 0x1000), 0, 1);
    // Same shared tag, different tenant: must miss.
    EXPECT_EQ(cache.lookup(tenantKey(2, 0x1000), 0), nullptr);
    EXPECT_EQ(cache.peek(tenantKey(2, 0x1000), 0), nullptr);
    EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(SetAssocCacheSubEntry, SubCapacityEvictsRoundRobin)
{
    SetAssocCache<int> cache(subConfig(2));
    cache.insert(tenantKey(1, 0x1000), 0, 1);
    cache.insert(tenantKey(2, 0x1000), 0, 2);
    // Tag full: tenant 3 evicts sub-slot 0 (tenant 1).
    auto ev = cache.insert(tenantKey(3, 0x1000), 0, 3);
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(ev->key, tenantKey(1, 0x1000));
    EXPECT_EQ(ev->value, 1);
    // The cursor advanced: tenant 4 evicts sub-slot 1 (tenant 2).
    ev = cache.insert(tenantKey(4, 0x1000), 0, 4);
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(ev->key, tenantKey(2, 0x1000));
    EXPECT_NE(cache.lookup(tenantKey(3, 0x1000), 0), nullptr);
    EXPECT_NE(cache.lookup(tenantKey(4, 0x1000), 0), nullptr);
    EXPECT_EQ(cache.occupancy(), 2u);
}

TEST(SetAssocCacheSubEntry, WholeTagEvictionTakesEveryTenant)
{
    SetAssocCache<int> cache(subConfig(4)); // 2-way sets
    // Tag A carries two tenants, tag B one; the set is now full.
    cache.insert(tenantKey(1, 0x1000), 0, 11);
    cache.insert(tenantKey(2, 0x1000), 0, 12);
    cache.insert(tenantKey(3, 0x2000), 0, 23);
    // A third layout needs a way: LRU picks tag A, and the eviction
    // names a representative tenant behind it.
    auto ev = cache.insert(tenantKey(4, 0x3000), 0, 34);
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(subEntrySharedKey(ev->key), 0x1000u);
    EXPECT_EQ(cache.lookup(tenantKey(1, 0x1000), 0), nullptr);
    EXPECT_EQ(cache.lookup(tenantKey(2, 0x1000), 0), nullptr);
    EXPECT_NE(cache.lookup(tenantKey(3, 0x2000), 0), nullptr);
    EXPECT_NE(cache.lookup(tenantKey(4, 0x3000), 0), nullptr);
    EXPECT_EQ(cache.occupancy(), 2u);
}

TEST(SetAssocCacheSubEntry, LastInvalidateFreesTheWay)
{
    SetAssocCache<int> cache(subConfig(4)); // 2-way sets
    cache.insert(tenantKey(1, 0x1000), 0, 1);
    cache.insert(tenantKey(2, 0x1000), 0, 2);
    EXPECT_TRUE(cache.invalidate(tenantKey(1, 0x1000), 0));
    // The tag survives while a tenant remains.
    EXPECT_NE(cache.lookup(tenantKey(2, 0x1000), 0), nullptr);
    EXPECT_TRUE(cache.invalidate(tenantKey(2, 0x1000), 0));
    EXPECT_EQ(cache.occupancy(), 0u);
    EXPECT_EQ(cache.stats().invalidations, 2u);
    // Both ways are free again: two new tags fit with no eviction.
    EXPECT_FALSE(cache.insert(tenantKey(5, 0x4000), 0, 5));
    EXPECT_FALSE(cache.insert(tenantKey(6, 0x5000), 0, 6));
    EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(SetAssocCacheSubEntry, UpdateInPlaceAndFlush)
{
    SetAssocCache<int> cache(subConfig(2));
    cache.insert(tenantKey(1, 0x1000), 0, 1);
    cache.insert(tenantKey(2, 0x1000), 0, 2);
    EXPECT_FALSE(cache.insert(tenantKey(1, 0x1000), 0, 10));
    EXPECT_EQ(*cache.lookup(tenantKey(1, 0x1000), 0), 10);
    EXPECT_EQ(cache.stats().insertions, 2u);

    size_t visited = 0;
    cache.forEach([&](uint64_t, const int &, size_t, size_t) {
        ++visited;
    });
    EXPECT_EQ(visited, 2u);

    cache.flush();
    EXPECT_EQ(cache.occupancy(), 0u);
    EXPECT_EQ(cache.stats().invalidations, 2u);
    EXPECT_EQ(cache.lookup(tenantKey(1, 0x1000), 0), nullptr);
}

TEST(SetAssocCacheSubEntry, SingleSubEntryMatchesClassicExactly)
{
    // subEntries == 1 must take the classic paths bit-for-bit.
    SetAssocCache<int> classic(smallConfig());
    SetAssocCache<int> sub1(subConfig(1));
    Rng rng(7);
    for (int i = 0; i < 2000; ++i) {
        const uint64_t key =
            tenantKey(uint32_t(rng.next() % 4), rng.next() % 32);
        const uint64_t index = key % 32;
        switch (rng.next() % 3) {
          case 0: {
            auto a = classic.insert(key, index, int(i));
            auto b = sub1.insert(key, index, int(i));
            ASSERT_EQ(a.has_value(), b.has_value());
            if (a)
                ASSERT_EQ(a->key, b->key);
            break;
          }
          case 1: {
            int *a = classic.lookup(key, index);
            int *b = sub1.lookup(key, index);
            ASSERT_EQ(a == nullptr, b == nullptr);
            if (a)
                ASSERT_EQ(*a, *b);
            break;
          }
          default:
            ASSERT_EQ(classic.invalidate(key, index),
                      sub1.invalidate(key, index));
        }
    }
    EXPECT_EQ(classic.stats().lookups, sub1.stats().lookups);
    EXPECT_EQ(classic.stats().hits, sub1.stats().hits);
    EXPECT_EQ(classic.stats().evictions, sub1.stats().evictions);
    EXPECT_EQ(classic.occupancy(), sub1.occupancy());
}

TEST(SetAssocCacheSubEntry, HashedIndexCoIndexesSharedLayouts)
{
    CacheConfig config = subConfig(4);
    config.hashIndex = true;
    SetAssocCache<int> cache(config);
    // With hashed indexing the *shared* key picks the set, so
    // same-layout tenants land in the same row and share its tag:
    // four tenants, one way consumed.
    for (uint32_t t = 1; t <= 4; ++t)
        cache.insert(tenantKey(t, 0x7000), 0x7000, int(t));
    EXPECT_EQ(cache.occupancy(), 4u);
    size_t sets_seen = 0, last_set = 0;
    cache.forEach([&](uint64_t, const int &, size_t set, size_t) {
        if (sets_seen == 0 || set == last_set)
            last_set = set;
        ++sets_seen;
        EXPECT_EQ(set, last_set);
    });
    EXPECT_EQ(sets_seen, 4u);
}

} // namespace
} // namespace hypersio::cache
