/** Tests for the extension features: configuration overrides,
 *  multi-device systems, and variable packet wire sizes. */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>

#include "core/multi_system.hh"
#include "core/overrides.hh"
#include "core/system.hh"
#include "trace/constructor.hh"
#include "trace/trace_file.hh"
#include "workload/benchmarks.hh"

namespace hypersio::core
{
namespace
{

TEST(Overrides, NumericKeys)
{
    SystemConfig config = SystemConfig::base();
    applyOverride(config, "link.gbps=100");
    applyOverride(config, "ptb.entries=16");
    applyOverride(config, "devtlb.entries=128");
    applyOverride(config, "pcie.oneway_ns=300");
    applyOverride(config, "iommu.paging_levels=5");
    EXPECT_DOUBLE_EQ(config.link.gbps, 100.0);
    EXPECT_EQ(config.device.ptbEntries, 16u);
    EXPECT_EQ(config.device.devtlb.entries, 128u);
    EXPECT_EQ(config.pcieOneWay, 300 * TicksPerNs);
    EXPECT_EQ(config.iommu.pagingLevels, 5u);
}

TEST(Overrides, PolicyAndBooleanKeys)
{
    SystemConfig config = SystemConfig::base();
    applyOverride(config, "devtlb.policy=lru");
    applyOverride(config, "prefetch.enabled=true");
    applyOverride(config, "iotlb.hashed=off");
    EXPECT_EQ(config.device.devtlb.policy,
              cache::ReplPolicyKind::LRU);
    EXPECT_TRUE(config.device.prefetch.enabled);
    EXPECT_FALSE(config.iommu.iotlb.hashIndex);
}

TEST(Overrides, WhitespaceTolerant)
{
    SystemConfig config = SystemConfig::base();
    applyOverride(config, "  seed =  99 ");
    EXPECT_EQ(config.seed, 99u);
}

TEST(Overrides, ListAppliesInOrder)
{
    SystemConfig config = SystemConfig::base();
    applyOverrides(config,
                   {"ptb.entries=8", "ptb.entries=32"});
    EXPECT_EQ(config.device.ptbEntries, 32u);
}

TEST(Overrides, SupportedKeysNonEmptyAndUnique)
{
    const auto keys = supportedOverrideKeys();
    EXPECT_GE(keys.size(), 20u);
    for (size_t i = 0; i < keys.size(); ++i)
        for (size_t j = i + 1; j < keys.size(); ++j)
            EXPECT_NE(keys[i], keys[j]);
}

TEST(Overrides, ConfigFileParsing)
{
    const auto path = std::filesystem::temp_directory_path() /
                      "hypersio_overrides_test.cfg";
    {
        std::ofstream out(path);
        out << "# comment line\n";
        out << "link.gbps = 400   # trailing comment\n";
        out << "\n";
        out << "devtlb.partitions = 8\n";
    }
    SystemConfig config = SystemConfig::base();
    loadConfigFile(config, path.string());
    std::filesystem::remove(path);
    EXPECT_DOUBLE_EQ(config.link.gbps, 400.0);
    EXPECT_EQ(config.device.devtlb.partitions, 8u);
}

trace::HyperTrace
smallTrace(unsigned tenants)
{
    auto logs = workload::generateLogs(workload::Benchmark::Iperf3,
                                       tenants, 42, 0.02);
    return trace::constructTrace(logs,
                                 trace::parseInterleaving("RR1"));
}

TEST(MultiSystemTest, SingleDeviceMatchesSystem)
{
    const auto tr = smallTrace(8);
    System single(SystemConfig::hypertrio());
    MultiSystem multi(SystemConfig::hypertrio(), 1);
    const RunResults rs = single.run(tr);
    const MultiRunResults rm = multi.run(tr);
    EXPECT_EQ(rm.packetsProcessed, rs.packetsProcessed);
    EXPECT_NEAR(rm.totalGbps, rs.achievedGbps,
                rs.achievedGbps * 0.01);
}

TEST(MultiSystemTest, ProcessesAllPacketsAcrossDevices)
{
    const auto tr = smallTrace(16);
    MultiSystem multi(SystemConfig::hypertrio(), 4);
    const MultiRunResults r = multi.run(tr);
    EXPECT_EQ(r.packetsProcessed, tr.packets.size());
    ASSERT_EQ(r.perDeviceGbps.size(), 4u);
    for (double gbps : r.perDeviceGbps)
        EXPECT_GT(gbps, 0.0);
}

TEST(MultiSystemTest, AggregateBandwidthScalesWithDevices)
{
    const auto tr = smallTrace(32);
    MultiSystem one(SystemConfig::hypertrio(), 1);
    MultiSystem four(SystemConfig::hypertrio(), 4);
    const double g1 = one.run(tr).totalGbps;
    const double g4 = four.run(tr).totalGbps;
    // Four links carry strictly more aggregate traffic.
    EXPECT_GT(g4, g1 * 2.0);
}

TEST(MultiSystemTest, UtilizationNormalisedToDeviceCount)
{
    const auto tr = smallTrace(16);
    MultiSystem multi(SystemConfig::hypertrio(), 2);
    const MultiRunResults r = multi.run(tr);
    EXPECT_LE(r.utilization, 1.0 + 1e-9);
    EXPECT_GT(r.utilization, 0.0);
}

TEST(WireBytes, SmallPacketsShortenArrivalIntervals)
{
    workload::TenantPattern pattern =
        workload::benchmarkProfile(workload::Benchmark::Iperf3)
            .pattern;
    pattern.smallPacketBytes = 256;
    pattern.smallPacketProb = 1.0; // every packet small
    workload::TenantLogGenerator gen(pattern, 42);
    std::vector<trace::TenantLog> logs{gen.generate(0, 512)};
    const auto tr = trace::constructTrace(
        logs, trace::parseInterleaving("RR1"));
    for (const auto &pkt : tr.packets)
        EXPECT_EQ(pkt.wireBytes, 256u);

    // In native mode the run finishes ~6x faster than full-size.
    System small(SystemConfig::base());
    const RunResults rs = small.run(tr, /*bypass=*/true);

    std::vector<trace::TenantLog> big_logs{
        workload::TenantLogGenerator(
            workload::benchmarkProfile(workload::Benchmark::Iperf3)
                .pattern,
            42)
            .generate(0, 512)};
    const auto big_tr = trace::constructTrace(
        big_logs, trace::parseInterleaving("RR1"));
    System big(SystemConfig::base());
    const RunResults rb = big.run(big_tr, /*bypass=*/true);

    EXPECT_LT(rs.elapsed, rb.elapsed / 4);
    // Both still saturate their offered load in native mode.
    EXPECT_NEAR(rs.utilization, 1.0, 1e-9);
}

TEST(WireBytes, MixedSizesRoundTripThroughTraceFiles)
{
    workload::TenantPattern pattern =
        workload::benchmarkProfile(workload::Benchmark::Iperf3)
            .pattern;
    pattern.smallPacketBytes = 128;
    pattern.smallPacketProb = 0.5;
    workload::TenantLogGenerator gen(pattern, 7);
    std::vector<trace::TenantLog> logs{gen.generate(0, 256)};
    auto tr =
        trace::constructTrace(logs, trace::parseInterleaving("RR1"));

    const auto path = std::filesystem::temp_directory_path() /
                      "hypersio_wirebytes_test.trace";
    trace::saveTrace(tr, path.string());
    const auto loaded = trace::loadTrace(path.string());
    std::filesystem::remove(path);

    ASSERT_EQ(loaded.packets.size(), tr.packets.size());
    size_t small = 0;
    for (size_t i = 0; i < loaded.packets.size(); ++i) {
        EXPECT_EQ(loaded.packets[i].wireBytes,
                  tr.packets[i].wireBytes);
        small += loaded.packets[i].wireBytes == 128 ? 1 : 0;
    }
    // Roughly half the packets are small.
    EXPECT_GT(small, loaded.packets.size() / 4);
    EXPECT_LT(small, loaded.packets.size() * 3 / 4);
}

TEST(WireBytes, BandwidthAccountsActualBytes)
{
    workload::TenantPattern pattern =
        workload::benchmarkProfile(workload::Benchmark::Iperf3)
            .pattern;
    pattern.smallPacketBytes = 256;
    pattern.smallPacketProb = 1.0;
    workload::TenantLogGenerator gen(pattern, 42);
    std::vector<trace::TenantLog> logs{gen.generate(0, 256)};
    const auto tr = trace::constructTrace(
        logs, trace::parseInterleaving("RR1"));
    System system(SystemConfig::hypertrio());
    const RunResults r = system.run(tr);
    // 256 packets x 256 B = 64 KiB: bandwidth must reflect actual
    // bytes, never the 1542 B default.
    const double max_gbps = 200.0;
    EXPECT_LE(r.achievedGbps, max_gbps + 1e-9);
    EXPECT_GT(r.achievedGbps, 0.0);
    EXPECT_EQ(r.packetsProcessed, 256u);
}

TEST(ScalableIov, GeneratorAssignsPasidsPerProcess)
{
    workload::TenantPattern pattern =
        workload::benchmarkProfile(workload::Benchmark::Iperf3)
            .pattern;
    pattern.processesPerTenant = 3;
    workload::scaleInitPhase(pattern, 600);
    workload::TenantLogGenerator gen(pattern, 42);
    const trace::TenantLog log = gen.generate(0, 600);
    std::set<uint16_t> pasids;
    for (const auto &pkt : log.packets)
        pasids.insert(pkt.pasid);
    EXPECT_EQ(pasids.size(), 3u);
}

TEST(ScalableIov, ProcessesTranslateInSeparateAddressSpaces)
{
    // Same gIOVA, different PASID → different domain → different
    // host frame.
    const auto a = iommu::ContextCache::resolve(4, 0);
    const auto b = iommu::ContextCache::resolve(4, 1);
    EXPECT_NE(a.domain, b.domain);

    iommu::PageTableDirectory tables(42);
    tables.get(a.domain).map(0x1000, mem::PageSize::Size4K);
    tables.get(b.domain).map(0x1000, mem::PageSize::Size4K);
    EXPECT_NE(tables.get(a.domain).translate(0x1000).hostAddr,
              tables.get(b.domain).translate(0x1000).hostAddr);
}

TEST(ScalableIov, EndToEndRunWithProcesses)
{
    workload::TenantPattern pattern =
        workload::benchmarkProfile(workload::Benchmark::Iperf3)
            .pattern;
    pattern.processesPerTenant = 6;
    workload::scaleInitPhase(pattern, 400);
    workload::TenantLogGenerator gen(pattern, 42);
    std::vector<trace::TenantLog> logs;
    for (unsigned t = 0; t < 8; ++t)
        logs.push_back(gen.generate(t, 400));
    const auto tr = trace::constructTrace(
        logs, trace::parseInterleaving("RR1"));

    System system(SystemConfig::hypertrio());
    const RunResults r = system.run(tr);
    EXPECT_EQ(r.packetsProcessed, tr.packets.size());
    EXPECT_GT(r.achievedGbps, 0.0);
    // Extra address spaces must cost DevTLB hit rate relative to
    // the single-process run.
    workload::TenantPattern single =
        workload::benchmarkProfile(workload::Benchmark::Iperf3)
            .pattern;
    workload::scaleInitPhase(single, 400);
    workload::TenantLogGenerator gen1(single, 42);
    std::vector<trace::TenantLog> logs1;
    for (unsigned t = 0; t < 8; ++t)
        logs1.push_back(gen1.generate(t, 400));
    const auto tr1 = trace::constructTrace(
        logs1, trace::parseInterleaving("RR1"));
    System sys1(SystemConfig::hypertrio());
    const RunResults r1 = sys1.run(tr1);
    EXPECT_LT(r.devtlbHitRate, r1.devtlbHitRate);
}

TEST(ScalableIov, DidEncodingPreservesSidPartitioning)
{
    // Regression guard: the partitioned caches select their PTag row
    // as "domain mod partitions", and the paper partitions by SID.
    // The DID encoding must therefore keep the SID in its low bits:
    // for every power-of-two partition count the paper uses (8, 32,
    // 64), did % parts must equal sid % parts regardless of PASID.
    for (uint32_t parts : {8u, 32u, 64u}) {
        for (trace::SourceId sid : {0u, 5u, 123u, 1023u}) {
            for (uint16_t pasid : {0, 1, 7, 255}) {
                const auto did =
                    iommu::ContextCache::resolve(sid, pasid).domain;
                EXPECT_EQ(did % parts, sid % parts)
                    << "sid=" << sid << " pasid=" << pasid;
                EXPECT_EQ(iommu::ContextCache::sidOf(did), sid);
            }
        }
    }
}

TEST(ScaleInitPhase, BoundsInitShare)
{
    workload::TenantPattern pattern =
        workload::benchmarkProfile(workload::Benchmark::Mediastream)
            .pattern;
    workload::scaleInitPhase(pattern, 1000);
    const uint64_t init_packets =
        static_cast<uint64_t>(pattern.numInitPages) *
        pattern.accessesPerInitPage;
    EXPECT_LE(init_packets, 1000 / 100); // well under 1%... of log
    EXPECT_GE(pattern.numInitPages, 1u);

    // Long logs keep the full 70-page init group.
    workload::TenantPattern big =
        workload::benchmarkProfile(workload::Benchmark::Mediastream)
            .pattern;
    workload::scaleInitPhase(big, 10'000'000);
    EXPECT_EQ(big.numInitPages, 70u);
    EXPECT_EQ(big.accessesPerInitPage, 60u);
}

} // namespace
} // namespace hypersio::core
