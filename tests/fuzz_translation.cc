/**
 * Deterministic trace fuzzer for the translation path.
 *
 * Replays the adversarial interleavings of workload/adversarial.hh
 * through full System runs with a collecting shadow oracle installed
 * (oracle/shadow.hh) and asserts that not a single invariant breaks.
 * Every run prints a repro line; to replay a failure, re-run with
 *
 *   HYPERSIO_FUZZ_SEED=<seed> ./fuzz_translation
 *
 * Environment knobs (all optional):
 *   HYPERSIO_FUZZ_SEED     base seed (default 20260805)
 *   HYPERSIO_FUZZ_PACKETS  packets per run (default 150)
 *   HYPERSIO_FUZZ_ROUNDS   seeds fuzzed per pattern (default 1)
 *
 * scripts/check_repo.sh runs a longer campaign by raising PACKETS
 * and ROUNDS; the default ctest invocation is a bounded smoke.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/system.hh"
#include "oracle/shadow.hh"
#include "workload/adversarial.hh"
#include "workload/streaming.hh"

namespace hypersio::core
{
namespace
{

uint64_t
envOr(const char *name, uint64_t fallback)
{
    const char *value = std::getenv(name);
    return value ? std::strtoull(value, nullptr, 10) : fallback;
}

/** The system variants each pattern is fuzzed under. */
struct SystemVariant
{
    const char *name;
    SystemConfig (*make)();
};

SystemConfig
makeStressed()
{
    // Small caches + bounded walkers: every structure overflows and
    // the walker queues engage even on short traces.
    SystemConfig config = SystemConfig::hypertrio();
    config.name = "stressed";
    config.device.ptbEntries = 4;
    config.device.devtlb = {16, 4, 4, cache::ReplPolicyKind::LFU, 7};
    config.device.prefetch.bufferEntries = 8; // the paper's PB size
    config.device.prefetch.historyLength = 4;
    config.iommu.iotlb = {64, 4, 1, cache::ReplPolicyKind::LFU, 1,
                          true};
    config.iommu.l2tlb = {32, 4, 4, cache::ReplPolicyKind::LFU, 2};
    config.iommu.l3tlb = {64, 4, 8, cache::ReplPolicyKind::LFU, 3};
    config.iommu.walkers = 2;
    return config;
}

SystemConfig
makeFiveLevel()
{
    SystemConfig config = SystemConfig::base();
    config.name = "base5";
    config.iommu.pagingLevels = 5;
    config.iommu.walkers = 1;
    return config;
}

SystemConfig
makeSubEntry()
{
    // Sub-entry sharing on every structure that supports it, sized
    // small so tags and sub-slots both overflow under fuzzing.
    SystemConfig config = SystemConfig::base();
    config.name = "subentry";
    config.device.devtlb = {16, 4, 1, cache::ReplPolicyKind::LRU, 7};
    config.device.devtlb.subEntries = 4;
    config.iommu.l2tlb = {32, 4, 1, cache::ReplPolicyKind::LRU, 2};
    config.iommu.l2tlb.subEntries = 4;
    config.iommu.l3tlb = {64, 4, 1, cache::ReplPolicyKind::LRU, 3};
    config.iommu.l3tlb.subEntries = 4;
    return config;
}

SystemConfig
makeMmuPrefetch()
{
    // The MMU-aware DMA prefetcher with a small buffer: every issued
    // page is checked against the reference stride detector, and the
    // invalidate-vs-in-flight squash machinery runs constantly.
    SystemConfig config = SystemConfig::base();
    config.name = "mmudma";
    config.device.ptbEntries = 8;
    config.device.prefetch.enabled = true;
    config.device.prefetch.kind = PrefetchKind::MmuDma;
    config.device.prefetch.bufferEntries = 8;
    config.device.prefetch.pagesPerPrefetch = 2;
    return config;
}

constexpr SystemVariant Variants[] = {
    {"base", &SystemConfig::base},
    {"hypertrio", &SystemConfig::hypertrio},
    {"stressed", &makeStressed},
    {"base5", &makeFiveLevel},
    {"subentry", &makeSubEntry},
    {"mmudma", &makeMmuPrefetch},
};

#ifdef HYPERSIO_CHECKED

/** One fuzzed run; returns translation requests checked. */
uint64_t
fuzzOne(workload::AdversarialPattern pattern,
        const SystemVariant &variant, uint64_t seed,
        uint64_t packets)
{
    workload::AdversarialConfig tc;
    tc.tenants = 6;
    tc.packets = packets;
    tc.seed = seed;
    const trace::HyperTrace tr =
        workload::makeAdversarialTrace(pattern, tc);

    SystemConfig config = variant.make();
    config.seed = seed;
    System system(config);

    std::printf("fuzz: pattern=%s config=%s seed=%llu packets=%llu\n",
                workload::adversarialPatternName(pattern),
                variant.name, (unsigned long long)seed,
                (unsigned long long)packets);

    // Collecting checker: gather every violation instead of dying on
    // the first, so a failure reports the full picture.
    oracle::ShadowChecker checker(toShadowConfig(config),
                                  &system.tables(),
                                  /*fail_fast=*/false);
    RunResults results;
    {
        oracle::ShadowScope scope(checker);
        results = system.run(tr);
    }

    EXPECT_EQ(results.packetsProcessed, tr.packets.size());
    EXPECT_GT(checker.eventCount(), 0u)
        << "shadow hooks never fired";
    EXPECT_GT(checker.translationChecks(), 0u);
    EXPECT_EQ(checker.violationCount(), 0u);
    for (const auto &violation : checker.violations()) {
        ADD_FAILURE() << "pattern="
                      << workload::adversarialPatternName(pattern)
                      << " config=" << variant.name
                      << " seed=" << seed << ": " << violation;
    }
    return checker.translationChecks();
}

TEST(FuzzTranslation, AdversarialPatternsUnderShadowOracle)
{
    const uint64_t base_seed = envOr("HYPERSIO_FUZZ_SEED", 20260805);
    const uint64_t packets = envOr("HYPERSIO_FUZZ_PACKETS", 150);
    const uint64_t rounds = envOr("HYPERSIO_FUZZ_ROUNDS", 1);

    uint64_t checked = 0;
    for (uint64_t round = 0; round < rounds; ++round) {
        for (const auto pattern : workload::AllAdversarialPatterns) {
            for (const auto &variant : Variants) {
                checked += fuzzOne(pattern, variant,
                                   base_seed + round, packets);
            }
        }
    }
    // The smoke run alone must exercise well over the 1000 fuzzed
    // requests the harness promises (8 patterns x 4 variants x 150
    // packets x 3 requests each).
    EXPECT_GE(checked, 1000u);
    std::printf("fuzz: %llu translation requests checked\n",
                (unsigned long long)checked);
}

/**
 * Streaming-churn fuzz: tenant arrival/departure storms through
 * runStream with eviction on. The eviction path (table erase, cache
 * retirement, SID recycling, retirement gating on in-flight work) is
 * the newest machinery in the translation path, so it gets fuzzed
 * under every system variant like the adversarial traces do.
 */
uint64_t
fuzzChurnOne(const SystemVariant &variant, uint64_t seed,
             uint64_t packets)
{
    workload::ChurnConfig cc;
    // Scale population so the run produces roughly `packets`
    // accepted packets under the small budgets below.
    cc.population =
        std::max<uint64_t>(8, packets / 24);
    cc.slots = 5;
    cc.seed = seed;
    cc.minBudget = 12;
    cc.maxBudget = 36;
    cc.tailProb = 0.1;
    cc.tailMin = 64;
    cc.tailMax = 160;

    SystemConfig config = variant.make();
    config.seed = seed;
    System system(config);

    std::printf("fuzz: pattern=churn-stream config=%s seed=%llu "
                "population=%u\n",
                variant.name, (unsigned long long)seed,
                cc.population);

    oracle::ShadowChecker checker(toShadowConfig(config),
                                  &system.tables(),
                                  /*fail_fast=*/false);
    workload::ChurnStream stream(cc);
    {
        oracle::ShadowScope scope(checker);
        system.runStream(stream);
    }

    EXPECT_GT(checker.eventCount(), 0u)
        << "shadow hooks never fired";
    EXPECT_GT(checker.translationChecks(), 0u);
    EXPECT_EQ(checker.violationCount(), 0u);
    for (const auto &violation : checker.violations()) {
        ADD_FAILURE() << "pattern=churn-stream config="
                      << variant.name << " seed=" << seed << ": "
                      << violation;
    }
    // Eviction invariants: everyone attached retired, nothing leaks.
    EXPECT_EQ(stream.attaches(), cc.population);
    EXPECT_EQ(system.streamRetirements().size(), cc.population);
    EXPECT_EQ(system.tables().size(), 0u);
    return checker.translationChecks();
}

TEST(FuzzTranslation, StreamingChurnUnderShadowOracle)
{
    const uint64_t base_seed = envOr("HYPERSIO_FUZZ_SEED", 20260805);
    const uint64_t packets = envOr("HYPERSIO_FUZZ_PACKETS", 150);
    const uint64_t rounds = envOr("HYPERSIO_FUZZ_ROUNDS", 1);

    uint64_t checked = 0;
    for (uint64_t round = 0; round < rounds; ++round)
        for (const auto &variant : Variants)
            checked += fuzzChurnOne(variant, base_seed + round,
                                    packets);
    EXPECT_GT(checked, 0u);
    std::printf("fuzz: %llu churn translation requests checked\n",
                (unsigned long long)checked);
}

#else // !HYPERSIO_CHECKED

TEST(FuzzTranslation, AdversarialPatternsUnderShadowOracle)
{
    GTEST_SKIP()
        << "built without HYPERSIO_CHECKED; shadow hooks compiled out";
}

TEST(FuzzTranslation, StreamingChurnUnderShadowOracle)
{
    GTEST_SKIP()
        << "built without HYPERSIO_CHECKED; shadow hooks compiled out";
}

#endif

/**
 * The generator itself must be deterministic in (pattern, config):
 * repro-from-seed depends on it. Runs in every build flavour.
 */
TEST(FuzzTranslation, TraceGenerationIsDeterministic)
{
    for (const auto pattern : workload::AllAdversarialPatterns) {
        workload::AdversarialConfig tc;
        tc.tenants = 4;
        tc.packets = 64;
        tc.seed = 7;
        const auto a = workload::makeAdversarialTrace(pattern, tc);
        const auto b = workload::makeAdversarialTrace(pattern, tc);
        ASSERT_EQ(a.packets.size(), b.packets.size());
        ASSERT_EQ(a.ops.size(), b.ops.size());
        for (size_t i = 0; i < a.packets.size(); ++i) {
            EXPECT_EQ(a.packets[i].sid, b.packets[i].sid);
            EXPECT_EQ(a.packets[i].dataIova, b.packets[i].dataIova);
            EXPECT_EQ(a.packets[i].opBegin, b.packets[i].opBegin);
            EXPECT_EQ(a.packets[i].opCount, b.packets[i].opCount);
        }
    }
}

/** Every pattern produces work for every tenant it claims. */
TEST(FuzzTranslation, PatternsCoverConfiguredTenants)
{
    for (const auto pattern : workload::AllAdversarialPatterns) {
        workload::AdversarialConfig tc;
        tc.tenants = 4;
        tc.packets = 200;
        tc.seed = 11;
        const auto tr = workload::makeAdversarialTrace(pattern, tc);
        EXPECT_EQ(tr.packets.size(), tc.packets);
        EXPECT_GE(tr.numTenants, tc.tenants);
        EXPECT_FALSE(tr.ops.empty());
    }
}

} // namespace
} // namespace hypersio::core
