/** Unit tests for the IOMMU: IOTLB hit path, two-dimensional walk
 *  costs, paging-cache warming, MSHR coalescing, walker-slot limits,
 *  translation faults, and invalidation. */

#include <gtest/gtest.h>

#include "iommu/context_cache.hh"
#include "iommu/iommu.hh"
#include "iommu/keys.hh"

namespace hypersio::iommu
{
namespace
{

struct Fixture
{
    sim::EventQueue queue;
    stats::StatGroup stats{"test"};
    mem::MemoryModel memory{{50 * TicksPerNs, 0}, queue, stats};
    PageTableDirectory tables{42};

    std::unique_ptr<Iommu> make(IommuConfig config = {})
    {
        return std::make_unique<Iommu>(config, queue, stats, memory,
                                       tables);
    }
};

TEST(Keys, TranslationKeyUniqueness)
{
    // Distinct domains, sizes, and frames make distinct keys.
    const auto k1 = translationKey(1, 0x1000, mem::PageSize::Size4K);
    const auto k2 = translationKey(2, 0x1000, mem::PageSize::Size4K);
    const auto k3 = translationKey(1, 0x2000, mem::PageSize::Size4K);
    const auto k4 = translationKey(1, 0x1000, mem::PageSize::Size2M);
    EXPECT_NE(k1, k2);
    EXPECT_NE(k1, k3);
    EXPECT_NE(k1, k4);
    // Same page, different offsets: same key.
    EXPECT_EQ(k1, translationKey(1, 0x1fff, mem::PageSize::Size4K));
}

TEST(Keys, PagingKeyCoversPrefix)
{
    // Two addresses in the same 2 MB region share the level-2 key.
    EXPECT_EQ(pagingKey(1, 0xbbe00000, 2),
              pagingKey(1, 0xbbe12345, 2));
    EXPECT_NE(pagingKey(1, 0xbbe00000, 2),
              pagingKey(1, 0xbc000000, 2));
    EXPECT_NE(pagingKey(1, 0xbbe00000, 2),
              pagingKey(2, 0xbbe00000, 2));
    EXPECT_NE(pagingKey(1, 0xbbe00000, 2),
              pagingKey(1, 0xbbe00000, 3));
}

TEST(ContextCacheTest, MissThenFillThenHit)
{
    ContextCache cc({16, 4, 1, cache::ReplPolicyKind::LRU, 1});
    EXPECT_EQ(cc.lookup(5), nullptr);
    cc.fill(5, 0, ContextCache::resolve(5));
    const ContextEntry *entry = cc.lookup(5);
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->domain, 5u); // pasid 0 → did == sid
    EXPECT_EQ(cc.stats().hits, 1u);

    // Different PASIDs of the same SID map to distinct domains.
    cc.fill(5, 7, ContextCache::resolve(5, 7));
    const ContextEntry *proc = cc.lookup(5, 7);
    ASSERT_NE(proc, nullptr);
    EXPECT_EQ(proc->domain, 7u * ContextCache::SidSpace + 5);
    EXPECT_NE(proc->domain, entry->domain);
}

TEST(IommuTest, FullWalkCostsTableII)
{
    Fixture f;
    auto iommu = f.make();
    f.tables.get(1).map(0x1000, mem::PageSize::Size4K);

    Tick done_at = 0;
    IommuResponse seen;
    iommu->translate({1, 0x1000, mem::PageSize::Size4K, false},
                     [&](const IommuResponse &resp) {
                         seen = resp;
                         done_at = f.queue.now();
                     });
    f.queue.run();
    ASSERT_TRUE(seen.valid);
    EXPECT_FALSE(seen.iotlbHit);
    // Cold caches: full 24-access walk at 50 ns each.
    EXPECT_EQ(done_at, 24 * 50 * TicksPerNs);
}

TEST(IommuTest, FullWalk2MCosts19Accesses)
{
    Fixture f;
    auto iommu = f.make();
    f.tables.get(1).map(0xbbe00000, mem::PageSize::Size2M);
    Tick done_at = 0;
    iommu->translate({1, 0xbbe00000, mem::PageSize::Size2M, false},
                     [&](const IommuResponse &) {
                         done_at = f.queue.now();
                     });
    f.queue.run();
    EXPECT_EQ(done_at, 19 * 50 * TicksPerNs);
}

TEST(IommuTest, IotlbHitIsFast)
{
    Fixture f;
    auto iommu = f.make();
    f.tables.get(1).map(0x1000, mem::PageSize::Size4K);

    iommu->translate({1, 0x1000, mem::PageSize::Size4K, false},
                     [](const IommuResponse &) {});
    f.queue.run();

    Tick start = f.queue.now();
    Tick done_at = 0;
    IommuResponse seen;
    iommu->translate({1, 0x1800, mem::PageSize::Size4K, false},
                     [&](const IommuResponse &resp) {
                         seen = resp;
                         done_at = f.queue.now();
                     });
    f.queue.run();
    ASSERT_TRUE(seen.valid);
    EXPECT_TRUE(seen.iotlbHit);
    EXPECT_EQ(done_at - start, 2 * TicksPerNs);
}

TEST(IommuTest, PagingCachesShortenLaterWalks)
{
    Fixture f;
    auto iommu = f.make();
    // Two 4 KB pages in the same 2 MB region: the second walk should
    // hit the L2 paging cache and cost only 9 accesses.
    f.tables.get(1).map(0x10000000, mem::PageSize::Size4K);
    f.tables.get(1).map(0x10001000, mem::PageSize::Size4K);

    iommu->translate({1, 0x10000000, mem::PageSize::Size4K, false},
                     [](const IommuResponse &) {});
    f.queue.run();

    const Tick start = f.queue.now();
    Tick done_at = 0;
    iommu->translate({1, 0x10001000, mem::PageSize::Size4K, false},
                     [&](const IommuResponse &) {
                         done_at = f.queue.now();
                     });
    f.queue.run();
    EXPECT_EQ(done_at - start, 9 * 50 * TicksPerNs);
}

TEST(IommuTest, L3CacheShortensCrossRegionWalks)
{
    Fixture f;
    auto iommu = f.make();
    // Same 1 GB region, different 2 MB regions: L3 hit → 14 accesses.
    f.tables.get(1).map(0x10000000, mem::PageSize::Size4K);
    f.tables.get(1).map(0x10200000, mem::PageSize::Size4K);

    iommu->translate({1, 0x10000000, mem::PageSize::Size4K, false},
                     [](const IommuResponse &) {});
    f.queue.run();

    const Tick start = f.queue.now();
    Tick done_at = 0;
    iommu->translate({1, 0x10200000, mem::PageSize::Size4K, false},
                     [&](const IommuResponse &) {
                         done_at = f.queue.now();
                     });
    f.queue.run();
    EXPECT_EQ(done_at - start, 14 * 50 * TicksPerNs);
}

TEST(IommuTest, MshrCoalescesConcurrentSamePageWalks)
{
    Fixture f;
    auto iommu = f.make();
    f.tables.get(1).map(0x1000, mem::PageSize::Size4K);

    int completions = 0;
    for (int i = 0; i < 3; ++i) {
        iommu->translate({1, 0x1000, mem::PageSize::Size4K, false},
                         [&](const IommuResponse &resp) {
                             EXPECT_TRUE(resp.valid);
                             ++completions;
                         });
    }
    f.queue.run();
    EXPECT_EQ(completions, 3);
    // One walk served all three requests.
    const auto *walks = f.stats.child("iommu").find("walks");
    const auto *coalesced = f.stats.child("iommu").find("coalesced");
    EXPECT_DOUBLE_EQ(walks->value(), 1.0);
    EXPECT_DOUBLE_EQ(coalesced->value(), 2.0);
}

TEST(IommuTest, WalkerLimitSerializesWalks)
{
    Fixture f;
    IommuConfig config;
    config.walkers = 1;
    auto iommu = f.make(config);
    f.tables.get(1).map(0x1000, mem::PageSize::Size4K);
    f.tables.get(2).map(0x1000, mem::PageSize::Size4K);

    std::vector<Tick> done;
    iommu->translate({1, 0x1000, mem::PageSize::Size4K, false},
                     [&](const IommuResponse &) {
                         done.push_back(f.queue.now());
                     });
    iommu->translate({2, 0x1000, mem::PageSize::Size4K, false},
                     [&](const IommuResponse &) {
                         done.push_back(f.queue.now());
                     });
    EXPECT_EQ(iommu->activeWalks(), 1u);
    EXPECT_EQ(iommu->queuedWalks(), 1u);
    f.queue.run();
    ASSERT_EQ(done.size(), 2u);
    // Serialized: second finishes a full walk after the first.
    EXPECT_EQ(done[0], 24 * 50 * TicksPerNs);
    EXPECT_EQ(done[1], 2 * 24 * 50 * TicksPerNs);
}

TEST(IommuTest, DemandWalksRunBeforeQueuedPrefetches)
{
    Fixture f;
    IommuConfig config;
    config.walkers = 1;
    auto iommu = f.make(config);
    for (mem::DomainId d = 1; d <= 3; ++d)
        f.tables.get(d).map(0x1000, mem::PageSize::Size4K);

    std::vector<int> order;
    // Occupy the walker.
    iommu->translate({1, 0x1000, mem::PageSize::Size4K, false},
                     [&](const IommuResponse &) {
                         order.push_back(1);
                     });
    // Queue a prefetch, then a demand: demand must run first.
    iommu->translate({2, 0x1000, mem::PageSize::Size4K, true},
                     [&](const IommuResponse &) {
                         order.push_back(2);
                     });
    iommu->translate({3, 0x1000, mem::PageSize::Size4K, false},
                     [&](const IommuResponse &) {
                         order.push_back(3);
                     });
    f.queue.run();
    EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

TEST(IommuTest, AgingBoundPromotesStarvedPrefetch)
{
    // Sustained demand traffic must not starve a queued prefetch
    // forever: after `prefetchAgingThreshold` consecutive demand
    // dispatches past the waiting prefetch, it takes the next slot.
    Fixture f;
    IommuConfig config;
    config.walkers = 1;
    config.prefetchAgingThreshold = 2;
    auto iommu = f.make(config);
    for (mem::DomainId d = 1; d <= 7; ++d)
        f.tables.get(d).map(0x1000, mem::PageSize::Size4K);

    std::vector<int> order;
    auto demand = [&](mem::DomainId d) {
        iommu->translate({d, 0x1000, mem::PageSize::Size4K, false},
                         [&order, d](const IommuResponse &) {
                             order.push_back(static_cast<int>(d));
                         });
    };
    // Occupy the walker, queue the prefetch, then pile up demand.
    demand(1);
    iommu->translate({2, 0x1000, mem::PageSize::Size4K, true},
                     [&](const IommuResponse &) {
                         order.push_back(-2);
                     });
    for (mem::DomainId d = 3; d <= 7; ++d)
        demand(d);
    f.queue.run();
    // Two demand walks dispatch past the prefetch (streak 1, 2),
    // then the aging bound promotes it ahead of the remaining three.
    EXPECT_EQ(order, (std::vector<int>{1, 3, 4, -2, 5, 6, 7}));
    EXPECT_EQ(iommu->prefetchPromotions(), 1u);
}

TEST(IommuTest, ZeroAgingThresholdKeepsStrictDemandFirst)
{
    Fixture f;
    IommuConfig config;
    config.walkers = 1;
    config.prefetchAgingThreshold = 0;
    auto iommu = f.make(config);
    for (mem::DomainId d = 1; d <= 7; ++d)
        f.tables.get(d).map(0x1000, mem::PageSize::Size4K);

    std::vector<int> order;
    iommu->translate({1, 0x1000, mem::PageSize::Size4K, false},
                     [&](const IommuResponse &) {
                         order.push_back(1);
                     });
    iommu->translate({2, 0x1000, mem::PageSize::Size4K, true},
                     [&](const IommuResponse &) {
                         order.push_back(-2);
                     });
    for (mem::DomainId d = 3; d <= 7; ++d)
        iommu->translate({d, 0x1000, mem::PageSize::Size4K, false},
                         [&order, d](const IommuResponse &) {
                             order.push_back(static_cast<int>(d));
                         });
    f.queue.run();
    EXPECT_EQ(order, (std::vector<int>{1, 3, 4, 5, 6, 7, -2}));
    EXPECT_EQ(iommu->prefetchPromotions(), 0u);
}

TEST(IommuTest, InvalidateDropsBothSizeKeysOnSizeFlip)
{
    // A remap that flips the page size re-keys the translation: an
    // invalidate that only erased the op's declared size would leave
    // the other flavor's entry alive and stale.
    Fixture f;
    auto iommu = f.make();
    f.tables.get(1).map(0xbbe00000, mem::PageSize::Size2M);
    iommu->translate({1, 0xbbe00000, mem::PageSize::Size2M, false},
                     [](const IommuResponse &) {});
    f.queue.run();
    ASSERT_EQ(iommu->iotlbOccupancy(), 1u);

    // Driver remaps the page as 4K and invalidates under the new
    // size; the 2M-keyed entry must be dropped too.
    f.tables.get(1).unmap(0xbbe00000);
    f.tables.get(1).map(0xbbe00000, mem::PageSize::Size4K);
    iommu->invalidate(1, 0xbbe00000, mem::PageSize::Size4K);
    EXPECT_EQ(iommu->iotlbOccupancy(), 0u);

    // The next 2M-declared request must re-walk and return the
    // fresh 4K mapping, not a stale cached 2M translation.
    IommuResponse seen;
    iommu->translate({1, 0xbbe00000, mem::PageSize::Size2M, false},
                     [&](const IommuResponse &r) { seen = r; });
    f.queue.run();
    ASSERT_TRUE(seen.valid);
    EXPECT_FALSE(seen.iotlbHit);
    EXPECT_EQ(seen.hostAddr,
              f.tables.get(1).translate(0xbbe00000).hostAddr);
}

TEST(IommuTest, UnmappedPageFaults)
{
    Fixture f;
    auto iommu = f.make();
    IommuResponse seen;
    seen.valid = true;
    iommu->translate({1, 0xdead000, mem::PageSize::Size4K, false},
                     [&](const IommuResponse &resp) { seen = resp; });
    f.queue.run();
    EXPECT_FALSE(seen.valid);
    const auto *faults = f.stats.child("iommu").find("faults");
    EXPECT_DOUBLE_EQ(faults->value(), 1.0);
}

TEST(IommuTest, FaultsAreNotCached)
{
    Fixture f;
    auto iommu = f.make();
    iommu->translate({1, 0x5000, mem::PageSize::Size4K, false},
                     [](const IommuResponse &) {});
    f.queue.run();
    // Map the page afterwards; the next translation must succeed.
    f.tables.get(1).map(0x5000, mem::PageSize::Size4K);
    IommuResponse seen;
    iommu->translate({1, 0x5000, mem::PageSize::Size4K, false},
                     [&](const IommuResponse &resp) { seen = resp; });
    f.queue.run();
    EXPECT_TRUE(seen.valid);
}

TEST(IommuTest, InvalidateDropsIotlbEntry)
{
    Fixture f;
    auto iommu = f.make();
    f.tables.get(1).map(0x1000, mem::PageSize::Size4K);
    iommu->translate({1, 0x1000, mem::PageSize::Size4K, false},
                     [](const IommuResponse &) {});
    f.queue.run();

    iommu->invalidate(1, 0x1000, mem::PageSize::Size4K);
    IommuResponse seen;
    iommu->translate({1, 0x1000, mem::PageSize::Size4K, false},
                     [&](const IommuResponse &resp) { seen = resp; });
    f.queue.run();
    EXPECT_TRUE(seen.valid);
    EXPECT_FALSE(seen.iotlbHit); // had to walk again
}

TEST(IommuTest, InvalidateKeepsPagingStructureCaches)
{
    // A leaf unmap changes no intermediate table pointers, so
    // invalidate() must drop only the IOTLB entry: the re-walk
    // starts from the surviving L2 entry (9 accesses, not 24).
    Fixture f;
    auto iommu = f.make();
    f.tables.get(1).map(0x10000000, mem::PageSize::Size4K);
    iommu->translate({1, 0x10000000, mem::PageSize::Size4K, false},
                     [](const IommuResponse &) {});
    f.queue.run();
    ASSERT_EQ(iommu->iotlbOccupancy(), 1u);
    ASSERT_EQ(iommu->l2Occupancy(), 1u);
    ASSERT_EQ(iommu->l3Occupancy(), 1u);

    iommu->invalidate(1, 0x10000000, mem::PageSize::Size4K);
    EXPECT_EQ(iommu->iotlbOccupancy(), 0u);
    EXPECT_EQ(iommu->l2Occupancy(), 1u); // survived
    EXPECT_EQ(iommu->l3Occupancy(), 1u); // survived

    const Tick start = f.queue.now();
    Tick done_at = 0;
    IommuResponse seen;
    iommu->translate({1, 0x10000000, mem::PageSize::Size4K, false},
                     [&](const IommuResponse &resp) {
                         seen = resp;
                         done_at = f.queue.now();
                     });
    f.queue.run();
    ASSERT_TRUE(seen.valid);
    EXPECT_FALSE(seen.iotlbHit);
    EXPECT_EQ(done_at - start, 9 * 50 * TicksPerNs);
}

TEST(IommuTest, InvalidateOfUncachedPageIsHarmless)
{
    Fixture f;
    auto iommu = f.make();
    iommu->invalidate(1, 0xabc000, mem::PageSize::Size4K);
    EXPECT_EQ(iommu->iotlbOccupancy(), 0u);
}

TEST(IommuTest, FlushAllDropsPagingCachesToo)
{
    Fixture f;
    auto iommu = f.make();
    f.tables.get(1).map(0x10000000, mem::PageSize::Size4K);
    f.tables.get(1).map(0x10001000, mem::PageSize::Size4K);
    iommu->translate({1, 0x10000000, mem::PageSize::Size4K, false},
                     [](const IommuResponse &) {});
    f.queue.run();
    iommu->flushAll();

    const Tick start = f.queue.now();
    Tick done_at = 0;
    iommu->translate({1, 0x10001000, mem::PageSize::Size4K, false},
                     [&](const IommuResponse &) {
                         done_at = f.queue.now();
                     });
    f.queue.run();
    // Full walk again: 24 accesses, not the L2-shortened 9.
    EXPECT_EQ(done_at - start, 24 * 50 * TicksPerNs);
}

TEST(IommuTest, TranslationsFromDifferentDomainsDiffer)
{
    Fixture f;
    auto iommu = f.make();
    f.tables.get(1).map(0x1000, mem::PageSize::Size4K);
    f.tables.get(2).map(0x1000, mem::PageSize::Size4K);
    mem::Addr a1 = 0;
    mem::Addr a2 = 0;
    iommu->translate({1, 0x1000, mem::PageSize::Size4K, false},
                     [&](const IommuResponse &r) { a1 = r.hostAddr; });
    iommu->translate({2, 0x1000, mem::PageSize::Size4K, false},
                     [&](const IommuResponse &r) { a2 = r.hostAddr; });
    f.queue.run();
    EXPECT_NE(a1, a2);
}

TEST(IommuTest, FiveLevelWalkCosts35Accesses)
{
    Fixture f;
    IommuConfig config;
    config.pagingLevels = 5;
    auto iommu = f.make(config);
    f.tables.get(1).map(0x1000, mem::PageSize::Size4K);
    Tick done_at = 0;
    iommu->translate({1, 0x1000, mem::PageSize::Size4K, false},
                     [&](const IommuResponse &) {
                         done_at = f.queue.now();
                     });
    f.queue.run();
    // 5-level 2-D walk: 6 accesses per guest level * 5 + 5 = 35.
    EXPECT_EQ(done_at, 35 * 50 * TicksPerNs);
}

TEST(IommuTest, FiveLevelPartialWalksShortenToo)
{
    Fixture f;
    IommuConfig config;
    config.pagingLevels = 5;
    auto iommu = f.make(config);
    f.tables.get(1).map(0x10000000, mem::PageSize::Size4K);
    f.tables.get(1).map(0x10001000, mem::PageSize::Size4K);
    iommu->translate({1, 0x10000000, mem::PageSize::Size4K, false},
                     [](const IommuResponse &) {});
    f.queue.run();
    const Tick start = f.queue.now();
    Tick done_at = 0;
    iommu->translate({1, 0x10001000, mem::PageSize::Size4K, false},
                     [&](const IommuResponse &) {
                         done_at = f.queue.now();
                     });
    f.queue.run();
    // L2 hit leaves one guest level: 6*1 + 5 = 11 accesses.
    EXPECT_EQ(done_at - start, 11 * 50 * TicksPerNs);
}

TEST(PageTableDirectoryTest, LazyCreation)
{
    PageTableDirectory dir(42);
    EXPECT_EQ(dir.find(3), nullptr);
    dir.get(3).map(0x1000, mem::PageSize::Size4K);
    ASSERT_NE(dir.find(3), nullptr);
    EXPECT_EQ(dir.size(), 1u);
    EXPECT_EQ(dir.get(3).size(), 1u);
}

} // namespace
} // namespace hypersio::iommu
