/** Unit tests for the util library: bit ops, RNG, strings, units. */

#include <gtest/gtest.h>

#include "util/bitfield.hh"
#include "util/rng.hh"
#include "util/str.hh"
#include "util/units.hh"

namespace hypersio
{
namespace
{

TEST(Bitfield, BitsExtractsInclusiveRange)
{
    EXPECT_EQ(bits(0xff00, 15, 8), 0xffu);
    EXPECT_EQ(bits(0xff00, 7, 0), 0x00u);
    EXPECT_EQ(bits(0xdeadbeef, 31, 16), 0xdeadu);
    EXPECT_EQ(bits(~uint64_t(0), 63, 0), ~uint64_t(0));
}

TEST(Bitfield, MaskCoversRange)
{
    EXPECT_EQ(mask(3, 0), 0xfu);
    EXPECT_EQ(mask(15, 8), 0xff00u);
    EXPECT_EQ(mask(63, 0), ~uint64_t(0));
}

TEST(Bitfield, PowerOf2)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(4096));
    EXPECT_FALSE(isPowerOf2(4097));
}

TEST(Bitfield, Log2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(4096), 12u);
    EXPECT_EQ(floorLog2(4097), 12u);
    EXPECT_EQ(ceilLog2(4096), 12u);
    EXPECT_EQ(ceilLog2(4097), 13u);
    EXPECT_EQ(ceilLog2(1), 0u);
}

TEST(Bitfield, Rounding)
{
    EXPECT_EQ(roundUp(4095, 4096), 4096u);
    EXPECT_EQ(roundUp(4096, 4096), 4096u);
    EXPECT_EQ(roundDown(4097, 4096), 4096u);
}

TEST(Rng, DeterministicFromSeed)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 4);
}

TEST(Rng, BelowRespectsBound)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
    EXPECT_EQ(rng.below(0), 0u);
    EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(9);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        uint64_t v = rng.range(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        saw_lo |= v == 3;
        saw_hi |= v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 10000;
    for (int i = 0; i < n; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, SplitmixMixesInput)
{
    // Adjacent inputs should produce wildly different outputs.
    EXPECT_NE(splitmix64(1), splitmix64(2));
    EXPECT_NE(splitmix64(1) >> 32, splitmix64(2) >> 32);
    EXPECT_NE(hashCombine(1, 2), hashCombine(2, 1));
}

TEST(Str, Split)
{
    auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(parts[3], "c");
    EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(Str, Trim)
{
    EXPECT_EQ(trim("  x  "), "x");
    EXPECT_EQ(trim("x"), "x");
    EXPECT_EQ(trim("   "), "");
}

TEST(Str, ParseU64)
{
    uint64_t v = 0;
    EXPECT_TRUE(parseU64("42", v));
    EXPECT_EQ(v, 42u);
    EXPECT_TRUE(parseU64("0x10", v));
    EXPECT_EQ(v, 16u);
    EXPECT_TRUE(parseU64("4k", v));
    EXPECT_EQ(v, 4096u);
    EXPECT_TRUE(parseU64("2m", v));
    EXPECT_EQ(v, 2u << 20);
    EXPECT_TRUE(parseU64("1g", v));
    EXPECT_EQ(v, 1u << 30);
    EXPECT_FALSE(parseU64("", v));
    EXPECT_FALSE(parseU64("abc", v));
    EXPECT_FALSE(parseU64("12x", v));
}

TEST(Str, ParseDouble)
{
    double v = 0;
    EXPECT_TRUE(parseDouble("1.5", v));
    EXPECT_DOUBLE_EQ(v, 1.5);
    EXPECT_FALSE(parseDouble("zz", v));
    EXPECT_FALSE(parseDouble("", v));
}

TEST(Str, ParseVmHwmKibFindsField)
{
    // A trimmed-down but format-faithful /proc/self/status blob.
    const char *status =
        "Name:\thyperscale_bench\n"
        "VmPeak:\t  123456 kB\n"
        "VmHWM:\t   98304 kB\n"
        "VmRSS:\t   65536 kB\n";
    uint64_t kib = 0;
    EXPECT_TRUE(parseVmHwmKib(status, kib));
    EXPECT_EQ(kib, 98304u);
}

TEST(Str, ParseVmHwmKibRejectsMissingOrMalformed)
{
    uint64_t kib = 7;
    // Absent field: must report failure, never default to 0 — an
    // RSS-budget gate reading 0 would pass vacuously.
    EXPECT_FALSE(parseVmHwmKib("Name:\tx\nVmRSS:\t1 kB\n", kib));
    EXPECT_FALSE(parseVmHwmKib("", kib));
    // Prefix match must not bite: VmHWMx is not VmHWM.
    EXPECT_FALSE(parseVmHwmKib("VmHWMx:\t12 kB\n", kib));
    // Malformed value or wrong unit.
    EXPECT_FALSE(parseVmHwmKib("VmHWM:\tpotato kB\n", kib));
    EXPECT_FALSE(parseVmHwmKib("VmHWM:\t12 MB\n", kib));
    EXPECT_FALSE(parseVmHwmKib("VmHWM:\t12\n", kib));
    EXPECT_EQ(kib, 7u); // untouched on failure
}

TEST(Str, ParseVmHwmKibLastLineWithoutNewline)
{
    uint64_t kib = 0;
    EXPECT_TRUE(parseVmHwmKib("VmHWM:     42 kB", kib));
    EXPECT_EQ(kib, 42u);
}

TEST(Str, ParseVmRssKibFindsFieldIndependentlyOfVmHwm)
{
    const char *status =
        "Name:\tsoak_bench\n"
        "VmPeak:\t  123456 kB\n"
        "VmHWM:\t   98304 kB\n"
        "VmRSS:\t   65536 kB\n";
    uint64_t kib = 0;
    EXPECT_TRUE(parseVmRssKib(status, kib));
    EXPECT_EQ(kib, 65536u);
    // The two parsers must not shadow each other: same blob, each
    // finds its own field.
    EXPECT_TRUE(parseVmHwmKib(status, kib));
    EXPECT_EQ(kib, 98304u);
}

TEST(Str, ParseVmRssKibRejectsMissingOrMalformed)
{
    uint64_t kib = 7;
    EXPECT_FALSE(parseVmRssKib("Name:\tx\nVmHWM:\t1 kB\n", kib));
    EXPECT_FALSE(parseVmRssKib("", kib));
    EXPECT_FALSE(parseVmRssKib("VmRSSx:\t12 kB\n", kib));
    EXPECT_FALSE(parseVmRssKib("VmRSS:\tpotato kB\n", kib));
    EXPECT_FALSE(parseVmRssKib("VmRSS:\t12 MB\n", kib));
    EXPECT_EQ(kib, 7u); // untouched on failure
}

TEST(Str, Strprintf)
{
    EXPECT_EQ(strprintf("%d-%s", 7, "x"), "7-x");
    EXPECT_EQ(strprintf("%s", ""), "");
}

TEST(Str, FormatBytes)
{
    EXPECT_EQ(formatBytes(512), "512B");
    EXPECT_EQ(formatBytes(2 << 20), "2.0MiB");
}

TEST(Units, PacketSerialization)
{
    // 1542 B at 200 Gb/s = 61.68 ns.
    EXPECT_EQ(serializationTicks(1542, 200.0), 61680u);
    // 1542 B at 10 Gb/s = 1233.6 ns.
    EXPECT_EQ(serializationTicks(1542, 10.0), 1233600u);
}

TEST(Units, AchievedBandwidth)
{
    // 1542 bytes in 61.68 ns is exactly 200 Gb/s.
    EXPECT_NEAR(achievedGbps(1542, 61680), 200.0, 1e-9);
    EXPECT_DOUBLE_EQ(achievedGbps(1000, 0), 0.0);
}

TEST(Units, TickConversions)
{
    EXPECT_EQ(nsToTicks(1.0), TicksPerNs);
    EXPECT_DOUBLE_EQ(ticksToNs(1500), 1.5);
    EXPECT_DOUBLE_EQ(ticksToSec(TicksPerSec), 1.0);
}

} // namespace
} // namespace hypersio
