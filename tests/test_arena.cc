/** Unit tests for the bump (arena/epoch) allocator used by the
 *  streaming-run retirement transients. */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "util/arena.hh"

namespace hypersio::util
{
namespace
{

TEST(Arena, AllocArrayIsAlignedAndWritable)
{
    Arena arena;
    uint64_t *a = arena.allocArray<uint64_t>(32);
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % alignof(uint64_t),
              0u);
    for (size_t i = 0; i < 32; ++i)
        a[i] = i * 3;
    uint32_t *b = arena.allocArray<uint32_t>(7);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % alignof(uint32_t),
              0u);
    // The second allocation must not alias the first.
    std::memset(b, 0xff, 7 * sizeof(uint32_t));
    for (size_t i = 0; i < 32; ++i)
        EXPECT_EQ(a[i], i * 3);
}

TEST(Arena, ZeroCountReturnsNonNull)
{
    Arena arena;
    EXPECT_NE(arena.allocArray<int>(0), nullptr);
}

TEST(Arena, RewindReusesTheSameStorage)
{
    Arena arena(256);
    const Arena::Marker marker = arena.mark();
    void *first = arena.allocate(64, 8);
    arena.rewind(marker);
    void *second = arena.allocate(64, 8);
    EXPECT_EQ(first, second);
    EXPECT_EQ(arena.chunks(), 1u);
}

TEST(Arena, ScopeRewindsOnExit)
{
    Arena arena(256);
    void *outer = arena.allocate(16, 8);
    void *inner_ptr = nullptr;
    {
        Arena::Scope scope(arena);
        inner_ptr = arena.allocate(64, 8);
        ASSERT_NE(inner_ptr, nullptr);
    }
    // The scope's allocations are reclaimed; the outer one survives
    // and the next allocation lands exactly where the scope's did.
    EXPECT_EQ(arena.allocate(64, 8), inner_ptr);
    EXPECT_NE(outer, inner_ptr);
}

TEST(Arena, NestedScopesRewindLifo)
{
    Arena arena(256);
    Arena::Scope outer(arena);
    void *a = arena.allocate(32, 8);
    void *b = nullptr;
    {
        Arena::Scope inner(arena);
        b = arena.allocate(32, 8);
    }
    EXPECT_EQ(arena.allocate(32, 8), b);
    ASSERT_NE(a, nullptr);
}

TEST(Arena, GrowsAcrossChunksWhenFull)
{
    Arena arena(128);
    // Three allocations that cannot share one 128-byte chunk.
    void *a = arena.allocate(100, 8);
    void *b = arena.allocate(100, 8);
    void *c = arena.allocate(100, 8);
    EXPECT_NE(a, b);
    EXPECT_NE(b, c);
    EXPECT_EQ(arena.chunks(), 3u);
    EXPECT_GE(arena.capacityBytes(), 3u * 100u);
}

TEST(Arena, OversizedRequestGetsItsOwnChunk)
{
    Arena arena(64);
    void *big = arena.allocate(4096, 16);
    ASSERT_NE(big, nullptr);
    std::memset(big, 0xab, 4096); // the chunk really is that big
    EXPECT_GE(arena.capacityBytes(), 4096u);
}

TEST(Arena, ResetRetainsChunksAndStopsAllocating)
{
    Arena arena(128);
    for (int round = 0; round < 4; ++round) {
        arena.reset();
        (void)arena.allocate(100, 8);
        (void)arena.allocate(100, 8);
    }
    // Steady state: the chunks from round 0 serve every later round.
    EXPECT_EQ(arena.chunks(), 2u);
}

TEST(Arena, MixedAlignmentsStayAligned)
{
    Arena arena;
    (void)arena.allocArray<char>(3); // misalign the bump cursor
    double *d = arena.allocArray<double>(4);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(d) % alignof(double), 0u);
    (void)arena.allocArray<char>(1);
    long double *ld = arena.allocArray<long double>(2);
    EXPECT_EQ(
        reinterpret_cast<uintptr_t>(ld) % alignof(long double), 0u);
}

} // namespace
} // namespace hypersio::util
