/** Unit tests for the Translation Prefetching Scheme: SID-predictor
 *  training, Prefetch Buffer semantics, and the chipset-side IOVA
 *  History Reader. */

#include <gtest/gtest.h>

#include "core/chipset.hh"
#include "core/prefetch.hh"

namespace hypersio::core
{
namespace
{

TEST(SidPredictor, PredictsStrideUnderRoundRobin)
{
    // RR over 8 tenants with history length 4: predict(s) must
    // converge to (s + 4) % 8.
    SidPredictor pred(4);
    for (int round = 0; round < 3; ++round)
        for (trace::SourceId s = 0; s < 8; ++s)
            pred.train(s);
    for (trace::SourceId s = 0; s < 8; ++s) {
        auto p = pred.predict(s);
        ASSERT_TRUE(p.has_value());
        EXPECT_EQ(*p, (s + 4) % 8);
    }
}

TEST(SidPredictor, NoPredictionBeforeWindowFills)
{
    SidPredictor pred(10);
    for (trace::SourceId s = 0; s < 10; ++s) {
        EXPECT_FALSE(pred.predict(s).has_value());
        pred.train(s);
    }
    // The 11th observation creates the first table entry.
    pred.train(10);
    EXPECT_TRUE(pred.predict(0).has_value());
}

TEST(SidPredictor, AdaptsWhenScheduleChanges)
{
    SidPredictor pred(2);
    // First schedule: 0,1,2 repeating → predict(0) == 2.
    for (int i = 0; i < 9; ++i)
        pred.train(i % 3);
    ASSERT_TRUE(pred.predict(0).has_value());
    EXPECT_EQ(*pred.predict(0), 2u);
    // New schedule: 0,5 repeating → predict(0) becomes 0 (2 ahead).
    for (int i = 0; i < 10; ++i)
        pred.train(i % 2 == 0 ? 0 : 5);
    EXPECT_EQ(*pred.predict(0), 0u);
}

TEST(SidPredictor, ShrinkDrainsWindowWithNewStride)
{
    // Regression: shrinking the history length drains the window
    // through the same pairing rule train() uses. The old code paired
    // every evicted SID with _window.back(), so after observing
    // 0..7 with H=4 (window [4,5,6,7]) a shrink to H=1 trained
    // predict(4..6) to all answer 7 instead of the next SID.
    SidPredictor pred(4);
    for (trace::SourceId s = 0; s < 8; ++s)
        pred.train(s);
    pred.setHistoryLength(1);
    ASSERT_TRUE(pred.predict(4).has_value());
    EXPECT_EQ(*pred.predict(4), 5u);
    EXPECT_EQ(*pred.predict(5), 6u);
    EXPECT_EQ(*pred.predict(6), 7u);
    // Subsequent training keeps the one-entry window semantics.
    pred.train(9);
    EXPECT_EQ(*pred.predict(7), 9u);
}

TEST(SidPredictor, HistoryLengthReconfiguration)
{
    SidPredictor pred(8);
    for (int i = 0; i < 32; ++i)
        pred.train(i % 16);
    pred.setHistoryLength(2);
    EXPECT_EQ(pred.historyLength(), 2u);
    for (int i = 0; i < 32; ++i)
        pred.train(i % 16);
    EXPECT_EQ(*pred.predict(3), 5u);
}

PrefetchConfig
pbConfig(unsigned entries = 4)
{
    PrefetchConfig config;
    config.enabled = true;
    config.bufferEntries = entries;
    config.historyLength = 4;
    config.pagesPerPrefetch = 2;
    return config;
}

TEST(PrefetchUnit, FillThenConsumeOnHit)
{
    PrefetchUnit pu(pbConfig());
    pu.fill(1, 0x1000, mem::PageSize::Size4K, 0xAA000);
    mem::Addr addr = 0;
    EXPECT_TRUE(pu.lookup(1, 0x1234, mem::PageSize::Size4K, addr));
    EXPECT_EQ(addr, 0xAA000u);
    // Consume-on-hit: the second lookup misses.
    EXPECT_FALSE(pu.lookup(1, 0x1234, mem::PageSize::Size4K, addr));
}

TEST(PrefetchUnit, MissesAcrossDomainsAndSizes)
{
    PrefetchUnit pu(pbConfig());
    pu.fill(1, 0x1000, mem::PageSize::Size4K, 0xAA000);
    mem::Addr addr = 0;
    EXPECT_FALSE(pu.lookup(2, 0x1000, mem::PageSize::Size4K, addr));
    EXPECT_FALSE(pu.lookup(1, 0x1000, mem::PageSize::Size2M, addr));
}

TEST(PrefetchUnit, CapacityEvictsOldest)
{
    PrefetchUnit pu(pbConfig(2));
    pu.fill(1, 0x1000, mem::PageSize::Size4K, 1);
    pu.fill(1, 0x2000, mem::PageSize::Size4K, 2);
    pu.fill(1, 0x3000, mem::PageSize::Size4K, 3); // evicts 0x1000
    mem::Addr addr = 0;
    EXPECT_FALSE(pu.lookup(1, 0x1000, mem::PageSize::Size4K, addr));
    EXPECT_TRUE(pu.lookup(1, 0x2000, mem::PageSize::Size4K, addr));
    EXPECT_TRUE(pu.lookup(1, 0x3000, mem::PageSize::Size4K, addr));
}

TEST(PrefetchUnit, EightEntryBufferEvictsInLruOrder)
{
    // The paper's PB is 8 fully-associative entries. Fill all 8,
    // then keep filling: evictions must leave in insertion (LRU)
    // order, one per fill, and fill() must report each victim.
    PrefetchUnit pu(pbConfig(8));
    for (mem::Iova page = 0; page < 8; ++page) {
        EXPECT_EQ(pu.fill(1, (page + 1) << 12, mem::PageSize::Size4K,
                          page + 1),
                  std::nullopt);
    }
    EXPECT_EQ(pu.bufferOccupancy(), 8u);

    mem::Addr addr = 0;
    for (mem::Iova page = 8; page < 12; ++page) {
        const auto evicted = pu.fill(
            1, (page + 1) << 12, mem::PageSize::Size4K, page + 1);
        ASSERT_TRUE(evicted.has_value());
        // The victim is the oldest resident fill, 8 pages back.
        const mem::Iova victim = (page - 8 + 1) << 12;
        EXPECT_EQ(*evicted,
                  iommu::translationKey(1, victim,
                                        mem::PageSize::Size4K));
        EXPECT_FALSE(
            pu.lookup(1, victim, mem::PageSize::Size4K, addr));
        EXPECT_EQ(pu.bufferOccupancy(), 8u);
    }
    // The 8 most recent fills are all still resident.
    for (mem::Iova page = 4; page < 12; ++page) {
        EXPECT_TRUE(pu.lookup(1, (page + 1) << 12,
                              mem::PageSize::Size4K, addr));
    }
}

TEST(PrefetchUnit, ConsumedEntriesFreeSlotsWithoutEviction)
{
    PrefetchUnit pu(pbConfig(8));
    for (mem::Iova page = 0; page < 8; ++page)
        pu.fill(1, (page + 1) << 12, mem::PageSize::Size4K, 1);
    // A hit consumes its entry, so the next fill needs no victim.
    mem::Addr addr = 0;
    ASSERT_TRUE(pu.lookup(1, 0x3000, mem::PageSize::Size4K, addr));
    EXPECT_EQ(pu.bufferOccupancy(), 7u);
    EXPECT_EQ(pu.fill(1, 0x20000, mem::PageSize::Size4K, 2),
              std::nullopt);
    EXPECT_EQ(pu.bufferOccupancy(), 8u);
}

TEST(SidPredictor, MispredictsAfterPhaseShiftThenRetrains)
{
    // Beyond the shrink regression: a schedule reversal makes every
    // learned pairing wrong (stale, not absent), and sustained
    // training under the new schedule must repair all of them.
    // History length 3 with 8 tenants keeps the two phases distinct:
    // (s + 3) % 8 != (s - 3) % 8 for every s.
    SidPredictor pred(3);
    const unsigned tenants = 8;
    // Phase 1: ascending round-robin. predict(s) → (s + 3) % 8.
    for (int i = 0; i < 32; ++i)
        pred.train(i % tenants);
    for (trace::SourceId s = 0; s < tenants; ++s)
        ASSERT_EQ(*pred.predict(s), (s + 3) % tenants);

    // Phase 2: descending round-robin 7,6,5,… — three packets after
    // SID s the reversed cycle delivers (s - 3) mod 8, so every
    // stale phase-1 entry must end up overwritten.
    for (int i = 0; i < 32; ++i)
        pred.train(tenants - 1 - (i % tenants));
    for (trace::SourceId s = 0; s < tenants; ++s) {
        ASSERT_TRUE(pred.predict(s).has_value());
        EXPECT_EQ(*pred.predict(s), (s + tenants - 3) % tenants)
            << "sid " << s << " kept its stale phase-1 pairing";
    }
}

TEST(SidPredictor, RetrainsAfterTenantSetChanges)
{
    // A tenant disappears and a new SID joins: every live pairing is
    // replaced once training resumes on the new schedule.
    SidPredictor pred(2);
    for (int i = 0; i < 12; ++i)
        pred.train(i % 3); // 0,1,2 cycle
    ASSERT_EQ(*pred.predict(0), 2u);
    ASSERT_EQ(*pred.predict(1), 0u);
    // Tenant 2 leaves; the 0,1,9 cycle takes over.
    const trace::SourceId cycle[] = {0, 1, 9};
    for (int i = 0; i < 12; ++i)
        pred.train(cycle[i % 3]);
    EXPECT_EQ(*pred.predict(0), 9u);
    EXPECT_EQ(*pred.predict(1), 0u);
    EXPECT_EQ(*pred.predict(9), 1u);
    // The departed tenant's entry was retrained one last time as it
    // left the window: it pairs with the new cycle, not with a SID
    // from the dead schedule.
    EXPECT_EQ(*pred.predict(2), 1u);
}

TEST(PrefetchUnit, InvalidateDropsEntry)
{
    PrefetchUnit pu(pbConfig());
    pu.fill(3, 0xbbe00000, mem::PageSize::Size2M, 0xCC);
    pu.invalidate(3, 0xbbe00000, mem::PageSize::Size2M);
    mem::Addr addr = 0;
    EXPECT_FALSE(
        pu.lookup(3, 0xbbe00000, mem::PageSize::Size2M, addr));
}

struct ReaderFixture
{
    sim::EventQueue queue;
    stats::StatGroup stats{"test"};
    mem::MemoryModel memory{{50 * TicksPerNs, 0}, queue, stats};
    iommu::PageTableDirectory tables{42};
    iommu::Iommu iommu{iommu::IommuConfig{}, queue, stats, memory,
                       tables};

    struct Fill
    {
        mem::DomainId did;
        mem::Iova iova;
        mem::Addr hostAddr;
    };
    std::vector<Fill> fills;

    HistoryReader
    makeReader(const PrefetchConfig &config)
    {
        return HistoryReader(
            config, queue, stats, iommu, memory,
            [this](mem::DomainId did, mem::Iova iova,
                   mem::PageSize, mem::Addr host) {
                fills.push_back({did, iova, host});
            });
    }
};

TEST(HistoryReader, PrefetchesMostRecentDistinctPages)
{
    ReaderFixture f;
    HistoryReader reader = f.makeReader(pbConfig());
    f.tables.get(1).map(0x34800000, mem::PageSize::Size4K);
    f.tables.get(1).map(0xbbe00000, mem::PageSize::Size2M);
    f.tables.get(1).map(0xf0000000, mem::PageSize::Size4K);

    // Observed order: old, then the two most recent.
    reader.observe(1, 0xf0000000, mem::PageSize::Size4K);
    reader.observe(1, 0x34800000, mem::PageSize::Size4K);
    reader.observe(1, 0xbbe00010, mem::PageSize::Size2M);

    reader.prefetch(1);
    f.queue.run();

    ASSERT_EQ(f.fills.size(), 2u);
    // MRU first: data page, then the control page.
    EXPECT_EQ(f.fills[0].iova, 0xbbe00000u);
    EXPECT_EQ(f.fills[1].iova, 0x34800000u);
    for (const auto &fill : f.fills)
        EXPECT_NE(fill.hostAddr, 0u);
}

TEST(HistoryReader, DuplicateObservationsMoveToFront)
{
    ReaderFixture f;
    HistoryReader reader = f.makeReader(pbConfig());
    f.tables.get(1).map(0x1000, mem::PageSize::Size4K);
    f.tables.get(1).map(0x2000, mem::PageSize::Size4K);
    reader.observe(1, 0x1000, mem::PageSize::Size4K);
    reader.observe(1, 0x2000, mem::PageSize::Size4K);
    reader.observe(1, 0x1000, mem::PageSize::Size4K); // refresh
    reader.prefetch(1);
    f.queue.run();
    ASSERT_EQ(f.fills.size(), 2u);
    EXPECT_EQ(f.fills[0].iova, 0x1000u);
}

TEST(HistoryReader, DeduplicatesInFlightPrefetches)
{
    ReaderFixture f;
    HistoryReader reader = f.makeReader(pbConfig());
    f.tables.get(1).map(0x1000, mem::PageSize::Size4K);
    reader.observe(1, 0x1000, mem::PageSize::Size4K);
    reader.prefetch(1);
    reader.prefetch(1); // dropped: already in flight
    f.queue.run();
    EXPECT_EQ(reader.prefetchesStarted(), 1u);
    EXPECT_EQ(reader.prefetchesDeduped(), 1u);
    // After completion a new prefetch may start.
    reader.prefetch(1);
    f.queue.run();
    EXPECT_EQ(reader.prefetchesStarted(), 2u);
}

TEST(HistoryReader, UnknownTenantIsIgnored)
{
    ReaderFixture f;
    HistoryReader reader = f.makeReader(pbConfig());
    reader.prefetch(77); // no history yet
    f.queue.run();
    EXPECT_EQ(reader.prefetchesStarted(), 0u);
    EXPECT_TRUE(f.fills.empty());
}

TEST(HistoryReader, ChargesHistoryReadLatency)
{
    ReaderFixture f;
    PrefetchConfig config = pbConfig();
    config.historyReadAccesses = 2;
    HistoryReader reader = f.makeReader(config);
    f.tables.get(1).map(0x1000, mem::PageSize::Size4K);
    reader.observe(1, 0x1000, mem::PageSize::Size4K);
    reader.prefetch(1);
    f.queue.run();
    // 2 history reads + 24-access walk, serialized chains of 50 ns.
    EXPECT_EQ(f.queue.now(), (2 + 24) * 50 * TicksPerNs);
}

// ---- MMU-aware DMA stride detector (PrefetchKind::MmuDma) ------------

PrefetchConfig
mmuConfig(unsigned pages = 2)
{
    PrefetchConfig config;
    config.enabled = true;
    config.kind = PrefetchKind::MmuDma;
    config.bufferEntries = 8;
    config.pagesPerPrefetch = pages;
    return config;
}

TEST(MmuStride, LocksOntoStrideAndPredictsAhead)
{
    PrefetchUnit pu(mmuConfig());
    mem::Iova pages[4] = {};
    mem::PageSize size = mem::PageSize::Size2M;
    // First access primes, second establishes the stride candidate
    // (confidence 0 — no prediction yet).
    pu.observeAccess(1, trace::ReqClass::Data, 0x1000,
                     mem::PageSize::Size4K);
    pu.observeAccess(1, trace::ReqClass::Data, 0x2010,
                     mem::PageSize::Size4K);
    EXPECT_EQ(pu.predictStrided(1, trace::ReqClass::Data, pages,
                                size),
              0u);
    // Third access confirms the +0x1000 stride.
    pu.observeAccess(1, trace::ReqClass::Data, 0x3400,
                     mem::PageSize::Size4K);
    ASSERT_EQ(pu.predictStrided(1, trace::ReqClass::Data, pages,
                                size),
              2u);
    EXPECT_EQ(pages[0], 0x4000u);
    EXPECT_EQ(pages[1], 0x5000u);
    EXPECT_EQ(size, mem::PageSize::Size4K);
}

TEST(MmuStride, RingPollsCarryNoInformation)
{
    // Repeats of the current page (descriptor-ring polls) neither
    // build nor break confidence.
    PrefetchUnit pu(mmuConfig());
    mem::Iova pages[4] = {};
    mem::PageSize size = mem::PageSize::Size4K;
    pu.observeAccess(2, trace::ReqClass::Ring, 0x10000,
                     mem::PageSize::Size4K);
    pu.observeAccess(2, trace::ReqClass::Ring, 0x11000,
                     mem::PageSize::Size4K);
    for (int i = 0; i < 5; ++i) {
        pu.observeAccess(2, trace::ReqClass::Ring, 0x11080,
                         mem::PageSize::Size4K);
    }
    pu.observeAccess(2, trace::ReqClass::Ring, 0x12000,
                     mem::PageSize::Size4K);
    ASSERT_EQ(pu.predictStrided(2, trace::ReqClass::Ring, pages,
                                size),
              2u);
    EXPECT_EQ(pages[0], 0x13000u);
}

TEST(MmuStride, StrideBreakResetsConfidence)
{
    PrefetchUnit pu(mmuConfig());
    mem::Iova pages[4] = {};
    mem::PageSize size = mem::PageSize::Size4K;
    for (mem::Iova page = 0; page < 4; ++page) {
        pu.observeAccess(3, trace::ReqClass::Data, page << 12,
                         mem::PageSize::Size4K);
    }
    ASSERT_GT(pu.predictStrided(3, trace::ReqClass::Data, pages,
                                size),
              0u);
    // A jump breaks the stream: no prediction until the new stride
    // repeats once.
    pu.observeAccess(3, trace::ReqClass::Data, 0x900000,
                     mem::PageSize::Size4K);
    EXPECT_EQ(pu.predictStrided(3, trace::ReqClass::Data, pages,
                                size),
              0u);
    pu.observeAccess(3, trace::ReqClass::Data, 0x902000,
                     mem::PageSize::Size4K);
    pu.observeAccess(3, trace::ReqClass::Data, 0x904000,
                     mem::PageSize::Size4K);
    ASSERT_EQ(pu.predictStrided(3, trace::ReqClass::Data, pages,
                                size),
              2u);
    EXPECT_EQ(pages[0], 0x906000u);
}

TEST(MmuStride, PageSizeFlipRestartsDetection)
{
    PrefetchUnit pu(mmuConfig());
    mem::Iova pages[4] = {};
    mem::PageSize size = mem::PageSize::Size4K;
    for (mem::Iova page = 0; page < 4; ++page) {
        pu.observeAccess(4, trace::ReqClass::Data, page << 12,
                         mem::PageSize::Size4K);
    }
    ASSERT_GT(pu.predictStrided(4, trace::ReqClass::Data, pages,
                                size),
              0u);
    pu.observeAccess(4, trace::ReqClass::Data, 0x400000,
                     mem::PageSize::Size2M);
    EXPECT_EQ(pu.predictStrided(4, trace::ReqClass::Data, pages,
                                size),
              0u);
    // The 2M stream builds its own stride at 2M granularity.
    pu.observeAccess(4, trace::ReqClass::Data, 0x600000,
                     mem::PageSize::Size2M);
    pu.observeAccess(4, trace::ReqClass::Data, 0x800000,
                     mem::PageSize::Size2M);
    ASSERT_EQ(pu.predictStrided(4, trace::ReqClass::Data, pages,
                                size),
              2u);
    EXPECT_EQ(pages[0], 0xA00000u);
    EXPECT_EQ(size, mem::PageSize::Size2M);
}

TEST(MmuStride, StreamsAreIndependentPerTenantAndClass)
{
    PrefetchUnit pu(mmuConfig());
    mem::Iova pages[4] = {};
    mem::PageSize size = mem::PageSize::Size4K;
    // Interleaved: tenant 5's data stream ascends, its ring stream
    // descends, and tenant 6's data stream stays cold.
    for (int i = 0; i < 4; ++i) {
        pu.observeAccess(5, trace::ReqClass::Data,
                         mem::Iova(i) << 12, mem::PageSize::Size4K);
        pu.observeAccess(5, trace::ReqClass::Ring,
                         mem::Iova(16 - i) << 12,
                         mem::PageSize::Size4K);
        pu.observeAccess(6, trace::ReqClass::Data, 0x7000,
                         mem::PageSize::Size4K);
    }
    ASSERT_EQ(pu.predictStrided(5, trace::ReqClass::Data, pages,
                                size),
              2u);
    EXPECT_EQ(pages[0], 0x4000u);
    ASSERT_EQ(pu.predictStrided(5, trace::ReqClass::Ring, pages,
                                size),
              2u);
    EXPECT_EQ(pages[0], 12u << 12); // descending stride
    EXPECT_EQ(pu.predictStrided(6, trace::ReqClass::Data, pages,
                                size),
              0u);
    EXPECT_EQ(pu.mmuStreams(), 3u);
}

TEST(MmuStride, RetireDomainDropsEveryStream)
{
    PrefetchUnit pu(mmuConfig());
    for (int i = 0; i < 4; ++i) {
        pu.observeAccess(7, trace::ReqClass::Data,
                         mem::Iova(i) << 12, mem::PageSize::Size4K);
        pu.observeAccess(7, trace::ReqClass::Notify,
                         mem::Iova(i) << 13, mem::PageSize::Size4K);
        pu.observeAccess(8, trace::ReqClass::Data,
                         mem::Iova(i) << 14, mem::PageSize::Size4K);
    }
    EXPECT_EQ(pu.mmuStreams(), 3u);
    pu.retireDomain(7);
    EXPECT_EQ(pu.mmuStreams(), 1u);
    mem::Iova pages[4] = {};
    mem::PageSize size = mem::PageSize::Size4K;
    EXPECT_EQ(pu.predictStrided(7, trace::ReqClass::Data, pages,
                                size),
              0u);
    // The surviving tenant's detector is untouched.
    EXPECT_GT(pu.predictStrided(8, trace::ReqClass::Data, pages,
                                size),
              0u);
    pu.retireDomain(8);
    EXPECT_EQ(pu.mmuStreams(), 0u);
}

TEST(HistoryReader, HistoryDepthBoundsMemory)
{
    ReaderFixture f;
    PrefetchConfig config = pbConfig();
    config.historyDepth = 2;
    config.pagesPerPrefetch = 4;
    HistoryReader reader = f.makeReader(config);
    for (mem::Iova page = 0; page < 10; ++page) {
        f.tables.get(1).map(page << 12, mem::PageSize::Size4K);
        reader.observe(1, page << 12, mem::PageSize::Size4K);
    }
    reader.prefetch(1);
    f.queue.run();
    // Only historyDepth pages were retained.
    EXPECT_EQ(f.fills.size(), 2u);
}

} // namespace
} // namespace hypersio::core
