/** Differential tests for the group-probe backends: the vector
 *  backend compiled for this target must match the scalar reference
 *  bit for bit — on raw masks and through both consumers (FlatMap,
 *  SetAssocCache). */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cache/set_assoc_cache.hh"
#include "util/flat_map.hh"
#include "util/rng.hh"
#include "util/simd.hh"

namespace hypersio::util::simd
{
namespace
{

using Group = uint8_t[GroupWidth];

void
expectMasksAgree(const uint8_t *group, uint8_t needle)
{
    EXPECT_EQ(ScalarGroupOps::matchMask(group, needle),
              VectorGroupOps::matchMask(group, needle))
        << "needle " << unsigned(needle);
    EXPECT_EQ(ScalarGroupOps::zeroMask(group),
              VectorGroupOps::zeroMask(group));
}

TEST(GroupOps, MasksAgreeOnEdgePatterns)
{
    Group group;
    std::memset(group, 0, sizeof(group));
    expectMasksAgree(group, 0);    // all lanes zero: full masks
    expectMasksAgree(group, 0x80); // no lane matches

    std::memset(group, 0xa5, sizeof(group));
    expectMasksAgree(group, 0xa5); // all lanes match
    expectMasksAgree(group, 0);    // no lane zero

    // One hot lane at each position, with the sign bit set (tags
    // always carry bit 7 — the movemask path reads exactly that bit).
    for (size_t i = 0; i < GroupWidth; ++i) {
        std::memset(group, 0x01, sizeof(group));
        group[i] = 0xff;
        expectMasksAgree(group, 0xff);
        expectMasksAgree(group, 0x01);
    }
}

TEST(GroupOps, MasksAgreeOnRandomGroups)
{
    Rng rng(0x51D5);
    Group group;
    for (int round = 0; round < 10000; ++round) {
        for (auto &lane : group)
            lane = static_cast<uint8_t>(rng.below(256));
        expectMasksAgree(group,
                         static_cast<uint8_t>(rng.below(256)));
        // Also probe for a byte that definitely occurs.
        expectMasksAgree(group, group[rng.below(GroupWidth)]);
    }
}

TEST(GroupOps, MatchMaskBitPositionsAreLaneIndices)
{
    Group group;
    std::memset(group, 0, sizeof(group));
    group[3] = 0x9c;
    group[11] = 0x9c;
    const uint32_t expect = (1u << 3) | (1u << 11);
    EXPECT_EQ(ScalarGroupOps::matchMask(group, 0x9c), expect);
    EXPECT_EQ(VectorGroupOps::matchMask(group, 0x9c), expect);
}

/**
 * Drives two FlatMap instantiations (scalar vs vector probes)
 * through an identical randomized insert/find/erase storm and
 * asserts identical *layouts*: forEach walks the slot array in
 * order, so equal (key, value) sequences mean every entry sits in
 * the same physical slot under both backends.
 */
TEST(GroupOps, FlatMapLayoutIsBackendIndependent)
{
    FlatMap<uint64_t, uint64_t, ScalarGroupOps> scalar;
    FlatMap<uint64_t, uint64_t, VectorGroupOps> vector;
    Rng rng(99);
    // Page-base-shaped keys (zero low bits) from a small universe so
    // erases hit often and probe chains actually form.
    auto key = [&] { return (rng.below(4096) + 1) << 12; };
    for (int op = 0; op < 200000; ++op) {
        const uint64_t k = key();
        switch (rng.below(4)) {
          case 0:
          case 1: {
            const uint64_t v = rng.next();
            EXPECT_EQ(scalar.insert(k, v), vector.insert(k, v));
            break;
          }
          case 2: {
            uint64_t *sv = scalar.find(k);
            uint64_t *vv = vector.find(k);
            ASSERT_EQ(sv == nullptr, vv == nullptr);
            if (sv)
                EXPECT_EQ(*sv, *vv);
            break;
          }
          default:
            EXPECT_EQ(scalar.erase(k), vector.erase(k));
        }
    }
    ASSERT_EQ(scalar.size(), vector.size());
    ASSERT_EQ(scalar.capacity(), vector.capacity());

    std::vector<std::pair<uint64_t, uint64_t>> s_walk, v_walk;
    scalar.forEach(
        [&](uint64_t k, uint64_t v) { s_walk.emplace_back(k, v); });
    vector.forEach(
        [&](uint64_t k, uint64_t v) { v_walk.emplace_back(k, v); });
    EXPECT_EQ(s_walk, v_walk);
}

/**
 * Randomized differential against std::unordered_map at hyperscale
 * capacity: >= 2^18 slots puts the bucket index in bits 46+, the
 * territory where the old bits-40..47 tag overlapped the index and
 * silently degraded every probe (the tag became a function of the
 * bucket, rejecting nothing). Growth to that size plus full
 * teardown exercises tagOf at every capacity on the way up.
 */
TEST(GroupOps, FlatMapMatchesUnorderedMapAtLargeCapacity)
{
    FlatMap<uint64_t, uint64_t> map;
    std::unordered_map<uint64_t, uint64_t> ref;
    Rng rng(0xCAFE);
    // Mostly inserts so the table genuinely grows past 2^17 slots.
    for (int op = 0; op < 300000; ++op) {
        const uint64_t k = (rng.below(1u << 20)) << 12;
        if (rng.below(8) == 0) {
            EXPECT_EQ(map.erase(k), ref.erase(k) != 0);
        } else {
            const uint64_t v = rng.next();
            map.insert(k, v);
            ref[k] = v;
        }
    }
    ASSERT_EQ(map.size(), ref.size());
#ifndef HYPERSIO_LEGACY_STRUCTURES
    // Power-of-two capacities are a flat-layout property; the whole
    // point of this size is to reach bucket bits >= 2^18.
    ASSERT_GE(map.capacity(), size_t{1} << 18);
#endif
    size_t walked = 0;
    map.forEach([&](uint64_t k, uint64_t v) {
        auto it = ref.find(k);
        ASSERT_NE(it, ref.end());
        EXPECT_EQ(it->second, v);
        ++walked;
    });
    EXPECT_EQ(walked, ref.size());
    // Spot-check misses too: keys the reference lacks must miss.
    for (int i = 0; i < 10000; ++i) {
        const uint64_t k = ((rng.below(1u << 20)) << 12) | 0x800;
        EXPECT_EQ(map.find(k), nullptr) << std::hex << k;
    }
}

/**
 * Same storm through two SetAssocCache instantiations: hit/miss
 * decisions come from the tag-row group scan, so stats and contents
 * must be identical under both backends.
 */
TEST(GroupOps, SetAssocCacheBehavesIdenticallyAcrossBackends)
{
    cache::CacheConfig config;
    config.entries = 256;
    config.ways = 8;
    config.policy = cache::ReplPolicyKind::LRU;
    cache::SetAssocCache<uint64_t, ScalarGroupOps> scalar(config);
    cache::SetAssocCache<uint64_t, VectorGroupOps> vector(config);

    Rng rng(7);
    for (int op = 0; op < 100000; ++op) {
        const uint64_t key = rng.below(2048) << 12;
        const uint64_t index = key >> 12;
        if (rng.below(3) == 0) {
            const uint64_t value = rng.next();
            auto se = scalar.insert(key, index, value);
            auto ve = vector.insert(key, index, value);
            ASSERT_EQ(se.has_value(), ve.has_value());
            if (se) {
                EXPECT_EQ(se->key, ve->key);
                EXPECT_EQ(se->value, ve->value);
            }
        } else {
            uint64_t *sv = scalar.lookup(key, index);
            uint64_t *vv = vector.lookup(key, index);
            ASSERT_EQ(sv == nullptr, vv == nullptr);
            if (sv)
                EXPECT_EQ(*sv, *vv);
        }
    }
    EXPECT_EQ(scalar.stats().hits, vector.stats().hits);
    EXPECT_EQ(scalar.stats().lookups, vector.stats().lookups);
    EXPECT_EQ(scalar.stats().insertions, vector.stats().insertions);
    EXPECT_EQ(scalar.stats().evictions, vector.stats().evictions);
}

} // namespace
} // namespace hypersio::util::simd
