/** Unit tests for the DRAM timing model: dependent-chain latency and
 *  bounded concurrency. */

#include <gtest/gtest.h>

#include "mem/memory_model.hh"

namespace hypersio::mem
{
namespace
{

struct Fixture
{
    sim::EventQueue queue;
    stats::StatGroup stats{"test"};
};

TEST(MemoryModel, SingleAccessLatency)
{
    Fixture f;
    MemoryConfig config;
    config.accessLatency = 50 * TicksPerNs;
    MemoryModel memory(config, f.queue, f.stats);

    Tick done_at = 0;
    memory.access(1, [&] { done_at = f.queue.now(); });
    f.queue.run();
    EXPECT_EQ(done_at, 50 * TicksPerNs);
}

TEST(MemoryModel, ChainSerializesAccesses)
{
    Fixture f;
    MemoryModel memory({50 * TicksPerNs, 0}, f.queue, f.stats);
    Tick done_at = 0;
    // A full 24-access two-dimensional walk = 1200 ns.
    memory.access(24, [&] { done_at = f.queue.now(); });
    f.queue.run();
    EXPECT_EQ(done_at, 1200 * TicksPerNs);
}

TEST(MemoryModel, UnlimitedModeRunsChainsInParallel)
{
    Fixture f;
    MemoryModel memory({100, 0}, f.queue, f.stats);
    std::vector<Tick> finished;
    for (int i = 0; i < 4; ++i)
        memory.access(1, [&] { finished.push_back(f.queue.now()); });
    f.queue.run();
    ASSERT_EQ(finished.size(), 4u);
    for (Tick t : finished)
        EXPECT_EQ(t, 100u); // all complete together
}

TEST(MemoryModel, BoundedModeQueuesExcessChains)
{
    Fixture f;
    MemoryModel memory({100, 2}, f.queue, f.stats);
    std::vector<Tick> finished;
    for (int i = 0; i < 4; ++i)
        memory.access(1, [&] { finished.push_back(f.queue.now()); });
    EXPECT_EQ(memory.busy(), 2u);
    f.queue.run();
    ASSERT_EQ(finished.size(), 4u);
    // Two waves: 2 at t=100, 2 at t=200.
    EXPECT_EQ(finished[0], 100u);
    EXPECT_EQ(finished[1], 100u);
    EXPECT_EQ(finished[2], 200u);
    EXPECT_EQ(finished[3], 200u);
    EXPECT_EQ(memory.busy(), 0u);
}

TEST(MemoryModel, QueuedChainsPreserveOrder)
{
    Fixture f;
    MemoryModel memory({10, 1}, f.queue, f.stats);
    std::vector<int> order;
    for (int i = 0; i < 3; ++i)
        memory.access(1, [&, i] { order.push_back(i); });
    f.queue.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(MemoryModel, StatsCountReadsAndChains)
{
    Fixture f;
    MemoryModel memory({10, 1}, f.queue, f.stats);
    memory.access(24, [] {});
    memory.access(9, [] {});
    f.queue.run();
    const auto *reads = f.stats.child("memory").find("reads");
    const auto *chains = f.stats.child("memory").find("chains");
    const auto *queued = f.stats.child("memory").find("queued");
    ASSERT_NE(reads, nullptr);
    EXPECT_DOUBLE_EQ(reads->value(), 33.0);
    EXPECT_DOUBLE_EQ(chains->value(), 2.0);
    EXPECT_DOUBLE_EQ(queued->value(), 1.0);
}

TEST(MemoryModel, ZeroAccessChainCompletesAtOnce)
{
    Fixture f;
    MemoryModel memory({50, 0}, f.queue, f.stats);
    Tick done_at = MaxTick;
    memory.access(0, [&] { done_at = f.queue.now(); });
    f.queue.run();
    EXPECT_EQ(done_at, 0u);
}

} // namespace
} // namespace hypersio::mem
