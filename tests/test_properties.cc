/** Property-based tests: parameterized sweeps asserting model
 *  invariants across configuration and workload space. */

#include <gtest/gtest.h>

#include "core/runner.hh"
#include "core/system.hh"
#include "trace/constructor.hh"
#include "util/rng.hh"
#include "workload/benchmarks.hh"

namespace hypersio::core
{
namespace
{

trace::HyperTrace
makeTrace(workload::Benchmark bench, unsigned tenants,
          const std::string &il, uint64_t seed = 42)
{
    auto logs = workload::generateLogs(bench, tenants, seed, 0.02);
    return trace::constructTrace(logs, trace::parseInterleaving(il));
}

/** (benchmark, tenants, interleaving) triples covering the space. */
using Point = std::tuple<workload::Benchmark, unsigned, std::string>;

class WorkloadSpaceTest : public ::testing::TestWithParam<Point>
{};

TEST_P(WorkloadSpaceTest, RunInvariantsHold)
{
    const auto [bench, tenants, il] = GetParam();
    const auto tr = makeTrace(bench, tenants, il);
    System system(SystemConfig::hypertrio());
    const RunResults r = system.run(tr);

    // Every packet is processed exactly once (drops are retried).
    EXPECT_EQ(r.packetsProcessed, tr.packets.size());
    // Bandwidth is positive and cannot exceed the physical link.
    EXPECT_GT(r.achievedGbps, 0.0);
    EXPECT_LE(r.utilization, 1.0 + 1e-9);
    // Translation counts are consistent.
    EXPECT_EQ(r.translations, 3 * r.packetsProcessed);
    // Rates are probabilities.
    EXPECT_GE(r.devtlbHitRate, 0.0);
    EXPECT_LE(r.devtlbHitRate, 1.0);
    EXPECT_GE(r.pbHitRate, 0.0);
    EXPECT_LE(r.pbHitRate, 1.0);
    EXPECT_GE(r.iotlbHitRate, 0.0);
    EXPECT_LE(r.iotlbHitRate, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Space, WorkloadSpaceTest,
    ::testing::Combine(
        ::testing::Values(workload::Benchmark::Iperf3,
                          workload::Benchmark::Mediastream,
                          workload::Benchmark::Websearch),
        ::testing::Values(4u, 32u, 128u),
        ::testing::Values("RR1", "RR4", "RAND1")),
    [](const ::testing::TestParamInfo<Point> &info) {
        return std::string(workload::benchmarkName(
                   std::get<0>(info.param))) +
               "_" + std::to_string(std::get<1>(info.param)) + "_" +
               std::get<2>(info.param);
    });

/** PTB depth sweep: bandwidth is monotone (within noise) in PTB
 *  size, the paper's hit-under-miss argument (Fig. 12b). */
class PtbMonotonicityTest : public ::testing::TestWithParam<unsigned>
{};

TEST_P(PtbMonotonicityTest, MorePtbEntriesNeverHurt)
{
    const unsigned tenants = GetParam();
    const auto tr = makeTrace(workload::Benchmark::Iperf3, tenants,
                              "RR1");
    double last = 0.0;
    for (unsigned ptb : {1u, 8u, 32u}) {
        SystemConfig config = SystemConfig::base();
        config.device.devtlb.partitions = 8;
        config.device.ptbEntries = ptb;
        System system(config);
        const double gbps = system.run(tr).achievedGbps;
        EXPECT_GE(gbps, last * 0.95)
            << "PTB " << ptb << " at " << tenants << " tenants";
        last = gbps;
    }
}

INSTANTIATE_TEST_SUITE_P(Tenants, PtbMonotonicityTest,
                         ::testing::Values(8u, 32u, 128u));

/** DevTLB capacity sweep: a larger DevTLB never reduces bandwidth
 *  in the low-tenant regime. */
class DevtlbSizeTest : public ::testing::TestWithParam<unsigned>
{};

TEST_P(DevtlbSizeTest, BiggerDevtlbNeverHurtsFewTenants)
{
    const unsigned tenants = GetParam();
    const auto tr = makeTrace(workload::Benchmark::Iperf3, tenants,
                              "RR1");
    double last = 0.0;
    for (size_t entries : {64u, 256u, 1024u}) {
        SystemConfig config = SystemConfig::base();
        config.device.devtlb.entries = entries;
        System system(config);
        const double gbps = system.run(tr).achievedGbps;
        EXPECT_GE(gbps, last * 0.9) << entries << " entries";
        last = gbps;
    }
}

INSTANTIATE_TEST_SUITE_P(Tenants, DevtlbSizeTest,
                         ::testing::Values(4u, 16u, 64u));

/** Seed sweep: different workload seeds change the trace but leave
 *  the qualitative result intact; the same seed reproduces results
 *  bit-for-bit. */
class SeedStabilityTest : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(SeedStabilityTest, DeterministicPerSeed)
{
    const uint64_t seed = GetParam();
    const auto tr = makeTrace(workload::Benchmark::Websearch, 16,
                              "RAND1", seed);
    System a(SystemConfig::hypertrio());
    System b(SystemConfig::hypertrio());
    const RunResults ra = a.run(tr);
    const RunResults rb = b.run(tr);
    EXPECT_EQ(ra.elapsed, rb.elapsed);
    EXPECT_DOUBLE_EQ(ra.achievedGbps, rb.achievedGbps);
    EXPECT_GT(ra.utilization, 0.3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedStabilityTest,
                         ::testing::Values(1, 7, 42, 1234));

/** Partition-count sweep: partitions divide the DevTLB sets; every
 *  legal partition count runs and preserves run invariants. */
class PartitionSweepTest : public ::testing::TestWithParam<size_t>
{};

TEST_P(PartitionSweepTest, LegalPartitionCountsWork)
{
    const size_t partitions = GetParam();
    const auto tr = makeTrace(workload::Benchmark::Iperf3, 32,
                              "RR1");
    SystemConfig config = SystemConfig::base();
    config.device.devtlb.partitions = partitions;
    System system(config);
    const RunResults r = system.run(tr);
    EXPECT_EQ(r.packetsProcessed, tr.packets.size());
    EXPECT_GT(r.achievedGbps, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Partitions, PartitionSweepTest,
                         ::testing::Values(1, 2, 4, 8));

/** Link-rate sweep: achieved bandwidth is capped by the configured
 *  link and the translation path, whichever is lower. */
class LinkRateTest : public ::testing::TestWithParam<double>
{};

TEST_P(LinkRateTest, AchievedBandwidthRespectsLink)
{
    const double gbps = GetParam();
    const auto tr = makeTrace(workload::Benchmark::Iperf3, 2, "RR1");
    SystemConfig config = SystemConfig::hypertrio();
    config.link.gbps = gbps;
    System system(config);
    const RunResults r = system.run(tr);
    EXPECT_LE(r.achievedGbps, gbps * (1.0 + 1e-9));
    EXPECT_GT(r.achievedGbps, gbps * 0.5); // 2 tenants: mostly hits
}

INSTANTIATE_TEST_SUITE_P(Rates, LinkRateTest,
                         ::testing::Values(10.0, 40.0, 100.0, 200.0,
                                           400.0));

/** Parallel-equivalence property: for any random sweep of <= 8
 *  points, runAll() across a worker pool returns exactly the
 *  concatenation of single-point run() results, in input order. */
class ParallelEquivalenceTest
    : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(ParallelEquivalenceTest, RunAllMatchesSingleRuns)
{
    const uint64_t seed = GetParam();
    Rng rng(seed);

    const workload::Benchmark benches[] = {
        workload::Benchmark::Iperf3,
        workload::Benchmark::Mediastream,
        workload::Benchmark::Websearch};
    const unsigned tenant_choices[] = {4, 8, 16, 32};
    const char *interleavings[] = {"RR1", "RR4", "RAND1"};

    const size_t count = 1 + rng.below(8);
    std::vector<ExperimentPoint> points;
    for (size_t i = 0; i < count; ++i) {
        ExperimentPoint point;
        point.label = "p" + std::to_string(i);
        point.config = rng.chance(0.5) ? SystemConfig::base()
                                       : SystemConfig::hypertrio();
        point.bench = benches[rng.below(3)];
        point.tenants = tenant_choices[rng.below(4)];
        point.interleave =
            trace::parseInterleaving(interleavings[rng.below(3)]);
        point.bypassTranslation = rng.chance(0.125);
        points.push_back(std::move(point));
    }

    ExperimentRunner parallel(0.02, 42, /*jobs=*/4);
    const auto rows = parallel.runAll(points);
    ASSERT_EQ(rows.size(), points.size());

    ExperimentRunner single(0.02, 42, /*jobs=*/1);
    for (size_t i = 0; i < points.size(); ++i) {
        const ExperimentRow expected = single.run(points[i]);
        EXPECT_EQ(rows[i].point.label, points[i].label);
        EXPECT_TRUE(rows[i].results == expected.results)
            << "point " << i << " (" << points[i].label << ", "
            << workload::benchmarkName(points[i].bench) << ", "
            << points[i].tenants << " tenants, "
            << points[i].interleave.name() << ")";
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelEquivalenceTest,
                         ::testing::Values(1, 7, 42, 99, 1234));

} // namespace
} // namespace hypersio::core
