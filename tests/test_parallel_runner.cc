/** Serial-vs-parallel equivalence tests for the ExperimentRunner
 *  worker pool, plus concurrency stress tests for the shared trace
 *  cache (per-key construction locks). */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "core/multi_system.hh"
#include "core/runner.hh"
#include "util/debug.hh"
#include "util/logging.hh"
#include "workload/streaming.hh"

namespace hypersio::core
{
namespace
{

ExperimentPoint
makePoint(const std::string &label, SystemConfig config,
          workload::Benchmark bench, unsigned tenants,
          const std::string &il, bool bypass = false)
{
    ExperimentPoint point;
    point.label = label;
    point.config = std::move(config);
    point.bench = bench;
    point.tenants = tenants;
    point.interleave = trace::parseInterleaving(il);
    point.bypassTranslation = bypass;
    return point;
}

/**
 * A sweep mixing configurations, benchmarks, tenant counts, and
 * interleavings. The first three points deliberately share one
 * (iperf3, 4, RR1) trace so the equivalence run also covers cache
 * sharing under concurrency.
 */
std::vector<ExperimentPoint>
goldenPoints()
{
    std::vector<ExperimentPoint> points;
    points.push_back(makePoint("base-shared", SystemConfig::base(),
                               workload::Benchmark::Iperf3, 4,
                               "RR1"));
    points.push_back(makePoint("ht-shared", SystemConfig::hypertrio(),
                               workload::Benchmark::Iperf3, 4,
                               "RR1"));
    points.push_back(makePoint("native-shared", SystemConfig::base(),
                               workload::Benchmark::Iperf3, 4, "RR1",
                               /*bypass=*/true));
    points.push_back(makePoint("ht-media",
                               SystemConfig::hypertrio(),
                               workload::Benchmark::Mediastream, 8,
                               "RR4"));
    points.push_back(makePoint("base-web", SystemConfig::base(),
                               workload::Benchmark::Websearch, 16,
                               "RAND1"));
    SystemConfig partitioned = SystemConfig::base();
    partitioned.name = "partitioned";
    partitioned.device.devtlb.partitions = 8;
    points.push_back(makePoint("part-iperf", partitioned,
                               workload::Benchmark::Iperf3, 8,
                               "RR1"));
    return points;
}

TEST(ParallelRunnerTest, GoldenEquivalenceJobs1VsJobs4)
{
    const auto points = goldenPoints();

    ExperimentRunner serial(0.02, 42, /*jobs=*/1);
    ExperimentRunner parallel(0.02, 42, /*jobs=*/4);
    const auto serial_rows = serial.runAll(points);
    const auto parallel_rows = parallel.runAll(points);

    ASSERT_EQ(serial_rows.size(), points.size());
    ASSERT_EQ(parallel_rows.size(), points.size());
    for (size_t i = 0; i < points.size(); ++i) {
        // Row order follows input order in both modes.
        EXPECT_EQ(serial_rows[i].point.label, points[i].label);
        EXPECT_EQ(parallel_rows[i].point.label, points[i].label);
        // Bit-identical results per row (RunResults compares
        // doubles exactly).
        EXPECT_TRUE(serial_rows[i].results ==
                    parallel_rows[i].results)
            << "row " << i << " (" << points[i].label
            << "): serial " << serial_rows[i].results.achievedGbps
            << " Gb/s / " << serial_rows[i].results.elapsed
            << " ticks vs parallel "
            << parallel_rows[i].results.achievedGbps << " Gb/s / "
            << parallel_rows[i].results.elapsed << " ticks";
    }

    // Three points shared one (iperf3, 4, RR1) trace: only four
    // unique traces exist in either runner.
    EXPECT_EQ(serial.traceConstructions(), 4u);
    EXPECT_EQ(parallel.traceConstructions(), 4u);
}

TEST(ShardedMultiSystemTest, GoldenEquivalenceJobs1VsJobsN)
{
    // Same discipline as the runner equivalence above, applied to
    // the hyper-scale sharded runtime: the worker count must never
    // leak into results. Each shard is an independent deterministic
    // System, so jobs 1 / 2 / 4 must produce bit-identical counter
    // totals, the same merged retirement timeline (and checksum),
    // and byte-identical per-shard stats trees.
    const auto factory = [](unsigned shard) {
        workload::ChurnConfig cfg;
        cfg.population = 60 + shard * 15;
        cfg.slots = 6;
        cfg.seed = hashCombine(77, shard);
        cfg.minBudget = 16;
        cfg.maxBudget = 48;
        cfg.tailMin = 128;
        cfg.tailMax = 256;
        return std::make_unique<workload::ChurnStream>(cfg);
    };

    std::vector<ShardedRunResults> runs;
    std::vector<std::string> stats;
    for (const unsigned jobs : {1u, 2u, 4u}) {
        ShardedMultiSystem sharded(SystemConfig::hypertrio(),
                                   /*shards=*/4, jobs);
        runs.push_back(sharded.run(factory));
        std::ostringstream os;
        sharded.dumpStatsJson(os, 0);
        stats.push_back(os.str());
    }

    EXPECT_EQ(runs[0].tenantsRetired, 60u + 75u + 90u + 105u);
    for (size_t i = 1; i < runs.size(); ++i) {
        EXPECT_TRUE(runs[0] == runs[i]) << "jobs variant " << i;
        EXPECT_EQ(stats[0], stats[i]) << "jobs variant " << i;
    }
}

TEST(ParallelRunnerTest, MoreJobsThanPointsIsHarmless)
{
    const auto points = goldenPoints();
    ExperimentRunner serial(0.02, 42, 1);
    ExperimentRunner oversubscribed(0.02, 42, 64);
    const auto a = serial.runAll(points);
    const auto b = oversubscribed.runAll(points);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_TRUE(a[i].results == b[i].results) << "row " << i;
}

TEST(ParallelRunnerTest, ProgressLinesAreCoherentAndComplete)
{
    const auto points = goldenPoints();
    ExperimentRunner runner(0.02, 42, 4);
    std::ostringstream progress;
    runner.runAll(points, &progress);

    std::istringstream in(progress.str());
    std::string line;
    std::multiset<std::string> labels;
    size_t lines = 0;
    while (std::getline(in, line)) {
        ++lines;
        // Every line is one whole "  running <label> (...)..." unit.
        EXPECT_EQ(line.rfind("  running ", 0), 0u) << line;
        EXPECT_NE(line.find("tenants"), std::string::npos) << line;
        const size_t start = std::string("  running ").size();
        labels.insert(line.substr(start,
                                  line.find(" (") - start));
    }
    EXPECT_EQ(lines, points.size());
    std::multiset<std::string> expected;
    for (const auto &point : points)
        expected.insert(point.label);
    EXPECT_EQ(labels, expected);
}

TEST(ParallelRunnerTest, SetJobsClampsZeroToSerial)
{
    ExperimentRunner runner(0.02, 42, 4);
    runner.setJobs(0);
    EXPECT_EQ(runner.jobs(), 1u);
    runner.setJobs(8);
    EXPECT_EQ(runner.jobs(), 8u);
    EXPECT_GE(ExperimentRunner::defaultJobs(), 1u);
}

TEST(TraceCacheStressTest, OverlappingGetTraceConstructsEachOnce)
{
    ExperimentRunner runner(0.02, 42);

    struct Key
    {
        workload::Benchmark bench;
        unsigned tenants;
        const char *il;
    };
    const std::vector<Key> keys = {
        {workload::Benchmark::Iperf3, 4, "RR1"},
        {workload::Benchmark::Iperf3, 8, "RR1"},
        {workload::Benchmark::Websearch, 4, "RR4"},
    };

    constexpr unsigned kThreads = 8;
    constexpr unsigned kIters = 16;
    // One pointer slot per (thread, iteration, key): every observed
    // reference is compared against the canonical one afterwards.
    std::vector<const trace::HyperTrace *> seen(
        kThreads * kIters * keys.size(), nullptr);
    std::atomic<unsigned> ready{0};
    std::atomic<bool> go{false};

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (unsigned tid = 0; tid < kThreads; ++tid) {
        threads.emplace_back([&, tid]() {
            ready.fetch_add(1);
            while (!go.load()) // spin: maximise overlap
                std::this_thread::yield();
            for (unsigned it = 0; it < kIters; ++it) {
                for (size_t k = 0; k < keys.size(); ++k) {
                    // Stagger key order per thread so different
                    // threads hit different keys simultaneously.
                    const size_t pick =
                        (k + tid + it) % keys.size();
                    const Key &key = keys[pick];
                    const auto &trace = runner.getTrace(
                        key.bench, key.tenants,
                        trace::parseInterleaving(key.il));
                    seen[(tid * kIters + it) * keys.size() + pick] =
                        &trace;
                }
            }
        });
    }
    while (ready.load() != kThreads)
        std::this_thread::yield();
    go.store(true);
    for (auto &thread : threads)
        thread.join();

    // Each unique key was constructed exactly once...
    EXPECT_EQ(runner.traceConstructions(), keys.size());

    // ...and every returned reference is the canonical, valid trace.
    for (size_t k = 0; k < keys.size(); ++k) {
        const trace::HyperTrace &canonical = runner.getTrace(
            keys[k].bench, keys[k].tenants,
            trace::parseInterleaving(keys[k].il));
        EXPECT_FALSE(canonical.packets.empty());
        EXPECT_EQ(canonical.numTenants, keys[k].tenants);
        for (unsigned tid = 0; tid < kThreads; ++tid) {
            for (unsigned it = 0; it < kIters; ++it) {
                const trace::HyperTrace *got =
                    seen[(tid * kIters + it) * keys.size() + k];
                ASSERT_NE(got, nullptr);
                EXPECT_EQ(got, &canonical)
                    << "thread " << tid << " iteration " << it
                    << " key " << k;
            }
        }
    }
    // The post-join lookups hit the cache; nothing was rebuilt.
    EXPECT_EQ(runner.traceConstructions(), keys.size());
}

TEST(ParallelLoggingTest, ConcurrentLogLinesNeverInterleave)
{
    // Many threads hammer the shared sink (warn + debug-flag trace
    // lines); every emitted line must come out whole. Run under
    // scripts/tsan.sh this also proves the sink itself is race-free.
    std::FILE *capture = std::tmpfile();
    ASSERT_NE(capture, nullptr);
    Logger::instance().setStream(capture);
    const LogLevel previous = Logger::instance().level();
    Logger::instance().setLevel(LogLevel::Warn);

    static debug::Flag test_flag("ParallelLogTest",
                                 "concurrency test flag");
    debug::enable("ParallelLogTest");

    constexpr unsigned kThreads = 8;
    constexpr unsigned kLines = 50;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (unsigned tid = 0; tid < kThreads; ++tid) {
        threads.emplace_back([tid]() {
            for (unsigned i = 0; i < kLines; ++i) {
                warn("thread-%u-line-%u-padpadpadpadpadpad", tid, i);
                debug::dprintf(test_flag, Tick(i),
                               "trace-%u-%u-padpadpadpadpadpad", tid,
                               i);
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    debug::disableAll();
    Logger::instance().setLevel(previous);
    Logger::instance().setStream(nullptr);

    std::fflush(capture);
    std::rewind(capture);
    std::string text;
    char buffer[4096];
    size_t n;
    while ((n = std::fread(buffer, 1, sizeof(buffer), capture)) > 0)
        text.append(buffer, n);
    std::fclose(capture);

    size_t warn_lines = 0;
    size_t trace_lines = 0;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        if (line.find("warn: thread-") != std::string::npos &&
            line.rfind("padpadpadpadpadpad") ==
                line.size() - 18) {
            ++warn_lines;
        } else if (line.find("ParallelLogTest: trace-") !=
                       std::string::npos &&
                   line.rfind("padpadpadpadpadpad") ==
                       line.size() - 18) {
            ++trace_lines;
        } else {
            ADD_FAILURE() << "interleaved/torn log line: " << line;
        }
    }
    EXPECT_EQ(warn_lines, kThreads * kLines);
    EXPECT_EQ(trace_lines, kThreads * kLines);
}

} // namespace
} // namespace hypersio::core
