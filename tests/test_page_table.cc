/** Unit tests for the synthetic two-level page tables, address
 *  helpers, and the walk cost model. */

#include <gtest/gtest.h>

#include "mem/addr.hh"
#include "mem/page_table.hh"

namespace hypersio::mem
{
namespace
{

TEST(Addr, PageGeometry)
{
    EXPECT_EQ(pageBytes(PageSize::Size4K), 4096u);
    EXPECT_EQ(pageBytes(PageSize::Size2M), 2u << 20);
    EXPECT_EQ(pageFrame(0x34800123, PageSize::Size4K), 0x34800u);
    EXPECT_EQ(pageBase(0x34800123, PageSize::Size4K), 0x34800000u);
    EXPECT_EQ(pageBase(0xbbf12345, PageSize::Size2M), 0xbbe00000u);
}

TEST(Addr, LevelIndices)
{
    // x86-64 4-level layout: 9 bits per level above the 12-bit page.
    const Addr addr = (uint64_t(1) << 39) | (uint64_t(2) << 30) |
                      (uint64_t(3) << 21) | (uint64_t(4) << 12) | 5;
    EXPECT_EQ(levelIndex(addr, 4), 1u);
    EXPECT_EQ(levelIndex(addr, 3), 2u);
    EXPECT_EQ(levelIndex(addr, 2), 3u);
    EXPECT_EQ(levelIndex(addr, 1), 4u);
}

TEST(Addr, LevelPrefixesNest)
{
    const Addr a = 0xbbe12345;
    const Addr b = 0xbbe12fff; // same 4K page
    EXPECT_EQ(levelPrefix(a, 2), levelPrefix(b, 2));
    EXPECT_EQ(levelPrefix(a, 3), levelPrefix(b, 3));
    // Different 2 MB regions → different level-2 prefixes.
    EXPECT_NE(levelPrefix(0xbbe00000, 2), levelPrefix(0xbc000000, 2));
}

TEST(WalkCost, MatchesTableII)
{
    // Full two-dimensional 4-level walk: 24 accesses for 4 KB pages
    // (5 per guest level + 4 for the final host walk); 2 MB pages
    // skip one guest level: 19.
    EXPECT_EQ(fullWalkAccesses(PageSize::Size4K), 24u);
    EXPECT_EQ(fullWalkAccesses(PageSize::Size2M), 19u);
}

TEST(WalkCost, PartialWalks)
{
    // One guest level left (L2 paging-cache hit, 4 KB): 5 + 4 = 9.
    EXPECT_EQ(walkAccesses(1, PageSize::Size4K), 9u);
    // Two guest levels left (L3 hit, 4 KB): 14.
    EXPECT_EQ(walkAccesses(2, PageSize::Size4K), 14u);
    // 2 MB leaf already resolved: only the final host walk.
    EXPECT_EQ(walkAccesses(0, PageSize::Size2M), 4u);
}

TEST(WalkCost, FiveLevelDepth)
{
    // 5-level paging (5-level EPT): 35 accesses for a full 4 KB
    // walk, 29 for 2 MB (one fewer guest level).
    EXPECT_EQ(walkAccessesAtDepth(fullGuestLevels(5,
                                                  PageSize::Size4K),
                                  5),
              35u);
    EXPECT_EQ(walkAccessesAtDepth(fullGuestLevels(5,
                                                  PageSize::Size2M),
                                  5),
              29u);
    // Depth-4 equivalence with the fixed-depth helpers.
    EXPECT_EQ(walkAccessesAtDepth(4, 4), fullWalkAccesses());
}

TEST(PageTable, UnmappedIsInvalid)
{
    PageTable table(1, 42);
    EXPECT_FALSE(table.translate(0x1000).valid);
}

TEST(PageTable, MapThenTranslate4K)
{
    PageTable table(1, 42);
    table.map(0x34800000, PageSize::Size4K);
    Translation t = table.translate(0x34800123);
    ASSERT_TRUE(t.valid);
    EXPECT_EQ(t.pageSize, PageSize::Size4K);
    // Offset is preserved within the page.
    EXPECT_EQ(t.hostAddr & 0xfff, 0x123u);
    // Host frame is page-aligned.
    EXPECT_EQ((t.hostAddr - 0x123) & 0xfff, 0u);
}

TEST(PageTable, MapThenTranslate2M)
{
    PageTable table(2, 42);
    table.map(0xbbe00000, PageSize::Size2M);
    Translation t = table.translate(0xbbe12345);
    ASSERT_TRUE(t.valid);
    EXPECT_EQ(t.pageSize, PageSize::Size2M);
    EXPECT_EQ(t.hostAddr & 0x1fffff, 0x12345u);
}

TEST(PageTable, TranslationIsDeterministic)
{
    PageTable a(7, 99);
    PageTable b(7, 99);
    a.map(0x1000, PageSize::Size4K);
    b.map(0x1000, PageSize::Size4K);
    EXPECT_EQ(a.translate(0x1234).hostAddr,
              b.translate(0x1234).hostAddr);
}

TEST(PageTable, DifferentDomainsGetDifferentFrames)
{
    PageTable a(1, 42);
    PageTable b(2, 42);
    a.map(0x1000, PageSize::Size4K);
    b.map(0x1000, PageSize::Size4K);
    EXPECT_NE(a.translate(0x1000).hostAddr,
              b.translate(0x1000).hostAddr);
}

TEST(PageTable, RemapIsIdempotent)
{
    PageTable table(1, 42);
    table.map(0x2000, PageSize::Size4K);
    const Addr first = table.translate(0x2000).hostAddr;
    table.map(0x2000, PageSize::Size4K);
    EXPECT_EQ(table.translate(0x2000).hostAddr, first);
    EXPECT_EQ(table.size(), 1u);
}

TEST(PageTable, UnmapInvalidatesTranslation)
{
    PageTable table(1, 42);
    table.map(0x3000, PageSize::Size4K);
    EXPECT_TRUE(table.translate(0x3000).valid);
    EXPECT_TRUE(table.unmap(0x3000));
    EXPECT_FALSE(table.translate(0x3000).valid);
    EXPECT_FALSE(table.unmap(0x3000));
}

TEST(PageTable, Unmap2MCoversWholeRange)
{
    PageTable table(1, 42);
    table.map(0xbbe00000, PageSize::Size2M);
    EXPECT_TRUE(table.unmap(0xbbe12345)); // any address in the page
    EXPECT_FALSE(table.translate(0xbbe00000).valid);
}

TEST(PageTable, MixedPageSizesCoexist)
{
    PageTable table(1, 42);
    table.map(0x34800000, PageSize::Size4K);
    table.map(0xbbe00000, PageSize::Size2M);
    EXPECT_TRUE(table.translate(0x34800010).valid);
    EXPECT_TRUE(table.translate(0xbbe10000).valid);
    EXPECT_EQ(table.size(), 2u);
}

TEST(PageTable, HostFramesAreAlignedToPageSize)
{
    PageTable table(3, 42);
    table.map(0xbbe00000, PageSize::Size2M);
    const Translation t = table.translate(0xbbe00000);
    EXPECT_EQ(t.hostAddr & (pageBytes(PageSize::Size2M) - 1), 0u);
}

} // namespace
} // namespace hypersio::mem
