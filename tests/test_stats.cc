/** Unit tests for the statistics package. */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "stats/stats.hh"
#include "util/json.hh"

namespace hypersio::stats
{
namespace
{

TEST(Counter, IncrementAndAdd)
{
    StatGroup group("g");
    Counter &c = group.makeCounter("c", "a counter");
    EXPECT_EQ(c.count(), 0u);
    ++c;
    c += 5;
    EXPECT_EQ(c.count(), 6u);
    EXPECT_DOUBLE_EQ(c.value(), 6.0);
    c.reset();
    EXPECT_EQ(c.count(), 0u);
}

TEST(Scalar, AssignAndAccumulate)
{
    StatGroup group("g");
    Scalar &s = group.makeScalar("s", "a scalar");
    s = 2.5;
    s += 1.5;
    EXPECT_DOUBLE_EQ(s.value(), 4.0);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Ratio, QuotientAndZeroDenominator)
{
    StatGroup group("g");
    Counter &hits = group.makeCounter("hits", "");
    Counter &lookups = group.makeCounter("lookups", "");
    Ratio &rate = group.makeRatio("rate", "", hits, lookups);
    EXPECT_DOUBLE_EQ(rate.value(), 0.0); // no division by zero
    lookups += 4;
    hits += 1;
    EXPECT_DOUBLE_EQ(rate.value(), 0.25);
}

TEST(Histogram, MeanMinMaxStddev)
{
    StatGroup group("g");
    Histogram &h = group.makeHistogram("h", "", 0, 100, 10);
    h.sample(10);
    h.sample(20);
    h.sample(30);
    EXPECT_EQ(h.samples(), 3u);
    EXPECT_DOUBLE_EQ(h.mean(), 20.0);
    EXPECT_DOUBLE_EQ(h.min(), 10.0);
    EXPECT_DOUBLE_EQ(h.max(), 30.0);
    EXPECT_NEAR(h.stddev(), 10.0, 1e-9);
}

TEST(Histogram, BinsAndOverflow)
{
    StatGroup group("g");
    Histogram &h = group.makeHistogram("h", "", 0, 10, 10);
    h.sample(-1);       // underflow
    h.sample(0);        // bin 0
    h.sample(9.5);      // bin 9
    h.sample(10);       // overflow (hi is exclusive)
    h.sample(100, 3);   // weighted overflow
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(9), 1u);
    EXPECT_EQ(h.overflow(), 4u);
    EXPECT_EQ(h.samples(), 7u);
}

TEST(Histogram, WeightedSamples)
{
    StatGroup group("g");
    Histogram &h = group.makeHistogram("h", "", 0, 100, 4);
    h.sample(10, 3);
    h.sample(50, 1);
    EXPECT_EQ(h.samples(), 4u);
    EXPECT_DOUBLE_EQ(h.mean(), (30.0 + 50.0) / 4.0);
}

TEST(Histogram, ResetClearsEverything)
{
    StatGroup group("g");
    Histogram &h = group.makeHistogram("h", "", 0, 10, 5);
    h.sample(5);
    h.reset();
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.binCount(2), 0u);
}

TEST(Histogram, WeightedMomentsAndExtremes)
{
    StatGroup group("g");
    Histogram &h = group.makeHistogram("h", "", 0, 100, 10);
    h.sample(10, 4);
    h.sample(30, 1);
    EXPECT_EQ(h.samples(), 5u);
    EXPECT_DOUBLE_EQ(h.min(), 10.0);
    EXPECT_DOUBLE_EQ(h.max(), 30.0);
    EXPECT_DOUBLE_EQ(h.mean(), (4 * 10.0 + 30.0) / 5.0);
    // sum = 70, sumSq = 1300: var = (1300 - 70^2/5) / 4 = 80.
    EXPECT_NEAR(h.stddev(), std::sqrt(80.0), 1e-9);
    EXPECT_EQ(h.binCount(1), 4u);
    EXPECT_EQ(h.binCount(3), 1u);
}

TEST(Histogram, PercentileInterpolatesWithinBins)
{
    StatGroup group("g");
    Histogram &h = group.makeHistogram("h", "", 0, 100, 10);
    for (int v = 0; v < 100; ++v)
        h.sample(v);
    // rank(p) = p/100 * 99 + 1; p50 lands 0.5 samples into the
    // 10-count [50,60) bin -> 50 + 10 * 0.05.
    EXPECT_NEAR(h.percentile(50), 50.5, 1e-9);
    EXPECT_NEAR(h.percentile(90), 90.1, 1e-9);
    // p100 clamps to the observed maximum.
    EXPECT_DOUBLE_EQ(h.percentile(100), 99.0);
    EXPECT_DOUBLE_EQ(h.percentile(0), 1.0);
}

TEST(Histogram, PercentileHandlesUnderOverflow)
{
    StatGroup group("g");
    Histogram &h = group.makeHistogram("h", "", 0, 10, 10);
    h.sample(-5, 3);
    h.sample(5, 1);
    h.sample(20, 6);
    // Ranks 1..3 sit in the underflow bucket, 5..10 in overflow.
    EXPECT_DOUBLE_EQ(h.percentile(10), -5.0);
    EXPECT_DOUBLE_EQ(h.percentile(99), 20.0);
}

TEST(Histogram, PercentileOfEmptyIsZero)
{
    StatGroup group("g");
    Histogram &h = group.makeHistogram("h", "", 0, 10, 10);
    EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
}

TEST(StatGroup, ChildCreationIsIdempotent)
{
    StatGroup root("root");
    StatGroup &a = root.child("a");
    StatGroup &b = root.child("a");
    EXPECT_EQ(&a, &b);
    EXPECT_NE(&root.child("c"), &a);
}

TEST(StatGroup, FindLocatesStats)
{
    StatGroup root("root");
    Counter &c = root.makeCounter("hits", "desc");
    EXPECT_EQ(root.find("hits"), &c);
    EXPECT_EQ(root.find("misses"), nullptr);
}

TEST(StatGroup, ResetAllRecurses)
{
    StatGroup root("root");
    Counter &a = root.makeCounter("a", "");
    Counter &b = root.child("sub").makeCounter("b", "");
    a += 3;
    b += 4;
    root.resetAll();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(b.count(), 0u);
}

TEST(StatGroup, DumpContainsHierarchicalNames)
{
    StatGroup root("system");
    root.makeCounter("events", "total events") += 7;
    root.child("device").makeCounter("packets", "pkt count") += 2;
    std::ostringstream os;
    root.dump(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("system.events"), std::string::npos);
    EXPECT_NE(text.find("system.device.packets"), std::string::npos);
    EXPECT_NE(text.find("total events"), std::string::npos);
}

TEST(Histogram, DumpShowsDistribution)
{
    StatGroup root("r");
    Histogram &h = root.makeHistogram("lat", "latency", 0, 10, 2);
    h.sample(1);
    h.sample(6);
    std::ostringstream os;
    root.dump(os);
    EXPECT_NE(os.str().find("lat.mean"), std::string::npos);
    EXPECT_NE(os.str().find("lat.bin[0,5)"), std::string::npos);
}

/** Locates a stat entry by name in a parsed group node. */
const json::Value *
statEntry(const json::Value &group, const std::string &name)
{
    const json::Value *stats = group.find("stats");
    if (stats == nullptr)
        return nullptr;
    for (const json::Value &entry : stats->array) {
        const json::Value *n = entry.find("name");
        if (n != nullptr && n->str == name)
            return &entry;
    }
    return nullptr;
}

TEST(JsonExport, RoundTripMatchesFind)
{
    StatGroup root("sys");
    Counter &hits = root.makeCounter("hits", "hit count");
    Counter &lookups = root.makeCounter("lookups", "lookup count");
    root.makeRatio("hit_rate", "hits/lookups", hits, lookups);
    Scalar &gbps = root.makeScalar("gbps", "throughput");
    Histogram &lat = root.makeHistogram("lat", "latency", 0, 100, 10);
    Counter &pkts = root.child("dev").makeCounter("packets", "");

    hits += 3;
    lookups += 7;
    gbps = 12.3456789012345;
    lat.sample(5, 2);
    lat.sample(42);
    lat.sample(250); // overflow
    pkts += 11;

    auto doc = json::Value::parse(toJsonString(root));
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->find("name")->str, "sys");

    // Every value in the JSON must parse back bit-identical to what
    // find() reports — formatDouble guarantees the round trip.
    for (const char *name : {"hits", "lookups", "hit_rate", "gbps",
                             "lat"}) {
        const json::Value *entry = statEntry(*doc, name);
        ASSERT_NE(entry, nullptr) << name;
        EXPECT_EQ(entry->find("value")->number,
                  root.find(name)->value()) << name;
    }
    EXPECT_EQ(statEntry(*doc, "hits")->find("kind")->str, "counter");
    EXPECT_EQ(statEntry(*doc, "hits")->find("count")->number, 3.0);
    EXPECT_EQ(statEntry(*doc, "hit_rate")->find("value")->number,
              3.0 / 7.0);
    EXPECT_EQ(statEntry(*doc, "gbps")->find("desc")->str,
              "throughput");

    const json::Value *jlat = statEntry(*doc, "lat");
    EXPECT_EQ(jlat->find("samples")->number, 4.0);
    EXPECT_EQ(jlat->find("mean")->number, lat.mean());
    EXPECT_EQ(jlat->find("stddev")->number, lat.stddev());
    EXPECT_EQ(jlat->find("min")->number, 5.0);
    EXPECT_EQ(jlat->find("max")->number, 250.0);
    EXPECT_EQ(jlat->find("overflow")->number, 1.0);
    ASSERT_EQ(jlat->find("bins")->array.size(), 10u);
    EXPECT_EQ(jlat->find("bins")->array[0].number, 2.0);
    EXPECT_EQ(jlat->find("bins")->array[4].number, 1.0);
    EXPECT_EQ(jlat->find("percentiles")->find("p50")->number,
              lat.percentile(50));
    EXPECT_EQ(jlat->find("percentiles")->find("p99")->number,
              lat.percentile(99));

    const json::Value *children = doc->find("children");
    ASSERT_EQ(children->array.size(), 1u);
    EXPECT_EQ(children->array[0].find("name")->str, "dev");
    EXPECT_EQ(statEntry(children->array[0], "packets")
                  ->find("value")->number,
              root.child("dev").find("packets")->value());
}

TEST(Callback, ReadsSourceLazily)
{
    StatGroup root("root");
    uint64_t hits = 0;
    Callback &cb = root.makeCallback(
        "hits", "live hit count",
        [&hits] { return static_cast<double>(hits); });
    EXPECT_EQ(cb.value(), 0.0);
    hits = 7;
    EXPECT_EQ(cb.value(), 7.0); // no snapshot: reads the source
    EXPECT_EQ(root.find("hits"), &cb);
}

TEST(Callback, ResetLeavesSourceAlone)
{
    StatGroup root("root");
    double v = 3.5;
    Callback &cb =
        root.makeCallback("v", "", [&v] { return v; });
    root.resetAll();
    EXPECT_EQ(cb.value(), 3.5); // the owner resets its own state
}

TEST(Callback, AppearsInDumpAndJson)
{
    StatGroup root("root");
    root.makeCallback("load", "current load", [] { return 0.25; });
    std::ostringstream os;
    root.dump(os);
    EXPECT_NE(os.str().find("root.load"), std::string::npos);
    EXPECT_NE(os.str().find("0.25"), std::string::npos);

    auto doc = json::Value::parse(toJsonString(root));
    ASSERT_TRUE(doc.has_value());
    const json::Value &stat = doc->find("stats")->array.at(0);
    EXPECT_EQ(stat.find("kind")->str, "callback");
    EXPECT_EQ(stat.find("value")->number, 0.25);
}

TEST(JsonExport, EmptyGroupHasEmptyArrays)
{
    StatGroup root("empty");
    auto doc = json::Value::parse(toJsonString(root));
    ASSERT_TRUE(doc.has_value());
    EXPECT_TRUE(doc->find("stats")->array.empty());
    EXPECT_TRUE(doc->find("children")->array.empty());
}

} // namespace
} // namespace hypersio::stats
