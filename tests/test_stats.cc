/** Unit tests for the statistics package. */

#include <gtest/gtest.h>

#include <sstream>

#include "stats/stats.hh"

namespace hypersio::stats
{
namespace
{

TEST(Counter, IncrementAndAdd)
{
    StatGroup group("g");
    Counter &c = group.makeCounter("c", "a counter");
    EXPECT_EQ(c.count(), 0u);
    ++c;
    c += 5;
    EXPECT_EQ(c.count(), 6u);
    EXPECT_DOUBLE_EQ(c.value(), 6.0);
    c.reset();
    EXPECT_EQ(c.count(), 0u);
}

TEST(Scalar, AssignAndAccumulate)
{
    StatGroup group("g");
    Scalar &s = group.makeScalar("s", "a scalar");
    s = 2.5;
    s += 1.5;
    EXPECT_DOUBLE_EQ(s.value(), 4.0);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Ratio, QuotientAndZeroDenominator)
{
    StatGroup group("g");
    Counter &hits = group.makeCounter("hits", "");
    Counter &lookups = group.makeCounter("lookups", "");
    Ratio &rate = group.makeRatio("rate", "", hits, lookups);
    EXPECT_DOUBLE_EQ(rate.value(), 0.0); // no division by zero
    lookups += 4;
    hits += 1;
    EXPECT_DOUBLE_EQ(rate.value(), 0.25);
}

TEST(Histogram, MeanMinMaxStddev)
{
    StatGroup group("g");
    Histogram &h = group.makeHistogram("h", "", 0, 100, 10);
    h.sample(10);
    h.sample(20);
    h.sample(30);
    EXPECT_EQ(h.samples(), 3u);
    EXPECT_DOUBLE_EQ(h.mean(), 20.0);
    EXPECT_DOUBLE_EQ(h.min(), 10.0);
    EXPECT_DOUBLE_EQ(h.max(), 30.0);
    EXPECT_NEAR(h.stddev(), 10.0, 1e-9);
}

TEST(Histogram, BinsAndOverflow)
{
    StatGroup group("g");
    Histogram &h = group.makeHistogram("h", "", 0, 10, 10);
    h.sample(-1);       // underflow
    h.sample(0);        // bin 0
    h.sample(9.5);      // bin 9
    h.sample(10);       // overflow (hi is exclusive)
    h.sample(100, 3);   // weighted overflow
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(9), 1u);
    EXPECT_EQ(h.overflow(), 4u);
    EXPECT_EQ(h.samples(), 7u);
}

TEST(Histogram, WeightedSamples)
{
    StatGroup group("g");
    Histogram &h = group.makeHistogram("h", "", 0, 100, 4);
    h.sample(10, 3);
    h.sample(50, 1);
    EXPECT_EQ(h.samples(), 4u);
    EXPECT_DOUBLE_EQ(h.mean(), (30.0 + 50.0) / 4.0);
}

TEST(Histogram, ResetClearsEverything)
{
    StatGroup group("g");
    Histogram &h = group.makeHistogram("h", "", 0, 10, 5);
    h.sample(5);
    h.reset();
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.binCount(2), 0u);
}

TEST(StatGroup, ChildCreationIsIdempotent)
{
    StatGroup root("root");
    StatGroup &a = root.child("a");
    StatGroup &b = root.child("a");
    EXPECT_EQ(&a, &b);
    EXPECT_NE(&root.child("c"), &a);
}

TEST(StatGroup, FindLocatesStats)
{
    StatGroup root("root");
    Counter &c = root.makeCounter("hits", "desc");
    EXPECT_EQ(root.find("hits"), &c);
    EXPECT_EQ(root.find("misses"), nullptr);
}

TEST(StatGroup, ResetAllRecurses)
{
    StatGroup root("root");
    Counter &a = root.makeCounter("a", "");
    Counter &b = root.child("sub").makeCounter("b", "");
    a += 3;
    b += 4;
    root.resetAll();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(b.count(), 0u);
}

TEST(StatGroup, DumpContainsHierarchicalNames)
{
    StatGroup root("system");
    root.makeCounter("events", "total events") += 7;
    root.child("device").makeCounter("packets", "pkt count") += 2;
    std::ostringstream os;
    root.dump(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("system.events"), std::string::npos);
    EXPECT_NE(text.find("system.device.packets"), std::string::npos);
    EXPECT_NE(text.find("total events"), std::string::npos);
}

TEST(Histogram, DumpShowsDistribution)
{
    StatGroup root("r");
    Histogram &h = root.makeHistogram("lat", "latency", 0, 10, 2);
    h.sample(1);
    h.sample(6);
    std::ostringstream os;
    root.dump(os);
    EXPECT_NE(os.str().find("lat.mean"), std::string::npos);
    EXPECT_NE(os.str().find("lat.bin[0,5)"), std::string::npos);
}

} // namespace
} // namespace hypersio::stats
