/** Tests for the textual tenant-log interchange format. */

#include <gtest/gtest.h>

#include <sstream>

#include "workload/benchmarks.hh"
#include "workload/log_text.hh"
#include "workload/tenant_model.hh"

namespace hypersio::workload
{
namespace
{

TEST(LogText, RoundTripPreservesEverything)
{
    const auto profile = benchmarkProfile(Benchmark::Mediastream);
    TenantLogGenerator gen(profile.pattern, 42);
    const trace::TenantLog original = gen.generate(17, 500);

    std::stringstream buffer;
    writeTextLog(original, buffer);
    const trace::TenantLog loaded =
        parseTextLog(buffer, "roundtrip");

    EXPECT_EQ(loaded.sid, original.sid);
    ASSERT_EQ(loaded.packets.size(), original.packets.size());
    ASSERT_EQ(loaded.ops.size(), original.ops.size());
    for (size_t i = 0; i < loaded.packets.size(); ++i) {
        const auto &a = loaded.packets[i];
        const auto &b = original.packets[i];
        EXPECT_EQ(a.ringIova, b.ringIova);
        EXPECT_EQ(a.dataIova, b.dataIova);
        EXPECT_EQ(a.notifyIova, b.notifyIova);
        EXPECT_EQ(a.dataHuge, b.dataHuge);
        EXPECT_EQ(a.wireBytes, b.wireBytes);
        EXPECT_EQ(a.opCount, b.opCount);
    }
    for (size_t i = 0; i < loaded.ops.size(); ++i) {
        EXPECT_EQ(loaded.ops[i].pageBase, original.ops[i].pageBase);
        EXPECT_EQ(loaded.ops[i].isMap, original.ops[i].isMap);
        EXPECT_EQ(loaded.ops[i].size, original.ops[i].size);
    }
}

TEST(LogText, ParsesHandWrittenLog)
{
    std::stringstream input(
        "# hand-written example\n"
        "tenant 3\n"
        "map   0x34800000 4K\n"
        "map   0xbbe00000 2M\n"
        "pkt   0x34800000 0xbbe00040 2M 0x34800f00\n"
        "pkt   0x34800010 0xbbe00580 2M 0x34800f00 256\n"
        "unmap 0xbbe00000 2M\n"
        "map   0xbc000000 2M\n"
        "pkt   0x34800020 0xbc000000 2M 0x34800f00\n");
    const trace::TenantLog log = parseTextLog(input, "test");

    EXPECT_EQ(log.sid, 3u);
    ASSERT_EQ(log.packets.size(), 3u);
    EXPECT_EQ(log.ops.size(), 4u);
    EXPECT_EQ(log.packets[0].opCount, 2u);
    EXPECT_EQ(log.packets[1].wireBytes, 256u);
    EXPECT_EQ(log.packets[2].opCount, 2u);
    const trace::PageOp &unmap = log.ops[log.packets[2].opBegin];
    EXPECT_FALSE(unmap.isMap);
    EXPECT_EQ(unmap.pageBase, 0xbbe00000u);
}

TEST(LogText, CommentsAndBlankLinesIgnored)
{
    std::stringstream input(
        "\n"
        "# comment only\n"
        "tenant 1\n"
        "\n"
        "pkt 0x1000 0x2000 4K 0x3000  # trailing comment\n");
    const trace::TenantLog log = parseTextLog(input, "test");
    ASSERT_EQ(log.packets.size(), 1u);
    EXPECT_FALSE(log.packets[0].dataHuge);
}

TEST(LogText, WriterEmitsParsableKeywords)
{
    trace::TenantLog log;
    log.sid = 9;
    log.ops.push_back({0x1000, mem::PageSize::Size4K, true});
    trace::PacketRecord pkt;
    pkt.sid = 9;
    pkt.ringIova = 0x1000;
    pkt.dataIova = 0x2000;
    pkt.dataHuge = false;
    pkt.notifyIova = 0x1f00;
    pkt.opBegin = 0;
    pkt.opCount = 1;
    log.packets.push_back(pkt);

    std::stringstream buffer;
    writeTextLog(log, buffer);
    const std::string text = buffer.str();
    EXPECT_NE(text.find("tenant 9"), std::string::npos);
    EXPECT_NE(text.find("map   0x1000 4K"), std::string::npos);
    EXPECT_NE(text.find("pkt   0x1000 0x2000 4K 0x1f00"),
              std::string::npos);
}

} // namespace
} // namespace hypersio::workload
