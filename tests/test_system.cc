/** Integration tests for the assembled system: the paper's headline
 *  behaviours on small scaled-down traces, plus run invariants. */

#include <gtest/gtest.h>

#include "core/runner.hh"
#include "core/system.hh"
#include "trace/constructor.hh"
#include "workload/benchmarks.hh"

namespace hypersio::core
{
namespace
{

trace::HyperTrace
makeTrace(unsigned tenants, const char *il = "RR1",
          workload::Benchmark bench = workload::Benchmark::Iperf3,
          double scale = 0.02)
{
    auto logs = workload::generateLogs(bench, tenants, 42, scale);
    return trace::constructTrace(logs, trace::parseInterleaving(il));
}

TEST(System, EmptyTraceYieldsZeroResults)
{
    System system(SystemConfig::base());
    const RunResults r = system.run(trace::HyperTrace{});
    EXPECT_EQ(r.packetsProcessed, 0u);
    EXPECT_DOUBLE_EQ(r.achievedGbps, 0.0);
}

TEST(System, ProcessesEveryPacketExactlyOnce)
{
    const auto tr = makeTrace(4);
    System system(SystemConfig::base());
    const RunResults r = system.run(tr);
    EXPECT_EQ(r.packetsProcessed, tr.packets.size());
    EXPECT_EQ(r.translations, tr.packets.size() * 3);
}

TEST(System, UtilizationNeverExceedsLinkRate)
{
    for (unsigned tenants : {2u, 16u, 64u}) {
        const auto tr = makeTrace(tenants);
        System system(SystemConfig::hypertrio());
        const RunResults r = system.run(tr);
        EXPECT_LE(r.utilization, 1.0 + 1e-9);
        EXPECT_GT(r.utilization, 0.0);
    }
}

TEST(System, BypassTranslationRunsAtLinkRate)
{
    const auto tr = makeTrace(8);
    System system(SystemConfig::base());
    const RunResults r = system.run(tr, /*bypass=*/true);
    EXPECT_EQ(r.packetsProcessed, tr.packets.size());
    EXPECT_EQ(r.packetsDropped, 0u);
    EXPECT_NEAR(r.utilization, 1.0, 1e-9);
}

TEST(System, BaseCollapsesInHyperTenantRegime)
{
    // The paper's central observation: the Base design cannot use
    // the link once tenants overwhelm the DevTLB.
    const RunResults low = [] {
        System s(SystemConfig::base());
        return s.run(makeTrace(2));
    }();
    const RunResults high = [] {
        System s(SystemConfig::base());
        return s.run(makeTrace(64));
    }();
    EXPECT_GT(low.utilization, 0.5);
    EXPECT_LT(high.utilization, 0.1);
}

TEST(System, HyperTrioSustainsBandwidthAtScale)
{
    System s(SystemConfig::hypertrio());
    const RunResults r = s.run(makeTrace(64));
    EXPECT_GT(r.utilization, 0.8);
}

TEST(System, HyperTrioBeatsBaseEverywhere)
{
    for (unsigned tenants : {4u, 16u, 64u, 128u}) {
        const auto tr = makeTrace(tenants);
        System base(SystemConfig::base());
        System ht(SystemConfig::hypertrio());
        const double b = base.run(tr).achievedGbps;
        const double h = ht.run(tr).achievedGbps;
        EXPECT_GE(h, b) << tenants << " tenants";
    }
}

TEST(System, MmuPrefetchIssuesAndConsumesStridedFills)
{
    // The MMU-aware DMA prefetcher end to end: descriptor-ring
    // strides train the per-(tenant, class) detectors, predicted
    // pages translate through the prefetch-tagged IOMMU path, and
    // completed fills land in the Prefetch Buffer where demand
    // lookups consume them. In checked builds the auto-installed
    // shadow verifies every issued page against the reference
    // detector.
    SystemConfig config = SystemConfig::base();
    config.name = "mmu-prefetch";
    config.device.prefetch.enabled = true;
    config.device.prefetch.kind = PrefetchKind::MmuDma;
    config.device.prefetch.bufferEntries = 32;
    config.device.prefetch.pagesPerPrefetch = 2;
    const auto tr = makeTrace(16);
    System system(config);
    const RunResults r = system.run(tr);
    EXPECT_EQ(r.packetsProcessed, tr.packets.size());
    EXPECT_GT(system.device().prefetchesSent(), 0u);
    const cache::CacheStats *pb = system.device().prefetchBufferStats();
    ASSERT_NE(pb, nullptr);
    EXPECT_GT(pb->insertions, 0u);
    // No History Reader exists in this mode.
    EXPECT_EQ(system.historyReader(), nullptr);
}

TEST(System, SubEntrySharingRunsCleanAtScale)
{
    // Sub-entry sharing across the DevTLB and both paging caches at
    // the hyper-tenant point; the checked-build mirror enforces the
    // per-tag tenant bound and row legality throughout.
    SystemConfig config = SystemConfig::base();
    config.name = "sub-entry";
    config.device.devtlb.subEntries = 4;
    config.iommu.l2tlb.subEntries = 4;
    config.iommu.l3tlb.subEntries = 4;
    const auto tr = makeTrace(64);
    System system(config);
    const RunResults r = system.run(tr);
    EXPECT_EQ(r.packetsProcessed, tr.packets.size());
    EXPECT_GT(r.utilization, 0.0);
}

TEST(System, DropsOnlyHappenWhenPtbIsSmall)
{
    const auto tr = makeTrace(32);
    SystemConfig config = SystemConfig::base();
    config.device.ptbEntries = 1;
    System small(config);
    const RunResults r_small = small.run(tr);
    EXPECT_GT(r_small.packetsDropped, 0u);

    SystemConfig big = SystemConfig::hypertrio();
    big.device.ptbEntries = 4096;
    System large(big);
    const RunResults r_large = large.run(tr);
    EXPECT_EQ(r_large.packetsDropped, 0u);
}

TEST(System, AdmitBatchZeroIsTreatedAsOne)
{
    // 0 is the "unset" spelling; both must replay the classic
    // one-event-per-slot arrival process, event for event.
    const auto tr = makeTrace(8, "RAND1");
    SystemConfig one = SystemConfig::hypertrio();
    one.admitBatch = 1;
    SystemConfig zero = SystemConfig::hypertrio();
    zero.admitBatch = 0;
    System a(one), b(zero);
    EXPECT_EQ(a.run(tr), b.run(tr));
}

TEST(System, BatchedAdmissionConservesPackets)
{
    const auto tr = makeTrace(8, "RAND1");
    for (unsigned batch : {2u, 4u, 16u}) {
        SystemConfig config = SystemConfig::hypertrio();
        config.admitBatch = batch;
        System system(config);
        const RunResults r = system.run(tr);
        EXPECT_EQ(r.packetsProcessed, tr.packets.size())
            << "batch " << batch;
        EXPECT_EQ(r.translations, tr.packets.size() * 3)
            << "batch " << batch;
    }
}

TEST(System, BatchedAdmissionSurvivesTinyPtb)
{
    // A full PTB ends the batch early and the packet retries at the
    // next arrival event — drops are events, never lost packets.
    const auto tr = makeTrace(32);
    SystemConfig config = SystemConfig::base();
    config.device.ptbEntries = 1;
    config.admitBatch = 8;
    System system(config);
    const RunResults r = system.run(tr);
    EXPECT_GT(r.packetsDropped, 0u);
    EXPECT_EQ(r.packetsProcessed, tr.packets.size());
}

TEST(System, DeterministicAcrossRuns)
{
    const auto tr = makeTrace(16, "RAND1");
    System a(SystemConfig::hypertrio());
    System b(SystemConfig::hypertrio());
    const RunResults ra = a.run(tr);
    const RunResults rb = b.run(tr);
    EXPECT_EQ(ra.elapsed, rb.elapsed);
    EXPECT_EQ(ra.packetsDropped, rb.packetsDropped);
    EXPECT_DOUBLE_EQ(ra.achievedGbps, rb.achievedGbps);
}

TEST(System, OracleDevtlbRunsAndBeatsLruAtModerateScale)
{
    const auto tr = makeTrace(8);
    SystemConfig lru = SystemConfig::base();
    lru.device.devtlb.policy = cache::ReplPolicyKind::LRU;
    SystemConfig oracle = SystemConfig::base();
    oracle.device.devtlb.policy = cache::ReplPolicyKind::Oracle;
    System s_lru(lru);
    System s_oracle(oracle);
    const double g_lru = s_lru.run(tr).achievedGbps;
    const double g_oracle = s_oracle.run(tr).achievedGbps;
    EXPECT_GE(g_oracle, g_lru * 0.99);
}

TEST(System, UnmapInvalidationForcesRetranslation)
{
    // mediastream with page retirement: unmaps must not fault later
    // accesses (remap precedes reuse) and the run must complete.
    const auto tr =
        makeTrace(4, "RR1", workload::Benchmark::Mediastream, 0.1);
    System s(SystemConfig::hypertrio());
    const RunResults r = s.run(tr);
    EXPECT_EQ(r.packetsProcessed, tr.packets.size());
    EXPECT_GT(r.utilization, 0.5);
}

TEST(System, StatsDumpIsNonEmpty)
{
    System s(SystemConfig::hypertrio());
    s.run(makeTrace(4));
    std::ostringstream os;
    s.dumpStats(os);
    EXPECT_NE(os.str().find("system.device.packets"),
              std::string::npos);
    EXPECT_NE(os.str().find("system.iommu.requests"),
              std::string::npos);
}

TEST(System, PacketLatencyIsBoundedBelowByHitPath)
{
    System s(SystemConfig::hypertrio());
    const RunResults r = s.run(makeTrace(2));
    // Three serialized DevTLB hits = 6 ns is the floor.
    EXPECT_GE(r.avgPacketLatencyNs, 6.0);
}

TEST(ExperimentRunnerTest, CachesTracesAcrossPoints)
{
    ExperimentRunner runner(0.02, 42);
    const auto &a = runner.getTrace(workload::Benchmark::Iperf3, 8,
                                    trace::parseInterleaving("RR1"));
    const auto &b = runner.getTrace(workload::Benchmark::Iperf3, 8,
                                    trace::parseInterleaving("RR1"));
    EXPECT_EQ(&a, &b);
    const auto &c = runner.getTrace(workload::Benchmark::Iperf3, 8,
                                    trace::parseInterleaving("RR4"));
    EXPECT_NE(&a, &c);
}

TEST(ExperimentRunnerTest, RunProducesConsistentRow)
{
    ExperimentRunner runner(0.02, 42);
    ExperimentPoint point;
    point.label = "test";
    point.config = SystemConfig::base();
    point.bench = workload::Benchmark::Iperf3;
    point.tenants = 4;
    point.interleave = trace::parseInterleaving("RR1");
    const ExperimentRow row = runner.run(point);
    EXPECT_GT(row.results.packetsProcessed, 0u);
    EXPECT_EQ(row.point.label, "test");
}

TEST(ExperimentRunnerTest, PaperSweepIsPowersOfTwo)
{
    const auto sweep = paperTenantSweep(1024);
    ASSERT_FALSE(sweep.empty());
    EXPECT_EQ(sweep.front(), 4u);
    EXPECT_EQ(sweep.back(), 1024u);
    for (size_t i = 1; i < sweep.size(); ++i)
        EXPECT_EQ(sweep[i], sweep[i - 1] * 2);
}

} // namespace
} // namespace hypersio::core
