/**
 * Fused-vs-unfused golden equality: the event-fusion fast path
 * (sim/event_queue.hh::tryFuseAdvance) elides hop *events*, never
 * hop *behaviour*, so a run with SystemConfig::eventFusion on must
 * be indistinguishable from the event-per-hop reference — identical
 * RunResults, identical stat-tree bytes, identical streaming
 * retirement ledgers — under every system variant the translation
 * fuzzer covers (tests/fuzz_translation.cc) and every adversarial
 * interleaving pattern.
 *
 * In the checked build each leg additionally runs under a collecting
 * shadow oracle, so the fused path's hook ordering is verified
 * packet by packet while the equality is being established. The
 * cross-build flavour of this property (-DHYPERSIO_EVENT_FUSION=OFF
 * vs ON) is gated by scripts/check_repo.sh gate 12.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <utility>

#include "core/multi_system.hh"
#include "core/system.hh"
#include "oracle/shadow.hh"
#include "workload/adversarial.hh"
#include "workload/streaming.hh"

namespace hypersio::core
{
namespace
{

/**
 * The system variants fuzz_translation.cc runs, mirrored here so
 * the fusion goldens cover the same structure space: baseline and
 * HyperTRIO geometries, the overflow-everything "stressed" shape,
 * five-level walks, sub-entry sharing, and the MMU-aware DMA
 * prefetcher (whose squash machinery must force fallbacks, not
 * fused mispredictions).
 */
struct SystemVariant
{
    const char *name;
    SystemConfig (*make)();
};

SystemConfig
makeStressed()
{
    SystemConfig config = SystemConfig::hypertrio();
    config.name = "stressed";
    config.device.ptbEntries = 4;
    config.device.devtlb = {16, 4, 4, cache::ReplPolicyKind::LFU, 7};
    config.device.prefetch.bufferEntries = 8;
    config.device.prefetch.historyLength = 4;
    config.iommu.iotlb = {64, 4, 1, cache::ReplPolicyKind::LFU, 1,
                          true};
    config.iommu.l2tlb = {32, 4, 4, cache::ReplPolicyKind::LFU, 2};
    config.iommu.l3tlb = {64, 4, 8, cache::ReplPolicyKind::LFU, 3};
    config.iommu.walkers = 2;
    return config;
}

SystemConfig
makeFiveLevel()
{
    SystemConfig config = SystemConfig::base();
    config.name = "base5";
    config.iommu.pagingLevels = 5;
    config.iommu.walkers = 1;
    return config;
}

SystemConfig
makeSubEntry()
{
    SystemConfig config = SystemConfig::base();
    config.name = "subentry";
    config.device.devtlb = {16, 4, 1, cache::ReplPolicyKind::LRU, 7};
    config.device.devtlb.subEntries = 4;
    config.iommu.l2tlb = {32, 4, 1, cache::ReplPolicyKind::LRU, 2};
    config.iommu.l2tlb.subEntries = 4;
    config.iommu.l3tlb = {64, 4, 1, cache::ReplPolicyKind::LRU, 3};
    config.iommu.l3tlb.subEntries = 4;
    return config;
}

SystemConfig
makeMmuPrefetch()
{
    SystemConfig config = SystemConfig::base();
    config.name = "mmudma";
    config.device.ptbEntries = 8;
    config.device.prefetch.enabled = true;
    config.device.prefetch.kind = PrefetchKind::MmuDma;
    config.device.prefetch.bufferEntries = 8;
    config.device.prefetch.pagesPerPrefetch = 2;
    return config;
}

constexpr SystemVariant Variants[] = {
    {"base", &SystemConfig::base},
    {"hypertrio", &SystemConfig::hypertrio},
    {"stressed", &makeStressed},
    {"base5", &makeFiveLevel},
    {"subentry", &makeSubEntry},
    {"mmudma", &makeMmuPrefetch},
};

/** One leg's complete observable outcome. */
struct Golden
{
    RunResults results;
    std::string statsBytes;
    uint64_t fusedHops = 0;
};

/**
 * Runs `trace` under `variant` with the fusion knob as given. In
 * the checked build the run executes under a collecting shadow
 * oracle and any violation fails the test with the repro context.
 */
Golden
runLeg(const SystemVariant &variant, const trace::HyperTrace &trace,
       uint64_t seed, bool fusion)
{
    SystemConfig config = variant.make();
    config.seed = seed;
    config.eventFusion = fusion;
    System system(config);

    Golden leg;
#ifdef HYPERSIO_CHECKED
    oracle::ShadowChecker checker(toShadowConfig(config),
                                  &system.tables(),
                                  /*fail_fast=*/false);
    {
        oracle::ShadowScope scope(checker);
        leg.results = system.run(trace);
    }
    EXPECT_GT(checker.translationChecks(), 0u);
    EXPECT_EQ(checker.violationCount(), 0u);
    for (const auto &violation : checker.violations()) {
        ADD_FAILURE() << "config=" << variant.name
                      << " fusion=" << fusion << " seed=" << seed
                      << ": " << violation;
    }
#else
    leg.results = system.run(trace);
#endif

    std::ostringstream stats;
    system.dumpStats(stats);
    leg.statsBytes = stats.str();
    leg.fusedHops = system.eventQueue().fusedHops();
    return leg;
}

/**
 * Every adversarial pattern under every variant: the fused and
 * per-hop legs must agree exactly — RunResults field for field and
 * the full stat tree byte for byte. The per-hop leg must never
 * fuse; the fused legs must collectively fuse (per-pattern counts
 * may be zero when a trace never hits the deterministic window).
 */
TEST(EventFusion, GoldenEqualityAcrossVariantsAndPatterns)
{
    constexpr uint64_t Seed = 20260808;
    constexpr uint64_t Packets = 120;

    uint64_t total_fused = 0;
    for (const auto pattern : workload::AllAdversarialPatterns) {
        workload::AdversarialConfig tc;
        tc.tenants = 6;
        tc.packets = Packets;
        tc.seed = Seed;
        const trace::HyperTrace trace =
            workload::makeAdversarialTrace(pattern, tc);

        for (const auto &variant : Variants) {
            SCOPED_TRACE(std::string("pattern=") +
                         workload::adversarialPatternName(pattern) +
                         " config=" + variant.name);
            const Golden fused =
                runLeg(variant, trace, Seed, /*fusion=*/true);
            const Golden perhop =
                runLeg(variant, trace, Seed, /*fusion=*/false);

            EXPECT_TRUE(fused.results == perhop.results)
                << "RunResults diverged";
            EXPECT_EQ(fused.statsBytes, perhop.statsBytes);
            EXPECT_EQ(perhop.fusedHops, 0u);
            total_fused += fused.fusedHops;
        }
    }
    if (sim::EventQueue::FusionCompiledIn)
        EXPECT_GT(total_fused, 0u) << "fast path never engaged";
    else
        EXPECT_EQ(total_fused, 0u);
}

/**
 * Streaming churn (attach/evict storms through runStream) with
 * fusion on vs off: the retirement ledger carries the event
 * kernel's sequence numbers, so equality here proves the fused
 * runs burn exactly the sequence numbers the elided events would
 * have consumed — the strongest single observable of ledger parity.
 */
TEST(EventFusion, StreamingChurnLedgerParity)
{
    constexpr uint64_t Seed = 20260808;

    for (const auto &variant : Variants) {
        SCOPED_TRACE(std::string("config=") + variant.name);
        workload::ChurnConfig cc;
        cc.population = 24;
        cc.slots = 5;
        cc.seed = Seed;
        cc.minBudget = 12;
        cc.maxBudget = 36;
        cc.tailProb = 0.1;
        cc.tailMin = 64;
        cc.tailMax = 160;

        auto leg = [&](bool fusion) {
            SystemConfig config = variant.make();
            config.seed = Seed;
            config.eventFusion = fusion;
            System system(config);
            workload::ChurnStream stream(cc);
#ifdef HYPERSIO_CHECKED
            oracle::ShadowChecker checker(toShadowConfig(config),
                                          &system.tables(),
                                          /*fail_fast=*/false);
            {
                oracle::ShadowScope scope(checker);
                system.runStream(stream);
            }
            EXPECT_EQ(checker.violationCount(), 0u);
            for (const auto &violation : checker.violations()) {
                ADD_FAILURE() << "config=" << variant.name
                              << " fusion=" << fusion << ": "
                              << violation;
            }
#else
            system.runStream(stream);
#endif
            EXPECT_EQ(system.tables().size(), 0u);
            std::ostringstream stats;
            system.dumpStats(stats);
            return std::pair(system.streamRetirements(),
                             stats.str());
        };

        const auto fused = leg(true);
        const auto perhop = leg(false);
        EXPECT_EQ(fused.first, perhop.first)
            << "retirement (tick, seq, sid) ledger diverged";
        EXPECT_EQ(fused.second, perhop.second);
    }
}

/**
 * Multi-device sharing: N devices on one shared chipset run the
 * same queue, so a fused hop on one device must never leapfrog
 * another device's pending event. The shared-queue heap check in
 * tryFuseAdvance is what this pins down.
 */
TEST(EventFusion, MultiSystemGoldenEquality)
{
    constexpr uint64_t Seed = 20260808;

    workload::AdversarialConfig tc;
    tc.tenants = 6;
    tc.packets = 160;
    tc.seed = Seed;
    const trace::HyperTrace trace = workload::makeAdversarialTrace(
        workload::AdversarialPattern::RemapChurn, tc);

    auto leg = [&](bool fusion) {
        SystemConfig config = SystemConfig::hypertrio();
        config.seed = Seed;
        config.eventFusion = fusion;
        MultiSystem system(config, /*num_devices=*/2);
        const MultiRunResults results = system.run(trace);
        std::ostringstream stats;
        system.dumpStats(stats);
        return std::tuple(results.packetsProcessed,
                          results.packetsDropped, results.elapsed,
                          results.walks, stats.str(),
                          system.eventQueue().fusedHops());
    };

    const auto fused = leg(true);
    const auto perhop = leg(false);
    EXPECT_EQ(std::get<0>(fused), std::get<0>(perhop));
    EXPECT_EQ(std::get<1>(fused), std::get<1>(perhop));
    EXPECT_EQ(std::get<2>(fused), std::get<2>(perhop));
    EXPECT_EQ(std::get<3>(fused), std::get<3>(perhop));
    EXPECT_EQ(std::get<4>(fused), std::get<4>(perhop));
    EXPECT_EQ(std::get<5>(perhop), 0u);
    if (sim::EventQueue::FusionCompiledIn) {
        EXPECT_GT(std::get<5>(fused), 0u);
    }
}

} // namespace
} // namespace hypersio::core
