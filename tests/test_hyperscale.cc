/**
 * Streaming hyper-scale regime tests.
 *
 * Golden equivalences: the lazy generators (TenantStream,
 * SpliceStream, MaterializedStream) must reproduce the materialized
 * path byte for byte — same packets, same page ops, same RunResults,
 * same stats tree — and the tenant-churn eviction machinery must
 * keep total state O(active slots) while retiring every tenant of an
 * unbounded population.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <vector>

#include "core/multi_system.hh"
#include "core/system.hh"
#include "iommu/context_cache.hh"
#include "trace/constructor.hh"
#include "workload/benchmarks.hh"
#include "workload/streaming.hh"
#include "workload/tenant_model.hh"

namespace hypersio
{
namespace
{

void
expectSamePacket(const trace::PacketRecord &a,
                 const trace::PacketRecord &b, size_t i)
{
    EXPECT_EQ(a.sid, b.sid) << "packet " << i;
    EXPECT_EQ(a.pasid, b.pasid) << "packet " << i;
    EXPECT_EQ(a.opCount, b.opCount) << "packet " << i;
    EXPECT_EQ(a.dataHuge, b.dataHuge) << "packet " << i;
    EXPECT_EQ(a.wireBytes, b.wireBytes) << "packet " << i;
    EXPECT_EQ(a.ringIova, b.ringIova) << "packet " << i;
    EXPECT_EQ(a.dataIova, b.dataIova) << "packet " << i;
    EXPECT_EQ(a.notifyIova, b.notifyIova) << "packet " << i;
}

void
expectSameOps(const trace::PageOp *a, const trace::PageOp *b,
              uint16_t count, size_t i)
{
    for (uint16_t k = 0; k < count; ++k) {
        EXPECT_EQ(a[k].pageBase, b[k].pageBase)
            << "packet " << i << " op " << k;
        EXPECT_EQ(a[k].size, b[k].size)
            << "packet " << i << " op " << k;
        EXPECT_EQ(a[k].isMap, b[k].isMap)
            << "packet " << i << " op " << k;
    }
}

/** TenantStream must equal TenantLogGenerator::generate exactly. */
void
expectStreamMatchesGenerator(const workload::TenantPattern &pattern,
                             uint64_t seed, trace::SourceId sid,
                             uint64_t budget, bool include_init)
{
    const trace::TenantLog log =
        workload::TenantLogGenerator(pattern, seed)
            .generate(sid, budget, include_init);
    workload::TenantStream stream(pattern, seed, sid, budget,
                                  include_init);

    trace::PacketRecord pkt;
    std::vector<trace::PageOp> ops;
    for (size_t i = 0; i < log.packets.size(); ++i) {
        ASSERT_FALSE(stream.exhausted()) << "packet " << i;
        ASSERT_TRUE(stream.next(pkt, ops)) << "packet " << i;
        expectSamePacket(pkt, log.packets[i], i);
        ASSERT_EQ(ops.size(), size_t{log.packets[i].opCount});
        expectSameOps(ops.data(),
                      log.ops.data() + log.packets[i].opBegin,
                      log.packets[i].opCount, i);
    }
    EXPECT_TRUE(stream.exhausted());
    EXPECT_FALSE(stream.next(pkt, ops));
    EXPECT_EQ(stream.emitted(), log.packets.size());
}

TEST(TenantStream, MatchesGeneratorAcrossBenchmarkProfiles)
{
    for (const workload::Benchmark bench :
         workload::AllBenchmarks) {
        const workload::TenantPattern pattern =
            workload::benchmarkProfile(bench).pattern;
        expectStreamMatchesGenerator(pattern, 7, 3, 9000, true);
        expectStreamMatchesGenerator(pattern, 7, 3, 9000, false);
    }
}

TEST(TenantStream, MatchesGeneratorMidInitCutoff)
{
    // A budget that ends inside the init phase exercises the
    // resumable init state machine.
    const workload::TenantPattern pattern =
        workload::benchmarkProfile(workload::Benchmark::Iperf3)
            .pattern;
    for (const uint64_t budget : {0ull, 1ull, 37ull, 250ull})
        expectStreamMatchesGenerator(pattern, 11, 9, budget, true);
}

TEST(TenantStream, MatchesGeneratorScalableIovAndSmallPackets)
{
    workload::TenantPattern p =
        workload::benchmarkProfile(workload::Benchmark::Websearch)
            .pattern;
    p.processesPerTenant = 4;
    p.streams = 8;
    p.smallPacketBytes = 256;
    p.smallPacketProb = 0.35;
    expectStreamMatchesGenerator(p, 23, 17, 6000, true);
}

/** SpliceStream must equal generateLogs + constructTrace exactly. */
void
expectSpliceMatchesTrace(workload::Benchmark bench,
                         unsigned tenants, uint64_t seed,
                         const std::string &interleave, double scale)
{
    const trace::Interleaving mode =
        trace::parseInterleaving(interleave);
    const trace::HyperTrace golden = trace::constructTrace(
        workload::generateLogs(bench, tenants, seed, scale), mode);
    workload::SpliceStream stream(bench, tenants, seed, mode, scale);

    EXPECT_EQ(stream.numTenants(), golden.numTenants);
    for (size_t i = 0; i < golden.packets.size(); ++i) {
        const trace::PacketRecord *head = stream.peek();
        ASSERT_NE(head, nullptr) << "packet " << i;
        expectSamePacket(*head, golden.packets[i], i);
        expectSameOps(stream.ops(),
                      golden.ops.data() + golden.packets[i].opBegin,
                      golden.packets[i].opCount, i);
        stream.advance();
    }
    EXPECT_EQ(stream.peek(), nullptr);
    EXPECT_TRUE(stream.exhausted());
}

TEST(SpliceStream, MatchesConstructTraceRoundRobin)
{
    expectSpliceMatchesTrace(workload::Benchmark::Iperf3, 8, 42,
                             "RR1", 0.02);
    expectSpliceMatchesTrace(workload::Benchmark::Mediastream, 8, 42,
                             "RR4", 0.02);
}

TEST(SpliceStream, MatchesConstructTraceRandom)
{
    expectSpliceMatchesTrace(workload::Benchmark::Websearch, 8, 42,
                             "RAND1", 0.02);
    expectSpliceMatchesTrace(workload::Benchmark::Iperf3, 6, 9,
                             "RAND2", 0.02);
}

std::string
statsJson(const core::System &system)
{
    std::ostringstream os;
    system.dumpStatsJson(os, 0);
    return os.str();
}

/**
 * The golden system-level equivalence: run() on the materialized
 * trace and runStream() on the lazy stream must produce identical
 * RunResults (bit-identical doubles) and identical stats trees.
 */
void
expectGoldenEquivalence(workload::Benchmark bench, unsigned tenants,
                        double scale)
{
    const uint64_t seed = 42;
    const trace::Interleaving mode = trace::parseInterleaving("RR1");
    const trace::HyperTrace golden = trace::constructTrace(
        workload::generateLogs(bench, tenants, seed, scale), mode);
    ASSERT_FALSE(golden.packets.empty());

    core::System materialized(core::SystemConfig::hypertrio());
    const core::RunResults want = materialized.run(golden);

    core::System streamed(core::SystemConfig::hypertrio());
    workload::SpliceStream stream(bench, tenants, seed, mode, scale);
    core::StreamRunOptions opts;
    opts.evictDetached = false; // growth mode: mirror run() exactly
    const core::RunResults got = streamed.runStream(stream, opts);

    EXPECT_TRUE(want == got)
        << "RunResults diverged at " << tenants << " tenants";
    EXPECT_EQ(statsJson(materialized), statsJson(streamed));
}

TEST(GoldenEquivalence, Tenants64) {
    expectGoldenEquivalence(workload::Benchmark::Iperf3, 64, 0.02);
}

TEST(GoldenEquivalence, Tenants256) {
    expectGoldenEquivalence(workload::Benchmark::Mediastream, 256,
                            0.005);
}

TEST(GoldenEquivalence, Tenants1024) {
    expectGoldenEquivalence(workload::Benchmark::Iperf3, 1024,
                            0.002);
}

TEST(GoldenEquivalence, MaterializedStreamAdapter)
{
    // The trivial adapter must also be event-for-event identical.
    const trace::HyperTrace golden = trace::constructTrace(
        workload::generateLogs(workload::Benchmark::Websearch, 32,
                               42, 0.02),
        trace::parseInterleaving("RR1"));

    core::System direct(core::SystemConfig::hypertrio());
    const core::RunResults want = direct.run(golden);

    core::System adapted(core::SystemConfig::hypertrio());
    trace::MaterializedStream stream(golden);
    core::StreamRunOptions opts;
    opts.evictDetached = false;
    const core::RunResults got = adapted.runStream(stream, opts);

    EXPECT_TRUE(want == got);
    EXPECT_EQ(statsJson(direct), statsJson(adapted));
}

/**
 * Decorator probing the O(active) invariant from inside the run: on
 * every peek, the page-table directory must hold at most one domain
 * per SID slot (times the PASID spread, 1 here).
 */
class DirectoryBoundProbe : public trace::PacketStream
{
  public:
    DirectoryBoundProbe(trace::PacketStream &inner,
                        const core::System &system, size_t bound)
        : _inner(inner), _system(system), _bound(bound)
    {}

    const trace::PacketRecord *
    peek() override
    {
        _maxSeen = std::max(_maxSeen, _system.tables().size());
        EXPECT_LE(_system.tables().size(), _bound);
        return _inner.peek();
    }
    const trace::PageOp *ops() const override { return _inner.ops(); }
    void advance() override { _inner.advance(); }
    bool exhausted() override { return _inner.exhausted(); }
    uint32_t numTenants() const override
    {
        return _inner.numTenants();
    }
    void
    drainDetached(std::vector<trace::SourceId> &out) override
    {
        _inner.drainDetached(out);
    }
    void sidRetired(trace::SourceId sid) override
    {
        _inner.sidRetired(sid);
    }

    size_t maxSeen() const { return _maxSeen; }

  private:
    trace::PacketStream &_inner;
    const core::System &_system;
    size_t _bound;
    size_t _maxSeen = 0;
};

TEST(TenantEviction, ChurnRetiresEveryTenantAndFreesAllState)
{
    workload::ChurnConfig cfg;
    cfg.population = 120;
    cfg.slots = 8;
    cfg.seed = 7;
    cfg.minBudget = 24;
    cfg.maxBudget = 64;
    cfg.tailMin = 200;
    cfg.tailMax = 400;

    core::System system(core::SystemConfig::hypertrio());
    workload::ChurnStream churn(cfg);
    DirectoryBoundProbe probe(churn, system, cfg.slots);
    const core::RunResults results = system.runStream(probe);

    EXPECT_GT(results.packetsProcessed, 0u);
    EXPECT_EQ(churn.attaches(), cfg.population);
    EXPECT_EQ(system.streamRetirements().size(), cfg.population);
    // O(active): never more live domains than slots, none at the end.
    EXPECT_GT(probe.maxSeen(), 0u);
    EXPECT_LE(probe.maxSeen(), size_t{cfg.slots});
    EXPECT_EQ(system.tables().size(), 0u);
    // Chipset access history retires in lock-step with the tables.
    ASSERT_NE(system.historyReader(), nullptr);
    EXPECT_EQ(system.historyReader()->historySize(), 0u);
}

TEST(TenantEviction, BatchedStreamAdmissionRetiresEveryTenant)
{
    // Batched arrivals change event timing, never the packet set:
    // every virtual tenant must still attach, drain, and retire.
    workload::ChurnConfig cfg;
    cfg.population = 120;
    cfg.slots = 8;
    cfg.seed = 7;
    cfg.minBudget = 24;
    cfg.maxBudget = 64;
    cfg.tailMin = 200;
    cfg.tailMax = 400;

    core::SystemConfig sys_cfg = core::SystemConfig::hypertrio();
    sys_cfg.admitBatch = 4;
    core::System system(sys_cfg);
    workload::ChurnStream churn(cfg);
    const core::RunResults results = system.runStream(churn);

    EXPECT_GT(results.packetsProcessed, 0u);
    EXPECT_EQ(churn.attaches(), cfg.population);
    EXPECT_EQ(system.streamRetirements().size(), cfg.population);
    EXPECT_EQ(system.tables().size(), 0u);
}

TEST(TenantEviction, RetirementLogIsOrderedAndCoversAllSids)
{
    workload::ChurnConfig cfg;
    cfg.population = 40;
    cfg.slots = 4;
    cfg.seed = 3;
    cfg.minBudget = 16;
    cfg.maxBudget = 48;
    cfg.tailProb = 0.0;

    core::System system(core::SystemConfig::hypertrio());
    workload::ChurnStream churn(cfg);
    system.runStream(churn);

    const auto &log = system.streamRetirements();
    ASSERT_EQ(log.size(), cfg.population);
    std::vector<uint64_t> per_sid(cfg.slots, 0);
    for (size_t i = 1; i < log.size(); ++i) {
        // The (tick, seq) key is non-decreasing: it is the event
        // kernel's own ordering at retirement time.
        EXPECT_TRUE(log[i - 1].tick < log[i].tick ||
                    (log[i - 1].tick == log[i].tick &&
                     log[i - 1].seq <= log[i].seq))
            << "entry " << i;
    }
    for (const core::StreamRetirement &r : log) {
        ASSERT_LT(r.sid, cfg.slots);
        ++per_sid[r.sid];
    }
    uint64_t total = 0;
    for (const uint64_t n : per_sid) {
        EXPECT_GT(n, 0u);
        total += n;
    }
    EXPECT_EQ(total, cfg.population);
}

TEST(TenantEviction, DirectoryEraseGivesFreshDeterministicTables)
{
    iommu::PageTableDirectory dir(42);
    const mem::DomainId did = 17;
    mem::PageTable &table = dir.get(did);
    table.map(0x34800000, mem::PageSize::Size4K);
    const mem::Translation before = table.translate(0x34800123);
    ASSERT_TRUE(before.valid);

    ASSERT_TRUE(dir.erase(did));
    EXPECT_EQ(dir.find(did), nullptr);
    EXPECT_EQ(dir.size(), 0u);

    // A re-attached tenant gets a fresh (empty) table; pages it maps
    // again land on the same deterministic frames (frame = hash of
    // directory seed, domain, and page base — re-creation included).
    mem::PageTable &fresh = dir.get(did);
    EXPECT_FALSE(fresh.translate(0x34800123).valid);
    fresh.map(0x34800000, mem::PageSize::Size4K);
    const mem::Translation after = fresh.translate(0x34800123);
    ASSERT_TRUE(after.valid);
    EXPECT_EQ(after.hostAddr, before.hostAddr);
}

#ifdef HYPERSIO_CHECKED
TEST(TenantEviction, ChurnStormIsShadowCleanWhenChecked)
{
    // A full churn storm under the collecting differential oracle:
    // eviction must keep the mirrors (DevTLB/PB/IOTLB/paging, PTB,
    // predictor, history) in lock-step — zero violations.
    workload::ChurnConfig cfg;
    cfg.population = 96;
    cfg.slots = 6;
    cfg.seed = 13;
    cfg.minBudget = 24;
    cfg.maxBudget = 64;
    cfg.tailMin = 200;
    cfg.tailMax = 300;

    core::System system(core::SystemConfig::hypertrio());
    oracle::ShadowChecker checker(
        core::toShadowConfig(system.config()), &system.tables(),
        /*fail_fast=*/false);
    workload::ChurnStream churn(cfg);
    {
        oracle::ShadowScope scope(checker);
        system.runStream(churn);
    }
    EXPECT_GT(checker.eventCount(), 0u);
    EXPECT_EQ(checker.violationCount(), 0u)
        << (checker.violations().empty()
                ? ""
                : checker.violations().front());
    EXPECT_EQ(system.streamRetirements().size(), cfg.population);
    EXPECT_EQ(system.tables().size(), 0u);
}
#endif

core::SystemConfig
mmuPrefetchConfig()
{
    core::SystemConfig config = core::SystemConfig::base();
    config.name = "mmu-prefetch";
    config.device.ptbEntries = 32;
    config.device.prefetch.enabled = true;
    config.device.prefetch.kind = core::PrefetchKind::MmuDma;
    config.device.prefetch.bufferEntries = 32;
    config.device.prefetch.pagesPerPrefetch = 2;
    return config;
}

core::SystemConfig
subEntryConfig()
{
    core::SystemConfig config = core::SystemConfig::base();
    config.name = "sub-entry";
    config.device.devtlb.subEntries = 4;
    config.iommu.l2tlb.subEntries = 4;
    config.iommu.l3tlb.subEntries = 4;
    return config;
}

workload::ChurnConfig
mechanismChurn()
{
    workload::ChurnConfig cfg;
    cfg.population = 96;
    cfg.slots = 6;
    cfg.seed = 11;
    cfg.minBudget = 24;
    cfg.maxBudget = 64;
    cfg.tailMin = 200;
    cfg.tailMax = 300;
    return cfg;
}

TEST(TenantEviction, ChurnDetachesMmuPrefetchStreams)
{
    // MMU-prefetch lifecycle under churn: stream detectors must
    // retire with their tenant (Device::retireDomain), and the
    // issue-to-completion pending counter must gate retirement so no
    // in-flight MMU prefetch outlives its page tables.
    const workload::ChurnConfig cfg = mechanismChurn();
    core::System system(mmuPrefetchConfig());
    workload::ChurnStream churn(cfg);
    const core::RunResults results = system.runStream(churn);

    EXPECT_GT(results.packetsProcessed, 0u);
    EXPECT_EQ(system.streamRetirements().size(), cfg.population);
    EXPECT_EQ(system.tables().size(), 0u);
    // The detectors trained and then fully detached.
    EXPECT_GT(system.device().prefetchesSent(), 0u);
    EXPECT_EQ(system.device().mmuStreams(), 0u);
    EXPECT_EQ(system.historyReader(), nullptr);
}

TEST(TenantEviction, ChurnDetachesSubEntrySharedState)
{
    // Sub-entry sharing lifecycle under churn: a retiring tenant's
    // sub-entries must all leave the shared tags, so the caches end
    // the run empty even though tags were co-resident across DIDs.
    const workload::ChurnConfig cfg = mechanismChurn();
    core::System system(subEntryConfig());
    workload::ChurnStream churn(cfg);
    const core::RunResults results = system.runStream(churn);

    EXPECT_GT(results.packetsProcessed, 0u);
    EXPECT_EQ(system.streamRetirements().size(), cfg.population);
    EXPECT_EQ(system.tables().size(), 0u);
    EXPECT_EQ(system.device().devtlbOccupancy(), 0u);
}

TEST(ShardedMultiSystem, JobsCountInvariantForNewMechanisms)
{
    // Bit-identical results at jobs=1 and jobs=3 for both mechanism
    // configurations (the sub-entry and MMU-prefetch state must stay
    // shard-private, with no hidden cross-thread coupling).
    for (const core::SystemConfig &config :
         {mmuPrefetchConfig(), subEntryConfig()}) {
        auto factory = [](unsigned shard) {
            workload::ChurnConfig cfg = mechanismChurn();
            cfg.population = 40 + shard * 8;
            cfg.seed = hashCombine(29, shard);
            return std::make_unique<workload::ChurnStream>(cfg);
        };
        core::ShardedMultiSystem serial(config, 3, 1);
        const core::ShardedRunResults a = serial.run(factory);
        core::ShardedMultiSystem threaded(config, 3, 3);
        const core::ShardedRunResults b = threaded.run(factory);
        EXPECT_TRUE(a == b) << "config " << config.name;
        for (unsigned s = 0; s < 3; ++s) {
            EXPECT_EQ(statsJson(serial.shard(s)),
                      statsJson(threaded.shard(s)))
                << "config " << config.name << " shard " << s;
        }
    }
}

TEST(ShardedMultiSystem, MergesDeterministicRetirementTimeline)
{
    auto factory = [](unsigned shard) {
        workload::ChurnConfig cfg;
        cfg.population = 50 + shard * 10;
        cfg.slots = 5;
        cfg.seed = hashCombine(21, shard);
        cfg.minBudget = 16;
        cfg.maxBudget = 40;
        cfg.tailProb = 0.0;
        return std::make_unique<workload::ChurnStream>(cfg);
    };

    core::ShardedMultiSystem sharded(
        core::SystemConfig::hypertrio(), 3, 1);
    const core::ShardedRunResults results = sharded.run(factory);

    EXPECT_EQ(results.tenantsRetired, 50u + 60u + 70u);
    EXPECT_EQ(results.retirements.size(), results.tenantsRetired);
    for (size_t i = 1; i < results.retirements.size(); ++i) {
        const core::GlobalRetirement &a = results.retirements[i - 1];
        const core::GlobalRetirement &b = results.retirements[i];
        EXPECT_TRUE(a.tick < b.tick ||
                    (a.tick == b.tick &&
                     (a.shard < b.shard ||
                      (a.shard == b.shard && a.seq <= b.seq))))
            << "entry " << i;
    }
    EXPECT_NE(results.mergeChecksum, 0u);
    EXPECT_LT(results.mergeChecksum, uint64_t{1} << 48);
}

} // namespace
} // namespace hypersio
