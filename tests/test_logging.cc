/** Tests for the logging/error-reporting facility, including the
 *  fatal/panic termination contracts (gem5 semantics: fatal = user
 *  error, normal exit(1); panic = simulator bug, abort). */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "util/logging.hh"

namespace hypersio
{
namespace
{

/** Captures logger output into a string for assertions. */
class CaptureStream
{
  public:
    CaptureStream() : _file(std::tmpfile())
    {
        Logger::instance().setStream(_file);
    }

    ~CaptureStream()
    {
        Logger::instance().setStream(nullptr);
        if (_file)
            std::fclose(_file);
    }

    std::string
    text()
    {
        std::fflush(_file);
        std::rewind(_file);
        char buffer[1024] = {};
        const size_t n =
            std::fread(buffer, 1, sizeof(buffer) - 1, _file);
        return std::string(buffer, n);
    }

  private:
    std::FILE *_file;
};

class LoggingTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        _previous = Logger::instance().level();
    }
    void TearDown() override
    {
        Logger::instance().setLevel(_previous);
    }
    LogLevel _previous = LogLevel::Warn;
};

TEST_F(LoggingTest, WarnVisibleAtDefaultLevel)
{
    CaptureStream capture;
    Logger::instance().setLevel(LogLevel::Warn);
    warn("something odd: %d", 7);
    EXPECT_NE(capture.text().find("warn: something odd: 7"),
              std::string::npos);
}

TEST_F(LoggingTest, InformHiddenBelowInformLevel)
{
    CaptureStream capture;
    Logger::instance().setLevel(LogLevel::Warn);
    inform("quiet note");
    EXPECT_EQ(capture.text().find("quiet note"), std::string::npos);

    Logger::instance().setLevel(LogLevel::Inform);
    inform("loud note");
    EXPECT_NE(capture.text().find("info: loud note"),
              std::string::npos);
}

TEST_F(LoggingTest, DebugOnlyAtDebugLevel)
{
    CaptureStream capture;
    Logger::instance().setLevel(LogLevel::Inform);
    debugLog("invisible");
    Logger::instance().setLevel(LogLevel::Debug);
    debugLog("visible");
    const std::string text = capture.text();
    EXPECT_EQ(text.find("invisible"), std::string::npos);
    EXPECT_NE(text.find("debug: visible"), std::string::npos);
}

TEST_F(LoggingTest, QuietSilencesWarnings)
{
    CaptureStream capture;
    Logger::instance().setLevel(LogLevel::Quiet);
    warn("should not appear");
    EXPECT_EQ(capture.text().find("should not appear"),
              std::string::npos);
}

TEST(LoggingDeathTest, FatalExitsWithStatusOne)
{
    EXPECT_EXIT(fatal("bad user input %s", "xyz"),
                ::testing::ExitedWithCode(1), "fatal: bad user");
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(panic("internal invariant broken"),
                 "panic: internal invariant");
}

TEST(LoggingDeathTest, AssertMacroPanicsWithContext)
{
    EXPECT_DEATH(
        HYPERSIO_ASSERT(1 == 2, "math failed: %d", 42),
        "assertion '1 == 2' failed.*math failed: 42");
}

} // namespace
} // namespace hypersio
